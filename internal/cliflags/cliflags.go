// Package cliflags registers the flag groups shared by the lazydram
// command-line tools (lazysim, experiments), so the tools agree on flag
// names, defaults, and setup behavior by construction instead of by
// copy-paste. Each Add* helper registers its group on the given FlagSet
// under the exact names the tools have always used; the returned holder's
// methods perform the group's runtime setup after Parse.
package cliflags

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers served by Profiling.Start
	"os"
	"runtime/pprof"

	"lazydram/internal/obs"
)

// Profiling is the -pprof / -cpuprofile group.
type Profiling struct {
	PprofAddr  string
	CPUProfile string
}

// AddProfiling registers the profiling flags on fs.
func AddProfiling(fs *flag.FlagSet) *Profiling {
	p := &Profiling{}
	fs.StringVar(&p.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	fs.StringVar(&p.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	return p
}

// Start binds the pprof listener and begins the CPU profile. The listener is
// bound before the run starts so a bad address fails fast instead of
// silently profiling nothing; errors are returned for the caller to report
// and exit non-zero on. The returned stop function flushes the CPU profile
// and is safe to call when nothing was started.
func (p *Profiling) Start() (stop func(), err error) {
	stop = func() {}
	if p.PprofAddr != "" {
		ln, err := net.Listen("tcp", p.PprofAddr)
		if err != nil {
			return stop, fmt.Errorf("pprof: %w", err)
		}
		go func() {
			if err := http.Serve(ln, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof:", err)
			}
		}()
	}
	if p.CPUProfile != "" {
		f, err := os.Create(p.CPUProfile)
		if err != nil {
			return stop, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return stop, err
		}
		stop = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	return stop, nil
}

// Metrics is the -metrics-addr group.
type Metrics struct {
	Addr string
}

// AddMetrics registers the live-metrics flag on fs.
func AddMetrics(fs *flag.FlagSet) *Metrics {
	m := &Metrics{}
	fs.StringVar(&m.Addr, "metrics-addr", "", "serve live /metrics (Prometheus) and /vars (expvar JSON) on this address during the run")
	return m
}

// Serve starts the registry server when -metrics-addr was given and logs the
// bound address to stderr; it returns (nil, "", nil) when the flag is unset.
// Callers own srv.Close.
func (m *Metrics) Serve(reg *obs.Registry) (*http.Server, string, error) {
	if m.Addr == "" {
		return nil, "", nil
	}
	srv, addr, err := ServeMetrics(m.Addr, reg)
	if err != nil {
		return nil, "", err
	}
	fmt.Fprintf(os.Stderr, "metrics: serving http://%s/metrics and /vars\n", addr)
	return srv, addr, nil
}

// ServeMetrics starts an HTTP server exposing the registry: Prometheus text
// exposition at /metrics and expvar-style JSON at /vars. It returns the
// bound address so callers (and tests) can use ":0".
func ServeMetrics(addr string, reg *obs.Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("metrics: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/vars", reg.ExpvarHandler())
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "metrics:", err)
		}
	}()
	return srv, ln.Addr().String(), nil
}

// Job is the flag group describing one simulation job — the same vocabulary
// lazysim uses for a single run, reused by lazyd -submit so the daemon's
// client mode and the CLI agree on names and defaults. The zero values defer
// to the service-side canonical defaults (service.Canonicalize).
type Job struct {
	App         string
	Scheme      string
	Seed        int64
	Queue       int
	Delay       int
	ThRBL       int
	SampleEvery uint64
	Audit       bool
	Quality     bool
	Census      bool
}

// AddJob registers the job-description flags on fs.
func AddJob(fs *flag.FlagSet) *Job {
	j := &Job{}
	fs.StringVar(&j.App, "app", "GEMM", "application name")
	fs.StringVar(&j.Scheme, "scheme", "baseline", "scheduling scheme")
	fs.Int64Var(&j.Seed, "seed", 0, "input RNG seed (0: daemon default)")
	fs.IntVar(&j.Queue, "queue", 0, "pending queue size (0: default)")
	fs.IntVar(&j.Delay, "delay", 0, "static DMS delay in cycles (0: default)")
	fs.IntVar(&j.ThRBL, "thrbl", 0, "static AMS Th_RBL (0: default)")
	fs.Uint64Var(&j.SampleEvery, "sample-every", 0, "time-series sampling interval in memory cycles (0: default)")
	fs.BoolVar(&j.Audit, "audit", false, "collect the scheduler decision audit")
	fs.BoolVar(&j.Quality, "quality", false, "score AMS-dropped lines against ground truth")
	fs.BoolVar(&j.Census, "census", false, "collect the cycle census")
	return j
}

// Shard is the -shard / -shard-workers group.
type Shard struct {
	Enabled bool
	Workers int
}

// AddShard registers the partition-sharding flags on fs.
func AddShard(fs *flag.FlagSet) *Shard {
	s := &Shard{}
	fs.BoolVar(&s.Enabled, "shard", false, "tick memory partitions on a worker pool (bit-identical to sequential)")
	fs.IntVar(&s.Workers, "shard-workers", 0, "worker-pool size for -shard (0: GOMAXPROCS, capped at partition count)")
	return s
}

// Digest is the -digest-every / -digest-cap / -digest-log group.
type Digest struct {
	Every uint64
	Cap   int
	Log   string
}

// AddDigest registers the state-digest flight-recorder flags on fs.
func AddDigest(fs *flag.FlagSet) *Digest {
	d := &Digest{}
	fs.Uint64Var(&d.Every, "digest-every", 0, "sample the state-digest flight recorder every N memory cycles (0 disables)")
	fs.IntVar(&d.Cap, "digest-cap", 0, "digest record ring capacity (0: default)")
	fs.StringVar(&d.Log, "digest-log", "", "write the digest record stream as JSONL to this file (implies -digest-every at its default when unset)")
	return d
}

// Normalize applies the -digest-log implication: asking for the log stream
// without an interval enables sampling at the default interval.
func (d *Digest) Normalize() {
	if d.Log != "" && d.Every == 0 {
		d.Every = obs.DefaultDigestEvery
	}
}
