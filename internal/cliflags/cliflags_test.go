package cliflags

import (
	"flag"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lazydram/internal/obs"
)

// TestFlagNamesStable pins the exact flag names the tools have always
// exposed: renaming any of these breaks every script and CI recipe that
// drives lazysim/experiments.
func TestFlagNamesStable(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	AddProfiling(fs)
	AddMetrics(fs)
	AddShard(fs)
	AddDigest(fs)
	for _, name := range []string{
		"pprof", "cpuprofile", "metrics-addr",
		"shard", "shard-workers",
		"digest-every", "digest-cap", "digest-log",
	} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
}

func TestShardParsing(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	s := AddShard(fs)
	if err := fs.Parse([]string{"-shard", "-shard-workers", "4"}); err != nil {
		t.Fatal(err)
	}
	if !s.Enabled || s.Workers != 4 {
		t.Fatalf("parsed %+v", s)
	}
}

func TestDigestNormalize(t *testing.T) {
	d := &Digest{Log: "out.jsonl"}
	d.Normalize()
	if d.Every != obs.DefaultDigestEvery {
		t.Fatalf("log without interval: every = %d, want default %d", d.Every, obs.DefaultDigestEvery)
	}
	d = &Digest{Log: "out.jsonl", Every: 16}
	d.Normalize()
	if d.Every != 16 {
		t.Fatalf("explicit interval overridden: %d", d.Every)
	}
	d = &Digest{}
	d.Normalize()
	if d.Every != 0 {
		t.Fatalf("digest enabled with no flags: %d", d.Every)
	}
}

// TestServeMetricsEndToEnd binds :0 and scrapes both endpoints.
func TestServeMetricsEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("cliflags_test_total", "test counter").Add(3)
	srv, addr, err := ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/metrics", "/vars"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), "cliflags_test_total") {
			t.Errorf("%s missing registered family:\n%s", path, body)
		}
	}
}

// TestMetricsServeUnsetIsNoop: the flag-group Serve helper must do nothing
// when -metrics-addr was not given.
func TestMetricsServeUnsetIsNoop(t *testing.T) {
	m := &Metrics{}
	srv, addr, err := m.Serve(obs.NewRegistry())
	if srv != nil || addr != "" || err != nil {
		t.Fatalf("Serve on unset flag: %v %q %v", srv, addr, err)
	}
}

// TestProfilingStartFailures: an unbindable pprof address and an unwritable
// profile path must both surface as errors (the tools exit 1 on them).
func TestProfilingStartFailures(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	p := &Profiling{PprofAddr: ln.Addr().String()}
	if _, err := p.Start(); err == nil {
		t.Error("occupied pprof address did not error")
	}
	p = &Profiling{CPUProfile: filepath.Join(t.TempDir(), "no", "such", "dir", "prof")}
	if _, err := p.Start(); err == nil {
		t.Error("unwritable cpuprofile path did not error")
	}
}

// TestProfilingStartStop: the happy path starts and flushes a real profile.
func TestProfilingStartStop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.prof")
	p := &Profiling{CPUProfile: path}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	stop()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Error("profile file empty after stop")
	}
}
