package cache

import (
	"fmt"
	"slices"

	"lazydram/internal/obs"
)

// DigestInto folds the cache's tag/flag/LRU state and access tick into h, in
// set/way order. Line data bytes are deliberately NOT hashed: hashing every
// resident byte per sample would dominate the digest-sampling overhead
// budget, and data divergence is already covered by the partitions' rolling
// traffic digests, which fold every fill and write-back as it happens.
func (c *Cache) DigestInto(h *obs.Hasher) {
	h.U64(c.tick)
	for i := range c.sets {
		l := &c.sets[i]
		if !l.valid {
			h.U64(1 << 63)
			continue
		}
		flags := uint64(0)
		if l.dirty {
			flags |= 1
		}
		if l.approx {
			flags |= 2
		}
		h.U64(l.tag<<2 | flags)
		h.U64(l.lru)
	}
}

// DumpState renders a compact cache summary for lazydiverge's state diffs:
// the access tick plus valid/dirty/approx line counts.
func (c *Cache) DumpState() string {
	var valid, dirty, approx int
	for i := range c.sets {
		l := &c.sets[i]
		if !l.valid {
			continue
		}
		valid++
		if l.dirty {
			dirty++
		}
		if l.approx {
			approx++
		}
	}
	return fmt.Sprintf("tick=%d valid=%d dirty=%d approx=%d lines=%d\n",
		c.tick, valid, dirty, approx, len(c.sets))
}

// DigestInto folds the MSHR file into h. Map iteration order is not
// deterministic, so entries are visited in sorted line-address order; within
// an entry, targets contribute only their count (they are opaque upstream
// pointers), while pending stores contribute their full contents.
func (m *MSHR) DigestInto(h *obs.Hasher) {
	h.Int(len(m.entries))
	if len(m.entries) == 0 {
		return
	}
	keys := make([]uint64, 0, len(m.entries))
	for k := range m.entries {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		e := m.entries[k]
		h.U64(e.LineAddr)
		h.Int(len(e.Targets))
		h.Int(len(e.Stores))
		for _, s := range e.Stores {
			h.U64(s.Addr)
			h.U64(s.Val)
			h.Int(s.N)
		}
		h.Bool(e.HasStore)
		h.Bool(e.Issued)
	}
}
