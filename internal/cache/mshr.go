package cache

// PendingStore is a word-granularity store waiting for its line fill
// (write-allocate caches merge the store data when the fill returns).
type PendingStore struct {
	Addr uint64
	Val  uint64
	N    int // bytes
}

// MSHREntry tracks one outstanding line miss and the requests merged into it.
type MSHREntry struct {
	LineAddr uint64
	// Targets are opaque upstream waiters (e.g. warp transaction handles)
	// notified when the fill arrives.
	Targets []any
	// Stores are pending word writes merged into the line at fill time.
	Stores []PendingStore
	// HasStore marks entries allocated (or joined) by a store; the filled
	// line becomes dirty.
	HasStore bool
	// Issued marks that the downstream request has left this level.
	Issued bool
}

// MSHR is a miss-status holding register file with same-line merging.
type MSHR struct {
	entries    map[uint64]*MSHREntry
	maxEntries int
	maxTargets int
}

// NewMSHR creates an MSHR file with the given entry capacity and per-entry
// merge capacity.
func NewMSHR(maxEntries, maxTargets int) *MSHR {
	return &MSHR{
		entries:    make(map[uint64]*MSHREntry, maxEntries),
		maxEntries: maxEntries,
		maxTargets: maxTargets,
	}
}

// Lookup returns the entry for lineAddr, or nil.
func (m *MSHR) Lookup(lineAddr uint64) *MSHREntry { return m.entries[lineAddr] }

// Full reports whether no new entry can be allocated.
func (m *MSHR) Full() bool { return len(m.entries) >= m.maxEntries }

// CanMerge reports whether another target fits in the entry.
func (m *MSHR) CanMerge(e *MSHREntry) bool { return len(e.Targets) < m.maxTargets }

// Allocate creates an entry for lineAddr. The caller must have checked Full
// and that no entry exists.
func (m *MSHR) Allocate(lineAddr uint64) *MSHREntry {
	if m.Full() {
		panic("cache: MSHR allocate when full")
	}
	if m.entries[lineAddr] != nil {
		panic("cache: duplicate MSHR allocation")
	}
	e := &MSHREntry{LineAddr: lineAddr}
	m.entries[lineAddr] = e
	return e
}

// Remove releases the entry for lineAddr.
func (m *MSHR) Remove(lineAddr uint64) { delete(m.entries, lineAddr) }

// Len returns the number of outstanding entries.
func (m *MSHR) Len() int { return len(m.entries) }
