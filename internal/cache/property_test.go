package cache_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lazydram/internal/cache"
)

// TestNearestLineIsTrulyNearest fills random lines and checks NearestLine
// against a brute-force scan restricted to the same set window.
func TestNearestLineIsTrulyNearest(t *testing.T) {
	const (
		sets   = 32
		ways   = 4
		radius = 3
	)
	f := func(seed int64, targetRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		c := cache.New(cache.Config{SizeBytes: sets * ways * cache.LineSize, Ways: ways})
		resident := map[uint64]bool{}
		for i := 0; i < 40; i++ {
			tag := uint64(rng.Intn(1024))
			c.Fill(tag*cache.LineSize, make([]byte, cache.LineSize), false)
			resident[tag] = true
		}
		// Rebuild the residency set from the cache's own view: evictions may
		// have removed lines, so probe via Contains.
		target := uint64(targetRaw % 1024)
		got, _, ok := c.NearestLine(target*cache.LineSize, radius)

		// Brute force: nearest resident tag within the set window.
		bestDist := uint64(1) << 62
		found := false
		for tag := range resident {
			if !c.Contains(tag*cache.LineSize) || tag == target {
				continue
			}
			setDist := int(tag%sets) - int(target%sets)
			if setDist < -radius || setDist > radius {
				// Outside the window unless it wraps; emulate the wrap the
				// same way the cache does (modular set indexing).
				wrapped := false
				for d := -radius; d <= radius; d++ {
					if (int(target%sets)+d+sets)%sets == int(tag%sets) {
						wrapped = true
						break
					}
				}
				if !wrapped {
					continue
				}
			}
			dist := tag - target
			if target > tag {
				dist = target - tag
			}
			if dist < bestDist {
				bestDist = dist
				found = true
			}
		}
		if !found {
			return !ok
		}
		if !ok {
			return false
		}
		gotTag := got / cache.LineSize
		gotDist := gotTag - target
		if target > gotTag {
			gotDist = target - gotTag
		}
		return gotDist == bestDist
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestFillNeverExceedsCapacity: after any fill sequence, the number of
// resident lines is bounded by the cache capacity.
func TestFillNeverExceedsCapacity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const sets, ways = 8, 2
		c := cache.New(cache.Config{SizeBytes: sets * ways * cache.LineSize, Ways: ways})
		tags := map[uint64]bool{}
		for i := 0; i < 200; i++ {
			tag := uint64(rng.Intn(256))
			c.Fill(tag*cache.LineSize, make([]byte, cache.LineSize), false)
			tags[tag] = true
		}
		resident := 0
		for tag := range tags {
			if c.Contains(tag * cache.LineSize) {
				resident++
			}
		}
		return resident <= sets*ways
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestDirtyBitConservation: every line written with markDirty is either
// still resident-dirty, was surfaced by Fill/Invalidate as a victim, or was
// cleaned by DirtyLines.
func TestDirtyBitConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const sets, ways = 4, 2
		c := cache.New(cache.Config{SizeBytes: sets * ways * cache.LineSize, Ways: ways})
		dirty := map[uint64]bool{} // tags believed dirty
		for i := 0; i < 300; i++ {
			tag := uint64(rng.Intn(64))
			switch rng.Intn(3) {
			case 0:
				if ev, evicted := c.Fill(tag*cache.LineSize, make([]byte, cache.LineSize), false); evicted {
					delete(dirty, ev.Addr/cache.LineSize)
				}
				// A fill of a resident line clears its dirty bit.
				delete(dirty, tag)
			case 1:
				if c.WriteWord(tag*cache.LineSize, 1, 4, true) {
					dirty[tag] = true
				}
			case 2:
				if _, wasDirty := c.Invalidate(tag * cache.LineSize); wasDirty {
					if !dirty[tag] {
						return false // cache says dirty, model says clean
					}
				}
				delete(dirty, tag)
			}
		}
		// Whatever the model still believes dirty must be visited by
		// DirtyLines (resident lines only; evicted clean ones were removed).
		visited := map[uint64]bool{}
		c.DirtyLines(func(addr uint64, _ []byte) { visited[addr/cache.LineSize] = true })
		for tag := range dirty {
			if c.Contains(tag*cache.LineSize) && !visited[tag] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
