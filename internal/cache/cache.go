// Package cache implements the set-associative, data-carrying caches of the
// simulated GPU: per-SM L1 data caches (write-through, no write-allocate) and
// per-partition L2 slices (write-back, write-allocate), both with 128-byte
// lines, LRU replacement, and miss-status holding registers (MSHRs) that
// merge same-line misses ("inter-warp merging" in Table I).
//
// Lines carry real bytes because the paper's value-prediction unit predicts a
// dropped request's value from the nearest-address line resident in the L2
// (Section IV-D); NearestLine implements that search.
package cache

import (
	"fmt"
	"math/bits"
)

// LineSize is the cache line size in bytes (Table I: 128 B).
const LineSize = 128

// Config sizes a cache.
type Config struct {
	SizeBytes int
	Ways      int
}

// Line is one cache line.
type line struct {
	tag    uint64 // line address (addr >> 7)
	valid  bool
	dirty  bool
	approx bool // filled with value-predicted data
	lru    uint64
	data   [LineSize]byte
}

// Stats counts cache events.
type Stats struct {
	Accesses uint64
	Misses   uint64
	Fills    uint64
	Evicts   uint64
}

// Cache is a set-associative cache with data storage. It is not safe for
// concurrent use; the simulator is single-threaded per GPU instance.
type Cache struct {
	cfg     Config
	sets    []line // numSets * ways, row-major
	numSets int
	ways    int
	setMask uint64
	tick    uint64
	stats   Stats
}

// New creates a cache. SizeBytes/Ways/LineSize must yield a power-of-two set
// count.
func New(cfg Config) *Cache {
	lines := cfg.SizeBytes / LineSize
	if cfg.Ways <= 0 || lines <= 0 || lines%cfg.Ways != 0 {
		panic(fmt.Sprintf("cache: bad geometry size=%d ways=%d", cfg.SizeBytes, cfg.Ways))
	}
	numSets := lines / cfg.Ways
	if bits.OnesCount(uint(numSets)) != 1 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", numSets))
	}
	return &Cache{
		cfg:     cfg,
		sets:    make([]line, lines),
		numSets: numSets,
		ways:    cfg.Ways,
		setMask: uint64(numSets - 1),
	}
}

// Stats returns a copy of the cache counters.
func (c *Cache) Stats() Stats { return c.stats }

// NumSets returns the number of sets.
func (c *Cache) NumSets() int { return c.numSets }

func lineTag(addr uint64) uint64 { return addr / LineSize }

func (c *Cache) setIndex(tag uint64) int { return int(tag & c.setMask) }

func (c *Cache) set(idx int) []line { return c.sets[idx*c.ways : (idx+1)*c.ways] }

func (c *Cache) find(tag uint64) *line {
	for i, s := 0, c.set(c.setIndex(tag)); i < len(s); i++ {
		if s[i].valid && s[i].tag == tag {
			return &s[i]
		}
	}
	return nil
}

// Contains reports whether the line holding addr is resident, without
// touching LRU state or statistics.
func (c *Cache) Contains(addr uint64) bool { return c.find(lineTag(addr)) != nil }

// Read looks up the line containing addr. On a hit it copies the line into
// dst (if non-nil) and returns true. Counts an access; a miss counts a miss.
func (c *Cache) Read(addr uint64, dst []byte) bool {
	c.stats.Accesses++
	c.tick++
	if l := c.find(lineTag(addr)); l != nil {
		l.lru = c.tick
		if dst != nil {
			copy(dst, l.data[:])
		}
		return true
	}
	c.stats.Misses++
	return false
}

// WriteWord writes n bytes (n <= 8) of val into the resident line containing
// addr and marks it dirty when markDirty is set (write-back caches). It
// returns false on a miss without allocating. Counts an access.
func (c *Cache) WriteWord(addr uint64, val uint64, n int, markDirty bool) bool {
	c.stats.Accesses++
	c.tick++
	l := c.find(lineTag(addr))
	if l == nil {
		c.stats.Misses++
		return false
	}
	l.lru = c.tick
	off := int(addr % LineSize)
	for i := 0; i < n; i++ {
		l.data[off+i] = byte(val >> (8 * i))
	}
	if markDirty {
		l.dirty = true
		l.approx = false
	}
	return true
}

// Evicted describes a line displaced by Fill.
type Evicted struct {
	Addr  uint64
	Dirty bool
	Data  [LineSize]byte
}

// Fill installs the line containing addr with the given data (128 bytes).
// approx marks value-predicted fills: they are always installed clean so
// that approximate data can never be written back to DRAM. It returns the
// evicted victim, if any, so the caller can issue a write-back.
func (c *Cache) Fill(addr uint64, data []byte, approx bool) (ev Evicted, evicted bool) {
	c.stats.Fills++
	c.tick++
	tag := lineTag(addr)
	s := c.set(c.setIndex(tag))
	victim := &s[0]
	for i := range s {
		l := &s[i]
		if l.valid && l.tag == tag {
			victim = l // refill of a resident line (race with a hit-under-miss)
			break
		}
		if !l.valid {
			victim = l
			break
		}
		if l.lru < victim.lru {
			victim = l
		}
	}
	if victim.valid && victim.tag != tag {
		c.stats.Evicts++
		if victim.dirty {
			ev = Evicted{Addr: victim.tag * LineSize, Dirty: true, Data: victim.data}
			evicted = true
		}
	}
	victim.tag = tag
	victim.valid = true
	victim.dirty = false
	victim.approx = approx
	victim.lru = c.tick
	copy(victim.data[:], data[:LineSize])
	return ev, evicted
}

// PeekLine copies the resident line containing addr into dst without
// touching LRU state or statistics. It reports whether the line was present.
func (c *Cache) PeekLine(addr uint64, dst []byte) bool {
	l := c.find(lineTag(addr))
	if l == nil {
		return false
	}
	copy(dst, l.data[:])
	return true
}

// MergeWord merges a word write into a resident line without touching LRU or
// statistics; used to apply pending stores when a fill returns.
func (c *Cache) MergeWord(addr uint64, val uint64, n int, markDirty bool) bool {
	l := c.find(lineTag(addr))
	if l == nil {
		return false
	}
	off := int(addr % LineSize)
	for i := 0; i < n; i++ {
		l.data[off+i] = byte(val >> (8 * i))
	}
	if markDirty {
		l.dirty = true
		l.approx = false
	}
	return true
}

// Invalidate drops the line containing addr, returning its dirty payload if
// it had one.
func (c *Cache) Invalidate(addr uint64) (ev Evicted, dirty bool) {
	l := c.find(lineTag(addr))
	if l == nil {
		return Evicted{}, false
	}
	l.valid = false
	if l.dirty {
		return Evicted{Addr: l.tag * LineSize, Dirty: true, Data: l.data}, true
	}
	return Evicted{}, false
}

// DirtyLines invokes fn for every dirty line; used to flush the L2 into the
// DRAM image at the end of a run so the functional output is complete.
func (c *Cache) DirtyLines(fn func(addr uint64, data []byte)) {
	for i := range c.sets {
		l := &c.sets[i]
		if l.valid && l.dirty {
			fn(l.tag*LineSize, l.data[:])
			l.dirty = false
		}
	}
}

// NearestLine searches the home set of addr and the sets within setRadius on
// either side (wrapping) for the valid line whose address is nearest addr,
// excluding the line containing addr itself. It returns a copy of that
// line's bytes. This is the paper's VP-unit search: "search in the nearby
// cache sets of the L2 and use the values from cache lines with nearest
// addresses".
func (c *Cache) NearestLine(addr uint64, setRadius int) (nearAddr uint64, data [LineSize]byte, ok bool) {
	target := lineTag(addr)
	home := c.setIndex(target)
	bestDist := uint64(1) << 63
	for d := -setRadius; d <= setRadius; d++ {
		idx := (home + d) & int(c.setMask)
		s := c.set(idx)
		for i := range s {
			l := &s[i]
			if !l.valid || l.tag == target {
				continue
			}
			dist := target - l.tag
			if l.tag > target {
				dist = l.tag - target
			}
			if dist < bestDist {
				bestDist = dist
				nearAddr = l.tag * LineSize
				data = l.data
				ok = true
			}
		}
	}
	return nearAddr, data, ok
}
