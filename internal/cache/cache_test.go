package cache_test

import (
	"math/rand"
	"testing"

	"lazydram/internal/cache"
)

func tinyCache(t *testing.T) *cache.Cache {
	t.Helper()
	// 4 sets x 2 ways x 128 B = 1 KB.
	return cache.New(cache.Config{SizeBytes: 1024, Ways: 2})
}

func line(data byte) []byte {
	b := make([]byte, cache.LineSize)
	for i := range b {
		b[i] = data
	}
	return b
}

func TestReadMissThenHitAfterFill(t *testing.T) {
	c := tinyCache(t)
	if c.Read(0, nil) {
		t.Fatal("cold cache must miss")
	}
	c.Fill(0, line(0xAB), false)
	buf := make([]byte, cache.LineSize)
	if !c.Read(0, buf) {
		t.Fatal("filled line must hit")
	}
	if buf[0] != 0xAB || buf[127] != 0xAB {
		t.Fatal("hit returned wrong data")
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Misses != 1 || st.Fills != 1 {
		t.Fatalf("stats = %+v, want 2 accesses / 1 miss / 1 fill", st)
	}
}

func TestSameSetConflictEvictsLRU(t *testing.T) {
	c := tinyCache(t)
	// Lines 0, 4, 8 share set 0 (4 sets). Fill 0, 4 then touch 0 so 4 is LRU.
	c.Fill(0, line(1), false)
	c.Fill(4*128, line(2), false)
	c.Read(0, nil)
	c.Fill(8*128, line(3), false)
	if !c.Contains(0) {
		t.Fatal("recently used line was evicted")
	}
	if c.Contains(4 * 128) {
		t.Fatal("LRU line was not evicted")
	}
}

func TestFillReturnsDirtyVictim(t *testing.T) {
	c := tinyCache(t)
	c.Fill(0, line(1), false)
	if !c.WriteWord(0, 0xDEAD, 4, true) {
		t.Fatal("write to resident line must hit")
	}
	c.Fill(4*128, line(2), false)
	ev, evicted := c.Fill(8*128, line(3), false)
	if !evicted || !ev.Dirty {
		t.Fatal("dirty victim must be reported")
	}
	if ev.Addr != 0 {
		t.Fatalf("victim addr = %d, want 0", ev.Addr)
	}
	if ev.Data[0] != 0xAD || ev.Data[1] != 0xDE {
		t.Fatal("victim data does not include the write")
	}
}

func TestCleanEvictionNotReported(t *testing.T) {
	c := tinyCache(t)
	c.Fill(0, line(1), false)
	c.Fill(4*128, line(2), false)
	if _, evicted := c.Fill(8*128, line(3), false); evicted {
		t.Fatal("clean victims must not demand a write-back")
	}
}

func TestApproxFillsAreClean(t *testing.T) {
	c := tinyCache(t)
	c.Fill(0, line(9), true) // value-predicted fill
	c.Fill(4*128, line(2), false)
	if _, evicted := c.Fill(8*128, line(3), false); evicted {
		t.Fatal("approx line must never be written back")
	}
}

func TestWriteWordMissDoesNotAllocate(t *testing.T) {
	c := tinyCache(t)
	if c.WriteWord(0, 1, 4, true) {
		t.Fatal("write miss must report miss")
	}
	if c.Contains(0) {
		t.Fatal("write miss must not allocate")
	}
}

func TestMergeWordDoesNotTouchStats(t *testing.T) {
	c := tinyCache(t)
	c.Fill(0, line(0), false)
	before := c.Stats()
	if !c.MergeWord(4, 0x01020304, 4, true) {
		t.Fatal("merge into resident line failed")
	}
	if c.Stats().Accesses != before.Accesses {
		t.Fatal("MergeWord must not count an access")
	}
	var buf [cache.LineSize]byte
	c.PeekLine(0, buf[:])
	if buf[4] != 0x04 || buf[7] != 0x01 {
		t.Fatal("merged bytes wrong")
	}
}

func TestInvalidateReturnsDirtyData(t *testing.T) {
	c := tinyCache(t)
	c.Fill(0, line(5), false)
	c.WriteWord(0, 0xFF, 1, true)
	ev, dirty := c.Invalidate(0)
	if !dirty || ev.Data[0] != 0xFF {
		t.Fatal("invalidate must surface dirty data")
	}
	if c.Contains(0) {
		t.Fatal("line still resident after invalidate")
	}
}

func TestDirtyLinesVisitsAndCleans(t *testing.T) {
	c := tinyCache(t)
	c.Fill(0, line(1), false)
	c.WriteWord(0, 7, 4, true)
	c.Fill(128, line(2), false)
	visited := 0
	c.DirtyLines(func(addr uint64, data []byte) {
		visited++
		if addr != 0 {
			t.Fatalf("unexpected dirty line %d", addr)
		}
	})
	if visited != 1 {
		t.Fatalf("visited %d dirty lines, want 1", visited)
	}
	c.DirtyLines(func(uint64, []byte) { t.Fatal("DirtyLines must clean as it goes") })
}

func TestNearestLinePrefersClosestAddress(t *testing.T) {
	c := cache.New(cache.Config{SizeBytes: 8 * 1024, Ways: 2}) // 32 sets
	c.Fill(0, line(1), false)
	c.Fill(10*128, line(2), false)
	c.Fill(100*128, line(3), false)
	// Target line 9: line 10 is nearest.
	addr, data, ok := c.NearestLine(9*128, 4)
	if !ok {
		t.Fatal("expected a prediction source")
	}
	if addr != 10*128 {
		t.Fatalf("nearest = line %d, want 10", addr/128)
	}
	if data[0] != 2 {
		t.Fatal("wrong line data")
	}
}

func TestNearestLineExcludesTargetItself(t *testing.T) {
	c := cache.New(cache.Config{SizeBytes: 8 * 1024, Ways: 2})
	c.Fill(9*128, line(7), false)
	c.Fill(11*128, line(8), false)
	addr, _, ok := c.NearestLine(9*128, 4)
	if !ok || addr == 9*128 {
		t.Fatalf("NearestLine returned the target line itself (addr=%d ok=%v)", addr, ok)
	}
}

func TestNearestLineRespectsRadius(t *testing.T) {
	c := cache.New(cache.Config{SizeBytes: 8 * 1024, Ways: 2}) // 32 sets
	// A line 16 sets away is outside radius 2.
	c.Fill(16*128, line(1), false)
	if _, _, ok := c.NearestLine(0, 2); ok {
		t.Fatal("line outside the set radius must not be found")
	}
	if _, _, ok := c.NearestLine(0, 16); !ok {
		t.Fatal("line inside a wide radius must be found")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two set count must panic")
		}
	}()
	cache.New(cache.Config{SizeBytes: 3 * 128, Ways: 1})
}

// TestModelEquivalence drives the cache with random fills/reads/writes and
// checks hit/miss and data behaviour against a simple map-based model with
// per-set LRU.
func TestModelEquivalence(t *testing.T) {
	const (
		sets  = 8
		ways  = 2
		lines = 32 // address space of 32 lines
	)
	c := cache.New(cache.Config{SizeBytes: sets * ways * cache.LineSize, Ways: ways})

	type mline struct {
		tag  uint64
		data byte
		lru  int
	}
	model := make([][]mline, sets) // per set, up to `ways` lines
	tick := 0
	rng := rand.New(rand.NewSource(42))

	find := func(tag uint64) *mline {
		s := model[tag%sets]
		for i := range s {
			if s[i].tag == tag {
				return &s[i]
			}
		}
		return nil
	}
	fill := func(tag uint64, data byte) {
		tick++
		set := tag % sets
		s := model[set]
		if l := find(tag); l != nil {
			l.data = data
			l.lru = tick
			return
		}
		if len(s) < ways {
			model[set] = append(s, mline{tag: tag, data: data, lru: tick})
			return
		}
		victim := 0
		for i := range s {
			if s[i].lru < s[victim].lru {
				victim = i
			}
		}
		s[victim] = mline{tag: tag, data: data, lru: tick}
	}

	for i := 0; i < 5000; i++ {
		tag := uint64(rng.Intn(lines))
		addr := tag * cache.LineSize
		switch rng.Intn(3) {
		case 0: // fill
			d := byte(rng.Intn(256))
			c.Fill(addr, line(d), false)
			fill(tag, d)
		case 1: // read
			tick++
			var buf [cache.LineSize]byte
			got := c.Read(addr, buf[:])
			m := find(tag)
			if got != (m != nil) {
				t.Fatalf("op %d: read hit=%v, model=%v (tag %d)", i, got, m != nil, tag)
			}
			if got {
				if buf[0] != m.data {
					t.Fatalf("op %d: data %d, model %d", i, buf[0], m.data)
				}
				m.lru = tick
			}
		case 2: // write word
			tick++
			v := byte(rng.Intn(256))
			got := c.WriteWord(addr, uint64(v), 1, false)
			m := find(tag)
			if got != (m != nil) {
				t.Fatalf("op %d: write hit=%v, model=%v", i, got, m != nil)
			}
			if got {
				m.data = v
				m.lru = tick
			}
		}
	}
}

func TestMSHRMergeAndCapacity(t *testing.T) {
	m := cache.NewMSHR(2, 3)
	e := m.Allocate(0)
	if m.Lookup(0) != e {
		t.Fatal("lookup after allocate failed")
	}
	e.Targets = append(e.Targets, 1, 2, 3)
	if m.CanMerge(e) {
		t.Fatal("entry at target capacity must refuse merges")
	}
	m.Allocate(128)
	if !m.Full() {
		t.Fatal("MSHR with max entries must be full")
	}
	m.Remove(0)
	if m.Full() || m.Lookup(0) != nil {
		t.Fatal("remove did not free the entry")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestMSHRDoubleAllocatePanics(t *testing.T) {
	m := cache.NewMSHR(4, 4)
	m.Allocate(0)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate allocation must panic")
		}
	}()
	m.Allocate(0)
}
