// Package service is the simulation-as-a-service layer behind the lazyd
// daemon: an HTTP/JSON API where clients submit jobs (application, scheme,
// configuration, seed, observability options), a bounded queue drained by
// exp.Runner workers, and a content-addressed result cache keyed by the
// canonical run key. Identity is exp.RunKey end to end — the Runner's
// singleflight map, the service-level job dedupe, and the cache all agree on
// it, so two identical submissions execute exactly one simulation and a
// repeat submission returns the exact cached document bytes.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"lazydram/internal/exp"
	"lazydram/internal/mc"
	"lazydram/internal/obs"
	"lazydram/internal/sim"
)

// Defaults applied during canonicalization. They mirror the lazysim flag
// defaults so an omitted field and an explicitly-default field canonicalize
// to the same job (and therefore the same run key and cache entry).
const (
	DefaultDelay       = 128  // -delay
	DefaultThRBL       = 8    // -thrbl
	DefaultQueue       = 128  // -queue
	DefaultSeed        = 1    // -seed
	DefaultSampleEvery = 1024 // -sample-every
	defaultAuditCap    = 1 << 16
	// topBanks is the hottest-banks list length in the result document,
	// pinned to the lazysim -top-banks default (it is not a job field: the
	// list is derived presentation, excluded from lazycmp gating).
	topBanks = 8
)

// ObsSpec selects per-run telemetry. The zero value matches what a plain
// `lazysim -json` run collects (latency histograms plus the time-series
// sampler at its default interval), so default jobs produce the same
// document a default CLI run prints.
type ObsSpec struct {
	// SampleEvery is the time-series sampling interval in memory cycles
	// (0: the lazysim default, 1024).
	SampleEvery uint64 `json:"sample_every,omitempty"`
	// Audit collects the scheduler decision audit.
	Audit bool `json:"audit,omitempty"`
	// Quality scores every AMS-dropped line against ground truth.
	Quality bool `json:"quality,omitempty"`
	// Census collects the cycle census / latency-provenance layer.
	Census bool `json:"census,omitempty"`
}

// JobSpec is the client-facing job description posted to /v1/jobs. Zero
// fields take the lazysim flag defaults.
type JobSpec struct {
	// App is the workload name (required — see lazysim -list).
	App string `json:"app"`
	// Scheme is the scheduling-scheme name as accepted by lazysim -scheme
	// (required): baseline, static-dms, dyn-dms, static-ams, dyn-ams,
	// static-both, dyn-both.
	Scheme string `json:"scheme"`
	// Delay is the static DMS delay in cycles (0: 128).
	Delay int `json:"delay,omitempty"`
	// ThRBL is the static AMS Th_RBL (0: 8).
	ThRBL int `json:"th_rbl,omitempty"`
	// Queue is the pending-queue size (0: 128).
	Queue int `json:"queue,omitempty"`
	// Seed drives workload input generation (0: 1).
	Seed int64 `json:"seed,omitempty"`
	// Obs selects per-run telemetry.
	Obs ObsSpec `json:"obs,omitempty"`
}

// Job is a fully canonicalized job: the resolved scheme and runner variant,
// plus the canonical run key and its content-address. Built by Canonicalize;
// never constructed by hand.
type Job struct {
	Spec    JobSpec // canonicalized: every defaultable field resolved
	Scheme  mc.Scheme
	Variant exp.Variant

	// Key is the canonical run key (exp.RunKey) — the shared identity across
	// the Runner's singleflight, the job dedupe, and the result cache.
	Key string
	// ID is the content address: hex SHA-256 of Key. It doubles as the job
	// id in the HTTP API, so identical submissions get identical ids.
	ID string
}

// obsTag serializes the observability selection into the Variant tag in a
// fixed field order. The tag is part of the run key, so jobs that differ
// only in telemetry memoize and cache independently (telemetry changes the
// document, not the simulation outcome).
func obsTag(o ObsSpec) string {
	b := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	return fmt.Sprintf("obs:se%d,a%d,q%d,c%d",
		o.SampleEvery, b(o.Audit), b(o.Quality), b(o.Census))
}

// obsOptions maps the selection onto sim.Config.Obs exactly as the lazysim
// -json path does: latency histograms always on, audit ring at the default
// capacity when enabled.
func obsOptions(o ObsSpec) obs.Options {
	oo := obs.Options{Latency: true, SampleEvery: o.SampleEvery}
	if o.Audit {
		oo.AuditCapacity = defaultAuditCap
	}
	oo.Quality = o.Quality
	oo.Census = o.Census
	return oo
}

// Canonicalize validates the spec, resolves every defaultable field, and
// derives the run key and content address. The returned Job's Spec is the
// canonical form: two specs that describe the same simulation — whether by
// omission or by explicitly passing a default — produce identical Jobs.
func Canonicalize(spec JobSpec) (*Job, error) {
	if spec.App == "" {
		return nil, fmt.Errorf("job: app is required")
	}
	if spec.Scheme == "" {
		return nil, fmt.Errorf("job: scheme is required")
	}
	if spec.Delay == 0 {
		spec.Delay = DefaultDelay
	}
	if spec.ThRBL == 0 {
		spec.ThRBL = DefaultThRBL
	}
	if spec.Queue == 0 {
		spec.Queue = DefaultQueue
	}
	if spec.Seed == 0 {
		spec.Seed = DefaultSeed
	}
	if spec.Obs.SampleEvery == 0 {
		spec.Obs.SampleEvery = DefaultSampleEvery
	}
	if spec.Delay < 0 || spec.ThRBL < 0 || spec.Queue < 0 || spec.Seed < 0 {
		return nil, fmt.Errorf("job: negative parameter")
	}
	scheme, err := mc.ParseScheme(spec.Scheme, spec.Delay, spec.ThRBL)
	if err != nil {
		return nil, fmt.Errorf("job: %w", err)
	}
	// Normalize alias spellings (dms vs static-dms) so the echoed spec is
	// canonical and stays re-submittable through ParseScheme. The run key
	// uses scheme.Name(), so aliases share a key either way.
	switch s := strings.ToLower(spec.Scheme); s {
	case "base":
		spec.Scheme = "baseline"
	case "dms", "ams", "both":
		spec.Scheme = "static-" + s
	default:
		spec.Scheme = s
	}

	o := spec.Obs
	v := exp.Variant{
		QueueSize: spec.Queue,
		Seed:      spec.Seed,
		Tag:       obsTag(o),
		Mutate:    func(cfg *sim.Config) { cfg.Obs = obsOptions(o) },
	}
	key := exp.RunKey(spec.App, scheme, v, spec.Seed)
	sum := sha256.Sum256([]byte(key))
	return &Job{
		Spec:    spec,
		Scheme:  scheme,
		Variant: v,
		Key:     key,
		ID:      hex.EncodeToString(sum[:]),
	}, nil
}
