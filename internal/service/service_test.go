package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"lazydram/internal/exp"
	"lazydram/internal/obs"
	"lazydram/internal/rundoc"
	"lazydram/internal/sim"
	"lazydram/internal/workloads"
)

// jmein is the fastest workload in the suite; every service test runs it so
// the whole file stays race-runnable in seconds.
const testApp = "jmein"

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	s := New(cfg)
	t.Cleanup(func() { s.Close() })
	return s
}

func submitOK(t *testing.T, s *Service, spec JobSpec) SubmitResult {
	t.Helper()
	res, code, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("submit: %v (code %d)", err, code)
	}
	return res
}

// directDoc builds the document a direct `lazysim -json` run would produce
// for the canonicalized job, minus the fields that legitimately differ
// between processes (wall clock, build metadata).
func directDoc(t *testing.T, spec JobSpec) map[string]any {
	t.Helper()
	cj, err := Canonicalize(spec)
	if err != nil {
		t.Fatal(err)
	}
	kern, err := workloads.New(cj.Spec.App)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.MC.QueueSize = cj.Spec.Queue
	cfg.Obs = obsOptions(cj.Spec.Obs)
	res, err := sim.Simulate(kern, cfg, cj.Scheme, cj.Spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := rundoc.Encode(rundoc.Build(&res.Run, res, cj.Spec.Seed, 0, topBanks))
	if err != nil {
		t.Fatal(err)
	}
	return flatten(t, raw)
}

// flatten decodes a document and drops the process-dependent fields, the
// same set lazycmp skips.
func flatten(t *testing.T, raw []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("document not valid JSON: %v", err)
	}
	delete(m, "wall_ms")
	delete(m, "meta")
	return m
}

// TestSubmitExecutesAndMatchesDirectRun: a submitted job's served document
// equals a direct in-process simulation built through the same rundoc path,
// field for field (modulo wall clock and build provenance).
func TestSubmitExecutesAndMatchesDirectRun(t *testing.T) {
	s := newTestService(t, Config{})
	spec := JobSpec{App: testApp, Scheme: "baseline"}
	sub := submitOK(t, s, spec)
	if sub.Cached || sub.Joined {
		t.Fatalf("first submission reported cached=%v joined=%v", sub.Cached, sub.Joined)
	}
	if !s.Wait(sub.ID, 2*time.Minute) {
		t.Fatal("job did not finish")
	}
	raw, code, err := s.Result(sub.ID)
	if err != nil || code != http.StatusOK {
		t.Fatalf("result: code %d, err %v", code, err)
	}
	if raw[len(raw)-1] != '\n' {
		t.Fatal("document is not newline-terminated like lazysim -json output")
	}
	got := flatten(t, raw)
	want := directDoc(t, spec)
	if !reflect.DeepEqual(got, want) {
		for k, v := range want {
			if !reflect.DeepEqual(got[k], v) {
				t.Errorf("field %q: daemon %v, direct %v", k, got[k], v)
			}
		}
		t.Fatal("daemon document differs from direct run")
	}

	st, ok := s.Status(sub.ID)
	if !ok || st.State != StateDone {
		t.Fatalf("status after completion: %+v ok=%v", st, ok)
	}
	if st.Span == nil || st.Span.State != "done" {
		t.Fatalf("status missing the runner lifecycle span: %+v", st.Span)
	}
}

// TestRepeatSubmissionServesExactCachedBytes: the second submission of an
// identical spec is a cache hit and /result returns byte-identical output —
// including specs that spell the defaults explicitly.
func TestRepeatSubmissionServesExactCachedBytes(t *testing.T) {
	s := newTestService(t, Config{})
	sub := submitOK(t, s, JobSpec{App: testApp, Scheme: "baseline"})
	s.Wait(sub.ID, 2*time.Minute)
	first, code, err := s.Result(sub.ID)
	if err != nil {
		t.Fatalf("result: %d %v", code, err)
	}

	for _, spec := range []JobSpec{
		{App: testApp, Scheme: "baseline"},
		{App: testApp, Scheme: "base", Seed: DefaultSeed, Queue: DefaultQueue,
			Delay: DefaultDelay, ThRBL: DefaultThRBL,
			Obs: ObsSpec{SampleEvery: DefaultSampleEvery}},
	} {
		again := submitOK(t, s, spec)
		if !again.Cached {
			t.Fatalf("repeat submission %+v was not a cache hit: %+v", spec, again)
		}
		if again.ID != sub.ID {
			t.Fatalf("identical spec got a different id: %s vs %s", again.ID, sub.ID)
		}
		raw, _, err := s.Result(again.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, first) {
			t.Fatal("cached result is not byte-identical to the first serving")
		}
	}
	if runs := s.runner.Stats().Runs; runs != 1 {
		t.Fatalf("runner executed %d distinct runs, want 1", runs)
	}
}

// TestConcurrentSubmitStormExecutesOnce is the acceptance-criteria storm:
// many goroutines submit the identical job concurrently; exactly one
// simulation executes, everyone converges on one id and one byte-identical
// document.
func TestConcurrentSubmitStormExecutesOnce(t *testing.T) {
	s := newTestService(t, Config{})
	const n = 16
	var wg sync.WaitGroup
	ids := make([]string, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			res, code, err := s.Submit(JobSpec{App: testApp, Scheme: "baseline"})
			if err != nil {
				t.Errorf("storm submit %d: %v (code %d)", i, err, code)
				return
			}
			ids[i] = res.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for _, id := range ids[1:] {
		if id != ids[0] {
			t.Fatalf("storm produced divergent ids: %s vs %s", id, ids[0])
		}
	}
	if !s.Wait(ids[0], 2*time.Minute) {
		t.Fatal("storm job did not finish")
	}
	if runs := s.runner.Stats().Runs; runs != 1 {
		t.Fatalf("storm executed %d simulations, want exactly 1", runs)
	}
	sum := s.runlog.Summary()
	if sum.Executed != 1 || sum.Deduped != 0 {
		t.Fatalf("runner saw %d executions / %d joins; service dedupe should "+
			"have admitted exactly one run call", sum.Executed, sum.Deduped)
	}
}

// TestDistinctSeedsExecuteSeparately: jobs differing only in seed get
// different ids, run independently, and cache independently.
func TestDistinctSeedsExecuteSeparately(t *testing.T) {
	s := newTestService(t, Config{})
	a := submitOK(t, s, JobSpec{App: testApp, Scheme: "baseline", Seed: 1})
	b := submitOK(t, s, JobSpec{App: testApp, Scheme: "baseline", Seed: 2})
	if a.ID == b.ID {
		t.Fatal("distinct seeds share a job id")
	}
	s.Wait(a.ID, 2*time.Minute)
	s.Wait(b.ID, 2*time.Minute)
	if runs := s.runner.Stats().Runs; runs != 2 {
		t.Fatalf("runner executed %d runs, want 2", runs)
	}
}

// TestSubmitValidation: malformed specs reject with 400-class errors and
// never reach the queue.
func TestSubmitValidation(t *testing.T) {
	s := newTestService(t, Config{})
	for _, spec := range []JobSpec{
		{},
		{App: testApp},
		{Scheme: "baseline"},
		{App: testApp, Scheme: "no-such-scheme"},
		{App: testApp, Scheme: "baseline", Seed: -4},
	} {
		if _, code, err := s.Submit(spec); err == nil || code != http.StatusBadRequest {
			t.Errorf("spec %+v: code %d err %v, want 400", spec, code, err)
		}
	}
	// An unknown app passes canonicalization (the workload registry is the
	// Runner's concern) but must surface as a job error, not a hang.
	sub := submitOK(t, s, JobSpec{App: "NOPE", Scheme: "baseline"})
	if !s.Wait(sub.ID, time.Minute) {
		t.Fatal("unknown-app job never finished")
	}
	st, _ := s.Status(sub.ID)
	if st.State != StateError || st.Error == "" {
		t.Fatalf("unknown app: state %q err %q, want error state", st.State, st.Error)
	}
	if _, code, _ := s.Result(sub.ID); code != http.StatusInternalServerError {
		t.Fatalf("result of failed job: code %d, want 500", code)
	}
}

// TestQueueFullRejects: with no dispatchers draining it, the bounded queue
// accepts exactly QueueDepth jobs and 503s the rest; draining mode rejects
// everything.
func TestQueueFullRejects(t *testing.T) {
	// White box: a Service with no dispatcher pool, so the queue fills
	// deterministically.
	s := &Service{
		cfg:    Config{},
		runner: exp.NewRunner(exp.Options{Workers: 1}),
		runlog: obs.NewRunLog(obs.RunLogOptions{}),
		cache:  NewCache(1<<20, "", nil),
		jobs:   make(map[string]*job),
		queue:  make(chan *job, 2),
	}
	for seed := int64(1); seed <= 2; seed++ {
		res, code, err := s.Submit(JobSpec{App: testApp, Scheme: "baseline", Seed: seed})
		if err != nil || code != http.StatusAccepted {
			t.Fatalf("seed %d: code %d err %v, want 202", seed, code, err)
		}
		if res.State != StateQueued {
			t.Fatalf("seed %d: state %q, want queued", seed, res.State)
		}
	}
	if _, code, err := s.Submit(JobSpec{App: testApp, Scheme: "baseline", Seed: 3}); err == nil || code != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit: code %d err %v, want 503", code, err)
	}
	// A duplicate of a queued job still joins — dedupe needs no queue slot.
	res, code, err := s.Submit(JobSpec{App: testApp, Scheme: "baseline", Seed: 1})
	if err != nil || code != http.StatusAccepted || !res.Joined {
		t.Fatalf("dedupe against full queue: %+v code %d err %v", res, code, err)
	}

	s.closed = true
	if _, code, _ := s.Submit(JobSpec{App: testApp, Scheme: "baseline", Seed: 9}); code != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: code %d, want 503", code)
	}
}

// TestCloseDrainsAndFlushes: Close finishes every accepted job and persists
// the cache to the spill directory; the service then rejects new work.
func TestCloseDrainsAndFlushes(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Workers: 2, CacheDir: dir})
	var ids []string
	for seed := int64(1); seed <= 3; seed++ {
		ids = append(ids, submitOK(t, s, JobSpec{App: testApp, Scheme: "baseline", Seed: seed}).ID)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		st, ok := s.Status(id)
		if !ok || st.State != StateDone {
			t.Fatalf("after close: job %s state %+v", id, st)
		}
		f := filepath.Join(dir, id+".json")
		if fi, err := os.Stat(f); err != nil || fi.Size() == 0 {
			t.Fatalf("spill file %s missing after flush: %v", f, err)
		}
	}
	if _, code, _ := s.Submit(JobSpec{App: testApp, Scheme: "baseline", Seed: 9}); code != http.StatusServiceUnavailable {
		t.Fatalf("post-close submit: code %d, want 503", code)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}

	// Restart over the same spill directory: the document serves without a
	// single simulation.
	s2 := newTestService(t, Config{CacheDir: dir})
	again := submitOK(t, s2, JobSpec{App: testApp, Scheme: "baseline", Seed: 1})
	if !again.Cached {
		t.Fatalf("restarted daemon re-ran a spilled job: %+v", again)
	}
	if runs := s2.runner.Stats().Runs; runs != 0 {
		t.Fatalf("restart executed %d runs, want 0", runs)
	}
}

// TestHTTPAPI drives the full HTTP surface end to end: submit, status,
// result (with wait), report, events, cache stats, service stats, metrics.
func TestHTTPAPI(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestService(t, Config{Registry: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := ts.Client()

	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := cl.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, raw
	}

	// Bad specs: malformed JSON, unknown fields, missing app.
	for _, body := range []string{"{", `{"app":"jmein","bogus":1}`, `{"scheme":"baseline"}`} {
		if resp, _ := post(body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad body %q: status %d, want 400", body, resp.StatusCode)
		}
	}

	resp, raw := post(fmt.Sprintf(`{"app":%q,"scheme":"dyn-both"}`, testApp))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, raw)
	}
	var sub SubmitResult
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}

	// Blocking result fetch; bare-number wait means seconds.
	res, err := cl.Get(ts.URL + "/v1/jobs/" + sub.ID + "/result?wait=120")
	if err != nil {
		t.Fatal(err)
	}
	docRaw, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d: %s", res.StatusCode, docRaw)
	}
	var docM map[string]any
	if err := json.Unmarshal(docRaw, &docM); err != nil {
		t.Fatalf("result not valid JSON: %v", err)
	}
	if docM["app"] != testApp {
		t.Fatalf("result app = %v", docM["app"])
	}

	// Status carries the span and terminal state.
	res, err = cl.Get(ts.URL + "/v1/jobs/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	stRaw, _ := io.ReadAll(res.Body)
	res.Body.Close()
	var st JobStatus
	if err := json.Unmarshal(stRaw, &st); err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Span == nil {
		t.Fatalf("status: %s", stRaw)
	}

	// Unknown id: 404 everywhere.
	for _, path := range []string{"/v1/jobs/deadbeef", "/v1/jobs/deadbeef/result", "/v1/jobs/deadbeef/report", "/v1/jobs/deadbeef/events"} {
		res, err := cl.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, res.StatusCode)
		}
	}

	// Report: self-contained HTML rendered from the cached document.
	res, err = cl.Get(ts.URL + "/v1/jobs/" + sub.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK || !strings.Contains(res.Header.Get("Content-Type"), "text/html") {
		t.Fatalf("report: status %d type %s", res.StatusCode, res.Header.Get("Content-Type"))
	}
	for _, want := range []string{"<svg", "Run summary", testApp} {
		if !strings.Contains(string(page), want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(string(page), "<script") {
		t.Error("report is not self-contained")
	}

	// Events: the terminal job streams at least its final state and closes.
	res, err = cl.Get(ts.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if !strings.Contains(string(events), `"state":"done"`) {
		t.Fatalf("event stream missing terminal state: %s", events)
	}

	// Cache and service stats.
	res, err = cl.Get(ts.URL + "/v1/cache/stats")
	if err != nil {
		t.Fatal(err)
	}
	var cs CacheStats
	if err := json.NewDecoder(res.Body).Decode(&cs); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if cs.Entries != 1 {
		t.Fatalf("cache stats entries = %d, want 1", cs.Entries)
	}
	res, err = cl.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var svcStats Stats
	if err := json.NewDecoder(res.Body).Decode(&svcStats); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if svcStats.Runner.Runs != 1 || svcStats.Jobs != 1 {
		t.Fatalf("service stats: %+v", svcStats)
	}

	// Daemon metric families are live on the same handler.
	res, err = cl.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(res.Body)
	res.Body.Close()
	for _, want := range []string{
		`lazyd_jobs_total{state="submitted"} 1`,
		`lazyd_jobs_total{state="executed"} 1`,
		"lazyd_cache_misses_total 1",
		"lazyd_cache_entries 1",
		"lazyd_queue_depth 0",
		"lazysim_sweep_runs_total", // runner lifecycle families share the registry
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
