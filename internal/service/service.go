package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"lazydram/internal/exp"
	"lazydram/internal/obs"
	"lazydram/internal/report"
	"lazydram/internal/rundoc"
)

// Job lifecycle states as reported by the HTTP API. While a job is
// dispatched, GET /v1/jobs/{id} refines "running" through the Runner's
// lifecycle span (golden-wait, queued-for-worker, running).
const (
	StateQueued  = "queued"  // accepted, waiting for a dispatcher
	StateRunning = "running" // handed to a dispatcher (see span for detail)
	StateDone    = "done"    // result document available
	StateError   = "error"   // simulation failed; see error field
)

// Config configures a Service.
type Config struct {
	// Workers bounds concurrent simulations (0: GOMAXPROCS).
	Workers int
	// QueueDepth bounds accepted-but-not-dispatched jobs; a full queue
	// rejects new work with 503 (0: 64).
	QueueDepth int
	// CacheBytes bounds the resident result cache (0: 256 MiB).
	CacheBytes int64
	// CacheDir enables the disk spill tier ("" disables).
	CacheDir string
	// ShardPartitions / ShardWorkers pass through to exp.Options.
	ShardPartitions bool
	ShardWorkers    int
	// Registry, when non-nil, receives the daemon and sweep metric families
	// (serve it via the handler's /metrics and /vars).
	Registry *obs.Registry
}

// job is one tracked submission chain: the canonical Job plus its lifecycle.
// All mutable fields are guarded by Service.mu; done closes exactly once
// when the job reaches a terminal state.
type job struct {
	*Job
	done chan struct{}

	state string
	err   string
	joins int // later submissions that attached to this record
}

// Service is the simulation-as-a-service core: admission, dedupe, the
// bounded queue, the dispatcher pool, and the result cache. Wrap Handler()
// in an http.Server to serve it; call Close for a graceful drain.
type Service struct {
	cfg    Config
	runner *exp.Runner
	runlog *obs.RunLog
	met    *obs.DaemonMetrics
	cache  *Cache

	mu     sync.Mutex
	jobs   map[string]*job // by content address
	queue  chan *job
	closed bool

	dispatchers sync.WaitGroup
}

// New creates a Service and starts its dispatcher pool.
func New(cfg Config) *Service {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 256 << 20
	}
	met := obs.NewDaemonMetrics(cfg.Registry)
	runlog := obs.NewRunLog(obs.RunLogOptions{Metrics: cfg.Registry})
	runner := exp.NewRunner(exp.Options{
		Workers:         cfg.Workers,
		ShardPartitions: cfg.ShardPartitions,
		ShardWorkers:    cfg.ShardWorkers,
		RunLog:          runlog,
	})
	s := &Service{
		cfg:    cfg,
		runner: runner,
		runlog: runlog,
		met:    met,
		cache:  NewCache(cfg.CacheBytes, cfg.CacheDir, met),
		jobs:   make(map[string]*job),
		queue:  make(chan *job, cfg.QueueDepth),
	}
	// One dispatcher per worker slot: the queue bounds admission, the
	// Runner's semaphore bounds execution, and matching the two means a
	// dispatched job is never parked waiting for a slot behind another
	// dispatcher's job.
	n := runner.Stats().Workers
	s.dispatchers.Add(n)
	for i := 0; i < n; i++ {
		go s.dispatch()
	}
	return s
}

// SubmitResult is the POST /v1/jobs response document.
type SubmitResult struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Cached is set when this submission was answered from the result cache
	// without queueing anything.
	Cached bool `json:"cached,omitempty"`
	// Joined is set when this submission attached to an identical job
	// already queued or running.
	Joined bool `json:"joined,omitempty"`
}

// Submit admits one job: cache hit, dedupe join, or enqueue. The returned
// status is the HTTP code the API reports (200 terminal, 202 accepted,
// 503 saturated or draining).
func (s *Service) Submit(spec JobSpec) (SubmitResult, int, error) {
	cj, err := Canonicalize(spec)
	if err != nil {
		s.met.JobOutcome(obs.JobRejected)
		return SubmitResult{}, http.StatusBadRequest, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.met.JobOutcome(obs.JobRejected)
		return SubmitResult{}, http.StatusServiceUnavailable, fmt.Errorf("service: draining")
	}
	s.met.JobOutcome(obs.JobSubmitted)

	if j, ok := s.jobs[cj.ID]; ok {
		switch j.state {
		case StateDone:
			// Serve the cached document. If both the resident tier and the
			// spill lost it, fall through to re-enqueue: the Runner's memo
			// makes the re-run a cheap re-encode.
			if _, ok := s.cache.Get(j.ID); ok {
				s.met.JobOutcome(obs.JobCacheHit)
				return SubmitResult{ID: j.ID, State: j.state, Cached: true}, http.StatusOK, nil
			}
		case StateError:
			// Failed entries are uncached in the Runner too; a resubmission
			// is an explicit retry.
		default:
			j.joins++
			s.met.JobOutcome(obs.JobDeduped)
			return SubmitResult{ID: j.ID, State: j.state, Joined: true}, http.StatusAccepted, nil
		}
		// Reset the terminal record and run it again. Mutate only after the
		// enqueue succeeds, so a full queue leaves the record terminal
		// instead of stranding it in a queued state nothing will ever drain.
		if !s.enqueueLocked(j) {
			s.met.JobOutcome(obs.JobRejected)
			return SubmitResult{}, http.StatusServiceUnavailable, fmt.Errorf("service: queue full")
		}
		j.state = StateQueued
		j.err = ""
		j.done = make(chan struct{})
		return SubmitResult{ID: j.ID, State: j.state}, http.StatusAccepted, nil
	}

	// First sight of this key: answer from the cache without a job record
	// when possible (e.g. a spilled document from a previous daemon life).
	if _, ok := s.cache.Get(cj.ID); ok {
		j := &job{Job: cj, done: make(chan struct{}), state: StateDone}
		close(j.done)
		s.jobs[cj.ID] = j
		s.met.JobOutcome(obs.JobCacheHit)
		return SubmitResult{ID: j.ID, State: j.state, Cached: true}, http.StatusOK, nil
	}

	j := &job{Job: cj, done: make(chan struct{}), state: StateQueued}
	if !s.enqueueLocked(j) {
		s.met.JobOutcome(obs.JobRejected)
		return SubmitResult{}, http.StatusServiceUnavailable, fmt.Errorf("service: queue full")
	}
	s.jobs[cj.ID] = j
	return SubmitResult{ID: j.ID, State: j.state}, http.StatusAccepted, nil
}

// enqueueLocked offers the job to the bounded queue without blocking.
func (s *Service) enqueueLocked(j *job) bool {
	select {
	case s.queue <- j:
		if s.met != nil {
			s.met.QueueDepth.Add(1)
		}
		return true
	default:
		return false
	}
}

// dispatch is one dispatcher goroutine: it drains the queue until Close
// closes it, running each job to a terminal state.
func (s *Service) dispatch() {
	defer s.dispatchers.Done()
	for j := range s.queue {
		if s.met != nil {
			s.met.QueueDepth.Add(-1)
			s.met.InFlight.Add(1)
		}
		s.execute(j)
		if s.met != nil {
			s.met.InFlight.Add(-1)
		}
	}
}

// execute runs one job through the Runner, encodes the result document, and
// stores it in the cache. The document's wall clock is the memoized
// simulation time (Runner.Timing), so re-encoding after a cache loss
// reproduces identical bytes within one daemon life.
func (s *Service) execute(j *job) {
	s.setState(j, StateRunning)
	res, err := s.runner.Run(j.Spec.App, j.Scheme, j.Variant)
	if err != nil {
		s.finish(j, err)
		return
	}
	secs, _ := s.runner.Timing(j.Spec.App, j.Scheme, j.Variant)
	wall := time.Duration(secs * float64(time.Second))
	doc := rundoc.Build(&res.Run, res, j.Spec.Seed, wall, topBanks)
	raw, err := rundoc.Encode(doc)
	if err != nil {
		s.finish(j, err)
		return
	}
	s.cache.Put(j.ID, raw)
	s.finish(j, nil)
}

func (s *Service) setState(j *job, state string) {
	s.mu.Lock()
	j.state = state
	s.mu.Unlock()
}

// finish moves the job to its terminal state and wakes every waiter.
func (s *Service) finish(j *job, err error) {
	s.mu.Lock()
	if err != nil {
		j.state = StateError
		j.err = err.Error()
		s.met.JobOutcome(obs.JobErrored)
	} else {
		j.state = StateDone
		s.met.JobOutcome(obs.JobExecuted)
	}
	close(j.done)
	s.mu.Unlock()
}

// Close stops admission, drains every queued and in-flight job to a
// terminal state, and flushes the cache's resident tier to the spill
// directory. Safe to call more than once.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.dispatchers.Wait()
		return nil
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.dispatchers.Wait()
	return s.cache.Flush()
}

// JobStatus is the GET /v1/jobs/{id} document.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// Joins counts later identical submissions that attached to this job.
	Joins int     `json:"joins,omitempty"`
	Spec  JobSpec `json:"spec"`
	// Key is the canonical run key the ID content-addresses.
	Key string `json:"key"`
	// Span is the Runner-level lifecycle span (golden-wait, worker queue,
	// execution, timings) once the job has reached the Runner.
	Span *obs.RunSpanJSON `json:"span,omitempty"`
}

// Status reports one job's lifecycle; ok is false for an unknown id.
func (s *Service) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobStatus{}, false
	}
	st := JobStatus{
		ID: j.ID, State: j.state, Error: j.err, Joins: j.joins,
		Spec: j.Spec, Key: j.Key,
	}
	s.mu.Unlock()
	if sp, ok := s.runlog.SpanByKey(st.Key); ok {
		st.Span = &sp
		// While dispatched, the span's state is strictly more precise than
		// the service's coarse "running" (golden-wait vs queued-for-worker
		// vs executing).
		if st.State == StateRunning {
			st.State = sp.State
		}
	}
	return st, true
}

// Result returns the job's cached document. code is the HTTP status the API
// reports: 200 with the bytes, 404 unknown id, 409 not terminal, 410 result
// evicted beyond recovery, 500 terminal error state.
func (s *Service) Result(id string) (raw []byte, code int, err error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	var state, jerr string
	if ok {
		state, jerr = j.state, j.err
	}
	s.mu.Unlock()
	if !ok {
		return nil, http.StatusNotFound, fmt.Errorf("service: unknown job %s", id)
	}
	switch state {
	case StateError:
		return nil, http.StatusInternalServerError, fmt.Errorf("service: job failed: %s", jerr)
	case StateDone:
		if raw, ok := s.cache.Get(id); ok {
			return raw, http.StatusOK, nil
		}
		return nil, http.StatusGone, fmt.Errorf("service: result evicted; resubmit the job")
	default:
		return nil, http.StatusConflict, fmt.Errorf("service: job is %s; retry after completion", state)
	}
}

// Wait blocks until the job reaches a terminal state, the timeout elapses
// (timeout > 0), or the job id is unknown.
func (s *Service) Wait(id string, timeout time.Duration) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return false
	}
	if timeout <= 0 {
		<-j.done
		return true
	}
	select {
	case <-j.done:
		return true
	case <-time.After(timeout):
		return false
	}
}

// Stats is the GET /v1/stats document.
type Stats struct {
	Runner     exp.Stats  `json:"runner"`
	QueueDepth int        `json:"queue_depth"`
	Jobs       int        `json:"jobs"`
	Draining   bool       `json:"draining"`
	Cache      CacheStats `json:"cache"`
}

// Stats snapshots the service.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	st := Stats{QueueDepth: len(s.queue), Jobs: len(s.jobs), Draining: s.closed}
	s.mu.Unlock()
	st.Runner = s.runner.Stats()
	st.Cache = s.cache.Stats()
	return st
}

// Handler returns the HTTP API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/cache/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.cache.Stats())
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if s.cfg.Registry != nil {
		mux.Handle("GET /metrics", s.cfg.Registry.Handler())
		mux.Handle("GET /vars", s.cfg.Registry.ExpvarHandler())
	}
	return mux
}

// apiError is the JSON error envelope for every non-2xx response.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.met.JobOutcome(obs.JobRejected)
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad job spec: " + err.Error()})
		return
	}
	res, code, err := s.Submit(spec)
	if err != nil {
		writeJSON(w, code, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, code, res)
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Status(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleResult serves the cached document. ?wait=DURATION blocks until the
// job is terminal (bounded by the duration; "wait=1" style bare numbers are
// seconds), so clients can submit-then-fetch without polling.
func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if wv := r.URL.Query().Get("wait"); wv != "" {
		d, err := time.ParseDuration(wv)
		if err != nil {
			if secs, serr := time.ParseDuration(wv + "s"); serr == nil {
				d = secs
			} else {
				writeJSON(w, http.StatusBadRequest, apiError{Error: "bad wait duration"})
				return
			}
		}
		s.Wait(id, d)
	}
	raw, code, err := s.Result(id)
	if err != nil {
		writeJSON(w, code, apiError{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(raw)
}

// handleReport renders the cached document as the self-contained lazyreport
// HTML page, on demand.
func (s *Service) handleReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	raw, code, err := s.Result(id)
	if err != nil {
		writeJSON(w, code, apiError{Error: err.Error()})
		return
	}
	doc, err := report.Parse(raw, id)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, report.BuildHTML([]*report.Doc{doc}))
}

// handleEvents streams the job's lifecycle as server-sent events: one
// `data:` line per state change (the JobStatus document), ending after the
// terminal state. Poll-based (100 ms) — state changes are seconds apart.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.Status(id); !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")

	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	last := ""
	for {
		st, ok := s.Status(id)
		if !ok {
			return
		}
		raw, _ := json.Marshal(st)
		if cur := string(raw); cur != last {
			last = cur
			fmt.Fprintf(w, "data: %s\n\n", raw)
			if canFlush {
				fl.Flush()
			}
		}
		if st.State == StateDone || st.State == StateError {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
		}
	}
}
