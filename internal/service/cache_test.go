package service

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func doc(i int, size int) (string, []byte) {
	id := fmt.Sprintf("doc-%03d", i)
	return id, bytes.Repeat([]byte{byte('a' + i%26)}, size)
}

// TestCacheLRUEvictionBound: the resident tier never exceeds its byte bound
// (beyond the single-newest-entry exemption), evicts in LRU order, and Get
// refreshes recency.
func TestCacheLRUEvictionBound(t *testing.T) {
	c := NewCache(1000, "", nil)
	for i := 0; i < 10; i++ {
		id, d := doc(i, 300)
		c.Put(id, d)
		if st := c.Stats(); st.Bytes > 1000 {
			t.Fatalf("after put %d: resident bytes %d > bound 1000", i, st.Bytes)
		}
	}
	st := c.Stats()
	if st.Entries != 3 || st.Bytes != 900 {
		t.Fatalf("stats = %+v, want 3 entries / 900 bytes", st)
	}
	if st.Evictions != 7 {
		t.Fatalf("evictions = %d, want 7", st.Evictions)
	}
	// Without a spill tier, evicted documents are gone; resident ones serve.
	if _, ok := c.Get("doc-000"); ok {
		t.Fatal("evicted doc-000 still served")
	}
	if _, ok := c.Get("doc-009"); !ok {
		t.Fatal("resident doc-009 missing")
	}

	// Recency: touch the LRU resident entry, insert one more, and the
	// untouched middle entry must be the casualty.
	if _, ok := c.Get("doc-007"); !ok {
		t.Fatal("doc-007 should be resident")
	}
	id, d := doc(10, 300)
	c.Put(id, d)
	if _, ok := c.Get("doc-007"); !ok {
		t.Fatal("recently-used doc-007 was evicted")
	}
	if _, ok := c.Get("doc-008"); ok {
		t.Fatal("LRU doc-008 survived eviction")
	}
}

// TestCacheOversizeDocument: a document larger than the whole bound is still
// admitted (it must serve the request that produced it) and simply evicts
// everything else.
func TestCacheOversizeDocument(t *testing.T) {
	c := NewCache(100, "", nil)
	c.Put("small", []byte("x"))
	c.Put("huge", bytes.Repeat([]byte("y"), 500))
	if got, ok := c.Get("huge"); !ok || len(got) != 500 {
		t.Fatalf("oversize document not served: ok=%v len=%d", ok, len(got))
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want only the oversize document", st.Entries)
	}
}

// TestCacheSpillRoundTrip: eviction spills to disk, a later Get reloads the
// exact bytes, Flush persists the resident tier, and a fresh Cache over the
// same directory (a daemon restart) serves everything cold.
func TestCacheSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(700, dir, nil)
	docs := map[string][]byte{}
	for i := 0; i < 6; i++ {
		id, d := doc(i, 300)
		docs[id] = d
		c.Put(id, d)
	}
	// 6×300 into a 700-byte tier: four spilled to disk.
	if st := c.Stats(); st.SpillWrites != 4 {
		t.Fatalf("spill writes = %d, want 4 (stats %+v)", st.SpillWrites, st)
	}
	got, ok := c.Get("doc-000")
	if !ok || !bytes.Equal(got, docs["doc-000"]) {
		t.Fatalf("spilled doc-000 did not round-trip (ok=%v)", ok)
	}
	if st := c.Stats(); st.SpillReads != 1 {
		t.Fatalf("spill reads = %d, want 1", st.SpillReads)
	}

	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 6 {
		t.Fatalf("after flush: %d spill files, want all 6", len(files))
	}

	// Restart: a fresh cache over the same directory serves every document.
	c2 := NewCache(700, dir, nil)
	for id, want := range docs {
		got, ok := c2.Get(id)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("restart: %s not served from spill (ok=%v)", id, ok)
		}
	}

	// The write-rename protocol must not leave temp files behind.
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(tmps) != 0 {
		t.Fatalf("leftover temp files: %v", tmps)
	}
}

// TestCacheSpillIsAtomic: a pre-existing corrupt temp file never shadows the
// real document.
func TestCacheSpillTempIgnored(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(10, dir, nil)
	if err := os.WriteFile(filepath.Join(dir, "key.json.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("key"); ok {
		t.Fatal("temp file served as a document")
	}
}
