package service

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"lazydram/internal/obs"
)

// Cache is the content-addressed result store: completed run documents keyed
// by the job's content address (hex SHA-256 of the canonical run key). The
// resident tier is a byte-bounded LRU; when a spill directory is configured,
// evicted documents move to disk (<id>.json) and reload transparently on the
// next Get, so the cache's effective capacity is the disk, with the LRU as
// its hot set. Because same-key runs are bit-identical (CI-gated
// determinism), a cached document is exactly the bytes a fresh run would
// produce — serving it verbatim is correct, not approximate.
//
// Safe for concurrent use. Disk I/O happens under the lock: documents are
// small (tens of KB) and the simplicity beats a second locking protocol.
type Cache struct {
	mu    sync.Mutex
	max   int64
	bytes int64
	ll    *list.List               // front = most recently used
	items map[string]*list.Element // id → element holding *centry

	dir string // spill directory ("" disables the disk tier)

	hits, misses, evictions uint64
	spillWrites, spillReads uint64

	met *obs.DaemonMetrics
}

type centry struct {
	id  string
	doc []byte
	// spilled records that <id>.json already holds these bytes, so eviction
	// and Flush can skip the rewrite.
	spilled bool
}

// NewCache creates a cache bounded to maxBytes of resident documents
// (minimum one document is always admitted). dir, when non-empty, enables
// the disk spill tier and is created on first use. met may be nil.
func NewCache(maxBytes int64, dir string, met *obs.DaemonMetrics) *Cache {
	return &Cache{
		max:   maxBytes,
		ll:    list.New(),
		items: make(map[string]*list.Element),
		dir:   dir,
		met:   met,
	}
}

func (c *Cache) path(id string) string {
	return filepath.Join(c.dir, id+".json")
}

// Get returns the cached document for id, consulting the resident tier then
// the spill directory. A disk hit re-admits the document to the resident
// tier (it is now hot again).
func (c *Cache) Get(id string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[id]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		if c.met != nil {
			c.met.CacheHits.Add(1)
		}
		return el.Value.(*centry).doc, true
	}
	if c.dir != "" {
		if doc, err := os.ReadFile(c.path(id)); err == nil {
			c.spillReads++
			c.hits++
			if c.met != nil {
				c.met.SpillReads.Add(1)
				c.met.CacheHits.Add(1)
			}
			c.admitLocked(id, doc, true)
			return doc, true
		}
	}
	c.misses++
	if c.met != nil {
		c.met.CacheMisses.Add(1)
	}
	return nil, false
}

// Put stores the document for id. Re-putting an existing id refreshes its
// recency but keeps the original bytes (same key means same bytes by the
// determinism contract, so there is nothing to update).
func (c *Cache) Put(id string, doc []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[id]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.admitLocked(id, doc, false)
}

// admitLocked inserts the entry at the front and evicts from the back until
// the resident tier fits the bound again. The newest entry itself is never
// evicted: a document larger than the whole bound still serves the request
// that produced it and simply evicts everything else.
func (c *Cache) admitLocked(id string, doc []byte, spilled bool) {
	el := c.ll.PushFront(&centry{id: id, doc: doc, spilled: spilled})
	c.items[id] = el
	c.bytes += int64(len(doc))
	for c.bytes > c.max && c.ll.Len() > 1 {
		c.evictLocked()
	}
	c.publishLocked()
}

// evictLocked spills and drops the least recently used entry.
func (c *Cache) evictLocked() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*centry)
	c.spillLocked(e)
	c.ll.Remove(el)
	delete(c.items, e.id)
	c.bytes -= int64(len(e.doc))
	c.evictions++
	if c.met != nil {
		c.met.CacheEvictions.Add(1)
	}
}

// spillLocked writes the entry to the disk tier if configured and not
// already there. Spill failures are swallowed: losing a spill degrades the
// cache to a miss later, never corrupts a result (Flush, which callers rely
// on for durability, re-checks and reports).
func (c *Cache) spillLocked(e *centry) {
	if c.dir == "" || e.spilled {
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	// Write-rename so a torn write never leaves a half document a later Get
	// would serve.
	tmp := c.path(e.id) + ".tmp"
	if err := os.WriteFile(tmp, e.doc, 0o644); err != nil {
		return
	}
	if err := os.Rename(tmp, c.path(e.id)); err != nil {
		os.Remove(tmp)
		return
	}
	e.spilled = true
	c.spillWrites++
	if c.met != nil {
		c.met.SpillWrites.Add(1)
	}
}

// Flush writes every resident document to the spill directory (a no-op
// without one). Called on graceful shutdown so a restarted daemon finds the
// whole working set on disk.
func (c *Cache) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*centry)
		before := c.spillWrites
		c.spillLocked(e)
		if !e.spilled && c.spillWrites == before {
			return fmt.Errorf("cache: spill of %s failed", e.id)
		}
	}
	return nil
}

// publishLocked refreshes the resident-tier gauges.
func (c *Cache) publishLocked() {
	if c.met == nil {
		return
	}
	c.met.CacheEntries.Set(float64(c.ll.Len()))
	c.met.CacheBytes.Set(float64(c.bytes))
}

// CacheStats is the /v1/cache/stats document.
type CacheStats struct {
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes"`

	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`

	SpillDir    string `json:"spill_dir,omitempty"`
	SpillWrites uint64 `json:"spill_writes"`
	SpillReads  uint64 `json:"spill_reads"`
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries: c.ll.Len(), Bytes: c.bytes, MaxBytes: c.max,
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		SpillDir: c.dir, SpillWrites: c.spillWrites, SpillReads: c.spillReads,
	}
}
