package sim_test

import (
	"reflect"
	"testing"

	"lazydram/internal/approx"
	"lazydram/internal/fault"
	"lazydram/internal/mc"
	"lazydram/internal/sim"
)

// withFault enables injection at the given rates (seed 0 defaults to the run
// seed inside Simulate).
func withFault(ber, density float64, seed int64) func(*sim.Config) {
	return func(c *sim.Config) {
		c.Fault = fault.DefaultConfig()
		c.Fault.Enabled = true
		c.Fault.BusBER = ber
		c.Fault.WeakCellDensity = density
		c.Fault.Seed = seed
	}
}

// TestFaultZeroRatesBitIdentical is the non-perturbation oracle: turning the
// injector on with every rate at zero must not change a single stat or output
// byte relative to a fault-off run. This guards the hot read path — the hook
// may branch, but must never draw from an RNG or touch data when idle.
func TestFaultZeroRatesBitIdentical(t *testing.T) {
	off := simulate(t, "SCP", mc.Baseline)
	on := simulate(t, "SCP", mc.Baseline, withFault(0, 0, 0))
	if !reflect.DeepEqual(off.Run, on.Run) {
		t.Fatalf("zero-rate fault run perturbed stats:\noff: %+v\non:  %+v", off.Run, on.Run)
	}
	for i := range off.Output {
		if off.Output[i] != on.Output[i] {
			t.Fatalf("zero-rate fault run changed output[%d]: %v vs %v",
				i, on.Output[i], off.Output[i])
		}
	}
	fs := on.Telemetry.Fault
	if fs == nil {
		t.Fatal("fault-enabled run missing telemetry.fault")
	}
	if fs.TotalFlips != 0 || fs.CorruptedReads != 0 {
		t.Fatalf("zero-rate run injected: %+v", fs)
	}
	if fs.Reads == 0 {
		t.Fatal("injector saw no reads; hook not wired")
	}
}

// TestFaultDeterminism: the same fault seed must reproduce the exact same
// faults — same counts, same locations (the digest folds every
// (channel,bank,row,col,offset,mode) tuple in order), same output bytes.
func TestFaultDeterminism(t *testing.T) {
	run := func() *sim.Result {
		return simulate(t, "LPS", mc.Baseline, withFault(1e-6, 1e-5, 7))
	}
	a, b := run(), run()
	fa, fb := a.Telemetry.Fault, b.Telemetry.Fault
	if fa.Digest != fb.Digest {
		t.Fatalf("digests differ: %016x vs %016x", fa.Digest, fb.Digest)
	}
	if !reflect.DeepEqual(a.Run.Mem, b.Run.Mem) {
		t.Fatal("same fault seed produced different memory stats")
	}
	for i := range a.Output {
		if a.Output[i] != b.Output[i] {
			t.Fatalf("same fault seed produced different output at %d", i)
		}
	}
	if fa.TotalFlips == 0 {
		t.Fatal("determinism check vacuous: no faults injected")
	}

	c := simulate(t, "LPS", mc.Baseline, withFault(1e-6, 1e-5, 8))
	if fc := c.Telemetry.Fault; fc.Digest == fa.Digest {
		t.Fatalf("different fault seeds share digest %016x", fa.Digest)
	}
}

// TestFaultCorruptionReachesOutput: injected flips must propagate through
// mc -> caches -> cores into the workload's output and register as nonzero
// application error against the pristine functional run.
func TestFaultCorruptionReachesOutput(t *testing.T) {
	res := simulate(t, "SCP", mc.Baseline, withFault(0, 1e-4, 0))
	if res.Run.Mem.FaultReads == 0 {
		t.Fatal("no reads corrupted at density 1e-4")
	}
	g := golden(t, "SCP")
	errv := approx.MeanRelativeError(g, res.Output)
	if errv == 0 {
		t.Fatal("corrupted reads did not reach the workload output")
	}
	if errv > 10 {
		t.Fatalf("application error %.3f implausibly large for density 1e-4", errv)
	}
	q := res.Telemetry.Fault.Quality
	if q == nil || q.Lines == 0 {
		t.Fatal("fault quality log recorded no corrupted lines")
	}
}

// TestFaultTelemetryReconciles: per-mode telemetry counts must equal the
// stats.Mem totals the DRAM path accumulated, the bank matrix must sum to the
// aggregate, and Validate's fault invariants must hold on a real run.
func TestFaultTelemetryReconciles(t *testing.T) {
	res := simulate(t, "SCP", mc.Baseline, withFault(1e-6, 1e-5, 0))
	m := &res.Run.Mem
	fs := res.Telemetry.Fault
	if fs.ActFlips != m.FaultActFlips || fs.RetFlips != m.FaultRetFlips ||
		fs.BusFlips != m.FaultBusFlips || fs.CorruptedReads != m.FaultReads {
		t.Fatalf("telemetry/stats mismatch:\ntelemetry: %+v\nstats: act=%d ret=%d bus=%d reads=%d",
			fs, m.FaultActFlips, m.FaultRetFlips, m.FaultBusFlips, m.FaultReads)
	}
	if fs.TotalFlips != m.TotalFaultFlips() {
		t.Fatalf("total flips %d != stats total %d", fs.TotalFlips, m.TotalFaultFlips())
	}
	var bankSum uint64
	for i := range m.Banks {
		bankSum += m.Banks[i].FaultFlips
	}
	if bankSum != m.TotalFaultFlips() {
		t.Fatalf("bank fault flips sum %d != total %d", bankSum, m.TotalFaultFlips())
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate failed on fault run: %v", err)
	}
	if fs.TotalFlips == 0 {
		t.Fatal("reconciliation vacuous: no faults injected")
	}
	// The injector defaulted its seed to the run seed.
	if fs.Seed != 1 {
		t.Fatalf("fault seed %d, want run seed 1", fs.Seed)
	}
}

// TestFaultSeedDefaultIndependent: an explicit fault seed decouples the fault
// pattern from the workload seed — same inputs, different faults.
func TestFaultSeedDefaultIndependent(t *testing.T) {
	a := simulate(t, "jmein", mc.Baseline, withFault(1e-6, 1e-5, 11))
	b := simulate(t, "jmein", mc.Baseline, withFault(1e-6, 1e-5, 12))
	if a.Run.Mem.Reads != b.Run.Mem.Reads {
		t.Fatalf("fault seed changed the traffic itself: %d vs %d reads",
			a.Run.Mem.Reads, b.Run.Mem.Reads)
	}
	if a.Telemetry.Fault.Digest == b.Telemetry.Fault.Digest {
		t.Fatal("fault seeds 11 and 12 produced identical fault patterns")
	}
}
