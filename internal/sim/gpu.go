package sim

import (
	"fmt"
	"iter"
	"math/rand"
	"time"

	"lazydram/internal/approx"
	"lazydram/internal/core"
	"lazydram/internal/energy"
	"lazydram/internal/fault"
	"lazydram/internal/icnt"
	"lazydram/internal/mc"
	"lazydram/internal/memimage"
	"lazydram/internal/obs"
	"lazydram/internal/stats"
)

// Result carries everything a run produced.
type Result struct {
	Run    stats.Run
	Output []float32
	// Image is the final memory image, with all dirty cache lines flushed;
	// useful for inspecting buffers beyond Output.
	Image *memimage.Image
	// VPPredictions / VPFallbacks aggregate the value-prediction unit's
	// activity across partitions.
	VPPredictions uint64
	VPFallbacks   uint64
	// Telemetry holds the run's observability digest (nil when Config.Obs is
	// disabled); Trace the raw DRAM command ring for file export; Audit the
	// raw scheduler decision log for JSONL export.
	Telemetry *obs.Telemetry
	Trace     *obs.CmdTrace
	Audit     *obs.AuditLog
	// Digest is the state-digest flight recorder's record stream (nil unless
	// Config.Obs.DigestEvery > 0), for JSONL export and divergence hunts.
	Digest *obs.DigestLog
	// Channels holds one statistics snapshot per memory channel (deep
	// copies, in channel order) — the unmerged channel × bank counter
	// matrix behind Run.Mem's aggregates.
	Channels []stats.Mem
	// EnergyByChannel attributes the run's energy per channel and bank
	// under the configured profile; its totals sum to Run.MemEnergy.
	EnergyByChannel []energy.ChannelEnergy
}

// GPU is one fully wired simulated GPU executing one kernel. Partitions,
// interconnect and clocks persist across the kernel's phases (mirroring the
// L2 staying warm across dependent kernel launches); SMs are re-seeded per
// phase.
type GPU struct {
	cfg    Config
	scheme mc.Scheme
	kern   Kernel
	im     *memimage.Image

	sms        []*core.SM
	partitions []*partition
	reqNet     *icnt.Network
	replyNet   *icnt.Network

	coreCycle uint64
	memCycle  uint64
	memAcc    float64

	// Stepwise-execution state: phase is the kernel phase the next Step will
	// advance, seeded records whether its SMs have been launched yet, and
	// memPerCore is the fixed memory-per-core clock ratio.
	phase      int
	seeded     bool
	memPerCore float64

	insts      uint64
	l1Accesses uint64
	l1Misses   uint64

	// Observability state; col is nil (and tr/sampler with it) when disabled,
	// so the hot loop pays a single nil check per hook. tr is the SM-side
	// tracer, only observed from the serial sections; everything a partition
	// records goes to its private obs shard. met publishes live metrics into
	// the run's registry for concurrent scraping.
	col     *obs.Collector
	tr      *obs.Tracer
	sampler *obs.Sampler
	met     *gpuMetrics
	prev    sampleState
	dig     *obs.DigestLog // flight recorder; nil unless Obs.DigestEvery > 0

	// pool, when non-nil (Config.ShardPartitions), ticks partitions on
	// worker goroutines with a bulk-synchronous barrier per cycle.
	pool *shardPool

	// host is the host-side phase profiler (non-nil only with Obs.Census):
	// sampled wall-clock per Step phase, reported under telemetry
	// census.host.
	host *hostProf
}

// sampleState remembers the cumulative counters at the previous time-series
// sample so windows report deltas.
type sampleState struct {
	insts uint64
	core  uint64
	busy  uint64
	acts  uint64
}

// NewGPU builds a GPU for the kernel under the given scheme; Setup has
// already populated im.
func NewGPU(cfg Config, scheme mc.Scheme, kern Kernel, im *memimage.Image) *GPU {
	g := &GPU{cfg: cfg, scheme: scheme, kern: kern, im: im}
	g.memPerCore = cfg.MemClockMHz / cfg.CoreClockMHz
	annot := kern.Annotations()
	if scheme.AMS == mc.Off {
		annot = nil // nothing is approximable without AMS
	}
	if g.cfg.Fault.Enabled {
		// Injected-error telemetry rides the fault model unconditionally so
		// every fault run can report where its corruption landed.
		g.cfg.Obs.FaultQuality = true
	}
	g.col = obs.NewCollector(g.cfg.Obs)
	nParts := cfg.AddrMap.NumChannels
	// Observability state is sharded per partition unconditionally: the
	// sequential and sharded tick paths then write the exact same per-shard
	// structures, so their merged digests are identical by construction.
	g.col.EnsureShards(nParts)
	if g.col != nil {
		g.tr = g.col.Tracer
		g.sampler = g.col.Sampler
		g.dig = g.col.Digest
		if g.col.Metrics != nil {
			g.met = newGPUMetrics(g.col.Metrics, kern.Name(), scheme.Name(),
				nParts, cfg.DRAM.NumBanks, cfg.Obs.MetricsEvery, cfg.Obs.Census)
		}
	}
	for p := 0; p < nParts; p++ {
		g.partitions = append(g.partitions, newPartition(p, &g.cfg, im, annot, scheme, g.col.Shard(p)))
	}
	g.reqNet = icnt.New(g.cfg.icntConfig(nParts))
	g.replyNet = icnt.New(g.cfg.icntConfig(cfg.NumSMs))
	if cfg.ShardPartitions && nParts > 1 {
		g.pool = newShardPool(g.partitions, cfg.ShardWorkers)
	}
	if g.cfg.Obs.Census {
		g.host = &hostProf{}
	}
	return g
}

// Run executes every phase of the kernel to completion and returns
// aggregated statistics. It is Step in a loop: callers that need lockstep
// control (cmd/lazydiverge) drive Step directly and then call Finish.
func (g *GPU) Run() (*Result, error) {
	defer g.pool.close() // stop the shard workers on every exit path
	for {
		done, err := g.Step()
		if err != nil {
			return nil, err
		}
		if done {
			return g.collect(), nil
		}
	}
}

// Step advances the simulation by exactly one core cycle (seeding the next
// kernel phase lazily, so the first Step of a phase launches its SMs). It
// returns done=true once every phase has finished, after which further Steps
// are no-ops. A non-nil error means the cycle limit was exceeded; the GPU is
// shut down and must not be stepped further.
//
// Two GPUs built from the same kernel/config/seed and stepped in lockstep
// stay cycle-aligned: Step's body is runPhase's former loop body, so the
// clock-crossing (memAcc) and phase-boundary schedule are bit-identical to
// Run's.
func (g *GPU) Step() (done bool, err error) {
	if g.phase >= g.kern.Phases() {
		return true, nil
	}
	if !g.seeded {
		g.seedPhase(g.phase)
		g.seeded = true
	}
	if g.coreCycle >= g.cfg.MaxCoreCycles {
		g.shutdown()
		return false, fmt.Errorf("sim: %s exceeded %d core cycles", g.kern.Name(), g.cfg.MaxCoreCycles)
	}
	if g.host.sampleCore(g.coreCycle) {
		t0 := time.Now()
		g.coreTick()
		g.host.addCore(time.Since(t0))
	} else {
		g.coreTick()
	}
	g.memAcc += g.memPerCore
	if g.memAcc >= 1 {
		g.memAcc--
		timed := g.host.sampleMem(g.memCycle)
		var t0 time.Time
		if timed {
			t0 = time.Now()
		}
		if g.pool != nil {
			g.pool.memTick(g.memCycle, timed)
		} else {
			for _, p := range g.partitions {
				p.memTick(g.memCycle)
			}
		}
		if timed {
			g.host.addMem(time.Since(t0))
		}
		g.memCycle++
		// Probes below run on this goroutine strictly after the barrier
		// (or the sequential loop), so they read quiesced state only.
		if timed {
			t0 = time.Now()
		}
		if g.sampler != nil {
			g.sampler.Tick(g.memCycle, g.probeSample)
		}
		if g.dig != nil && g.memCycle%g.dig.Every() == 0 {
			g.dig.Record(g.digestRecord())
		}
		if g.met != nil && g.memCycle%g.met.every == 0 {
			g.publishMetrics()
		}
		if timed {
			g.host.addProbe(time.Since(t0))
		}
	}
	g.coreCycle++
	if g.coreCycle%512 == 0 && g.done() {
		g.retireSMs()
		g.phase++
		g.seeded = false
		if g.phase >= g.kern.Phases() {
			return true, nil
		}
	}
	return false, nil
}

// Finish ends a stepwise run: it stops the shard workers and aggregates the
// results. Call it once, after Step has returned done=true.
func (g *GPU) Finish() *Result {
	g.pool.close()
	return g.collect()
}

// Close stops the shard workers without collecting results; for abandoning a
// stepwise run early (a Step error, or a located divergence). Safe to call
// more than once; Run and Finish close the pool themselves.
func (g *GPU) Close() { g.pool.close() }

// MemCycle returns the current memory-clock cycle.
func (g *GPU) MemCycle() uint64 { return g.memCycle }

// CoreCycle returns the current core-clock cycle.
func (g *GPU) CoreCycle() uint64 { return g.coreCycle }

// seedPhase distributes the phase's thread blocks round-robin over fresh SMs
// (L1 caches start cold per launch, as on real hardware).
func (g *GPU) seedPhase(ph int) {
	wpb := g.cfg.WarpsPerBlock
	if wpb < 1 {
		wpb = 1
	}
	warpsPerSM := make([][]int, g.cfg.NumSMs)
	for w := 0; w < g.kern.NumWarps(ph); w++ {
		s := (w / wpb) % g.cfg.NumSMs
		warpsPerSM[s] = append(warpsPerSM[s], w)
	}
	prog := core.Program(func(warpID int, ctx *core.Ctx) iter.Seq[core.Op] {
		return g.kern.Program(ph, warpID, ctx)
	})
	g.sms = g.sms[:0]
	for s := 0; s < g.cfg.NumSMs; s++ {
		g.sms = append(g.sms, core.NewSM(s, g.cfg.SM, prog, warpsPerSM[s]))
	}
}

func (g *GPU) retireSMs() {
	for _, s := range g.sms {
		g.insts += s.Insts()
		ls := s.L1Stats()
		g.l1Accesses += ls.Accesses
		g.l1Misses += ls.Misses
	}
	// Folded SMs must not be counted again by live probes (probeSample,
	// publishMetrics) between phases or at collect time.
	g.sms = g.sms[:0]
}

func (g *GPU) shutdown() {
	for _, s := range g.sms {
		s.Shutdown()
	}
}

func (g *GPU) coreTick() {
	now := g.coreCycle
	// 1. Partitions release due L2-hit replies and push replies to the net.
	// The partition half (draining each hit heap into its own outReplies) is
	// independent per partition, so it shards across the pool; the reply
	// sends touch the shared reply network and stay serial, in partition
	// order — the same order the sequential loop sends in, since a
	// partition's coreTick never reads another partition's state.
	if g.pool != nil {
		g.pool.coreTick(now)
		for _, p := range g.partitions {
			if r := p.popReply(); r != nil {
				r.SentAt = now
				if !g.replyNet.Send(p.id, r.Req.SM, r, now) {
					p.unpopReply(r)
				}
			}
		}
	} else {
		for _, p := range g.partitions {
			p.coreTick(now)
			if r := p.popReply(); r != nil {
				r.SentAt = now
				if !g.replyNet.Send(p.id, r.Req.SM, r, now) {
					p.unpopReply(r)
				}
			}
		}
	}
	// 2. Reply network delivers to SMs.
	for s, sm := range g.sms {
		if pkt, ok := g.replyNet.Recv(s, now); ok {
			rep := pkt.Payload.(*core.MemReply)
			g.tr.Observe(obs.StageIcntReply, now-rep.SentAt)
			g.tr.Observe(obs.StageTotal, now-rep.Req.IssuedAt)
			sm.HandleReply(rep, now)
		}
	}
	// 3. SMs execute; their sends are routed by address.
	for _, sm := range g.sms {
		sm.Tick(now, g.sendReq(now))
	}
	// 4. Request network delivers to partitions, honouring backpressure.
	for pi, p := range g.partitions {
		pkt, ok := g.reqNet.Peek(pi, now)
		if !ok {
			continue
		}
		req := pkt.Payload.(*core.MemReq)
		if p.acceptReq(req, now) {
			g.reqNet.Recv(pi, now)
			g.tr.Observe(obs.StageIcntReq, now-req.IssuedAt)
		}
	}
}

func (g *GPU) sendReq(now uint64) func(*core.MemReq) bool {
	return func(r *core.MemReq) bool {
		dst := g.cfg.AddrMap.Decode(r.LineAddr).Channel
		return g.reqNet.Send(r.SM, dst, r, now)
	}
}

// probeSample snapshots the time-series quantities for one sampling window
// of `window` memory cycles. Rate-like fields are deltas over the window;
// queue occupancy, DMS delay, and AMS Th_RBL are instantaneous.
//
// Concurrency contract: probeSample (like publishMetrics and collect) runs
// on the simulation goroutine strictly between pool barriers, so every
// per-partition counter it reads is quiesced — the shard workers are parked
// in their task channels and the barrier's WaitGroup gave this goroutine
// happens-before visibility of all their writes. Live /metrics scrapes never
// call into here; they read only the atomic registry values publishMetrics
// stores.
func (g *GPU) probeSample(window uint64) obs.Sample {
	insts := g.insts
	for _, s := range g.sms {
		insts += s.Insts()
	}
	var busy, acts, occ uint64
	delay, th := 0, 0
	for _, p := range g.partitions {
		busy += p.st.DataBusBusy
		acts += p.st.Activations
		occ += uint64(p.ctrl.Pending())
		if d := p.ctrl.Delay(); d > delay {
			delay = d
		}
		if t := p.ctrl.ThRBL(); t > th {
			th = t
		}
	}
	nch := uint64(len(g.partitions))
	s := obs.Sample{
		MemCycle:    g.memCycle,
		CoreCycle:   g.coreCycle,
		QueueOcc:    float64(occ) / float64(nch),
		Activations: acts - g.prev.acts,
		Delay:       delay,
		ThRBL:       th,
	}
	if dc := g.coreCycle - g.prev.core; dc > 0 {
		s.IPC = float64(insts-g.prev.insts) / float64(dc)
	}
	if window > 0 {
		s.BWUtil = float64(busy-g.prev.busy) / float64(window*nch)
	}
	g.prev = sampleState{insts: insts, core: g.coreCycle, busy: busy, acts: acts}
	return s
}

func (g *GPU) done() bool {
	for _, s := range g.sms {
		if !s.Done() {
			return false
		}
	}
	if g.reqNet.Pending() > 0 || g.replyNet.Pending() > 0 {
		return false
	}
	for _, p := range g.partitions {
		if !p.idle() {
			return false
		}
	}
	return true
}

func (g *GPU) collect() *Result {
	// The final machine digest must be taken first: the drains and flushes
	// below mutate bank accounting and L2 dirty state, and the digest should
	// describe the machine as the last Step left it.
	if g.dig != nil {
		g.dig.Finalize(g.MachineDigest())
	}
	res := &Result{}
	r := &res.Run
	r.App = g.kern.Name()
	r.Scheme = g.scheme.Name()
	r.CoreCycles = g.coreCycle
	r.Instructions = g.insts
	r.L1Accesses = g.l1Accesses
	r.L1Misses = g.l1Misses
	for _, p := range g.partitions {
		p.drainStats(g.memCycle)
		res.Channels = append(res.Channels, p.st.Clone())
		r.Mem.Merge(&p.st)
		l2 := p.l2.Stats()
		r.L2Accesses += l2.Accesses
		r.L2Misses += l2.Misses
		switch vp := p.vp.(type) {
		case *approx.VPUnit:
			res.VPPredictions += vp.Predictions
			res.VPFallbacks += vp.Fallbacks
		case *approx.ZeroPredictor:
			res.VPPredictions += vp.Predictions
		case *approx.LastValuePredictor:
			res.VPPredictions += vp.Predictions
			res.VPFallbacks += vp.Fallbacks
		}
		if d := p.ctrl.Delay(); d > r.FinalDelay {
			r.FinalDelay = d
		}
		if t := p.ctrl.ThRBL(); t > r.FinalThRBL {
			r.FinalThRBL = t
		}
		p.flush()
	}
	prof := g.cfg.Energy
	r.RowEnergy = prof.RowEnergyNJ(&r.Mem)
	r.MemEnergy = prof.MemEnergyNJ(&r.Mem, g.memCycle, g.cfg.MemClockMHz*1e6, len(g.partitions))
	res.EnergyByChannel = prof.Attribution(res.Channels, g.memCycle, g.cfg.MemClockMHz*1e6)
	res.Output = g.kern.Output(g.im)
	res.Image = g.im
	if g.col != nil {
		g.sampler.Flush(g.memCycle, g.probeSample)
		res.Telemetry = g.col.Telemetry()
		res.Trace = g.col.MergedTrace()
		res.Audit = g.col.MergedAudit()
		res.Digest = g.col.Digest
		if res.Telemetry != nil && res.Telemetry.Census != nil {
			res.Telemetry.Census.Host = g.host.phases(g.pool)
		}
	}
	if g.cfg.Fault.Enabled {
		fs := g.faultSummary()
		if res.Telemetry == nil {
			res.Telemetry = &obs.Telemetry{}
		}
		res.Telemetry.Fault = fs
	}
	if g.met != nil {
		g.publishMetrics() // final state, after the run has drained
	}
	return res
}

// faultSummary merges the per-channel injector summaries into the run-level
// telemetry block, attaching the injected-error histogram.
func (g *GPU) faultSummary() *obs.FaultSummary {
	var agg fault.Summary
	var cfg fault.Config
	for _, p := range g.partitions {
		if p.inj == nil {
			continue
		}
		cfg = p.inj.Config()
		agg.Merge(p.inj.Summary())
	}
	fs := &obs.FaultSummary{
		Seed:           cfg.Seed,
		BusBER:         cfg.BusBER,
		WeakDensity:    cfg.WeakCellDensity,
		Reads:          agg.Reads,
		CorruptedReads: agg.CorruptedReads,
		ActFlips:       agg.ActFlips,
		RetFlips:       agg.RetFlips,
		BusFlips:       agg.BusFlips,
		TotalFlips:     agg.TotalFlips(),
		WeakRows:       agg.WeakRows,
		WeakCells:      agg.WeakCells,
		Digest:         agg.Digest,
	}
	if g.col != nil {
		fs.Quality = g.col.MergedFaultQuality().Summary()
	}
	return fs
}

// Prepare performs Simulate's setup — fault-seed defaulting, memory image
// construction, deterministic kernel initialization — and returns a GPU ready
// to execute. Callers either Run it, or drive it with Step and then Finish
// (or Close, to abandon it).
func Prepare(kern Kernel, cfg Config, scheme mc.Scheme, seed int64) *GPU {
	if cfg.Fault.Enabled && cfg.Fault.Seed == 0 {
		// Default the fault seed to the run seed so -seed alone reproduces a
		// fault run end to end.
		cfg.Fault.Seed = seed
	}
	im := memimage.New(kern.MemBytes() + 4*memimage.LineSize)
	rng := rand.New(rand.NewSource(seed))
	kern.Setup(im, rng)
	return NewGPU(cfg, scheme, kern, im)
}

// Simulate is the one-call entry point: set up the kernel's memory, run all
// its phases under the scheme, flush caches, and return the results.
func Simulate(kern Kernel, cfg Config, scheme mc.Scheme, seed int64) (*Result, error) {
	return Prepare(kern, cfg, scheme, seed).Run()
}
