package sim

import (
	"time"

	"lazydram/internal/obs"
)

// hostProfEvery is the host-side phase profiler's sampling stride: every
// hostProfEvery-th core cycle times the core tick, and every
// hostProfEvery-th memory cycle times the memory dispatch and the probe/
// publish section that follows it. Sampling keeps the monotonic-clock reads
// off the common path so the profiler stays inside the census overhead
// budget; the per-phase means it reports are unbiased because the stride is
// fixed, not adaptive.
const hostProfEvery = 64

// hostProf accumulates the sampled wall-clock spent in each host-side phase
// of GPU.Step. Everything here is written on the simulation goroutine; the
// per-worker busy counters live in shardPool and are owner-written by each
// worker strictly inside a timed dispatch, so the barrier that ends the
// dispatch gives this goroutine happens-before visibility without locks.
// Wall times are nondeterministic by nature — they surface in telemetry
// under census.host and are excluded from lazycmp's flattening and the
// determinism gates, exactly like run wall_ms.
type hostProf struct {
	coreNS, coreTicks   uint64
	memNS, memTicks     uint64
	probeNS, probeTicks uint64
}

// sampleCore reports whether the given core cycle is a sampled one.
func (h *hostProf) sampleCore(cycle uint64) bool {
	return h != nil && cycle%hostProfEvery == 0
}

// sampleMem reports whether the given memory cycle is a sampled one.
func (h *hostProf) sampleMem(cycle uint64) bool {
	return h != nil && cycle%hostProfEvery == 0
}

func (h *hostProf) addCore(d time.Duration) { h.coreNS += uint64(d); h.coreTicks++ }
func (h *hostProf) addMem(d time.Duration)  { h.memNS += uint64(d); h.memTicks++ }
func (h *hostProf) addProbe(d time.Duration) {
	h.probeNS += uint64(d)
	h.probeTicks++
}

// phases folds the accumulated samples into the telemetry summary. pool is
// nil for sequential runs; then the per-worker section is omitted. A
// worker's barrier time is the sampled dispatch wall-clock not covered by
// its own busy time: on a timed dispatch every worker is timed, so
// memNS − busy is exactly the time that worker spent parked at the barrier
// (or waiting for its task) while the slowest chain finished.
func (h *hostProf) phases(pool *shardPool) *obs.HostPhases {
	if h == nil {
		return nil
	}
	hp := &obs.HostPhases{
		SampleEvery: hostProfEvery,
		CoreTicks:   h.coreTicks,
		CoreNS:      h.coreNS,
		MemTicks:    h.memTicks,
		MemNS:       h.memNS,
		ProbeTicks:  h.probeTicks,
		ProbeNS:     h.probeNS,
	}
	if pool != nil {
		for w := 0; w < pool.workers; w++ {
			busy := pool.busyNS[w]
			wp := obs.WorkerPhase{Worker: w, Dispatches: pool.timedDispatches, BusyNS: busy}
			if h.memNS > busy {
				wp.BarrierNS = h.memNS - busy
			}
			if h.memNS > 0 {
				wp.BusyFrac = float64(busy) / float64(h.memNS)
			}
			hp.Workers = append(hp.Workers, wp)
		}
	}
	return hp
}
