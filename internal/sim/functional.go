package sim

import (
	"math/rand"

	"lazydram/internal/core"
	"lazydram/internal/memimage"
)

// RunFunctional executes the kernel's warp programs directly against the
// memory image, without any timing model: loads read the image, stores write
// it, warps run sequentially. For race-free kernels (all of the bundled
// workloads write disjoint outputs) this produces the exact result, and is
// both the golden reference for application-error measurement and a fast
// oracle for testing the timed data path.
func RunFunctional(kern Kernel, seed int64) []float32 {
	im := memimage.New(kern.MemBytes() + 4*memimage.LineSize)
	rng := rand.New(rand.NewSource(seed))
	kern.Setup(im, rng)
	for ph := 0; ph < kern.Phases(); ph++ {
		for w := 0; w < kern.NumWarps(ph); w++ {
			ctx := &core.Ctx{}
			for op := range kern.Program(ph, w, ctx) {
				ApplyOp(im, ctx, op)
			}
		}
	}
	return kern.Output(im)
}

// ApplyOp applies one warp instruction functionally to the image.
func ApplyOp(im *memimage.Image, ctx *core.Ctx, op core.Op) {
	switch op.Kind {
	case core.OpLoad:
		for l := 0; l < core.WarpSize; l++ {
			if op.Lanes.Active&(1<<uint(l)) == 0 {
				continue
			}
			ctx.Regs[op.Dst][l] = im.Read32(op.Lanes.Addrs[l])
		}
	case core.OpStore:
		for l := 0; l < core.WarpSize; l++ {
			if op.Lanes.Active&(1<<uint(l)) == 0 {
				continue
			}
			im.Write32(op.Lanes.Addrs[l], op.Lanes.Vals[l])
		}
	case core.OpCompute:
		// no architectural effect
	}
}
