package sim_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"lazydram/internal/mc"
	"lazydram/internal/obs"
	"lazydram/internal/sim"
)

// TestAuditReconcilesEndToEnd is the issue's acceptance check: over a full
// simulation the audited decision counts must reconcile exactly with the
// stats.Mem aggregates — drops with Run.Mem.Dropped, delay holds with the
// per-bank DMSDelayCycles matrix — and the quality log must have scored
// every dropped line.
func TestAuditReconcilesEndToEnd(t *testing.T) {
	res := simulate(t, "SCP", mc.DynBoth, func(cfg *sim.Config) {
		cfg.Obs = obs.Options{AuditCapacity: 1 << 14, Quality: true}
	})
	if res.Audit == nil {
		t.Fatal("Result.Audit nil with AuditCapacity set")
	}
	if res.Run.Mem.Dropped == 0 {
		t.Fatal("run dropped nothing; reconciliation test is vacuous")
	}

	// Sum of AMS drop decisions == stats drop aggregate.
	if got := res.Audit.Count(obs.ReasonAMSDrop); got != res.Run.Mem.Dropped {
		t.Errorf("audited drops %d != Run.Mem.Dropped %d", got, res.Run.Mem.Dropped)
	}
	// Sum of DMS delay-hold decisions == the per-bank delay-cycle aggregate
	// (the audit log is shared across every channel's controller).
	var holds uint64
	for _, b := range res.Run.Mem.Banks {
		holds += b.DMSDelayCycles
	}
	if holds == 0 {
		t.Fatal("run recorded no DMS delay cycles; reconciliation test is vacuous")
	}
	if got := res.Audit.Count(obs.ReasonDMSDelayHold); got != holds {
		t.Errorf("audited delay holds %d != sum of Bank.DMSDelayCycles %d", got, holds)
	}

	// Per-channel drop decisions decompose the total exactly.
	perCh := map[int]uint64{}
	for _, d := range res.Audit.Entries() {
		if d.Reason == obs.ReasonAMSDrop {
			perCh[d.Channel]++
		}
	}
	if res.Audit.Summary().RingDropped == 0 {
		var sum uint64
		for ch, n := range perCh {
			if ch < 0 || ch >= res.Run.Mem.NumChannels {
				t.Errorf("decision carries invalid channel %d", ch)
			}
			sum += n
		}
		if sum != res.Run.Mem.Dropped {
			t.Errorf("per-channel drop decisions sum to %d, want %d", sum, res.Run.Mem.Dropped)
		}
	}

	// Quality telemetry scored exactly the dropped lines.
	tel := res.Telemetry
	if tel == nil || tel.Quality == nil {
		t.Fatal("Telemetry.Quality nil with Quality enabled")
	}
	if tel.Quality.Lines != res.Run.Mem.Dropped {
		t.Errorf("quality scored %d lines, want Dropped %d", tel.Quality.Lines, res.Run.Mem.Dropped)
	}
	if tel.Quality.Words == 0 {
		t.Error("quality scored no words")
	}
	if tel.Quality.MeanRelError < 0 || tel.Quality.MaxRelError < tel.Quality.MeanRelError {
		t.Errorf("quality error stats inconsistent: mean %g max %g",
			tel.Quality.MeanRelError, tel.Quality.MaxRelError)
	}

	// The audit digest rides the telemetry and round-trips through JSON.
	if tel.Audit == nil {
		t.Fatal("Telemetry.Audit nil with AuditCapacity set")
	}
	if tel.Audit.Total != res.Audit.Total() {
		t.Errorf("summary total %d != log total %d", tel.Audit.Total, res.Audit.Total())
	}
	var kindSum uint64
	for _, rc := range tel.Audit.Reasons {
		kindSum += rc.Count
	}
	if kindSum != tel.Audit.Total {
		t.Errorf("reason counts sum to %d, want total %d", kindSum, tel.Audit.Total)
	}
	if tel.Audit.AMSDrops != res.Run.Mem.Dropped {
		t.Errorf("summary AMSDrops %d != Dropped %d", tel.Audit.AMSDrops, res.Run.Mem.Dropped)
	}
	raw, err := json.Marshal(tel)
	if err != nil {
		t.Fatalf("telemetry not serializable: %v", err)
	}
	var back struct {
		Audit   *obs.AuditSummary   `json:"audit"`
		Quality *obs.QualitySummary `json:"quality"`
	}
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Audit == nil || back.Audit.Total != tel.Audit.Total {
		t.Error("audit summary did not survive the JSON round trip")
	}
	if back.Quality == nil || back.Quality.Lines != tel.Quality.Lines {
		t.Error("quality summary did not survive the JSON round trip")
	}

	// The JSONL export emits one valid object per retained decision.
	var buf bytes.Buffer
	if err := res.Audit.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(buf.Bytes(), []byte{'\n'})
	if want := len(res.Audit.Entries()); lines != want {
		t.Errorf("JSONL export has %d lines, want %d", lines, want)
	}
}

// TestAuditDoesNotPerturbRun: enabling the decision audit and quality
// scoring must not change simulation results.
func TestAuditDoesNotPerturbRun(t *testing.T) {
	off := simulate(t, "MVT", mc.DynBoth)
	on := simulate(t, "MVT", mc.DynBoth, func(cfg *sim.Config) {
		cfg.Obs = obs.Options{AuditCapacity: 1 << 12, Quality: true}
	})
	if off.Run.CoreCycles != on.Run.CoreCycles ||
		off.Run.Mem.Activations != on.Run.Mem.Activations ||
		off.Run.Mem.Dropped != on.Run.Mem.Dropped ||
		off.Run.AppError != on.Run.AppError {
		t.Fatalf("audit perturbed the run: %+v vs %+v", off.Run, on.Run)
	}
	if len(off.Output) != len(on.Output) {
		t.Fatal("output lengths differ")
	}
	for i := range off.Output {
		if off.Output[i] != on.Output[i] {
			t.Fatalf("output diverged at %d", i)
		}
	}
}

// TestDynAdaptTraceEndToEnd checks the Dyn controllers leave a usable
// adaptation trace: both units report, cycles are window-aligned and
// non-decreasing per channel, and thresholds stay within the paper's bounds.
func TestDynAdaptTraceEndToEnd(t *testing.T) {
	res := simulate(t, "SCP", mc.DynBoth, func(cfg *sim.Config) {
		cfg.Obs = obs.Options{AuditCapacity: 1 << 12}
	})
	pts := res.Audit.Adapt()
	if len(pts) == 0 {
		t.Fatal("Dyn run produced no adaptation trace")
	}
	units := map[string]int{}
	last := map[[2]any]uint64{}
	for _, p := range pts {
		units[p.Unit]++
		key := [2]any{p.Unit, p.Channel}
		if p.Cycle < last[key] {
			t.Fatalf("adapt trace not ordered for %s ch%d: %d after %d",
				p.Unit, p.Channel, p.Cycle, last[key])
		}
		last[key] = p.Cycle
		switch p.Unit {
		case "ams":
			if p.ThRBL < mc.MinThRBL || p.ThRBL > mc.MaxThRBL {
				t.Fatalf("adapt thRBL %d outside [%d,%d]", p.ThRBL, mc.MinThRBL, mc.MaxThRBL)
			}
		case "dms":
			if p.Delay < 0 {
				t.Fatalf("adapt delay %d negative", p.Delay)
			}
			if p.Phase == "" {
				t.Fatal("dms adapt point missing phase")
			}
		default:
			t.Fatalf("unknown adapt unit %q", p.Unit)
		}
	}
	if units["ams"] == 0 || units["dms"] == 0 {
		t.Fatalf("adaptation trace missing a unit: %v", units)
	}
}
