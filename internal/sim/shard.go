package sim

import (
	"runtime"
	"sync"
	"time"
)

// shardPool ticks memory partitions on a persistent pool of worker
// goroutines using a bulk-synchronous barrier per dispatch: the main
// goroutine publishes one task to every worker, each worker ticks its fixed
// subset of partitions, and dispatch returns only after every worker has
// finished (sync.WaitGroup). The barrier gives the main goroutine
// happens-before visibility of everything the workers wrote, so probes that
// run between dispatches (probeSample, publishMetrics, collect) read fully
// quiesced state without extra locking.
//
// Determinism: partition p is always ticked by worker p%workers, partitions
// within one worker run in increasing order, and partitions never share
// mutable state during a dispatch — each owns its controller, DRAM channel,
// stats, fault injector, and obs shard, and touches only its own channel's
// lines of the memory image. Cross-partition effects happen exclusively in
// the serial sections between barriers, so the execution is equivalent to
// the sequential 0..N-1 loop cycle for cycle.
type shardPool struct {
	parts   []*partition
	workers int
	tasks   []chan shardTask
	wg      sync.WaitGroup

	// Host-phase profiling (census runs only): busyNS[w] is worker w's
	// cumulative wall-clock across timed dispatches. Each slot is written
	// only by its owning worker, strictly inside a dispatch, so the barrier
	// WaitGroup publishes it to the simulation goroutine without locks.
	busyNS          []uint64
	timedDispatches uint64
}

// shardTask is one barrier-delimited unit of work: tick every owned
// partition's memory side (or core side) at the given cycle.
type shardTask struct {
	now  uint64
	core bool
	// timed asks each worker to clock its span of this dispatch with the
	// monotonic clock (host-phase profiler sample).
	timed bool
}

// newShardPool starts workers goroutines (0 picks GOMAXPROCS); the pool is
// capped at one worker per partition. Callers must close() the pool to stop
// the goroutines.
func newShardPool(parts []*partition, workers int) *shardPool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(parts) {
		workers = len(parts)
	}
	if workers < 1 {
		workers = 1
	}
	sp := &shardPool{parts: parts, workers: workers}
	sp.busyNS = make([]uint64, workers)
	sp.tasks = make([]chan shardTask, workers)
	for w := 0; w < workers; w++ {
		ch := make(chan shardTask, 1)
		sp.tasks[w] = ch
		go sp.run(w, ch)
	}
	return sp
}

func (sp *shardPool) run(w int, ch <-chan shardTask) {
	for t := range ch {
		var t0 time.Time
		if t.timed {
			t0 = time.Now()
		}
		for p := w; p < len(sp.parts); p += sp.workers {
			if t.core {
				sp.parts[p].coreTick(t.now)
			} else {
				sp.parts[p].memTick(t.now)
			}
		}
		if t.timed {
			sp.busyNS[w] += uint64(time.Since(t0))
		}
		sp.wg.Done()
	}
}

// memTick runs one memory cycle across all partitions and waits for the
// barrier. timed dispatches additionally clock each worker's span for the
// host-phase profiler.
func (sp *shardPool) memTick(now uint64, timed bool) {
	if timed {
		sp.timedDispatches++
	}
	sp.dispatch(shardTask{now: now, timed: timed})
}

// coreTick runs the partition half of one core cycle (releasing due L2-hit
// replies) across all partitions and waits for the barrier.
func (sp *shardPool) coreTick(now uint64) { sp.dispatch(shardTask{now: now, core: true}) }

func (sp *shardPool) dispatch(t shardTask) {
	sp.wg.Add(sp.workers)
	for _, ch := range sp.tasks {
		ch <- t
	}
	sp.wg.Wait()
}

// close stops the worker goroutines. The pool must be idle (no dispatch in
// flight); safe to call more than once.
func (sp *shardPool) close() {
	if sp == nil || sp.tasks == nil {
		return
	}
	for _, ch := range sp.tasks {
		close(ch)
	}
	sp.tasks = nil
}
