package sim

import (
	"container/heap"

	"lazydram/internal/approx"
	"lazydram/internal/cache"
	"lazydram/internal/core"
	"lazydram/internal/dram"
	"lazydram/internal/fault"
	"lazydram/internal/mc"
	"lazydram/internal/memimage"
	"lazydram/internal/obs"
	"lazydram/internal/stats"
)

// wbEntry is a dirty L2 line waiting to enter the memory controller.
type wbEntry struct {
	addr uint64
	data [cache.LineSize]byte
}

// doneItem is a completed (or dropped) MC request waiting for its data-ready
// time in memory cycles.
type doneItem struct {
	readyAt uint64
	req     *mc.Request
	approx  bool
}

type doneHeap []doneItem

func (h doneHeap) Len() int           { return len(h) }
func (h doneHeap) Less(i, j int) bool { return h[i].readyAt < h[j].readyAt }
func (h doneHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *doneHeap) Push(x any)        { *h = append(*h, x.(doneItem)) }
func (h *doneHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// hitItem is an L2 hit reply waiting for the L2 access latency, in core
// cycles.
type hitItem struct {
	readyAt uint64
	rep     *core.MemReply
}

type hitHeap []hitItem

func (h hitHeap) Len() int           { return len(h) }
func (h hitHeap) Less(i, j int) bool { return h[i].readyAt < h[j].readyAt }
func (h hitHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *hitHeap) Push(x any)        { *h = append(*h, x.(hitItem)) }
func (h *hitHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// partition is one memory partition: L2 slice, its MSHRs, the lazy memory
// controller, one DRAM channel, and the value-prediction unit.
type partition struct {
	id    int
	cfg   *Config
	im    *memimage.Image
	annot *approx.Annotations

	l2    *cache.Cache
	mshr  *cache.MSHR
	dchan *dram.Channel
	ctrl  *mc.Controller
	vp    approx.Predictor
	nlVP  *approx.VPUnit // non-nil when VPKind is "nearest"
	st    stats.Mem
	tr    *obs.Tracer     // nil unless lifecycle tracing is enabled
	qual  *obs.QualityLog // nil unless approximation-quality telemetry is on
	inj   *fault.Injector // nil unless fault injection is enabled
	fq    *obs.QualityLog // nil unless fault-error telemetry is on
	cen   *obs.Census     // nil unless the cycle census is enabled

	// lastActivity and pops feed the partition-cycle census: a memory cycle
	// whose activity reading (controller progress + completion pops) matches
	// the previous cycle's provably changed nothing. pops is maintained
	// unconditionally (one increment per completed fill). advRun/gapLen/
	// gapIdle batch the census bookkeeping into runs: consecutive advancing
	// cycles and maximal non-advancing gaps are counted locally and folded
	// into the Census only when a gap closes (and at drain), keeping the
	// per-cycle cost to one compare and one increment. Idleness is constant
	// across a non-advancing run — nothing pops, pushes, or completes — so
	// sampling it on the gap's first cycle classifies the whole run.
	lastActivity uint64
	pops         uint64
	advRun       uint64
	gapLen       uint64
	gapIdle      bool

	wbQueue    []wbEntry
	done       doneHeap
	hits       hitHeap
	outReplies []*core.MemReply

	// traffic is the partition's rolling data digest: every fill's returned
	// bytes (after fault corruption) and every write-back's bytes are folded
	// in as they happen, so a single corrupted line perturbs every later
	// digest sample even after the line itself is evicted. Folded only when
	// digestOn (Config.Obs.DigestEvery > 0); written exclusively from the
	// partition's own tick path, read at barrier-quiesced sample points.
	traffic  uint64
	digestOn bool
}

// newPartition wires partition id. shard is the partition's private slice of
// observability state (nil when observability is off): everything the
// partition records during its tick paths goes there and only there, so
// partitions can tick concurrently without sharing any obs structure.
func newPartition(id int, cfg *Config, im *memimage.Image, annot *approx.Annotations, scheme mc.Scheme, shard *obs.Shard) *partition {
	p := &partition{id: id, cfg: cfg, im: im, annot: annot}
	p.traffic = obs.FoldSeed()
	p.digestOn = cfg.Obs.DigestEvery > 0
	p.l2 = cache.New(cfg.L2)
	p.mshr = cache.NewMSHR(cfg.L2MSHREntries, cfg.L2MSHRTargets)
	p.dchan = dram.NewChannel(cfg.DRAM, &p.st)
	if shard != nil {
		p.tr = shard.ShardTracer()
		p.qual = shard.ShardQuality()
		p.fq = shard.ShardFaultQuality()
		p.cen = shard.ShardCensus()
		p.dchan.SetTrace(shard.ShardTrace(), id)
	}
	switch cfg.VPKind {
	case "zero":
		p.vp = &approx.ZeroPredictor{}
	case "lastvalue":
		p.vp = &approx.LastValuePredictor{WarmFills: cfg.VP.WarmFills}
	default: // "nearest", the paper's VP unit
		p.nlVP = approx.NewVPUnit(cfg.VP, p.l2)
		p.vp = p.nlVP
	}
	mcCfg := cfg.MC
	mcCfg.Scheme = scheme
	p.ctrl = mc.New(mcCfg, p.dchan, &p.st, p.onMCComplete, p.vp.Ready)
	p.ctrl.SetTracer(p.tr)
	if p.cen != nil {
		p.ctrl.SetCensus(p.cen)
	}
	if shard != nil {
		p.ctrl.SetAudit(shard.ShardAudit(), id)
	}
	if cfg.Fault.Enabled {
		p.inj = fault.NewInjector(cfg.Fault, id, cfg.DRAM.RowBytes, &p.st)
		p.ctrl.SetFaults(p.inj)
	}
	return p
}

func (p *partition) onMCComplete(req *mc.Request, approxDrop bool, readyAt uint64) {
	if req.Write {
		// The write-back's data was already committed to the image when the
		// line left the L2 (see queueWB); the WR command only models timing
		// and energy.
		return
	}
	heap.Push(&p.done, doneItem{readyAt: readyAt, req: req, approx: approxDrop})
}

// queueWB commits an evicted dirty line to the image immediately and queues
// the DRAM write command. Committing at eviction time keeps the image the
// authoritative latest memory state, so a concurrent read fill for the same
// line can never observe pre-write-back data (real controllers achieve this
// by snooping the write queue; we fold it into the functional state).
func (p *partition) queueWB(addr uint64, data []byte) {
	p.im.WriteLine(addr, data)
	if p.digestOn {
		p.traffic = obs.FoldU64(p.traffic, addr)
		p.traffic = obs.FoldBytes(p.traffic, data)
	}
	var e wbEntry
	e.addr = addr
	copy(e.data[:], data)
	p.wbQueue = append(p.wbQueue, e)
}

// memTick advances the partition by one memory cycle.
func (p *partition) memTick(now uint64) {
	// Drain one write-back into the pending queue per memory cycle.
	if len(p.wbQueue) > 0 && !p.ctrl.Full() {
		wb := p.wbQueue[0]
		p.wbQueue = p.wbQueue[1:]
		coord := p.cfg.AddrMap.Decode(wb.addr)
		p.ctrl.Push(wb.addr, true, false, coord, nil)
	}
	p.ctrl.Tick(now)
	for len(p.done) > 0 && p.done[0].readyAt <= now {
		it := heap.Pop(&p.done).(doneItem)
		p.pops++
		p.finishFill(it)
	}
	if p.cen != nil {
		// Batched partition census: count advancing cycles and non-advancing
		// gaps locally, folding a gap into the Census only when it closes.
		// Idleness is sampled on the gap's first cycle; it cannot change
		// mid-gap because nothing pops, pushes, or completes while the
		// activity reading holds still.
		act := p.ctrl.Activity() + p.pops
		if act != p.lastActivity {
			p.lastActivity = act
			if p.gapLen > 0 {
				p.cen.CloseGap(p.gapLen, p.gapIdle)
				p.gapLen = 0
			}
			p.advRun++
		} else {
			if p.gapLen == 0 {
				p.gapIdle = p.memIdle()
			}
			p.gapLen++
		}
	}
}

// memIdle reports whether the partition's memory-clock side has nothing in
// flight (the partition-census "fully idle" class; pending L2-hit replies
// live on the core clock and do not keep the memory side busy).
func (p *partition) memIdle() bool {
	return p.ctrl.Pending() == 0 && len(p.wbQueue) == 0 && len(p.done) == 0
}

// finishFill installs a returned (or value-predicted) line in the L2, merges
// pending stores, and queues replies for every merged load waiter.
func (p *partition) finishFill(it doneItem) {
	line := it.req.Addr
	e := p.mshr.Lookup(line)
	var data [cache.LineSize]byte
	if it.approx {
		data = p.vp.Predict(line)
		if p.qual != nil {
			// The image never sees predicted data, so it stays the ground
			// truth this drop can be scored against.
			var truth [cache.LineSize]byte
			p.im.ReadLine(line, truth[:])
			p.qual.RecordLine(it.readyAt, line, data[:], truth[:])
		}
	} else {
		p.im.ReadLine(line, data[:])
		// Injected faults corrupt the returned bytes only: the image keeps
		// the pristine line, so it remains the ground truth the corruption
		// can be scored against (and that end-of-run outputs are compared
		// to). The VP observes the corrupted data, as a real unit sampling
		// the fill path would.
		if f := it.req.Faults; f != nil {
			truth := data
			f.Apply(data[:])
			p.fq.RecordLine(it.readyAt, line, data[:], truth[:])
		}
		p.vp.Observe(line, &data)
	}
	if p.digestOn {
		// The delivered bytes — post-fault-corruption, post-prediction — are
		// the partition's externally visible data. Fold them with the delivery
		// time so timing-identical-but-data-different runs still diverge here.
		p.traffic = obs.FoldU64(p.traffic, it.readyAt)
		p.traffic = obs.FoldU64(p.traffic, line)
		p.traffic = obs.FoldBytes(p.traffic, data[:])
	}
	if ev, evicted := p.l2.Fill(line, data[:], it.approx); evicted {
		p.queueWB(ev.Addr, ev.Data[:])
	}
	if e == nil {
		return // scripted/direct MC traffic without an L2 waiter
	}
	p.mshr.Remove(line)
	for _, s := range e.Stores {
		p.l2.MergeWord(s.Addr, s.Val, s.N, true)
		applyWord(&data, s)
	}
	for _, t := range e.Targets {
		req := t.(*core.MemReq)
		rep := &core.MemReply{Req: req, Approx: it.approx}
		rep.Data = data
		p.outReplies = append(p.outReplies, rep)
	}
}

func applyWord(data *[cache.LineSize]byte, s cache.PendingStore) {
	off := int(s.Addr % cache.LineSize)
	for i := 0; i < s.N; i++ {
		data[off+i] = byte(s.Val >> (8 * i))
	}
}

// coreTick advances the partition's core-clock side: releasing L2 hits whose
// latency elapsed.
func (p *partition) coreTick(now uint64) {
	for len(p.hits) > 0 && p.hits[0].readyAt <= now {
		it := heap.Pop(&p.hits).(hitItem)
		p.outReplies = append(p.outReplies, it.rep)
	}
}

// popReply hands the next outgoing reply to the reply network, if any.
func (p *partition) popReply() *core.MemReply {
	if len(p.outReplies) == 0 {
		return nil
	}
	r := p.outReplies[0]
	p.outReplies = p.outReplies[1:]
	return r
}

func (p *partition) unpopReply(r *core.MemReply) {
	p.outReplies = append([]*core.MemReply{r}, p.outReplies...)
}

// acceptReq attempts to consume one SM transaction. It returns false when a
// structural hazard (MSHR or pending queue full) forces the request to wait
// in the network.
func (p *partition) acceptReq(req *core.MemReq, now uint64) bool {
	line := req.LineAddr
	if req.Load {
		var data [cache.LineSize]byte
		if p.l2.Read(line, data[:]) {
			p.tr.Observe(obs.StageL2Hit, p.cfg.L2HitLatency)
			rep := &core.MemReply{Req: req}
			rep.Data = data
			heap.Push(&p.hits, hitItem{readyAt: now + p.cfg.L2HitLatency, rep: rep})
			return true
		}
		if e := p.mshr.Lookup(line); e != nil {
			if !p.mshr.CanMerge(e) {
				p.noteIngressStall(true)
				return false
			}
			e.Targets = append(e.Targets, req)
			return true
		}
		if p.mshr.Full() || p.ctrl.Full() {
			p.noteIngressStall(false)
			return false
		}
		e := p.mshr.Allocate(line)
		e.Targets = append(e.Targets, req)
		coord := p.cfg.AddrMap.Decode(line)
		p.ctrl.Push(line, false, p.annot.Approximable(line), coord, e)
		return true
	}
	// Store transaction: write-back L2 with write-allocate.
	if p.l2.Read(line, nil) {
		for _, s := range req.Stores {
			p.l2.MergeWord(s.Addr, s.Val, s.N, true)
		}
		return true
	}
	if e := p.mshr.Lookup(line); e != nil {
		e.Stores = append(e.Stores, req.Stores...)
		e.HasStore = true
		return true
	}
	if p.mshr.Full() || p.ctrl.Full() {
		p.noteIngressStall(false)
		return false
	}
	e := p.mshr.Allocate(line)
	e.Stores = append(e.Stores, req.Stores...)
	e.HasStore = true
	coord := p.cfg.AddrMap.Decode(line)
	// The fill-for-write is a DRAM read, but never approximable: dropping it
	// would lose the exactness guarantee for stores.
	p.ctrl.Push(line, false, false, coord, e)
	return true
}

// noteIngressStall counts one blocked acceptReq retry for the census's
// ingress backpressure block: a transaction parked at the head of the
// request network retries every core cycle, so the counters measure blocked
// request-cycles. These sit upstream of the pending queue and are outside
// the mem-side Σ-invariant (DESIGN.md §11). merge distinguishes a
// merge-limit refusal from the structural MSHR-full/queue-full pair.
func (p *partition) noteIngressStall(merge bool) {
	if p.cen == nil {
		return
	}
	switch {
	case merge:
		p.cen.MergeLimit++
	case p.mshr.Full():
		p.cen.MSHRFull++
	default:
		p.cen.QueueFull++
	}
}

// idle reports whether no request, reply, or write-back is in flight.
func (p *partition) idle() bool {
	return p.mshr.Len() == 0 && p.ctrl.Pending() == 0 &&
		len(p.wbQueue) == 0 && len(p.done) == 0 && len(p.hits) == 0 &&
		len(p.outReplies) == 0
}

// flush writes every dirty L2 line back to the image; used at end of run so
// Output sees the complete result.
func (p *partition) flush() {
	p.l2.DirtyLines(func(addr uint64, data []byte) {
		p.im.WriteLine(addr, data)
	})
}

// drainStats folds in-flight DRAM activation accounting into the statistics
// and closes the census's open spans and trailing non-advancing run. end is
// one past the last ticked memory cycle, so the flushed spans cover exactly
// the elapsed bank-cycles.
func (p *partition) drainStats(end uint64) {
	p.dchan.Drain()
	p.ctrl.CensusFinish(end)
	if p.cen != nil {
		if p.gapLen > 0 {
			p.cen.CloseGap(p.gapLen, p.gapIdle)
			p.gapLen = 0
		}
		p.cen.AddAdvancing(p.advRun)
		p.advRun = 0
	}
	p.cen.FlushGap()
}
