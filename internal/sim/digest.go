package sim

import (
	"fmt"
	"strings"

	"lazydram/internal/approx"
	"lazydram/internal/core"
	"lazydram/internal/obs"
)

// This file assembles the machine digest hierarchy the flight recorder
// samples: per-partition component digests (DRAM banks, MC queues, L2 slice,
// progress heaps, rolling traffic, stats), a cores digest over every resident
// SM, and an interconnect digest over both crossbars' in-flight packets —
// folded bank → channel → partition → machine. Everything here runs on the
// simulation goroutine at barrier-quiesced points, so it reads partition
// state without locking.

// digestPayload folds an interconnect packet payload. Reply data is hashed in
// full: a corrupted line in flight between partitions and SMs is exactly the
// state a fault divergence lives in.
func digestPayload(payload any, h *obs.Hasher) {
	switch m := payload.(type) {
	case *core.MemReq:
		h.U64(m.LineAddr)
		h.Bool(m.Load)
		h.U64(m.IssuedAt)
		h.Int(m.SM)
		h.Int(len(m.Stores))
		for _, s := range m.Stores {
			h.U64(s.Addr)
			h.U64(s.Val)
			h.Int(s.N)
		}
	case *core.MemReply:
		h.U64(m.Req.LineAddr)
		h.Bool(m.Approx)
		h.U64(m.SentAt)
		h.Bytes(m.Data[:])
	default:
		h.Int(0)
	}
}

// digest computes the partition's component digests at the current instant.
func (p *partition) digest() obs.PartDigest {
	pd := obs.PartDigest{Part: p.id, Traffic: p.traffic}
	h := obs.NewHasher()
	p.dchan.DigestInto(h)
	for b := 0; b < p.dchan.NumBanks(); b++ {
		p.dchan.DigestBank(b, h)
	}
	pd.DRAM = h.Sum()
	h.Reset()
	p.ctrl.DigestInto(h)
	pd.MC = h.Sum()
	h.Reset()
	p.l2.DigestInto(h)
	p.mshr.DigestInto(h)
	pd.L2 = h.Sum()
	h.Reset()
	p.digestHeaps(h)
	pd.Heaps = h.Sum()
	h.Reset()
	p.st.DigestInto(h)
	pd.Stats = h.Sum()
	return pd
}

// digestHeaps folds the partition-local progress state: the write-back queue,
// the done and hit heaps (heap array order — deterministic, since both runs
// perform identical push/pop sequences), pending replies, and the VP unit's
// counters.
func (p *partition) digestHeaps(h *obs.Hasher) {
	h.Int(len(p.wbQueue))
	for i := range p.wbQueue {
		e := &p.wbQueue[i]
		h.U64(e.addr)
		h.Bytes(e.data[:])
	}
	h.Int(len(p.done))
	for i := range p.done {
		it := &p.done[i]
		h.U64(it.readyAt)
		h.U64(it.req.ID)
		h.U64(it.req.Addr)
		h.Bool(it.approx)
		if it.req.Faults != nil {
			h.Int(it.req.Faults.Count())
		} else {
			h.Int(0)
		}
	}
	h.Int(len(p.hits))
	for i := range p.hits {
		it := &p.hits[i]
		h.U64(it.readyAt)
		h.U64(it.rep.Req.LineAddr)
		h.Bytes(it.rep.Data[:])
	}
	h.Int(len(p.outReplies))
	for _, r := range p.outReplies {
		h.U64(r.Req.LineAddr)
		h.Bool(r.Approx)
		h.Bytes(r.Data[:])
	}
	switch vp := p.vp.(type) {
	case *approx.VPUnit:
		h.U64(vp.Predictions)
		h.U64(vp.Fallbacks)
	case *approx.ZeroPredictor:
		h.U64(vp.Predictions)
	case *approx.LastValuePredictor:
		h.U64(vp.Predictions)
		h.U64(vp.Fallbacks)
	}
}

// dumpHeaps renders the heads of the partition's progress queues for
// lazydiverge's focused state diffs.
func (p *partition) dumpHeaps() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "wbQueue=%d done=%d hits=%d outReplies=%d\n",
		len(p.wbQueue), len(p.done), len(p.hits), len(p.outReplies))
	if len(p.wbQueue) > 0 {
		fmt.Fprintf(&sb, "wb[0]: addr=%#x\n", p.wbQueue[0].addr)
	}
	if len(p.done) > 0 {
		it := &p.done[0]
		faults := 0
		if it.req.Faults != nil {
			faults = it.req.Faults.Count()
		}
		fmt.Fprintf(&sb, "done[0]: readyAt=%d req=#%d@%#x approx=%v faultBits=%d\n",
			it.readyAt, it.req.ID, it.req.Addr, it.approx, faults)
	}
	if len(p.hits) > 0 {
		it := &p.hits[0]
		fmt.Fprintf(&sb, "hits[0]: readyAt=%d line=%#x\n", it.readyAt, it.rep.Req.LineAddr)
	}
	if len(p.outReplies) > 0 {
		r := p.outReplies[0]
		fmt.Fprintf(&sb, "reply[0]: line=%#x approx=%v\n", r.Req.LineAddr, r.Approx)
	}
	return sb.String()
}

// digestCores folds the GPU's execution progress: clocks, retirement
// counters, the current phase, and every resident SM.
func (g *GPU) digestCores(h *obs.Hasher) {
	h.U64(g.coreCycle)
	h.U64(g.memCycle)
	h.U64(g.insts)
	h.U64(g.l1Accesses)
	h.U64(g.l1Misses)
	h.Int(g.phase)
	h.Int(len(g.sms))
	for _, s := range g.sms {
		s.DigestInto(h)
	}
}

// digestRecord samples the full digest hierarchy at the current mem cycle.
func (g *GPU) digestRecord() obs.DigestRecord {
	rec := obs.DigestRecord{Cycle: g.memCycle}
	h := obs.NewHasher()
	g.digestCores(h)
	rec.Cores = h.Sum()
	h.Reset()
	g.reqNet.DigestInto(h, digestPayload)
	g.replyNet.DigestInto(h, digestPayload)
	rec.Icnt = h.Sum()
	mh := obs.NewHasher()
	mh.U64(rec.Cores)
	mh.U64(rec.Icnt)
	rec.Parts = make([]obs.PartDigest, 0, len(g.partitions))
	for _, p := range g.partitions {
		pd := p.digest()
		rec.Parts = append(rec.Parts, pd)
		mh.U64(pd.Sum())
	}
	rec.Machine = mh.Sum()
	return rec
}

// MachineDigest computes the machine-level digest of the GPU's current
// architectural state — the same fold the flight recorder samples. Callable
// between Steps (the state is quiesced there in both tick modes).
func (g *GPU) MachineDigest() uint64 { return g.digestRecord().Machine }

// ComponentDigests returns every node of the digest hierarchy with its path
// label, deepest leaves first within each subtree and "machine" last, so a
// divergence between two GPUs can be attributed to the deepest (most
// specific) disagreeing component.
func (g *GPU) ComponentDigests() []obs.ComponentDigest {
	rec := g.digestRecord()
	var out []obs.ComponentDigest
	h := obs.NewHasher()
	for i, s := range g.sms {
		h.Reset()
		s.DigestInto(h)
		out = append(out, obs.ComponentDigest{Path: fmt.Sprintf("cores.sm[%d]", i), Digest: h.Sum()})
	}
	out = append(out, obs.ComponentDigest{Path: "cores", Digest: rec.Cores})
	h.Reset()
	g.reqNet.DigestInto(h, digestPayload)
	out = append(out, obs.ComponentDigest{Path: "icnt.req", Digest: h.Sum()})
	h.Reset()
	g.replyNet.DigestInto(h, digestPayload)
	out = append(out, obs.ComponentDigest{Path: "icnt.reply", Digest: h.Sum()})
	out = append(out, obs.ComponentDigest{Path: "icnt", Digest: rec.Icnt})
	for i, p := range g.partitions {
		pd := &rec.Parts[i]
		base := fmt.Sprintf("partition[%d]", p.id)
		for b := 0; b < p.dchan.NumBanks(); b++ {
			h.Reset()
			p.dchan.DigestBank(b, h)
			out = append(out, obs.ComponentDigest{
				Path: fmt.Sprintf("%s.dram.bank[%d]", base, b), Digest: h.Sum()})
		}
		out = append(out,
			obs.ComponentDigest{Path: base + ".dram", Digest: pd.DRAM},
			obs.ComponentDigest{Path: base + ".mc", Digest: pd.MC},
			obs.ComponentDigest{Path: base + ".l2", Digest: pd.L2},
			obs.ComponentDigest{Path: base + ".heaps", Digest: pd.Heaps},
			obs.ComponentDigest{Path: base + ".traffic", Digest: pd.Traffic},
			obs.ComponentDigest{Path: base + ".stats", Digest: pd.Stats},
			obs.ComponentDigest{Path: base, Digest: pd.Sum()},
		)
	}
	out = append(out, obs.ComponentDigest{Path: "machine", Digest: rec.Machine})
	return out
}

// StateDump renders a focused, human-readable dump of the component named by
// path (as labeled by ComponentDigests); unknown paths return "".
func (g *GPU) StateDump(path string) string {
	switch {
	case path == "machine":
		return fmt.Sprintf("coreCycle=%d memCycle=%d phase=%d insts=%d sms=%d partitions=%d\n",
			g.coreCycle, g.memCycle, g.phase, g.insts, len(g.sms), len(g.partitions))
	case path == "cores":
		return fmt.Sprintf("coreCycle=%d memCycle=%d phase=%d insts=%d l1Acc=%d l1Miss=%d sms=%d\n",
			g.coreCycle, g.memCycle, g.phase, g.insts, g.l1Accesses, g.l1Misses, len(g.sms))
	case path == "icnt" || path == "icnt.req":
		s := "req: " + g.reqNet.DumpState()
		if path == "icnt" {
			s += "reply: " + g.replyNet.DumpState()
		}
		return s
	case path == "icnt.reply":
		return "reply: " + g.replyNet.DumpState()
	}
	var i int
	if n, _ := fmt.Sscanf(path, "cores.sm[%d]", &i); n == 1 {
		if i >= 0 && i < len(g.sms) {
			return g.sms[i].DumpState()
		}
		return ""
	}
	if n, _ := fmt.Sscanf(path, "partition[%d]", &i); n != 1 || i < 0 || i >= len(g.partitions) {
		return ""
	}
	p := g.partitions[i]
	rest := strings.TrimPrefix(path, fmt.Sprintf("partition[%d]", i))
	switch {
	case rest == "":
		return p.dchan.DumpState() + p.ctrl.DumpState() + p.l2.DumpState() + p.dumpHeaps()
	case rest == ".dram":
		return p.dchan.DumpState()
	case rest == ".mc":
		return p.ctrl.DumpState()
	case rest == ".l2":
		return p.l2.DumpState() + fmt.Sprintf("mshr=%d\n", p.mshr.Len())
	case rest == ".heaps":
		return p.dumpHeaps()
	case rest == ".traffic":
		return fmt.Sprintf("traffic=%#016x\n", p.traffic)
	case rest == ".stats":
		return fmt.Sprintf("acts=%d reads=%d writes=%d dropped=%d busBusy=%d refreshes=%d faultFlips=%d\n",
			p.st.Activations, p.st.Reads, p.st.Writes, p.st.Dropped,
			p.st.DataBusBusy, p.st.Refreshes,
			p.st.FaultActFlips+p.st.FaultRetFlips+p.st.FaultBusFlips)
	}
	var b int
	if n, _ := fmt.Sscanf(rest, ".dram.bank[%d]", &b); n == 1 && b >= 0 && b < p.dchan.NumBanks() {
		return p.dchan.DumpBank(b)
	}
	return ""
}
