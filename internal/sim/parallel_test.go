package sim_test

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"lazydram/internal/mc"
	"lazydram/internal/sim"
)

// TestShardedMatchesSequential is the cycle-layer determinism gate: the
// sharded tick path (Config.ShardPartitions with a multi-worker pool) must
// produce byte-identical results to the sequential partition loop — same
// Output, same aggregate and per-channel statistics, same fault digest, and
// the same flattened telemetry (latency stages, time series, trace and audit
// rings, quality digests).
func TestShardedMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full app x scheme matrix in -short mode")
	}
	apps := []string{"SCP", "MVT"}
	schemes := []mc.Scheme{mc.Baseline, mc.DynBoth}
	for _, app := range apps {
		for _, scheme := range schemes {
			t.Run(app+"/"+scheme.Name(), func(t *testing.T) {
				obsOn := func(cfg *sim.Config) {
					cfg.Obs.Latency = true
					cfg.Obs.SampleEvery = 2048
					cfg.Obs.TraceCapacity = 4096
					cfg.Obs.AuditCapacity = 4096
					cfg.Obs.Quality = true
					cfg.Fault.Enabled = true
					cfg.Fault.BusBER = 1e-7
					cfg.Fault.WeakCellDensity = 1e-6
				}
				seq := simulate(t, app, scheme, obsOn)
				par := simulate(t, app, scheme, obsOn, func(cfg *sim.Config) {
					cfg.ShardPartitions = true
					cfg.ShardWorkers = 4
				})
				assertResultsIdentical(t, seq, par)
			})
		}
	}
}

// assertResultsIdentical compares every deterministic field of two results.
// Outputs are compared bitwise: fault-corrupted floats can be NaN, which
// reflect.DeepEqual would treat as unequal even when identical.
func assertResultsIdentical(t *testing.T, seq, par *sim.Result) {
	t.Helper()
	if !outputBitsEqual(seq.Output, par.Output) {
		t.Errorf("outputs differ between sequential and sharded runs")
	}
	if !reflect.DeepEqual(seq.Run, par.Run) {
		t.Errorf("run statistics differ:\nseq: %+v\npar: %+v", seq.Run, par.Run)
	}
	if !reflect.DeepEqual(seq.Channels, par.Channels) {
		t.Errorf("per-channel statistics differ")
	}
	if seq.VPPredictions != par.VPPredictions || seq.VPFallbacks != par.VPFallbacks {
		t.Errorf("VP counters differ: seq %d/%d, par %d/%d",
			seq.VPPredictions, seq.VPFallbacks, par.VPPredictions, par.VPFallbacks)
	}
	seqTel := mustJSON(t, seq.Telemetry)
	parTel := mustJSON(t, par.Telemetry)
	if seqTel != parTel {
		t.Errorf("flattened telemetry differs:\nseq: %.2000s\npar: %.2000s", seqTel, parTel)
	}
	if seq.Telemetry != nil && par.Telemetry != nil &&
		seq.Telemetry.Fault != nil && par.Telemetry.Fault != nil {
		if seq.Telemetry.Fault.Digest != par.Telemetry.Fault.Digest {
			t.Errorf("fault digests differ: %#x vs %#x",
				seq.Telemetry.Fault.Digest, par.Telemetry.Fault.Digest)
		}
	} else if (seq.Telemetry == nil) != (par.Telemetry == nil) {
		t.Errorf("telemetry presence differs")
	}
	if !reflect.DeepEqual(seq.Trace.Commands(), par.Trace.Commands()) {
		t.Errorf("DRAM command traces differ")
	}
	if !reflect.DeepEqual(seq.Audit.Entries(), par.Audit.Entries()) {
		t.Errorf("audit ring entries differ")
	}
}

func outputBitsEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
