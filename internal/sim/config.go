// Package sim wires the substrates into the full simulated GPU of the
// paper's Table I — 30 SMs, crossbar interconnect, 6 memory partitions each
// with an L2 slice, a lazy memory controller, and a GDDR5 channel — and runs
// kernels through it under a selected scheduling scheme.
package sim

import (
	"iter"
	"math/rand"

	"lazydram/internal/approx"
	"lazydram/internal/cache"
	"lazydram/internal/core"
	"lazydram/internal/dram"
	"lazydram/internal/energy"
	"lazydram/internal/fault"
	"lazydram/internal/icnt"
	"lazydram/internal/mc"
	"lazydram/internal/memimage"
	"lazydram/internal/obs"
)

// Kernel is a GPGPU application the simulator can run. Implementations live
// in internal/workloads.
//
// An application is a sequence of Phases, each a grid of warps launched
// together; a phase only starts after the previous one has fully drained
// (the inter-kernel-launch barrier of real GPU programs, which dependent
// launches like the chained matrix multiplies of 2MM/3MM rely on). Warps
// within one phase must be race-free with respect to each other.
type Kernel interface {
	// Name returns the application's abbreviation (Table II).
	Name() string
	// MemBytes is an upper bound on the global memory the kernel allocates.
	MemBytes() uint64
	// Setup allocates and initializes the kernel's buffers.
	Setup(im *memimage.Image, rng *rand.Rand)
	// Phases returns the number of dependent kernel launches.
	Phases() int
	// NumWarps is the number of warps in the given phase's grid.
	NumWarps(phase int) int
	// Program returns the instruction stream of warp warpID of phase.
	Program(phase, warpID int, ctx *core.Ctx) iter.Seq[core.Op]
	// Output extracts the result buffer for error measurement. Callers must
	// flush caches first (Simulate does).
	Output(im *memimage.Image) []float32
	// Annotations declares the approximable buffers (nil: nothing may be
	// approximated — the paper's low-error-tolerance case).
	Annotations() *approx.Annotations
}

// Config is the full simulated-GPU configuration (Table I).
type Config struct {
	NumSMs int

	// WarpsPerBlock groups consecutive warps into a thread block (256
	// threads at the default 8); blocks are dispatched round-robin over SMs,
	// as on real hardware. Keeping a block's warps on one SM preserves their
	// spatial locality in time: the block's consecutive-line requests reach
	// the memory controller clustered together rather than skewed across 30
	// drifting cores. Set to 1 for warp-striped dispatch (ablation).
	WarpsPerBlock int

	CoreClockMHz float64
	MemClockMHz  float64

	SM core.Config

	// L2 describes one per-partition slice.
	L2            cache.Config
	L2MSHREntries int
	L2MSHRTargets int
	L2HitLatency  uint64 // core cycles

	MC      mc.Config
	DRAM    dram.Config
	AddrMap dram.AddrMap

	IcntLatency    uint64
	IcntQueueDepth int

	VP approx.VPConfig
	// VPKind selects the value predictor: "nearest" (the paper's VP unit,
	// default), "zero", or "lastvalue".
	VPKind string

	Energy energy.Profile

	// Fault configures the DRAM error model (disabled by default). When
	// enabled, read bursts are corrupted per the configured weak-cell density
	// and bit-error rate before their bytes reach the L2, and the run's
	// telemetry gains a fault block.
	Fault fault.Config

	// MaxCoreCycles aborts runaway simulations.
	MaxCoreCycles uint64

	// ShardPartitions ticks the memory partitions on a persistent pool of
	// worker goroutines with a bulk-synchronous barrier per cycle instead of
	// the sequential partition loop. Partitions interact only through the
	// interconnect at serial core-tick boundaries and touch channel-disjoint
	// lines of the shared memory image, and all per-partition observability
	// state is sharded per partition in both modes, so the sharded path
	// produces byte-identical results to the sequential one (see DESIGN.md
	// "Parallel execution").
	ShardPartitions bool
	// ShardWorkers bounds the partition worker pool when ShardPartitions is
	// set (0 picks GOMAXPROCS, capped at the partition count).
	ShardWorkers int

	// Obs selects the observability features for the run (lifecycle tracing,
	// time-series sampling, DRAM command trace). The zero value disables
	// everything and leaves the hot loop untouched.
	Obs obs.Options
}

// DefaultConfig reproduces Table I.
func DefaultConfig() Config {
	return Config{
		NumSMs:        30,
		WarpsPerBlock: 8,
		CoreClockMHz:  1400,
		MemClockMHz:   924,
		SM:            core.DefaultConfig(),
		L2:            cache.Config{SizeBytes: 128 * 1024, Ways: 8},
		L2MSHREntries: 128,
		L2MSHRTargets: 32,
		L2HitLatency:  20,
		MC:            mc.DefaultConfig(),
		DRAM:          dram.DefaultConfig(),
		AddrMap:       dram.DefaultAddrMap(),

		IcntLatency:    8,
		IcntQueueDepth: 32,

		VP:     approx.DefaultVPConfig(),
		VPKind: "nearest",
		Energy: energy.GDDR5(),
		Fault:  fault.DefaultConfig(),

		MaxCoreCycles: 200_000_000,
	}
}

// icntConfig builds the per-direction crossbar configuration.
func (c Config) icntConfig(ports int) icnt.Config {
	return icnt.Config{Ports: ports, LatencyCycles: c.IcntLatency, QueueDepth: c.IcntQueueDepth}
}
