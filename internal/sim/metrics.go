package sim

import (
	"strconv"

	"lazydram/internal/obs"
)

// defaultMetricsEvery is the live-metrics publication interval in memory
// cycles when Options.MetricsEvery is 0.
const defaultMetricsEvery = 1024

// gpuMetrics caches the registry children the GPU publishes into, so the
// periodic publish is a walk over flat slices of atomic stores and the
// scrape side never touches simulation state.
type gpuMetrics struct {
	every uint64

	coreCycles *obs.Metric
	memCycles  *obs.Metric
	insts      *obs.Metric
	ipc        *obs.Metric
	bwutil     *obs.Metric
	queueOcc   *obs.Metric
	delay      *obs.Metric
	thRBL      *obs.Metric
	rowEnergy  *obs.Metric

	chActs, chReads, chWrites, chDrops, chQueue []*obs.Metric

	bankActs, bankHits, bankMisses, bankConfl,
	bankDelay, bankDrops, bankRowE [][]*obs.Metric

	auditReasons []*obs.Metric // indexed by obs.Reason
	qualLines, qualWords,
	qualMeanRel, qualMaxRel *obs.Metric

	// Census families (nil slices unless Obs.Census): machine-level stall
	// decomposition, bank state-residency, and the partition cycle census
	// with its skippable-fraction headline.
	cenStall []*obs.Metric // indexed by obs.StallCause
	cenState []*obs.Metric // indexed by obs.BankState
	cenPart  []*obs.Metric // advancing, timing_wait, idle
	cenReqs, cenLat, cenSkip,
	cenGapP50, cenGapP99 *obs.Metric
}

func newGPUMetrics(reg *obs.Registry, app, scheme string, nch, nbanks int, every uint64, census bool) *gpuMetrics {
	if every == 0 {
		every = defaultMetricsEvery
	}
	m := &gpuMetrics{
		every:      every,
		coreCycles: reg.Counter("lazysim_core_cycles_total", "Core clock cycles simulated"),
		memCycles:  reg.Counter("lazysim_mem_cycles_total", "Memory clock cycles simulated"),
		insts:      reg.Counter("lazysim_instructions_total", "Warp instructions retired"),
		ipc:        reg.Gauge("lazysim_ipc", "Cumulative instructions per core cycle"),
		bwutil:     reg.Gauge("lazysim_bwutil", "Cumulative per-channel data-bus utilization"),
		queueOcc:   reg.Gauge("lazysim_queue_occupancy", "Mean pending-queue occupancy per channel (instantaneous)"),
		delay:      reg.Gauge("lazysim_dms_delay_cycles", "Largest in-force DMS delay across channels"),
		thRBL:      reg.Gauge("lazysim_ams_th_rbl", "Largest in-force AMS Th_RBL across channels"),
		rowEnergy:  reg.Gauge("lazysim_row_energy_nj", "Row energy spent so far under the configured profile"),
	}
	reg.Register("lazysim_run_info", "Constant 1, labeled with the run's app and scheme",
		obs.KindGauge, "app", "scheme").With(app, scheme).Set(1)

	aud := reg.Register("lazysim_audit_decisions_total",
		"Scheduler decisions recorded by the audit log, by unit and reason",
		obs.KindCounter, "unit", "reason")
	for r := obs.Reason(0); r < obs.NumReasons; r++ {
		m.auditReasons = append(m.auditReasons, aud.With(r.Unit(), r.String()))
	}
	m.qualLines = reg.Counter("lazysim_quality_lines_total", "AMS-dropped lines scored against ground truth")
	m.qualWords = reg.Counter("lazysim_quality_words_total", "Finite ground-truth words scored against predictions")
	m.qualMeanRel = reg.Gauge("lazysim_quality_mean_rel_error", "Mean per-word relative error of value-predicted lines")
	m.qualMaxRel = reg.Gauge("lazysim_quality_max_rel_error", "Largest per-word relative error of value-predicted lines")

	chActs := reg.Register("lazysim_channel_activations_total", "Row activations per channel", obs.KindCounter, "channel")
	chReads := reg.Register("lazysim_channel_reads_total", "DRAM column reads per channel", obs.KindCounter, "channel")
	chWrites := reg.Register("lazysim_channel_writes_total", "DRAM column writes per channel", obs.KindCounter, "channel")
	chDrops := reg.Register("lazysim_channel_ams_drops_total", "AMS-dropped read requests per channel", obs.KindCounter, "channel")
	chQueue := reg.Register("lazysim_channel_queue_occupancy", "Pending-queue occupancy per channel (instantaneous)", obs.KindGauge, "channel")

	bankLabels := []string{"channel", "bank"}
	bActs := reg.Register("lazysim_bank_activations_total", "Row activations per channel and bank", obs.KindCounter, bankLabels...)
	bHits := reg.Register("lazysim_bank_row_hits_total", "Row-buffer hits per channel and bank", obs.KindCounter, bankLabels...)
	bMiss := reg.Register("lazysim_bank_row_misses_total", "Row-buffer misses per channel and bank", obs.KindCounter, bankLabels...)
	bConf := reg.Register("lazysim_bank_row_conflicts_total", "Row-buffer conflicts per channel and bank", obs.KindCounter, bankLabels...)
	bDelay := reg.Register("lazysim_bank_dms_delay_cycles_total", "Cycles the bank's oldest miss was held by the DMS age gate", obs.KindCounter, bankLabels...)
	bDrops := reg.Register("lazysim_bank_ams_drops_total", "AMS-dropped read requests per channel and bank", obs.KindCounter, bankLabels...)
	bRowE := reg.Register("lazysim_bank_row_energy_nj", "Row energy per channel and bank under the configured profile", obs.KindGauge, bankLabels...)

	if census {
		stall := reg.Register("lazysim_census_stall_cycles_total",
			"Attributed request-waiting cycles by stall cause", obs.KindCounter, "cause")
		for c := obs.StallCause(0); c < obs.NumStallCauses; c++ {
			m.cenStall = append(m.cenStall, stall.With(c.String()))
		}
		state := reg.Register("lazysim_census_bank_state_cycles_total",
			"Bank-cycles spent in each residency state, summed over banks", obs.KindCounter, "state")
		for st := obs.BankState(0); st < obs.NumBankStates; st++ {
			m.cenState = append(m.cenState, state.With(st.String()))
		}
		part := reg.Register("lazysim_census_partition_cycles_total",
			"Partition memory cycles by census class", obs.KindCounter, "class")
		for _, cls := range []string{"advancing", "timing_wait", "idle"} {
			m.cenPart = append(m.cenPart, part.With(cls))
		}
		m.cenReqs = reg.Counter("lazysim_census_requests_total", "Requests folded into the cycle census")
		m.cenLat = reg.Counter("lazysim_census_latency_cycles_total", "Total attributed queue+service latency cycles")
		m.cenSkip = reg.Gauge("lazysim_census_skippable_frac", "Fraction of partition cycles an event-driven memory model could skip")
		m.cenGapP50 = reg.Gauge("lazysim_census_gap_p50", "Median next-event gap (maximal skippable run) in memory cycles")
		m.cenGapP99 = reg.Gauge("lazysim_census_gap_p99", "99th-percentile next-event gap in memory cycles")
	}

	for c := 0; c < nch; c++ {
		cl := strconv.Itoa(c)
		m.chActs = append(m.chActs, chActs.With(cl))
		m.chReads = append(m.chReads, chReads.With(cl))
		m.chWrites = append(m.chWrites, chWrites.With(cl))
		m.chDrops = append(m.chDrops, chDrops.With(cl))
		m.chQueue = append(m.chQueue, chQueue.With(cl))
		var acts, hits, misses, confl, delays, drops, rowE []*obs.Metric
		for b := 0; b < nbanks; b++ {
			bl := strconv.Itoa(b)
			acts = append(acts, bActs.With(cl, bl))
			hits = append(hits, bHits.With(cl, bl))
			misses = append(misses, bMiss.With(cl, bl))
			confl = append(confl, bConf.With(cl, bl))
			delays = append(delays, bDelay.With(cl, bl))
			drops = append(drops, bDrops.With(cl, bl))
			rowE = append(rowE, bRowE.With(cl, bl))
		}
		m.bankActs = append(m.bankActs, acts)
		m.bankHits = append(m.bankHits, hits)
		m.bankMisses = append(m.bankMisses, misses)
		m.bankConfl = append(m.bankConfl, confl)
		m.bankDelay = append(m.bankDelay, delays)
		m.bankDrops = append(m.bankDrops, drops)
		m.bankRowE = append(m.bankRowE, rowE)
	}
	return m
}

// publishMetrics pushes the current simulation state into the registry.
// It runs on the simulation goroutine; scrapers read the atomics
// concurrently.
func (g *GPU) publishMetrics() {
	m := g.met
	insts := g.insts
	for _, s := range g.sms {
		insts += s.Insts()
	}
	m.coreCycles.Set(float64(g.coreCycle))
	m.memCycles.Set(float64(g.memCycle))
	m.insts.Set(float64(insts))
	if g.coreCycle > 0 {
		m.ipc.Set(float64(insts) / float64(g.coreCycle))
	}

	var busy, acts, occ uint64
	delay, th := 0, 0
	actNJ := g.cfg.Energy.ActNJ
	var rowNJ float64
	for ci, p := range g.partitions {
		busy += p.st.DataBusBusy
		acts += p.st.Activations
		occ += uint64(p.ctrl.Pending())
		if d := p.ctrl.Delay(); d > delay {
			delay = d
		}
		if t := p.ctrl.ThRBL(); t > th {
			th = t
		}
		if ci < len(m.chActs) {
			m.chActs[ci].Set(float64(p.st.Activations))
			m.chReads[ci].Set(float64(p.st.Reads))
			m.chWrites[ci].Set(float64(p.st.Writes))
			m.chDrops[ci].Set(float64(p.st.Dropped))
			m.chQueue[ci].Set(float64(p.ctrl.Pending()))
		}
		if ci < len(m.bankActs) {
			banks := m.bankActs[ci]
			for bi := range p.st.Banks {
				if bi >= len(banks) {
					break
				}
				b := &p.st.Banks[bi]
				banks[bi].Set(float64(b.Activations))
				m.bankHits[ci][bi].Set(float64(b.RowHits))
				m.bankMisses[ci][bi].Set(float64(b.RowMisses))
				m.bankConfl[ci][bi].Set(float64(b.RowConflicts))
				m.bankDelay[ci][bi].Set(float64(b.DMSDelayCycles))
				m.bankDrops[ci][bi].Set(float64(b.AMSDrops))
				m.bankRowE[ci][bi].Set(float64(b.Activations) * actNJ)
			}
		}
	}
	rowNJ = float64(acts) * actNJ
	m.rowEnergy.Set(rowNJ)
	nch := uint64(len(g.partitions))
	if nch > 0 {
		m.queueOcc.Set(float64(occ) / float64(nch))
		if g.memCycle > 0 {
			m.bwutil.Set(float64(busy) / float64(g.memCycle*nch))
		}
	}
	m.delay.Set(float64(delay))
	m.thRBL.Set(float64(th))

	// The audit and quality counters live in per-partition obs shards; the
	// collector sums them here. Like the rest of publishMetrics this runs on
	// the simulation goroutine between pool barriers (quiesced state), and
	// scrapers only ever read the atomic metrics written below.
	if g.col.AuditEnabled() {
		for r, metric := range m.auditReasons {
			metric.Set(float64(g.col.AuditCount(obs.Reason(r))))
		}
	}
	if g.col.QualityEnabled() {
		lines, words, meanRel, maxRel := g.col.QualityCounters()
		m.qualLines.Set(float64(lines))
		m.qualWords.Set(float64(words))
		m.qualMeanRel.Set(meanRel)
		m.qualMaxRel.Set(maxRel)
	}
	if m.cenStall != nil && g.col.CensusEnabled() {
		cen := g.col.MergedCensus()
		for c := range m.cenStall {
			m.cenStall[c].Set(float64(cen.Stall[c]))
		}
		var states [obs.NumBankStates]uint64
		for _, row := range cen.Residency {
			for st, n := range row {
				states[st] += n
			}
		}
		for st := range m.cenState {
			m.cenState[st].Set(float64(states[st]))
		}
		m.cenPart[0].Set(float64(cen.Advancing))
		m.cenPart[1].Set(float64(cen.TimingWait))
		m.cenPart[2].Set(float64(cen.Idle))
		m.cenReqs.Set(float64(cen.Requests))
		m.cenLat.Set(float64(cen.LatencyCycles))
		m.cenSkip.Set(cen.SkippableFrac())
		m.cenGapP50.Set(float64(cen.GapHist.Percentile(50)))
		m.cenGapP99.Set(float64(cen.GapHist.Percentile(99)))
	}
}
