package sim_test

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"lazydram/internal/mc"
	"lazydram/internal/obs"
	"lazydram/internal/sim"
)

// stageSums indexes a telemetry stage table by name.
func stageSums(t *testing.T, tel *obs.Telemetry) map[string]obs.StageSummary {
	t.Helper()
	out := make(map[string]obs.StageSummary, len(tel.Stages))
	for _, s := range tel.Stages {
		out[s.Stage] = s
	}
	return out
}

// checkCensus asserts every invariant the census advertises, using only the
// serialized summary (the same artifact lazysim -json emits): the Σ stall
// decomposition equals the independently measured tracer latency, residency
// is a total bank-cycle classification, and the partition census partitions
// the run's memory cycles.
func checkCensus(t *testing.T, res *sim.Result, vpLat uint64) *obs.CensusSummary {
	t.Helper()
	if res.Telemetry == nil || res.Telemetry.Census == nil {
		t.Fatal("telemetry census missing with Obs.Census set")
	}
	cen := res.Telemetry.Census
	if cen.InvariantError != "" {
		t.Fatalf("census invariant violated: %s", cen.InvariantError)
	}
	if cen.AttributedCycles != cen.LatencyCycles {
		t.Fatalf("attributed %d != latency %d", cen.AttributedCycles, cen.LatencyCycles)
	}

	// Cross-check against the latency tracer, which measures the same
	// requests through entirely separate bookkeeping: the census total must
	// equal queue + DRAM service for served requests plus queue + VP reply
	// latency for AMS drops, cycle for cycle.
	st := stageSums(t, res.Telemetry)
	want := st["mc.queue"].Sum + st["dram.service"].Sum +
		st["mc.vpdrop"].Sum + vpLat*st["mc.vpdrop"].Count
	if cen.LatencyCycles != want {
		t.Fatalf("census latency %d != tracer queue+service %d", cen.LatencyCycles, want)
	}
	if wantReqs := st["mc.queue"].Count + st["mc.vpdrop"].Count; cen.Requests != wantReqs {
		t.Fatalf("census requests %d != tracer retirements %d", cen.Requests, wantReqs)
	}

	// The per-cause table must itself sum back to the total.
	var stalls uint64
	for _, s := range cen.Stalls {
		stalls += s.Cycles
	}
	if stalls != cen.LatencyCycles {
		t.Fatalf("stall table sums to %d, want %d", stalls, cen.LatencyCycles)
	}

	// Residency is a total classification: summed over banks and states it
	// covers every elapsed bank-cycle exactly once.
	nbanks := 0
	for _, ch := range cen.Channels {
		nbanks += len(ch.Banks)
	}
	var resid uint64
	for _, r := range cen.Residency {
		resid += r.Cycles
	}
	if resid != cen.BankCycles*uint64(nbanks)/uint64(len(cen.Channels)) {
		t.Fatalf("residency cycles %d != bank_cycles %d × %d banks / %d channels",
			resid, cen.BankCycles, nbanks, len(cen.Channels))
	}

	// Partition census: the three classes partition the elapsed partition
	// cycles, and the headline fraction is their skippable share.
	if cen.Advancing+cen.TimingWait+cen.Idle != cen.PartCycles {
		t.Fatalf("partition census %d+%d+%d != %d",
			cen.Advancing, cen.TimingWait, cen.Idle, cen.PartCycles)
	}
	if cen.PartCycles != res.Run.Mem.Cycles*uint64(len(cen.Channels)) {
		t.Fatalf("partition cycles %d != mem cycles %d × %d channels",
			cen.PartCycles, res.Run.Mem.Cycles, len(cen.Channels))
	}
	wantFrac := float64(cen.TimingWait+cen.Idle) / float64(cen.PartCycles)
	if math.Abs(cen.SkippableFrac-wantFrac) > 1e-12 {
		t.Fatalf("skippable_frac %g, want %g", cen.SkippableFrac, wantFrac)
	}

	// Gap histogram counts every maximal skippable run.
	var gaps uint64
	for _, b := range cen.GapHist {
		gaps += b.Count
	}
	if gaps != cen.GapCount {
		t.Fatalf("gap buckets sum to %d, want count %d", gaps, cen.GapCount)
	}

	// Channel detail must decompose the machine totals.
	var chReqs, chLat uint64
	for _, ch := range cen.Channels {
		chReqs += ch.Requests
		chLat += ch.LatencyCycles
	}
	if chReqs != cen.Requests || chLat != cen.LatencyCycles {
		t.Fatalf("channel rollup %d req / %d cycles, want %d / %d",
			chReqs, chLat, cen.Requests, cen.LatencyCycles)
	}
	return cen
}

// TestCensusSigmaInvariant is the tentpole property: across every scheme
// (baseline FR-FCFS, DMS, AMS, combined, static and dynamic) and with fault
// injection on or off, every cycle a request spends waiting is attributed to
// exactly one cause — the decomposition equals the independently measured
// queue+service latency with zero residual.
func TestCensusSigmaInvariant(t *testing.T) {
	schemes := []mc.Scheme{
		mc.Baseline, mc.StaticDMS, mc.DynDMS,
		mc.StaticAMS, mc.DynAMS, mc.StaticBoth, mc.DynBoth,
	}
	for _, scheme := range schemes {
		for _, faulty := range []bool{false, true} {
			name := scheme.Name()
			if faulty {
				name += "/fault"
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				var vpLat uint64
				mut := []func(*sim.Config){func(cfg *sim.Config) {
					cfg.Obs = obs.Options{Census: true, Latency: true}
					vpLat = cfg.MC.VPLatencyCycles
				}}
				if faulty {
					mut = append(mut, withFault(1e-6, 1e-5, 7))
				}
				res := simulate(t, "SCP", scheme, mut...)
				cen := checkCensus(t, res, vpLat)
				if cen.Requests == 0 {
					t.Fatal("census saw no requests")
				}
				if scheme.AMS != mc.Off && res.Run.Mem.Dropped > 0 {
					found := false
					for _, s := range cen.Stalls {
						if s.Cause == "vp" {
							found = true
						}
					}
					if !found {
						t.Error("AMS drops occurred but no vp stall cycles recorded")
					}
				}
			})
		}
	}
}

// TestCensusShardedMatchesSequential: the census must be bit-identical
// between the sequential tick loop and the sharded pool — the per-shard
// single-writer discipline plus deterministic merge order make the sharded
// census equal by construction, and this pins it. Host phase times are
// wall-clock and are the one legitimately nondeterministic block.
func TestCensusShardedMatchesSequential(t *testing.T) {
	opts := func(shard bool) func(*sim.Config) {
		return func(cfg *sim.Config) {
			cfg.Obs = obs.Options{Census: true, Latency: true}
			if shard {
				cfg.ShardPartitions = true
				cfg.ShardWorkers = 4
			}
		}
	}
	seq := simulate(t, "SCP", mc.DynBoth, opts(false))
	shd := simulate(t, "SCP", mc.DynBoth, opts(true))
	a, b := seq.Telemetry.Census, shd.Telemetry.Census
	if a == nil || b == nil {
		t.Fatal("census missing")
	}
	a.Host, b.Host = nil, nil
	if !reflect.DeepEqual(a, b) {
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		t.Fatalf("sharded census differs from sequential:\nseq: %s\nshd: %s", aj, bj)
	}
}

// TestCensusHostPhases: the host-side profiler must attach sampled phase
// wall-times, and for sharded runs a per-worker busy/barrier split whose
// busy time never exceeds the sampled dispatch wall-clock.
func TestCensusHostPhases(t *testing.T) {
	res := simulate(t, "SCP", mc.DynBoth, func(cfg *sim.Config) {
		cfg.Obs = obs.Options{Census: true}
		cfg.ShardPartitions = true
		cfg.ShardWorkers = 2
	})
	cen := res.Telemetry.Census
	if cen == nil || cen.Host == nil {
		t.Fatal("census host phases missing")
	}
	h := cen.Host
	if h.CoreTicks == 0 || h.MemTicks == 0 || h.ProbeTicks == 0 {
		t.Fatalf("no sampled ticks: %+v", h)
	}
	if h.MemTicks != h.ProbeTicks {
		t.Errorf("mem samples %d != probe samples %d", h.MemTicks, h.ProbeTicks)
	}
	if len(h.Workers) != 2 {
		t.Fatalf("worker phases: got %d, want 2", len(h.Workers))
	}
	for _, w := range h.Workers {
		if w.Dispatches != h.MemTicks {
			t.Errorf("worker %d timed %d dispatches, want %d", w.Worker, w.Dispatches, h.MemTicks)
		}
		if w.BusyNS > h.MemNS {
			t.Errorf("worker %d busy %dns exceeds dispatch wall %dns", w.Worker, w.BusyNS, h.MemNS)
		}
		if w.BusyFrac < 0 || w.BusyFrac > 1 {
			t.Errorf("worker %d busy_frac %g out of range", w.Worker, w.BusyFrac)
		}
	}
}

// TestCensusMetricsScrapeDuringRun scrapes the live registry concurrently
// with a sharded census-enabled run; under -race this proves the
// publish/scrape boundary is atomic-only and the census families render.
func TestCensusMetricsScrapeDuringRun(t *testing.T) {
	reg := obs.NewRegistry()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	var last []byte
	go func() {
		defer wg.Done()
		for {
			var buf bytes.Buffer
			if err := reg.WritePrometheus(&buf); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			if buf.Len() > 0 {
				last = buf.Bytes()
			}
			select {
			case <-done:
				return
			default:
			}
		}
	}()
	simulate(t, "SCP", mc.DynBoth, func(cfg *sim.Config) {
		cfg.Obs = obs.Options{Census: true, Metrics: reg, MetricsEvery: 64}
		cfg.ShardPartitions = true
		cfg.ShardWorkers = 4
	})
	close(done)
	wg.Wait()
	for _, fam := range []string{
		"lazysim_census_stall_cycles_total",
		"lazysim_census_bank_state_cycles_total",
		"lazysim_census_partition_cycles_total",
		"lazysim_census_skippable_frac",
	} {
		if !strings.Contains(string(last), fam) {
			t.Errorf("final scrape missing census family %s", fam)
		}
	}
}
