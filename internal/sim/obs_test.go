package sim_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"lazydram/internal/mc"
	"lazydram/internal/obs"
	"lazydram/internal/sim"
)

// TestTelemetryEndToEnd runs a real workload with the full observability
// stack enabled and checks the digest is internally consistent: every
// lifecycle stage that must fire did, the time series covers the whole run at
// the configured interval, and the command trace replays real DRAM activity.
func TestTelemetryEndToEnd(t *testing.T) {
	const every = 256
	res := simulate(t, "SCP", mc.DynBoth, func(cfg *sim.Config) {
		cfg.Obs = obs.Options{Latency: true, SampleEvery: every, TraceCapacity: 1 << 14}
	})
	tel := res.Telemetry
	if tel == nil {
		t.Fatal("Telemetry nil with Obs enabled")
	}

	stages := make(map[string]obs.StageSummary, len(tel.Stages))
	for _, s := range tel.Stages {
		stages[s.Stage] = s
	}
	for _, name := range []string{"icnt.req", "mc.queue", "dram.service", "icnt.reply", "total"} {
		s, ok := stages[name]
		if !ok || s.Count == 0 {
			t.Errorf("stage %s missing or empty", name)
			continue
		}
		if s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.Max {
			t.Errorf("stage %s percentiles not monotone: p50=%d p90=%d p99=%d max=%d",
				name, s.P50, s.P90, s.P99, s.Max)
		}
	}
	// Every L2 miss crosses the MC queue exactly once (reads; writes add
	// more), and every retired read is serviced by DRAM or dropped.
	if q, d := stages["mc.queue"].Count, stages["dram.service"].Count; q < d {
		t.Errorf("mc.queue count %d < dram.service count %d", q, d)
	}
	// The total stage spans the whole round trip, so its p50 must dominate
	// every other core-clock stage's p50.
	if tot := stages["total"]; tot.P50 < stages["icnt.reply"].P50 {
		t.Errorf("total p50 %d < icnt.reply p50 %d", tot.P50, stages["icnt.reply"].P50)
	}

	// Time series: one sample per full interval plus one for the partial tail.
	want := (res.Run.Mem.Cycles + every - 1) / every
	if got := uint64(len(tel.Series)); got != want {
		t.Errorf("sample count %d, want ceil(%d/%d) = %d",
			got, res.Run.Mem.Cycles, uint64(every), want)
	}
	if len(tel.Series) < 2 {
		t.Fatal("too few samples to check ordering")
	}
	for i := 1; i < len(tel.Series); i++ {
		if tel.Series[i].MemCycle <= tel.Series[i-1].MemCycle {
			t.Fatalf("series not strictly increasing at %d", i)
		}
	}
	if last := tel.Series[len(tel.Series)-1]; last.MemCycle != res.Run.Mem.Cycles {
		t.Errorf("last sample at mem cycle %d, want run end %d", last.MemCycle, res.Run.Mem.Cycles)
	}

	// Command trace: total issued commands must at least cover the stat
	// block's activations + reads + writes (plus precharges).
	if res.Trace == nil {
		t.Fatal("Trace nil with TraceCapacity set")
	}
	minCmds := res.Run.Mem.Activations + res.Run.Mem.Reads + res.Run.Mem.Writes
	if res.Trace.Total() < minCmds {
		t.Errorf("trace total %d < activations+reads+writes %d", res.Trace.Total(), minCmds)
	}
	var buf bytes.Buffer
	if err := res.Trace.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("chrome trace has no events")
	}

	// The merged run stats must also satisfy their own invariants.
	if err := res.Run.Mem.Validate(); err != nil {
		t.Errorf("run stats failed validation: %v", err)
	}

	// The whole telemetry digest must round-trip through JSON.
	if _, err := json.Marshal(tel); err != nil {
		t.Fatalf("telemetry not serializable: %v", err)
	}
}

// TestTelemetryDisabledIsFree checks the zero-value Obs config produces no
// telemetry and an identical simulation result.
func TestTelemetryDisabledIsFree(t *testing.T) {
	off := simulate(t, "SCP", mc.DynBoth)
	if off.Telemetry != nil || off.Trace != nil {
		t.Fatal("telemetry produced with Obs disabled")
	}
	on := simulate(t, "SCP", mc.DynBoth, func(cfg *sim.Config) {
		cfg.Obs = obs.Options{Latency: true, SampleEvery: 512, TraceCapacity: 1 << 12}
	})
	// Observability must never perturb the simulation itself.
	if off.Run.CoreCycles != on.Run.CoreCycles || off.Run.Mem.Activations != on.Run.Mem.Activations {
		t.Errorf("telemetry changed the run: cycles %d vs %d, acts %d vs %d",
			off.Run.CoreCycles, on.Run.CoreCycles,
			off.Run.Mem.Activations, on.Run.Mem.Activations)
	}
	if len(off.Output) != len(on.Output) {
		t.Fatalf("output lengths differ")
	}
	for i := range off.Output {
		if off.Output[i] != on.Output[i] {
			t.Fatalf("output diverged at %d", i)
		}
	}
}
