package sim_test

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"lazydram/internal/mc"
	"lazydram/internal/obs"
	"lazydram/internal/sim"
	"lazydram/internal/stats"
)

// TestTelemetryEndToEnd runs a real workload with the full observability
// stack enabled and checks the digest is internally consistent: every
// lifecycle stage that must fire did, the time series covers the whole run at
// the configured interval, and the command trace replays real DRAM activity.
func TestTelemetryEndToEnd(t *testing.T) {
	const every = 256
	res := simulate(t, "SCP", mc.DynBoth, func(cfg *sim.Config) {
		cfg.Obs = obs.Options{Latency: true, SampleEvery: every, TraceCapacity: 1 << 14}
	})
	tel := res.Telemetry
	if tel == nil {
		t.Fatal("Telemetry nil with Obs enabled")
	}

	stages := make(map[string]obs.StageSummary, len(tel.Stages))
	for _, s := range tel.Stages {
		stages[s.Stage] = s
	}
	for _, name := range []string{"icnt.req", "mc.queue", "dram.service", "icnt.reply", "total"} {
		s, ok := stages[name]
		if !ok || s.Count == 0 {
			t.Errorf("stage %s missing or empty", name)
			continue
		}
		if s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.Max {
			t.Errorf("stage %s percentiles not monotone: p50=%d p90=%d p99=%d max=%d",
				name, s.P50, s.P90, s.P99, s.Max)
		}
	}
	// Every L2 miss crosses the MC queue exactly once (reads; writes add
	// more), and every retired read is serviced by DRAM or dropped.
	if q, d := stages["mc.queue"].Count, stages["dram.service"].Count; q < d {
		t.Errorf("mc.queue count %d < dram.service count %d", q, d)
	}
	// The total stage spans the whole round trip, so its p50 must dominate
	// every other core-clock stage's p50.
	if tot := stages["total"]; tot.P50 < stages["icnt.reply"].P50 {
		t.Errorf("total p50 %d < icnt.reply p50 %d", tot.P50, stages["icnt.reply"].P50)
	}

	// Time series: one sample per full interval plus one for the partial tail.
	want := (res.Run.Mem.Cycles + every - 1) / every
	if got := uint64(len(tel.Series)); got != want {
		t.Errorf("sample count %d, want ceil(%d/%d) = %d",
			got, res.Run.Mem.Cycles, uint64(every), want)
	}
	if len(tel.Series) < 2 {
		t.Fatal("too few samples to check ordering")
	}
	for i := 1; i < len(tel.Series); i++ {
		if tel.Series[i].MemCycle <= tel.Series[i-1].MemCycle {
			t.Fatalf("series not strictly increasing at %d", i)
		}
	}
	if last := tel.Series[len(tel.Series)-1]; last.MemCycle != res.Run.Mem.Cycles {
		t.Errorf("last sample at mem cycle %d, want run end %d", last.MemCycle, res.Run.Mem.Cycles)
	}

	// Command trace: total issued commands must at least cover the stat
	// block's activations + reads + writes (plus precharges).
	if res.Trace == nil {
		t.Fatal("Trace nil with TraceCapacity set")
	}
	minCmds := res.Run.Mem.Activations + res.Run.Mem.Reads + res.Run.Mem.Writes
	if res.Trace.Total() < minCmds {
		t.Errorf("trace total %d < activations+reads+writes %d", res.Trace.Total(), minCmds)
	}
	var buf bytes.Buffer
	if err := res.Trace.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("chrome trace has no events")
	}

	// The merged run stats must also satisfy their own invariants.
	if err := res.Run.Mem.Validate(); err != nil {
		t.Errorf("run stats failed validation: %v", err)
	}

	// The whole telemetry digest must round-trip through JSON.
	if _, err := json.Marshal(tel); err != nil {
		t.Fatalf("telemetry not serializable: %v", err)
	}
}

// TestBankAttributionEndToEnd runs a full workload and checks the per-bank
// counter matrix is an exact decomposition of the run: bank counters sum to
// their channel's aggregates, the channel snapshots merge back into
// Run.Mem, the per-channel energy attribution sums to Run.MemEnergy, and
// the live metrics registry's final publish agrees with the stat block.
func TestBankAttributionEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	res := simulate(t, "SCP", mc.DynBoth, func(cfg *sim.Config) {
		cfg.Obs = obs.Options{Metrics: reg, MetricsEvery: 256}
	})

	if len(res.Channels) != res.Run.Mem.NumChannels {
		t.Fatalf("channel snapshots %d, want %d", len(res.Channels), res.Run.Mem.NumChannels)
	}

	// Per channel: bank sums equal the channel aggregates, exactly.
	var remerged stats.Mem
	for c := range res.Channels {
		ch := &res.Channels[c]
		if err := ch.Validate(); err != nil {
			t.Fatalf("channel %d snapshot invalid: %v", c, err)
		}
		bt := ch.BankTotals()
		if bt.Activations != ch.Activations || bt.Reads != ch.Reads ||
			bt.Writes != ch.Writes || bt.BusBusy != ch.DataBusBusy ||
			bt.AMSDrops != ch.Dropped {
			t.Fatalf("channel %d: bank totals %+v do not sum to channel aggregates", c, bt)
		}
		for b := range ch.Banks {
			bk := &ch.Banks[b]
			if bk.RowHits+bk.RowMisses+bk.RowConflicts != bk.Reads+bk.Writes {
				t.Fatalf("ch%d.b%d: hit/miss/conflict %d+%d+%d != column accesses %d",
					c, b, bk.RowHits, bk.RowMisses, bk.RowConflicts, bk.Reads+bk.Writes)
			}
		}
		remerged.Merge(ch)
	}

	// The snapshots are the exact decomposition of the merged run stats.
	if remerged.Activations != res.Run.Mem.Activations ||
		remerged.Reads != res.Run.Mem.Reads ||
		remerged.Writes != res.Run.Mem.Writes ||
		remerged.Dropped != res.Run.Mem.Dropped {
		t.Fatalf("remerged channels %+v != Run.Mem %+v", remerged, res.Run.Mem)
	}
	if !reflect.DeepEqual(remerged.Banks, res.Run.Mem.Banks) {
		t.Fatal("remerged bank matrix differs from Run.Mem.Banks")
	}
	if res.Run.Mem.Activations == 0 {
		t.Fatal("run performed no activations; test is vacuous")
	}

	// Energy attribution decomposes the aggregate model exactly.
	if len(res.EnergyByChannel) != len(res.Channels) {
		t.Fatalf("attribution covers %d channels, want %d",
			len(res.EnergyByChannel), len(res.Channels))
	}
	var totalNJ, rowNJ float64
	for _, ce := range res.EnergyByChannel {
		totalNJ += ce.TotalNJ
		rowNJ += ce.RowNJ
	}
	if math.Abs(totalNJ-res.Run.MemEnergy) > 1e-6*res.Run.MemEnergy {
		t.Errorf("attribution total %v != Run.MemEnergy %v", totalNJ, res.Run.MemEnergy)
	}
	if math.Abs(rowNJ-res.Run.RowEnergy) > 1e-6*res.Run.RowEnergy {
		t.Errorf("attribution row total %v != Run.RowEnergy %v", rowNJ, res.Run.RowEnergy)
	}

	// The registry's final publish reflects the finished run: sum the
	// per-bank activation children via the expvar export and compare.
	var buf bytes.Buffer
	if err := reg.WriteExpvar(&buf); err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	if err := json.Unmarshal(buf.Bytes(), &vars); err != nil {
		t.Fatalf("expvar export invalid: %v", err)
	}
	bankActs, ok := vars["lazysim_bank_activations_total"].(map[string]any)
	if !ok {
		t.Fatal("registry missing lazysim_bank_activations_total")
	}
	var published float64
	for _, v := range bankActs {
		published += v.(float64)
	}
	if published != float64(res.Run.Mem.Activations) {
		t.Errorf("registry bank activations %v != Run.Mem.Activations %d",
			published, res.Run.Mem.Activations)
	}
	if got := vars["lazysim_instructions_total"]; got != float64(res.Run.Instructions) {
		t.Errorf("registry instructions %v != Run.Instructions %d", got, res.Run.Instructions)
	}
	if got := vars["lazysim_ipc"]; got != res.Run.IPC() {
		t.Errorf("registry ipc %v != Run.IPC %v", got, res.Run.IPC())
	}
}

// TestMetricsDoNotPerturbRun: enabling the live registry must not change
// simulation results.
func TestMetricsDoNotPerturbRun(t *testing.T) {
	off := simulate(t, "MVT", mc.DynBoth)
	on := simulate(t, "MVT", mc.DynBoth, func(cfg *sim.Config) {
		cfg.Obs = obs.Options{Metrics: obs.NewRegistry()}
	})
	if off.Run.CoreCycles != on.Run.CoreCycles ||
		off.Run.Mem.Activations != on.Run.Mem.Activations ||
		off.Run.AppError != on.Run.AppError {
		t.Fatalf("metrics registry perturbed the run: %+v vs %+v", off.Run, on.Run)
	}
}

// TestTelemetryDisabledIsFree checks the zero-value Obs config produces no
// telemetry and an identical simulation result.
func TestTelemetryDisabledIsFree(t *testing.T) {
	off := simulate(t, "SCP", mc.DynBoth)
	if off.Telemetry != nil || off.Trace != nil {
		t.Fatal("telemetry produced with Obs disabled")
	}
	on := simulate(t, "SCP", mc.DynBoth, func(cfg *sim.Config) {
		cfg.Obs = obs.Options{Latency: true, SampleEvery: 512, TraceCapacity: 1 << 12}
	})
	// Observability must never perturb the simulation itself.
	if off.Run.CoreCycles != on.Run.CoreCycles || off.Run.Mem.Activations != on.Run.Mem.Activations {
		t.Errorf("telemetry changed the run: cycles %d vs %d, acts %d vs %d",
			off.Run.CoreCycles, on.Run.CoreCycles,
			off.Run.Mem.Activations, on.Run.Mem.Activations)
	}
	if len(off.Output) != len(on.Output) {
		t.Fatalf("output lengths differ")
	}
	for i := range off.Output {
		if off.Output[i] != on.Output[i] {
			t.Fatalf("output diverged at %d", i)
		}
	}
}
