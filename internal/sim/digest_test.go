package sim_test

import (
	"reflect"
	"testing"

	"lazydram/internal/mc"
	"lazydram/internal/sim"
	"lazydram/internal/workloads"
)

func digestOn(cfg *sim.Config) {
	cfg.Obs.DigestEvery = 512
}

// prepare builds a stepwise-ready GPU the same way simulate builds its runs.
func prepare(t *testing.T, app string, scheme mc.Scheme, mutate ...func(*sim.Config)) *sim.GPU {
	t.Helper()
	k, err := workloads.New(app)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	for _, m := range mutate {
		m(&cfg)
	}
	return sim.Prepare(k, cfg, scheme, 1)
}

// TestStepMatchesRun is the stepwise-execution gate: driving a GPU one Step at
// a time must be bit-identical to Run — same outputs, same statistics, same
// digest stream and final machine digest — in both tick modes, because
// cmd/lazydiverge's lockstep bisection depends on Step being Run's exact loop
// body.
func TestStepMatchesRun(t *testing.T) {
	shard := func(cfg *sim.Config) {
		cfg.ShardPartitions = true
		cfg.ShardWorkers = 4
	}
	for _, mode := range []struct {
		name   string
		mutate []func(*sim.Config)
	}{
		{"sequential", []func(*sim.Config){digestOn}},
		{"sharded", []func(*sim.Config){digestOn, shard}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			run := simulate(t, "SCP", mc.Baseline, mode.mutate...)

			g := prepare(t, "SCP", mc.Baseline, mode.mutate...)
			defer g.Close()
			steps := 0
			for {
				done, err := g.Step()
				if err != nil {
					t.Fatal(err)
				}
				if done {
					break
				}
				if steps++; steps > 50_000_000 {
					t.Fatal("stepwise run did not terminate")
				}
			}
			stepped := g.Finish()

			if !outputBitsEqual(run.Output, stepped.Output) {
				t.Errorf("outputs differ between Run and Step")
			}
			if !reflect.DeepEqual(run.Run, stepped.Run) {
				t.Errorf("run statistics differ:\nrun:  %+v\nstep: %+v", run.Run, stepped.Run)
			}
			if run.Digest == nil || stepped.Digest == nil {
				t.Fatalf("digest log missing: run=%v step=%v", run.Digest != nil, stepped.Digest != nil)
			}
			if run.Digest.Chain() != stepped.Digest.Chain() {
				t.Errorf("digest chains differ: %#x vs %#x", run.Digest.Chain(), stepped.Digest.Chain())
			}
			if run.Digest.Final() != stepped.Digest.Final() {
				t.Errorf("final machine digests differ: %#x vs %#x", run.Digest.Final(), stepped.Digest.Final())
			}
			if run.Digest.Final() == 0 {
				t.Errorf("final machine digest was never recorded")
			}
			if !reflect.DeepEqual(run.Digest.Records(), stepped.Digest.Records()) {
				t.Errorf("digest record streams differ")
			}
		})
	}
}

// TestDigestShardedMatchesSequential gates the lazydiverge premise: the digest
// stream — not just the end-of-run results — must be identical between the
// sharded and sequential tick paths, including with fault injection active.
func TestDigestShardedMatchesSequential(t *testing.T) {
	faultOn := func(cfg *sim.Config) {
		cfg.Fault.Enabled = true
		cfg.Fault.BusBER = 1e-7
		cfg.Fault.WeakCellDensity = 1e-6
	}
	seq := simulate(t, "SCP", mc.DynBoth, digestOn, faultOn)
	par := simulate(t, "SCP", mc.DynBoth, digestOn, faultOn, func(cfg *sim.Config) {
		cfg.ShardPartitions = true
		cfg.ShardWorkers = 4
	})
	if seq.Digest == nil || par.Digest == nil {
		t.Fatal("digest logs missing")
	}
	if seq.Digest.Chain() != par.Digest.Chain() {
		t.Errorf("digest chains differ: %#x vs %#x", seq.Digest.Chain(), par.Digest.Chain())
	}
	if seq.Digest.Final() != par.Digest.Final() {
		t.Errorf("final digests differ: %#x vs %#x", seq.Digest.Final(), par.Digest.Final())
	}
	if !reflect.DeepEqual(seq.Digest.Records(), par.Digest.Records()) {
		t.Errorf("digest record streams differ")
	}
	if tel := seq.Telemetry; tel == nil || tel.Digest == nil {
		t.Fatal("telemetry digest summary missing")
	} else if tel.Digest.Intervals == 0 || tel.Digest.Final == "0x0000000000000000" {
		t.Errorf("telemetry digest summary empty: %+v", tel.Digest)
	}
}

// TestDigestDivergesUnderFaults asserts the flight recorder actually sees a
// data divergence: same seed, fault injection on vs off must produce different
// traffic digests (and thus different chains) at some sampled interval.
func TestDigestDivergesUnderFaults(t *testing.T) {
	clean := simulate(t, "SCP", mc.Baseline, digestOn)
	faulty := simulate(t, "SCP", mc.Baseline, digestOn, func(cfg *sim.Config) {
		cfg.Fault.Enabled = true
		cfg.Fault.BusBER = 1e-4
		cfg.Fault.WeakCellDensity = 1e-3
	})
	if clean.Digest.Chain() == faulty.Digest.Chain() {
		t.Fatalf("fault-on and fault-off runs produced identical digest chains %#x", clean.Digest.Chain())
	}
	// The first divergent record must attribute the divergence to a partition
	// component (faults corrupt returned data, which lands in the traffic
	// digest first).
	cr, fr := clean.Digest.Records(), faulty.Digest.Records()
	n := min(len(cr), len(fr))
	found := false
	for i := 0; i < n; i++ {
		if cr[i].Machine == fr[i].Machine {
			continue
		}
		found = true
		partDiff := false
		for p := range cr[i].Parts {
			if cr[i].Parts[p] != fr[i].Parts[p] {
				partDiff = true
				if cr[i].Parts[p].Traffic == fr[i].Parts[p].Traffic {
					t.Logf("partition %d diverged without traffic divergence at cycle %d", p, cr[i].Cycle)
				}
			}
		}
		if !partDiff {
			t.Errorf("first divergent record (cycle %d) has no divergent partition", cr[i].Cycle)
		}
		break
	}
	if !found && len(cr) == len(fr) {
		t.Errorf("no divergent record found despite differing chains")
	}
}
