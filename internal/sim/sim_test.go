package sim_test

import (
	"testing"

	"lazydram/internal/approx"
	"lazydram/internal/mc"
	"lazydram/internal/sim"
	"lazydram/internal/workloads"
)

// fastApps is a cheap representative subset for -short runs.
var fastApps = []string{"jmein", "LPS", "meanfilter", "SCP"}

func testApps(t *testing.T) []string {
	t.Helper()
	if testing.Short() {
		return fastApps
	}
	return workloads.Names()
}

func simulate(t *testing.T, app string, scheme mc.Scheme, mutate ...func(*sim.Config)) *sim.Result {
	t.Helper()
	k, err := workloads.New(app)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	for _, m := range mutate {
		m(&cfg)
	}
	res, err := sim.Simulate(k, cfg, scheme, 1)
	if err != nil {
		t.Fatalf("%s: %v", app, err)
	}
	return res
}

func golden(t *testing.T, app string) []float32 {
	t.Helper()
	k, err := workloads.New(app)
	if err != nil {
		t.Fatal(err)
	}
	return sim.RunFunctional(k, 1)
}

// TestTimedMatchesFunctional is the end-to-end data-path oracle: with no
// approximation, the cycle-level simulation (caches, MSHRs, interconnect,
// DRAM, write-backs) must produce bit-exact outputs for every application.
func TestTimedMatchesFunctional(t *testing.T) {
	for _, app := range testApps(t) {
		t.Run(app, func(t *testing.T) {
			res := simulate(t, app, mc.Baseline)
			g := golden(t, app)
			if len(g) != len(res.Output) {
				t.Fatalf("output length %d vs golden %d", len(res.Output), len(g))
			}
			for i := range g {
				if g[i] != res.Output[i] {
					t.Fatalf("output[%d] = %v, golden %v", i, res.Output[i], g[i])
				}
			}
		})
	}
}

// TestDMSPreservesExactness: delaying requests must never change results.
func TestDMSPreservesExactness(t *testing.T) {
	apps := []string{"SCP", "meanfilter"}
	for _, app := range apps {
		res := simulate(t, app, mc.Scheme{DMS: mc.Static, StaticDelay: 512})
		g := golden(t, app)
		for i := range g {
			if g[i] != res.Output[i] {
				t.Fatalf("%s: DMS changed output[%d]: %v vs %v", app, i, res.Output[i], g[i])
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := simulate(t, "LPS", mc.DynBoth)
	b := simulate(t, "LPS", mc.DynBoth)
	if a.Run.CoreCycles != b.Run.CoreCycles ||
		a.Run.Mem.Activations != b.Run.Mem.Activations ||
		a.Run.Mem.Dropped != b.Run.Mem.Dropped {
		t.Fatalf("runs differ: %+v vs %+v", a.Run, b.Run)
	}
	for i := range a.Output {
		if a.Output[i] != b.Output[i] {
			t.Fatalf("nondeterministic output at %d", i)
		}
	}
}

func TestAMSCoverageBounded(t *testing.T) {
	for _, app := range []string{"SCP", "LPS", "jmein"} {
		res := simulate(t, app, mc.StaticAMS)
		if cov := res.Run.Mem.Coverage(); cov > 0.102 {
			t.Fatalf("%s: coverage %.4f exceeds the 10%% cap", app, cov)
		}
	}
}

func TestAMSDropsReduceActivations(t *testing.T) {
	base := simulate(t, "SCP", mc.Baseline)
	ams := simulate(t, "SCP", mc.StaticAMS)
	if ams.Run.Mem.Dropped == 0 {
		t.Fatal("AMS dropped nothing on SCP")
	}
	if ams.Run.Mem.Activations >= base.Run.Mem.Activations {
		t.Fatalf("AMS activations %d >= baseline %d",
			ams.Run.Mem.Activations, base.Run.Mem.Activations)
	}
}

func TestAMSErrorIsBoundedAndNonzero(t *testing.T) {
	res := simulate(t, "SCP", mc.StaticAMS)
	g := golden(t, "SCP")
	err := approx.MeanRelativeError(g, res.Output)
	if err == 0 {
		t.Fatal("10% coverage should perturb SCP's output")
	}
	if err > 0.5 {
		t.Fatalf("application error %.3f implausibly large for 10%% coverage", err)
	}
}

func TestAMSNeverRunsWithoutScheme(t *testing.T) {
	res := simulate(t, "SCP", mc.Baseline)
	if res.Run.Mem.Dropped != 0 || res.VPPredictions != 0 {
		t.Fatal("baseline run performed approximation")
	}
}

func TestDMSReducesActivations(t *testing.T) {
	// FWT is strongly delay-sensitive in activations.
	base := simulate(t, "FWT", mc.Baseline)
	dms := simulate(t, "FWT", mc.Scheme{DMS: mc.Static, StaticDelay: 1024})
	if dms.Run.Mem.Activations >= base.Run.Mem.Activations {
		t.Fatalf("DMS(1024) activations %d >= baseline %d",
			dms.Run.Mem.Activations, base.Run.Mem.Activations)
	}
}

func TestSmallerQueueThrashesMore(t *testing.T) {
	small := simulate(t, "SCP", mc.Baseline, func(c *sim.Config) { c.MC.QueueSize = 16 })
	big := simulate(t, "SCP", mc.Baseline)
	if small.Run.Mem.Activations <= big.Run.Mem.Activations {
		t.Fatalf("queue 16 activations %d <= queue 128 %d",
			small.Run.Mem.Activations, big.Run.Mem.Activations)
	}
}

func TestRunStatsConsistency(t *testing.T) {
	for _, app := range testApps(t) {
		res := simulate(t, app, mc.Baseline)
		r := &res.Run
		if r.CoreCycles == 0 || r.Instructions == 0 {
			t.Fatalf("%s: empty run", app)
		}
		if r.Mem.Reads+r.Mem.Writes == 0 {
			t.Fatalf("%s: no DRAM traffic", app)
		}
		if r.Mem.Activations == 0 {
			t.Fatalf("%s: no activations", app)
		}
		if got := r.Mem.AvgRBL(); got < 1 {
			t.Fatalf("%s: Avg-RBL %.2f below 1", app, got)
		}
		if bw := r.Mem.BWUtil(); bw <= 0 || bw > 1 {
			t.Fatalf("%s: BWUTIL %.3f out of (0,1]", app, bw)
		}
		if r.RowEnergy <= 0 || r.MemEnergy <= r.RowEnergy {
			t.Fatalf("%s: energy accounting broken: row=%v mem=%v", app, r.RowEnergy, r.MemEnergy)
		}
		// Requests pushed to MCs equal columns served plus drops.
		if r.Mem.ReadReqs+r.Mem.WriteReqs != r.Mem.Reads+r.Mem.Writes+r.Mem.Dropped {
			t.Fatalf("%s: request conservation violated: %d pushed vs %d served+%d dropped",
				app, r.Mem.ReadReqs+r.Mem.WriteReqs, r.Mem.Reads+r.Mem.Writes, r.Mem.Dropped)
		}
	}
}

func TestVPPredictionsMatchDrops(t *testing.T) {
	res := simulate(t, "SCP", mc.StaticAMS)
	if res.VPPredictions != res.Run.Mem.Dropped {
		t.Fatalf("VP predictions %d != drops %d", res.VPPredictions, res.Run.Mem.Dropped)
	}
}

func TestMaxCyclesAborts(t *testing.T) {
	k, _ := workloads.New("GEMM")
	cfg := sim.DefaultConfig()
	cfg.MaxCoreCycles = 1000
	if _, err := sim.Simulate(k, cfg, mc.Baseline, 1); err == nil {
		t.Fatal("expected an abort error for a tiny cycle budget")
	}
}

func TestDynSchemesStayNearBaselineIPC(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	// The paper's headline: Dyn-DMS+Dyn-AMS loses less than ~5% IPC. Our
	// scaled runs tolerate a slightly looser bound because profiling
	// transients are a larger fraction of short runs.
	var worst float64 = 1
	for _, app := range []string{"SCP", "LPS", "meanfilter", "jmein", "BICG"} {
		base := simulate(t, app, mc.Baseline)
		dyn := simulate(t, app, mc.DynBoth)
		r := dyn.Run.IPC() / base.Run.IPC()
		if r < worst {
			worst = r
		}
	}
	if worst < 0.85 {
		t.Fatalf("worst-case Dyn-DMS+Dyn-AMS IPC ratio %.3f; schemes too aggressive", worst)
	}
}

func TestRunFunctionalMatchesAcrossSeeds(t *testing.T) {
	// Different seeds give different outputs (inputs actually vary).
	k1, _ := workloads.New("SCP")
	k2, _ := workloads.New("SCP")
	a := sim.RunFunctional(k1, 1)
	b := sim.RunFunctional(k2, 2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("outputs identical across seeds; inputs not seeded")
	}
}

func TestPredictorKindsProduceDifferentErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	// All predictor kinds must run the full pipeline, produce bounded
	// nonzero error, and actually differ from each other. (Which predictor
	// wins is data dependent; on LPS's smooth-but-thrashed working set the
	// nearest-line search and zero prediction land close together, as the
	// paper's ~7% average error at 10% coverage suggests.)
	errOf := func(kind string) float64 {
		res := simulate(t, "LPS", mc.StaticAMS, func(c *sim.Config) { c.VPKind = kind })
		g := golden(t, "LPS")
		return approx.MeanRelativeError(g, res.Output)
	}
	errs := map[string]float64{}
	for _, kind := range []string{"nearest", "zero", "lastvalue"} {
		e := errOf(kind)
		if e <= 0 || e > 0.5 {
			t.Fatalf("%s: error %.4f out of plausible range", kind, e)
		}
		errs[kind] = e
	}
	if errs["nearest"] == errs["zero"] && errs["zero"] == errs["lastvalue"] {
		t.Fatal("all predictors produced identical error; selection is not wired through")
	}
}
