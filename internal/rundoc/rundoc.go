// Package rundoc builds the canonical machine-readable run document — the
// JSON emitted by `lazysim -json`, compared by lazycmp, rendered by
// lazyreport, and served by the lazyd daemon. Keeping the document shape and
// construction in one place is what makes "the daemon serves exactly what
// the CLI prints" true by construction rather than by parallel maintenance:
// both call Build on the same sim.Result and encode the same struct.
package rundoc

import (
	"bytes"
	"encoding/json"
	"time"

	"lazydram/internal/buildinfo"
	"lazydram/internal/energy"
	"lazydram/internal/obs"
	"lazydram/internal/sim"
	"lazydram/internal/stats"
)

// Meta carries document provenance (skipped by lazycmp, so baselines
// recorded on different commits don't churn).
type Meta struct {
	Build buildinfo.Build `json:"build"`
}

// Doc is the machine-readable run summary: the same totals as the text stat
// block, plus the telemetry digest. Field names are the stable contract
// lazycmp flattens; never rename them.
type Doc struct {
	Meta         Meta    `json:"meta"`
	App          string  `json:"app"`
	Scheme       string  `json:"scheme"`
	Seed         int64   `json:"seed"`
	CoreCycles   uint64  `json:"core_cycles"`
	Instructions uint64  `json:"instructions"`
	IPC          float64 `json:"ipc"`

	Activations uint64  `json:"activations"`
	Reads       uint64  `json:"reads"`
	Writes      uint64  `json:"writes"`
	AvgRBL      float64 `json:"avg_rbl"`
	BWUtil      float64 `json:"bwutil"`
	Coverage    float64 `json:"coverage"`
	Dropped     uint64  `json:"dropped"`
	QueueOcc    float64 `json:"queue_occ"`

	RowEnergyNJ float64 `json:"row_energy_nj"`
	MemEnergyNJ float64 `json:"mem_energy_nj"`
	AppError    float64 `json:"app_error"`

	FinalDelay int     `json:"final_delay"`
	FinalThRBL int     `json:"final_th_rbl"`
	MeanDelay  float64 `json:"mean_delay"`
	MeanThRBL  float64 `json:"mean_th_rbl"`

	L1Accesses uint64 `json:"l1_accesses"`
	L1Misses   uint64 `json:"l1_misses"`
	L2Accesses uint64 `json:"l2_accesses"`
	L2Misses   uint64 `json:"l2_misses"`

	VPPredictions uint64 `json:"vp_predictions"`
	VPFallbacks   uint64 `json:"vp_fallbacks"`

	WallMS float64 `json:"wall_ms"`

	// EnergyByChannel is the per-channel × per-bank energy attribution;
	// HottestBanks the top-N banks by row energy across the whole system.
	EnergyByChannel []energy.ChannelEnergy `json:"energy_by_channel,omitempty"`
	HottestBanks    []energy.HotBank       `json:"hottest_banks,omitempty"`

	Telemetry *obs.Telemetry `json:"telemetry,omitempty"`
}

// Build assembles the document from a finished run.
func Build(r *stats.Run, res *sim.Result, seed int64, wall time.Duration, topBanks int) Doc {
	ch := r.Mem.Channels()
	if ch < 1 {
		ch = 1
	}
	occ := 0.0
	if r.Mem.Cycles > 0 {
		occ = float64(r.Mem.QueueOccSum) / float64(r.Mem.Cycles*uint64(ch))
	}
	return Doc{
		Meta:         Meta{Build: buildinfo.Get()},
		App:          r.App,
		Scheme:       r.Scheme,
		Seed:         seed,
		CoreCycles:   r.CoreCycles,
		Instructions: r.Instructions,
		IPC:          r.IPC(),
		Activations:  r.Mem.Activations,
		Reads:        r.Mem.Reads,
		Writes:       r.Mem.Writes,
		AvgRBL:       r.Mem.AvgRBL(),
		BWUtil:       r.Mem.BWUtil(),
		Coverage:     r.Mem.Coverage(),
		Dropped:      r.Mem.Dropped,
		QueueOcc:     occ,
		RowEnergyNJ:  r.RowEnergy,
		MemEnergyNJ:  r.MemEnergy,
		AppError:     r.AppError,
		FinalDelay:   r.FinalDelay,
		FinalThRBL:   r.FinalThRBL,
		MeanDelay:    r.Mem.MeanDelay(),
		MeanThRBL:    r.Mem.MeanThRBL(),
		L1Accesses:   r.L1Accesses,
		L1Misses:     r.L1Misses,
		L2Accesses:   r.L2Accesses,
		L2Misses:     r.L2Misses,

		VPPredictions: res.VPPredictions,
		VPFallbacks:   res.VPFallbacks,
		WallMS:        float64(wall.Microseconds()) / 1000,

		EnergyByChannel: res.EnergyByChannel,
		HottestBanks:    energy.TopBanks(res.EnergyByChannel, topBanks),

		Telemetry: res.Telemetry,
	}
}

// Encode serializes the document exactly as `lazysim -json` prints it: one
// compact encoding/json object terminated by a newline. The daemon caches
// and serves these bytes verbatim, so a cached result is byte-identical to
// the stream a direct CLI run would have produced.
func Encode(d Doc) ([]byte, error) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(d); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
