package exp

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"lazydram/internal/mc"
	"lazydram/internal/workloads"
)

func init() {
	registerExp(Experiment{
		ID:    "fig14",
		Title: "Fig. 14: accurate vs. approximate laplacian output images",
		Run:   runFig14,
	})
}

func runFig14(r *Runner, w io.Writer, outDir string) error {
	const app = "laplacian"
	golden, err := r.Golden(app)
	if err != nil {
		return err
	}
	res, err := r.Run(app, mc.DynBoth, Variant{})
	if err != nil {
		return err
	}
	header(w, "laplacian under Dyn-DMS+Dyn-AMS")
	fmt.Fprintf(w, "application error: %.1f%% at coverage %.1f%%\n",
		100*res.Run.AppError, 100*res.Run.Mem.Coverage())

	if outDir == "" {
		fmt.Fprintln(w, "(no output directory: images not written)")
		return nil
	}
	kern, err := workloads.New(app)
	if err != nil {
		return err
	}
	type dimmer interface{ Dims() (w, h int) }
	dk, ok := kern.(dimmer)
	if !ok {
		return fmt.Errorf("fig14: %s does not expose image dimensions", app)
	}
	width, height := dk.Dims()
	writeImg := func(name string, pix []float32) error {
		f, err := os.Create(filepath.Join(outDir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return workloads.WritePGM(f, pix, width, height)
	}
	if err := writeImg("fig14_accurate.pgm", golden); err != nil {
		return err
	}
	if err := writeImg("fig14_approx.pgm", res.Output); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s and %s (%dx%d PGM)\n",
		filepath.Join(outDir, "fig14_accurate.pgm"),
		filepath.Join(outDir, "fig14_approx.pgm"), width, height)
	return nil
}
