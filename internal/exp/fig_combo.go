package exp

import (
	"fmt"
	"io"

	"lazydram/internal/dram"
	"lazydram/internal/mc"
	"lazydram/internal/sim"
	"lazydram/internal/stats"
)

func init() {
	registerExp(Experiment{
		ID:    "fig7",
		Title: "Fig. 7: how AMS helps DMS (LPS and SCP case studies)",
		Run:   runFig7,
	})
	registerExp(Experiment{
		ID:    "fig8",
		Title: "Fig. 8: how DMS helps AMS (scripted 9-request micro-scenario)",
		Run:   runFig8,
	})
}

func fig7Row(w io.Writer, label string, base, res *sim.Result) {
	fmt.Fprintf(w, "%-18s %-10.3f %-10.3f %-10.4f %-10.4f\n", label,
		ratio(res.Run.IPC(), base.Run.IPC()),
		ratio(float64(res.Run.Mem.Activations), float64(base.Run.Mem.Activations)),
		res.Run.AppError, res.Run.Mem.Coverage())
}

func runFig7(r *Runner, w io.Writer, _ string) error {
	r.Prefetch(
		Point{App: "LPS", Scheme: mc.Baseline},
		Point{App: "LPS", Scheme: DMSScheme(256)},
		Point{App: "LPS", Scheme: DMSScheme(512)},
		Point{App: "LPS", Scheme: AMSScheme(8)},
		Point{App: "SCP", Scheme: mc.Baseline},
		Point{App: "SCP", Scheme: DMSScheme(128)},
		Point{App: "SCP", Scheme: DMSScheme(256)},
		Point{App: "SCP", Scheme: AMSScheme(8)},
		Point{App: "SCP", Scheme: BothScheme(256, 8)},
	)
	// (a) LPS: activations barely move with delay; AMS reduces them and
	// recovers IPC.
	header(w, "(a) LPS")
	fmt.Fprintf(w, "%-18s %-10s %-10s %-10s %-10s\n", "scheme", "norm-ipc", "norm-act", "app-err", "coverage")
	base, err := r.Baseline("LPS")
	if err != nil {
		return err
	}
	for _, c := range []struct {
		label string
		run   func() (*sim.Result, error)
	}{
		{"DMS(256)", func() (*sim.Result, error) { return r.DMS("LPS", 256) }},
		{"DMS(512)", func() (*sim.Result, error) { return r.DMS("LPS", 512) }},
		{"AMS(8)", func() (*sim.Result, error) { return r.AMS("LPS", 8) }},
	} {
		res, err := c.run()
		if err != nil {
			return err
		}
		fig7Row(w, c.label, base, res)
	}
	fmt.Fprintln(w)

	// (b) SCP: AMS compensates the IPC loss of a longer delay.
	header(w, "(b) SCP")
	fmt.Fprintf(w, "%-18s %-10s %-10s %-10s %-10s\n", "scheme", "norm-ipc", "norm-act", "app-err", "coverage")
	base, err = r.Baseline("SCP")
	if err != nil {
		return err
	}
	for _, c := range []struct {
		label string
		run   func() (*sim.Result, error)
	}{
		{"DMS(128)", func() (*sim.Result, error) { return r.DMS("SCP", 128) }},
		{"DMS(256)", func() (*sim.Result, error) { return r.DMS("SCP", 256) }},
		{"AMS(8)", func() (*sim.Result, error) { return r.AMS("SCP", 8) }},
		{"DMS(256)+AMS(8)", func() (*sim.Result, error) { return r.Both("SCP", 256, 8) }},
	} {
		res, err := c.run()
		if err != nil {
			return err
		}
		fig7Row(w, c.label, base, res)
	}
	return nil
}

// runFig8 reproduces the illustrative example of Figure 8 directly on a
// memory controller: nine requests destined to five rows (R1,R1,R2,R2,R3,R3,
// R4,R4,R5) of one bank. With AMS alone the scheduler sees five RBL(1) rows
// and drops the oldest (an R1), losing Avg-RBL (1.8 -> 1.6); with DMS the
// whole window is visible, R5 is correctly identified as the only RBL(1)
// row, and Avg-RBL rises to 2.0.
func runFig8(r *Runner, w io.Writer, _ string) error {
	header(w, "scripted scenario: 9 requests over rows R1..R5 of one bank")
	fmt.Fprintf(w, "%-12s %-8s %-8s %-8s %-9s %-8s\n",
		"scheme", "served", "dropped", "acts", "avg-RBL", "dropped-row")

	run := func(label string, delay int) error {
		st := &stats.Mem{}
		ch := dram.NewChannel(dram.DefaultConfig(), st)
		cfg := mc.DefaultConfig()
		// The coverage cap is set so exactly one of the nine requests may be
		// dropped, matching the illustration.
		cfg.Scheme = mc.Scheme{AMS: mc.Static, StaticThRBL: 1, CoverageTarget: 0.11}
		if delay > 0 {
			cfg.Scheme.DMS = mc.Static
			cfg.Scheme.StaticDelay = delay
		}
		var droppedRow int64 = -1
		ctrl := mc.New(cfg, ch, st, func(req *mc.Request, approx bool, at uint64) {
			if approx {
				droppedRow = req.Coord.Row
			}
		}, nil)
		am := dram.DefaultAddrMap()
		push := func(row int64) {
			c := dram.Coord{Channel: 0, Bank: 0, Row: row, Col: uint64(st.ReadReqs%16) * 128}
			ctrl.Push(am.Encode(c), false, true, c, nil)
		}
		// Initially visible: one request per row R1..R5.
		for row := int64(1); row <= 5; row++ {
			push(row)
		}
		for now := uint64(0); now < 3000; now++ {
			if now == 20 {
				// The second wave reaches the queue shortly after.
				for row := int64(1); row <= 4; row++ {
					push(row)
				}
			}
			ctrl.Tick(now)
		}
		ctrl.Drain()
		fmt.Fprintf(w, "%-12s %-8d %-8d %-8d %-9.2f R%d\n", label,
			st.Reads, st.Dropped, st.Activations, st.AvgRBL(), droppedRow)
		return nil
	}
	if err := run("AMS alone", 0); err != nil {
		return err
	}
	if err := run("DMS+AMS", 64); err != nil {
		return err
	}
	fmt.Fprintln(w, "\n(AMS alone drops the oldest R1 and still activates all five rows;")
	fmt.Fprintln(w, " with DMS the queue shows R5 as the only RBL(1) row, saving its activation.)")
	return nil
}

func init() {
	registerExp(Experiment{
		ID:    "fig3",
		Title: "Fig. 3: delayed scheduling batches future same-row requests (scripted)",
		Run:   runFig3,
	})
}

// runFig3 reproduces the paper's first illustrative example: four requests
// to rows R1..R4 of one bank are pending, and four more to the same rows
// arrive only after the baseline has already served (and closed) them.
// Timely FR-FCFS pays eight activations (Avg-RBL 1); with a delay longer
// than the arrival gap, each row is opened once for both of its requests
// (Avg-RBL 2).
func runFig3(r *Runner, w io.Writer, _ string) error {
	header(w, "scripted scenario: 2x4 requests to rows R1..R4 of one bank")
	fmt.Fprintf(w, "%-12s %-8s %-8s %-9s\n", "scheme", "served", "acts", "avg-RBL")
	run := func(label string, delay int) error {
		st := &stats.Mem{}
		ch := dram.NewChannel(dram.DefaultConfig(), st)
		cfg := mc.DefaultConfig()
		if delay > 0 {
			cfg.Scheme = mc.Scheme{DMS: mc.Static, StaticDelay: delay}
		}
		ctrl := mc.New(cfg, ch, st, func(*mc.Request, bool, uint64) {}, nil)
		am := dram.DefaultAddrMap()
		push := func(row int64, col uint64) {
			c := dram.Coord{Channel: 0, Bank: 0, Row: row, Col: col}
			ctrl.Push(am.Encode(c), false, false, c, nil)
		}
		for now := uint64(0); now < 4000; now++ {
			if now == 0 {
				for row := int64(1); row <= 4; row++ {
					push(row, 0)
				}
			}
			if now == 300 { // after the baseline has served the first wave
				for row := int64(1); row <= 4; row++ {
					push(row, 128)
				}
			}
			ctrl.Tick(now)
		}
		ctrl.Drain()
		fmt.Fprintf(w, "%-12s %-8d %-8d %-9.2f\n", label, st.Reads, st.Activations, st.AvgRBL())
		return nil
	}
	if err := run("baseline", 0); err != nil {
		return err
	}
	if err := run("DMS(512)", 512); err != nil {
		return err
	}
	fmt.Fprintln(w, "\n(the delayed queue holds both waves when the rows open: half the activations)")
	return nil
}
