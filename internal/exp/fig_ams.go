package exp

import (
	"fmt"
	"io"

	"lazydram/internal/mc"
)

func init() {
	registerExp(Experiment{
		ID:    "fig6",
		Title: "Fig. 6: cumulative activation share vs. read-request share (by RBL)",
		Run:   runFig6,
	})
	registerExp(Experiment{
		ID:    "fig11",
		Title: "Fig. 11: effect of reducing Th_RBL (SCP)",
		Run:   runFig11,
	})
}

// fig6Apps are the paper's two examples.
var fig6Apps = []string{"GEMM", "3MM"}

func runFig6(r *Runner, w io.Writer, _ string) error {
	r.PrefetchSchemes(fig6Apps, mc.Baseline)
	for _, app := range fig6Apps {
		base, err := r.Baseline(app)
		if err != nil {
			return err
		}
		header(w, fmt.Sprintf("%s: cumulative share of activations caused by reads sorted by row RBL", app))
		fmt.Fprintf(w, "%-6s %-10s %-10s\n", "RBL", "req-share", "act-share")
		for _, p := range base.Run.Mem.CumulativeRBLCurve() {
			fmt.Fprintf(w, "%-6d %-10.4f %-10.4f\n", p.RBL, p.ReqShare, p.ActShare)
		}
		// The paper's headline: the share of activations caused by the
		// requests in RBL(1-2) rows.
		var low12req, low12act float64
		for _, p := range base.Run.Mem.CumulativeRBLCurve() {
			if p.RBL <= 2 {
				low12req, low12act = p.ReqShare, p.ActShare
			}
		}
		fmt.Fprintf(w, "-> %.1f%% of read requests (RBL 1-2) cause %.1f%% of activations\n\n",
			100*low12req, 100*low12act)
	}
	return nil
}

func runFig11(r *Runner, w io.Writer, _ string) error {
	const app = "SCP"
	schemes := []mc.Scheme{mc.Baseline}
	for th := 8; th >= 1; th-- {
		schemes = append(schemes, AMSScheme(th))
	}
	r.PrefetchSchemes([]string{app}, schemes...)
	base, err := r.Baseline(app)
	if err != nil {
		return err
	}
	header(w, "(a) SCP activations under AMS(Th), normalized to baseline")
	fmt.Fprintf(w, "%-8s %-10s %-10s %-10s\n", "Th_RBL", "norm-act", "coverage", "app-error")
	for th := 8; th >= 1; th-- {
		res, err := r.AMS(app, th)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8d %-10.3f %-10.4f %-10.4f\n", th,
			ratio(float64(res.Run.Mem.Activations), float64(base.Run.Mem.Activations)),
			res.Run.Mem.Coverage(), res.Run.AppError)
	}
	fmt.Fprintln(w)
	header(w, "(b) SCP baseline: share of read requests per RBL bucket")
	fmt.Fprintf(w, "%-10s %-10s %-12s\n", "bucket", "req-share", "(cumulative)")
	var cum float64
	var totalReads uint64
	for i, v := range base.Run.Mem.ReadsPerRBL {
		_ = i
		totalReads += v
	}
	for _, b := range rblBuckets {
		var in uint64
		for i := b.Lo; i <= b.Hi; i++ {
			in += base.Run.Mem.ReadsPerRBL[i]
		}
		share := ratio(float64(in), float64(totalReads))
		cum += share
		fmt.Fprintf(w, "%-10s %-10.4f %-12.4f\n", b.Label, share, cum)
	}
	fmt.Fprintf(w, "(the 10%% coverage line falls inside the first bucket when RBL(1) req-share > 0.10)\n")
	return nil
}
