package exp_test

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"lazydram/internal/exp"
	"lazydram/internal/mc"
	"lazydram/internal/sim"
)

// TestRunnerSingleflight drives one run key from many goroutines at once and
// checks the simulation executed exactly once: Variant.Mutate runs once per
// actual simulation, so its call count is the flight count, and every caller
// must get the same memoized *sim.Result.
func TestRunnerSingleflight(t *testing.T) {
	r := exp.NewRunner(exp.Options{Seed: 1, Workers: 4})
	var sims atomic.Int64
	v := exp.Variant{
		Tag:    "singleflight",
		Mutate: func(*sim.Config) { sims.Add(1) },
	}
	const callers = 16
	results := make([]*sim.Result, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := r.Run("jmein", mc.Baseline, v)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}()
	}
	wg.Wait()
	if n := sims.Load(); n != 1 {
		t.Fatalf("key simulated %d times, want exactly 1", n)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different result pointer", i)
		}
	}
}

// TestRunnerPrefetchJoins checks a prefetched point and the later consuming
// Run call share one flight rather than simulating twice.
func TestRunnerPrefetchJoins(t *testing.T) {
	r := exp.NewRunner(exp.Options{Seed: 1, Workers: 2})
	var sims atomic.Int64
	v := exp.Variant{
		Tag:    "prefetch",
		Mutate: func(*sim.Config) { sims.Add(1) },
	}
	r.Prefetch(exp.Point{App: "jmein", Scheme: mc.Baseline, Variant: v})
	if _, err := r.Run("jmein", mc.Baseline, v); err != nil {
		t.Fatal(err)
	}
	// The consuming Run joined (or started) the flight; either way the key
	// must have simulated exactly once by the time Run returned.
	if n := sims.Load(); n != 1 {
		t.Fatalf("prefetched key simulated %d times, want exactly 1", n)
	}
}

// TestGoldenUnknownApp checks the workloads.New lookup error surfaces from
// Golden and Run instead of silently scoring against a nil golden output.
func TestGoldenUnknownApp(t *testing.T) {
	r := exp.NewRunner(exp.Options{Seed: 1})
	if _, err := r.Golden("no-such-app"); err == nil {
		t.Fatal("Golden accepted an unknown app")
	}
	if _, err := r.Run("no-such-app", mc.Baseline, exp.Variant{}); err == nil {
		t.Fatal("Run accepted an unknown app")
	}
}

// TestRunnerWorkerCountInvariance runs the same two-point set under one and
// four workers and requires identical statistics: concurrency must never
// change results.
func TestRunnerWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("two full runners in -short mode")
	}
	apps := []string{"LPS", "jmein"}
	run := func(workers int) []*sim.Result {
		r := exp.NewRunner(exp.Options{Seed: 1, Apps: apps, Workers: workers})
		r.PrefetchSchemes(apps, mc.Baseline, mc.DynBoth)
		var out []*sim.Result
		for _, app := range apps {
			for _, s := range []mc.Scheme{mc.Baseline, mc.DynBoth} {
				res, err := r.Run(app, s, exp.Variant{})
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, res)
			}
		}
		return out
	}
	one := run(1)
	four := run(4)
	for i := range one {
		if !reflect.DeepEqual(one[i].Run, four[i].Run) {
			t.Errorf("point %d: run statistics differ between 1 and 4 workers", i)
		}
	}
}
