// Package exp is the experiment harness: one driver per table/figure of the
// paper's evaluation, all sharing a memoizing Runner so sweeps that revisit
// the same (application, scheme, configuration) point pay for it once.
// cmd/experiments and the repository's benchmarks are thin wrappers over
// this package.
package exp

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"lazydram/internal/approx"
	"lazydram/internal/mc"
	"lazydram/internal/obs"
	"lazydram/internal/sim"
	"lazydram/internal/workloads"
)

// Options configures a Runner.
type Options struct {
	// Seed drives workload input generation (golden and timed runs share it).
	Seed int64
	// Apps restricts the application set (nil: all 20).
	Apps []string
	// Quick shrinks nothing by itself but is recorded so callers can decide
	// to trim sweeps; benchmarks set it.
	Quick bool
	// Workers bounds the number of simulations in flight at once (0 picks
	// GOMAXPROCS). Results are independent of the worker count: every run is
	// keyed and singleflighted, so a point simulates exactly once no matter
	// how many goroutines ask for it, and drivers consume results in paper
	// order regardless of completion order.
	Workers int
	// ShardPartitions additionally parallelizes each simulation's cycle loop
	// (sim.Config.ShardPartitions): partitions tick on a worker pool with a
	// per-cycle barrier. Bit-identical to the sequential path by
	// construction; most useful when Workers is small and cores are idle.
	ShardPartitions bool
	// ShardWorkers sizes each sharded simulation's partition worker pool
	// (sim.Config.ShardWorkers; 0 picks GOMAXPROCS, capped at the partition
	// count). Only consulted when ShardPartitions is set.
	ShardWorkers int
	// RunLog, when non-nil, records a lifecycle span for every Run call
	// (queueing, worker slot, wall-clock, dedup joins) — see obs.RunLog.
	// Purely observational: it never changes scheduling or results.
	RunLog *obs.RunLog
}

// Runner executes simulations with memoization and caches golden outputs.
//
// It is safe for concurrent use: each distinct run key simulates exactly
// once (concurrent Run calls on one key join the in-flight simulation), and
// a semaphore sized by Options.Workers bounds how many simulations execute
// at once. Prefetch fans a declared point set out across that pool so a
// driver's subsequent in-order Run calls mostly just collect results.
type Runner struct {
	opts Options
	// slots carries the worker-slot ids (0..Workers-1); receiving one is the
	// semaphore acquire, and the received id tags the run's span so the run
	// log can lay executions out on per-worker trace tracks.
	slots chan int

	mu     sync.Mutex
	runs   map[string]*runEntry
	golden map[string]*goldenEntry

	// prefetches tracks in-flight Prefetch goroutines so Wait (and therefore
	// run-log summaries) can observe a quiesced pool.
	prefetches sync.WaitGroup
}

// runEntry is the singleflight slot for one run key: the first claimant
// simulates and closes done; everyone else waits on done and shares the
// memoized result or error. Entries that end in error are removed from the
// map before done closes, so a later Run on the same key re-executes instead
// of replaying a possibly-transient failure (waiters already joined still
// see the error).
type runEntry struct {
	done chan struct{}
	res  *sim.Result
	err  error

	// wall is the wall-clock sim.Simulate spent executing this run (golden
	// resolution and queueing excluded) — the source for sweep-row
	// wall_seconds/cycles_per_sec without needing a run log.
	wall time.Duration

	// span/prefetched feed the run log: joiners point their dedup-joined
	// spans at the executing span, and flag whether a prefetch plan (rather
	// than another consuming call) started the flight they hit.
	span       *obs.RunSpan
	prefetched bool
}

// goldenEntry is the singleflight slot for one (app, seed) functional run.
type goldenEntry struct {
	done chan struct{}
	out  []float32
	err  error
}

// NewRunner creates a Runner.
func NewRunner(opts Options) *Runner {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	opts.RunLog.SetWorkers(opts.Workers)
	r := &Runner{
		opts:   opts,
		slots:  make(chan int, opts.Workers),
		runs:   make(map[string]*runEntry),
		golden: make(map[string]*goldenEntry),
	}
	for i := 0; i < opts.Workers; i++ {
		r.slots <- i
	}
	return r
}

// Apps returns the application list in evaluation order.
func (r *Runner) Apps() []string {
	if r.opts.Apps != nil {
		return r.opts.Apps
	}
	return workloads.Names()
}

// GroupApps returns the apps of the given paper groups, restricted to the
// runner's app set.
func (r *Runner) GroupApps(groups ...int) []string {
	want := map[int]bool{}
	for _, g := range groups {
		want[g] = true
	}
	var out []string
	for _, a := range r.Apps() {
		if want[workloads.Group(a)] {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}

// Variant tweaks one run beyond the scheme: pending-queue size, per-run seed,
// and arbitrary config mutation.
type Variant struct {
	QueueSize int // 0: default 128
	// Seed overrides the runner-level Options.Seed for this run (0: inherit).
	// The effective seed is part of the run key, so runs that differ only in
	// seed memoize independently and the golden functional output is resolved
	// per (app, seed).
	Seed   int64
	Mutate func(*sim.Config)
	// Tag must uniquely identify Mutate's effect for memoization; required
	// when Mutate is set.
	Tag string
}

// Point is one planned simulation for Prefetch.
type Point struct {
	App     string
	Scheme  mc.Scheme
	Variant Variant
}

// RunKey is the canonical identity of one simulation: every field that can
// change the run's result document, serialized in a fixed order. It is the
// single source of truth for identity across the whole system — the Runner's
// singleflight map, the service-level job dedupe, and the content-addressed
// result cache (which hashes this string) all key on it, so "same key" always
// means "bit-identical result" (same-seed determinism is CI-gated).
//
// seed must be the effective seed (a Variant.Seed of 0 resolved against the
// runner's default); callers inside the Runner use effectiveSeed. The field
// order is pinned by TestRunKeyCanonicalForm — changing it silently would
// split every persisted cache, so it must never churn.
func RunKey(app string, scheme mc.Scheme, v Variant, seed int64) string {
	return fmt.Sprintf("%s|%s|d%d|t%d|q%d|s%d|%s",
		app, scheme.Name(), scheme.StaticDelay, scheme.StaticThRBL, v.QueueSize, seed, v.Tag)
}

// effectiveSeed resolves a variant's per-run seed against the runner default.
func (r *Runner) effectiveSeed(v Variant) int64 {
	if v.Seed != 0 {
		return v.Seed
	}
	return r.opts.Seed
}

// runKey identifies one memoized simulation.
func (r *Runner) runKey(app string, scheme mc.Scheme, v Variant) string {
	return RunKey(app, scheme, v, r.effectiveSeed(v))
}

// Run simulates app under scheme (memoized, singleflighted) and returns the
// result with AppError filled in against the golden functional run.
func (r *Runner) Run(app string, scheme mc.Scheme, v Variant) (*sim.Result, error) {
	return r.run(app, scheme, v, "call")
}

// run is Run with the span origin ("call" or "prefetch") made explicit.
func (r *Runner) run(app string, scheme mc.Scheme, v Variant, origin string) (*sim.Result, error) {
	key := r.runKey(app, scheme, v)
	sp := r.opts.RunLog.Begin(app, scheme.Name(), key, origin)
	r.mu.Lock()
	if e, ok := r.runs[key]; ok {
		r.mu.Unlock()
		sp.Joined(e.span, e.prefetched)
		<-e.done
		return e.res, e.err
	}
	e := &runEntry{done: make(chan struct{}), span: sp, prefetched: origin == "prefetch"}
	r.runs[key] = e
	r.mu.Unlock()

	e.res, e.wall, e.err = r.simulate(sp, app, scheme, v)
	if e.err != nil {
		// Uncache before waking waiters so a retry re-executes. Waiters that
		// already joined this flight still observe the error; brand-new Run
		// calls start a fresh entry.
		r.mu.Lock()
		if r.runs[key] == e {
			delete(r.runs, key)
		}
		r.mu.Unlock()
	}
	close(e.done)
	return e.res, e.err
}

// simulate executes one run under the worker semaphore and fully finalizes
// the span (Done or Fail) before releasing the worker slot, so per-slot
// spans never overlap in time.
func (r *Runner) simulate(sp *obs.RunSpan, app string, scheme mc.Scheme, v Variant) (*sim.Result, time.Duration, error) {
	kern, err := workloads.New(app)
	if err != nil {
		sp.Fail(err)
		return nil, 0, err
	}
	cfg := sim.DefaultConfig()
	cfg.ShardPartitions = r.opts.ShardPartitions
	cfg.ShardWorkers = r.opts.ShardWorkers
	if v.QueueSize > 0 {
		cfg.MC.QueueSize = v.QueueSize
	}
	if v.Mutate != nil {
		if v.Tag == "" {
			err := fmt.Errorf("exp: Variant.Mutate requires a Tag for %s", app)
			sp.Fail(err)
			return nil, 0, err
		}
		v.Mutate(&cfg)
	}
	// Resolve the golden output before taking a worker slot: Golden may wait
	// on another goroutine's in-flight functional run, which must not happen
	// while holding a slot that run's caller might be queued for.
	seed := r.effectiveSeed(v)
	sp.GoldenWait()
	golden, err := r.goldenFor(app, seed)
	if err != nil {
		sp.Fail(err)
		return nil, 0, err
	}
	sp.Queued()
	slot := <-r.slots
	sp.Running(slot)
	var before runtime.MemStats
	logging := r.opts.RunLog != nil
	if logging {
		runtime.ReadMemStats(&before)
	}
	start := time.Now()
	res, err := sim.Simulate(kern, cfg, scheme, seed)
	wall := time.Since(start)
	var allocBytes, mallocs uint64
	if logging {
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		// Process-global counters: under concurrency overlapping runs
		// attribute each other's allocations, so these are profiling
		// order-of-magnitude figures, not exact per-run costs.
		allocBytes = after.TotalAlloc - before.TotalAlloc
		mallocs = after.Mallocs - before.Mallocs
	}
	if err != nil {
		err = fmt.Errorf("%s/%s: %w", app, scheme.Name(), err)
		sp.Fail(err)
		r.slots <- slot
		return nil, 0, err
	}
	res.Run.AppError = approx.MeanRelativeError(golden, res.Output)
	sp.Done(res.Run.Mem.Cycles, allocBytes, mallocs)
	r.slots <- slot
	return res, wall, nil
}

// Timing returns the wall-clock seconds the memoized run for the given
// point spent inside sim.Simulate. Deduped callers share the executing
// run's time. ok is false while the run is still in flight, failed, or was
// never requested.
func (r *Runner) Timing(app string, scheme mc.Scheme, v Variant) (seconds float64, ok bool) {
	r.mu.Lock()
	e := r.runs[r.runKey(app, scheme, v)]
	r.mu.Unlock()
	if e == nil {
		return 0, false
	}
	select {
	case <-e.done:
	default:
		return 0, false
	}
	if e.err != nil {
		return 0, false
	}
	return e.wall.Seconds(), true
}

// Prefetch declares a point set up front and fans it out across the worker
// pool without waiting for completion. Drivers call it with every point they
// are about to consume, then collect results in paper order through the
// normal Run/Baseline/... calls, which join the in-flight simulations.
// Errors surface on those consuming calls (a prefetched point nobody
// consumes keeps its error memoized but never reports it).
func (r *Runner) Prefetch(points ...Point) {
	r.prefetches.Add(len(points))
	for _, p := range points {
		p := p
		go func() {
			defer r.prefetches.Done()
			_, _ = r.run(p.App, p.Scheme, p.Variant, "prefetch")
		}()
	}
}

// Wait blocks until every Prefetch goroutine has completed (joined or
// executed). Callers that snapshot the run log (summary, reconciliation,
// trace export) should Wait first so the span set is complete; results
// themselves never need it — consuming Run calls already join in-flight
// work.
func (r *Runner) Wait() { r.prefetches.Wait() }

// PrefetchSchemes is shorthand for prefetching the cross product
// apps x schemes with the default variant.
func (r *Runner) PrefetchSchemes(apps []string, schemes ...mc.Scheme) {
	pts := make([]Point, 0, len(apps)*len(schemes))
	for _, app := range apps {
		for _, s := range schemes {
			pts = append(pts, Point{App: app, Scheme: s})
		}
	}
	r.Prefetch(pts...)
}

// Golden returns (computing once, singleflighted) the exact functional
// output of app under the runner's default seed. The error is the
// workloads.New lookup error for an unknown app, so a misspelled name
// surfaces instead of scoring every run against a nil output.
func (r *Runner) Golden(app string) ([]float32, error) {
	return r.goldenFor(app, r.opts.Seed)
}

// goldenFor is Golden keyed by (app, seed): runs with a per-variant seed
// override score against the functional output of their own seed.
func (r *Runner) goldenFor(app string, seed int64) ([]float32, error) {
	key := fmt.Sprintf("%s|s%d", app, seed)
	r.mu.Lock()
	if e, ok := r.golden[key]; ok {
		r.mu.Unlock()
		<-e.done
		return e.out, e.err
	}
	e := &goldenEntry{done: make(chan struct{})}
	r.golden[key] = e
	r.mu.Unlock()

	kern, err := workloads.New(app)
	if err != nil {
		e.err = err
		// Mirror run's retry semantics: drop the failed entry before waking
		// waiters so a later Golden call re-resolves instead of replaying.
		r.mu.Lock()
		if r.golden[key] == e {
			delete(r.golden, key)
		}
		r.mu.Unlock()
	} else {
		e.out = sim.RunFunctional(kern, seed)
	}
	close(e.done)
	return e.out, e.err
}

// Stats is a point-in-time snapshot of the runner's execution state, exposed
// so a long-running host (the lazyd daemon) can report pool pressure without
// reaching into the run log.
type Stats struct {
	// Workers is the worker-pool size (Options.Workers after defaulting).
	Workers int `json:"workers"`
	// Busy is the number of worker slots currently executing a simulation.
	Busy int `json:"busy"`
	// Runs is the number of memoized run entries (in flight or completed;
	// failed entries are uncached and do not count).
	Runs int `json:"runs"`
	// Golden is the number of memoized (app, seed) functional outputs.
	Golden int `json:"golden"`
}

// Stats snapshots the runner. Busy is read from the slot channel, so it is
// exact at the instant of the call but immediately stale; use it for
// monitoring, not for scheduling decisions.
func (r *Runner) Stats() Stats {
	r.mu.Lock()
	runs, golden := len(r.runs), len(r.golden)
	r.mu.Unlock()
	return Stats{
		Workers: r.opts.Workers,
		Busy:    r.opts.Workers - len(r.slots),
		Runs:    runs,
		Golden:  golden,
	}
}

// DMSScheme is Static-DMS with the given delay; run keys built from it match
// the DMS helper, so drivers can Prefetch sweep points.
func DMSScheme(delay int) mc.Scheme {
	s := mc.StaticDMS
	s.StaticDelay = delay
	return s
}

// AMSScheme is Static-AMS with the given Th_RBL.
func AMSScheme(th int) mc.Scheme {
	s := mc.StaticAMS
	s.StaticThRBL = th
	return s
}

// BothScheme is Static-DMS(delay)+Static-AMS(th).
func BothScheme(delay, th int) mc.Scheme {
	s := mc.StaticBoth
	s.StaticDelay = delay
	s.StaticThRBL = th
	return s
}

// Baseline is shorthand for the default-configuration baseline run.
func (r *Runner) Baseline(app string) (*sim.Result, error) {
	return r.Run(app, mc.Baseline, Variant{})
}

// DMS returns the Static-DMS(X) run for app.
func (r *Runner) DMS(app string, delay int) (*sim.Result, error) {
	return r.Run(app, DMSScheme(delay), Variant{})
}

// AMS returns the Static-AMS(th) run for app.
func (r *Runner) AMS(app string, th int) (*sim.Result, error) {
	return r.Run(app, AMSScheme(th), Variant{})
}

// Both returns the Static-DMS(delay)+Static-AMS(th) run for app.
func (r *Runner) Both(app string, delay, th int) (*sim.Result, error) {
	return r.Run(app, BothScheme(delay, th), Variant{})
}
