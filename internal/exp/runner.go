// Package exp is the experiment harness: one driver per table/figure of the
// paper's evaluation, all sharing a memoizing Runner so sweeps that revisit
// the same (application, scheme, configuration) point pay for it once.
// cmd/experiments and the repository's benchmarks are thin wrappers over
// this package.
package exp

import (
	"fmt"
	"sort"
	"sync"

	"lazydram/internal/approx"
	"lazydram/internal/mc"
	"lazydram/internal/sim"
	"lazydram/internal/workloads"
)

// Options configures a Runner.
type Options struct {
	// Seed drives workload input generation (golden and timed runs share it).
	Seed int64
	// Apps restricts the application set (nil: all 20).
	Apps []string
	// Quick shrinks nothing by itself but is recorded so callers can decide
	// to trim sweeps; benchmarks set it.
	Quick bool
}

// Runner executes simulations with memoization and caches golden outputs.
type Runner struct {
	opts   Options
	mu     sync.Mutex
	runs   map[string]*sim.Result
	golden map[string][]float32
}

// NewRunner creates a Runner.
func NewRunner(opts Options) *Runner {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return &Runner{
		opts:   opts,
		runs:   make(map[string]*sim.Result),
		golden: make(map[string][]float32),
	}
}

// Apps returns the application list in evaluation order.
func (r *Runner) Apps() []string {
	if r.opts.Apps != nil {
		return r.opts.Apps
	}
	return workloads.Names()
}

// GroupApps returns the apps of the given paper groups, restricted to the
// runner's app set.
func (r *Runner) GroupApps(groups ...int) []string {
	want := map[int]bool{}
	for _, g := range groups {
		want[g] = true
	}
	var out []string
	for _, a := range r.Apps() {
		if want[workloads.Group(a)] {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}

// Variant tweaks one run beyond the scheme: pending-queue size and arbitrary
// config mutation.
type Variant struct {
	QueueSize int // 0: default 128
	Mutate    func(*sim.Config)
	// Tag must uniquely identify Mutate's effect for memoization; required
	// when Mutate is set.
	Tag string
}

// Run simulates app under scheme (memoized) and returns the result with
// AppError filled in against the golden functional run.
func (r *Runner) Run(app string, scheme mc.Scheme, v Variant) (*sim.Result, error) {
	key := fmt.Sprintf("%s|%s|d%d|t%d|q%d|%s",
		app, scheme.Name(), scheme.StaticDelay, scheme.StaticThRBL, v.QueueSize, v.Tag)
	r.mu.Lock()
	if res, ok := r.runs[key]; ok {
		r.mu.Unlock()
		return res, nil
	}
	r.mu.Unlock()

	kern, err := workloads.New(app)
	if err != nil {
		return nil, err
	}
	cfg := sim.DefaultConfig()
	if v.QueueSize > 0 {
		cfg.MC.QueueSize = v.QueueSize
	}
	if v.Mutate != nil {
		if v.Tag == "" {
			return nil, fmt.Errorf("exp: Variant.Mutate requires a Tag for %s", app)
		}
		v.Mutate(&cfg)
	}
	res, err := sim.Simulate(kern, cfg, scheme, r.opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", app, scheme.Name(), err)
	}
	res.Run.AppError = approx.MeanRelativeError(r.Golden(app), res.Output)

	r.mu.Lock()
	r.runs[key] = res
	r.mu.Unlock()
	return res, nil
}

// Golden returns (computing once) the exact functional output of app.
func (r *Runner) Golden(app string) []float32 {
	r.mu.Lock()
	g, ok := r.golden[app]
	r.mu.Unlock()
	if ok {
		return g
	}
	kern, err := workloads.New(app)
	if err != nil {
		return nil
	}
	g = sim.RunFunctional(kern, r.opts.Seed)
	r.mu.Lock()
	r.golden[app] = g
	r.mu.Unlock()
	return g
}

// Baseline is shorthand for the default-configuration baseline run.
func (r *Runner) Baseline(app string) (*sim.Result, error) {
	return r.Run(app, mc.Baseline, Variant{})
}

// DMS returns the Static-DMS(X) run for app.
func (r *Runner) DMS(app string, delay int) (*sim.Result, error) {
	s := mc.StaticDMS
	s.StaticDelay = delay
	return r.Run(app, s, Variant{})
}

// AMS returns the Static-AMS(th) run for app.
func (r *Runner) AMS(app string, th int) (*sim.Result, error) {
	s := mc.StaticAMS
	s.StaticThRBL = th
	return r.Run(app, s, Variant{})
}

// Both returns the Static-DMS(delay)+Static-AMS(th) run for app.
func (r *Runner) Both(app string, delay, th int) (*sim.Result, error) {
	s := mc.StaticBoth
	s.StaticDelay = delay
	s.StaticThRBL = th
	return r.Run(app, s, Variant{})
}
