package exp

import (
	"fmt"
	"io"

	"lazydram/internal/mc"
	"lazydram/internal/stats"
)

// queueSizes is the pending-queue sweep of Figs. 2 and 13.
var queueSizes = []int{16, 32, 64, 128, 256}

func init() {
	registerExp(Experiment{
		ID:    "table1",
		Title: "Table I: simulated GPU configuration",
		Run:   runTable1,
	})
	registerExp(Experiment{
		ID:    "fig2",
		Title: "Fig. 2: pending-queue size vs. row activations (baseline FR-FCFS)",
		Run: func(r *Runner, w io.Writer, _ string) error {
			return runQueueSweep(r, w, mc.Baseline)
		},
	})
	registerExp(Experiment{
		ID:    "fig13",
		Title: "Fig. 13: pending-queue size vs. row activations under DMS(2048)",
		Run: func(r *Runner, w io.Writer, _ string) error {
			s := mc.StaticDMS
			s.StaticDelay = 2048
			return runQueueSweep(r, w, s)
		},
	})
}

// runQueueSweep prints activations per queue size normalized to the
// 128-entry baseline configuration, per app plus the geometric mean.
func runQueueSweep(r *Runner, w io.Writer, scheme mc.Scheme) error {
	var pts []Point
	for _, app := range r.Apps() {
		pts = append(pts, Point{App: app, Scheme: mc.Baseline})
		for _, q := range queueSizes {
			pts = append(pts, Point{App: app, Scheme: scheme, Variant: Variant{QueueSize: q}})
		}
	}
	r.Prefetch(pts...)
	header(w, "activations normalized to queue size 128 (baseline FR-FCFS)")
	fmt.Fprintf(w, "%-14s", "app")
	for _, q := range queueSizes {
		fmt.Fprintf(w, " q=%-6d", q)
	}
	fmt.Fprintln(w)
	norm := make([]float64, len(queueSizes))
	counted := 0
	for _, app := range r.Apps() {
		base, err := r.Baseline(app)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-14s", app)
		for i, q := range queueSizes {
			res, err := r.Run(app, scheme, Variant{QueueSize: q})
			if err != nil {
				return err
			}
			v := ratio(float64(res.Run.Mem.Activations), float64(base.Run.Mem.Activations))
			norm[i] += v
			fmt.Fprintf(w, " %-8.3f", v)
		}
		counted++
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-14s", "MEAN")
	for i := range queueSizes {
		fmt.Fprintf(w, " %-8.3f", norm[i]/float64(counted))
	}
	fmt.Fprintln(w)
	return nil
}

func runTable1(r *Runner, w io.Writer, _ string) error {
	header(w, "Table I: key configuration parameters of the simulated GPU")
	c := defaultConfigForPrint()
	rows := [][2]string{
		{"SM features", fmt.Sprintf("%.0f MHz core clock, %d SMs, SIMD width 32", c.CoreClockMHz, c.NumSMs)},
		{"Resources/core", fmt.Sprintf("max %d warps (%d threads), %d schedulers/SM",
			c.SM.MaxResidentWarps, c.SM.MaxResidentWarps*32, c.SM.Schedulers)},
		{"L1D/core", fmt.Sprintf("%d KB %d-way, 128 B lines, %d MSHRs",
			c.SM.L1.SizeBytes/1024, c.SM.L1.Ways, c.SM.L1MSHREntries)},
		{"L2", fmt.Sprintf("%d-way %d KB/channel (%d KB total), 128 B lines",
			c.L2.Ways, c.L2.SizeBytes/1024, c.L2.SizeBytes/1024*c.AddrMap.NumChannels)},
		{"Memory model", fmt.Sprintf("%d GDDR5 MCs, FR-FCFS (queue %d), %d banks/MC, %d bank groups/MC, %.0f MHz",
			c.AddrMap.NumChannels, c.MC.QueueSize, c.DRAM.NumBanks, c.DRAM.NumBankGroups, c.MemClockMHz)},
		{"Interleaving", fmt.Sprintf("global linear space in %d B chunks across partitions", c.AddrMap.ChunkBytes)},
		{"GDDR5 timing", fmt.Sprintf("tCL=%d tRP=%d tRC=%d tRAS=%d tCCD=%d tRCD=%d tRRD=%d tCDLR=%d",
			c.DRAM.Timing.CL, c.DRAM.Timing.RP, c.DRAM.Timing.RC, c.DRAM.Timing.RAS,
			c.DRAM.Timing.CCD, c.DRAM.Timing.RCD, c.DRAM.Timing.RRD, c.DRAM.Timing.CDLR)},
		{"Energy model", fmt.Sprintf("%s: Eact=%.1f nJ, Erd=%.1f nJ, Ewr=%.1f nJ",
			c.Energy.Name, c.Energy.ActNJ, c.Energy.RdNJ, c.Energy.WrNJ)},
	}
	for _, row := range rows {
		fmt.Fprintf(w, "%-16s %s\n", row[0], row[1])
	}
	return nil
}

// rblBuckets are the stacked categories of Figs. 5 and 11.
var rblBuckets = []struct {
	Lo, Hi int
	Label  string
}{
	{1, 1, "RBL(1)"},
	{2, 2, "RBL(2)"},
	{3, 4, "RBL(3-4)"},
	{5, 8, "RBL(5-8)"},
	{9, 16, "RBL(9-16)"},
	{17, stats.MaxTrackedRBL, "RBL(>16)"},
}
