package exp

import (
	"fmt"
	"io"

	"lazydram/internal/energy"
	"lazydram/internal/mc"
	"lazydram/internal/workloads"
)

func init() {
	registerExp(Experiment{
		ID:    "fig12",
		Title: "Fig. 12: all schemes on medium/high error-tolerance apps (groups 1-3)",
		Run:   runFig12,
	})
	registerExp(Experiment{
		ID:    "fig15",
		Title: "Fig. 15: delay-only mode for low error-tolerance apps (group 4)",
		Run:   runFig15,
	})
	registerExp(Experiment{
		ID:    "energy",
		Title: "Memory energy and peak bandwidth (HBM1/HBM2 projection)",
		Run:   runEnergy,
	})
}

// fig12Schemes are the seven bars of Figure 12.
var fig12Schemes = []mc.Scheme{
	mc.Baseline,
	mc.StaticDMS,
	mc.DynDMS,
	mc.StaticAMS,
	mc.DynAMS,
	mc.StaticBoth,
	mc.DynBoth,
}

func runFig12(r *Runner, w io.Writer, _ string) error {
	apps := r.GroupApps(1, 2, 3)
	r.PrefetchSchemes(apps, fig12Schemes...)
	type agg struct {
		rowE, ipc, errSum, cov float64
		n                      int
	}
	sums := make([]agg, len(fig12Schemes))
	for _, metric := range []string{"row-energy", "ipc", "app-error", "coverage"} {
		header(w, fmt.Sprintf("(%s) per app and scheme", metric))
		fmt.Fprintf(w, "%-14s %-3s", "app", "grp")
		for _, s := range fig12Schemes {
			fmt.Fprintf(w, " %-22s", s.Name())
		}
		fmt.Fprintln(w)
		for _, app := range apps {
			base, err := r.Baseline(app)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-14s %-3d", app, workloads.Group(app))
			for si, s := range fig12Schemes {
				res, err := r.Run(app, s, Variant{})
				if err != nil {
					return err
				}
				var v float64
				switch metric {
				case "row-energy":
					v = ratio(res.Run.RowEnergy, base.Run.RowEnergy)
					sums[si].rowE += v
				case "ipc":
					v = ratio(res.Run.IPC(), base.Run.IPC())
					sums[si].ipc += v
				case "app-error":
					v = res.Run.AppError
					sums[si].errSum += v
				case "coverage":
					v = res.Run.Mem.Coverage()
					sums[si].cov += v
				}
				if metric == "row-energy" {
					sums[si].n++
				}
				fmt.Fprintf(w, " %-22.4f", v)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%-14s %-3s", "MEAN", "")
		for si := range fig12Schemes {
			n := float64(len(apps))
			var v float64
			switch metric {
			case "row-energy":
				v = sums[si].rowE / n
			case "ipc":
				v = sums[si].ipc / n
			case "app-error":
				v = sums[si].errSum / n
			case "coverage":
				v = sums[si].cov / n
			}
			fmt.Fprintf(w, " %-22.4f", v)
		}
		fmt.Fprintln(w)
		fmt.Fprintln(w)
	}
	// Headline numbers, paper style: reductions versus baseline.
	fmt.Fprintln(w, "row-energy reduction vs baseline (groups 1-3):")
	for si, s := range fig12Schemes {
		if si == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-22s %.1f%%\n", s.Name(), 100*(1-sums[si].rowE/float64(len(apps))))
	}
	return nil
}

func runFig15(r *Runner, w io.Writer, _ string) error {
	apps := r.GroupApps(4)
	r.PrefetchSchemes(apps, mc.Baseline, mc.StaticDMS, mc.DynDMS)
	header(w, "group-4 apps: row energy (a) and IPC (b) under DMS, normalized to baseline")
	fmt.Fprintf(w, "%-14s %-12s %-12s %-12s %-12s %-12s\n",
		"app", "sdms-rowE", "ddms-rowE", "sdms-ipc", "ddms-ipc", "ddms-delay")
	var sRow, dRow, sIPC, dIPC float64
	for _, app := range apps {
		base, err := r.Baseline(app)
		if err != nil {
			return err
		}
		sres, err := r.Run(app, mc.StaticDMS, Variant{})
		if err != nil {
			return err
		}
		dres, err := r.Run(app, mc.DynDMS, Variant{})
		if err != nil {
			return err
		}
		se := ratio(sres.Run.RowEnergy, base.Run.RowEnergy)
		de := ratio(dres.Run.RowEnergy, base.Run.RowEnergy)
		si := ratio(sres.Run.IPC(), base.Run.IPC())
		di := ratio(dres.Run.IPC(), base.Run.IPC())
		sRow += se
		dRow += de
		sIPC += si
		dIPC += di
		fmt.Fprintf(w, "%-14s %-12.3f %-12.3f %-12.3f %-12.3f %-12.0f\n",
			app, se, de, si, di, dres.Run.Mem.MeanDelay())
	}
	n := float64(len(apps))
	fmt.Fprintf(w, "%-14s %-12.3f %-12.3f %-12.3f %-12.3f\n", "MEAN",
		sRow/n, dRow/n, sIPC/n, dIPC/n)
	return nil
}

func runEnergy(r *Runner, w io.Writer, _ string) error {
	apps := r.GroupApps(1, 2, 3)
	r.PrefetchSchemes(apps, mc.Baseline, mc.DynBoth)
	var reduction float64
	for _, app := range apps {
		base, err := r.Baseline(app)
		if err != nil {
			return err
		}
		res, err := r.Run(app, mc.DynBoth, Variant{})
		if err != nil {
			return err
		}
		reduction += 1 - ratio(res.Run.RowEnergy, base.Run.RowEnergy)
	}
	reduction /= float64(len(apps))
	header(w, "memory-system projection of the Dyn-DMS+Dyn-AMS row-energy reduction")
	fmt.Fprintf(w, "row-energy reduction (groups 1-3 mean): %.1f%%\n\n", 100*reduction)
	fmt.Fprintf(w, "%-8s %-16s %-18s %-14s %-16s\n",
		"tech", "row-energy share", "mem-energy saving", "watts saved", "extra peak BW")
	for _, prof := range []energy.Profile{energy.GDDR5(), energy.HBM1(), energy.HBM2()} {
		saving := prof.SystemSaving(reduction)
		watts, gbs := energy.PeakBandwidthHeadroom(60, 900, saving)
		fmt.Fprintf(w, "%-8s %-16.2f %-18.1f%% %-14.1fW %-16.0fGB/s\n",
			prof.Name, prof.RowEnergyShare, 100*saving, watts, gbs)
	}
	fmt.Fprintln(w, "\n(60 W memory power budget, 900 GB/s baseline peak bandwidth, as in Section V)")
	return nil
}
