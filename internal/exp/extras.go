package exp

import (
	"fmt"
	"io"

	"lazydram/internal/mc"
	"lazydram/internal/sim"
)

// Extra experiments beyond the paper's figures: the baseline-policy
// comparison motivating Section II-C, and a value-predictor ablation for
// Section IV-D's "supports a large variety of value prediction mechanisms".

func init() {
	registerExp(Experiment{
		ID:    "policies",
		Title: "Extra: FR-FCFS vs FCFS vs closed-row baselines (Section II-C)",
		Run:   runPolicies,
	})
	registerExp(Experiment{
		ID:    "vp",
		Title: "Extra: value-predictor ablation under Static-AMS (Section IV-D)",
		Run:   runVPAblation,
	})
}

// policyApps keeps the extra sweeps affordable.
var policyApps = []string{"SCP", "LPS", "meanfilter", "FWT"}

func runPolicies(r *Runner, w io.Writer, _ string) error {
	header(w, "activations and IPC per scheduling policy, normalized to FR-FCFS")
	fmt.Fprintf(w, "%-14s %-12s %-12s %-12s %-12s\n",
		"app", "fcfs-act", "fcfs-ipc", "closed-act", "closed-ipc")
	apps := policyApps
	if r.opts.Apps != nil {
		apps = r.Apps()
	}
	var pts []Point
	for _, app := range apps {
		pts = append(pts,
			Point{App: app, Scheme: mc.Baseline},
			Point{App: app, Scheme: mc.Baseline, Variant: Variant{
				Tag:    "fcfs",
				Mutate: func(c *sim.Config) { c.MC.Policy = mc.FCFS },
			}},
			Point{App: app, Scheme: mc.Baseline, Variant: Variant{
				Tag:    "closed",
				Mutate: func(c *sim.Config) { c.MC.Policy = mc.FRFCFSClosedRow },
			}})
	}
	r.Prefetch(pts...)
	for _, app := range apps {
		base, err := r.Baseline(app)
		if err != nil {
			return err
		}
		run := func(p mc.Policy, tag string) (*sim.Result, error) {
			return r.Run(app, mc.Baseline, Variant{
				Tag:    tag,
				Mutate: func(c *sim.Config) { c.MC.Policy = p },
			})
		}
		fc, err := run(mc.FCFS, "fcfs")
		if err != nil {
			return err
		}
		cl, err := run(mc.FRFCFSClosedRow, "closed")
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-14s %-12.3f %-12.3f %-12.3f %-12.3f\n", app,
			ratio(float64(fc.Run.Mem.Activations), float64(base.Run.Mem.Activations)),
			ratio(fc.Run.IPC(), base.Run.IPC()),
			ratio(float64(cl.Run.Mem.Activations), float64(base.Run.Mem.Activations)),
			ratio(cl.Run.IPC(), base.Run.IPC()))
	}
	fmt.Fprintln(w, "\n(FR-FCFS with open rows is the strongest baseline, justifying the paper's choice.)")
	return nil
}

func runVPAblation(r *Runner, w io.Writer, _ string) error {
	header(w, "Static-AMS application error per value predictor (10% coverage cap)")
	fmt.Fprintf(w, "%-14s %-12s %-12s %-12s %-10s\n",
		"app", "nearest", "zero", "lastvalue", "coverage")
	apps := []string{"SCP", "LPS", "meanfilter", "jmein", "laplacian"}
	if r.opts.Apps != nil {
		apps = r.Apps()
	}
	var pts []Point
	for _, app := range apps {
		for _, kind := range []string{"nearest", "zero", "lastvalue"} {
			kind := kind
			pts = append(pts, Point{App: app, Scheme: mc.StaticAMS, Variant: Variant{
				Tag:    "vp-" + kind,
				Mutate: func(c *sim.Config) { c.VPKind = kind },
			}})
		}
	}
	r.Prefetch(pts...)
	for _, app := range apps {
		run := func(kind string) (*sim.Result, error) {
			return r.Run(app, mc.StaticAMS, Variant{
				Tag:    "vp-" + kind,
				Mutate: func(c *sim.Config) { c.VPKind = kind },
			})
		}
		near, err := run("nearest")
		if err != nil {
			return err
		}
		zero, err := run("zero")
		if err != nil {
			return err
		}
		last, err := run("lastvalue")
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-14s %-12.4f %-12.4f %-12.4f %-10.3f\n", app,
			near.Run.AppError, zero.Run.AppError, last.Run.AppError,
			near.Run.Mem.Coverage())
	}
	return nil
}
