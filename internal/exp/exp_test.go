package exp_test

import (
	"bytes"
	"strings"
	"testing"

	"lazydram/internal/exp"
	"lazydram/internal/mc"
	"lazydram/internal/sim"
)

func shortRunner() *exp.Runner {
	return exp.NewRunner(exp.Options{Seed: 1, Apps: []string{"LPS", "jmein"}})
}

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	want := []string{
		"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "table2", "energy",
		"policies", "vp", "fault",
	}
	ids := exp.IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(ids), len(want))
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("IDs()[%d] = %s, want %s", i, ids[i], id)
		}
		if _, ok := exp.Lookup(id); !ok {
			t.Fatalf("experiment %s missing", id)
		}
	}
	if _, ok := exp.Lookup("nope"); ok {
		t.Fatal("Lookup accepted an unknown id")
	}
}

func TestRunnerMemoizes(t *testing.T) {
	r := shortRunner()
	a, err := r.Baseline("LPS")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Baseline("LPS")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical runs not memoized")
	}
}

func TestRunnerDistinguishesVariants(t *testing.T) {
	r := shortRunner()
	a, _ := r.Run("LPS", mc.Baseline, exp.Variant{QueueSize: 32})
	b, _ := r.Baseline("LPS")
	if a == b {
		t.Fatal("different queue sizes shared a memo entry")
	}
	if a.Run.Mem.Activations == b.Run.Mem.Activations {
		t.Log("note: queue 32 and 128 produced identical activations (possible but unusual)")
	}
}

func TestRunnerRequiresTagForMutation(t *testing.T) {
	r := shortRunner()
	if _, err := r.Run("LPS", mc.Baseline, exp.Variant{
		Mutate: func(c *sim.Config) { c.L2HitLatency = 10 },
	}); err == nil {
		t.Fatal("untagged mutation must be rejected")
	}
	if _, err := r.Run("LPS", mc.Baseline, exp.Variant{
		Tag:    "l2lat10",
		Mutate: func(c *sim.Config) { c.L2HitLatency = 10 },
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunnerAppError(t *testing.T) {
	r := shortRunner()
	res, err := r.Run("LPS", mc.StaticAMS, exp.Variant{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.Mem.Dropped > 0 && res.Run.AppError == 0 {
		t.Fatal("drops occurred but AppError is zero")
	}
	base, _ := r.Baseline("LPS")
	if base.Run.AppError != 0 {
		t.Fatalf("baseline AppError = %v, want 0", base.Run.AppError)
	}
}

func TestFig8Experiment(t *testing.T) {
	e, _ := exp.Lookup("fig8")
	var buf bytes.Buffer
	if err := e.Run(shortRunner(), &buf, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "R1") || !strings.Contains(out, "R5") {
		t.Fatalf("fig8 output missing the dropped rows:\n%s", out)
	}
	if !strings.Contains(out, "1.60") || !strings.Contains(out, "2.00") {
		t.Fatalf("fig8 Avg-RBL values missing:\n%s", out)
	}
}

func TestTable1Experiment(t *testing.T) {
	e, _ := exp.Lookup("table1")
	var buf bytes.Buffer
	if err := e.Run(shortRunner(), &buf, ""); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"30 SMs", "tCL=12", "FR-FCFS (queue 128)", "GDDR5"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("table1 missing %q", want)
		}
	}
}

func TestFig7Experiment(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	e, _ := exp.Lookup("fig7")
	var buf bytes.Buffer
	// fig7 uses its own fixed apps (LPS, SCP); the runner app set does not
	// restrict it.
	if err := e.Run(exp.NewRunner(exp.Options{Seed: 1}), &buf, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "DMS(256)+AMS(8)") {
		t.Fatalf("fig7 missing the combined scheme row:\n%s", buf.String())
	}
}

func TestFig14WritesImages(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	e, _ := exp.Lookup("fig14")
	var buf bytes.Buffer
	dir := t.TempDir()
	if err := e.Run(exp.NewRunner(exp.Options{Seed: 1}), &buf, dir); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "fig14_approx.pgm") {
		t.Fatalf("fig14 did not report its images:\n%s", buf.String())
	}
}

func TestFaultExperiment(t *testing.T) {
	e, _ := exp.Lookup("fault")
	var buf bytes.Buffer
	// Restrict the grid to one fast app; the retention table skips itself
	// when FWT is excluded.
	r := exp.NewRunner(exp.Options{Seed: 1, Apps: []string{"jmein"}})
	if err := e.Run(r, &buf, ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The zero/zero grid point must report exactly zero error delta.
	if !strings.Contains(out, "+0.0000") {
		t.Fatalf("fault sweep missing the zero-rate identity row:\n%s", out)
	}
	if !strings.Contains(out, "skipped: FWT not in app subset") {
		t.Fatalf("retention table did not skip under a restricted app set:\n%s", out)
	}
}

func TestFig3Experiment(t *testing.T) {
	e, _ := exp.Lookup("fig3")
	var buf bytes.Buffer
	if err := e.Run(shortRunner(), &buf, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2.00") {
		t.Fatalf("fig3 did not reach Avg-RBL 2.00 under DMS:\n%s", buf.String())
	}
}
