package exp

import (
	"fmt"
	"io"

	"lazydram/internal/fault"
	"lazydram/internal/mc"
	"lazydram/internal/sim"
)

func init() {
	registerExp(Experiment{
		ID:    "fault",
		Title: "Extra: error-tolerance sweep under injected DRAM faults (Section III)",
		Run:   runFaultSweep,
	})
}

// faultApps keeps the sweep affordable; SCP and meanfilter sit at opposite
// ends of the paper's error-tolerance spectrum.
var faultApps = []string{"SCP", "meanfilter"}

// faultGrid is the BER x weak-cell-density grid. The zero point doubles as a
// non-perturbation check: with both rates at zero the injector must leave the
// run bit-identical to fault-off, so its app-error column must match the
// baseline's.
var faultGrid = []struct {
	BER     float64
	Density float64
}{
	{0, 0},
	{1e-7, 0},
	{1e-6, 0},
	{0, 1e-5},
	{0, 1e-4},
	{1e-6, 1e-5},
}

func runFaultSweep(r *Runner, w io.Writer, _ string) error {
	header(w, "application error and per-mode flip counts across a BER x weak-cell-density grid")
	fmt.Fprintf(w, "%-14s %-10s %-10s %-10s %-8s %-8s %-8s %-10s %-10s\n",
		"app", "bus-ber", "density", "corrupted", "act", "ret", "bus", "app-error", "err-delta")
	apps := faultApps
	if r.opts.Apps != nil {
		apps = r.Apps()
	}
	var pts []Point
	for _, app := range apps {
		pts = append(pts, Point{App: app, Scheme: mc.Baseline})
		for _, g := range faultGrid {
			g := g
			pts = append(pts, Point{App: app, Scheme: mc.Baseline, Variant: Variant{
				Tag: fmt.Sprintf("fault-b%g-d%g", g.BER, g.Density),
				Mutate: func(c *sim.Config) {
					c.Fault = fault.DefaultConfig()
					c.Fault.Enabled = true
					c.Fault.BusBER = g.BER
					c.Fault.WeakCellDensity = g.Density
				},
			}})
		}
	}
	r.Prefetch(pts...)
	for _, app := range apps {
		base, err := r.Baseline(app)
		if err != nil {
			return err
		}
		for _, g := range faultGrid {
			g := g
			res, err := r.Run(app, mc.Baseline, Variant{
				Tag: fmt.Sprintf("fault-b%g-d%g", g.BER, g.Density),
				Mutate: func(c *sim.Config) {
					c.Fault = fault.DefaultConfig()
					c.Fault.Enabled = true
					c.Fault.BusBER = g.BER
					c.Fault.WeakCellDensity = g.Density
				},
			})
			if err != nil {
				return err
			}
			m := &res.Run.Mem
			fmt.Fprintf(w, "%-14s %-10g %-10g %-10d %-8d %-8d %-8d %-10.4f %-+10.4f\n",
				app, g.BER, g.Density, m.FaultReads,
				m.FaultActFlips, m.FaultRetFlips, m.FaultBusFlips,
				res.Run.AppError, res.Run.AppError-base.Run.AppError)
		}
	}
	fmt.Fprintln(w, "\n(err-delta isolates injected-fault error from the scheme's own approximation;")
	fmt.Fprintln(w, " the zero/zero row must show delta +0.0000 — faults off and faults-at-zero-rate")
	fmt.Fprintln(w, " are bit-identical.)")
	fmt.Fprintln(w)
	return runFaultRetention(r, w)
}

// runFaultRetention shows the scheduler/fault interaction: delaying requests
// (DMS) holds rows open longer, so the same weak-cell map leaks more
// retention flips as the open-row threshold tightens. FWT is the repo's most
// delay-sensitive app.
func runFaultRetention(r *Runner, w io.Writer) error {
	header(w, "retention flips vs open-row threshold: baseline vs Static-DMS(1024) (FWT, density 1e-4)")
	fmt.Fprintf(w, "%-10s %-16s %-16s\n", "threshold", "base act/ret", "dms act/ret")
	const app = "FWT"
	if r.opts.Apps != nil {
		found := false
		for _, a := range r.Apps() {
			if a == app {
				found = true
			}
		}
		if !found {
			fmt.Fprintf(w, "(skipped: %s not in app subset)\n", app)
			return nil
		}
	}
	dms := mc.StaticDMS
	dms.StaticDelay = 1024
	thresholds := []uint64{4096, 2048, 1024}
	var pts []Point
	for _, th := range thresholds {
		th := th
		v := Variant{
			Tag: fmt.Sprintf("fault-ret%d", th),
			Mutate: func(c *sim.Config) {
				c.Fault = fault.DefaultConfig()
				c.Fault.Enabled = true
				c.Fault.WeakCellDensity = 1e-4
				c.Fault.RetentionThreshold = th
			},
		}
		pts = append(pts,
			Point{App: app, Scheme: mc.Baseline, Variant: v},
			Point{App: app, Scheme: dms, Variant: v})
	}
	r.Prefetch(pts...)
	for _, th := range thresholds {
		th := th
		mutate := func(c *sim.Config) {
			c.Fault = fault.DefaultConfig()
			c.Fault.Enabled = true
			c.Fault.WeakCellDensity = 1e-4
			c.Fault.RetentionThreshold = th
		}
		base, err := r.Run(app, mc.Baseline, Variant{
			Tag: fmt.Sprintf("fault-ret%d", th), Mutate: mutate,
		})
		if err != nil {
			return err
		}
		del, err := r.Run(app, dms, Variant{
			Tag: fmt.Sprintf("fault-ret%d", th), Mutate: mutate,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10d %6d/%-9d %6d/%-9d\n", th,
			base.Run.Mem.FaultActFlips, base.Run.Mem.FaultRetFlips,
			del.Run.Mem.FaultActFlips, del.Run.Mem.FaultRetFlips)
	}
	fmt.Fprintln(w, "\n(DMS trades activations for open time: activation flips fall, retention")
	fmt.Fprintln(w, " flips rise — the energy-efficient schedule shifts *which* faults occur.)")
	return nil
}
