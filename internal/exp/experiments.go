package exp

import (
	"fmt"
	"io"
)

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID    string
	Title string
	// Run writes the experiment's rows to w; artifacts (e.g. Fig. 14's
	// images) go under outDir when it is non-empty.
	Run func(r *Runner, w io.Writer, outDir string) error
}

// Registry lists all experiments in paper order.
var Registry []Experiment

// byID indexes Registry.
var byID = map[string]*Experiment{}

func registerExp(e Experiment) {
	Registry = append(Registry, e)
	byID[e.ID] = &Registry[len(Registry)-1]
}

// Lookup finds an experiment by id.
func Lookup(id string) (*Experiment, bool) {
	e, ok := byID[id]
	return e, ok
}

// paperOrder is the canonical experiment order (Table I first, then figures
// and tables as they appear in the paper).
var paperOrder = []string{
	"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
	"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "table2", "energy",
	// Extras beyond the paper's artifact list:
	"policies", "vp", "fault",
}

// IDs returns all experiment ids in paper order.
func IDs() []string {
	out := make([]string, 0, len(paperOrder))
	for _, id := range paperOrder {
		if _, ok := byID[id]; ok {
			out = append(out, id)
		}
	}
	return out
}

// header prints a section banner.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "### %s\n\n", title)
}

// geoOrNaN guards ratio computation.
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
