package exp_test

import (
	"bytes"
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"

	"lazydram/internal/exp"
	"lazydram/internal/mc"
	"lazydram/internal/obs"
	"lazydram/internal/sim"
)

// TestRunLogReconciliation drives a concurrent sweep — prefetched cross
// product, consuming Run calls, duplicate calls, and one failing run — and
// requires the three views to agree: done + dedup-joined + error spans equal
// the total Run calls, the registry counters match the event log, and the
// internal reconciliation passes. Run it with -race and Workers > 1 to
// exercise the locking.
func TestRunLogReconciliation(t *testing.T) {
	reg := obs.NewRegistry()
	rl := obs.NewRunLog(obs.RunLogOptions{Metrics: reg})
	apps := []string{"jmein", "LPS"}
	r := exp.NewRunner(exp.Options{Seed: 1, Apps: apps, Workers: 3, RunLog: rl})

	schemes := []mc.Scheme{mc.Baseline, mc.StaticAMS}
	r.PrefetchSchemes(apps, schemes...)
	var wg sync.WaitGroup
	for _, app := range apps {
		for _, s := range schemes {
			// Consume each point twice concurrently on top of the prefetch.
			for i := 0; i < 2; i++ {
				app, s := app, s
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, err := r.Run(app, s, exp.Variant{}); err != nil {
						t.Error(err)
					}
				}()
			}
		}
	}
	wg.Wait()
	// One failing run: unknown app.
	if _, err := r.Run("no-such-app", mc.Baseline, exp.Variant{}); err == nil {
		t.Fatal("Run accepted an unknown app")
	}
	r.Wait()

	s := rl.Summary()
	// 4 points × (1 prefetch + 2 consumers) + 1 failure = 13 spans; exactly
	// one call per point executes, the other two join — deterministically,
	// whatever the interleaving.
	if s.Runs != 13 {
		t.Fatalf("runs = %d, want 13", s.Runs)
	}
	if s.Executed != 4 || s.Deduped != 8 || s.Errors != 1 {
		t.Fatalf("executed/deduped/errors = %d/%d/%d, want 4/8/1", s.Executed, s.Deduped, s.Errors)
	}
	if got := s.Executed + s.Deduped + s.Errors; got != s.Runs {
		t.Fatalf("terminal spans %d != runs %d", got, s.Runs)
	}
	if err := rl.Reconcile(); err != nil {
		t.Fatalf("reconcile: %v", err)
	}

	// Registry counters must equal the JSONL event counts per state.
	events := rl.Events()
	if s.Events != len(events) {
		t.Fatalf("summary events %d != Events() %d", s.Events, len(events))
	}
	counts := map[string]int{}
	for _, ev := range events {
		counts[ev.State.String()]++
	}
	states := reg.Register("lazysim_sweep_runs_total", "", obs.KindCounter, "state")
	for state, want := range counts {
		if got := states.With(state).Value(); got != float64(want) {
			t.Errorf("runs_total{state=%q} = %g, want %d", state, got, want)
		}
	}
	if counts["done"] != s.Executed || counts["dedup-joined"] != s.Deduped || counts["error"] != s.Errors {
		t.Errorf("event counts %v disagree with summary %+v", counts, s)
	}

	// The Chrome trace must parse, name one track per worker, and never
	// overlap slices on a tid (Reconcile already checks the span view; this
	// checks the exported view).
	var tr bytes.Buffer
	if err := rl.WriteChromeTrace(&tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tr.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	tracks := 0
	type slice struct{ start, end int64 }
	perTid := map[int][]slice{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			tracks++
		}
		if ev.Ph == "X" {
			perTid[ev.Tid] = append(perTid[ev.Tid], slice{ev.TS, ev.TS + ev.Dur})
		}
	}
	if tracks != 3+1 { // workers 0..2 plus the dedup-joins lane
		t.Errorf("thread tracks = %d, want 4", tracks)
	}
	for tid, ss := range perTid {
		if tid < 0 || tid >= 3 {
			t.Errorf("slice on tid %d outside [0,3)", tid)
		}
		for i := 1; i < len(ss); i++ {
			if ss[i].start < ss[i-1].end {
				t.Errorf("tid %d slices overlap: %+v then %+v", tid, ss[i-1], ss[i])
			}
		}
	}
}

// TestRunnerErrorNotCached: a failed singleflight entry must not be memoized
// forever. The first Run fails (MaxCoreCycles=1 aborts the simulation), a
// retry re-executes and succeeds, and only then is the key memoized.
func TestRunnerErrorNotCached(t *testing.T) {
	rl := obs.NewRunLog(obs.RunLogOptions{})
	r := exp.NewRunner(exp.Options{Seed: 1, Workers: 2, RunLog: rl})
	var calls atomic.Int64
	v := exp.Variant{
		Tag: "transient",
		Mutate: func(c *sim.Config) {
			if calls.Add(1) == 1 {
				c.MaxCoreCycles = 1 // first execution aborts
			}
		},
	}
	if _, err := r.Run("jmein", mc.Baseline, v); err == nil {
		t.Fatal("first Run succeeded, want a transient failure")
	}
	if _, err := r.Run("jmein", mc.Baseline, v); err != nil {
		t.Fatalf("retry after transient error failed: %v", err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("retry executed %d simulations, want 2 (error not cached)", n)
	}
	if _, err := r.Run("jmein", mc.Baseline, v); err != nil {
		t.Fatalf("third Run: %v", err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("successful result not memoized: %d simulations", n)
	}

	s := rl.Summary()
	// The failed execution counts as an error span, not an executed one: one
	// error, one successful execution, one memoized join.
	if s.Errors != 1 || s.Executed != 1 || s.Deduped != 1 {
		t.Fatalf("summary: errors=%d executed=%d deduped=%d, want 1/1/1", s.Errors, s.Executed, s.Deduped)
	}
	var errSpan bool
	for _, sp := range s.Spans {
		if sp.State == "error" && sp.Err != "" {
			errSpan = true
		}
	}
	if !errSpan {
		t.Error("failed run has no error string in its span")
	}
	if err := rl.Reconcile(); err != nil {
		t.Fatalf("reconcile: %v", err)
	}
}

// TestRunnerNoRunLog: the runner still works with observability off — the
// nil RunLog path is the default and must stay free.
func TestRunnerNoRunLog(t *testing.T) {
	r := exp.NewRunner(exp.Options{Seed: 1, Workers: 2})
	if _, err := r.Run("jmein", mc.Baseline, exp.Variant{}); err != nil {
		t.Fatal(err)
	}
	r.Wait()
}
