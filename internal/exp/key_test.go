package exp_test

import (
	"strings"
	"testing"

	"lazydram/internal/exp"
	"lazydram/internal/mc"
)

// TestRunKeyCanonicalForm pins the exact canonical key strings. The run key
// is the shared identity across the Runner's singleflight map, the lazyd
// job dedupe, and the content-addressed result cache (which hashes it), so
// the serialized form must never change silently: reordering fields or
// renaming a scheme would split every persisted cache while claiming the
// same configuration. If this test fails, you changed the key format —
// treat it as a cache-schema migration, not a test to update casually.
func TestRunKeyCanonicalForm(t *testing.T) {
	cases := []struct {
		name   string
		app    string
		scheme mc.Scheme
		v      exp.Variant
		seed   int64
		want   string
	}{
		{
			name: "baseline defaults",
			app:  "GEMM", scheme: mc.Baseline, seed: 1,
			want: "GEMM|Baseline|d0|t0|q0|s1|",
		},
		{
			name: "dyn-both",
			app:  "SCP", scheme: mc.DynBoth, seed: 7,
			want: "SCP|Dyn-DMS+Dyn-AMS|d128|t8|q0|s7|",
		},
		{
			name: "static sweep point with queue and tag",
			app:  "MVT", scheme: exp.BothScheme(64, 4),
			v:    exp.Variant{QueueSize: 256, Tag: "obs:se1024,a0,q0,c0"},
			seed: 3,
			want: "MVT|Static-DMS+Static-AMS|d64|t4|q256|s3|obs:se1024,a0,q0,c0",
		},
		{
			name: "variant seed is not part of the string twice",
			app:  "LPS", scheme: mc.StaticDMS,
			v: exp.Variant{Seed: 9}, seed: 9,
			want: "LPS|Static-DMS|d128|t0|q0|s9|",
		},
	}
	for _, c := range cases {
		if got := exp.RunKey(c.app, c.scheme, c.v, c.seed); got != c.want {
			t.Errorf("%s: RunKey = %q, want %q", c.name, got, c.want)
		}
	}
}

// TestRunKeyDistinguishes asserts that every result-determining field moves
// the key: two specs that differ in any one of them must never collide.
func TestRunKeyDistinguishes(t *testing.T) {
	base := exp.RunKey("SCP", mc.DynBoth, exp.Variant{}, 1)
	alts := map[string]string{
		"app":    exp.RunKey("MVT", mc.DynBoth, exp.Variant{}, 1),
		"scheme": exp.RunKey("SCP", mc.Baseline, exp.Variant{}, 1),
		"delay":  exp.RunKey("SCP", exp.DMSScheme(64), exp.Variant{}, 1),
		"thrbl":  exp.RunKey("SCP", exp.AMSScheme(4), exp.Variant{}, 1),
		"queue":  exp.RunKey("SCP", mc.DynBoth, exp.Variant{QueueSize: 64}, 1),
		"seed":   exp.RunKey("SCP", mc.DynBoth, exp.Variant{}, 2),
		"tag":    exp.RunKey("SCP", mc.DynBoth, exp.Variant{Tag: "x"}, 1),
	}
	seen := map[string]string{base: "base"}
	for field, k := range alts {
		if k == base {
			t.Errorf("changing %s did not change the run key %q", field, k)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("keys for %s and %s collide: %q", field, prev, k)
		}
		seen[k] = field
	}
}

// TestVariantSeedMemoizesIndependently runs the same point under two seeds
// through one Runner and checks both execute (different results allowed) and
// each memoizes under its own key, scoring against its own seed's golden.
func TestVariantSeedMemoizesIndependently(t *testing.T) {
	r := exp.NewRunner(exp.Options{Seed: 1, Apps: []string{"jmein"}})
	a, err := r.Run("jmein", mc.Baseline, exp.Variant{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run("jmein", mc.Baseline, exp.Variant{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("seed-1 and seed-2 runs shared one memoized result")
	}
	// Exact scheme: both must score zero error against their own golden.
	if a.Run.AppError != 0 || b.Run.AppError != 0 {
		t.Fatalf("baseline app errors nonzero: seed1 %g, seed2 %g",
			a.Run.AppError, b.Run.AppError)
	}
	// An explicit Seed equal to the default must join the default's flight.
	c, err := r.Run("jmein", mc.Baseline, exp.Variant{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatal("Variant{Seed:1} did not join the default-seed memo entry")
	}
	st := r.Stats()
	if st.Runs != 2 {
		t.Fatalf("Stats.Runs = %d, want 2", st.Runs)
	}
	if st.Golden != 2 {
		t.Fatalf("Stats.Golden = %d, want 2 (one per seed)", st.Golden)
	}
	if st.Busy != 0 {
		t.Fatalf("Stats.Busy = %d after quiesce, want 0", st.Busy)
	}
	if st.Workers < 1 {
		t.Fatalf("Stats.Workers = %d, want >= 1", st.Workers)
	}
}

// TestRunKeyHasNoMapIteration is a structural guard: the key must be a pure
// fixed-order Sprintf over scalar fields, never built from a map walk. We
// can't inspect the implementation, but we can pin that repeated calls are
// byte-identical (a map-ordered build would flake here across iterations).
func TestRunKeyHasNoMapIteration(t *testing.T) {
	v := exp.Variant{QueueSize: 96, Tag: "obs:se512,a1,q1,c1"}
	first := exp.RunKey("BFS", mc.DynAMS, v, 42)
	for i := 0; i < 1000; i++ {
		if got := exp.RunKey("BFS", mc.DynAMS, v, 42); got != first {
			t.Fatalf("iteration %d: key %q != %q", i, got, first)
		}
	}
	if !strings.Contains(first, "|s42|") {
		t.Fatalf("key %q missing seed component", first)
	}
}
