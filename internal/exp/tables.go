package exp

import (
	"fmt"
	"io"

	"lazydram/internal/workloads"
)

func init() {
	registerExp(Experiment{
		ID:    "table2",
		Title: "Tables II & III: measured per-application feature classification",
		Run:   runTable2,
	})
}

// classify buckets a value with Table III's thresholds.
func classify(v float64, lowHi, medHi float64) string {
	switch {
	case v < lowHi:
		return "Low"
	case v < medHi:
		return "Medium"
	default:
		return "High"
	}
}

// runTable2 re-measures the five features of Table III for every app and
// prints both the measured value and its Low/Medium/High class, next to the
// paper's class for comparison.
func runTable2(r *Runner, w io.Writer, _ string) error {
	// Every feature column reuses the same sweep shape per app: baseline, the
	// full DMS delay sweep, and AMS at Th in {8, 4, 2, 1}.
	prefetchDelaySweep(r, r.Apps())
	for _, th := range []int{8, 4, 2, 1} {
		r.PrefetchSchemes(r.Apps(), AMSScheme(th))
	}
	header(w, "measured application features (Table III thresholds)")
	fmt.Fprintf(w, "%-14s %-3s | %-16s | %-12s | %-14s | %-16s | %-14s\n",
		"app", "grp", "thrash(req%1-8)", "MTD(cycles)", "act-sens(%)", "thrbl-sens(%)", "err-tol(err@10%)")
	for _, app := range r.Apps() {
		base, err := r.Baseline(app)
		if err != nil {
			return err
		}

		// Thrashing level: % of requests in rows with RBL(1-8).
		thrash := 100 * base.Run.Mem.LowRBLReqFrac(1, 8)

		// Maximum tolerable delay: largest swept delay keeping IPC >= 95%.
		mtd := 0
		for _, d := range delaySweep {
			res, err := r.DMS(app, d)
			if err != nil {
				return err
			}
			if ratio(res.Run.IPC(), base.Run.IPC()) >= 0.95 {
				mtd = d
			}
		}

		// Activation sensitivity: reduction at DMS(2048).
		d2048, err := r.DMS(app, 2048)
		if err != nil {
			return err
		}
		actSens := 100 * (1 - ratio(float64(d2048.Run.Mem.Activations), float64(base.Run.Mem.Activations)))

		// Th_RBL sensitivity: extra activation reduction from lowering Th
		// below 8 (best of Th in {4, 2, 1} versus Th = 8).
		a8, err := r.AMS(app, 8)
		if err != nil {
			return err
		}
		bestActs := a8.Run.Mem.Activations
		for _, th := range []int{4, 2, 1} {
			res, err := r.AMS(app, th)
			if err != nil {
				return err
			}
			if res.Run.Mem.Activations < bestActs {
				bestActs = res.Run.Mem.Activations
			}
		}
		thSens := 100 * (ratio(float64(a8.Run.Mem.Activations), float64(base.Run.Mem.Activations)) -
			ratio(float64(bestActs), float64(base.Run.Mem.Activations)))

		// Error tolerance: application error at 10% coverage (AMS(8)).
		appErr := 100 * a8.Run.AppError

		// Classes per Table III. Error tolerance is inverted: lower error =
		// higher tolerance.
		errClass := "Low"
		if appErr < 5 {
			errClass = "High"
		} else if appErr < 20 {
			errClass = "Medium"
		}
		fmt.Fprintf(w, "%-14s %-3d | %6.1f%% %-8s | %-12d | %5.1f%% %-7s | %5.1f%% %-9s | %6.1f%% %-7s\n",
			app, workloads.Group(app),
			thrash, classify(thrash, 3, 10),
			mtd,
			actSens, classify(actSens, 10, 20),
			thSens, map[bool]string{true: "High", false: "Low"}[thSens >= 5],
			appErr, errClass)
	}
	fmt.Fprintln(w, "\nTable III thresholds: thrashing Low<3%/Med<10%; MTD Low<256/Med<1024;")
	fmt.Fprintln(w, "act-sens Low<10%/Med<20%; Th_RBL-sens High>=5%; err-tol High<5%/Med<20%.")
	return nil
}
