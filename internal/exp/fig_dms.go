package exp

import (
	"fmt"
	"io"

	"lazydram/internal/mc"
	"lazydram/internal/sim"
	"lazydram/internal/stats"
)

// delaySweep is the DMS(X) sweep of Fig. 4.
var delaySweep = []int{64, 128, 256, 512, 1024, 2048}

// prefetchDelaySweep plans the baseline plus every DMS(X) point for apps, the
// shared shape of Figs. 4, 5 and 10 and Table II.
func prefetchDelaySweep(r *Runner, apps []string) {
	schemes := []mc.Scheme{mc.Baseline}
	for _, d := range delaySweep {
		schemes = append(schemes, DMSScheme(d))
	}
	r.PrefetchSchemes(apps, schemes...)
}

func defaultConfigForPrint() sim.Config { return sim.DefaultConfig() }

func init() {
	registerExp(Experiment{
		ID:    "fig4",
		Title: "Fig. 4: effect of DMS(X) on activations (a) and IPC (b)",
		Run:   runFig4,
	})
	registerExp(Experiment{
		ID:    "fig5",
		Title: "Fig. 5: activation share per RBL bucket vs. delay",
		Run:   runFig5,
	})
	registerExp(Experiment{
		ID:    "fig10",
		Title: "Fig. 10: IPC vs. DRAM bandwidth utilization correlation",
		Run:   runFig10,
	})
}

func runFig4(r *Runner, w io.Writer, _ string) error {
	prefetchDelaySweep(r, r.Apps())
	header(w, "(a) activations and (b) IPC under DMS(X), normalized to baseline")
	fmt.Fprintf(w, "%-14s %-5s", "app", "")
	for _, d := range delaySweep {
		fmt.Fprintf(w, " X=%-7d", d)
	}
	fmt.Fprintln(w)
	actMean := make([]float64, len(delaySweep))
	ipcMean := make([]float64, len(delaySweep))
	n := 0
	for _, app := range r.Apps() {
		base, err := r.Baseline(app)
		if err != nil {
			return err
		}
		var acts, ipcs []float64
		for _, d := range delaySweep {
			res, err := r.DMS(app, d)
			if err != nil {
				return err
			}
			acts = append(acts, ratio(float64(res.Run.Mem.Activations), float64(base.Run.Mem.Activations)))
			ipcs = append(ipcs, ratio(res.Run.IPC(), base.Run.IPC()))
		}
		fmt.Fprintf(w, "%-14s %-5s", app, "act")
		for i, v := range acts {
			actMean[i] += v
			fmt.Fprintf(w, " %-9.3f", v)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-14s %-5s", "", "ipc")
		for i, v := range ipcs {
			ipcMean[i] += v
			fmt.Fprintf(w, " %-9.3f", v)
		}
		fmt.Fprintln(w)
		n++
	}
	fmt.Fprintf(w, "%-14s %-5s", "MEAN", "act")
	for i := range delaySweep {
		fmt.Fprintf(w, " %-9.3f", actMean[i]/float64(n))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-14s %-5s", "", "ipc")
	for i := range delaySweep {
		fmt.Fprintf(w, " %-9.3f", ipcMean[i]/float64(n))
	}
	fmt.Fprintln(w)
	return nil
}

// fig5Apps are the two applications whose RBL distributions are shown; the
// paper uses two representative thrashing apps.
var fig5Apps = []string{"FWT", "SCP"}

func runFig5(r *Runner, w io.Writer, _ string) error {
	prefetchDelaySweep(r, fig5Apps)
	for _, app := range fig5Apps {
		header(w, fmt.Sprintf("%s: share of activations per RBL bucket vs. DMS delay", app))
		fmt.Fprintf(w, "%-8s", "delay")
		for _, b := range rblBuckets {
			fmt.Fprintf(w, " %-10s", b.Label)
		}
		fmt.Fprintln(w)
		printRow := func(label string, m *stats.Mem) {
			fmt.Fprintf(w, "%-8s", label)
			for _, b := range rblBuckets {
				fmt.Fprintf(w, " %-10.3f", m.RBLShare(b.Lo, b.Hi))
			}
			fmt.Fprintln(w)
		}
		base, err := r.Baseline(app)
		if err != nil {
			return err
		}
		printRow("0", &base.Run.Mem)
		for _, d := range delaySweep {
			res, err := r.DMS(app, d)
			if err != nil {
				return err
			}
			printRow(fmt.Sprint(d), &res.Run.Mem)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func runFig10(r *Runner, w io.Writer, _ string) error {
	prefetchDelaySweep(r, r.Apps())
	header(w, "normalized (BWUTIL, IPC) pairs across DMS delays, with Pearson r")
	fmt.Fprintf(w, "%-14s %-9s", "app", "r")
	for _, d := range delaySweep {
		fmt.Fprintf(w, " X=%-13d", d)
	}
	fmt.Fprintln(w)
	var allBW, allIPC []float64
	for _, app := range r.Apps() {
		base, err := r.Baseline(app)
		if err != nil {
			return err
		}
		bw := []float64{1}
		ipc := []float64{1}
		for _, d := range delaySweep {
			res, err := r.DMS(app, d)
			if err != nil {
				return err
			}
			bw = append(bw, ratio(res.Run.Mem.BWUtil(), base.Run.Mem.BWUtil()))
			ipc = append(ipc, ratio(res.Run.IPC(), base.Run.IPC()))
		}
		allBW = append(allBW, bw...)
		allIPC = append(allIPC, ipc...)
		fmt.Fprintf(w, "%-14s %-9.3f", app, stats.Pearson(bw, ipc))
		for i := 1; i < len(bw); i++ {
			fmt.Fprintf(w, " (%.2f,%.2f)", bw[i], ipc[i])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-14s %-9.3f  (pooled over all apps and delays)\n",
		"ALL", stats.Pearson(allBW, allIPC))
	return nil
}
