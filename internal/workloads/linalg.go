package workloads

import (
	"iter"
	"math/rand"

	"lazydram/internal/approx"
	"lazydram/internal/core"
	"lazydram/internal/memimage"
	"lazydram/internal/sim"
)

func init() {
	register("GEMM", func() sim.Kernel { return &gemm{n: 288} })
	register("2MM", func() sim.Kernel { return &twoMM{n: 160} })
	register("3MM", func() sim.Kernel { return &threeMM{n: 128} })
	register("MVT", func() sim.Kernel { return &mvt{n: 384} })
	register("ATAX", func() sim.Kernel { return &atax{n: 384} })
	register("BICG", func() sim.Kernel { return &bicg{n: 384} })
}

// matmulProgram emits the instruction stream of warp w of an n x n
// row-major matrix multiply C = alpha*A*B + beta*C: each warp produces 32
// consecutive elements of one C row, loading the A row in line-sized chunks
// and streaming the matching B row segments.
func matmulProgram(ctx *core.Ctx, n, w int, a, b, c uint64, alpha, beta float32) iter.Seq[core.Op] {
	return func(yield func(core.Op) bool) {
		stripes := n / core.WarpSize
		i := w / stripes
		j := (w % stripes) * core.WarpSize
		var acc [core.WarpSize]float32
		for k0 := 0; k0 < n; k0 += core.WarpSize {
			if !yield(ctx.LoadSeq32(0, a, i*n+k0, core.WarpSize)) {
				return
			}
			for kk := 0; kk < core.WarpSize; kk++ {
				if !yield(ctx.LoadSeq32(1, b, (k0+kk)*n+j, core.WarpSize)) {
					return
				}
				av := ctx.F32(0, kk)
				for l := 0; l < core.WarpSize; l++ {
					acc[l] += av * ctx.F32(1, l)
				}
				if !yield(ctx.Compute(2)) {
					return
				}
			}
		}
		if !yield(ctx.LoadSeq32(2, c, i*n+j, core.WarpSize)) {
			return
		}
		var out [core.WarpSize]float32
		for l := range out {
			out[l] = alpha*acc[l] + beta*ctx.F32(2, l)
		}
		yield(ctx.StoreSeqF32(c, i*n+j, out[:], core.WarpSize))
	}
}

// rowDotProgram emits warp w computing out[w] = sum_j A[w,j]*x[j] (the
// coalesced matrix-vector product: lanes stride across the row and reduce).
func rowDotProgram(ctx *core.Ctx, n, w int, a, x, out uint64, addIn bool) iter.Seq[core.Op] {
	return func(yield func(core.Op) bool) {
		var acc [core.WarpSize]float32
		for j := 0; j < n; j += core.WarpSize {
			if !yield(ctx.Async(ctx.LoadSeq32(0, a, w*n+j, core.WarpSize))) {
				return
			}
			if !yield(ctx.Async(ctx.LoadSeq32(1, x, j, core.WarpSize))) {
				return
			}
			if !yield(ctx.Join()) {
				return
			}
			for l := 0; l < core.WarpSize; l++ {
				acc[l] += ctx.F32(0, l) * ctx.F32(1, l)
			}
			if !yield(ctx.Compute(2)) {
				return
			}
		}
		sum := float32(0)
		for l := 0; l < core.WarpSize; l++ {
			sum += acc[l]
		}
		if !yield(ctx.Compute(10)) { // lane-serial reduction
			return
		}
		if addIn {
			if !yield(ctx.LoadSeq32(2, out, w, 1)) {
				return
			}
			sum += ctx.F32(2, 0)
		}
		yield(ctx.StoreSeqF32(out, w, []float32{sum}, 1))
	}
}

// colDotProgram emits warp w computing out[w] = sum_i A[i,w]*y[i] — the
// transposed product: lane l gathers A[(i+l)*n + w], a stride-n access that
// touches up to 32 distinct lines (and DRAM rows) per instruction. This is
// the row-thrashing access shape of MVT/ATAX/BICG.
func colDotProgram(ctx *core.Ctx, n, w int, a, y, out uint64) iter.Seq[core.Op] {
	return func(yield func(core.Op) bool) {
		var acc [core.WarpSize]float32
		for i := 0; i < n; i += core.WarpSize {
			if !yield(ctx.Async(ctx.LoadStride32(0, a, i*n+w, n, core.WarpSize))) {
				return
			}
			if !yield(ctx.Async(ctx.LoadSeq32(1, y, i, core.WarpSize))) {
				return
			}
			if !yield(ctx.Join()) {
				return
			}
			for l := 0; l < core.WarpSize; l++ {
				acc[l] += ctx.F32(0, l) * ctx.F32(1, l)
			}
			if !yield(ctx.Compute(2)) {
				return
			}
		}
		sum := float32(0)
		for l := 0; l < core.WarpSize; l++ {
			sum += acc[l]
		}
		if !yield(ctx.Compute(10)) {
			return
		}
		yield(ctx.StoreSeqF32(out, w, []float32{sum}, 1))
	}
}

// ---- GEMM (Polybench): C = alpha*A*B + beta*C --------------------------

type gemm struct {
	n       int
	a, b, c uint64
	annot   *approx.Annotations
}

func (k *gemm) Name() string     { return "GEMM" }
func (k *gemm) MemBytes() uint64 { return uint64(3*k.n*k.n)*4 + 4096 }
func (k *gemm) Phases() int      { return 1 }
func (k *gemm) NumWarps(int) int { return k.n * k.n / core.WarpSize }

func (k *gemm) Setup(im *memimage.Image, rng *rand.Rand) {
	n2 := k.n * k.n
	k.a = allocF32(im, n2)
	k.b = allocF32(im, n2)
	k.c = allocF32(im, n2)
	// Noise inputs: products of uncorrelated values amplify prediction
	// error, giving GEMM its low error tolerance (Table II).
	initNoise(im, k.a, n2, -1, 1, rng)
	initNoise(im, k.b, n2, -1, 1, rng)
	initNoise(im, k.c, n2, -1, 1, rng)
	k.annot = annotate(
		approx.Range{Base: k.a, Size: uint64(n2) * 4},
		approx.Range{Base: k.b, Size: uint64(n2) * 4},
	)
}

func (k *gemm) Program(_, w int, ctx *core.Ctx) iter.Seq[core.Op] {
	return matmulProgram(ctx, k.n, w, k.a, k.b, k.c, 1.5, 0.8)
}

func (k *gemm) Output(im *memimage.Image) []float32 {
	return im.ReadF32Slice(k.c, k.n*k.n)
}

func (k *gemm) Annotations() *approx.Annotations { return k.annot }

// ---- 2MM (Polybench): D = A*B; E = D*C ---------------------------------

type twoMM struct {
	n             int
	a, b, c, d, e uint64
	annot         *approx.Annotations
}

func (k *twoMM) Name() string     { return "2MM" }
func (k *twoMM) MemBytes() uint64 { return uint64(5*k.n*k.n)*4 + 4096 }
func (k *twoMM) Phases() int      { return 2 }
func (k *twoMM) NumWarps(int) int { return k.n * k.n / core.WarpSize }

func (k *twoMM) Setup(im *memimage.Image, rng *rand.Rand) {
	n2 := k.n * k.n
	k.a = allocF32(im, n2)
	k.b = allocF32(im, n2)
	k.c = allocF32(im, n2)
	k.d = allocF32(im, n2)
	k.e = allocF32(im, n2)
	initNoise(im, k.a, n2, -1, 1, rng)
	initNoise(im, k.b, n2, -1, 1, rng)
	initNoise(im, k.c, n2, -1, 1, rng)
	k.annot = annotate(
		approx.Range{Base: k.a, Size: uint64(n2) * 4},
		approx.Range{Base: k.b, Size: uint64(n2) * 4},
		approx.Range{Base: k.c, Size: uint64(n2) * 4},
	)
}

func (k *twoMM) Program(phase, w int, ctx *core.Ctx) iter.Seq[core.Op] {
	if phase == 0 {
		return matmulProgram(ctx, k.n, w, k.a, k.b, k.d, 1, 0)
	}
	return matmulProgram(ctx, k.n, w, k.d, k.c, k.e, 1, 0)
}

func (k *twoMM) Output(im *memimage.Image) []float32 {
	return im.ReadF32Slice(k.e, k.n*k.n)
}

func (k *twoMM) Annotations() *approx.Annotations { return k.annot }

// ---- 3MM (Polybench): E = A*B; F = C*D; G = E*F -------------------------

type threeMM struct {
	n                   int
	a, b, c, d, e, f, g uint64
	annot               *approx.Annotations
}

func (k *threeMM) Name() string     { return "3MM" }
func (k *threeMM) MemBytes() uint64 { return uint64(7*k.n*k.n)*4 + 4096 }
func (k *threeMM) Phases() int      { return 3 }
func (k *threeMM) NumWarps(int) int { return k.n * k.n / core.WarpSize }

func (k *threeMM) Setup(im *memimage.Image, rng *rand.Rand) {
	n2 := k.n * k.n
	k.a = allocF32(im, n2)
	k.b = allocF32(im, n2)
	k.c = allocF32(im, n2)
	k.d = allocF32(im, n2)
	k.e = allocF32(im, n2)
	k.f = allocF32(im, n2)
	k.g = allocF32(im, n2)
	// Smooth inputs keep products correlated with their neighbourhood,
	// giving 3MM its high error tolerance (Table II).
	initSmooth(im, k.a, n2, rng)
	initSmooth(im, k.b, n2, rng)
	initSmooth(im, k.c, n2, rng)
	initSmooth(im, k.d, n2, rng)
	k.annot = annotate(
		approx.Range{Base: k.a, Size: uint64(n2) * 4},
		approx.Range{Base: k.b, Size: uint64(n2) * 4},
		approx.Range{Base: k.c, Size: uint64(n2) * 4},
		approx.Range{Base: k.d, Size: uint64(n2) * 4},
	)
}

func (k *threeMM) Program(phase, w int, ctx *core.Ctx) iter.Seq[core.Op] {
	switch phase {
	case 0:
		return matmulProgram(ctx, k.n, w, k.a, k.b, k.e, 1, 0)
	case 1:
		return matmulProgram(ctx, k.n, w, k.c, k.d, k.f, 1, 0)
	default:
		return matmulProgram(ctx, k.n, w, k.e, k.f, k.g, 1, 0)
	}
}

func (k *threeMM) Output(im *memimage.Image) []float32 {
	return im.ReadF32Slice(k.g, k.n*k.n)
}

func (k *threeMM) Annotations() *approx.Annotations { return k.annot }

// ---- MVT (Polybench): x1 = x1 + A*y1; x2 = x2 + A^T*y2 ------------------

type mvt struct {
	n                 int
	a, y1, y2, x1, x2 uint64
	annot             *approx.Annotations
}

func (k *mvt) Name() string     { return "MVT" }
func (k *mvt) MemBytes() uint64 { return uint64(k.n*k.n+4*k.n)*4 + 4096 }
func (k *mvt) Phases() int      { return 2 }
func (k *mvt) NumWarps(int) int { return k.n }

func (k *mvt) Setup(im *memimage.Image, rng *rand.Rand) {
	n2 := k.n * k.n
	k.a = allocF32(im, n2)
	k.y1 = allocF32(im, k.n)
	k.y2 = allocF32(im, k.n)
	k.x1 = allocF32(im, k.n)
	k.x2 = allocF32(im, k.n)
	initSmooth(im, k.a, n2, rng)
	initSmooth(im, k.y1, k.n, rng)
	initSmooth(im, k.y2, k.n, rng)
	initSmooth(im, k.x1, k.n, rng)
	initSmooth(im, k.x2, k.n, rng)
	k.annot = annotate(approx.Range{Base: k.a, Size: uint64(n2) * 4})
}

func (k *mvt) Program(phase, w int, ctx *core.Ctx) iter.Seq[core.Op] {
	if phase == 0 {
		return rowDotProgram(ctx, k.n, w, k.a, k.y1, k.x1, true)
	}
	return colDotProgram(ctx, k.n, w, k.a, k.y2, k.x2)
}

func (k *mvt) Output(im *memimage.Image) []float32 {
	out := im.ReadF32Slice(k.x1, k.n)
	return append(out, im.ReadF32Slice(k.x2, k.n)...)
}

func (k *mvt) Annotations() *approx.Annotations { return k.annot }

// ---- ATAX (Polybench): y = A^T * (A * x) --------------------------------

type atax struct {
	n            int
	a, x, tmp, y uint64
	annot        *approx.Annotations
}

func (k *atax) Name() string     { return "ATAX" }
func (k *atax) MemBytes() uint64 { return uint64(k.n*k.n+3*k.n)*4 + 4096 }
func (k *atax) Phases() int      { return 2 }
func (k *atax) NumWarps(int) int { return k.n }

func (k *atax) Setup(im *memimage.Image, rng *rand.Rand) {
	n2 := k.n * k.n
	k.a = allocF32(im, n2)
	k.x = allocF32(im, k.n)
	k.tmp = allocF32(im, k.n)
	k.y = allocF32(im, k.n)
	initNoise(im, k.a, n2, -1, 1, rng)
	initNoise(im, k.x, k.n, -1, 1, rng)
	k.annot = annotate(approx.Range{Base: k.a, Size: uint64(n2) * 4})
}

func (k *atax) Program(phase, w int, ctx *core.Ctx) iter.Seq[core.Op] {
	if phase == 0 {
		return rowDotProgram(ctx, k.n, w, k.a, k.x, k.tmp, false)
	}
	return colDotProgram(ctx, k.n, w, k.a, k.tmp, k.y)
}

func (k *atax) Output(im *memimage.Image) []float32 {
	return im.ReadF32Slice(k.y, k.n)
}

func (k *atax) Annotations() *approx.Annotations { return k.annot }

// ---- BICG (Polybench): s = A^T * r; q = A * p ---------------------------

type bicg struct {
	n             int
	a, r, p, s, q uint64
	annot         *approx.Annotations
}

func (k *bicg) Name() string     { return "BICG" }
func (k *bicg) MemBytes() uint64 { return uint64(k.n*k.n+4*k.n)*4 + 4096 }
func (k *bicg) Phases() int      { return 2 }
func (k *bicg) NumWarps(int) int { return k.n }

func (k *bicg) Setup(im *memimage.Image, rng *rand.Rand) {
	n2 := k.n * k.n
	k.a = allocF32(im, n2)
	k.r = allocF32(im, k.n)
	k.p = allocF32(im, k.n)
	k.s = allocF32(im, k.n)
	k.q = allocF32(im, k.n)
	initMixed(im, k.a, n2, 0.4, rng)
	initMixed(im, k.r, k.n, 0.4, rng)
	initMixed(im, k.p, k.n, 0.4, rng)
	k.annot = annotate(approx.Range{Base: k.a, Size: uint64(n2) * 4})
}

func (k *bicg) Program(phase, w int, ctx *core.Ctx) iter.Seq[core.Op] {
	if phase == 0 {
		return colDotProgram(ctx, k.n, w, k.a, k.r, k.s)
	}
	return rowDotProgram(ctx, k.n, w, k.a, k.p, k.q, false)
}

func (k *bicg) Output(im *memimage.Image) []float32 {
	out := im.ReadF32Slice(k.s, k.n)
	return append(out, im.ReadF32Slice(k.q, k.n)...)
}

func (k *bicg) Annotations() *approx.Annotations { return k.annot }
