package workloads

import (
	"iter"
	"math/rand"

	"lazydram/internal/approx"
	"lazydram/internal/core"
	"lazydram/internal/memimage"
	"lazydram/internal/sim"
)

func init() {
	register("SCP", func() sim.Kernel { return &scp{pairs: 2048, length: 512} })
	register("FWT", func() sim.Kernel { return &fwt{logN: 17} })
	register("SLA", func() sim.Kernel { return &sla{n: 1 << 19} })
}

// ---- SCP (CUDA SDK scalarProd): dot products of many vector pairs -------

type scp struct {
	pairs, length int
	a, b, out     uint64
	annot         *approx.Annotations
}

func (k *scp) Name() string { return "SCP" }
func (k *scp) MemBytes() uint64 {
	return uint64(2*k.pairs*k.length+k.pairs)*4 + 4096
}
func (k *scp) Phases() int      { return 1 }
func (k *scp) NumWarps(int) int { return k.pairs }

func (k *scp) Setup(im *memimage.Image, rng *rand.Rand) {
	n := k.pairs * k.length
	k.a = allocF32(im, n)
	k.b = allocF32(im, n)
	k.out = allocF32(im, k.pairs)
	initMixed(im, k.a, n, 0.5, rng)
	initMixed(im, k.b, n, 0.5, rng)
	k.annot = annotate(
		approx.Range{Base: k.a, Size: uint64(n) * 4},
		approx.Range{Base: k.b, Size: uint64(n) * 4},
	)
}

// Program: warp w accumulates the dot product of vector pair w. With
// thousands of concurrent streams and only 96 banks, the interleaving at the
// memory controller produces the low-RBL activations that give SCP its high
// Th_RBL sensitivity (Figure 11).
func (k *scp) Program(_, w int, ctx *core.Ctx) iter.Seq[core.Op] {
	return func(yield func(core.Op) bool) {
		base := w * k.length
		var acc [core.WarpSize]float32
		for c := 0; c < k.length; c += core.WarpSize {
			if !yield(ctx.Async(ctx.LoadSeq32(0, k.a, base+c, core.WarpSize))) {
				return
			}
			if !yield(ctx.Async(ctx.LoadSeq32(1, k.b, base+c, core.WarpSize))) {
				return
			}
			if !yield(ctx.Join()) {
				return
			}
			for l := 0; l < core.WarpSize; l++ {
				acc[l] += ctx.F32(0, l) * ctx.F32(1, l)
			}
			if !yield(ctx.Compute(2)) {
				return
			}
		}
		sum := float32(0)
		for l := 0; l < core.WarpSize; l++ {
			sum += acc[l]
		}
		if !yield(ctx.Compute(10)) {
			return
		}
		yield(ctx.StoreSeqF32(k.out, w, []float32{sum}, 1))
	}
}

func (k *scp) Output(im *memimage.Image) []float32 {
	return im.ReadF32Slice(k.out, k.pairs)
}

func (k *scp) Annotations() *approx.Annotations { return k.annot }

// ---- FWT (CUDA SDK fastWalshTransform) ----------------------------------

type fwt struct {
	logN  int
	data  uint64
	annot *approx.Annotations
}

func (k *fwt) n() int           { return 1 << k.logN }
func (k *fwt) Name() string     { return "FWT" }
func (k *fwt) MemBytes() uint64 { return uint64(k.n())*4 + 4096 }

// Phases: one per butterfly stage; stage s pairs elements stride 2^s apart
// and every stage depends on the previous one.
func (k *fwt) Phases() int      { return k.logN }
func (k *fwt) NumWarps(int) int { return k.n() / (2 * core.WarpSize) }

func (k *fwt) Setup(im *memimage.Image, rng *rand.Rand) {
	k.data = allocF32(im, k.n())
	initNoise(im, k.data, k.n(), -1, 1, rng)
	k.annot = annotate(approx.Range{Base: k.data, Size: uint64(k.n()) * 4})
}

// Program: warp w of stage processes pair indices p = w*32 .. w*32+31.
// For pair p with stride st: i = 2*(p &^ (st-1)) + (p & (st-1)), j = i + st.
// Small strides scatter lanes within lines; large strides produce two widely
// separated streams — the row-thrashing butterfly shape.
func (k *fwt) Program(stage, w int, ctx *core.Ctx) iter.Seq[core.Op] {
	return func(yield func(core.Op) bool) {
		st := 1 << stage
		var ii, jj [core.WarpSize]int
		for l := 0; l < core.WarpSize; l++ {
			p := w*core.WarpSize + l
			i := 2*(p&^(st-1)) + (p & (st - 1))
			ii[l] = i
			jj[l] = i + st
		}
		if !yield(ctx.Async(ctx.LoadGather32(0, k.data, ii[:], core.WarpSize))) {
			return
		}
		if !yield(ctx.Async(ctx.LoadGather32(1, k.data, jj[:], core.WarpSize))) {
			return
		}
		if !yield(ctx.Join()) {
			return
		}
		var sums, diffs [core.WarpSize]float32
		for l := 0; l < core.WarpSize; l++ {
			a, b := ctx.F32(0, l), ctx.F32(1, l)
			sums[l] = a + b
			diffs[l] = a - b
		}
		if !yield(ctx.Compute(2)) {
			return
		}
		if !yield(ctx.StoreScatterF32(k.data, ii[:], sums[:], core.WarpSize)) {
			return
		}
		yield(ctx.StoreScatterF32(k.data, jj[:], diffs[:], core.WarpSize))
	}
}

func (k *fwt) Output(im *memimage.Image) []float32 {
	// The transform is large; compare a strided sample of the result.
	return sampleF32(im, k.data, k.n(), 4096)
}

func (k *fwt) Annotations() *approx.Annotations { return k.annot }

// ---- SLA (CUDA SDK scanLargeArray): hierarchical prefix scan -------------

// slaChunk is the elements scanned per warp (each thread handles several
// elements via float4-style vector loads, as in the CUDA SDK kernel). The
// resulting 4-line bursts per join give SLA its streaming, relatively
// row-friendly access shape.
const slaChunk = 512

// sla mirrors the CUDA SDK scan: warp-sized blocks scan locally while their
// totals are reduced through a two-level auxiliary hierarchy, then offsets
// are propagated back down.
type sla struct {
	n          int
	data, out  uint64
	aux1, aux2 uint64
	annot      *approx.Annotations
}

func (k *sla) blocks() int      { return k.n / slaChunk }
func (k *sla) superBlocks() int { return ceilDiv(k.blocks(), core.WarpSize) }

func (k *sla) Name() string { return "SLA" }
func (k *sla) MemBytes() uint64 {
	return uint64(2*k.n+k.blocks()+k.superBlocks()*core.WarpSize)*4 + 4096
}

// Phases: block scan, super-block scan, top scan, offset add (two levels).
func (k *sla) Phases() int { return 5 }

func (k *sla) NumWarps(phase int) int {
	switch phase {
	case 0, 4:
		return k.blocks()
	case 1, 3:
		return k.superBlocks()
	default:
		return 1
	}
}

func (k *sla) Setup(im *memimage.Image, rng *rand.Rand) {
	k.data = allocF32(im, k.n)
	k.out = allocF32(im, k.n)
	k.aux1 = allocF32(im, k.blocks())
	k.aux2 = allocF32(im, k.superBlocks()*core.WarpSize)
	initNoise(im, k.data, k.n, 0, 1, rng)
	k.annot = annotate(approx.Range{Base: k.data, Size: uint64(k.n) * 4})
}

func (k *sla) Program(phase, w int, ctx *core.Ctx) iter.Seq[core.Op] {
	switch phase {
	case 0:
		// Block scan: warp w scans its slaChunk elements in 4-line bursts,
		// storing the inclusive prefix and the block total.
		return k.blockScan(ctx, w)
	case 1:
		// Super-block scan over aux1 (32 block totals per warp).
		return scanChunk32(ctx, k.aux1, k.aux1, k.aux2, w)
	case 2:
		// Top-level scan of aux2 by a single warp (small, serial).
		return k.topScan(ctx)
	case 3:
		// Propagate aux2 offsets into aux1.
		return addChunkOffset(ctx, k.aux2, k.aux1, w, core.WarpSize)
	default:
		// Propagate aux1 offsets into out: aux1[b] now holds the exclusive
		// offset of block b.
		return addBlockOffset(ctx, k.aux1, k.out, w)
	}
}

// blockScan scans slaChunk consecutive elements: per iteration it pulls four
// consecutive lines with async loads (the float4+unroll shape of the CUDA
// SDK kernel), computes the running prefix, and streams the result out.
func (k *sla) blockScan(ctx *core.Ctx, w int) iter.Seq[core.Op] {
	return func(yield func(core.Op) bool) {
		base := w * slaChunk
		running := float32(0)
		const burst = 4 * core.WarpSize
		var pref [core.WarpSize]float32
		for c := 0; c < slaChunk; c += burst {
			for r := 0; r < 4; r++ {
				if !yield(ctx.Async(ctx.LoadSeq32(r, k.data, base+c+r*core.WarpSize, core.WarpSize))) {
					return
				}
			}
			if !yield(ctx.Join()) {
				return
			}
			for r := 0; r < 4; r++ {
				for l := 0; l < core.WarpSize; l++ {
					running += ctx.F32(r, l)
					pref[l] = running
				}
				if !yield(ctx.Compute(6)) {
					return
				}
				if !yield(ctx.StoreSeqF32(k.out, base+c+r*core.WarpSize, pref[:], core.WarpSize)) {
					return
				}
			}
		}
		yield(ctx.StoreSeqF32(k.aux1, w, []float32{running}, 1))
	}
}

// scanChunk32 exclusively scans 32 consecutive elements of src into dst and
// writes the chunk total to sums[w].
func scanChunk32(ctx *core.Ctx, src, dst, sums uint64, w int) iter.Seq[core.Op] {
	return func(yield func(core.Op) bool) {
		if !yield(ctx.LoadSeq32(0, src, w*core.WarpSize, core.WarpSize)) {
			return
		}
		running := float32(0)
		var pref [core.WarpSize]float32
		for l := 0; l < core.WarpSize; l++ {
			pref[l] = running
			running += ctx.F32(0, l)
		}
		if !yield(ctx.Compute(12)) { // log-step shared-memory scan
			return
		}
		if !yield(ctx.StoreSeqF32(dst, w*core.WarpSize, pref[:], core.WarpSize)) {
			return
		}
		yield(ctx.StoreSeqF32(sums, w, []float32{running}, 1))
	}
}

// topScan: one warp serially scans the top-level totals into exclusive
// offsets.
func (k *sla) topScan(ctx *core.Ctx) iter.Seq[core.Op] {
	return func(yield func(core.Op) bool) {
		n := k.superBlocks()
		running := float32(0)
		var excl [core.WarpSize]float32
		for c := 0; c < n; c += core.WarpSize {
			lanes := n - c
			if lanes > core.WarpSize {
				lanes = core.WarpSize
			}
			if !yield(ctx.LoadSeq32(0, k.aux2, c, lanes)) {
				return
			}
			for l := 0; l < lanes; l++ {
				excl[l] = running
				running += ctx.F32(0, l)
			}
			if !yield(ctx.Compute(12)) {
				return
			}
			if !yield(ctx.StoreSeqF32(k.aux2, c, excl[:], lanes)) {
				return
			}
		}
	}
}

// addChunkOffset adds offsets[w] to the 32-element chunk w of dst.
func addChunkOffset(ctx *core.Ctx, offsets, dst uint64, w, chunk int) iter.Seq[core.Op] {
	return func(yield func(core.Op) bool) {
		if !yield(ctx.Async(ctx.LoadSeq32(1, offsets, w, 1))) {
			return
		}
		if !yield(ctx.Async(ctx.LoadSeq32(0, dst, w*chunk, chunk))) {
			return
		}
		if !yield(ctx.Join()) {
			return
		}
		off := ctx.F32(1, 0)
		var vals [core.WarpSize]float32
		for l := 0; l < chunk && l < core.WarpSize; l++ {
			vals[l] = ctx.F32(0, l) + off
		}
		if !yield(ctx.Compute(1)) {
			return
		}
		yield(ctx.StoreSeqF32(dst, w*chunk, vals[:], chunk))
	}
}

// addBlockOffset adds aux[w] to the whole slaChunk block w of dst, streaming
// in 4-line bursts like blockScan.
func addBlockOffset(ctx *core.Ctx, offsets, dst uint64, w int) iter.Seq[core.Op] {
	return func(yield func(core.Op) bool) {
		if !yield(ctx.LoadSeq32(4, offsets, w, 1)) {
			return
		}
		off := ctx.F32(4, 0)
		base := w * slaChunk
		const burst = 4 * core.WarpSize
		var vals [core.WarpSize]float32
		for c := 0; c < slaChunk; c += burst {
			for r := 0; r < 4; r++ {
				if !yield(ctx.Async(ctx.LoadSeq32(r, dst, base+c+r*core.WarpSize, core.WarpSize))) {
					return
				}
			}
			if !yield(ctx.Join()) {
				return
			}
			for r := 0; r < 4; r++ {
				for l := 0; l < core.WarpSize; l++ {
					vals[l] = ctx.F32(r, l) + off
				}
				if !yield(ctx.Compute(1)) {
					return
				}
				if !yield(ctx.StoreSeqF32(dst, base+c+r*core.WarpSize, vals[:], core.WarpSize)) {
					return
				}
			}
		}
	}
}

func (k *sla) Output(im *memimage.Image) []float32 {
	// Sample the scanned array to keep comparisons cheap.
	return sampleF32(im, k.out, k.n, 4096)
}

func (k *sla) Annotations() *approx.Annotations { return k.annot }
