package workloads

import (
	"fmt"
	"io"
	"iter"
	"math"
	"math/rand"

	"lazydram/internal/approx"
	"lazydram/internal/core"
	"lazydram/internal/memimage"
	"lazydram/internal/sim"
)

func init() {
	register("meanfilter", func() sim.Kernel {
		return &meanFilter{imageKernel{h: 512, w: 512}}
	})
	register("laplacian", func() sim.Kernel {
		return &laplacian{imageKernel{h: 512, w: 512}}
	})
}

// synthImage renders a deterministic synthetic photograph-like scene:
// a vignetted gradient sky, soft disks, and mild texture. Pixel values are
// in [0, 255]. Neighbouring pixels correlate strongly, which is what gives
// the image-processing applications their error tolerance under nearest-line
// value prediction.
func synthImage(im *memimage.Image, base uint64, h, w int, rng *rand.Rand) {
	type disk struct{ cx, cy, r, v float64 }
	disks := make([]disk, 6)
	for i := range disks {
		disks[i] = disk{
			cx: rng.Float64() * float64(w),
			cy: rng.Float64() * float64(h),
			r:  (0.05 + 0.2*rng.Float64()) * float64(w),
			v:  40 + 140*rng.Float64(),
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 60 + 120*float64(y)/float64(h) // sky gradient
			for _, d := range disks {
				dx, dy := float64(x)-d.cx, float64(y)-d.cy
				dist := math.Sqrt(dx*dx + dy*dy)
				if dist < d.r {
					// soft-edged disk
					t := dist / d.r
					v = v*(t*t) + d.v*(1-t*t)
				}
			}
			v += 6 * math.Sin(float64(x)/9) * math.Cos(float64(y)/11) // texture
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			im.WriteF32(base+uint64(4*(y*w+x)), float32(v))
		}
	}
}

// WritePGM encodes a float32 grayscale image (values clamped to [0,255]) as
// a binary PGM, the format used to inspect the Fig. 14 outputs.
func WritePGM(w io.Writer, pix []float32, width, height int) error {
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", width, height); err != nil {
		return err
	}
	buf := make([]byte, len(pix))
	for i, v := range pix {
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		buf[i] = byte(v)
	}
	_, err := w.Write(buf)
	return err
}

// filter3x3 is the shared 3x3 image-filter warp program: each warp produces
// 32 consecutive interior pixels of one row.
func filter3x3(ctx *core.Ctx, h, w, warp int, in, out uint64,
	kern *[3][3]float32, post func(float32) float32) iter.Seq[core.Op] {
	return func(yield func(core.Op) bool) {
		wpr := ceilDiv(w-2, core.WarpSize)
		y := warp/wpr + 1
		x0 := (warp%wpr)*core.WarpSize + 1
		lanes := w - 1 - x0
		if lanes > core.WarpSize {
			lanes = core.WarpSize
		}
		var acc [core.WarpSize]float32
		for dy := -1; dy <= 1; dy++ {
			base := (y+dy)*w + x0
			if !yield(ctx.Async(ctx.LoadSeq32(0, in, base-1, lanes))) {
				return
			}
			if !yield(ctx.Async(ctx.LoadSeq32(1, in, base, lanes))) {
				return
			}
			if !yield(ctx.Async(ctx.LoadSeq32(2, in, base+1, lanes))) {
				return
			}
			if !yield(ctx.Join()) {
				return
			}
			kr := kern[dy+1]
			for l := 0; l < lanes; l++ {
				acc[l] += kr[0]*ctx.F32(0, l) + kr[1]*ctx.F32(1, l) + kr[2]*ctx.F32(2, l)
			}
			if !yield(ctx.Compute(6)) {
				return
			}
		}
		for l := 0; l < lanes; l++ {
			acc[l] = post(acc[l])
		}
		if !yield(ctx.Compute(2)) {
			return
		}
		yield(ctx.StoreSeqF32(out, y*w+x0, acc[:], lanes))
	}
}

func clamp255(v float32) float32 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

// imageKernel is the shared state of the two image filters.
type imageKernel struct {
	h, w    int
	in, out uint64
	annot   *approx.Annotations
}

func (k *imageKernel) MemBytes() uint64 { return uint64(2*k.h*k.w)*4 + 4096 }
func (k *imageKernel) Phases() int      { return 1 }

func (k *imageKernel) NumWarps(int) int {
	return (k.h - 2) * ceilDiv(k.w-2, core.WarpSize)
}

func (k *imageKernel) Setup(im *memimage.Image, rng *rand.Rand) {
	n := k.h * k.w
	k.in = allocF32(im, n)
	k.out = allocF32(im, n)
	synthImage(im, k.in, k.h, k.w, rng)
	k.annot = annotate(approx.Range{Base: k.in, Size: uint64(n) * 4})
}

func (k *imageKernel) Output(im *memimage.Image) []float32 {
	return im.ReadF32Slice(k.out, k.h*k.w)
}

func (k *imageKernel) Annotations() *approx.Annotations { return k.annot }

// Dims returns the image geometry (used by the Fig. 14 harness).
func (k *imageKernel) Dims() (w, h int) { return k.w, k.h }

// ---- meanfilter (AxBench: 3x3 noise-reduction convolution) ---------------

type meanFilter struct{ imageKernel }

var meanKernel = [3][3]float32{
	{1. / 9, 1. / 9, 1. / 9},
	{1. / 9, 1. / 9, 1. / 9},
	{1. / 9, 1. / 9, 1. / 9},
}

func (k *meanFilter) Name() string { return "meanfilter" }

func (k *meanFilter) Program(_, w int, ctx *core.Ctx) iter.Seq[core.Op] {
	return filter3x3(ctx, k.h, k.w, w, k.in, k.out, &meanKernel, clamp255)
}

// ---- laplacian (AxBench: image sharpening) -------------------------------

type laplacian struct{ imageKernel }

var laplacianKernel = [3][3]float32{
	{0, -1, 0},
	{-1, 5, -1},
	{0, -1, 0},
}

func (k *laplacian) Name() string { return "laplacian" }

func (k *laplacian) Program(_, w int, ctx *core.Ctx) iter.Seq[core.Op] {
	return filter3x3(ctx, k.h, k.w, w, k.in, k.out, &laplacianKernel, clamp255)
}
