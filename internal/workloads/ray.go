package workloads

import (
	"iter"
	"math"
	"math/rand"

	"lazydram/internal/approx"
	"lazydram/internal/core"
	"lazydram/internal/memimage"
	"lazydram/internal/sim"
)

func init() {
	register("RAY", func() sim.Kernel {
		return &ray{w: 256, h: 256, spheres: 24, envSize: 1 << 20, bounces: 3}
	})
}

// ray is a simplified sphere-scene ray tracer: each pixel's ray is bounced
// off analytic spheres (sphere parameters live in a small, cache-resident
// table) and, when it escapes, shaded from a large environment map indexed
// by ray direction — a data-dependent gather over megabytes, which is where
// RAY's row thrashing comes from. The heavy per-bounce arithmetic gives it
// the high delay tolerance of Table II.
type ray struct {
	w, h, spheres, envSize, bounces int

	sph   uint64 // 8 floats per sphere: cx cy cz r, albedo, emit, pad, pad
	env   uint64
	pix   uint64
	annot *approx.Annotations
}

func (k *ray) Name() string { return "RAY" }
func (k *ray) MemBytes() uint64 {
	return uint64(8*k.spheres+k.envSize+k.w*k.h)*4 + 4096
}
func (k *ray) Phases() int      { return 1 }
func (k *ray) NumWarps(int) int { return k.w * k.h / core.WarpSize }

func (k *ray) Setup(im *memimage.Image, rng *rand.Rand) {
	k.sph = allocF32(im, 8*k.spheres)
	k.env = allocF32(im, k.envSize)
	k.pix = allocF32(im, k.w*k.h)
	for s := 0; s < k.spheres; s++ {
		base := k.sph + uint64(32*s)
		im.WriteF32(base+0, float32((rng.Float64()-0.5)*6))
		im.WriteF32(base+4, float32((rng.Float64()-0.5)*6))
		im.WriteF32(base+8, float32(4+rng.Float64()*8))
		im.WriteF32(base+12, float32(0.4+rng.Float64()*0.9))
		im.WriteF32(base+16, float32(0.3+0.6*rng.Float64())) // albedo
		im.WriteF32(base+20, float32(rng.Float64()*0.4))     // emission
	}
	// Smooth environment map: a sky-like luminance field.
	initSmooth(im, k.env, k.envSize, rng)
	k.annot = annotate(approx.Range{Base: k.env, Size: uint64(k.envSize) * 4})
}

// envIndex maps a direction to an environment-map texel.
func (k *ray) envIndex(d [3]float64) int {
	u := math.Atan2(d[1], d[0])/(2*math.Pi) + 0.5
	v := math.Acos(clampF(d[2], -1, 1)) / math.Pi
	side := int(math.Sqrt(float64(k.envSize)))
	x := int(u * float64(side-1))
	y := int(v * float64(side-1))
	return y*side + x
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (k *ray) Program(_, w int, ctx *core.Ctx) iter.Seq[core.Op] {
	return func(yield func(core.Op) bool) {
		p0 := w * core.WarpSize
		var o, d [core.WarpSize][3]float64
		var lum, atten [core.WarpSize]float64
		var alive [core.WarpSize]bool
		for l := 0; l < core.WarpSize; l++ {
			p := p0 + l
			px, py := p%k.w, p/k.w
			o[l] = [3]float64{0, 0, -2}
			dir := [3]float64{
				(float64(px)/float64(k.w) - 0.5) * 1.6,
				(float64(py)/float64(k.h) - 0.5) * 1.6,
				1,
			}
			n := math.Sqrt(dot(dir, dir))
			d[l] = [3]float64{dir[0] / n, dir[1] / n, dir[2] / n}
			atten[l] = 1
			alive[l] = true
		}
		if !yield(ctx.Compute(12)) {
			return
		}
		var envIdx [core.WarpSize]int
		for b := 0; b < k.bounces; b++ {
			// Intersect every sphere; the table is tiny and L1 resident
			// after the first warp.
			type hit struct {
				t      float64
				sphere int
			}
			var hits [core.WarpSize]hit
			for l := range hits {
				hits[l].t = math.Inf(1)
				hits[l].sphere = -1
			}
			for s := 0; s < k.spheres; s++ {
				if !yield(ctx.LoadSeq32(0, k.sph, 8*s, 8)) {
					return
				}
				c := [3]float64{float64(ctx.F32(0, 0)), float64(ctx.F32(0, 1)), float64(ctx.F32(0, 2))}
				r := float64(ctx.F32(0, 3))
				for l := 0; l < core.WarpSize; l++ {
					if !alive[l] {
						continue
					}
					if t, ok := sphereHit(o[l], d[l], c, r); ok && t < hits[l].t {
						hits[l] = hit{t: t, sphere: s}
					}
				}
				if !yield(ctx.Compute(18)) {
					return
				}
			}
			// Escaped rays sample the environment map: a 32-lane gather.
			anyEscape := false
			for l := 0; l < core.WarpSize; l++ {
				if alive[l] && hits[l].sphere < 0 {
					envIdx[l] = k.envIndex(d[l])
					anyEscape = true
				} else {
					envIdx[l] = 0
				}
			}
			if anyEscape {
				if !yield(ctx.LoadGather32(1, k.env, envIdx[:], core.WarpSize)) {
					return
				}
				for l := 0; l < core.WarpSize; l++ {
					if alive[l] && hits[l].sphere < 0 {
						lum[l] += atten[l] * float64(ctx.F32(1, l))
						alive[l] = false
					}
				}
			}
			// Bounce the surviving rays.
			for l := 0; l < core.WarpSize; l++ {
				if !alive[l] || hits[l].sphere < 0 {
					continue
				}
				s := hits[l].sphere
				// Re-derive the sphere from its deterministic parameters is
				// not possible here, so reflect using the last-loaded sphere
				// if it is the hit one; otherwise use the geometric normal
				// from the hit record computed below.
				_ = s
				t := hits[l].t
				for c := 0; c < 3; c++ {
					o[l][c] += d[l][c] * t
				}
				// Normal from the hit sphere's centre (recomputed from hit
				// point assumption: pushed slightly along the ray, we use
				// the incoming direction reflection about the radial axis).
				n := k.normalAt(hits[l].sphere, o[l])
				dn := 2 * dot(d[l], n)
				for c := 0; c < 3; c++ {
					d[l][c] -= dn * n[c]
				}
				lum[l] += atten[l] * 0.12 // surface emission share
				atten[l] *= 0.65
			}
			if !yield(ctx.Compute(30)) {
				return
			}
		}
		var out [core.WarpSize]float32
		for l := range out {
			out[l] = float32(lum[l])
		}
		yield(ctx.StoreSeqF32(k.pix, p0, out[:], core.WarpSize))
	}
}

// sphereCenters caches nothing: normals are recomputed from the hit point by
// normalizing the vector from the sphere centre, which the program derives
// from its own Setup-time parameters (the sphere table is deterministic given
// the seed, but the program must read it through memory to stay faithful;
// the normal uses the hit position relative to the loaded centre).
func (k *ray) normalAt(s int, p [3]float64) [3]float64 {
	// The centre was loaded into reg 0 when sphere s was the last tested; to
	// stay simple and deterministic we renormalize p against the origin-
	// centred approximation: the dominant term of the reflection.
	n := math.Sqrt(dot(p, p))
	if n == 0 {
		return [3]float64{0, 0, 1}
	}
	return [3]float64{p[0] / n, p[1] / n, p[2] / n}
}

// sphereHit returns the nearest positive intersection distance.
func sphereHit(o, d, c [3]float64, r float64) (float64, bool) {
	oc := [3]float64{o[0] - c[0], o[1] - c[1], o[2] - c[2]}
	b := dot(oc, d)
	disc := b*b - (dot(oc, oc) - r*r)
	if disc < 0 {
		return 0, false
	}
	sq := math.Sqrt(disc)
	t := -b - sq
	if t < 1e-6 {
		t = -b + sq
	}
	if t < 1e-6 {
		return 0, false
	}
	return t, true
}

func (k *ray) Output(im *memimage.Image) []float32 {
	return im.ReadF32Slice(k.pix, k.w*k.h)
}

func (k *ray) Annotations() *approx.Annotations { return k.annot }
