package workloads

import (
	"iter"
	"math/rand"

	"lazydram/internal/approx"
	"lazydram/internal/core"
	"lazydram/internal/memimage"
	"lazydram/internal/sim"
)

func init() {
	register("CONS", func() sim.Kernel { return &cons{n: 1 << 19} })
	register("3DCONV", func() sim.Kernel { return &conv3d{n: 64} })
	register("srad", func() sim.Kernel { return &srad{h: 512, w: 512} })
	register("LPS", func() sim.Kernel { return &lps{n: 64} })
}

// ---- CONS (Polybench/CUDA SDK 1D convolution) ---------------------------

// consTaps is the 9-tap filter applied by CONS.
var consTaps = [9]float32{0.02, 0.08, 0.16, 0.24, 0.28, 0.12, 0.06, 0.03, 0.01}

type cons struct {
	n      int
	x, out uint64
	annot  *approx.Annotations
}

func (k *cons) Name() string     { return "CONS" }
func (k *cons) MemBytes() uint64 { return uint64(2*k.n+64)*4 + 4096 }
func (k *cons) Phases() int      { return 1 }
func (k *cons) NumWarps(int) int { return k.n / core.WarpSize }

func (k *cons) Setup(im *memimage.Image, rng *rand.Rand) {
	k.x = allocF32(im, k.n+16)
	k.out = allocF32(im, k.n)
	initNoise(im, k.x, k.n+16, -1, 1, rng)
	k.annot = annotate(approx.Range{Base: k.x, Size: uint64(k.n+16) * 4})
}

func (k *cons) Program(_, w int, ctx *core.Ctx) iter.Seq[core.Op] {
	return func(yield func(core.Op) bool) {
		i0 := w * core.WarpSize
		// Two aligned loads cover the 32+8 inputs of this warp's window.
		if !yield(ctx.Async(ctx.LoadSeq32(0, k.x, i0, core.WarpSize))) {
			return
		}
		if !yield(ctx.Async(ctx.LoadSeq32(1, k.x, i0+core.WarpSize, 8))) {
			return
		}
		if !yield(ctx.Join()) {
			return
		}
		var win [core.WarpSize + 8]float32
		for l := 0; l < core.WarpSize; l++ {
			win[l] = ctx.F32(0, l)
		}
		for l := 0; l < 8; l++ {
			win[core.WarpSize+l] = ctx.F32(1, l)
		}
		var out [core.WarpSize]float32
		for l := 0; l < core.WarpSize; l++ {
			acc := float32(0)
			for t := 0; t < 9; t++ {
				acc += consTaps[t] * win[l+t]
			}
			out[l] = acc
		}
		if !yield(ctx.Compute(18)) {
			return
		}
		yield(ctx.StoreSeqF32(k.out, i0, out[:], core.WarpSize))
	}
}

func (k *cons) Output(im *memimage.Image) []float32 {
	return sampleF32(im, k.out, k.n, 4096)
}

func (k *cons) Annotations() *approx.Annotations { return k.annot }

// ---- 3DCONV (Polybench 3D convolution, 3x3x3) ---------------------------

type conv3d struct {
	n       int
	in, out uint64
	annot   *approx.Annotations
}

func (k *conv3d) Name() string     { return "3DCONV" }
func (k *conv3d) MemBytes() uint64 { return uint64(2*k.n*k.n*k.n)*4 + 4096 }
func (k *conv3d) Phases() int      { return 1 }

// warpsPerRow covers the interior x range [1, n-2] in 32-lane slices.
func (k *conv3d) warpsPerRow() int { return ceilDiv(k.n-2, core.WarpSize) }

func (k *conv3d) NumWarps(int) int {
	return (k.n - 2) * (k.n - 2) * k.warpsPerRow()
}

func (k *conv3d) Setup(im *memimage.Image, rng *rand.Rand) {
	n3 := k.n * k.n * k.n
	k.in = allocF32(im, n3)
	k.out = allocF32(im, n3)
	initMixed(im, k.in, n3, 0.3, rng)
	k.annot = annotate(approx.Range{Base: k.in, Size: uint64(n3) * 4})
}

// conv3dW holds the 27 filter weights indexed by (dz+1, dy+1, dx+1).
var conv3dW = func() (w [3][3][3]float32) {
	c := [3]float32{0.2, 0.5, 0.3}
	for z := 0; z < 3; z++ {
		for y := 0; y < 3; y++ {
			for x := 0; x < 3; x++ {
				w[z][y][x] = c[z] * c[y] * c[x]
			}
		}
	}
	return w
}()

// Program: the z+-1 neighbour planes are a full n*n*4-byte stride apart, so
// every output row touches three widely separated DRAM regions — the
// row-thrashing shape of the 3D stencils in Table II.
func (k *conv3d) Program(_, w int, ctx *core.Ctx) iter.Seq[core.Op] {
	return func(yield func(core.Op) bool) {
		n := k.n
		wpr := k.warpsPerRow()
		row := w / wpr
		z := row/(n-2) + 1
		y := row%(n-2) + 1
		x0 := (w%wpr)*core.WarpSize + 1
		lanes := n - 1 - x0
		if lanes > core.WarpSize {
			lanes = core.WarpSize
		}
		var acc [core.WarpSize]float32
		idx := func(zz, yy, xx int) int { return (zz*n+yy)*n + xx }
		for dz := -1; dz <= 1; dz++ {
			for dy := -1; dy <= 1; dy++ {
				base := idx(z+dz, y+dy, x0)
				if !yield(ctx.Async(ctx.LoadSeq32(0, k.in, base-1, lanes))) {
					return
				}
				if !yield(ctx.Async(ctx.LoadSeq32(1, k.in, base, lanes))) {
					return
				}
				if !yield(ctx.Async(ctx.LoadSeq32(2, k.in, base+1, lanes))) {
					return
				}
				if !yield(ctx.Join()) {
					return
				}
				wt := conv3dW[dz+1][dy+1]
				for l := 0; l < lanes; l++ {
					acc[l] += wt[0]*ctx.F32(0, l) + wt[1]*ctx.F32(1, l) + wt[2]*ctx.F32(2, l)
				}
				if !yield(ctx.Compute(6)) {
					return
				}
			}
		}
		yield(ctx.StoreSeqF32(k.out, idx(z, y, x0), acc[:], lanes))
	}
}

func (k *conv3d) Output(im *memimage.Image) []float32 {
	return sampleF32(im, k.out, k.n*k.n*k.n, 4096)
}

func (k *conv3d) Annotations() *approx.Annotations { return k.annot }

// ---- srad (Rodinia: speckle-reducing anisotropic diffusion) --------------

type srad struct {
	h, w    int
	in, out uint64
	annot   *approx.Annotations
}

func (k *srad) Name() string     { return "srad" }
func (k *srad) MemBytes() uint64 { return uint64(2*k.h*k.w)*4 + 4096 }
func (k *srad) Phases() int      { return 1 }

func (k *srad) warpsPerRow() int { return ceilDiv(k.w-2, core.WarpSize) }

func (k *srad) NumWarps(int) int { return (k.h - 2) * k.warpsPerRow() }

func (k *srad) Setup(im *memimage.Image, rng *rand.Rand) {
	n := k.h * k.w
	k.in = allocF32(im, n)
	k.out = allocF32(im, n)
	// Speckled (noisy, strictly positive) image: the diffusion coefficient
	// divides by the centre pixel, amplifying prediction errors — srad's low
	// error tolerance.
	initNoise(im, k.in, n, 0.2, 1.8, rng)
	k.annot = annotate(approx.Range{Base: k.in, Size: uint64(n) * 4})
}

func (k *srad) Program(_, w int, ctx *core.Ctx) iter.Seq[core.Op] {
	return func(yield func(core.Op) bool) {
		wpr := k.warpsPerRow()
		y := w/wpr + 1
		x0 := (w%wpr)*core.WarpSize + 1
		lanes := k.w - 1 - x0
		if lanes > core.WarpSize {
			lanes = core.WarpSize
		}
		i := y*k.w + x0
		if !yield(ctx.Async(ctx.LoadSeq32(0, k.in, i, lanes))) { // centre
			return
		}
		if !yield(ctx.Async(ctx.LoadSeq32(1, k.in, i-k.w, lanes))) { // north
			return
		}
		if !yield(ctx.Async(ctx.LoadSeq32(2, k.in, i+k.w, lanes))) { // south
			return
		}
		if !yield(ctx.Async(ctx.LoadSeq32(3, k.in, i-1, lanes))) { // west
			return
		}
		if !yield(ctx.Async(ctx.LoadSeq32(4, k.in, i+1, lanes))) { // east
			return
		}
		if !yield(ctx.Join()) {
			return
		}
		var out [core.WarpSize]float32
		const lambda = 0.2
		for l := 0; l < lanes; l++ {
			c := ctx.F32(0, l)
			d := ctx.F32(1, l) + ctx.F32(2, l) + ctx.F32(3, l) + ctx.F32(4, l) - 4*c
			r := d / c
			g := 1 / (1 + r*r) // diffusion coefficient
			out[l] = c + lambda*g*d
		}
		if !yield(ctx.Compute(25)) {
			return
		}
		yield(ctx.StoreSeqF32(k.out, i, out[:], lanes))
	}
}

func (k *srad) Output(im *memimage.Image) []float32 {
	return sampleF32(im, k.out, k.h*k.w, 4096)
}

func (k *srad) Annotations() *approx.Annotations { return k.annot }

// ---- LPS (CUDA SDK 3D Laplace solver, one Jacobi sweep) ------------------

type lps struct {
	n       int
	in, out uint64
	annot   *approx.Annotations
}

func (k *lps) Name() string     { return "LPS" }
func (k *lps) MemBytes() uint64 { return uint64(2*k.n*k.n*k.n)*4 + 4096 }
func (k *lps) Phases() int      { return 1 }

func (k *lps) warpsPerRow() int { return ceilDiv(k.n-2, core.WarpSize) }

func (k *lps) NumWarps(int) int {
	return (k.n - 2) * (k.n - 2) * k.warpsPerRow()
}

func (k *lps) Setup(im *memimage.Image, rng *rand.Rand) {
	n3 := k.n * k.n * k.n
	k.in = allocF32(im, n3)
	k.out = allocF32(im, n3)
	initSmooth(im, k.in, n3, rng)
	k.annot = annotate(approx.Range{Base: k.in, Size: uint64(n3) * 4})
}

func (k *lps) Program(_, w int, ctx *core.Ctx) iter.Seq[core.Op] {
	return func(yield func(core.Op) bool) {
		n := k.n
		wpr := k.warpsPerRow()
		row := w / wpr
		z := row/(n-2) + 1
		y := row%(n-2) + 1
		x0 := (w%wpr)*core.WarpSize + 1
		lanes := n - 1 - x0
		if lanes > core.WarpSize {
			lanes = core.WarpSize
		}
		i := (z*n+y)*n + x0
		if !yield(ctx.Async(ctx.LoadSeq32(0, k.in, i-1, lanes))) { // west
			return
		}
		if !yield(ctx.Async(ctx.LoadSeq32(1, k.in, i+1, lanes))) { // east
			return
		}
		if !yield(ctx.Async(ctx.LoadSeq32(2, k.in, i-n, lanes))) { // north
			return
		}
		if !yield(ctx.Async(ctx.LoadSeq32(3, k.in, i+n, lanes))) { // south
			return
		}
		if !yield(ctx.Async(ctx.LoadSeq32(4, k.in, i-n*n, lanes))) { // up
			return
		}
		if !yield(ctx.Async(ctx.LoadSeq32(5, k.in, i+n*n, lanes))) { // down
			return
		}
		if !yield(ctx.Join()) {
			return
		}
		var out [core.WarpSize]float32
		for l := 0; l < lanes; l++ {
			out[l] = (ctx.F32(0, l) + ctx.F32(1, l) + ctx.F32(2, l) +
				ctx.F32(3, l) + ctx.F32(4, l) + ctx.F32(5, l)) / 6
		}
		if !yield(ctx.Compute(7)) {
			return
		}
		yield(ctx.StoreSeqF32(k.out, i, out[:], lanes))
	}
}

func (k *lps) Output(im *memimage.Image) []float32 {
	return sampleF32(im, k.out, k.n*k.n*k.n, 4096)
}

func (k *lps) Annotations() *approx.Annotations { return k.annot }
