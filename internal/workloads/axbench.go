package workloads

import (
	"iter"
	"math"
	"math/rand"

	"lazydram/internal/approx"
	"lazydram/internal/core"
	"lazydram/internal/memimage"
	"lazydram/internal/sim"
)

func init() {
	register("inversek2j", func() sim.Kernel { return &inversek2j{n: 1 << 18} })
	register("newtonraph", func() sim.Kernel { return &newtonraph{n: 1 << 18} })
	register("blackscholes", func() sim.Kernel { return &blackscholes{n: 1 << 18} })
	register("jmein", func() sim.Kernel { return &jmein{rays: 1 << 15, tris: 1 << 15, testsPerRay: 24} })
}

// ---- inversek2j (AxBench: 2-joint arm inverse kinematics) ----------------

type inversek2j struct {
	n              int
	x, y, th1, th2 uint64
	annot          *approx.Annotations
}

func (k *inversek2j) Name() string     { return "inversek2j" }
func (k *inversek2j) MemBytes() uint64 { return uint64(4*k.n)*4 + 4096 }
func (k *inversek2j) Phases() int      { return 1 }
func (k *inversek2j) NumWarps(int) int { return k.n / core.WarpSize }

const ik2jL1, ik2jL2 = 0.5, 0.5

func (k *inversek2j) Setup(im *memimage.Image, rng *rand.Rand) {
	k.x = allocF32(im, k.n)
	k.y = allocF32(im, k.n)
	k.th1 = allocF32(im, k.n)
	k.th2 = allocF32(im, k.n)
	// Smooth end-effector trajectory inside the reachable annulus.
	phase := rng.Float64()
	for i := 0; i < k.n; i++ {
		t := float64(i) / 500
		r := 0.45 + 0.4*math.Abs(math.Sin(t/7+phase))
		a := t/3 + phase
		im.WriteF32(k.x+uint64(4*i), float32(r*math.Cos(a)))
		im.WriteF32(k.y+uint64(4*i), float32(r*math.Sin(a)))
	}
	k.annot = annotate(
		approx.Range{Base: k.x, Size: uint64(k.n) * 4},
		approx.Range{Base: k.y, Size: uint64(k.n) * 4},
	)
}

func (k *inversek2j) Program(_, w int, ctx *core.Ctx) iter.Seq[core.Op] {
	return func(yield func(core.Op) bool) {
		i0 := w * core.WarpSize
		if !yield(ctx.Async(ctx.LoadSeq32(0, k.x, i0, core.WarpSize))) {
			return
		}
		if !yield(ctx.Async(ctx.LoadSeq32(1, k.y, i0, core.WarpSize))) {
			return
		}
		if !yield(ctx.Join()) {
			return
		}
		var t1, t2 [core.WarpSize]float32
		for l := 0; l < core.WarpSize; l++ {
			x := float64(ctx.F32(0, l))
			y := float64(ctx.F32(1, l))
			c2 := (x*x + y*y - ik2jL1*ik2jL1 - ik2jL2*ik2jL2) / (2 * ik2jL1 * ik2jL2)
			if c2 > 1 {
				c2 = 1
			}
			if c2 < -1 {
				c2 = -1
			}
			th2 := math.Acos(c2)
			th1 := math.Atan2(y, x) - math.Atan2(ik2jL2*math.Sin(th2), ik2jL1+ik2jL2*math.Cos(th2))
			t1[l] = float32(th1)
			t2[l] = float32(th2)
		}
		if !yield(ctx.Compute(40)) { // trig-heavy
			return
		}
		if !yield(ctx.StoreSeqF32(k.th1, i0, t1[:], core.WarpSize)) {
			return
		}
		yield(ctx.StoreSeqF32(k.th2, i0, t2[:], core.WarpSize))
	}
}

func (k *inversek2j) Output(im *memimage.Image) []float32 {
	out := sampleF32(im, k.th1, k.n, 4096)
	return append(out, sampleF32(im, k.th2, k.n, 4096)...)
}

func (k *inversek2j) Annotations() *approx.Annotations { return k.annot }

// ---- newtonraph (AxBench: Newton-Raphson equation solver) ----------------

type newtonraph struct {
	n       int
	a, root uint64
	annot   *approx.Annotations
}

func (k *newtonraph) Name() string     { return "newtonraph" }
func (k *newtonraph) MemBytes() uint64 { return uint64(2*k.n)*4 + 4096 }
func (k *newtonraph) Phases() int      { return 1 }
func (k *newtonraph) NumWarps(int) int { return k.n / core.WarpSize }

func (k *newtonraph) Setup(im *memimage.Image, rng *rand.Rand) {
	// Roots of exp(x) = a for a near 1: the solution ln(a) crosses zero, so
	// small input perturbations produce huge relative output errors — the
	// low error tolerance of Table II.
	k.a = allocF32(im, k.n)
	k.root = allocF32(im, k.n)
	initNoise(im, k.a, k.n, 0.5, 1.8, rng)
	k.annot = annotate(approx.Range{Base: k.a, Size: uint64(k.n) * 4})
}

func (k *newtonraph) Program(_, w int, ctx *core.Ctx) iter.Seq[core.Op] {
	return func(yield func(core.Op) bool) {
		i0 := w * core.WarpSize
		if !yield(ctx.LoadSeq32(0, k.a, i0, core.WarpSize)) {
			return
		}
		var x [core.WarpSize]float32
		for l := range x {
			x[l] = 0.5 // initial guess
		}
		for it := 0; it < 8; it++ {
			for l := 0; l < core.WarpSize; l++ {
				a := ctx.F32(0, l)
				// x <- x - (exp(x)-a)/exp(x)
				e := float32(math.Exp(float64(x[l])))
				x[l] = x[l] - (e-a)/e
			}
			if !yield(ctx.Compute(14)) {
				return
			}
		}
		yield(ctx.StoreSeqF32(k.root, i0, x[:], core.WarpSize))
	}
}

func (k *newtonraph) Output(im *memimage.Image) []float32 {
	return sampleF32(im, k.root, k.n, 4096)
}

func (k *newtonraph) Annotations() *approx.Annotations { return k.annot }

// ---- blackscholes (AxBench/PARSEC: European option pricing) --------------

type blackscholes struct {
	n               int
	s, strike, t, v uint64
	call, put       uint64
	annot           *approx.Annotations
}

func (k *blackscholes) Name() string     { return "blackscholes" }
func (k *blackscholes) MemBytes() uint64 { return uint64(6*k.n)*4 + 4096 }
func (k *blackscholes) Phases() int      { return 1 }
func (k *blackscholes) NumWarps(int) int { return k.n / core.WarpSize }

const bsRate = 0.02

func (k *blackscholes) Setup(im *memimage.Image, rng *rand.Rand) {
	k.s = allocF32(im, k.n)
	k.strike = allocF32(im, k.n)
	k.t = allocF32(im, k.n)
	k.v = allocF32(im, k.n)
	k.call = allocF32(im, k.n)
	k.put = allocF32(im, k.n)
	initNoise(im, k.s, k.n, 20, 120, rng)
	initNoise(im, k.strike, k.n, 20, 120, rng)
	initNoise(im, k.t, k.n, 0.1, 2.0, rng)
	initNoise(im, k.v, k.n, 0.1, 0.6, rng)
	k.annot = annotate(
		approx.Range{Base: k.s, Size: uint64(k.n) * 4},
		approx.Range{Base: k.strike, Size: uint64(k.n) * 4},
		approx.Range{Base: k.t, Size: uint64(k.n) * 4},
		approx.Range{Base: k.v, Size: uint64(k.n) * 4},
	)
}

// cnd is the cumulative normal distribution (Abramowitz-Stegun).
func cnd(x float64) float64 {
	l := math.Abs(x)
	k1 := 1 / (1 + 0.2316419*l)
	poly := k1 * (0.319381530 + k1*(-0.356563782+k1*(1.781477937+k1*(-1.821255978+k1*1.330274429))))
	w := 1 - 1/math.Sqrt(2*math.Pi)*math.Exp(-l*l/2)*poly
	if x < 0 {
		return 1 - w
	}
	return w
}

func (k *blackscholes) Program(_, w int, ctx *core.Ctx) iter.Seq[core.Op] {
	return func(yield func(core.Op) bool) {
		i0 := w * core.WarpSize
		if !yield(ctx.Async(ctx.LoadSeq32(0, k.s, i0, core.WarpSize))) {
			return
		}
		if !yield(ctx.Async(ctx.LoadSeq32(1, k.strike, i0, core.WarpSize))) {
			return
		}
		if !yield(ctx.Async(ctx.LoadSeq32(2, k.t, i0, core.WarpSize))) {
			return
		}
		if !yield(ctx.Async(ctx.LoadSeq32(3, k.v, i0, core.WarpSize))) {
			return
		}
		if !yield(ctx.Join()) {
			return
		}
		var call, put [core.WarpSize]float32
		for l := 0; l < core.WarpSize; l++ {
			s := float64(ctx.F32(0, l))
			x := float64(ctx.F32(1, l))
			t := float64(ctx.F32(2, l))
			v := float64(ctx.F32(3, l))
			sqrtT := math.Sqrt(t)
			d1 := (math.Log(s/x) + (bsRate+v*v/2)*t) / (v * sqrtT)
			d2 := d1 - v*sqrtT
			expRT := math.Exp(-bsRate * t)
			c := s*cnd(d1) - x*expRT*cnd(d2)
			call[l] = float32(c)
			put[l] = float32(c - s + x*expRT) // put-call parity
		}
		if !yield(ctx.Compute(80)) {
			return
		}
		if !yield(ctx.StoreSeqF32(k.call, i0, call[:], core.WarpSize)) {
			return
		}
		yield(ctx.StoreSeqF32(k.put, i0, put[:], core.WarpSize))
	}
}

func (k *blackscholes) Output(im *memimage.Image) []float32 {
	out := sampleF32(im, k.call, k.n, 4096)
	return append(out, sampleF32(im, k.put, k.n, 4096)...)
}

func (k *blackscholes) Annotations() *approx.Annotations { return k.annot }

// ---- jmein (AxBench: ray-triangle intersection detection) ----------------

type jmein struct {
	rays, tris, testsPerRay int

	ox, oy, oz, dx, dy, dz uint64
	tri                    uint64 // 9 floats per triangle (v0,v1,v2)
	dist                   uint64
	annot                  *approx.Annotations
}

func (k *jmein) Name() string { return "jmein" }
func (k *jmein) MemBytes() uint64 {
	return uint64(7*k.rays+9*k.tris)*4 + 4096
}
func (k *jmein) Phases() int      { return 1 }
func (k *jmein) NumWarps(int) int { return k.rays / core.WarpSize }

func (k *jmein) Setup(im *memimage.Image, rng *rand.Rand) {
	k.ox = allocF32(im, k.rays)
	k.oy = allocF32(im, k.rays)
	k.oz = allocF32(im, k.rays)
	k.dx = allocF32(im, k.rays)
	k.dy = allocF32(im, k.rays)
	k.dz = allocF32(im, k.rays)
	k.tri = allocF32(im, 9*k.tris)
	k.dist = allocF32(im, k.rays)
	for i := 0; i < k.rays; i++ {
		t := float64(i) / 300
		im.WriteF32(k.ox+uint64(4*i), float32(2*math.Cos(t)))
		im.WriteF32(k.oy+uint64(4*i), float32(2*math.Sin(t)))
		im.WriteF32(k.oz+uint64(4*i), float32(-3))
		d := [3]float64{0.3 * math.Sin(t/3), 0.3 * math.Cos(t/5), 1}
		n := math.Sqrt(d[0]*d[0] + d[1]*d[1] + d[2]*d[2])
		im.WriteF32(k.dx+uint64(4*i), float32(d[0]/n))
		im.WriteF32(k.dy+uint64(4*i), float32(d[1]/n))
		im.WriteF32(k.dz+uint64(4*i), float32(d[2]/n))
	}
	// Triangles scattered in a slab in front of the rays.
	for t := 0; t < k.tris; t++ {
		cx := (rng.Float64() - 0.5) * 8
		cy := (rng.Float64() - 0.5) * 8
		cz := rng.Float64() * 10
		base := k.tri + uint64(36*t)
		for v := 0; v < 3; v++ {
			im.WriteF32(base+uint64(12*v+0), float32(cx+(rng.Float64()-0.5)))
			im.WriteF32(base+uint64(12*v+4), float32(cy+(rng.Float64()-0.5)))
			im.WriteF32(base+uint64(12*v+8), float32(cz+(rng.Float64()-0.5)*0.3))
		}
	}
	k.annot = annotate(approx.Range{Base: k.tri, Size: uint64(9*k.tris) * 4})
}

// triOrder returns the pseudo-random triangle visited by warp w at step t —
// a stand-in for acceleration-structure traversal, producing the scattered
// read pattern that makes jmein thrash rows.
func (k *jmein) triOrder(w, t int) int {
	h := uint64(w)*0x9E3779B97F4A7C15 + uint64(t)*0xBF58476D1CE4E5B9
	h ^= h >> 31
	h *= 0x94D049BB133111EB
	h ^= h >> 29
	return int(h % uint64(k.tris))
}

func (k *jmein) Program(_, w int, ctx *core.Ctx) iter.Seq[core.Op] {
	return func(yield func(core.Op) bool) {
		i0 := w * core.WarpSize
		// Ray origin/direction, coalesced.
		for r, base := range []uint64{k.ox, k.oy, k.oz, k.dx, k.dy, k.dz} {
			if !yield(ctx.Async(ctx.LoadSeq32(r, base, i0, core.WarpSize))) {
				return
			}
		}
		if !yield(ctx.Join()) {
			return
		}
		var o, d [core.WarpSize][3]float64
		for l := 0; l < core.WarpSize; l++ {
			o[l] = [3]float64{float64(ctx.F32(0, l)), float64(ctx.F32(1, l)), float64(ctx.F32(2, l))}
			d[l] = [3]float64{float64(ctx.F32(3, l)), float64(ctx.F32(4, l)), float64(ctx.F32(5, l))}
		}
		var best [core.WarpSize]float32
		for l := range best {
			best[l] = 1e3 // miss sentinel
		}
		for t := 0; t < k.testsPerRay; t++ {
			ti := k.triOrder(w, t)
			if !yield(ctx.LoadSeq32(6, k.tri, 9*ti, 9)) {
				return
			}
			var v [9]float64
			for c := 0; c < 9; c++ {
				v[c] = float64(ctx.F32(6, c))
			}
			v0 := [3]float64{v[0], v[1], v[2]}
			e1 := [3]float64{v[3] - v[0], v[4] - v[1], v[5] - v[2]}
			e2 := [3]float64{v[6] - v[0], v[7] - v[1], v[8] - v[2]}
			for l := 0; l < core.WarpSize; l++ {
				if hit, dist := mollerTrumbore(o[l], d[l], v0, e1, e2); hit && float32(dist) < best[l] {
					best[l] = float32(dist)
				}
			}
			if !yield(ctx.Compute(25)) {
				return
			}
		}
		yield(ctx.StoreSeqF32(k.dist, i0, best[:], core.WarpSize))
	}
}

// mollerTrumbore intersects a ray with a triangle given one vertex and two
// edge vectors; it returns the hit distance along the ray.
func mollerTrumbore(o, d, v0, e1, e2 [3]float64) (bool, float64) {
	p := cross(d, e2)
	det := dot(e1, p)
	if math.Abs(det) < 1e-9 {
		return false, 0
	}
	inv := 1 / det
	tv := [3]float64{o[0] - v0[0], o[1] - v0[1], o[2] - v0[2]}
	u := dot(tv, p) * inv
	if u < 0 || u > 1 {
		return false, 0
	}
	q := cross(tv, e1)
	v := dot(d, q) * inv
	if v < 0 || u+v > 1 {
		return false, 0
	}
	t := dot(e2, q) * inv
	return t > 1e-6, t
}

func dot(a, b [3]float64) float64 { return a[0]*b[0] + a[1]*b[1] + a[2]*b[2] }

func cross(a, b [3]float64) [3]float64 {
	return [3]float64{
		a[1]*b[2] - a[2]*b[1],
		a[2]*b[0] - a[0]*b[2],
		a[0]*b[1] - a[1]*b[0],
	}
}

func (k *jmein) Output(im *memimage.Image) []float32 {
	return im.ReadF32Slice(k.dist, k.rays)
}

func (k *jmein) Annotations() *approx.Annotations { return k.annot }
