// Package workloads re-implements the paper's 20 GPGPU applications
// (Table II) as Go kernels for the simulator: real data, real arithmetic,
// and the same memory-access shapes as the originals, so that row-buffer
// behaviour and approximation-induced output error are both genuine.
//
// Every kernel is deterministic given the seed passed to Setup. Inputs are
// scaled so a full run finishes in seconds on a laptop while still issuing
// tens to hundreds of thousands of DRAM requests.
package workloads

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"lazydram/internal/approx"
	"lazydram/internal/memimage"
	"lazydram/internal/sim"
)

// Factory creates a fresh kernel instance.
type Factory func() sim.Kernel

var registry = map[string]Factory{}

// register adds a kernel factory; called from init functions of the kernel
// files.
func register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic("workloads: duplicate kernel " + name)
	}
	registry[name] = f
}

// New returns a fresh instance of the named kernel.
func New(name string) (sim.Kernel, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown kernel %q", name)
	}
	return f(), nil
}

// Names returns all registered kernel names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// All returns a fresh instance of every kernel, sorted by name.
func All() []sim.Kernel {
	var out []sim.Kernel
	for _, n := range Names() {
		k, _ := New(n)
		out = append(out, k)
	}
	return out
}

// Group returns the paper's evaluation group (1-4, Section V) for an app,
// or 0 if unknown.
func Group(name string) int { return paperGroups[name] }

// GroupApps returns the app names in the given paper group, sorted.
func GroupApps(g int) []string {
	var out []string
	for n, gg := range paperGroups {
		if gg == g {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// paperGroups reproduces the Group column of Table II.
var paperGroups = map[string]int{
	"LPS": 1, "BICG": 1, "SCP": 1,
	"MVT": 2, "jmein": 2, "3DCONV": 2,
	"RAY": 3, "inversek2j": 3, "3MM": 3, "meanfilter": 3, "laplacian": 3,
	"newtonraph": 4, "FWT": 4, "ATAX": 4, "CONS": 4, "srad": 4,
	"GEMM": 4, "blackscholes": 4, "2MM": 4, "SLA": 4,
}

// ErrorTolerant reports whether the app may run AMS per Table II (its error
// tolerance is medium or high, i.e. it is in groups 1-3).
func ErrorTolerant(name string) bool {
	g := paperGroups[name]
	return g >= 1 && g <= 3
}

// ---- shared helpers ---------------------------------------------------

// allocF32 reserves n float32 elements and returns the base address.
func allocF32(im *memimage.Image, n int) uint64 {
	return im.Alloc(uint64(n) * 4)
}

// initSmooth fills n elements starting at base with a smooth low-frequency
// signal: nearest-line value prediction approximates such data well (the
// paper's high-error-tolerance case).
func initSmooth(im *memimage.Image, base uint64, n int, rng *rand.Rand) {
	phase := rng.Float64() * math.Pi
	amp := 1 + rng.Float64()
	for i := 0; i < n; i++ {
		v := amp * (math.Sin(float64(i)/211+phase) + 0.5*math.Cos(float64(i)/57))
		im.WriteF32(base+uint64(4*i), float32(v+2.5))
	}
}

// initNoise fills n elements with white noise in [lo, hi): adjacent lines are
// uncorrelated, so value prediction produces large errors (the paper's
// low-error-tolerance case).
func initNoise(im *memimage.Image, base uint64, n int, lo, hi float64, rng *rand.Rand) {
	for i := 0; i < n; i++ {
		v := lo + rng.Float64()*(hi-lo)
		im.WriteF32(base+uint64(4*i), float32(v))
	}
}

// initMixed fills n elements with a smooth signal plus bounded noise — the
// medium-error-tolerance shape.
func initMixed(im *memimage.Image, base uint64, n int, noise float64, rng *rand.Rand) {
	for i := 0; i < n; i++ {
		v := math.Sin(float64(i)/97) + 1.5 + noise*(rng.Float64()-0.5)
		im.WriteF32(base+uint64(4*i), float32(v))
	}
}

// annotate builds an annotation set covering the given ranges with the
// paper's default 10% coverage cap.
func annotate(ranges ...approx.Range) *approx.Annotations {
	a := approx.NewAnnotations(0.10)
	for _, r := range ranges {
		a.Annotate(r.Base, r.Size)
	}
	return a
}

// sampleF32 reads up to maxSamples evenly spaced float32 values from the n
// elements starting at base; small buffers are read in full.
func sampleF32(im *memimage.Image, base uint64, n, maxSamples int) []float32 {
	step := n / maxSamples
	if step < 1 {
		step = 1
	}
	if step > 1 && step%2 == 0 {
		// An odd stride is coprime with the power-of-two row lengths of the
		// grid kernels, so samples sweep all row offsets instead of aliasing
		// onto one column (which for the stencils would sample only the
		// never-written boundary pixels).
		step++
	}
	out := make([]float32, 0, n/step+1)
	for i := 0; i < n; i += step {
		out = append(out, im.ReadF32(base+uint64(4*i)))
	}
	return out
}

// ceilDiv returns ceil(a/b).
func ceilDiv(a, b int) int { return (a + b - 1) / b }
