package workloads

import (
	"math"
	"math/rand"
	"testing"

	"lazydram/internal/core"
	"lazydram/internal/memimage"
	"lazydram/internal/sim"
)

// runKernel executes a kernel functionally and returns the image + output.
func runKernel(t *testing.T, k sim.Kernel, seed int64) (*memimage.Image, []float32) {
	t.Helper()
	im := memimage.New(k.MemBytes() + 4*memimage.LineSize)
	k.Setup(im, rand.New(rand.NewSource(seed)))
	var ctxOut []float32
	for ph := 0; ph < k.Phases(); ph++ {
		for w := 0; w < k.NumWarps(ph); w++ {
			ctx := &core.Ctx{}
			for op := range k.Program(ph, w, ctx) {
				sim.ApplyOp(im, ctx, op)
			}
		}
	}
	ctxOut = k.Output(im)
	return im, ctxOut
}

func approxEq(a, b float32, tol float64) bool {
	return math.Abs(float64(a)-float64(b)) <= tol*(1+math.Abs(float64(b)))
}

func TestRegistryHasAllTwentyApps(t *testing.T) {
	if got := len(Names()); got != 20 {
		t.Fatalf("registered %d apps, want 20", got)
	}
	for _, n := range Names() {
		if Group(n) < 1 || Group(n) > 4 {
			t.Fatalf("%s has no paper group", n)
		}
		k, err := New(n)
		if err != nil || k.Name() != n {
			t.Fatalf("New(%s) = %v, %v", n, k, err)
		}
	}
	if len(All()) != 20 {
		t.Fatal("All() incomplete")
	}
}

func TestGroupApps(t *testing.T) {
	total := 0
	for g := 1; g <= 4; g++ {
		total += len(GroupApps(g))
	}
	if total != 20 {
		t.Fatalf("groups cover %d apps, want 20", total)
	}
	if !ErrorTolerant("LPS") || ErrorTolerant("GEMM") {
		t.Fatal("ErrorTolerant misclassifies")
	}
}

func TestGEMMMatchesReference(t *testing.T) {
	k := &gemm{n: 64}
	im, out := runKernel(t, k, 3)
	n := k.n
	a := im.ReadF32Slice(k.a, n*n)
	b := im.ReadF32Slice(k.b, n*n)
	// C was overwritten; recompute the reference from fresh inputs.
	im2 := memimage.New(k.MemBytes() + 512)
	k2 := &gemm{n: 64}
	k2.Setup(im2, rand.New(rand.NewSource(3)))
	c0 := im2.ReadF32Slice(k2.c, n*n)
	for i := 0; i < n; i += 13 {
		for j := 0; j < n; j += 7 {
			var acc float32
			for kk := 0; kk < n; kk++ {
				acc += a[i*n+kk] * b[kk*n+j]
			}
			want := 1.5*acc + 0.8*c0[i*n+j]
			if !approxEq(out[i*n+j], want, 1e-4) {
				t.Fatalf("C[%d,%d] = %v, want %v", i, j, out[i*n+j], want)
			}
		}
	}
}

func TestTwoMMMatchesReference(t *testing.T) {
	k := &twoMM{n: 32}
	im, out := runKernel(t, k, 4)
	n := k.n
	a := im.ReadF32Slice(k.a, n*n)
	b := im.ReadF32Slice(k.b, n*n)
	c := im.ReadF32Slice(k.c, n*n)
	d := make([]float32, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for kk := 0; kk < n; kk++ {
				acc += a[i*n+kk] * b[kk*n+j]
			}
			d[i*n+j] = acc
		}
	}
	for i := 0; i < n; i += 5 {
		for j := 0; j < n; j += 3 {
			var acc float32
			for kk := 0; kk < n; kk++ {
				acc += d[i*n+kk] * c[kk*n+j]
			}
			if !approxEq(out[i*n+j], acc, 1e-3) {
				t.Fatalf("E[%d,%d] = %v, want %v", i, j, out[i*n+j], acc)
			}
		}
	}
}

func TestMVTMatchesReference(t *testing.T) {
	k := &mvt{n: 64}
	im, out := runKernel(t, k, 5)
	n := k.n
	a := im.ReadF32Slice(k.a, n*n)
	// Inputs y1/y2/x1/x2 from a fresh setup (x1/x2 were updated in place).
	im2 := memimage.New(k.MemBytes() + 512)
	k2 := &mvt{n: 64}
	k2.Setup(im2, rand.New(rand.NewSource(5)))
	y1 := im2.ReadF32Slice(k2.y1, n)
	y2 := im2.ReadF32Slice(k2.y2, n)
	x10 := im2.ReadF32Slice(k2.x1, n)
	for i := 0; i < n; i += 9 {
		var acc float32
		for j := 0; j < n; j++ {
			acc += a[i*n+j] * y1[j]
		}
		if want := acc + x10[i]; !approxEq(out[i], want, 1e-4) {
			t.Fatalf("x1[%d] = %v, want %v", i, out[i], want)
		}
	}
	for j := 0; j < n; j += 11 {
		var acc float32
		for i := 0; i < n; i++ {
			acc += a[i*n+j] * y2[i]
		}
		if !approxEq(out[n+j], acc, 1e-4) {
			t.Fatalf("x2[%d] = %v, want %v", j, out[n+j], acc)
		}
	}
}

func TestATAXMatchesReference(t *testing.T) {
	k := &atax{n: 64}
	im, out := runKernel(t, k, 6)
	n := k.n
	a := im.ReadF32Slice(k.a, n*n)
	x := im.ReadF32Slice(k.x, n)
	tmp := make([]float32, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			tmp[i] += a[i*n+j] * x[j]
		}
	}
	for j := 0; j < n; j += 7 {
		var acc float32
		for i := 0; i < n; i++ {
			acc += a[i*n+j] * tmp[i]
		}
		if !approxEq(out[j], acc, 1e-3) {
			t.Fatalf("y[%d] = %v, want %v", j, out[j], acc)
		}
	}
}

func TestBICGMatchesReference(t *testing.T) {
	k := &bicg{n: 64}
	im, out := runKernel(t, k, 7)
	n := k.n
	a := im.ReadF32Slice(k.a, n*n)
	r := im.ReadF32Slice(k.r, n)
	p := im.ReadF32Slice(k.p, n)
	for j := 0; j < n; j += 13 {
		var acc float32
		for i := 0; i < n; i++ {
			acc += a[i*n+j] * r[i]
		}
		if !approxEq(out[j], acc, 1e-4) {
			t.Fatalf("s[%d] = %v, want %v", j, out[j], acc)
		}
	}
	for i := 0; i < n; i += 11 {
		var acc float32
		for j := 0; j < n; j++ {
			acc += a[i*n+j] * p[j]
		}
		if !approxEq(out[n+i], acc, 1e-4) {
			t.Fatalf("q[%d] = %v, want %v", i, out[n+i], acc)
		}
	}
}

func TestSCPMatchesReference(t *testing.T) {
	k := &scp{pairs: 8, length: 64}
	im, out := runKernel(t, k, 8)
	a := im.ReadF32Slice(k.a, k.pairs*k.length)
	b := im.ReadF32Slice(k.b, k.pairs*k.length)
	for p := 0; p < k.pairs; p++ {
		var acc float32
		for c := 0; c < k.length; c++ {
			acc += a[p*k.length+c] * b[p*k.length+c]
		}
		if !approxEq(out[p], acc, 1e-4) {
			t.Fatalf("dot[%d] = %v, want %v", p, out[p], acc)
		}
	}
}

func TestFWTMatchesReference(t *testing.T) {
	k := &fwt{logN: 8}
	// Save the input before the in-place transform.
	imIn := memimage.New(k.MemBytes() + 512)
	kin := &fwt{logN: 8}
	kin.Setup(imIn, rand.New(rand.NewSource(9)))
	in := imIn.ReadF32Slice(kin.data, kin.n())
	im, _ := runKernel(t, k, 9)
	got := im.ReadF32Slice(k.data, k.n())
	// Reference Walsh-Hadamard transform.
	want := append([]float32(nil), in...)
	n := k.n()
	for st := 1; st < n; st *= 2 {
		for i := 0; i < n; i += 2 * st {
			for j := i; j < i+st; j++ {
				a, b := want[j], want[j+st]
				want[j], want[j+st] = a+b, a-b
			}
		}
	}
	for i := 0; i < n; i += 3 {
		if !approxEq(got[i], want[i], 1e-4) {
			t.Fatalf("fwt[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSLAComputesPrefixSum(t *testing.T) {
	k := &sla{n: 4 * slaChunk * 32} // 4 super-blocks
	imIn := memimage.New(k.MemBytes() + 512)
	kin := &sla{n: k.n}
	kin.Setup(imIn, rand.New(rand.NewSource(10)))
	in := imIn.ReadF32Slice(kin.data, kin.n)
	im, _ := runKernel(t, k, 10)
	got := im.ReadF32Slice(k.out, k.n)
	var run float64
	for i := 0; i < k.n; i++ {
		run += float64(in[i])
		if i%997 == 0 || i == k.n-1 {
			if math.Abs(float64(got[i])-run) > 1e-2*(1+math.Abs(run)) {
				t.Fatalf("scan[%d] = %v, want %v", i, got[i], run)
			}
		}
	}
}

func TestCONSMatchesReference(t *testing.T) {
	k := &cons{n: 1024}
	im, _ := runKernel(t, k, 11)
	x := im.ReadF32Slice(k.x, k.n+16)
	got := im.ReadF32Slice(k.out, k.n)
	for i := 0; i < k.n; i += 101 {
		var acc float32
		for t2 := 0; t2 < 9; t2++ {
			acc += consTaps[t2] * x[i+t2]
		}
		if !approxEq(got[i], acc, 1e-5) {
			t.Fatalf("out[%d] = %v, want %v", i, got[i], acc)
		}
	}
}

func TestLPSMatchesReference(t *testing.T) {
	k := &lps{n: 16}
	im, _ := runKernel(t, k, 12)
	n := k.n
	in := im.ReadF32Slice(k.in, n*n*n)
	got := im.ReadF32Slice(k.out, n*n*n)
	idx := func(z, y, x int) int { return (z*n+y)*n + x }
	for z := 1; z < n-1; z += 3 {
		for y := 1; y < n-1; y += 2 {
			for x := 1; x < n-1; x++ {
				want := (in[idx(z, y, x-1)] + in[idx(z, y, x+1)] +
					in[idx(z, y-1, x)] + in[idx(z, y+1, x)] +
					in[idx(z-1, y, x)] + in[idx(z+1, y, x)]) / 6
				if !approxEq(got[idx(z, y, x)], want, 1e-5) {
					t.Fatalf("lps[%d,%d,%d] = %v, want %v", z, y, x, got[idx(z, y, x)], want)
				}
			}
		}
	}
}

func Test3DCONVMatchesReference(t *testing.T) {
	k := &conv3d{n: 16}
	im, _ := runKernel(t, k, 13)
	n := k.n
	in := im.ReadF32Slice(k.in, n*n*n)
	got := im.ReadF32Slice(k.out, n*n*n)
	idx := func(z, y, x int) int { return (z*n+y)*n + x }
	for z := 1; z < n-1; z += 4 {
		for y := 1; y < n-1; y += 3 {
			for x := 1; x < n-1; x += 2 {
				var want float32
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							want += conv3dW[dz+1][dy+1][dx+1] * in[idx(z+dz, y+dy, x+dx)]
						}
					}
				}
				if !approxEq(got[idx(z, y, x)], want, 1e-4) {
					t.Fatalf("conv[%d,%d,%d] = %v, want %v", z, y, x, got[idx(z, y, x)], want)
				}
			}
		}
	}
}

func TestSradMatchesReference(t *testing.T) {
	k := &srad{h: 64, w: 64}
	im, _ := runKernel(t, k, 14)
	in := im.ReadF32Slice(k.in, k.h*k.w)
	got := im.ReadF32Slice(k.out, k.h*k.w)
	for y := 1; y < k.h-1; y += 7 {
		for x := 1; x < k.w-1; x += 5 {
			i := y*k.w + x
			c := in[i]
			d := in[i-k.w] + in[i+k.w] + in[i-1] + in[i+1] - 4*c
			r := d / c
			g := 1 / (1 + r*r)
			want := c + 0.2*g*d
			if !approxEq(got[i], want, 1e-4) {
				t.Fatalf("srad[%d,%d] = %v, want %v", y, x, got[i], want)
			}
		}
	}
}

func TestMeanFilterMatchesReference(t *testing.T) {
	k := &meanFilter{imageKernel{h: 64, w: 64}}
	im, _ := runKernel(t, k, 15)
	in := im.ReadF32Slice(k.in, k.h*k.w)
	got := im.ReadF32Slice(k.out, k.h*k.w)
	for y := 1; y < k.h-1; y += 9 {
		for x := 1; x < k.w-1; x += 6 {
			var want float32
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					want += in[(y+dy)*k.w+x+dx] / 9
				}
			}
			if !approxEq(got[y*k.w+x], clamp255(want), 1e-4) {
				t.Fatalf("mean[%d,%d] = %v, want %v", y, x, got[y*k.w+x], want)
			}
		}
	}
}

func TestLaplacianSharpens(t *testing.T) {
	k := &laplacian{imageKernel{h: 64, w: 64}}
	im, _ := runKernel(t, k, 16)
	in := im.ReadF32Slice(k.in, k.h*k.w)
	got := im.ReadF32Slice(k.out, k.h*k.w)
	for y := 1; y < k.h-1; y += 8 {
		for x := 1; x < k.w-1; x += 5 {
			i := y*k.w + x
			want := clamp255(5*in[i] - in[i-1] - in[i+1] - in[i-k.w] - in[i+k.w])
			if !approxEq(got[i], want, 1e-4) {
				t.Fatalf("lap[%d,%d] = %v, want %v", y, x, got[i], want)
			}
		}
	}
}

func TestInversek2jForwardKinematics(t *testing.T) {
	k := &inversek2j{n: 2048}
	im, _ := runKernel(t, k, 17)
	x := im.ReadF32Slice(k.x, k.n)
	y := im.ReadF32Slice(k.y, k.n)
	t1 := im.ReadF32Slice(k.th1, k.n)
	t2 := im.ReadF32Slice(k.th2, k.n)
	for i := 0; i < k.n; i += 111 {
		// Forward kinematics must land back on the target.
		fx := ik2jL1*math.Cos(float64(t1[i])) + ik2jL2*math.Cos(float64(t1[i])+float64(t2[i]))
		fy := ik2jL1*math.Sin(float64(t1[i])) + ik2jL2*math.Sin(float64(t1[i])+float64(t2[i]))
		if math.Abs(fx-float64(x[i])) > 1e-3 || math.Abs(fy-float64(y[i])) > 1e-3 {
			t.Fatalf("ik[%d]: forward (%v,%v), target (%v,%v)", i, fx, fy, x[i], y[i])
		}
	}
}

func TestNewtonraphSolvesExpEquation(t *testing.T) {
	k := &newtonraph{n: 2048}
	im, _ := runKernel(t, k, 18)
	a := im.ReadF32Slice(k.a, k.n)
	root := im.ReadF32Slice(k.root, k.n)
	for i := 0; i < k.n; i += 77 {
		if got := math.Exp(float64(root[i])); math.Abs(got-float64(a[i])) > 1e-4 {
			t.Fatalf("exp(root[%d]) = %v, want %v", i, got, a[i])
		}
	}
}

func TestBlackscholesParityAndBounds(t *testing.T) {
	k := &blackscholes{n: 2048}
	im, _ := runKernel(t, k, 19)
	s := im.ReadF32Slice(k.s, k.n)
	strike := im.ReadF32Slice(k.strike, k.n)
	tt := im.ReadF32Slice(k.t, k.n)
	call := im.ReadF32Slice(k.call, k.n)
	put := im.ReadF32Slice(k.put, k.n)
	for i := 0; i < k.n; i += 53 {
		if call[i] < -1e-3 || put[i] < -1e-3 {
			t.Fatalf("negative option price at %d: call=%v put=%v", i, call[i], put[i])
		}
		// Put-call parity: C - P = S - K e^{-rT}.
		lhs := float64(call[i] - put[i])
		rhs := float64(s[i]) - float64(strike[i])*math.Exp(-bsRate*float64(tt[i]))
		if math.Abs(lhs-rhs) > 1e-2 {
			t.Fatalf("parity violated at %d: %v vs %v", i, lhs, rhs)
		}
		// A call can never exceed the stock price.
		if float64(call[i]) > float64(s[i])+1e-3 {
			t.Fatalf("call %v above stock %v", call[i], s[i])
		}
	}
}

func TestJmeinMatchesReference(t *testing.T) {
	k := &jmein{rays: 512, tris: 1024, testsPerRay: 8}
	im, out := runKernel(t, k, 20)
	tri := im.ReadF32Slice(k.tri, 9*k.tris)
	ox := im.ReadF32Slice(k.ox, k.rays)
	oy := im.ReadF32Slice(k.oy, k.rays)
	oz := im.ReadF32Slice(k.oz, k.rays)
	dx := im.ReadF32Slice(k.dx, k.rays)
	dy := im.ReadF32Slice(k.dy, k.rays)
	dz := im.ReadF32Slice(k.dz, k.rays)
	for ray := 0; ray < k.rays; ray += 37 {
		w := ray / 32
		best := float32(1e3)
		o := [3]float64{float64(ox[ray]), float64(oy[ray]), float64(oz[ray])}
		d := [3]float64{float64(dx[ray]), float64(dy[ray]), float64(dz[ray])}
		for step := 0; step < k.testsPerRay; step++ {
			ti := k.triOrder(w, step)
			v := tri[9*ti : 9*ti+9]
			v0 := [3]float64{float64(v[0]), float64(v[1]), float64(v[2])}
			e1 := [3]float64{float64(v[3] - v[0]), float64(v[4] - v[1]), float64(v[5] - v[2])}
			e2 := [3]float64{float64(v[6] - v[0]), float64(v[7] - v[1]), float64(v[8] - v[2])}
			if hit, dist := mollerTrumbore(o, d, v0, e1, e2); hit && float32(dist) < best {
				best = float32(dist)
			}
		}
		if !approxEq(out[ray], best, 1e-3) {
			t.Fatalf("dist[%d] = %v, want %v", ray, out[ray], best)
		}
	}
}

func TestRAYProducesPlausibleImage(t *testing.T) {
	k := &ray{w: 64, h: 64, spheres: 8, envSize: 1 << 14, bounces: 2}
	_, out := runKernel(t, k, 21)
	if len(out) != 64*64 {
		t.Fatalf("output %d pixels, want %d", len(out), 64*64)
	}
	var mn, mx float32 = math.MaxFloat32, -math.MaxFloat32
	for _, v := range out {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatal("non-finite luminance")
		}
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if mx == mn {
		t.Fatal("flat image: tracer produced no structure")
	}
}

func TestDeterministicSetup(t *testing.T) {
	for _, name := range []string{"GEMM", "RAY", "jmein"} {
		k1, _ := New(name)
		k2, _ := New(name)
		im1 := memimage.New(k1.MemBytes() + 512)
		im2 := memimage.New(k2.MemBytes() + 512)
		k1.Setup(im1, rand.New(rand.NewSource(9)))
		k2.Setup(im2, rand.New(rand.NewSource(9)))
		for addr := uint64(0); addr < 4096; addr += 4 {
			if im1.Read32(addr+128) != im2.Read32(addr+128) {
				t.Fatalf("%s: setup not deterministic at %d", name, addr)
			}
		}
	}
}

// TestAllAddressesInBounds streams every kernel's warp programs (sampled)
// and checks that all generated addresses are word-aligned and inside the
// declared memory footprint.
func TestAllAddressesInBounds(t *testing.T) {
	for _, name := range Names() {
		k, _ := New(name)
		im := memimage.New(k.MemBytes() + 4*memimage.LineSize)
		k.Setup(im, rand.New(rand.NewSource(2)))
		limit := k.MemBytes() + 4*memimage.LineSize
		for ph := 0; ph < k.Phases(); ph++ {
			warps := k.NumWarps(ph)
			stride := warps/64 + 1
			for w := 0; w < warps; w += stride {
				ctx := &core.Ctx{}
				for op := range k.Program(ph, w, ctx) {
					if op.Lanes == nil {
						continue
					}
					for l := 0; l < 32; l++ {
						if op.Lanes.Active&(1<<uint(l)) == 0 {
							continue
						}
						a := op.Lanes.Addrs[l]
						if a%4 != 0 {
							t.Fatalf("%s phase %d warp %d: unaligned address %d", name, ph, w, a)
						}
						if a+4 > limit {
							t.Fatalf("%s phase %d warp %d: address %d beyond %d", name, ph, w, a, limit)
						}
					}
					// Apply so data-dependent later phases see real values.
					sim.ApplyOp(im, ctx, op)
				}
			}
		}
	}
}
