package stats

import "lazydram/internal/obs"

// DigestInto folds every counter of the Mem block into h, including the RBL
// histograms and the per-bank matrix. Counters are state too: two executions
// can only call themselves identical if they agree on what they counted.
func (m *Mem) DigestInto(h *obs.Hasher) {
	h.U64(m.Activations)
	h.U64(m.Reads)
	h.U64(m.Writes)
	h.U64(m.ReadReqs)
	h.U64(m.WriteReqs)
	h.U64(m.Dropped)
	h.U64(m.DataBusBusy)
	h.U64(m.Cycles)
	h.Int(m.NumChannels)
	for i := range m.RBL {
		h.U64(m.RBL[i])
		h.U64(m.ReadsPerRBL[i])
	}
	h.U64(m.ReadOnlyActs)
	h.U64(m.Refreshes)
	h.U64(m.QueueOccSum)
	h.U64(m.DelaySum)
	h.U64(m.ThRBLSum)
	h.U64(m.FaultActFlips)
	h.U64(m.FaultRetFlips)
	h.U64(m.FaultBusFlips)
	h.U64(m.FaultReads)
	h.Int(len(m.Banks))
	for i := range m.Banks {
		b := &m.Banks[i]
		h.U64(b.Activations)
		h.U64(b.Reads)
		h.U64(b.Writes)
		h.U64(b.Precharges)
		h.U64(b.RowHits)
		h.U64(b.RowMisses)
		h.U64(b.RowConflicts)
		h.U64(b.BusBusy)
		h.U64(b.DMSDelayCycles)
		h.U64(b.AMSDrops)
		h.U64(b.FaultFlips)
	}
}
