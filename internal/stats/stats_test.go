package stats_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lazydram/internal/stats"
)

func TestAvgRBL(t *testing.T) {
	m := &stats.Mem{Reads: 30, Writes: 10, Activations: 8}
	if got := m.AvgRBL(); got != 5 {
		t.Fatalf("AvgRBL = %v, want 5", got)
	}
	if (&stats.Mem{}).AvgRBL() != 0 {
		t.Fatal("AvgRBL of empty stats must be 0")
	}
}

func TestRecordActivationCloseClampsToMax(t *testing.T) {
	m := &stats.Mem{}
	m.RecordActivationClose(stats.MaxTrackedRBL+50, 10, true)
	if m.RBL[stats.MaxTrackedRBL] != 1 {
		t.Fatal("oversized RBL not clamped into the last bucket")
	}
	m.RecordActivationClose(0, 0, true)
	for i, v := range m.RBL {
		if i != stats.MaxTrackedRBL && v != 0 {
			t.Fatal("zero-request activation recorded")
		}
	}
}

func TestRBLShare(t *testing.T) {
	m := &stats.Mem{}
	m.RecordActivationClose(1, 1, true)
	m.RecordActivationClose(1, 1, true)
	m.RecordActivationClose(4, 4, true)
	m.RecordActivationClose(16, 16, true)
	if got := m.RBLShare(1, 1); got != 0.5 {
		t.Fatalf("RBLShare(1,1) = %v, want 0.5", got)
	}
	if got := m.RBLShare(1, 8); got != 0.75 {
		t.Fatalf("RBLShare(1,8) = %v, want 0.75", got)
	}
}

func TestLowRBLReqFrac(t *testing.T) {
	m := &stats.Mem{}
	m.RecordActivationClose(2, 2, true)   // 2 requests in a low-RBL row
	m.RecordActivationClose(18, 18, true) // 18 requests in a high-RBL row
	if got := m.LowRBLReqFrac(1, 8); got != 0.1 {
		t.Fatalf("LowRBLReqFrac = %v, want 0.1", got)
	}
}

func TestBWUtilNormalizesByChannels(t *testing.T) {
	a := &stats.Mem{DataBusBusy: 50, Cycles: 100}
	b := &stats.Mem{DataBusBusy: 100, Cycles: 100}
	if a.BWUtil() != 0.5 {
		t.Fatalf("single channel BWUtil = %v", a.BWUtil())
	}
	var merged stats.Mem
	merged.Merge(a)
	merged.Merge(b)
	if got := merged.BWUtil(); got != 0.75 {
		t.Fatalf("merged BWUtil = %v, want 0.75", got)
	}
}

func TestMergeAdds(t *testing.T) {
	a := &stats.Mem{Activations: 1, Reads: 2, Writes: 3, ReadReqs: 4, Dropped: 1}
	b := &stats.Mem{Activations: 10, Reads: 20, Writes: 30, ReadReqs: 40, Dropped: 2}
	var m stats.Mem
	m.Merge(a)
	m.Merge(b)
	if m.Activations != 11 || m.Reads != 22 || m.Writes != 33 || m.ReadReqs != 44 || m.Dropped != 3 {
		t.Fatalf("merge sums wrong: %+v", m)
	}
}

func TestCoverage(t *testing.T) {
	m := &stats.Mem{ReadReqs: 200, Dropped: 20}
	if got := m.Coverage(); got != 0.1 {
		t.Fatalf("Coverage = %v, want 0.1", got)
	}
}

func TestCumulativeRBLCurveIsMonotonic(t *testing.T) {
	m := &stats.Mem{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		n := 1 + rng.Intn(30)
		m.RecordActivationClose(n, n, true)
	}
	pts := m.CumulativeRBLCurve()
	if len(pts) == 0 {
		t.Fatal("no curve points")
	}
	prevReq, prevAct := 0.0, 0.0
	for _, p := range pts {
		if p.ReqShare < prevReq || p.ActShare < prevAct {
			t.Fatalf("curve not monotonic at RBL %d", p.RBL)
		}
		if p.ActShare < p.ReqShare-1e-9 {
			t.Fatalf("activation share %v below request share %v at RBL %d: low-RBL rows must contribute disproportionately many activations",
				p.ActShare, p.ReqShare, p.RBL)
		}
		prevReq, prevAct = p.ReqShare, p.ActShare
	}
	last := pts[len(pts)-1]
	if math.Abs(last.ReqShare-1) > 1e-9 || math.Abs(last.ActShare-1) > 1e-9 {
		t.Fatalf("curve must end at (1,1), got (%v,%v)", last.ReqShare, last.ActShare)
	}
}

func TestIPC(t *testing.T) {
	r := &stats.Run{Instructions: 500, CoreCycles: 250}
	if r.IPC() != 2 {
		t.Fatalf("IPC = %v, want 2", r.IPC())
	}
}

func TestGeoMean(t *testing.T) {
	if got := stats.GeoMean([]float64{2, 8}); got != 4 {
		t.Fatalf("GeoMean = %v, want 4", got)
	}
	if stats.GeoMean(nil) != 0 {
		t.Fatal("GeoMean of empty must be 0")
	}
}

func TestMeanMedian(t *testing.T) {
	xs := []float64{3, 1, 2}
	if stats.Mean(xs) != 2 {
		t.Fatal("Mean wrong")
	}
	if stats.Median(xs) != 2 {
		t.Fatal("Median wrong")
	}
	if stats.Median([]float64{1, 2, 3, 4}) != 2.5 {
		t.Fatal("even-length Median wrong")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := stats.Pearson(xs, ys); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := stats.Pearson(xs, neg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("Pearson = %v, want -1", got)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if stats.Pearson([]float64{1, 1}, []float64{2, 3}) != 0 {
		t.Fatal("no-variance input must return 0")
	}
	if stats.Pearson([]float64{1}, []float64{2}) != 0 {
		t.Fatal("short input must return 0")
	}
}

// Property: merging two stat sets preserves the weighted request total.
func TestMergePreservesWeightedRBL(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		total := uint64(0)
		var a, b, m stats.Mem
		for i := 0; i < 50; i++ {
			n := 1 + rng.Intn(40)
			total += uint64(n)
			if i%2 == 0 {
				a.RecordActivationClose(n, n, true)
			} else {
				b.RecordActivationClose(n, n, false)
			}
		}
		m.Merge(&a)
		m.Merge(&b)
		var weighted uint64
		for i := 1; i <= stats.MaxTrackedRBL; i++ {
			// Clamped bucket can distort the weighting only above the cap.
			weighted += uint64(i) * m.RBL[i]
		}
		return weighted == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
