package stats_test

import (
	"math/rand"
	"reflect"
	"testing"

	"lazydram/internal/stats"
)

// bankedMem builds a consistent per-channel Mem whose bank matrix sums to
// the channel aggregates, with pseudo-random counter placement.
func bankedMem(rng *rand.Rand, banks int) stats.Mem {
	var m stats.Mem
	m.EnsureBanks(banks)
	m.Cycles = 10_000
	for b := 0; b < banks; b++ {
		bk := m.Bank(b)
		bk.Activations = uint64(rng.Intn(50))
		bk.Precharges = bk.Activations / 2
		bk.RowMisses = bk.Activations // first access of each activation
		bk.RowHits = uint64(rng.Intn(200))
		bk.RowConflicts = uint64(rng.Intn(10))
		if bk.Activations == 0 {
			bk.RowMisses, bk.RowConflicts, bk.RowHits = 0, 0, 0
			bk.Precharges = 0
		}
		cols := bk.RowHits + bk.RowMisses + bk.RowConflicts
		bk.Reads = cols / 2
		bk.Writes = cols - bk.Reads
		bk.BusBusy = cols * 2
		bk.AMSDrops = uint64(rng.Intn(5))
		bk.DMSDelayCycles = uint64(rng.Intn(1000))

		m.Activations += bk.Activations
		m.Reads += bk.Reads
		m.Writes += bk.Writes
		m.DataBusBusy += bk.BusBusy
		m.Dropped += bk.AMSDrops
	}
	m.ReadReqs = m.Reads + m.Dropped
	m.WriteReqs = m.Writes
	m.QueueOccSum = m.ReadReqs + m.WriteReqs
	return m
}

// TestBankMatrixValidate is a property-style check: any consistently built
// bank matrix passes Validate, and perturbing any single bank counter that
// participates in a sum invariant makes it fail.
func TestBankMatrixValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		m := bankedMem(rng, 1+rng.Intn(16))
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: consistent banked Mem rejected: %v", trial, err)
		}
	}

	perturbations := []struct {
		name   string
		mutate func(*stats.Bank)
	}{
		{"activations", func(b *stats.Bank) { b.Activations++ }},
		{"reads", func(b *stats.Bank) { b.Reads++ }},
		{"writes", func(b *stats.Bank) { b.Writes++ }},
		{"bus-busy", func(b *stats.Bank) { b.BusBusy++ }},
		{"ams-drops", func(b *stats.Bank) { b.AMSDrops++ }},
		{"row-hits", func(b *stats.Bank) { b.RowHits++ }},
	}
	for _, p := range perturbations {
		t.Run(p.name, func(t *testing.T) {
			m := bankedMem(rng, 8)
			p.mutate(m.Bank(3))
			if m.Validate() == nil {
				t.Fatalf("perturbed bank counter %q not caught", p.name)
			}
		})
	}
}

// TestBankMergeSumsAndAssociativity: merging preserves the bank-vs-aggregate
// invariant, sums element-wise, and is associative — (a+b)+c == a+(b+c) for
// every counter including the bank matrix.
func TestBankMergeSumsAndAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		a := bankedMem(rng, 4+rng.Intn(12))
		b := bankedMem(rng, 4+rng.Intn(12))
		c := bankedMem(rng, 4+rng.Intn(12))

		// (a+b)+c
		var ab stats.Mem
		ab.Merge(&a)
		ab.Merge(&b)
		var abc1 stats.Mem
		abc1.Merge(&ab)
		abc1.Merge(&c)

		// a+(b+c)
		var bc stats.Mem
		bc.Merge(&b)
		bc.Merge(&c)
		var abc2 stats.Mem
		abc2.Merge(&a)
		abc2.Merge(&bc)

		if !reflect.DeepEqual(abc1.Banks, abc2.Banks) {
			t.Fatalf("trial %d: bank merge not associative:\n(a+b)+c=%+v\na+(b+c)=%+v",
				trial, abc1.Banks, abc2.Banks)
		}
		if abc1.Activations != abc2.Activations || abc1.NumChannels != abc2.NumChannels {
			t.Fatalf("trial %d: aggregate merge not associative", trial)
		}
		if err := abc1.Validate(); err != nil {
			t.Fatalf("trial %d: merged banked Mem rejected: %v", trial, err)
		}

		// Element-wise sums: merged bank i equals the sum over inputs.
		tot := abc1.BankTotals()
		want := a.BankTotals()
		for _, x := range []stats.Mem{b, c} {
			bt := x.BankTotals()
			want.Activations += bt.Activations
			want.Reads += bt.Reads
			want.Writes += bt.Writes
			want.Precharges += bt.Precharges
			want.RowHits += bt.RowHits
			want.RowMisses += bt.RowMisses
			want.RowConflicts += bt.RowConflicts
			want.BusBusy += bt.BusBusy
			want.DMSDelayCycles += bt.DMSDelayCycles
			want.AMSDrops += bt.AMSDrops
		}
		if tot != want {
			t.Fatalf("trial %d: merged bank totals %+v != summed inputs %+v", trial, tot, want)
		}
	}
}

// TestCloneIsDeep: mutating a clone's bank matrix must not leak into the
// original (sim.Result.Channels relies on this).
func TestCloneIsDeep(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := bankedMem(rng, 8)
	c := m.Clone()
	c.Bank(2).Activations += 100
	if m.Bank(2).Activations == c.Bank(2).Activations {
		t.Fatal("Clone shares the Banks slice with the original")
	}
	c2 := m.Clone()
	if !reflect.DeepEqual(c2.Banks, m.Banks) {
		t.Fatal("Clone did not copy bank counters")
	}
}

// TestBankGrowsOnDemand: hand-built Mems need no explicit sizing.
func TestBankGrowsOnDemand(t *testing.T) {
	var m stats.Mem
	m.Bank(5).AMSDrops = 3
	if len(m.Banks) != 6 {
		t.Fatalf("Banks grew to %d, want 6", len(m.Banks))
	}
	if m.Bank(5).AMSDrops != 3 {
		t.Fatal("counter lost after growth")
	}
	m.EnsureBanks(4) // shrinking is a no-op
	if len(m.Banks) != 6 {
		t.Fatal("EnsureBanks shrank the matrix")
	}
}
