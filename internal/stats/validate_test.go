package stats_test

import (
	"strings"
	"testing"

	"lazydram/internal/stats"
)

// channelMem builds a plausible single-channel Mem as the DRAM layer would.
func channelMem() stats.Mem {
	var m stats.Mem
	m.Cycles = 10_000
	m.Activations = 120
	m.Reads = 800
	m.Writes = 200
	m.ReadReqs = 850
	m.WriteReqs = 200
	m.Dropped = 50
	m.DataBusBusy = 2000
	m.QueueOccSum = 40_000
	for i := 0; i < 100; i++ {
		m.RecordActivationClose(8, 7, false)
	}
	return m
}

func TestValidateAcceptsConsistentMem(t *testing.T) {
	m := channelMem()
	if err := m.Validate(); err != nil {
		t.Fatalf("consistent Mem rejected: %v", err)
	}
	var merged stats.Mem
	a, b := channelMem(), channelMem()
	merged.Merge(&a)
	merged.Merge(&b)
	if err := merged.Validate(); err != nil {
		t.Fatalf("merged Mem rejected: %v", err)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*stats.Mem)
		want   string
	}{
		{"rbl-bucket-0", func(m *stats.Mem) { m.RBL[0] = 1 }, "bucket 0"},
		{"dropped-exceeds-reads", func(m *stats.Mem) { m.Dropped = m.ReadReqs + 1 }, "Dropped"},
		{"reads-exceed-reqs", func(m *stats.Mem) { m.Reads = m.ReadReqs + 1 }, "ReadReqs"},
		{"writes-exceed-reqs", func(m *stats.Mem) { m.Writes = m.WriteReqs + 1 }, "Writes"},
		{"closed-acts-exceed-total", func(m *stats.Mem) { m.Activations = 1 }, "activations"},
		{"readsperrbl-exceed-reads", func(m *stats.Mem) { m.ReadsPerRBL[8] += m.Reads }, "ReadsPerRBL"},
		{"bus-busier-than-time", func(m *stats.Mem) { m.DataBusBusy = m.Cycles + 1 }, "DataBusBusy"},
		{"negative-channels", func(m *stats.Mem) { m.NumChannels = -1 }, "NumChannels"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := channelMem()
			tc.mutate(&m)
			err := m.Validate()
			if err == nil {
				t.Fatalf("violation not caught")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestChannelsNormalization(t *testing.T) {
	var empty stats.Mem
	if got := empty.Channels(); got != 0 {
		t.Fatalf("empty accumulator Channels = %d, want 0", got)
	}
	single := channelMem()
	if got := single.Channels(); got != 1 {
		t.Fatalf("unmerged single-channel Channels = %d, want 1", got)
	}
	single.NumChannels = 4
	if got := single.Channels(); got != 4 {
		t.Fatalf("merged Channels = %d, want 4", got)
	}
}

// TestMergeCountsBothSidesChannels pins the fix for the 0-vs-1 ambiguity:
// merging directly into a Mem that holds unmerged single-channel data must
// count that channel too.
func TestMergeCountsBothSidesChannels(t *testing.T) {
	a, b := channelMem(), channelMem()
	a.Merge(&b)
	if a.NumChannels != 2 {
		t.Fatalf("channel-into-channel merge: NumChannels = %d, want 2", a.NumChannels)
	}
	// BWUtil must average over both channels: each was 0.2 busy.
	if got := a.BWUtil(); got != 0.2 {
		t.Fatalf("merged BWUtil = %v, want 0.2", got)
	}

	// Merging an already-merged Mem (NumChannels=1 covering one channel)
	// behaves identically to merging the raw channel.
	var viaMerged, direct stats.Mem
	c := channelMem()
	var cm stats.Mem
	cm.Merge(&c) // cm.NumChannels == 1
	viaMerged.Merge(&cm)
	direct.Merge(&c)
	if viaMerged.NumChannels != direct.NumChannels {
		t.Fatalf("merged-Mem merge NumChannels %d != raw-channel merge %d",
			viaMerged.NumChannels, direct.NumChannels)
	}

	// Merging two merged aggregates sums their channel counts.
	var x, y stats.Mem
	for i := 0; i < 3; i++ {
		m := channelMem()
		x.Merge(&m)
	}
	for i := 0; i < 2; i++ {
		m := channelMem()
		y.Merge(&m)
	}
	x.Merge(&y)
	if x.NumChannels != 5 {
		t.Fatalf("aggregate merge NumChannels = %d, want 5", x.NumChannels)
	}
}
