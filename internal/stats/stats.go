// Package stats collects the simulation metrics the paper reports: row
// activations, row-buffer locality (RBL) histograms, DRAM bandwidth
// utilization, IPC inputs, and AMS coverage.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// RBLHist is a histogram of row activations keyed by the number of requests
// the activation served before the row was closed (its RBL). Index 0 is
// unused; RBLs above MaxTrackedRBL are accumulated in the last bucket.
const MaxTrackedRBL = 64

// Mem aggregates DRAM-side statistics for one memory controller or,
// after Merge, for the whole memory system.
type Mem struct {
	// Activations is the total number of row activations (ACT commands).
	Activations uint64
	// Reads and Writes are column accesses issued to DRAM banks.
	Reads, Writes uint64
	// ReadReqs and WriteReqs are requests that arrived at the pending queue.
	// ReadReqs includes requests later dropped by AMS.
	ReadReqs, WriteReqs uint64
	// Dropped is the number of read requests dropped by AMS.
	Dropped uint64
	// DataBusBusy counts memory cycles the data bus transferred data; Cycles
	// counts total memory cycles. BWUTIL = DataBusBusy / Cycles.
	DataBusBusy uint64
	Cycles      uint64
	// NumChannels counts how many per-channel Mems were merged into this one
	// (0 means a single channel): BWUtil normalizes by it.
	NumChannels int
	// RBL[i] counts row activations that served exactly i requests
	// (i clamped to MaxTrackedRBL).
	RBL [MaxTrackedRBL + 1]uint64
	// ReadsPerRBL[i] counts column *read* accesses served by activations of
	// RBL i; used for the Fig. 6 cumulative curves.
	ReadsPerRBL [MaxTrackedRBL + 1]uint64
	// ReadOnlyActs counts activations that served only global reads.
	ReadOnlyActs uint64
	// Refreshes counts all-bank refresh windows (0 unless refresh enabled).
	Refreshes uint64
	// QueueOccSum accumulates the pending-queue occupancy each memory cycle;
	// QueueOccSum/Cycles is the mean occupancy.
	QueueOccSum uint64
	// DelaySum and ThRBLSum accumulate the in-force DMS delay and AMS
	// threshold each memory cycle, for time-weighted averages of the dynamic
	// schemes' settled values.
	DelaySum uint64
	ThRBLSum uint64
	// FaultActFlips, FaultRetFlips, and FaultBusFlips count injected bit
	// flips by fault mode (activation / retention / bus transient); all zero
	// unless the fault model is enabled. FaultReads counts read bursts that
	// carried at least one flip.
	FaultActFlips uint64
	FaultRetFlips uint64
	FaultBusFlips uint64
	FaultReads    uint64
	// Banks is the per-bank counter matrix for this channel (nil until the
	// DRAM layer calls EnsureBanks or Bank). In a merged Mem, bank i holds
	// the element-wise sum of bank i across the merged channels; keep the
	// unmerged per-channel Mems (sim.Result.Channels) for the full
	// channel × bank matrix.
	Banks []Bank
}

// Bank is one row of the per-bank counter matrix: where the channel's
// commands, bus time, and scheduler decisions landed. The aggregate Mem
// counters remain authoritative; Validate checks the matrix sums back to
// them exactly.
type Bank struct {
	// Activations, Reads, Writes, and Precharges count the bank's ACT, RD,
	// WR, and demand/idle PRE commands (refresh closes are not PREs).
	Activations uint64 `json:"activations"`
	Reads       uint64 `json:"reads"`
	Writes      uint64 `json:"writes"`
	Precharges  uint64 `json:"precharges"`
	// RowHits, RowMisses and RowConflicts classify every column access:
	// a hit reused the already-open row, a miss opened a row in an idle
	// (precharged) bank, a conflict first had to close another row that the
	// scheduler precharged on demand. Hits+Misses+Conflicts == Reads+Writes.
	RowHits      uint64 `json:"row_hits"`
	RowMisses    uint64 `json:"row_misses"`
	RowConflicts uint64 `json:"row_conflicts"`
	// BusBusy counts data-bus cycles spent on this bank's bursts.
	BusBusy uint64 `json:"bus_busy"`
	// DMSDelayCycles counts memory cycles the bank's oldest row-miss request
	// was held back purely by the DMS age gate.
	DMSDelayCycles uint64 `json:"dms_delay_cycles"`
	// AMSDrops counts read requests to this bank dropped by AMS.
	AMSDrops uint64 `json:"ams_drops"`
	// FaultFlips counts injected bit flips (all modes) in this bank's reads.
	FaultFlips uint64 `json:"fault_flips,omitempty"`
}

// add accumulates o into b.
func (b *Bank) add(o *Bank) {
	b.Activations += o.Activations
	b.Reads += o.Reads
	b.Writes += o.Writes
	b.Precharges += o.Precharges
	b.RowHits += o.RowHits
	b.RowMisses += o.RowMisses
	b.RowConflicts += o.RowConflicts
	b.BusBusy += o.BusBusy
	b.DMSDelayCycles += o.DMSDelayCycles
	b.AMSDrops += o.AMSDrops
	b.FaultFlips += o.FaultFlips
}

// EnsureBanks sizes the per-bank matrix for n banks, preserving existing
// counters. The DRAM channel calls it once at construction.
func (m *Mem) EnsureBanks(n int) {
	if n <= len(m.Banks) {
		return
	}
	nb := make([]Bank, n)
	copy(nb, m.Banks)
	m.Banks = nb
}

// Bank returns the counter row for bank i, growing the matrix on demand so
// hand-built Mems in tests need no explicit sizing.
func (m *Mem) Bank(i int) *Bank {
	if i >= len(m.Banks) {
		m.EnsureBanks(i + 1)
	}
	return &m.Banks[i]
}

// BankTotals sums the per-bank matrix into one Bank row.
func (m *Mem) BankTotals() Bank {
	var t Bank
	for i := range m.Banks {
		t.add(&m.Banks[i])
	}
	return t
}

// Clone returns a deep copy of m (the Banks slice is not shared).
func (m *Mem) Clone() Mem {
	c := *m
	if m.Banks != nil {
		c.Banks = append([]Bank(nil), m.Banks...)
	}
	return c
}

// RecordActivationClose records that a row activation served n requests, r of
// which were reads; readOnly reports whether all of them were global reads.
func (m *Mem) RecordActivationClose(n, r int, readOnly bool) {
	if n <= 0 {
		return
	}
	i := n
	if i > MaxTrackedRBL {
		i = MaxTrackedRBL
	}
	m.RBL[i]++
	ri := i
	m.ReadsPerRBL[ri] += uint64(r)
	if readOnly {
		m.ReadOnlyActs++
	}
}

// AvgRBL returns total serviced requests divided by total activations
// (the paper's Avg-RBL). It returns 0 when there were no activations.
func (m *Mem) AvgRBL() float64 {
	if m.Activations == 0 {
		return 0
	}
	return float64(m.Reads+m.Writes) / float64(m.Activations)
}

// BWUtil returns the fraction of memory cycles the data bus was busy,
// averaged over the merged channels.
func (m *Mem) BWUtil() float64 {
	if m.Cycles == 0 {
		return 0
	}
	ch := m.NumChannels
	if ch < 1 {
		ch = 1
	}
	return float64(m.DataBusBusy) / float64(m.Cycles*uint64(ch))
}

// MeanDelay returns the time-weighted average DMS delay across the merged
// channels, in memory cycles.
func (m *Mem) MeanDelay() float64 {
	if m.Cycles == 0 {
		return 0
	}
	ch := m.NumChannels
	if ch < 1 {
		ch = 1
	}
	return float64(m.DelaySum) / float64(m.Cycles*uint64(ch))
}

// MeanThRBL returns the time-weighted average AMS threshold across the
// merged channels.
func (m *Mem) MeanThRBL() float64 {
	if m.Cycles == 0 {
		return 0
	}
	ch := m.NumChannels
	if ch < 1 {
		ch = 1
	}
	return float64(m.ThRBLSum) / float64(m.Cycles*uint64(ch))
}

// Coverage returns the fraction of arrived global read requests that were
// dropped by AMS (the paper's prediction coverage).
func (m *Mem) Coverage() float64 {
	if m.ReadReqs == 0 {
		return 0
	}
	return float64(m.Dropped) / float64(m.ReadReqs)
}

// LowRBLReqFrac returns the fraction of requests served by activations whose
// RBL lies in [lo, hi]; this is the paper's "thrashing level" when called
// with (1, 8).
func (m *Mem) LowRBLReqFrac(lo, hi int) float64 {
	var in, total uint64
	for i := 1; i <= MaxTrackedRBL; i++ {
		n := m.RBL[i] * uint64(i)
		total += n
		if i >= lo && i <= hi {
			in += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(in) / float64(total)
}

// hasData reports whether m recorded any activity, distinguishing a live
// single-channel Mem (whose NumChannels is still 0) from an untouched
// accumulator.
func (m *Mem) hasData() bool {
	return m.Cycles != 0 || m.Activations != 0 || m.Reads != 0 || m.Writes != 0 ||
		m.ReadReqs != 0 || m.WriteReqs != 0 || m.DataBusBusy != 0
}

// Channels returns how many channels m's counters represent: the explicit
// NumChannels when set, 1 for an unmerged Mem with data, 0 for an untouched
// accumulator. This resolves the 0-vs-1 ambiguity of NumChannels, where a
// per-channel Mem carries 0 and a merged Mem covering one channel carries 1.
func (m *Mem) Channels() int {
	if m.NumChannels > 0 {
		return m.NumChannels
	}
	if m.hasData() {
		return 1
	}
	return 0
}

// Merge adds o into m. NumChannels is normalized on both sides via Channels,
// so merging per-channel Mems, already-merged Mems, or a mix all yield the
// correct channel count (previously, merging into a Mem holding unmerged
// single-channel data silently lost that channel).
func (m *Mem) Merge(o *Mem) {
	m.NumChannels = m.Channels() + o.Channels()
	m.Activations += o.Activations
	m.Reads += o.Reads
	m.Writes += o.Writes
	m.ReadReqs += o.ReadReqs
	m.WriteReqs += o.WriteReqs
	m.Dropped += o.Dropped
	m.DataBusBusy += o.DataBusBusy
	if o.Cycles > m.Cycles {
		m.Cycles = o.Cycles
	}
	for i := range m.RBL {
		m.RBL[i] += o.RBL[i]
		m.ReadsPerRBL[i] += o.ReadsPerRBL[i]
	}
	m.ReadOnlyActs += o.ReadOnlyActs
	m.Refreshes += o.Refreshes
	m.QueueOccSum += o.QueueOccSum
	m.DelaySum += o.DelaySum
	m.ThRBLSum += o.ThRBLSum
	m.FaultActFlips += o.FaultActFlips
	m.FaultRetFlips += o.FaultRetFlips
	m.FaultBusFlips += o.FaultBusFlips
	m.FaultReads += o.FaultReads
	if len(o.Banks) > 0 {
		m.EnsureBanks(len(o.Banks))
		for i := range o.Banks {
			m.Banks[i].add(&o.Banks[i])
		}
	}
}

// TotalFaultFlips returns the all-mode injected-flip count.
func (m *Mem) TotalFaultFlips() uint64 {
	return m.FaultActFlips + m.FaultRetFlips + m.FaultBusFlips
}

// Validate checks the internal consistency invariants that hold for any Mem
// at the end of a drained run (and, except where noted, mid-run too). It
// returns nil when all hold, or an error listing every violation. Use it in
// tests and when ingesting externally produced telemetry.
func (m *Mem) Validate() error {
	var errs []string
	fail := func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}

	var actsClosed, reqsClosed, readsClosed uint64
	for i := 1; i <= MaxTrackedRBL; i++ {
		actsClosed += m.RBL[i]
		reqsClosed += m.RBL[i] * uint64(i)
		readsClosed += m.ReadsPerRBL[i]
	}
	if m.RBL[0] != 0 || m.ReadsPerRBL[0] != 0 {
		fail("RBL bucket 0 must be unused: RBL[0]=%d ReadsPerRBL[0]=%d", m.RBL[0], m.ReadsPerRBL[0])
	}
	// Closed activations cannot outnumber all activations, and the requests
	// they served cannot exceed the column accesses issued. reqsClosed is an
	// under-count when activations clamp at MaxTrackedRBL, so <= still holds.
	if actsClosed > m.Activations {
		fail("closed activations %d > total activations %d", actsClosed, m.Activations)
	}
	if readsClosed > m.Reads {
		fail("sum(ReadsPerRBL)=%d > Reads=%d", readsClosed, m.Reads)
	}
	if reqsClosed > m.Reads+m.Writes {
		fail("requests served by closed activations %d > Reads+Writes %d", reqsClosed, m.Reads+m.Writes)
	}
	if m.ReadOnlyActs > actsClosed {
		fail("ReadOnlyActs %d > closed activations %d", m.ReadOnlyActs, actsClosed)
	}
	// Every arrived read is eventually served by a RD or dropped by AMS;
	// neither can exceed the arrivals. Likewise for writes.
	if m.Dropped > m.ReadReqs {
		fail("Dropped %d > ReadReqs %d", m.Dropped, m.ReadReqs)
	}
	if m.Reads+m.Dropped > m.ReadReqs {
		fail("Reads+Dropped %d > ReadReqs %d", m.Reads+m.Dropped, m.ReadReqs)
	}
	if m.Writes > m.WriteReqs {
		fail("Writes %d > WriteReqs %d", m.Writes, m.WriteReqs)
	}
	if m.NumChannels < 0 {
		fail("NumChannels %d < 0", m.NumChannels)
	}
	// The data bus cannot be busy more than all cycles across all channels.
	if ch := uint64(m.Channels()); ch > 0 && m.DataBusBusy > m.Cycles*ch {
		fail("DataBusBusy %d > Cycles*channels %d", m.DataBusBusy, m.Cycles*ch)
	}
	// The queue-occupancy integral is bounded by every queue being full (the
	// queue size is unknown here, but occupancy can never exceed arrivals).
	if m.QueueOccSum > 0 && m.ReadReqs+m.WriteReqs == 0 {
		fail("QueueOccSum %d with no arrived requests", m.QueueOccSum)
	}
	// Injected-fault reconciliation: every corrupted read is a real RD, every
	// corrupted read carries at least one flip, and the per-bank flip matrix
	// must sum exactly to the per-mode totals.
	if m.FaultReads > m.Reads {
		fail("FaultReads %d > Reads %d", m.FaultReads, m.Reads)
	}
	if tot := m.TotalFaultFlips(); m.FaultReads > tot {
		fail("FaultReads %d > total fault flips %d", m.FaultReads, tot)
	}
	// The per-bank matrix, when tracked, must sum exactly to the channel
	// aggregates, and each bank's hit/miss/conflict classification must
	// account for every column access it issued.
	if len(m.Banks) > 0 {
		t := m.BankTotals()
		if t.Activations != m.Activations {
			fail("bank Activations sum %d != Activations %d", t.Activations, m.Activations)
		}
		if t.Reads != m.Reads {
			fail("bank Reads sum %d != Reads %d", t.Reads, m.Reads)
		}
		if t.Writes != m.Writes {
			fail("bank Writes sum %d != Writes %d", t.Writes, m.Writes)
		}
		if t.BusBusy != m.DataBusBusy {
			fail("bank BusBusy sum %d != DataBusBusy %d", t.BusBusy, m.DataBusBusy)
		}
		if t.AMSDrops != m.Dropped {
			fail("bank AMSDrops sum %d != Dropped %d", t.AMSDrops, m.Dropped)
		}
		if t.FaultFlips != m.TotalFaultFlips() {
			fail("bank FaultFlips sum %d != per-mode fault flips %d", t.FaultFlips, m.TotalFaultFlips())
		}
		for i := range m.Banks {
			b := &m.Banks[i]
			if b.RowHits+b.RowMisses+b.RowConflicts != b.Reads+b.Writes {
				fail("bank %d: hits+misses+conflicts %d != reads+writes %d",
					i, b.RowHits+b.RowMisses+b.RowConflicts, b.Reads+b.Writes)
			}
			if b.Precharges > b.Activations {
				fail("bank %d: Precharges %d > Activations %d", i, b.Precharges, b.Activations)
			}
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("stats: %s", strings.Join(errs, "; "))
}

// RBLShare returns the fraction of activations whose RBL lies in [lo, hi].
func (m *Mem) RBLShare(lo, hi int) float64 {
	var in, total uint64
	for i := 1; i <= MaxTrackedRBL; i++ {
		total += m.RBL[i]
		if i >= lo && i <= hi {
			in += m.RBL[i]
		}
	}
	if total == 0 {
		return 0
	}
	return float64(in) / float64(total)
}

// Run aggregates the end-to-end metrics for one simulation run.
type Run struct {
	App          string
	Scheme       string
	CoreCycles   uint64
	Instructions uint64
	Mem          Mem
	// RowEnergy and MemEnergy are in nanojoules, filled by the energy model.
	RowEnergy float64
	MemEnergy float64
	// AppError is the mean relative output error versus the golden run
	// (0 when no approximation was applied).
	AppError float64
	// FinalDelay and FinalThRBL record the last settled Dyn-DMS delay and
	// Dyn-AMS threshold (static values for static schemes).
	FinalDelay int
	FinalThRBL int
	L2Accesses uint64
	L2Misses   uint64
	L1Accesses uint64
	L1Misses   uint64
}

// IPC returns instructions per core cycle.
func (r *Run) IPC() float64 {
	if r.CoreCycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.CoreCycles)
}

// String renders the canonical stat block printed by cmd/lazysim.
func (r *Run) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "app=%s scheme=%s\n", r.App, r.Scheme)
	fmt.Fprintf(&b, "  cycles=%d insts=%d ipc=%.4f\n", r.CoreCycles, r.Instructions, r.IPC())
	fmt.Fprintf(&b, "  activations=%d reads=%d writes=%d avg-rbl=%.3f\n",
		r.Mem.Activations, r.Mem.Reads, r.Mem.Writes, r.Mem.AvgRBL())
	ch := r.Mem.NumChannels
	if ch < 1 {
		ch = 1
	}
	occ := 0.0
	if r.Mem.Cycles > 0 {
		occ = float64(r.Mem.QueueOccSum) / float64(r.Mem.Cycles*uint64(ch))
	}
	fmt.Fprintf(&b, "  bwutil=%.3f coverage=%.4f dropped=%d queue-occ=%.1f\n",
		r.Mem.BWUtil(), r.Mem.Coverage(), r.Mem.Dropped, occ)
	fmt.Fprintf(&b, "  row-energy=%.1f nJ mem-energy=%.1f nJ app-error=%.4f\n",
		r.RowEnergy, r.MemEnergy, r.AppError)
	fmt.Fprintf(&b, "  final-delay=%d final-thrbl=%d mean-delay=%.0f mean-thrbl=%.1f\n",
		r.FinalDelay, r.FinalThRBL, r.Mem.MeanDelay(), r.Mem.MeanThRBL())
	fmt.Fprintf(&b, "  l1: %d/%d miss  l2: %d/%d miss\n",
		r.L1Misses, r.L1Accesses, r.L2Misses, r.L2Accesses)
	// Emitted only when the fault model injected something, so fault-off runs
	// stay byte-identical to the pre-fault baseline text.
	if r.Mem.TotalFaultFlips() > 0 || r.Mem.FaultReads > 0 {
		fmt.Fprintf(&b, "  faults: act=%d ret=%d bus=%d corrupted-reads=%d\n",
			r.Mem.FaultActFlips, r.Mem.FaultRetFlips, r.Mem.FaultBusFlips, r.Mem.FaultReads)
	}
	return b.String()
}

// CumulativeRBLCurve returns the Fig. 6 style curve for read requests: points
// (request share, activation share) accumulated over RBL buckets in
// increasing RBL order. Only read-only activations participate, matching the
// paper's "rows opened to serve only global read requests".
func (m *Mem) CumulativeRBLCurve() []CurvePoint {
	var totReq, totAct uint64
	for i := 1; i <= MaxTrackedRBL; i++ {
		totReq += m.ReadsPerRBL[i]
		totAct += m.RBL[i]
	}
	if totReq == 0 || totAct == 0 {
		return nil
	}
	var pts []CurvePoint
	var curReq, curAct uint64
	for i := 1; i <= MaxTrackedRBL; i++ {
		if m.RBL[i] == 0 {
			continue
		}
		curReq += m.ReadsPerRBL[i]
		curAct += m.RBL[i]
		pts = append(pts, CurvePoint{
			RBL:      i,
			ReqShare: float64(curReq) / float64(totReq),
			ActShare: float64(curAct) / float64(totAct),
		})
	}
	return pts
}

// CurvePoint is one point of a cumulative RBL curve.
type CurvePoint struct {
	RBL      int
	ReqShare float64
	ActShare float64
}

// GeoMean returns the geometric mean of xs, ignoring non-positive values.
func GeoMean(xs []float64) float64 {
	prod, n := 1.0, 0
	for _, x := range xs {
		if x > 0 {
			prod *= x
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of xs (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Pearson returns the Pearson correlation coefficient of the paired samples.
// It returns 0 when either series has no variance or the lengths differ.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
