// Package dram models a GDDR5-style DRAM channel at command granularity:
// per-bank row buffers, ACT/PRE/RD/WR commands with the Hynix GDDR5 timing
// parameters of the paper's Table I, an open-row policy, and data-bus
// occupancy tracking for bandwidth-utilization (BWUTIL) measurement.
//
// The memory controller (package mc) decides which command to issue; this
// package answers "is that command legal now" and applies its timing and
// statistics side effects.
package dram

import (
	"lazydram/internal/obs"
	"lazydram/internal/stats"
)

// Timing holds DRAM timing parameters in memory-clock cycles. The named
// fields follow the paper's Table I (Hynix GDDR5); WL, WR and RTP are not
// listed in the table and use standard GDDR5 values.
type Timing struct {
	CL   uint64 // read column-access latency
	RP   uint64 // precharge period
	RC   uint64 // activate-to-activate, same bank
	RAS  uint64 // activate-to-precharge minimum
	CCD  uint64 // column-to-column delay (= burst occupancy of the bus)
	RCD  uint64 // activate-to-column delay
	RRD  uint64 // activate-to-activate, different banks
	CDLR uint64 // write-to-read turnaround (column delay, last write to read)
	WL   uint64 // write column-access latency
	WR   uint64 // write recovery before precharge
	RTP  uint64 // read-to-precharge delay
	// CCDL is the column-to-column delay within one bank group; GDDR5 bank
	// groups allow back-to-back bursts (CCD) only across groups. Zero means
	// no bank-group penalty.
	CCDL uint64
	// REFI and RFC enable refresh when both are non-zero: every REFI cycles
	// an all-bank refresh blocks the channel for RFC cycles.
	REFI uint64
	RFC  uint64
}

// HynixGDDR5 is the timing configuration from Table I of the paper.
func HynixGDDR5() Timing {
	// Table I specifies a single tCCD; the same-bank-group tCCDL penalty and
	// refresh are available (Timing.CCDL/REFI/RFC) but default off so the
	// baseline matches the paper's model.
	return Timing{
		CL: 12, RP: 12, RC: 40, RAS: 28, CCD: 2,
		RCD: 12, RRD: 6, CDLR: 5, WL: 4, WR: 12, RTP: 2,
	}
}

// HynixGDDR5WithRefresh adds the refresh parameters of the Hynix part
// (tREFI about 3.9 us, tRFC 160 ns at 924 MHz): refresh is off by default so
// experiments stay comparable with the paper's model, but the timing model
// supports it (see Channel.Tick).
func HynixGDDR5WithRefresh() Timing {
	t := HynixGDDR5()
	t.REFI = 3600
	t.RFC = 148
	return t
}

// Config describes one DRAM channel.
type Config struct {
	NumBanks      int
	NumBankGroups int
	RowBytes      uint64
	Timing        Timing
}

// DefaultConfig mirrors Table I: 16 banks, 4 bank groups, 2 KB rows.
func DefaultConfig() Config {
	return Config{NumBanks: 16, NumBankGroups: 4, RowBytes: 2048, Timing: HynixGDDR5()}
}

// NoRow marks a closed row buffer.
const NoRow int64 = -1

// Bank is the timing state of one DRAM bank.
type Bank struct {
	OpenRow int64

	nextAct   uint64 // earliest cycle an ACT may issue
	nextRead  uint64
	nextWrite uint64
	nextPre   uint64

	// openedAt is the cycle of the current activation's ACT, giving the
	// fault model the open-row age for retention-error classification.
	openedAt uint64

	// Accounting for the current activation, consumed when the row closes.
	served      int
	servedReads int
	readOnly    bool

	// demandClosed remembers that the bank's last close was a demand
	// precharge (the scheduler evicted a row to open another); conflictAct
	// carries that into the current activation so its first column access is
	// classified as a row conflict rather than a row miss.
	demandClosed bool
	conflictAct  bool
}

// Channel is one DRAM channel: a set of banks plus channel-level constraints
// (ACT-to-ACT spacing, shared data/command bus, refresh).
type Channel struct {
	cfg   Config
	banks []Bank

	nextActAny   uint64 // tRRD across banks
	nextColRead  uint64 // channel-level column spacing / turnaround
	nextColWrite uint64

	// lastColBank / lastColCycle implement the tCCDL same-bank-group
	// column penalty.
	lastColBank  int
	lastColCycle uint64

	// nextRefresh / refreshUntil implement all-bank refresh.
	nextRefresh  uint64
	refreshUntil uint64

	stats *stats.Mem

	// trace, when non-nil, records every issued command; chanID labels the
	// channel in the trace.
	trace  *obs.CmdTrace
	chanID int
}

// NewChannel creates a channel with all banks closed.
func NewChannel(cfg Config, st *stats.Mem) *Channel {
	ch := &Channel{cfg: cfg, banks: make([]Bank, cfg.NumBanks), stats: st, lastColBank: -1}
	st.EnsureBanks(cfg.NumBanks)
	if cfg.Timing.REFI > 0 {
		ch.nextRefresh = cfg.Timing.REFI
	}
	for i := range ch.banks {
		ch.banks[i].OpenRow = NoRow
		ch.banks[i].readOnly = true
	}
	return ch
}

// SetTrace attaches a command trace ring; every subsequent ACT/PRE/RD/WR and
// refresh window is recorded under the given channel id. A nil trace
// disables recording.
func (c *Channel) SetTrace(t *obs.CmdTrace, channel int) {
	c.trace = t
	c.chanID = channel
}

// bankGroup returns the bank-group index of bank b.
func (c *Channel) bankGroup(b int) int {
	if c.cfg.NumBankGroups <= 0 {
		return 0
	}
	return b % c.cfg.NumBankGroups
}

// colGroupReady reports whether a column command to bank b satisfies the
// same-bank-group tCCDL constraint at cycle now.
func (c *Channel) colGroupReady(b int, now uint64) bool {
	t := c.cfg.Timing
	if t.CCDL == 0 || c.lastColBank < 0 {
		return true
	}
	if c.bankGroup(b) != c.bankGroup(c.lastColBank) {
		return true
	}
	return now >= c.lastColCycle+t.CCDL
}

// Refreshing reports whether the channel is blocked by an all-bank refresh
// at cycle now. Call once per memory cycle (from the memory controller)
// before issuing commands; it also opens refresh windows when due.
//
// A refresh implicitly precharges every bank, closing open rows (their RBL
// is recorded). Refresh is enabled by Timing.REFI/RFC.
func (c *Channel) Refreshing(now uint64) bool {
	t := c.cfg.Timing
	if t.REFI == 0 || t.RFC == 0 {
		return false
	}
	if now >= c.nextRefresh && now >= c.refreshUntil {
		// Open a refresh window: all banks precharge.
		for i := range c.banks {
			bk := &c.banks[i]
			if bk.OpenRow != NoRow {
				c.closeStats(bk)
				bk.OpenRow = NoRow
			}
			// A refresh close is not a demand precharge: the next
			// activation's first access classifies as a row miss.
			bk.demandClosed = false
			if n := now + t.RFC; n > bk.nextAct {
				bk.nextAct = n
			}
		}
		c.refreshUntil = now + t.RFC
		c.nextRefresh = now + t.REFI
		c.stats.Refreshes++
		c.trace.Add(obs.CmdREF, c.chanID, -1, NoRow, now)
	}
	return now < c.refreshUntil
}

// Config returns the channel configuration.
func (c *Channel) Config() Config { return c.cfg }

// NumBanks returns the number of banks in the channel.
func (c *Channel) NumBanks() int { return len(c.banks) }

// OpenRow returns the currently open row of bank b, or NoRow.
func (c *Channel) OpenRow(b int) int64 { return c.banks[b].OpenRow }

// ActServed returns how many column accesses the current activation of bank
// b has served so far (0 right after ACT: the next access is the
// activation's first, the one exposed to reduced-tRCD sensing errors).
func (c *Channel) ActServed(b int) int { return c.banks[b].served }

// OpenAge returns how long bank b's row has been open at cycle now, in
// memory cycles (0 when the bank is closed).
func (c *Channel) OpenAge(b int, now uint64) uint64 {
	bk := &c.banks[b]
	if bk.OpenRow == NoRow || now < bk.openedAt {
		return 0
	}
	return now - bk.openedAt
}

// ActBankReady reports whether bank b's own activate timing (tRP/tRC
// recovery, refresh) allows an ACT at cycle now, ignoring the channel-level
// tRRD constraint. The cycle census uses it to attribute an ACT block to the
// bank (tRP) versus the channel (tRRD).
func (c *Channel) ActBankReady(b int, now uint64) bool {
	return now >= c.banks[b].nextAct
}

// ColBankReady reports whether bank b's own column timing (tRCD after ACT,
// same-bank read/write recovery) allows a column command at cycle now,
// ignoring the channel-level bus constraints. The cycle census uses it to
// attribute a column block to the bank (tRCD) versus the bus (turnaround).
func (c *Channel) ColBankReady(b int, write bool, now uint64) bool {
	bk := &c.banks[b]
	if write {
		return now >= bk.nextWrite
	}
	return now >= bk.nextRead
}

// ActReadyAt returns the earliest cycle bank b's own activate timing (tRP/tRC
// recovery, refresh) allows an ACT. The cycle census uses the ready-at
// accessors as span horizons: every timestamp below only ever moves later, and
// only via commands the census observes, so a classification cached "until
// ready-at" cannot silently become stale.
func (c *Channel) ActReadyAt(b int) uint64 { return c.banks[b].nextAct }

// ColReadyAt returns the earliest cycle bank b's own column timing allows a
// read (or write) column command.
func (c *Channel) ColReadyAt(b int, write bool) uint64 {
	if write {
		return c.banks[b].nextWrite
	}
	return c.banks[b].nextRead
}

// PreReadyAt returns the earliest cycle bank b's open row may be precharged
// (tRAS/tWR/tRTP recovery).
func (c *Channel) PreReadyAt(b int) uint64 { return c.banks[b].nextPre }

// ActAnyReadyAt returns the earliest cycle the channel-level ACT-to-ACT
// spacing (tRRD) allows an ACT to any bank.
func (c *Channel) ActAnyReadyAt() uint64 { return c.nextActAny }

// BusReadyAt returns the earliest cycle the channel-level column-bus
// constraints (tCCD spacing, read/write turnaround, same-bank-group tCCDL)
// could allow a column command to bank b under the bus state now in force;
// commands issued later can only move the horizon further out.
func (c *Channel) BusReadyAt(b int, write bool) uint64 {
	at := c.nextColRead
	if write {
		at = c.nextColWrite
	}
	t := c.cfg.Timing
	if t.CCDL != 0 && c.lastColBank >= 0 && c.bankGroup(b) == c.bankGroup(c.lastColBank) {
		if g := c.lastColCycle + t.CCDL; g > at {
			at = g
		}
	}
	return at
}

// CanActivate reports whether an ACT for bank b may issue at cycle now.
// The bank must be precharged (closed).
func (c *Channel) CanActivate(b int, now uint64) bool {
	bk := &c.banks[b]
	return bk.OpenRow == NoRow && now >= bk.nextAct && now >= c.nextActAny
}

// Activate opens row in bank b at cycle now. The caller must have checked
// CanActivate.
func (c *Channel) Activate(b int, row int64, now uint64) {
	bk := &c.banks[b]
	t := c.cfg.Timing
	bk.OpenRow = row
	bk.nextRead = now + t.RCD
	bk.nextWrite = now + t.RCD
	bk.nextPre = now + t.RAS
	bk.nextAct = now + t.RC
	bk.served = 0
	bk.servedReads = 0
	bk.readOnly = true
	bk.conflictAct = bk.demandClosed
	bk.demandClosed = false
	bk.openedAt = now
	c.nextActAny = now + t.RRD
	c.stats.Activations++
	c.stats.Bank(b).Activations++
	c.trace.Add(obs.CmdACT, c.chanID, b, row, now)
}

// CanPrecharge reports whether a PRE for bank b may issue at cycle now.
func (c *Channel) CanPrecharge(b int, now uint64) bool {
	bk := &c.banks[b]
	return bk.OpenRow != NoRow && now >= bk.nextPre
}

// Precharge closes the open row of bank b at cycle now and records the
// row-buffer locality of the finished activation. It is the demand form —
// the scheduler closes the row to open another — so the next activation's
// first access counts as a row conflict.
func (c *Channel) Precharge(b int, now uint64) {
	c.precharge(b, now, true)
}

// PrechargeIdle closes the open row of bank b because it has no pending
// work (closed-row policy); the next activation's first access counts as a
// row miss, not a conflict.
func (c *Channel) PrechargeIdle(b int, now uint64) {
	c.precharge(b, now, false)
}

func (c *Channel) precharge(b int, now uint64, demand bool) {
	bk := &c.banks[b]
	c.trace.Add(obs.CmdPRE, c.chanID, b, bk.OpenRow, now)
	c.closeStats(bk)
	bk.OpenRow = NoRow
	bk.demandClosed = demand
	c.stats.Bank(b).Precharges++
	if n := now + c.cfg.Timing.RP; n > bk.nextAct {
		bk.nextAct = n
	}
}

// classifyColumn updates bank b's row hit/miss/conflict counters for one
// column access: reuse of the open row is a hit; the activation's first
// access is a conflict when the bank was demand-precharged, else a miss.
func (c *Channel) classifyColumn(b int, bk *Bank) {
	bs := c.stats.Bank(b)
	switch {
	case bk.served > 0:
		bs.RowHits++
	case bk.conflictAct:
		bs.RowConflicts++
	default:
		bs.RowMisses++
	}
}

func (c *Channel) closeStats(bk *Bank) {
	if bk.served > 0 {
		c.stats.RecordActivationClose(bk.served, bk.servedReads, bk.readOnly)
	}
	bk.served = 0
	bk.servedReads = 0
	bk.readOnly = true
}

// CanRead reports whether a RD to the open row of bank b may issue at now.
func (c *Channel) CanRead(b int, now uint64) bool {
	bk := &c.banks[b]
	return bk.OpenRow != NoRow && now >= bk.nextRead && now >= c.nextColRead &&
		c.colGroupReady(b, now)
}

// Read issues a RD at cycle now and returns the cycle at which the data burst
// completes on the bus (when the reply can leave the controller).
func (c *Channel) Read(b int, now uint64) (dataReady uint64) {
	bk := &c.banks[b]
	t := c.cfg.Timing
	// Burst occupies the data bus for CCD cycles starting at now+CL.
	c.stats.DataBusBusy += t.CCD
	c.stats.Reads++
	bs := c.stats.Bank(b)
	bs.Reads++
	bs.BusBusy += t.CCD
	c.classifyColumn(b, bk)
	c.trace.Add(obs.CmdRD, c.chanID, b, bk.OpenRow, now)
	bk.served++
	bk.servedReads++
	if n := now + t.RTP; n > bk.nextPre {
		bk.nextPre = n
	}
	c.nextColRead = now + t.CCD
	c.lastColBank = b
	c.lastColCycle = now
	// Read-to-write bus turnaround: the write burst must not collide with the
	// tail of the read burst.
	if n := now + t.CL + t.CCD - t.WL + 1; n > c.nextColWrite {
		c.nextColWrite = n
	}
	return now + t.CL + t.CCD
}

// CanWrite reports whether a WR to the open row of bank b may issue at now.
func (c *Channel) CanWrite(b int, now uint64) bool {
	bk := &c.banks[b]
	return bk.OpenRow != NoRow && now >= bk.nextWrite && now >= c.nextColWrite &&
		c.colGroupReady(b, now)
}

// Write issues a WR at cycle now and returns the cycle at which the write
// burst has been transferred.
func (c *Channel) Write(b int, now uint64) (done uint64) {
	bk := &c.banks[b]
	t := c.cfg.Timing
	c.stats.DataBusBusy += t.CCD
	c.stats.Writes++
	bs := c.stats.Bank(b)
	bs.Writes++
	bs.BusBusy += t.CCD
	c.classifyColumn(b, bk)
	c.trace.Add(obs.CmdWR, c.chanID, b, bk.OpenRow, now)
	bk.served++
	bk.readOnly = false
	if n := now + t.WL + t.CCD + t.WR; n > bk.nextPre {
		bk.nextPre = n
	}
	c.nextColWrite = now + t.CCD
	c.lastColBank = b
	c.lastColCycle = now
	// Write-to-read turnaround (tCDLR) applies channel wide.
	if n := now + t.WL + t.CCD + t.CDLR; n > c.nextColRead {
		c.nextColRead = n
	}
	return now + t.WL + t.CCD
}

// Drain records activation statistics for every still-open row. Call once at
// the end of a simulation so in-flight activations contribute to the RBL
// histogram.
func (c *Channel) Drain() {
	for i := range c.banks {
		c.closeStats(&c.banks[i])
	}
}
