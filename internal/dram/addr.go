package dram

// AddrMap decodes a global physical address into (channel, bank, row, column)
// coordinates. Following Table I, the global linear address space is
// interleaved among the memory partitions in chunks of ChunkBytes (256 B);
// within a partition, consecutive chunks fill a 2 KB row of one bank before
// moving to the next bank, and banks before rows.
type AddrMap struct {
	NumChannels int
	ChunkBytes  uint64
	RowBytes    uint64
	NumBanks    int
}

// DefaultAddrMap mirrors Table I: 6 channels, 256 B interleave, 2 KB rows,
// 16 banks per channel.
func DefaultAddrMap() AddrMap {
	return AddrMap{NumChannels: 6, ChunkBytes: 256, RowBytes: 2048, NumBanks: 16}
}

// Coord is a decoded DRAM coordinate.
type Coord struct {
	Channel int
	Bank    int
	Row     int64
	Col     uint64 // byte offset within the row
}

// Decode maps a global address to its DRAM coordinate.
func (m AddrMap) Decode(addr uint64) Coord {
	chunk := addr / m.ChunkBytes
	ch := int(chunk % uint64(m.NumChannels))
	local := (chunk/uint64(m.NumChannels))*m.ChunkBytes + addr%m.ChunkBytes
	col := local % m.RowBytes
	bank := int((local / m.RowBytes) % uint64(m.NumBanks))
	row := int64(local / (m.RowBytes * uint64(m.NumBanks)))
	return Coord{Channel: ch, Bank: bank, Row: row, Col: col}
}

// Encode is the inverse of Decode; it maps a DRAM coordinate back to the
// global address of the first byte of the coordinate's column offset.
func (m AddrMap) Encode(c Coord) uint64 {
	local := uint64(c.Row)*(m.RowBytes*uint64(m.NumBanks)) +
		uint64(c.Bank)*m.RowBytes + c.Col
	chunk := local / m.ChunkBytes
	off := local % m.ChunkBytes
	return (chunk*uint64(m.NumChannels)+uint64(c.Channel))*m.ChunkBytes + off
}
