package dram_test

import (
	"testing"
	"testing/quick"

	"lazydram/internal/dram"
)

func TestDecodeInterleavesChunksAcrossChannels(t *testing.T) {
	m := dram.DefaultAddrMap()
	for chunk := 0; chunk < 12; chunk++ {
		addr := uint64(chunk) * m.ChunkBytes
		c := m.Decode(addr)
		if want := chunk % m.NumChannels; c.Channel != want {
			t.Fatalf("chunk %d: channel = %d, want %d", chunk, c.Channel, want)
		}
	}
}

func TestDecodeConsecutiveChunksFillRowThenBank(t *testing.T) {
	m := dram.DefaultAddrMap()
	chunksPerRow := int(m.RowBytes / m.ChunkBytes) // 8
	// Chunks 0, 6, 12, ... land in channel 0; the first chunksPerRow of them
	// share (bank 0, row 0), the next move to bank 1.
	for i := 0; i < chunksPerRow; i++ {
		addr := uint64(i*m.NumChannels) * m.ChunkBytes
		c := m.Decode(addr)
		if c.Channel != 0 || c.Bank != 0 || c.Row != 0 {
			t.Fatalf("chunk %d: got %+v, want bank 0 row 0", i, c)
		}
	}
	addr := uint64(chunksPerRow*m.NumChannels) * m.ChunkBytes
	if c := m.Decode(addr); c.Bank != 1 || c.Row != 0 {
		t.Fatalf("first chunk past a row: got %+v, want bank 1 row 0", c)
	}
}

func TestDecodeBanksWrapToNextRow(t *testing.T) {
	m := dram.DefaultAddrMap()
	bytesPerChannelRowSet := m.RowBytes * uint64(m.NumBanks) // one row in each bank
	localAddr := bytesPerChannelRowSet                       // first byte of row 1, bank 0
	// Convert local channel-0 address back to a global address.
	chunk := localAddr / m.ChunkBytes
	global := chunk*uint64(m.NumChannels)*1*m.ChunkBytes/m.ChunkBytes*m.ChunkBytes + localAddr%m.ChunkBytes
	global = chunk * uint64(m.NumChannels) * m.ChunkBytes
	c := m.Decode(global)
	if c.Channel != 0 || c.Bank != 0 || c.Row != 1 {
		t.Fatalf("got %+v, want channel 0 bank 0 row 1", c)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := dram.DefaultAddrMap()
	f := func(raw uint64) bool {
		addr := raw % (1 << 30)
		c := m.Decode(addr)
		if c.Channel < 0 || c.Channel >= m.NumChannels {
			return false
		}
		if c.Bank < 0 || c.Bank >= m.NumBanks {
			return false
		}
		if c.Col >= m.RowBytes {
			return false
		}
		return m.Encode(c) == addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeIsDense(t *testing.T) {
	// Every local (channel, bank, row, col) coordinate must be hit by
	// exactly one address in a window: count coordinates seen over a span.
	m := dram.DefaultAddrMap()
	seen := map[dram.Coord]uint64{}
	span := m.RowBytes * uint64(m.NumChannels) // one row's worth per channel
	for a := uint64(0); a < span; a += 128 {
		c := m.Decode(a)
		c.Col -= c.Col % 128 // line-align for counting
		if prev, dup := seen[c]; dup {
			t.Fatalf("coordinate %+v hit by both %d and %d", c, prev, a)
		}
		seen[c] = a
	}
	if len(seen) != int(span/128) {
		t.Fatalf("dense mapping violated: %d coords for %d lines", len(seen), span/128)
	}
}
