package dram

import (
	"fmt"
	"strings"

	"lazydram/internal/obs"
)

// DigestBank folds bank b's complete timing and row state into h: the open
// row, every per-bank timing scoreboard, and the current activation's
// accounting. Two channels whose banks digest identically will accept and
// time the same commands identically.
func (c *Channel) DigestBank(b int, h *obs.Hasher) {
	bk := &c.banks[b]
	h.I64(bk.OpenRow)
	h.U64(bk.nextAct)
	h.U64(bk.nextRead)
	h.U64(bk.nextWrite)
	h.U64(bk.nextPre)
	h.U64(bk.openedAt)
	h.Int(bk.served)
	h.Int(bk.servedReads)
	h.Bool(bk.readOnly)
	h.Bool(bk.demandClosed)
	h.Bool(bk.conflictAct)
}

// DigestInto folds the channel-level constraint state into h: the tRRD
// scoreboard, column-bus turnaround, bank-group tracking, and refresh
// windows. Bank state is folded separately via DigestBank so divergence can
// be attributed to an individual bank.
func (c *Channel) DigestInto(h *obs.Hasher) {
	h.U64(c.nextActAny)
	h.U64(c.nextColRead)
	h.U64(c.nextColWrite)
	h.Int(c.lastColBank)
	h.U64(c.lastColCycle)
	h.U64(c.nextRefresh)
	h.U64(c.refreshUntil)
}

// DumpBank renders bank b's timing state as one "field=value" line per
// field, for lazydiverge's focused state diffs.
func (c *Channel) DumpBank(b int) string {
	bk := &c.banks[b]
	var sb strings.Builder
	fmt.Fprintf(&sb, "openRow=%d\n", bk.OpenRow)
	fmt.Fprintf(&sb, "nextAct=%d\n", bk.nextAct)
	fmt.Fprintf(&sb, "nextRead=%d\n", bk.nextRead)
	fmt.Fprintf(&sb, "nextWrite=%d\n", bk.nextWrite)
	fmt.Fprintf(&sb, "nextPre=%d\n", bk.nextPre)
	fmt.Fprintf(&sb, "openedAt=%d\n", bk.openedAt)
	fmt.Fprintf(&sb, "served=%d servedReads=%d readOnly=%v\n", bk.served, bk.servedReads, bk.readOnly)
	fmt.Fprintf(&sb, "demandClosed=%v conflictAct=%v\n", bk.demandClosed, bk.conflictAct)
	return sb.String()
}

// DumpState renders the channel-level constraint state plus a one-line
// per-bank open-row summary.
func (c *Channel) DumpState() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "nextActAny=%d nextColRead=%d nextColWrite=%d\n",
		c.nextActAny, c.nextColRead, c.nextColWrite)
	fmt.Fprintf(&sb, "lastColBank=%d lastColCycle=%d\n", c.lastColBank, c.lastColCycle)
	fmt.Fprintf(&sb, "nextRefresh=%d refreshUntil=%d\n", c.nextRefresh, c.refreshUntil)
	for b := range c.banks {
		bk := &c.banks[b]
		fmt.Fprintf(&sb, "bank[%d]: openRow=%d served=%d nextAct=%d\n",
			b, bk.OpenRow, bk.served, bk.nextAct)
	}
	return sb.String()
}
