package dram_test

import (
	"testing"

	"lazydram/internal/dram"
	"lazydram/internal/stats"
)

func newChannel(t *testing.T) (*dram.Channel, *stats.Mem) {
	t.Helper()
	st := &stats.Mem{}
	return dram.NewChannel(dram.DefaultConfig(), st), st
}

func TestActivateOpensRow(t *testing.T) {
	ch, st := newChannel(t)
	if !ch.CanActivate(0, 0) {
		t.Fatal("fresh bank must accept ACT")
	}
	ch.Activate(0, 7, 0)
	if got := ch.OpenRow(0); got != 7 {
		t.Fatalf("OpenRow = %d, want 7", got)
	}
	if st.Activations != 1 {
		t.Fatalf("Activations = %d, want 1", st.Activations)
	}
}

func TestActivateRequiresPrechargedBank(t *testing.T) {
	ch, _ := newChannel(t)
	ch.Activate(0, 1, 0)
	if ch.CanActivate(0, 1000) {
		t.Fatal("open bank must not accept ACT")
	}
}

func TestReadRespectsTRCD(t *testing.T) {
	ch, _ := newChannel(t)
	tm := dram.HynixGDDR5()
	ch.Activate(0, 1, 0)
	if ch.CanRead(0, tm.RCD-1) {
		t.Fatalf("RD allowed %d cycles after ACT; tRCD=%d", tm.RCD-1, tm.RCD)
	}
	if !ch.CanRead(0, tm.RCD) {
		t.Fatal("RD must be allowed at tRCD")
	}
}

func TestPrechargeRespectsTRAS(t *testing.T) {
	ch, _ := newChannel(t)
	tm := dram.HynixGDDR5()
	ch.Activate(0, 1, 0)
	if ch.CanPrecharge(0, tm.RAS-1) {
		t.Fatal("PRE before tRAS must be illegal")
	}
	if !ch.CanPrecharge(0, tm.RAS) {
		t.Fatal("PRE at tRAS must be legal")
	}
}

func TestActToActSameBankRespectsTRC(t *testing.T) {
	ch, _ := newChannel(t)
	tm := dram.HynixGDDR5()
	ch.Activate(0, 1, 0)
	ch.Precharge(0, tm.RAS)
	if ch.CanActivate(0, tm.RC-1) {
		t.Fatalf("ACT allowed %d cycles after previous ACT; tRC=%d", tm.RC-1, tm.RC)
	}
	if !ch.CanActivate(0, tm.RC) {
		t.Fatal("ACT must be allowed at tRC")
	}
}

func TestActToActAcrossBanksRespectsTRRD(t *testing.T) {
	ch, _ := newChannel(t)
	tm := dram.HynixGDDR5()
	ch.Activate(0, 1, 0)
	if ch.CanActivate(1, tm.RRD-1) {
		t.Fatal("cross-bank ACT before tRRD must be illegal")
	}
	if !ch.CanActivate(1, tm.RRD) {
		t.Fatal("cross-bank ACT at tRRD must be legal")
	}
}

func TestColumnSpacingRespectsTCCD(t *testing.T) {
	ch, _ := newChannel(t)
	tm := dram.HynixGDDR5()
	ch.Activate(0, 1, 0)
	ch.Activate(1, 2, tm.RRD)
	now := tm.RCD + tm.RRD
	ch.Read(0, now)
	if ch.CanRead(1, now+tm.CCD-1) {
		t.Fatal("second RD before tCCD must be illegal")
	}
	if !ch.CanRead(1, now+tm.CCD) {
		t.Fatal("second RD at tCCD must be legal")
	}
}

func TestWriteToReadTurnaround(t *testing.T) {
	ch, _ := newChannel(t)
	tm := dram.HynixGDDR5()
	ch.Activate(0, 1, 0)
	ch.Activate(1, 2, tm.RRD)
	now := tm.RCD + tm.RRD
	ch.Write(0, now)
	earliest := now + tm.WL + tm.CCD + tm.CDLR
	if ch.CanRead(1, earliest-1) {
		t.Fatal("RD before write-to-read turnaround must be illegal")
	}
	if !ch.CanRead(1, earliest) {
		t.Fatal("RD at write-to-read turnaround must be legal")
	}
}

func TestReadToPrecharge(t *testing.T) {
	ch, _ := newChannel(t)
	tm := dram.HynixGDDR5()
	ch.Activate(0, 1, 0)
	now := tm.RAS // past tRAS so only tRTP can gate
	ch.Read(0, now)
	if ch.CanPrecharge(0, now+tm.RTP-1) {
		t.Fatal("PRE before tRTP after RD must be illegal")
	}
	if !ch.CanPrecharge(0, now+tm.RTP) {
		t.Fatal("PRE at tRTP after RD must be legal")
	}
}

func TestWriteDelaysPrecharge(t *testing.T) {
	ch, _ := newChannel(t)
	tm := dram.HynixGDDR5()
	ch.Activate(0, 1, 0)
	now := tm.RAS
	ch.Write(0, now)
	earliest := now + tm.WL + tm.CCD + tm.WR
	if ch.CanPrecharge(0, earliest-1) {
		t.Fatal("PRE before write recovery must be illegal")
	}
	if !ch.CanPrecharge(0, earliest) {
		t.Fatal("PRE at write recovery must be legal")
	}
}

func TestReadReturnsDataReadyTime(t *testing.T) {
	ch, _ := newChannel(t)
	tm := dram.HynixGDDR5()
	ch.Activate(0, 1, 0)
	got := ch.Read(0, tm.RCD)
	want := tm.RCD + tm.CL + tm.CCD
	if got != want {
		t.Fatalf("Read ready = %d, want %d", got, want)
	}
}

func TestRBLAccountingOnPrecharge(t *testing.T) {
	ch, st := newChannel(t)
	tm := dram.HynixGDDR5()
	ch.Activate(0, 1, 0)
	now := tm.RCD
	for i := 0; i < 3; i++ {
		now = ch.Read(0, now)
	}
	ch.Precharge(0, now+tm.RTP+tm.RAS)
	if st.RBL[3] != 1 {
		t.Fatalf("RBL[3] = %d, want 1", st.RBL[3])
	}
	if st.ReadOnlyActs != 1 {
		t.Fatalf("ReadOnlyActs = %d, want 1", st.ReadOnlyActs)
	}
}

func TestWriteClearsReadOnlyFlag(t *testing.T) {
	ch, st := newChannel(t)
	tm := dram.HynixGDDR5()
	ch.Activate(0, 1, 0)
	ch.Read(0, tm.RCD)
	ch.Write(0, tm.RCD+tm.CCD+tm.CL)
	ch.Drain()
	if st.ReadOnlyActs != 0 {
		t.Fatalf("ReadOnlyActs = %d, want 0 after a write", st.ReadOnlyActs)
	}
	if st.RBL[2] != 1 {
		t.Fatalf("RBL[2] = %d, want 1", st.RBL[2])
	}
}

func TestDrainRecordsOpenActivations(t *testing.T) {
	ch, st := newChannel(t)
	tm := dram.HynixGDDR5()
	ch.Activate(0, 1, 0)
	ch.Read(0, tm.RCD)
	if st.RBL[1] != 0 {
		t.Fatal("activation recorded before row closed")
	}
	ch.Drain()
	if st.RBL[1] != 1 {
		t.Fatalf("RBL[1] = %d after Drain, want 1", st.RBL[1])
	}
	// Drain must be idempotent.
	ch.Drain()
	if st.RBL[1] != 1 {
		t.Fatal("Drain double-counted an activation")
	}
}

func TestDataBusBusyAccounting(t *testing.T) {
	ch, st := newChannel(t)
	tm := dram.HynixGDDR5()
	ch.Activate(0, 1, 0)
	now := tm.RCD
	now = ch.Read(0, now)
	ch.Write(0, now)
	if want := 2 * tm.CCD; st.DataBusBusy != want {
		t.Fatalf("DataBusBusy = %d, want %d", st.DataBusBusy, want)
	}
	if st.Reads != 1 || st.Writes != 1 {
		t.Fatalf("Reads=%d Writes=%d, want 1/1", st.Reads, st.Writes)
	}
}

func TestBankGroupCCDL(t *testing.T) {
	cfg := dram.DefaultConfig()
	cfg.Timing.CCDL = 3
	st := &stats.Mem{}
	ch := dram.NewChannel(cfg, st)
	tm := cfg.Timing
	// Banks 0 and 4 share bank group 0 (group = bank % 4); bank 1 is in
	// group 1.
	ch.Activate(0, 1, 0)
	ch.Activate(4, 1, tm.RRD)
	ch.Activate(1, 1, 2*tm.RRD)
	now := tm.RCD + 2*tm.RRD
	ch.Read(0, now)
	if ch.CanRead(4, now+tm.CCD) {
		t.Fatal("same-group RD at tCCD must be illegal when tCCDL is set")
	}
	if !ch.CanRead(1, now+tm.CCD) {
		t.Fatal("cross-group RD at tCCD must be legal")
	}
	if !ch.CanRead(4, now+tm.CCDL) {
		t.Fatal("same-group RD at tCCDL must be legal")
	}
}

func TestRefreshBlocksChannelAndClosesRows(t *testing.T) {
	cfg := dram.DefaultConfig()
	cfg.Timing.REFI = 200
	cfg.Timing.RFC = 50
	st := &stats.Mem{}
	ch := dram.NewChannel(cfg, st)
	ch.Activate(0, 7, 0)
	ch.Read(0, cfg.Timing.RCD)
	if ch.Refreshing(100) {
		t.Fatal("refresh fired before tREFI")
	}
	if !ch.Refreshing(200) {
		t.Fatal("refresh did not open at tREFI")
	}
	if ch.OpenRow(0) != dram.NoRow {
		t.Fatal("refresh must close open rows")
	}
	if st.Refreshes != 1 {
		t.Fatalf("Refreshes = %d, want 1", st.Refreshes)
	}
	if st.RBL[1] != 1 {
		t.Fatal("refresh-closed activation not recorded in the RBL histogram")
	}
	if ch.Refreshing(249) != true || ch.Refreshing(250) != false {
		t.Fatal("refresh window must last exactly tRFC")
	}
	if ch.CanActivate(0, 249) {
		t.Fatal("ACT inside the refresh window must be illegal")
	}
	if !ch.CanActivate(0, 250) {
		t.Fatal("ACT after the refresh window must be legal")
	}
}

func TestRefreshDisabledByDefault(t *testing.T) {
	ch, st := newChannel(t)
	for now := uint64(0); now < 100000; now += 1000 {
		if ch.Refreshing(now) {
			t.Fatal("default config must not refresh")
		}
	}
	if st.Refreshes != 0 {
		t.Fatal("refresh counted without being enabled")
	}
}
