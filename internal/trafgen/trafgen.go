// Package trafgen provides synthetic DRAM request generators and a
// standalone memory-controller harness. It lets the lazy scheduler be
// studied without the full GPU: generators produce parameterized arrival
// streams (sequential, strided, Zipf-distributed rows, mixed read/write)
// and Drive runs them through an mc.Controller, returning the usual
// row-buffer statistics.
//
// The GPU workloads in internal/workloads are the paper's evaluation
// vehicles; trafgen exists for controlled micro-studies like the paper's
// Figures 3 and 8, sensitivity sweeps, and the package's own tests.
package trafgen

import (
	"math/rand"

	"lazydram/internal/dram"
	"lazydram/internal/fault"
	"lazydram/internal/mc"
	"lazydram/internal/stats"
)

// Request is one synthetic DRAM request in channel-local coordinates.
type Request struct {
	Bank         int
	Row          int64
	Col          uint64 // byte offset in the row, line aligned
	Write        bool
	Approximable bool
}

// Generator produces an arrival stream: each call returns the next request
// and the gap, in memory cycles, before the one after it arrives.
type Generator interface {
	Next(rng *rand.Rand) (req Request, gap uint64)
}

// Stream emits sequential lines walking through rows and banks — the
// coalesced streaming shape. Gap is the constant inter-arrival time.
type Stream struct {
	Banks int
	Rows  int64
	// LineBytes and RowBytes define the column walk (defaults 128/2048).
	LineBytes uint64
	RowBytes  uint64
	Gap       uint64

	pos uint64
}

func (s *Stream) geometry() (line, row uint64) {
	line, row = s.LineBytes, s.RowBytes
	if line == 0 {
		line = 128
	}
	if row == 0 {
		row = 2048
	}
	return line, row
}

// Next implements Generator.
func (s *Stream) Next(*rand.Rand) (Request, uint64) {
	line, row := s.geometry()
	linesPerRow := row / line
	idx := s.pos
	s.pos++
	col := (idx % linesPerRow) * line
	seq := idx / linesPerRow
	bank := int(seq) % s.Banks
	r := int64(seq/uint64(s.Banks)) % s.Rows
	return Request{Bank: bank, Row: r, Col: col, Approximable: true}, s.Gap
}

// Strided emits requests that touch a new row every time — the worst-case
// row-thrashing shape (one line per row visit).
type Strided struct {
	Banks int
	Rows  int64
	Gap   uint64

	pos uint64
}

// Next implements Generator.
func (s *Strided) Next(*rand.Rand) (Request, uint64) {
	idx := s.pos
	s.pos++
	bank := int(idx) % s.Banks
	row := int64(idx/uint64(s.Banks)) % s.Rows
	col := (idx * 128) % 2048
	return Request{Bank: bank, Row: row, Col: col, Approximable: true}, s.Gap
}

// Zipf emits rows with a Zipf popularity distribution: a few hot rows
// collect most requests (high intrinsic RBL) over a long cold tail of
// single-visit rows (the AMS target population).
type Zipf struct {
	Banks int
	Rows  int64
	// S and V parameterize rand.Zipf (S > 1; larger S = more skew).
	S, V float64
	Gap  uint64
	// WriteFrac is the probability a request is a write.
	WriteFrac float64

	z *rand.Zipf
}

// Next implements Generator.
func (z *Zipf) Next(rng *rand.Rand) (Request, uint64) {
	if z.z == nil {
		s, v := z.S, z.V
		if s <= 1 {
			s = 1.3
		}
		if v < 1 {
			v = 1
		}
		z.z = rand.NewZipf(rng, s, v, uint64(z.Rows)-1)
	}
	row := int64(z.z.Uint64())
	bank := rng.Intn(z.Banks)
	col := uint64(rng.Intn(16)) * 128
	w := rng.Float64() < z.WriteFrac
	return Request{Bank: bank, Row: row, Col: col, Write: w, Approximable: !w}, z.Gap
}

// Mixed interleaves several generators round-robin.
type Mixed struct {
	Gens []Generator
	turn int
}

// Next implements Generator.
func (m *Mixed) Next(rng *rand.Rand) (Request, uint64) {
	g := m.Gens[m.turn%len(m.Gens)]
	m.turn++
	req, gap := g.Next(rng)
	return req, gap
}

// Result is what Drive returns.
type Result struct {
	Mem      stats.Mem
	Served   uint64
	Dropped  uint64
	Cycles   uint64
	Rejected uint64 // arrivals lost to a full queue
	// Faults summarizes injected faults (zero unless DriveConfig.Fault is
	// enabled).
	Faults fault.Summary
}

// DriveConfig gathers everything a standalone controller harness run needs.
// The RNG seed is explicit so sweep experiments (including fault sweeps) are
// reproducible end to end from their configuration alone.
type DriveConfig struct {
	MC   mc.Config
	DRAM dram.Config
	// Seed drives the generator's RNG.
	Seed int64
	// Fault optionally attaches the DRAM error model to the channel; its
	// Seed defaults to DriveConfig.Seed when 0.
	Fault fault.Config
	// AddrMap encodes channel-local coordinates into the global addresses
	// requests carry (nil-value picks dram.DefaultAddrMap).
	AddrMap *dram.AddrMap
}

// Drive runs n requests from gen through a controller configured with
// mcCfg over one DRAM channel, then drains the queue. Requests arriving
// while the pending queue is full are counted in Rejected and discarded
// (open-loop injection). It is shorthand for DriveWith without faults.
func Drive(mcCfg mc.Config, dramCfg dram.Config, gen Generator, n int, seed int64) Result {
	return DriveWith(DriveConfig{MC: mcCfg, DRAM: dramCfg, Seed: seed}, gen, n)
}

// DriveWith is the configurable form of Drive.
func DriveWith(cfg DriveConfig, gen Generator, n int) Result {
	var res Result
	st := &stats.Mem{}
	ch := dram.NewChannel(cfg.DRAM, st)
	ctrl := mc.New(cfg.MC, ch, st, func(r *mc.Request, approx bool, at uint64) {
		if approx {
			res.Dropped++
		} else {
			res.Served++
		}
	}, nil)
	var inj *fault.Injector
	if cfg.Fault.Enabled {
		fc := cfg.Fault
		if fc.Seed == 0 {
			fc.Seed = cfg.Seed
		}
		inj = fault.NewInjector(fc, 0, cfg.DRAM.RowBytes, st)
		ctrl.SetFaults(inj)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	am := dram.DefaultAddrMap()
	if cfg.AddrMap != nil {
		am = *cfg.AddrMap
	}

	var now, nextArrival uint64
	emitted := 0
	for emitted < n || ctrl.Pending() > 0 {
		if emitted < n && now >= nextArrival {
			req, gap := gen.Next(rng)
			emitted++
			nextArrival = now + gap
			if ctrl.Full() {
				res.Rejected++
			} else {
				c := dram.Coord{Channel: 0, Bank: req.Bank, Row: req.Row, Col: req.Col}
				ctrl.Push(am.Encode(c), req.Write, req.Approximable, c, nil)
			}
		}
		ctrl.Tick(now)
		now++
		if now > uint64(n)*10000+1_000_000 {
			break // safety net against a wedged configuration
		}
	}
	ctrl.Drain()
	res.Mem = *st
	res.Cycles = now
	if inj != nil {
		res.Faults = inj.Summary()
	}
	return res
}
