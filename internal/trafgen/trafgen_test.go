package trafgen_test

import (
	"math/rand"
	"testing"

	"lazydram/internal/dram"
	"lazydram/internal/fault"
	"lazydram/internal/mc"
	"lazydram/internal/trafgen"
)

func drive(t *testing.T, scheme mc.Scheme, gen trafgen.Generator, n int) trafgen.Result {
	t.Helper()
	cfg := mc.DefaultConfig()
	cfg.Scheme = scheme
	return trafgen.Drive(cfg, dram.DefaultConfig(), gen, n, 1)
}

func TestStreamHasHighRBL(t *testing.T) {
	res := drive(t, mc.Baseline, &trafgen.Stream{Banks: 16, Rows: 64, Gap: 4}, 4000)
	if res.Served != 4000 {
		t.Fatalf("served %d, want 4000", res.Served)
	}
	if rbl := res.Mem.AvgRBL(); rbl < 8 {
		t.Fatalf("streaming Avg-RBL = %.2f, want near the 16-line row limit", rbl)
	}
}

func TestStridedThrashes(t *testing.T) {
	res := drive(t, mc.Baseline, &trafgen.Strided{Banks: 16, Rows: 256, Gap: 4}, 4000)
	if rbl := res.Mem.AvgRBL(); rbl > 1.5 {
		t.Fatalf("strided Avg-RBL = %.2f, want ~1 (one line per row visit)", rbl)
	}
}

func TestZipfIsSkewed(t *testing.T) {
	res := drive(t, mc.Baseline, &trafgen.Zipf{Banks: 16, Rows: 4096, S: 1.5, Gap: 4}, 6000)
	// Hot rows give mid RBL; the cold tail keeps plenty of RBL(1) rows.
	if res.Mem.RBL[1] == 0 {
		t.Fatal("Zipf traffic should produce single-visit rows")
	}
	if res.Mem.RBLShare(9, 64) == 0 {
		t.Fatal("Zipf traffic should also produce hot high-RBL rows")
	}
}

func TestDMSHelpsRevisitingTraffic(t *testing.T) {
	// Strided traffic that wraps around its row set: the baseline re-opens
	// each row per lap (one lap = 32 requests x 16 cycles = 512 cycles); a
	// delay longer than a lap lets the queue batch repeat visits together.
	gen := func() trafgen.Generator { return &trafgen.Strided{Banks: 4, Rows: 8, Gap: 16} }
	base := drive(t, mc.Baseline, gen(), 3000)
	dms := drive(t, mc.Scheme{DMS: mc.Static, StaticDelay: 1024}, gen(), 3000)
	if dms.Mem.Activations >= base.Mem.Activations {
		t.Fatalf("DMS activations %d >= baseline %d", dms.Mem.Activations, base.Mem.Activations)
	}
}

func TestAMSDropsZipfTail(t *testing.T) {
	gen := &trafgen.Zipf{Banks: 16, Rows: 8192, S: 1.4, Gap: 4}
	res := drive(t, mc.StaticAMS, gen, 6000)
	if res.Dropped == 0 {
		t.Fatal("AMS dropped nothing from a single-visit-heavy stream")
	}
	if cov := float64(res.Dropped) / 6000; cov > 0.102 {
		t.Fatalf("coverage %.3f exceeds the cap", cov)
	}
	base := drive(t, mc.Baseline, &trafgen.Zipf{Banks: 16, Rows: 8192, S: 1.4, Gap: 4}, 6000)
	if res.Mem.Activations >= base.Mem.Activations {
		t.Fatalf("AMS activations %d >= baseline %d", res.Mem.Activations, base.Mem.Activations)
	}
}

func TestWritesAreNeverDropped(t *testing.T) {
	gen := &trafgen.Zipf{Banks: 8, Rows: 4096, S: 1.4, Gap: 4, WriteFrac: 0.5}
	res := drive(t, mc.StaticAMS, gen, 4000)
	if res.Served+res.Dropped+res.Rejected != 4000 {
		t.Fatalf("conservation violated: %d+%d+%d != 4000", res.Served, res.Dropped, res.Rejected)
	}
	if res.Mem.Writes == 0 {
		t.Fatal("no writes served")
	}
	// Drops only ever come from the read population.
	if res.Dropped > res.Mem.ReadReqs {
		t.Fatal("more drops than read requests")
	}
}

func TestMixedRoundRobins(t *testing.T) {
	m := &trafgen.Mixed{Gens: []trafgen.Generator{
		&trafgen.Stream{Banks: 16, Rows: 8, Gap: 2},
		&trafgen.Strided{Banks: 16, Rows: 256, Gap: 7},
	}}
	rng := rand.New(rand.NewSource(1))
	_, gapA := m.Next(rng)
	_, gapB := m.Next(rng)
	_, gapC := m.Next(rng)
	if gapA != 2 || gapB != 7 || gapC != 2 {
		t.Fatalf("mixed generator did not alternate: gaps %d %d %d", gapA, gapB, gapC)
	}
	res := drive(t, mc.Baseline, m, 2000)
	if res.Served != 2000 {
		t.Fatalf("served %d, want 2000", res.Served)
	}
}

func TestOpenLoopRejectsWhenSaturated(t *testing.T) {
	// Gap 0: all requests arrive instantly; the 128-entry queue must reject
	// most of a large burst rather than deadlock.
	res := drive(t, mc.Baseline, &trafgen.Strided{Banks: 1, Rows: 4096, Gap: 0}, 5000)
	if res.Rejected == 0 {
		t.Fatal("zero-gap burst should overflow the queue")
	}
	if res.Served+res.Rejected != 5000 {
		t.Fatalf("conservation violated: %d+%d != 5000", res.Served, res.Rejected)
	}
}

func TestDriveWithFaultsDeterministic(t *testing.T) {
	run := func() trafgen.Result {
		cfg := trafgen.DriveConfig{
			MC:   mc.DefaultConfig(),
			DRAM: dram.DefaultConfig(),
			Seed: 3,
			Fault: fault.Config{
				Enabled:         true,
				BusBER:          1e-5,
				WeakCellDensity: 1e-3,
			},
		}
		return trafgen.DriveWith(cfg, &trafgen.Zipf{Banks: 16, Rows: 2048, S: 1.3, Gap: 5}, 3000)
	}
	a, b := run(), run()
	if a.Faults.Digest != b.Faults.Digest || a.Faults.TotalFlips() != b.Faults.TotalFlips() {
		t.Fatalf("fault injection nondeterministic: %+v vs %+v", a.Faults, b.Faults)
	}
	if a.Faults.TotalFlips() == 0 {
		t.Fatal("no faults injected at BER 1e-5 / density 1e-3")
	}
	// The generator RNG is seeded from DriveConfig.Seed, so the traffic —
	// and therefore the served counts — must match a fault-free drive.
	plain := trafgen.Drive(mc.DefaultConfig(), dram.DefaultConfig(), &trafgen.Zipf{Banks: 16, Rows: 2048, S: 1.3, Gap: 5}, 3000, 3)
	if a.Served != plain.Served || a.Mem.Reads != plain.Mem.Reads {
		t.Fatalf("fault drive changed traffic: served %d/%d reads %d/%d",
			a.Served, plain.Served, a.Mem.Reads, plain.Mem.Reads)
	}
	if err := a.Mem.Validate(); err != nil {
		t.Fatalf("Validate failed on fault drive: %v", err)
	}
}

func TestDriveDeterminism(t *testing.T) {
	gen := func() trafgen.Generator { return &trafgen.Zipf{Banks: 16, Rows: 2048, S: 1.3, Gap: 5} }
	a := drive(t, mc.DynBoth, gen(), 3000)
	b := drive(t, mc.DynBoth, gen(), 3000)
	if a.Mem.Activations != b.Mem.Activations || a.Dropped != b.Dropped || a.Cycles != b.Cycles {
		t.Fatalf("nondeterministic drive: %+v vs %+v", a, b)
	}
}
