package approx

import "lazydram/internal/cache"

// Predictor synthesizes the contents of a dropped request's line. The paper's
// AMS is predictor-agnostic (Section IV-D "we can support a large variety of
// previously proposed value prediction mechanisms"); VPUnit is the paper's
// nearest-L2-line design, and the implementations here are simpler baselines
// in the spirit of the cited work (zero prediction, last-value prediction).
type Predictor interface {
	// Ready reports whether the predictor has enough state to predict.
	Ready() bool
	// Predict returns 128 predicted bytes for the line containing addr.
	Predict(addr uint64) [cache.LineSize]byte
	// Observe feeds the predictor an exact line on its way into the L2, so
	// history-based predictors can learn. May be a no-op.
	Observe(addr uint64, data *[cache.LineSize]byte)
}

// Observe makes VPUnit a Predictor; the nearest-line design reads the L2
// directly, so it learns nothing extra from fills.
func (v *VPUnit) Observe(uint64, *[cache.LineSize]byte) {}

var _ Predictor = (*VPUnit)(nil)

// ZeroPredictor always predicts zero bytes — the weakest baseline from the
// load-value-approximation literature.
type ZeroPredictor struct {
	Predictions uint64
}

// Ready is always true: zero needs no warm-up.
func (*ZeroPredictor) Ready() bool { return true }

// Predict returns an all-zero line.
func (z *ZeroPredictor) Predict(uint64) [cache.LineSize]byte {
	z.Predictions++
	return [cache.LineSize]byte{}
}

// Observe is a no-op.
func (*ZeroPredictor) Observe(uint64, *[cache.LineSize]byte) {}

// lastValueBuckets is the number of address-hashed history slots of
// LastValuePredictor.
const lastValueBuckets = 64

// LastValuePredictor predicts a dropped line from the most recent exact line
// observed in the same address bucket — a line-granularity analogue of
// classic last-value prediction.
type LastValuePredictor struct {
	lines    [lastValueBuckets][cache.LineSize]byte
	valid    [lastValueBuckets]bool
	observed uint64
	// WarmFills is the number of observations required before Ready.
	WarmFills uint64

	Predictions uint64
	Fallbacks   uint64
}

func (p *LastValuePredictor) bucket(addr uint64) int {
	return int((addr / cache.LineSize) % lastValueBuckets)
}

// Ready reports whether enough lines have been observed.
func (p *LastValuePredictor) Ready() bool { return p.observed >= p.WarmFills }

// Observe records an exact line.
func (p *LastValuePredictor) Observe(addr uint64, data *[cache.LineSize]byte) {
	b := p.bucket(addr)
	p.lines[b] = *data
	p.valid[b] = true
	p.observed++
}

// Predict returns the bucket's last observed line, or zeros before any
// observation.
func (p *LastValuePredictor) Predict(addr uint64) [cache.LineSize]byte {
	p.Predictions++
	b := p.bucket(addr)
	if !p.valid[b] {
		p.Fallbacks++
		return [cache.LineSize]byte{}
	}
	return p.lines[b]
}
