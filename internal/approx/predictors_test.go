package approx_test

import (
	"testing"

	"lazydram/internal/approx"
	"lazydram/internal/cache"
)

func TestZeroPredictor(t *testing.T) {
	var p approx.ZeroPredictor
	if !p.Ready() {
		t.Fatal("zero predictor must always be ready")
	}
	got := p.Predict(4096)
	for _, b := range got {
		if b != 0 {
			t.Fatal("zero predictor returned non-zero bytes")
		}
	}
	if p.Predictions != 1 {
		t.Fatalf("Predictions = %d, want 1", p.Predictions)
	}
}

func TestLastValuePredictorLearns(t *testing.T) {
	p := &approx.LastValuePredictor{WarmFills: 2}
	if p.Ready() {
		t.Fatal("ready before warm-up")
	}
	var line [cache.LineSize]byte
	for i := range line {
		line[i] = 0x7C
	}
	p.Observe(4096, &line)
	p.Observe(4096+64*128, &line) // same bucket (64 buckets)
	if !p.Ready() {
		t.Fatal("not ready after WarmFills observations")
	}
	got := p.Predict(4096)
	if got[0] != 0x7C || got[127] != 0x7C {
		t.Fatal("last-value prediction did not return the observed line")
	}
}

func TestLastValuePredictorFallsBack(t *testing.T) {
	p := &approx.LastValuePredictor{}
	got := p.Predict(0)
	for _, b := range got {
		if b != 0 {
			t.Fatal("empty history must predict zeros")
		}
	}
	if p.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1", p.Fallbacks)
	}
}

func TestLastValuePredictorBuckets(t *testing.T) {
	p := &approx.LastValuePredictor{}
	var a, b [cache.LineSize]byte
	a[0], b[0] = 1, 2
	p.Observe(0, &a)
	p.Observe(128, &b) // next line: different bucket
	if got := p.Predict(0); got[0] != 1 {
		t.Fatal("bucket 0 lost its line")
	}
	if got := p.Predict(128); got[0] != 2 {
		t.Fatal("bucket 1 lost its line")
	}
}

func TestPredictorInterfaceCompliance(t *testing.T) {
	var _ approx.Predictor = &approx.ZeroPredictor{}
	var _ approx.Predictor = &approx.LastValuePredictor{}
	var _ approx.Predictor = approx.NewVPUnit(approx.DefaultVPConfig(), cache.New(cache.Config{SizeBytes: 1024, Ways: 2}))
}
