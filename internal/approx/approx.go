// Package approx implements the approximation side of the lazy memory
// scheduler: programmer annotations (the paper's pragma pred_var /
// pred_coverage), the value-prediction unit that synthesizes data for
// AMS-dropped requests from the nearest-address L2 line, and application
// output-error metrics.
package approx

import (
	"math"
	"sort"

	"lazydram/internal/cache"
)

// Range is a half-open address interval [Base, Base+Size).
type Range struct {
	Base uint64
	Size uint64
}

// Annotations is the per-kernel approximability declaration: which buffers
// may be value-predicted and the user-defined coverage limit. It mirrors the
// paper's Listing 1 code annotations.
type Annotations struct {
	ranges   []Range // sorted by Base
	Coverage float64 // user coverage cap (paper default 0.10)
}

// NewAnnotations creates an annotation set with the given coverage cap.
func NewAnnotations(coverage float64) *Annotations {
	return &Annotations{Coverage: coverage}
}

// Annotate marks [base, base+size) as approximable (pragma pred_var).
func (a *Annotations) Annotate(base, size uint64) {
	a.ranges = append(a.ranges, Range{Base: base, Size: size})
	sort.Slice(a.ranges, func(i, j int) bool { return a.ranges[i].Base < a.ranges[j].Base })
}

// Approximable reports whether addr falls in an annotated range. A nil
// receiver means nothing is approximable.
func (a *Annotations) Approximable(addr uint64) bool {
	if a == nil || len(a.ranges) == 0 {
		return false
	}
	i := sort.Search(len(a.ranges), func(i int) bool { return a.ranges[i].Base > addr })
	if i == 0 {
		return false
	}
	r := a.ranges[i-1]
	return addr < r.Base+r.Size
}

// Ranges returns a copy of the annotated ranges.
func (a *Annotations) Ranges() []Range {
	if a == nil {
		return nil
	}
	return append([]Range(nil), a.ranges...)
}

// VPConfig configures a value-prediction unit.
type VPConfig struct {
	// SetRadius is how many L2 sets on either side of the home set are
	// searched for the nearest-address line.
	SetRadius int
	// WarmFills is the number of L2 fills required before the unit reports
	// ready (the paper warms the L2 before enabling AMS).
	WarmFills uint64
}

// DefaultVPConfig returns the configuration used throughout the evaluation.
func DefaultVPConfig() VPConfig { return VPConfig{SetRadius: 2, WarmFills: 512} }

// VPUnit predicts the value of a dropped request's cache line from the
// nearest-address line resident in the partition's L2 slice (Section IV-D).
type VPUnit struct {
	cfg VPConfig
	l2  *cache.Cache

	// Predictions counts predicted lines; Fallbacks counts predictions where
	// no resident line was found and zero bytes were returned.
	Predictions uint64
	Fallbacks   uint64
}

// NewVPUnit creates a VP unit attached to an L2 slice.
func NewVPUnit(cfg VPConfig, l2 *cache.Cache) *VPUnit {
	return &VPUnit{cfg: cfg, l2: l2}
}

// Ready reports whether the L2 slice is warm enough to predict from.
func (v *VPUnit) Ready() bool { return v.l2.Stats().Fills >= v.cfg.WarmFills }

// Predict returns the 128-byte predicted content for the line containing
// addr. When no nearby line is resident the prediction falls back to zeros.
func (v *VPUnit) Predict(addr uint64) [cache.LineSize]byte {
	v.Predictions++
	if _, data, ok := v.l2.NearestLine(addr, v.cfg.SetRadius); ok {
		return data
	}
	v.Fallbacks++
	return [cache.LineSize]byte{}
}

// MeanRelativeError returns the paper's application-error metric: the average
// relative error between the golden and approximate outputs. Non-finite
// elements are skipped; a small epsilon guards division for near-zero golden
// values.
func MeanRelativeError(golden, got []float32) float64 {
	if len(golden) != len(got) || len(golden) == 0 {
		return math.NaN()
	}
	const (
		eps    = 1e-6
		maxRel = 10 // clamp so a few corrupted elements cannot dominate
	)
	var sum float64
	n := 0
	for i := range golden {
		g, a := float64(golden[i]), float64(got[i])
		if math.IsNaN(g) || math.IsInf(g, 0) {
			continue // the exact computation itself is non-finite: skip
		}
		var d float64
		if math.IsNaN(a) || math.IsInf(a, 0) {
			// A finite value approximated by a non-finite one is maximal
			// error, not a skip.
			d = maxRel
		} else {
			d = math.Abs(a-g) / math.Max(math.Abs(g), eps)
			if d > maxRel {
				d = maxRel
			}
		}
		sum += d
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
