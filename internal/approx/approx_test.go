package approx_test

import (
	"math"
	"testing"
	"testing/quick"

	"lazydram/internal/approx"
	"lazydram/internal/cache"
)

func TestAnnotationsLookup(t *testing.T) {
	a := approx.NewAnnotations(0.1)
	a.Annotate(1000, 100)
	a.Annotate(5000, 50)
	tests := []struct {
		addr uint64
		want bool
	}{
		{999, false}, {1000, true}, {1099, true}, {1100, false},
		{4999, false}, {5000, true}, {5049, true}, {5050, false},
	}
	for _, tt := range tests {
		if got := a.Approximable(tt.addr); got != tt.want {
			t.Errorf("Approximable(%d) = %v, want %v", tt.addr, got, tt.want)
		}
	}
}

func TestNilAnnotationsRejectEverything(t *testing.T) {
	var a *approx.Annotations
	if a.Approximable(0) || a.Approximable(12345) {
		t.Fatal("nil annotations must reject all addresses")
	}
}

func TestAnnotationsOutOfOrderInsert(t *testing.T) {
	a := approx.NewAnnotations(0.1)
	a.Annotate(5000, 10)
	a.Annotate(100, 10)
	a.Annotate(2000, 10)
	for _, addr := range []uint64{100, 2000, 5000} {
		if !a.Approximable(addr) {
			t.Fatalf("address %d not found after out-of-order inserts", addr)
		}
	}
}

// Property: membership matches a brute-force scan of the declared ranges.
func TestAnnotationsMatchBruteForce(t *testing.T) {
	a := approx.NewAnnotations(0.1)
	ranges := []approx.Range{{Base: 128, Size: 256}, {Base: 1024, Size: 64}, {Base: 4096, Size: 1}}
	for _, r := range ranges {
		a.Annotate(r.Base, r.Size)
	}
	f := func(raw uint16) bool {
		addr := uint64(raw) % 8192
		want := false
		for _, r := range ranges {
			if addr >= r.Base && addr < r.Base+r.Size {
				want = true
			}
		}
		return a.Approximable(addr) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVPUnitPredictsNearestLine(t *testing.T) {
	l2 := cache.New(cache.Config{SizeBytes: 8 * 1024, Ways: 2})
	data := make([]byte, cache.LineSize)
	for i := range data {
		data[i] = 0x5A
	}
	l2.Fill(10*128, data, false)
	vp := approx.NewVPUnit(approx.VPConfig{SetRadius: 4, WarmFills: 1}, l2)
	if !vp.Ready() {
		t.Fatal("one fill should satisfy WarmFills=1")
	}
	got := vp.Predict(9 * 128)
	if got[0] != 0x5A {
		t.Fatal("prediction did not use the nearest line")
	}
	if vp.Predictions != 1 || vp.Fallbacks != 0 {
		t.Fatalf("counters = %d/%d, want 1/0", vp.Predictions, vp.Fallbacks)
	}
}

func TestVPUnitFallsBackToZeros(t *testing.T) {
	l2 := cache.New(cache.Config{SizeBytes: 8 * 1024, Ways: 2})
	vp := approx.NewVPUnit(approx.VPConfig{SetRadius: 1, WarmFills: 0}, l2)
	got := vp.Predict(0)
	for _, b := range got {
		if b != 0 {
			t.Fatal("empty cache must predict zeros")
		}
	}
	if vp.Fallbacks != 1 {
		t.Fatalf("Fallbacks = %d, want 1", vp.Fallbacks)
	}
}

func TestVPUnitWarmup(t *testing.T) {
	l2 := cache.New(cache.Config{SizeBytes: 8 * 1024, Ways: 2})
	vp := approx.NewVPUnit(approx.VPConfig{SetRadius: 1, WarmFills: 3}, l2)
	if vp.Ready() {
		t.Fatal("cold cache reported ready")
	}
	data := make([]byte, cache.LineSize)
	for i := 0; i < 3; i++ {
		l2.Fill(uint64(i)*128, data, false)
	}
	if !vp.Ready() {
		t.Fatal("not ready after WarmFills fills")
	}
}

func TestMeanRelativeError(t *testing.T) {
	if got := approx.MeanRelativeError([]float32{1, 2}, []float32{1, 2}); got != 0 {
		t.Fatalf("identical outputs: error %v, want 0", got)
	}
	got := approx.MeanRelativeError([]float32{2, 4}, []float32{1, 4})
	if math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("error = %v, want 0.25", got)
	}
}

func TestMeanRelativeErrorSkipsNonFinite(t *testing.T) {
	g := []float32{1, float32(math.NaN()), 3}
	a := []float32{1, 5, 3}
	if got := approx.MeanRelativeError(g, a); got != 0 {
		t.Fatalf("NaN element not skipped: %v", got)
	}
}

func TestMeanRelativeErrorClampsOutliers(t *testing.T) {
	g := []float32{1e-9}
	a := []float32{1e9}
	if got := approx.MeanRelativeError(g, a); got > 10 {
		t.Fatalf("per-element error not clamped: %v", got)
	}
}

func TestMeanRelativeErrorLengthMismatch(t *testing.T) {
	if got := approx.MeanRelativeError([]float32{1}, []float32{1, 2}); !math.IsNaN(got) {
		t.Fatalf("length mismatch must return NaN, got %v", got)
	}
}
