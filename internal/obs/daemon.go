package obs

// Daemon-level metric families for lazyd, the simulation-as-a-service
// daemon. These sit one layer above the sweep families in runlog.go: where
// lazysim_sweep_* watches one Runner's lifecycle spans, lazyd_* watches the
// service wrapped around it — job admission, the bounded queue, and the
// content-addressed result cache. Keeping the family definitions here (with
// the other observability vocabulary) rather than in internal/service keeps
// every exported metric name in one package, so the metric-name contract
// tests and docs have a single place to look.

// Daemon job-outcome label values for lazyd_jobs_total{state}. Every
// submitted job is counted exactly once under submitted, and exactly once
// under one of the terminal outcomes.
const (
	JobSubmitted = "submitted"    // accepted into the daemon (any outcome)
	JobCacheHit  = "cache_hit"    // served verbatim from the result cache
	JobDeduped   = "dedup_joined" // attached to an identical in-flight job
	JobExecuted  = "executed"     // ran a simulation to completion
	JobErrored   = "error"        // simulation or encoding failed
	JobRejected  = "rejected"     // refused at admission (bad spec or queue full)
	JobCanceled  = "canceled"     // daemon shut down before the job ran
)

// DaemonMetrics is the registry slice owned by the lazyd service layer.
type DaemonMetrics struct {
	// Jobs counts job outcomes by state label (see the Job* constants).
	Jobs *Family

	// QueueDepth is the number of accepted jobs waiting for a dispatcher;
	// InFlight the number currently executing (dedupe leaders only).
	QueueDepth *Metric
	InFlight   *Metric

	// Cache counters and gauges for the content-addressed result cache.
	CacheHits      *Metric
	CacheMisses    *Metric
	CacheEvictions *Metric
	CacheEntries   *Metric
	CacheBytes     *Metric

	// Disk-spill traffic: documents written to and reloaded from the spill
	// directory.
	SpillWrites *Metric
	SpillReads  *Metric
}

// NewDaemonMetrics registers the lazyd families on the registry. A nil
// registry returns nil; the service layer guards every update with a nil
// check (or uses the nil-safe JobOutcome helper), so running without
// -metrics-addr costs nothing.
func NewDaemonMetrics(r *Registry) *DaemonMetrics {
	if r == nil {
		return nil
	}
	return &DaemonMetrics{
		Jobs: r.Register("lazyd_jobs_total",
			"Daemon job outcomes by state", KindCounter, "state"),
		QueueDepth: r.Gauge("lazyd_queue_depth",
			"Accepted jobs waiting for a dispatcher"),
		InFlight: r.Gauge("lazyd_jobs_inflight",
			"Jobs currently executing a simulation"),
		CacheHits: r.Counter("lazyd_cache_hits_total",
			"Jobs served verbatim from the result cache"),
		CacheMisses: r.Counter("lazyd_cache_misses_total",
			"Job keys not found in the result cache"),
		CacheEvictions: r.Counter("lazyd_cache_evictions_total",
			"Result documents evicted from the in-memory cache"),
		CacheEntries: r.Gauge("lazyd_cache_entries",
			"Result documents resident in the in-memory cache"),
		CacheBytes: r.Gauge("lazyd_cache_bytes",
			"Bytes of result documents resident in the in-memory cache"),
		SpillWrites: r.Counter("lazyd_cache_spill_writes_total",
			"Result documents written to the disk spill directory"),
		SpillReads: r.Counter("lazyd_cache_spill_reads_total",
			"Result documents reloaded from the disk spill directory"),
	}
}

// JobOutcome bumps lazyd_jobs_total{state}. Nil-safe.
func (m *DaemonMetrics) JobOutcome(state string) {
	if m == nil {
		return
	}
	m.Jobs.With(state).Add(1)
}
