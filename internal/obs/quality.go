package obs

import (
	"encoding/binary"
	"math"
	"sort"
)

// This file is the approximation-quality half of the observability layer:
// the first measured "error" side of the paper's latency-and-error-tolerance
// claim. Every AMS-dropped line is answered by the value predictor instead of
// DRAM; because the functional memory image is never polluted by predictions,
// it stays the ground truth, so each drop can be scored word-by-word against
// the bytes the program would have read. The log accumulates absolute and
// relative error histograms (log-decade buckets) plus a bounded
// worst-offenders list.
//
// Error conventions mirror approx.MeanRelativeError so the per-line scores
// aggregate consistently with the end-of-run application error: relative
// error uses max(|truth|, relErrEps) as denominator, is clamped to
// relErrMax, non-finite ground-truth words are skipped, and a non-finite
// prediction of a finite word counts as maximal error.

const (
	relErrEps = 1e-6
	relErrMax = 10

	// Error histogram decades: [1e-9, 1e4). Values below the range land in
	// an "under" bucket, values at or above the top clamp into the last.
	errHistMinExp  = -9
	errHistMaxExp  = 4
	errHistDecades = errHistMaxExp - errHistMinExp

	defaultWorstOffenders = 16
)

// ErrHist is a log-decade histogram for non-negative error magnitudes.
type ErrHist struct {
	zero    uint64
	under   uint64
	buckets [errHistDecades]uint64
	count   uint64
	sum     float64
	max     float64
}

// Observe adds one error magnitude (clamped to the histogram range).
func (h *ErrHist) Observe(v float64) {
	h.count++
	if v > h.max {
		h.max = v
	}
	h.sum += v
	switch {
	case v <= 0:
		h.zero++
	case v < math.Pow(10, errHistMinExp):
		h.under++
	default:
		d := int(math.Floor(math.Log10(v))) - errHistMinExp
		if d < 0 {
			d = 0
		}
		if d >= errHistDecades {
			d = errHistDecades - 1
		}
		h.buckets[d]++
	}
}

// Count returns the number of observations.
func (h *ErrHist) Count() uint64 { return h.count }

// Mean returns the arithmetic mean of the observed errors (0 when empty).
func (h *ErrHist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max returns the largest observed error.
func (h *ErrHist) Max() float64 { return h.max }

// Quantile returns a representative value at quantile q in [0,1]: 0 for the
// zero bucket and the geometric midpoint of the containing decade otherwise.
func (h *ErrHist) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	if seen += h.zero; seen >= rank {
		return 0
	}
	if seen += h.under; seen >= rank {
		return math.Pow(10, errHistMinExp) / 2
	}
	for d := 0; d < errHistDecades; d++ {
		if seen += h.buckets[d]; seen >= rank {
			lo := math.Pow(10, float64(errHistMinExp+d))
			// The decade midpoint can overshoot when the decade's content
			// clusters at its bottom (e.g. clamped maximal errors); the
			// observed max is a tighter bound.
			return math.Min(lo*math.Sqrt(10), h.max)
		}
	}
	return h.max
}

// ErrBucket is one serialized histogram bucket: errors in [Lo, Hi).
type ErrBucket struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Count uint64  `json:"count"`
}

// Buckets returns the non-empty buckets in ascending error order. The zero
// bucket is emitted as [0,0]; the under-range bucket as [0, 1e-9).
func (h *ErrHist) Buckets() []ErrBucket {
	var out []ErrBucket
	if h.zero > 0 {
		out = append(out, ErrBucket{Lo: 0, Hi: 0, Count: h.zero})
	}
	if h.under > 0 {
		out = append(out, ErrBucket{Lo: 0, Hi: math.Pow(10, errHistMinExp), Count: h.under})
	}
	for d := 0; d < errHistDecades; d++ {
		if h.buckets[d] == 0 {
			continue
		}
		lo := math.Pow(10, float64(errHistMinExp+d))
		out = append(out, ErrBucket{Lo: lo, Hi: lo * 10, Count: h.buckets[d]})
	}
	return out
}

// WorstOffender is one AMS-dropped line scored among the worst of the run.
type WorstOffender struct {
	Addr    uint64  `json:"addr"`
	Cycle   uint64  `json:"cycle"`
	Words   int     `json:"words"`
	MeanAbs float64 `json:"mean_abs"`
	MeanRel float64 `json:"mean_rel"`
	MaxRel  float64 `json:"max_rel"`
}

// QualityLog scores every AMS-dropped line against ground truth. A nil
// *QualityLog discards everything.
type QualityLog struct {
	lines        uint64
	words        uint64
	skippedWords uint64

	abs ErrHist
	rel ErrHist

	worstCap int
	worst    []WorstOffender // sorted by MeanRel descending
}

// NewQualityLog creates a log keeping up to worstCap worst offenders
// (<=0 picks the default).
func NewQualityLog(worstCap int) *QualityLog {
	if worstCap <= 0 {
		worstCap = defaultWorstOffenders
	}
	return &QualityLog{worstCap: worstCap}
}

// RecordLine scores one dropped line: pred holds the predictor's bytes,
// truth the ground-truth bytes from the functional image. Both are
// interpreted as little-endian float32 words. Nil-safe.
func (q *QualityLog) RecordLine(cycle, addr uint64, pred, truth []byte) {
	if q == nil {
		return
	}
	q.lines++
	n := len(truth) / 4
	if m := len(pred) / 4; m < n {
		n = m
	}
	var sumAbs, sumRel, maxRel float64
	var cnt int
	for i := 0; i < n; i++ {
		tf := float64(math.Float32frombits(binary.LittleEndian.Uint32(truth[4*i:])))
		pf := float64(math.Float32frombits(binary.LittleEndian.Uint32(pred[4*i:])))
		if math.IsNaN(tf) || math.IsInf(tf, 0) {
			q.skippedWords++
			continue
		}
		var abs, rel float64
		if math.IsNaN(pf) || math.IsInf(pf, 0) {
			// Non-finite prediction of a finite word: maximal error.
			rel = relErrMax
			abs = relErrMax * math.Max(math.Abs(tf), relErrEps)
		} else {
			abs = math.Abs(pf - tf)
			rel = abs / math.Max(math.Abs(tf), relErrEps)
			if rel > relErrMax {
				rel = relErrMax
			}
		}
		q.words++
		q.abs.Observe(abs)
		q.rel.Observe(rel)
		sumAbs += abs
		sumRel += rel
		if rel > maxRel {
			maxRel = rel
		}
		cnt++
	}
	if cnt == 0 {
		return
	}
	q.noteWorst(WorstOffender{
		Addr:    addr,
		Cycle:   cycle,
		Words:   cnt,
		MeanAbs: sumAbs / float64(cnt),
		MeanRel: sumRel / float64(cnt),
		MaxRel:  maxRel,
	})
}

func (q *QualityLog) noteWorst(w WorstOffender) {
	if len(q.worst) == q.worstCap && w.MeanRel <= q.worst[len(q.worst)-1].MeanRel {
		return
	}
	i := sort.Search(len(q.worst), func(i int) bool { return q.worst[i].MeanRel < w.MeanRel })
	q.worst = append(q.worst, WorstOffender{})
	copy(q.worst[i+1:], q.worst[i:])
	q.worst[i] = w
	if len(q.worst) > q.worstCap {
		q.worst = q.worst[:q.worstCap]
	}
}

// Merge adds o's samples into h.
func (h *ErrHist) Merge(o *ErrHist) {
	h.zero += o.zero
	h.under += o.under
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Merge folds o's scores into q. Counters and histograms sum exactly; o's
// retained worst offenders are replayed through q's list in cycle order
// (stable, so same-cycle entries keep caller order), which makes repeated
// shard-order merges deterministic. Nil-safe on both sides.
func (q *QualityLog) Merge(o *QualityLog) {
	if q == nil || o == nil {
		return
	}
	q.lines += o.lines
	q.words += o.words
	q.skippedWords += o.skippedWords
	q.abs.Merge(&o.abs)
	q.rel.Merge(&o.rel)
	cand := append(append([]WorstOffender(nil), q.worst...), o.worst...)
	sort.SliceStable(cand, func(i, j int) bool { return cand[i].Cycle < cand[j].Cycle })
	q.worst = q.worst[:0]
	for _, w := range cand {
		q.noteWorst(w)
	}
}

// Lines returns the number of dropped lines scored.
func (q *QualityLog) Lines() uint64 {
	if q == nil {
		return 0
	}
	return q.lines
}

// Words returns the number of finite ground-truth words scored.
func (q *QualityLog) Words() uint64 {
	if q == nil {
		return 0
	}
	return q.words
}

// MeanRel returns the running mean relative error across scored words.
func (q *QualityLog) MeanRel() float64 {
	if q == nil {
		return 0
	}
	return q.rel.Mean()
}

// MaxRel returns the largest per-word relative error seen.
func (q *QualityLog) MaxRel() float64 {
	if q == nil {
		return 0
	}
	return q.rel.Max()
}

// QualitySummary is the serializable digest of a quality log.
type QualitySummary struct {
	Lines        uint64 `json:"lines"`
	Words        uint64 `json:"words"`
	SkippedWords uint64 `json:"skipped_words,omitempty"`

	MeanAbsError float64 `json:"mean_abs_error"`
	MeanRelError float64 `json:"mean_rel_error"`
	RelP50       float64 `json:"rel_p50"`
	RelP90       float64 `json:"rel_p90"`
	RelP99       float64 `json:"rel_p99"`
	MaxRelError  float64 `json:"max_rel_error"`

	AbsHist []ErrBucket     `json:"abs_hist,omitempty"`
	RelHist []ErrBucket     `json:"rel_hist,omitempty"`
	Worst   []WorstOffender `json:"worst,omitempty"`
}

// Summary builds the serializable digest (nil for a nil log).
func (q *QualityLog) Summary() *QualitySummary {
	if q == nil {
		return nil
	}
	return &QualitySummary{
		Lines:        q.lines,
		Words:        q.words,
		SkippedWords: q.skippedWords,
		MeanAbsError: q.abs.Mean(),
		MeanRelError: q.rel.Mean(),
		RelP50:       q.rel.Quantile(0.50),
		RelP90:       q.rel.Quantile(0.90),
		RelP99:       q.rel.Quantile(0.99),
		MaxRelError:  q.rel.Max(),
		AbsHist:      q.abs.Buckets(),
		RelHist:      q.rel.Buckets(),
		Worst:        append([]WorstOffender(nil), q.worst...),
	}
}
