package obs

import (
	"encoding/binary"
	"math"
	"testing"
)

func putFloat32(b []byte, v float32) {
	binary.LittleEndian.PutUint32(b, math.Float32bits(v))
}

// TestMergeCmdTraces checks the deterministic merge contract: sum-exact
// Total/Dropped and stable cycle order (same-cycle commands keep argument
// order, mirroring the sequential partition tick order).
func TestMergeCmdTraces(t *testing.T) {
	a := NewCmdTrace(2)
	b := NewCmdTrace(2)
	// a wraps: 3 adds into cap 2.
	a.Add(CmdACT, 0, 0, 1, 10)
	a.Add(CmdRD, 0, 0, 1, 20)
	a.Add(CmdRD, 0, 1, 2, 30)
	b.Add(CmdACT, 1, 0, 5, 20)
	b.Add(CmdWR, 1, 0, 5, 40)

	m := MergeCmdTraces(a, b)
	if got, want := m.Total(), uint64(5); got != want {
		t.Fatalf("Total = %d, want %d", got, want)
	}
	if got, want := m.Dropped(), uint64(1); got != want {
		t.Fatalf("Dropped = %d, want %d", got, want)
	}
	cmds := m.Commands()
	if len(cmds) != 4 {
		t.Fatalf("retained %d commands, want 4", len(cmds))
	}
	wantOrder := []struct {
		cycle   uint64
		channel int16
	}{{20, 0}, {20, 1}, {30, 0}, {40, 1}}
	for i, w := range wantOrder {
		if cmds[i].Cycle != w.cycle || cmds[i].Channel != w.channel {
			t.Errorf("cmds[%d] = cycle %d ch %d, want cycle %d ch %d",
				i, cmds[i].Cycle, cmds[i].Channel, w.cycle, w.channel)
		}
	}

	if MergeCmdTraces(nil, nil) != nil {
		t.Errorf("merge of all-nil traces should be nil")
	}
	if m2 := MergeCmdTraces(a, nil); m2.Total() != a.Total() {
		t.Errorf("nil input should be skipped: Total = %d, want %d", m2.Total(), a.Total())
	}
}

// TestMergeAuditLogs checks counter sums, stable-by-cycle entry order, and
// adaptation-trace merging.
func TestMergeAuditLogs(t *testing.T) {
	a := NewAuditLog(4)
	b := NewAuditLog(4)
	a.Record(Decision{Cycle: 10, Channel: 0, Reason: ReasonAMSDrop})
	a.Record(Decision{Cycle: 30, Channel: 0, Reason: ReasonDMSDelayHold})
	a.Tally(ReasonDMSDelayHold)
	b.Record(Decision{Cycle: 10, Channel: 1, Reason: ReasonAMSDrop})
	b.Record(Decision{Cycle: 20, Channel: 1, Reason: ReasonAMSRowOpen})
	a.RecordAdapt(AdaptPoint{Cycle: 1024, Channel: 0, Unit: "dms"})
	b.RecordAdapt(AdaptPoint{Cycle: 1024, Channel: 1, Unit: "dms"})

	m := MergeAuditLogs(a, b)
	if got, want := m.Total(), uint64(5); got != want {
		t.Fatalf("Total = %d, want %d", got, want)
	}
	if got, want := m.Count(ReasonAMSDrop), uint64(2); got != want {
		t.Errorf("Count(drop) = %d, want %d", got, want)
	}
	if got, want := m.Count(ReasonDMSDelayHold), uint64(2); got != want {
		t.Errorf("Count(hold) = %d, want %d", got, want)
	}
	ents := m.Entries()
	if len(ents) != 4 {
		t.Fatalf("retained %d entries, want 4", len(ents))
	}
	wantOrder := []struct {
		cycle   uint64
		channel int
	}{{10, 0}, {10, 1}, {20, 1}, {30, 0}}
	for i, w := range wantOrder {
		if ents[i].Cycle != w.cycle || ents[i].Channel != w.channel {
			t.Errorf("entries[%d] = cycle %d ch %d, want cycle %d ch %d",
				i, ents[i].Cycle, ents[i].Channel, w.cycle, w.channel)
		}
	}
	ad := m.Adapt()
	if len(ad) != 2 || ad[0].Channel != 0 || ad[1].Channel != 1 {
		t.Errorf("adapt merge lost stable order: %+v", ad)
	}
	s := m.Summary()
	if s.RingDropped != 1 {
		t.Errorf("RingDropped = %d, want 1 (one tallied-only decision)", s.RingDropped)
	}
	if MergeAuditLogs(nil, nil) != nil {
		t.Errorf("merge of all-nil logs should be nil")
	}
}

// TestQualityLogMerge checks counter/histogram sums and that the merged
// worst-offenders list is deterministic for a fixed merge order.
func TestQualityLogMerge(t *testing.T) {
	mkLine := func(v float32) []byte {
		b := make([]byte, 4)
		putFloat32(b, v)
		return b
	}
	a := NewQualityLog(2)
	b := NewQualityLog(2)
	a.RecordLine(10, 0x100, mkLine(1.5), mkLine(1.0)) // rel 0.5
	b.RecordLine(20, 0x200, mkLine(3.0), mkLine(1.0)) // rel 2.0
	b.RecordLine(30, 0x300, mkLine(1.1), mkLine(1.0)) // rel 0.1

	m := NewQualityLog(2)
	m.Merge(a)
	m.Merge(b)
	if got, want := m.Lines(), uint64(3); got != want {
		t.Fatalf("Lines = %d, want %d", got, want)
	}
	if got, want := m.Words(), uint64(3); got != want {
		t.Fatalf("Words = %d, want %d", got, want)
	}
	if m.MaxRel() < 1.99 || m.MaxRel() > 2.01 {
		t.Errorf("MaxRel = %g, want ~2.0", m.MaxRel())
	}
	sum := m.Summary()
	if len(sum.Worst) != 2 {
		t.Fatalf("worst list has %d entries, want cap 2", len(sum.Worst))
	}
	if sum.Worst[0].Addr != 0x200 || sum.Worst[1].Addr != 0x100 {
		t.Errorf("worst order = %#x, %#x; want 0x200, 0x100", sum.Worst[0].Addr, sum.Worst[1].Addr)
	}
}

// TestTracerMerge checks per-stage histogram sums.
func TestTracerMerge(t *testing.T) {
	a := &Tracer{}
	b := &Tracer{}
	a.Observe(StageDRAM, 10)
	b.Observe(StageDRAM, 30)
	b.Observe(StageMCQueue, 5)
	m := &Tracer{}
	m.Merge(a)
	m.Merge(b)
	if got := m.Hist(StageDRAM).Count(); got != 2 {
		t.Errorf("DRAM count = %d, want 2", got)
	}
	if got := m.Hist(StageDRAM).Mean(); got != 20 {
		t.Errorf("DRAM mean = %g, want 20", got)
	}
	if got := m.Hist(StageMCQueue).Count(); got != 1 {
		t.Errorf("MCQueue count = %d, want 1", got)
	}
	m.Merge(nil) // nil-safe
}

// TestCollectorShards checks shard creation, capacity division, and that the
// merged telemetry folds shard state back together.
func TestCollectorShards(t *testing.T) {
	c := NewCollector(Options{Latency: true, TraceCapacity: 8, AuditCapacity: 8, Quality: true})
	c.EnsureShards(4)
	for i := 0; i < 4; i++ {
		s := c.Shard(i)
		if s == nil {
			t.Fatalf("shard %d is nil", i)
		}
		if s.Trace == nil || s.Audit == nil || s.Quality == nil || s.Tracer == nil {
			t.Fatalf("shard %d missing enabled features: %+v", i, s)
		}
	}
	// Per-shard ring capacity is total/4 = 2: 3 adds on one shard drop 1.
	tr := c.Shard(0).Trace
	tr.Add(CmdACT, 0, 0, 1, 1)
	tr.Add(CmdRD, 0, 0, 1, 2)
	tr.Add(CmdRD, 0, 0, 1, 3)
	c.Shard(1).Trace.Add(CmdACT, 1, 0, 7, 2)
	c.Shard(2).Audit.Record(Decision{Cycle: 5, Channel: 2, Reason: ReasonAMSDrop})
	c.Tracer.Observe(StageTotal, 100)
	c.Shard(3).Tracer.Observe(StageDRAM, 9)

	tel := c.Telemetry()
	if tel.TraceCmds != 4 || tel.TraceDropped != 1 {
		t.Errorf("trace totals = %d/%d, want 4/1", tel.TraceCmds, tel.TraceDropped)
	}
	if tel.Audit == nil || tel.Audit.AMSDrops != 1 {
		t.Errorf("audit digest missing shard decision: %+v", tel.Audit)
	}
	if len(tel.Stages) != 2 {
		t.Errorf("stages = %+v, want total + dram.service", tel.Stages)
	}
	if got := c.AuditCount(ReasonAMSDrop); got != 1 {
		t.Errorf("AuditCount = %d, want 1", got)
	}

	// Nil-safety: disabled collector and shard hand out nil features.
	var nc *Collector
	nc.EnsureShards(4)
	if nc.Shard(0).ShardTrace() != nil || nc.Shard(0).ShardAudit() != nil {
		t.Errorf("nil collector shard should hand out nil features")
	}
	if nc.Telemetry() != nil {
		t.Errorf("nil collector Telemetry should be nil")
	}
}
