package obs

import "math/bits"

// Histogram is a fixed-bucket, HDR-style log-linear latency histogram.
// Values below 2^subBits are recorded exactly; above that, each power-of-two
// range is split into 2^(subBits-1) equal sub-buckets, bounding the relative
// quantization error of any recorded value by 2^-(subBits-1) (< 1.6%).
//
// Observe is allocation-free and O(1): the bucket array is a fixed-size
// inline array, so a Histogram (or a Tracer full of them) is a single flat
// allocation made once at collector construction.
type Histogram struct {
	buckets [numBuckets]uint64
	count   uint64
	sum     uint64
	max     uint64
}

const (
	// subBits sets the precision: 128 exact buckets, then 64 sub-buckets per
	// power of two.
	subBits = 7
	nSub    = 1 << subBits // 128

	// maxTracked clamps observations so the bucket array stays bounded;
	// 2^42 memory cycles is ~79 minutes of simulated GDDR5 time, far beyond
	// any single request's lifetime. Larger values land in the top bucket
	// (Max still records the true maximum).
	maxTrackedBits = 42
	maxTracked     = uint64(1)<<maxTrackedBits - 1

	numGroups  = maxTrackedBits - subBits // power-of-two ranges above the exact region
	numBuckets = nSub + numGroups*(nSub/2)
)

// bucketIdx maps a (pre-clamped) value to its bucket.
func bucketIdx(v uint64) int {
	if v < nSub {
		return int(v)
	}
	g := bits.Len64(v) - subBits // ≥ 1
	// v>>g lies in [nSub/2, nSub); together with the exact region the index
	// space is contiguous: group g occupies [g*nSub/2 + nSub/2, g*nSub/2 + nSub).
	return g*(nSub/2) + int(v>>uint(g))
}

// bucketBounds returns the [lo, hi) value range of bucket i.
func bucketBounds(i int) (lo, hi uint64) {
	if i < nSub {
		return uint64(i), uint64(i) + 1
	}
	g := (i - nSub/2) / (nSub / 2)
	sub := uint64(i - g*(nSub/2))
	return sub << uint(g), (sub + 1) << uint(g)
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if v > maxTracked {
		v = maxTracked
	}
	h.buckets[bucketIdx(v)]++
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of recorded values.
func (h *Histogram) Sum() uint64 { return h.sum }

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the arithmetic mean of recorded values (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Percentile returns the nearest-rank p-th percentile (p in [0, 100]) as the
// midpoint of the bucket holding that rank. Returns 0 when empty.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(p / 100 * float64(h.count))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i]
		if cum >= rank {
			lo, hi := bucketBounds(i)
			mid := lo + (hi-lo-1)/2
			if mid > h.max {
				mid = h.max // top-bucket clamp: never report past the true max
			}
			return mid
		}
	}
	return h.max
}

// HistBucket is one non-empty histogram bucket in serializable form: the
// [Lo, Hi) value range and its sample count.
type HistBucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// Buckets returns the non-empty buckets in value order (nil when empty).
func (h *Histogram) Buckets() []HistBucket {
	var out []HistBucket
	for i := range h.buckets {
		if h.buckets[i] == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		out = append(out, HistBucket{Lo: lo, Hi: hi, Count: h.buckets[i]})
	}
	return out
}

// Merge adds o's samples into h.
func (h *Histogram) Merge(o *Histogram) {
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}
