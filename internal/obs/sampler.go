package obs

// Sample is one point of the per-run time series: a snapshot of the
// quantities the paper's dynamic schemes modulate, taken every SampleEvery
// memory cycles. Rate-like fields (IPC, BWUtil, Activations) are measured
// over the window since the previous sample, so the series shows the
// settling behaviour rather than a long-run average.
type Sample struct {
	// MemCycle / CoreCycle are the cycle counts at snapshot time.
	MemCycle  uint64 `json:"mem_cycle"`
	CoreCycle uint64 `json:"core_cycle"`
	// IPC is instructions per core cycle over the window.
	IPC float64 `json:"ipc"`
	// BWUtil is the per-channel data-bus utilization over the window.
	BWUtil float64 `json:"bwutil"`
	// QueueOcc is the instantaneous mean pending-queue occupancy per channel.
	QueueOcc float64 `json:"queue_occ"`
	// Activations counts row activations in the window (all channels).
	Activations uint64 `json:"activations"`
	// Delay is the largest in-force DMS delay across channels, ThRBL the
	// largest in-force AMS threshold.
	Delay int `json:"delay"`
	ThRBL int `json:"th_rbl"`
}

// Sampler collects interval snapshots. A nil *Sampler discards everything.
type Sampler struct {
	every   uint64
	last    uint64
	samples []Sample
}

// NewSampler creates a sampler with the given interval in memory cycles;
// every must be positive.
func NewSampler(every uint64) *Sampler {
	if every == 0 {
		panic("obs: sampler interval must be positive")
	}
	return &Sampler{every: every}
}

// Every returns the sampling interval.
func (s *Sampler) Every() uint64 {
	if s == nil {
		return 0
	}
	return s.every
}

// Tick advances the sampler to the given cycle count (the number of memory
// cycles completed so far) and, when a full interval elapsed, records the
// sample produced by probe. probe receives the window length in memory
// cycles. Call once per memory cycle; nil-safe.
func (s *Sampler) Tick(cycle uint64, probe func(window uint64) Sample) {
	if s == nil || cycle-s.last < s.every {
		return
	}
	s.record(cycle, probe)
}

// Flush records a final sample for the partial window between the last
// sample and cycle, if any cycles elapsed. Call once at end of run;
// nil-safe.
func (s *Sampler) Flush(cycle uint64, probe func(window uint64) Sample) {
	if s == nil || cycle <= s.last {
		return
	}
	s.record(cycle, probe)
}

func (s *Sampler) record(cycle uint64, probe func(window uint64) Sample) {
	s.samples = append(s.samples, probe(cycle-s.last))
	s.last = cycle
}

// Samples returns the collected series (nil-safe).
func (s *Sampler) Samples() []Sample {
	if s == nil {
		return nil
	}
	return s.samples
}
