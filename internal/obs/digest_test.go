package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestHasherDeterministicAndOrderSensitive(t *testing.T) {
	h1 := NewHasher()
	h1.U64(1)
	h1.I64(-2)
	h1.Int(3)
	h1.Bool(true)
	h1.F64(4.5)
	h1.Bytes([]byte("abc"))

	h2 := NewHasher()
	h2.U64(1)
	h2.I64(-2)
	h2.Int(3)
	h2.Bool(true)
	h2.F64(4.5)
	h2.Bytes([]byte("abc"))

	if h1.Sum() != h2.Sum() {
		t.Fatalf("same inputs, different digests: %#x vs %#x", h1.Sum(), h2.Sum())
	}

	h3 := NewHasher()
	h3.I64(-2) // swapped order
	h3.U64(1)
	if h3.Sum() == func() uint64 { h := NewHasher(); h.U64(1); h.I64(-2); return h.Sum() }() {
		t.Fatal("digest is not order-sensitive")
	}
}

func TestFoldBytesLengthDisambiguation(t *testing.T) {
	// A line of zeros must not alias a shorter line of zeros: the length is
	// folded first.
	a := FoldBytes(FoldSeed(), make([]byte, 8))
	b := FoldBytes(FoldSeed(), make([]byte, 16))
	if a == b {
		t.Fatal("zero slices of different lengths alias")
	}
	// Hasher.Bytes and FoldBytes agree.
	h := NewHasher()
	h.Bytes([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	if h.Sum() != FoldBytes(FoldSeed(), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}) {
		t.Fatal("Hasher.Bytes != FoldBytes")
	}
}

func TestDigestLogChainAndBound(t *testing.T) {
	l := NewDigestLog(64, 4)
	for i := uint64(1); i <= 6; i++ {
		l.Record(DigestRecord{Cycle: i * 64, Machine: i})
	}
	if got := l.Intervals(); got != 6 {
		t.Fatalf("Intervals = %d, want 6", got)
	}
	if got := l.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	recs := l.Records()
	if len(recs) != 4 {
		t.Fatalf("retained %d records, want 4", len(recs))
	}
	// Oldest-first after the ring wrapped: cycles 192..384.
	for i, rec := range recs {
		if want := uint64(i+3) * 64; rec.Cycle != want {
			t.Fatalf("record %d cycle = %d, want %d", i, rec.Cycle, want)
		}
	}
	// The chain must cover all 6 samples, not just the retained 4.
	want := FoldSeed()
	for i := uint64(1); i <= 6; i++ {
		want = FoldU64(want, i)
	}
	if l.Chain() != want {
		t.Fatalf("Chain = %#x, want %#x", l.Chain(), want)
	}
	if recs[len(recs)-1].Chain != want {
		t.Fatal("last record's chain != log chain")
	}
}

func TestDigestLogSummaryAndJSONLRoundTrip(t *testing.T) {
	l := NewDigestLog(128, 0)
	l.Record(DigestRecord{Cycle: 128, Machine: 0xdeadbeefcafef00d, Cores: 7,
		Parts: []PartDigest{{Part: 0, DRAM: 1, MC: 2, L2: 3, Heaps: 4, Traffic: 5, Stats: 6}}})
	l.Record(DigestRecord{Cycle: 256, Machine: 42})
	l.Finalize(0x0123456789abcdef)

	s := l.Summary()
	if s.Every != 128 || s.Intervals != 2 {
		t.Fatalf("summary every/intervals = %d/%d", s.Every, s.Intervals)
	}
	if s.Final != "0x0123456789abcdef" {
		t.Fatalf("Final = %q", s.Final)
	}
	if got := uint64(s.FinalHi)<<32 | uint64(s.FinalLo); got != 0x0123456789abcdef {
		t.Fatalf("hi/lo halves reassemble to %#x", got)
	}
	if got := uint64(s.ChainHi)<<32 | uint64(s.ChainLo); got != l.Chain() {
		t.Fatalf("chain halves reassemble to %#x, want %#x", got, l.Chain())
	}

	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != 2 {
		t.Fatalf("JSONL lines = %d, want 2", n)
	}
	recs, err := ReadDigestJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("round trip read %d records", len(recs))
	}
	if recs[0].Machine != 0xdeadbeefcafef00d || recs[0].Parts[0].Traffic != 5 {
		t.Fatalf("round trip mangled record: %+v", recs[0])
	}
	if recs[1].Chain != l.Chain() {
		t.Fatal("round trip lost chain value")
	}
}

func TestNilDigestLogIsSafe(t *testing.T) {
	var l *DigestLog
	l.Record(DigestRecord{})
	l.Finalize(1)
	if l.Summary() != nil || l.Records() != nil || l.Every() != 0 ||
		l.Intervals() != 0 || l.Dropped() != 0 || l.Chain() != 0 || l.Final() != 0 {
		t.Fatal("nil DigestLog accessors not zero")
	}
	if err := l.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsDigestEnables(t *testing.T) {
	if (Options{}).Enabled() {
		t.Fatal("zero Options enabled")
	}
	if !(Options{DigestEvery: 4096}).Enabled() {
		t.Fatal("DigestEvery does not enable the collector")
	}
	c := NewCollector(Options{DigestEvery: 4096})
	if c == nil || c.Digest == nil {
		t.Fatal("collector missing digest log")
	}
	if c.Telemetry().Digest == nil {
		t.Fatal("telemetry missing digest summary")
	}
}

func TestPartDigestSumCoversEveryField(t *testing.T) {
	base := PartDigest{Part: 1, DRAM: 2, MC: 3, L2: 4, Heaps: 5, Traffic: 6, Stats: 7}
	sum := base.Sum()
	variants := []PartDigest{
		{Part: 9, DRAM: 2, MC: 3, L2: 4, Heaps: 5, Traffic: 6, Stats: 7},
		{Part: 1, DRAM: 9, MC: 3, L2: 4, Heaps: 5, Traffic: 6, Stats: 7},
		{Part: 1, DRAM: 2, MC: 9, L2: 4, Heaps: 5, Traffic: 6, Stats: 7},
		{Part: 1, DRAM: 2, MC: 3, L2: 9, Heaps: 5, Traffic: 6, Stats: 7},
		{Part: 1, DRAM: 2, MC: 3, L2: 4, Heaps: 9, Traffic: 6, Stats: 7},
		{Part: 1, DRAM: 2, MC: 3, L2: 4, Heaps: 5, Traffic: 9, Stats: 7},
		{Part: 1, DRAM: 2, MC: 3, L2: 4, Heaps: 5, Traffic: 6, Stats: 9},
	}
	for i, v := range variants {
		if v.Sum() == sum {
			t.Fatalf("variant %d did not change the partition sum", i)
		}
	}
}
