package obs

import (
	"encoding/binary"
	"math"
	"testing"
)

func lineBytes(words ...float32) []byte {
	out := make([]byte, 4*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(w))
	}
	return out
}

func TestQualityLogNilSafe(t *testing.T) {
	var q *QualityLog
	q.RecordLine(1, 2, lineBytes(1), lineBytes(2))
	if q.Lines() != 0 || q.Words() != 0 || q.MeanRel() != 0 || q.MaxRel() != 0 {
		t.Fatal("nil log reported data")
	}
	if q.Summary() != nil {
		t.Fatal("nil log returned a summary")
	}
}

func TestQualityLogScoresWords(t *testing.T) {
	q := NewQualityLog(4)
	// truth 2.0 predicted 1.0 -> abs 1, rel 0.5; truth 4.0 exact -> 0.
	q.RecordLine(100, 0x1000, lineBytes(1, 4), lineBytes(2, 4))
	if q.Lines() != 1 || q.Words() != 2 {
		t.Fatalf("lines=%d words=%d, want 1/2", q.Lines(), q.Words())
	}
	if got := q.MeanRel(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("mean rel = %g, want 0.25", got)
	}
	if got := q.MaxRel(); got != 0.5 {
		t.Fatalf("max rel = %g, want 0.5", got)
	}
	s := q.Summary()
	if math.Abs(s.MeanAbsError-0.5) > 1e-12 {
		t.Fatalf("mean abs = %g, want 0.5", s.MeanAbsError)
	}
	if len(s.Worst) != 1 || s.Worst[0].Addr != 0x1000 || s.Worst[0].Cycle != 100 {
		t.Fatalf("worst offender not recorded: %+v", s.Worst)
	}
	if s.Worst[0].MaxRel != 0.5 {
		t.Fatalf("worst MaxRel = %g, want 0.5", s.Worst[0].MaxRel)
	}
}

func TestQualityLogNonFiniteConventions(t *testing.T) {
	q := NewQualityLog(4)
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	// Word 0: non-finite truth -> skipped entirely.
	// Word 1: finite truth, NaN prediction -> clamped maximal error.
	// Word 2: rel error above the clamp (truth 1e-30 vs pred 1) -> relErrMax.
	q.RecordLine(1, 0, lineBytes(5, nan, 1), lineBytes(inf, 1, 1e-30))
	if q.Words() != 2 {
		t.Fatalf("words = %d, want 2 (non-finite truth skipped)", q.Words())
	}
	if q.Summary().SkippedWords != 1 {
		t.Fatalf("skipped = %d, want 1", q.Summary().SkippedWords)
	}
	if got := q.MaxRel(); got != relErrMax {
		t.Fatalf("max rel = %g, want clamp %g", got, float64(relErrMax))
	}
	for _, rel := range []float64{q.Summary().RelP50, q.Summary().RelP99} {
		if math.IsNaN(rel) || math.IsInf(rel, 0) {
			t.Fatal("quantiles must stay finite")
		}
		if rel > q.MaxRel() {
			t.Fatalf("quantile %g exceeds the observed max %g", rel, q.MaxRel())
		}
	}
}

func TestQualityWorstOffendersSortedAndBounded(t *testing.T) {
	q := NewQualityLog(2)
	q.RecordLine(1, 0xa, lineBytes(1), lineBytes(2))   // rel 1.0
	q.RecordLine(2, 0xb, lineBytes(3), lineBytes(2))   // rel 0.5
	q.RecordLine(3, 0xc, lineBytes(2.2), lineBytes(2)) // rel 0.1 -> evicted
	w := q.Summary().Worst
	if len(w) != 2 {
		t.Fatalf("kept %d offenders, want cap 2", len(w))
	}
	if w[0].Addr != 0xa || w[1].Addr != 0xb {
		t.Fatalf("offenders not sorted by mean rel desc: %+v", w)
	}
}

func TestErrHistQuantilesAndBuckets(t *testing.T) {
	var h ErrHist
	for i := 0; i < 90; i++ {
		h.Observe(0)
	}
	for i := 0; i < 9; i++ {
		h.Observe(0.005) // decade [1e-3, 1e-2)
	}
	h.Observe(3.5) // decade [1, 10)
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("p50 = %g, want 0", got)
	}
	p99 := h.Quantile(0.99)
	if p99 < 1e-3 || p99 >= 1e-2 {
		t.Fatalf("p99 = %g, want within [1e-3, 1e-2)", p99)
	}
	if h.Max() != 3.5 {
		t.Fatalf("max = %g, want 3.5", h.Max())
	}
	bks := h.Buckets()
	if len(bks) != 3 {
		t.Fatalf("buckets = %d, want 3 non-empty", len(bks))
	}
	if bks[0].Lo != 0 || bks[0].Hi != 0 || bks[0].Count != 90 {
		t.Fatalf("zero bucket wrong: %+v", bks[0])
	}
	if bks[1].Count != 9 || bks[2].Count != 1 {
		t.Fatalf("decade buckets wrong: %+v", bks)
	}
	// Range clamps: tiny values land in "under", huge in the top decade.
	var c ErrHist
	c.Observe(1e-30)
	c.Observe(1e30)
	if got := len(c.Buckets()); got != 2 {
		t.Fatalf("clamped observations produced %d buckets, want 2", got)
	}
}

func TestQualityLogTruncatedLine(t *testing.T) {
	q := NewQualityLog(4)
	// Prediction shorter than truth: only the common words are scored.
	q.RecordLine(1, 0, lineBytes(1, 2), lineBytes(1, 2, 3))
	if q.Words() != 2 {
		t.Fatalf("words = %d, want 2 (min of both lengths)", q.Words())
	}
}
