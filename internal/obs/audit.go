package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// This file is the scheduler decision-audit half of the observability layer.
// The paper's two decision loops — DMS delaying activations to grow row-hit
// chains and AMS dropping low-RBL approximable reads — are only trustworthy
// when every individual decision is attributable: why was this request held,
// why was that one dropped, why was a drop candidate refused. The audit log
// records one Decision per scheduler event with the inputs that drove it
// (visible RBL, in-force delay, current Th_RBL, running coverage), keeps
// exact per-reason counters regardless of ring wrap, and collects the dynamic
// units' per-window adaptation trace (delay / Th_RBL / coverage timeline).
//
// Everything is nil-safe in the PR-1 style: a nil *AuditLog discards every
// call behind one nil check, so the scheduler hot loop pays nothing when the
// audit is off.

// Reason is a scheduler decision reason code. Each reason belongs to one
// unit ("dms" or "ams") and one decision kind ("delay", "expire", "drop",
// "skip").
type Reason uint8

// Decision reason codes.
const (
	// ReasonDMSDelayHold: a row-miss request was held back by the DMS age
	// gate this cycle. One decision is recorded per held bank per memory
	// cycle, so the total equals the stats.Bank DMSDelayCycles aggregate.
	ReasonDMSDelayHold Reason = iota
	// ReasonDMSDelayExpired: a row-miss request aged past the in-force delay
	// and its row activation was issued (recorded once per activation while
	// a non-zero delay is in force).
	ReasonDMSDelayExpired
	// ReasonAMSDrop: an approximable read was dropped and handed to the
	// value predictor. The total equals stats.Mem.Dropped.
	ReasonAMSDrop
	// ReasonAMSL2Cold: AMS inspected a drop candidate but the L2 is not warm
	// enough for the value-prediction unit to answer.
	ReasonAMSL2Cold
	// ReasonAMSDelayPending: the candidate has not yet satisfied the DMS
	// delay criterion (the paper drops only fully-aged requests).
	ReasonAMSDelayPending
	// ReasonAMSCoverageExhausted: the running prediction coverage has reached
	// the user-defined budget.
	ReasonAMSCoverageExhausted
	// ReasonAMSPendingWrites: the candidate's row has pending writes, whose
	// exactness a drop would violate.
	ReasonAMSPendingWrites
	// ReasonAMSPendingNonApprox: the candidate's row holds a pending
	// non-approximable request.
	ReasonAMSPendingNonApprox
	// ReasonAMSRowOpen: the candidate's row is already open, so serving it
	// costs no activation and dropping it would waste coverage.
	ReasonAMSRowOpen
	// ReasonAMSHighRBL: the row's visible RBL exceeds the in-force Th_RBL;
	// the coverage budget is kept for lower-RBL rows.
	ReasonAMSHighRBL

	// NumReasons is the number of defined reason codes.
	NumReasons
)

// reasonMeta names each reason and assigns its unit and decision kind.
var reasonMeta = [NumReasons]struct{ unit, kind, name string }{
	ReasonDMSDelayHold:         {"dms", "delay", "delay-hold"},
	ReasonDMSDelayExpired:      {"dms", "expire", "delay-expired"},
	ReasonAMSDrop:              {"ams", "drop", "drop"},
	ReasonAMSL2Cold:            {"ams", "skip", "l2-cold"},
	ReasonAMSDelayPending:      {"ams", "skip", "delay-not-elapsed"},
	ReasonAMSCoverageExhausted: {"ams", "skip", "coverage-exhausted"},
	ReasonAMSPendingWrites:     {"ams", "skip", "pending-writes"},
	ReasonAMSPendingNonApprox:  {"ams", "skip", "pending-non-approx"},
	ReasonAMSRowOpen:           {"ams", "skip", "row-open"},
	ReasonAMSHighRBL:           {"ams", "skip", "rbl-above-threshold"},
}

// String returns the reason's report name.
func (r Reason) String() string { return reasonMeta[r].name }

// Unit returns "dms" or "ams", the scheduler unit the reason belongs to.
func (r Reason) Unit() string { return reasonMeta[r].unit }

// Kind returns the decision kind: "delay", "expire", "drop", or "skip".
func (r Reason) Kind() string { return reasonMeta[r].kind }

// Decision is one audited scheduler event with the inputs behind it.
type Decision struct {
	Cycle   uint64
	Channel int
	Bank    int
	Row     int64
	ReqID   uint64
	Reason  Reason
	// VisibleRBL is the number of pending same-row requests visible to the
	// scheduler when the decision was taken.
	VisibleRBL int
	// Delay and ThRBL are the in-force DMS delay and AMS threshold;
	// Coverage the running prediction coverage, all at decision time.
	Delay    int
	ThRBL    int
	Coverage float64
}

// AdaptPoint is one entry of the dynamic units' per-window adaptation trace:
// what a Dyn-DMS or Dyn-AMS unit decided at a profile-window boundary.
type AdaptPoint struct {
	Cycle   uint64 `json:"cycle"`
	Channel int    `json:"channel"`
	// Unit is "dms" or "ams".
	Unit string `json:"unit"`
	// Delay is the in-force delay after the window decision (DMS); BWUtil
	// the window's bus utilization that drove it; Phase the search phase.
	Delay  int     `json:"delay,omitempty"`
	BWUtil float64 `json:"bwutil,omitempty"`
	Phase  string  `json:"phase,omitempty"`
	// ThRBL is the threshold after the window decision (AMS); Coverage the
	// window's achieved coverage over WindowReads reads.
	ThRBL         int     `json:"th_rbl,omitempty"`
	Coverage      float64 `json:"coverage,omitempty"`
	WindowReads   uint64  `json:"window_reads,omitempty"`
	WindowDropped uint64  `json:"window_dropped,omitempty"`
}

// maxAdaptPoints bounds the adaptation trace; windows are coarse (>=1024
// cycles), so this covers runs far longer than any workload in the suite.
const maxAdaptPoints = 1 << 14

// AuditLog is a bounded scheduler decision log. Per-reason counters are
// exact for the whole run; the ring retains the most recent entries for
// detailed inspection. A nil *AuditLog discards everything.
type AuditLog struct {
	counts [NumReasons]uint64
	total  uint64

	ring    []Decision
	next    int
	wrapped bool

	adapt        []AdaptPoint
	adaptDropped uint64
}

// NewAuditLog creates a log retaining up to capacity decisions (capacity
// must be positive).
func NewAuditLog(capacity int) *AuditLog {
	if capacity <= 0 {
		panic("obs: audit capacity must be positive")
	}
	return &AuditLog{ring: make([]Decision, 0, capacity)}
}

// Record logs one decision. Nil-safe and allocation-free after the ring has
// grown to capacity.
func (l *AuditLog) Record(d Decision) {
	if l == nil {
		return
	}
	l.counts[d.Reason]++
	l.total++
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, d)
		return
	}
	l.ring[l.next] = d
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
	}
	l.wrapped = true
}

// Tally counts one decision without retaining ring detail. Hot per-cycle
// repeat decisions (a bank held by DMS tallies once per cycle, an AMS skip
// re-evaluated every cycle) use this so the exact per-reason counters never
// lose an event while the bounded ring keeps room for representative
// entries instead of millions of near-identical ones.
func (l *AuditLog) Tally(r Reason) {
	if l == nil {
		return
	}
	l.counts[r]++
	l.total++
}

// RecordAdapt appends one adaptation-trace point. Nil-safe; the trace is
// bounded and counts what it had to drop.
func (l *AuditLog) RecordAdapt(p AdaptPoint) {
	if l == nil {
		return
	}
	if len(l.adapt) >= maxAdaptPoints {
		l.adaptDropped++
		return
	}
	l.adapt = append(l.adapt, p)
}

// Count returns the exact number of decisions recorded for the reason.
func (l *AuditLog) Count(r Reason) uint64 {
	if l == nil {
		return 0
	}
	return l.counts[r]
}

// Total returns the exact number of decisions recorded (all reasons).
func (l *AuditLog) Total() uint64 {
	if l == nil {
		return 0
	}
	return l.total
}

// Entries returns the retained decisions in chronological order.
func (l *AuditLog) Entries() []Decision {
	if l == nil {
		return nil
	}
	if !l.wrapped {
		return append([]Decision(nil), l.ring...)
	}
	out := make([]Decision, 0, len(l.ring))
	out = append(out, l.ring[l.next:]...)
	return append(out, l.ring[:l.next]...)
}

// Adapt returns the adaptation trace.
func (l *AuditLog) Adapt() []AdaptPoint {
	if l == nil {
		return nil
	}
	return l.adapt
}

// MergeAuditLogs folds per-partition decision logs into one chronological
// log. Counters sum exactly; retained ring entries and adaptation points are
// concatenated in argument order and stably sorted by cycle, so same-cycle
// events keep partition order — the interleaving the sequential 0..N-1 tick
// loop records. The merged ring capacity is the sum of the input capacities.
// Nil inputs are skipped; returns nil when every input is nil.
func MergeAuditLogs(logs ...*AuditLog) *AuditLog {
	var ringCap int
	any := false
	for _, l := range logs {
		if l == nil {
			continue
		}
		any = true
		ringCap += cap(l.ring)
	}
	if !any {
		return nil
	}
	if ringCap < 1 {
		ringCap = 1
	}
	out := NewAuditLog(ringCap)
	var entries []Decision
	for _, l := range logs {
		if l == nil {
			continue
		}
		for r := Reason(0); r < NumReasons; r++ {
			out.counts[r] += l.counts[r]
		}
		out.total += l.total
		entries = append(entries, l.Entries()...)
		out.adapt = append(out.adapt, l.adapt...)
		out.adaptDropped += l.adaptDropped
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].Cycle < entries[j].Cycle })
	sort.SliceStable(out.adapt, func(i, j int) bool { return out.adapt[i].Cycle < out.adapt[j].Cycle })
	out.ring = append(out.ring, entries...)
	return out
}

// ReasonCount is one row of the serialized per-reason breakdown.
type ReasonCount struct {
	Unit   string `json:"unit"`
	Kind   string `json:"kind"`
	Reason string `json:"reason"`
	Count  uint64 `json:"count"`
}

// AuditSummary is the serializable digest of an audit log: exact reason-code
// totals, kind aggregates, and the adaptation trace.
type AuditSummary struct {
	Total        uint64 `json:"total"`
	RingCapacity int    `json:"ring_capacity"`
	// RingDropped counts decisions no longer retained in the ring (the
	// counters above still include them).
	RingDropped uint64 `json:"ring_dropped,omitempty"`

	DMSDelayHolds    uint64 `json:"dms_delay_holds"`
	DMSDelayExpiries uint64 `json:"dms_delay_expiries"`
	AMSDrops         uint64 `json:"ams_drops"`
	AMSSkips         uint64 `json:"ams_skips"`

	Reasons []ReasonCount `json:"reasons"`

	Adapt        []AdaptPoint `json:"adapt,omitempty"`
	AdaptDropped uint64       `json:"adapt_dropped,omitempty"`
}

// Summary builds the serializable digest (nil for a nil log).
func (l *AuditLog) Summary() *AuditSummary {
	if l == nil {
		return nil
	}
	s := &AuditSummary{
		Total:            l.total,
		RingCapacity:     cap(l.ring),
		RingDropped:      l.total - uint64(len(l.ring)),
		DMSDelayHolds:    l.counts[ReasonDMSDelayHold],
		DMSDelayExpiries: l.counts[ReasonDMSDelayExpired],
		AMSDrops:         l.counts[ReasonAMSDrop],
		Adapt:            l.adapt,
		AdaptDropped:     l.adaptDropped,
	}
	for r := Reason(0); r < NumReasons; r++ {
		if reasonMeta[r].kind == "skip" {
			s.AMSSkips += l.counts[r]
		}
		if l.counts[r] == 0 {
			continue
		}
		s.Reasons = append(s.Reasons, ReasonCount{
			Unit:   r.Unit(),
			Kind:   r.Kind(),
			Reason: r.String(),
			Count:  l.counts[r],
		})
	}
	return s
}

// decisionJSON is the JSONL wire form of one Decision.
type decisionJSON struct {
	Cycle      uint64  `json:"cycle"`
	Channel    int     `json:"channel"`
	Bank       int     `json:"bank"`
	Row        int64   `json:"row"`
	ReqID      uint64  `json:"req_id,omitempty"`
	Unit       string  `json:"unit"`
	Kind       string  `json:"kind"`
	Reason     string  `json:"reason"`
	VisibleRBL int     `json:"visible_rbl"`
	Delay      int     `json:"delay"`
	ThRBL      int     `json:"th_rbl"`
	Coverage   float64 `json:"coverage"`
}

// WriteJSONL streams the retained decisions as one JSON object per line,
// oldest first. Nil-safe (writes nothing).
func (l *AuditLog) WriteJSONL(w io.Writer) error {
	if l == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, d := range l.Entries() {
		row := decisionJSON{
			Cycle:      d.Cycle,
			Channel:    d.Channel,
			Bank:       d.Bank,
			Row:        d.Row,
			ReqID:      d.ReqID,
			Unit:       d.Reason.Unit(),
			Kind:       d.Reason.Kind(),
			Reason:     d.Reason.String(),
			VisibleRBL: d.VisibleRBL,
			Delay:      d.Delay,
			ThRBL:      d.ThRBL,
			Coverage:   d.Coverage,
		}
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	return nil
}
