package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// CmdKind is a DRAM command class.
type CmdKind uint8

// DRAM command kinds.
const (
	CmdACT CmdKind = iota
	CmdPRE
	CmdRD
	CmdWR
	CmdREF
	numCmdKinds
)

var cmdNames = [numCmdKinds]string{"ACT", "PRE", "RD", "WR", "REF"}

// String returns the command mnemonic.
func (k CmdKind) String() string {
	if int(k) < len(cmdNames) {
		return cmdNames[k]
	}
	return fmt.Sprintf("Cmd(%d)", uint8(k))
}

// Cmd is one traced DRAM command.
type Cmd struct {
	Cycle   uint64  // memory cycle the command issued
	Row     int64   // target row (-1 when not row-specific, e.g. REF)
	Channel int16   // memory channel / partition id
	Bank    int16   // bank (-1 for all-bank commands)
	Kind    CmdKind // command class
}

// CmdTrace is a bounded ring buffer of DRAM commands: when full, the oldest
// entries are overwritten, so the trace always holds the most recent window
// of activity. A nil *CmdTrace discards everything.
type CmdTrace struct {
	buf   []Cmd
	total uint64
	// preDropped counts commands dropped before this ring existed; it is
	// non-zero only on traces built by MergeCmdTraces, where it carries the
	// source rings' drop counts so Total/Dropped stay exact after the merge.
	preDropped uint64
}

// NewCmdTrace creates a trace ring with the given capacity (in commands);
// capacity must be positive.
func NewCmdTrace(capacity int) *CmdTrace {
	if capacity <= 0 {
		panic("obs: trace capacity must be positive")
	}
	return &CmdTrace{buf: make([]Cmd, capacity)}
}

// Add appends one command; nil-safe and allocation-free.
func (t *CmdTrace) Add(kind CmdKind, channel, bank int, row int64, cycle uint64) {
	if t == nil {
		return
	}
	t.buf[t.total%uint64(len(t.buf))] = Cmd{
		Cycle: cycle, Row: row,
		Channel: int16(channel), Bank: int16(bank), Kind: kind,
	}
	t.total++
}

// Total returns how many commands were ever offered (nil-safe).
func (t *CmdTrace) Total() uint64 {
	if t == nil {
		return 0
	}
	return t.total + t.preDropped
}

// Dropped returns how many commands were overwritten after the ring wrapped
// (nil-safe).
func (t *CmdTrace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	d := t.preDropped
	if t.total > uint64(len(t.buf)) {
		d += t.total - uint64(len(t.buf))
	}
	return d
}

// Commands returns the retained commands in issue order (oldest first).
func (t *CmdTrace) Commands() []Cmd {
	if t == nil || t.total == 0 {
		return nil
	}
	n := t.total
	cap64 := uint64(len(t.buf))
	if n <= cap64 {
		out := make([]Cmd, n)
		copy(out, t.buf[:n])
		return out
	}
	out := make([]Cmd, cap64)
	start := t.total % cap64 // oldest retained entry
	copy(out, t.buf[start:])
	copy(out[cap64-start:], t.buf[:start])
	return out
}

// MergeCmdTraces folds per-partition trace rings into one chronological
// trace. Retained commands are concatenated in argument order and stably
// sorted by cycle, so commands issued on the same cycle keep partition
// order — exactly the interleaving the sequential 0..N-1 tick loop records.
// Nil inputs are skipped; the result's Total and Dropped equal the sums over
// the inputs. Returns nil when every input is nil.
func MergeCmdTraces(traces ...*CmdTrace) *CmdTrace {
	var cmds []Cmd
	var total uint64
	any := false
	for _, t := range traces {
		if t == nil {
			continue
		}
		any = true
		total += t.Total()
		cmds = append(cmds, t.Commands()...)
	}
	if !any {
		return nil
	}
	sort.SliceStable(cmds, func(i, j int) bool { return cmds[i].Cycle < cmds[j].Cycle })
	if len(cmds) == 0 {
		// Keep a 1-slot buffer so the invariant "buf is non-empty" holds.
		return &CmdTrace{buf: make([]Cmd, 1), preDropped: total}
	}
	return &CmdTrace{buf: cmds, total: uint64(len(cmds)), preDropped: total - uint64(len(cmds))}
}

// WriteChromeTrace writes the retained commands as a Chrome trace_event JSON
// document (load it at chrome://tracing or https://ui.perfetto.dev). Each
// command becomes a 1-unit complete event; channels map to processes and
// banks to threads, with timestamps in memory cycles.
func (t *CmdTrace) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`); err != nil {
		return err
	}
	for i, c := range t.Commands() {
		sep := ","
		if i == 0 {
			sep = ""
		}
		fmt.Fprintf(bw, `%s{"name":%q,"ph":"X","ts":%d,"dur":1,"pid":%d,"tid":%d,"args":{"row":%d}}`,
			sep, c.Kind.String(), c.Cycle, c.Channel, c.Bank, c.Row)
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteJSONL writes the retained commands as one JSON object per line.
func (t *CmdTrace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, c := range t.Commands() {
		if _, err := fmt.Fprintf(bw, `{"cycle":%d,"cmd":%q,"channel":%d,"bank":%d,"row":%d}`+"\n",
			c.Cycle, c.Kind.String(), c.Channel, c.Bank, c.Row); err != nil {
			return err
		}
	}
	return bw.Flush()
}
