package obs

// This file is the sweep-level half of the observability layer: where the
// rest of the package watches one simulation from the inside, RunLog watches
// the experiment harness from above. Every exp.Runner.Run call gets one
// lifecycle span (submitted → golden-wait → queued → running → done/error,
// or submitted → dedup-joined for singleflight joins) with monotonic
// timestamps, the worker slot that executed it, per-run wall-clock,
// simulated cycles, and runtime.MemStats-delta allocation stats. The log
// exports three views:
//
//   - a Chrome trace_event document (one track per worker slot, one slice
//     per executed run, join instants on the executing slot's track) so a
//     whole sweep opens in Perfetto,
//   - a structured JSONL event log plus a serializable SweepSummary block
//     (total/dedup/error counts, run wall-clock percentiles, worker
//     occupancy, queue-wait histogram),
//   - live registry families (lazysim_sweep_runs_total{state},
//     lazysim_sweep_workers_busy, lazysim_sweep_queue_depth, per-app
//     run-duration gauges) published while the sweep executes, plus an
//     optional TTY progress line.
//
// Determinism contract: the count fields of SweepSummary (runs, executed,
// deduped, errors, events, sim_cycles) are invariant under the worker count
// and scheduling races — every planned point produces exactly one executing
// span and its duplicate Run calls exactly one dedup-joined span each, no
// matter which caller wins the singleflight race. Everything measured in
// wall-clock (the Timing block, prefetch_hits, per-span timestamps) is not,
// and is excluded from regression gating (see lazycmp -ignore).

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// RunState is the lifecycle state of one sweep-level run span.
type RunState uint8

// Run-lifecycle states. A span either executes (submitted → golden-wait →
// queued → running → done|error; early failures may skip intermediate
// states) or joins another span's in-flight simulation (submitted →
// dedup-joined).
const (
	RunSubmitted RunState = iota
	RunGoldenWait
	RunQueued
	RunRunning
	RunDone
	RunError
	RunJoined
	numRunStates
)

var runStateNames = [numRunStates]string{
	"submitted", "golden-wait", "queued", "running", "done", "error", "dedup-joined",
}

// String returns the state's report name.
func (s RunState) String() string {
	if int(s) < len(runStateNames) {
		return runStateNames[s]
	}
	return fmt.Sprintf("RunState(%d)", uint8(s))
}

// Terminal reports whether the state ends a span.
func (s RunState) Terminal() bool {
	return s == RunDone || s == RunError || s == RunJoined
}

// RunEvent is one timestamped lifecycle transition in the sweep event log.
type RunEvent struct {
	TSMicros int64    // monotonic microseconds since the RunLog was created
	Span     int      // span id the transition belongs to
	State    RunState // state the span entered
	App      string
	Scheme   string
	Worker   int    // executing worker slot (running and later; else -1)
	Target   int    // dedup-joined: span id of the executing flight; else -1
	Prefetch bool   // dedup-joined: the joined flight was prefetch-originated
	Err      string // error state: the failure string
}

// RunSpan is one Run call's lifecycle record. A nil *RunSpan (handed out by
// a nil or disabled RunLog) is valid everywhere and discards everything. All
// mutation goes through the owning log's lock; timestamps are monotonic
// microseconds since the log's creation, so spans from concurrent workers
// order consistently.
type RunSpan struct {
	l *RunLog

	id     int
	app    string
	scheme string
	key    string
	origin string // "call" or "prefetch"

	state    RunState
	worker   int
	target   int
	prefetch bool
	err      string

	submittedUS, goldenUS, queuedUS, startedUS, finishedUS int64

	simCycles  uint64
	allocBytes uint64
	mallocs    uint64
	joins      int
}

// ID returns the span id (-1 for a nil span).
func (sp *RunSpan) ID() int {
	if sp == nil {
		return -1
	}
	return sp.id
}

// RunLogOptions configures a RunLog.
type RunLogOptions struct {
	// Metrics, when non-nil, receives the live sweep families
	// (lazysim_sweep_runs_total{state}, lazysim_sweep_workers_busy,
	// lazysim_sweep_queue_depth, lazysim_sweep_run_seconds{app}).
	Metrics *Registry
	// Progress, when non-nil, receives a single \r-rewritten progress line
	// on every span completion (intended for an interactive stderr).
	Progress io.Writer
}

// RunLog records the sweep-level lifecycle of every Run call. It is safe for
// concurrent use from any number of worker goroutines; a nil *RunLog
// discards everything.
type RunLog struct {
	mu    sync.Mutex
	start time.Time

	workers int
	spans   []*RunSpan
	events  []RunEvent

	// live tallies, maintained incrementally so the progress line and the
	// registry gauges never need a full scan
	executed, errors, joined int
	busy, queued             int

	runWall   Histogram // executed-run wall clock, microseconds
	queueWait Histogram // queued → running wait, microseconds

	progress io.Writer

	mState      [numRunStates]*Metric
	mBusy       *Metric
	mQueue      *Metric
	mAppSeconds *Family
}

// NewRunLog creates a run log and registers the sweep metric families when
// a registry is supplied.
func NewRunLog(o RunLogOptions) *RunLog {
	l := &RunLog{start: time.Now(), progress: o.Progress}
	if o.Metrics != nil {
		states := o.Metrics.Register("lazysim_sweep_runs_total",
			"Sweep run-lifecycle transitions by state", KindCounter, "state")
		for s := RunState(0); s < numRunStates; s++ {
			l.mState[s] = states.With(s.String())
		}
		l.mBusy = o.Metrics.Gauge("lazysim_sweep_workers_busy",
			"Worker slots currently executing a simulation")
		l.mQueue = o.Metrics.Gauge("lazysim_sweep_queue_depth",
			"Runs waiting for a worker slot")
		l.mAppSeconds = o.Metrics.Register("lazysim_sweep_run_seconds",
			"Wall-clock seconds of the app's most recently completed run",
			KindGauge, "app")
	}
	return l
}

// SetWorkers records the worker-pool size (used for occupancy and the trace
// track layout). Nil-safe.
func (l *RunLog) SetWorkers(n int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.workers = n
	l.mu.Unlock()
}

// nowLocked returns monotonic microseconds since the log was created.
func (l *RunLog) nowLocked() int64 {
	return time.Since(l.start).Microseconds()
}

// eventLocked appends one transition and bumps its state counter.
func (l *RunLog) eventLocked(sp *RunSpan, state RunState) {
	ev := RunEvent{
		TSMicros: l.nowLocked(), Span: sp.id, State: state,
		App: sp.app, Scheme: sp.scheme, Worker: -1, Target: -1,
	}
	if state >= RunRunning && state != RunJoined && sp.worker >= 0 {
		ev.Worker = sp.worker
	}
	if state == RunJoined {
		ev.Target = sp.target
		ev.Prefetch = sp.prefetch
	}
	if state == RunError {
		ev.Err = sp.err
	}
	l.events = append(l.events, ev)
	if m := l.mState[state]; m != nil {
		m.Add(1)
	}
}

// Begin opens a span for one Run call. Origin is "call" for a consuming Run
// and "prefetch" for a plan-initiated flight. Nil-safe (returns a nil span).
func (l *RunLog) Begin(app, scheme, key, origin string) *RunSpan {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	sp := &RunSpan{
		l: l, id: len(l.spans), app: app, scheme: scheme, key: key,
		origin: origin, state: RunSubmitted, worker: -1, target: -1,
		submittedUS: l.nowLocked(),
		goldenUS:    -1, queuedUS: -1, startedUS: -1, finishedUS: -1,
	}
	l.spans = append(l.spans, sp)
	l.eventLocked(sp, RunSubmitted)
	return sp
}

// GoldenWait marks the span waiting on the app's golden functional run.
func (sp *RunSpan) GoldenWait() {
	if sp == nil {
		return
	}
	l := sp.l
	l.mu.Lock()
	sp.state = RunGoldenWait
	sp.goldenUS = l.nowLocked()
	l.eventLocked(sp, RunGoldenWait)
	l.mu.Unlock()
}

// Queued marks the span waiting for a worker slot.
func (sp *RunSpan) Queued() {
	if sp == nil {
		return
	}
	l := sp.l
	l.mu.Lock()
	sp.state = RunQueued
	sp.queuedUS = l.nowLocked()
	l.queued++
	if l.mQueue != nil {
		l.mQueue.Add(1)
	}
	l.eventLocked(sp, RunQueued)
	l.mu.Unlock()
}

// Running marks the span executing on the given worker slot.
func (sp *RunSpan) Running(worker int) {
	if sp == nil {
		return
	}
	l := sp.l
	l.mu.Lock()
	sp.state = RunRunning
	sp.worker = worker
	sp.startedUS = l.nowLocked()
	if sp.queuedUS >= 0 {
		l.queued--
		if l.mQueue != nil {
			l.mQueue.Add(-1)
		}
		l.queueWait.Observe(uint64(sp.startedUS - sp.queuedUS))
	}
	l.busy++
	if l.mBusy != nil {
		l.mBusy.Add(1)
	}
	l.eventLocked(sp, RunRunning)
	l.mu.Unlock()
}

// Done finalizes an executed span: simulated cycles and the run's
// runtime.MemStats allocation delta (approximate under concurrency — the
// stats are process-global, so overlapping runs attribute each other's
// allocations; the totals are still the right order of magnitude for
// profiling). Must be called while the worker slot is still held, so that
// per-slot spans never overlap in time.
func (sp *RunSpan) Done(simCycles, allocBytes, mallocs uint64) {
	if sp == nil {
		return
	}
	l := sp.l
	l.mu.Lock()
	sp.state = RunDone
	sp.finishedUS = l.nowLocked()
	sp.simCycles = simCycles
	sp.allocBytes = allocBytes
	sp.mallocs = mallocs
	l.executed++
	l.finishRunningLocked(sp)
	l.eventLocked(sp, RunDone)
	l.renderProgressLocked()
	l.mu.Unlock()
}

// Fail finalizes a span that errored at any point of its lifecycle.
func (sp *RunSpan) Fail(err error) {
	if sp == nil {
		return
	}
	l := sp.l
	l.mu.Lock()
	if sp.queuedUS >= 0 && sp.startedUS < 0 {
		// failed while still queued (cannot happen today, but keep the
		// gauge honest if an error path ever lands between Queued and
		// Running)
		l.queued--
		if l.mQueue != nil {
			l.mQueue.Add(-1)
		}
	}
	sp.state = RunError
	sp.finishedUS = l.nowLocked()
	if err != nil {
		sp.err = err.Error()
	}
	l.errors++
	if sp.startedUS >= 0 {
		l.finishRunningLocked(sp)
	}
	l.eventLocked(sp, RunError)
	l.renderProgressLocked()
	l.mu.Unlock()
}

// finishRunningLocked retires a running span from the busy tally and
// records its wall clock.
func (l *RunLog) finishRunningLocked(sp *RunSpan) {
	if sp.startedUS < 0 {
		return
	}
	l.busy--
	if l.mBusy != nil {
		l.mBusy.Add(-1)
	}
	wallUS := sp.finishedUS - sp.startedUS
	l.runWall.Observe(uint64(wallUS))
	if l.mAppSeconds != nil {
		l.mAppSeconds.With(sp.app).Set(float64(wallUS) / 1e6)
	}
}

// Joined finalizes the span as a singleflight join onto target's in-flight
// (or memoized) simulation; prefetchHit records that the joined flight was
// initiated by a prefetch plan, i.e. the plan did its job.
func (sp *RunSpan) Joined(target *RunSpan, prefetchHit bool) {
	if sp == nil {
		return
	}
	l := sp.l
	l.mu.Lock()
	sp.state = RunJoined
	sp.finishedUS = l.nowLocked()
	if target != nil {
		sp.target = target.id
		target.joins++
	}
	sp.prefetch = prefetchHit
	l.joined++
	l.eventLocked(sp, RunJoined)
	l.renderProgressLocked()
	l.mu.Unlock()
}

// renderProgressLocked rewrites the single TTY progress line.
func (l *RunLog) renderProgressLocked() {
	if l.progress == nil {
		return
	}
	fmt.Fprintf(l.progress,
		"\r[sweep] %d/%d done · exec %d · dedup %d · err %d · busy %d/%d · queued %d ",
		l.executed+l.errors+l.joined, len(l.spans),
		l.executed, l.joined, l.errors, l.busy, l.workers, l.queued)
}

// FinishProgress renders the final progress line and terminates it with a
// newline. Nil-safe; a no-op without a progress writer.
func (l *RunLog) FinishProgress() {
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.progress != nil {
		l.renderProgressLocked()
		fmt.Fprintln(l.progress)
	}
	l.mu.Unlock()
}

// Events returns a copy of the event log in append (timestamp) order.
func (l *RunLog) Events() []RunEvent {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]RunEvent(nil), l.events...)
}

// RunSpanJSON is the serializable form of one span, embedded in the sweep
// summary so reports can render worker timelines and duration CDFs.
type RunSpanJSON struct {
	ID       int    `json:"id"`
	App      string `json:"app"`
	Scheme   string `json:"scheme"`
	Key      string `json:"key"`
	Origin   string `json:"origin"`
	State    string `json:"state"`
	Worker   int    `json:"worker"`
	Target   int    `json:"target"`
	Prefetch bool   `json:"prefetch_hit,omitempty"`
	Err      string `json:"err,omitempty"`

	SubmittedUS int64 `json:"submitted_us"`
	StartedUS   int64 `json:"started_us"`
	FinishedUS  int64 `json:"finished_us"`
	QueueWaitUS int64 `json:"queue_wait_us"`
	WallUS      int64 `json:"wall_us"`

	SimCycles    uint64  `json:"sim_cycles,omitempty"`
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
	AllocBytes   uint64  `json:"alloc_bytes,omitempty"`
	Mallocs      uint64  `json:"mallocs,omitempty"`
	Joins        int     `json:"joins,omitempty"`
}

// SweepSummary is the serializable digest of one sweep. The count fields
// (Runs, Executed, Deduped, Errors, Events, SimCycles) are deterministic —
// invariant under worker count and singleflight races — and are gated by
// lazycmp; Timing, PrefetchHits and the per-span timestamps are wall-clock
// measurements and are not.
type SweepSummary struct {
	Runs         int    `json:"runs"`
	Executed     int    `json:"executed"`
	Deduped      int    `json:"deduped"`
	Errors       int    `json:"errors"`
	PrefetchHits int    `json:"prefetch_hits"`
	Events       int    `json:"events"`
	Workers      int    `json:"workers"`
	SimCycles    uint64 `json:"sim_cycles"`

	Timing SweepTiming   `json:"timing"`
	Spans  []RunSpanJSON `json:"spans,omitempty"`
}

// SweepTiming collects the nondeterministic wall-clock measurements of a
// sweep; lazycmp flattens these under sweep.timing.* so a single prefix
// rule excludes them from regression gating.
type SweepTiming struct {
	WallSeconds         float64      `json:"wall_seconds"`
	RunMeanSeconds      float64      `json:"run_mean_seconds"`
	RunP50Seconds       float64      `json:"run_p50_seconds"`
	RunP99Seconds       float64      `json:"run_p99_seconds"`
	RunMaxSeconds       float64      `json:"run_max_seconds"`
	QueueWaitP50Seconds float64      `json:"queue_wait_p50_seconds"`
	QueueWaitP99Seconds float64      `json:"queue_wait_p99_seconds"`
	QueueWaitMaxSeconds float64      `json:"queue_wait_max_seconds"`
	WorkerOccupancy     float64      `json:"worker_occupancy"`
	CyclesPerSec        float64      `json:"cycles_per_sec"`
	AllocBytes          uint64       `json:"alloc_bytes"`
	Mallocs             uint64       `json:"mallocs"`
	QueueWaitHist       []HistBucket `json:"queue_wait_hist,omitempty"`
}

const usPerSec = 1e6

// Summary snapshots the log into its serializable form (nil for a nil log).
func (l *RunLog) Summary() *SweepSummary {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	s := &SweepSummary{
		Runs: len(l.spans), Executed: l.executed, Deduped: l.joined,
		Errors: l.errors, Events: len(l.events), Workers: l.workers,
	}
	wallUS := l.nowLocked()
	var busyUS int64
	for _, sp := range l.spans {
		j := l.snapshotLocked(sp)
		busyUS += j.WallUS
		if sp.state == RunJoined && sp.prefetch {
			s.PrefetchHits++
		}
		s.SimCycles += sp.simCycles
		s.Spans = append(s.Spans, j)
	}
	t := &s.Timing
	t.WallSeconds = float64(wallUS) / usPerSec
	t.RunMeanSeconds = l.runWall.Mean() / usPerSec
	t.RunP50Seconds = float64(l.runWall.Percentile(50)) / usPerSec
	t.RunP99Seconds = float64(l.runWall.Percentile(99)) / usPerSec
	t.RunMaxSeconds = float64(l.runWall.Max()) / usPerSec
	t.QueueWaitP50Seconds = float64(l.queueWait.Percentile(50)) / usPerSec
	t.QueueWaitP99Seconds = float64(l.queueWait.Percentile(99)) / usPerSec
	t.QueueWaitMaxSeconds = float64(l.queueWait.Max()) / usPerSec
	t.QueueWaitHist = l.queueWait.Buckets()
	if l.workers > 0 && wallUS > 0 {
		t.WorkerOccupancy = float64(busyUS) / (float64(l.workers) * float64(wallUS))
	}
	if t.WallSeconds > 0 {
		t.CyclesPerSec = float64(s.SimCycles) / t.WallSeconds
	}
	for _, sp := range l.spans {
		t.AllocBytes += sp.allocBytes
		t.Mallocs += sp.mallocs
	}
	return s
}

// snapshotLocked builds the serializable view of one span.
func (l *RunLog) snapshotLocked(sp *RunSpan) RunSpanJSON {
	j := RunSpanJSON{
		ID: sp.id, App: sp.app, Scheme: sp.scheme, Key: sp.key,
		Origin: sp.origin, State: sp.state.String(), Worker: sp.worker,
		Target: sp.target, Prefetch: sp.prefetch, Err: sp.err,
		SubmittedUS: sp.submittedUS, StartedUS: sp.startedUS,
		FinishedUS: sp.finishedUS,
		SimCycles:  sp.simCycles, AllocBytes: sp.allocBytes,
		Mallocs: sp.mallocs, Joins: sp.joins,
	}
	if sp.queuedUS >= 0 && sp.startedUS >= 0 {
		j.QueueWaitUS = sp.startedUS - sp.queuedUS
	}
	if sp.startedUS >= 0 && sp.finishedUS >= 0 {
		j.WallUS = sp.finishedUS - sp.startedUS
		if j.WallUS > 0 {
			j.CyclesPerSec = float64(sp.simCycles) / (float64(j.WallUS) / usPerSec)
		}
	}
	return j
}

// SpanByKey snapshots the most recent span carrying the given run key —
// executing or terminal. The lazyd daemon uses it to map a job's canonical
// run key onto the Runner's live lifecycle state (golden-wait, queued,
// running, done, error) without the service layer duplicating the state
// machine. Returns ok=false for a nil log or an unseen key.
func (l *RunLog) SpanByKey(key string) (RunSpanJSON, bool) {
	if l == nil {
		return RunSpanJSON{}, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := len(l.spans) - 1; i >= 0; i-- {
		if sp := l.spans[i]; sp.key == key && sp.state != RunJoined {
			return l.snapshotLocked(sp), true
		}
	}
	return RunSpanJSON{}, false
}

// WriteEventsJSONL writes the event log, one JSON object per line, in
// timestamp order. Nil-safe (writes nothing).
func (l *RunLog) WriteEventsJSONL(w io.Writer) error {
	if l == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, e := range l.Events() {
		fmt.Fprintf(bw, `{"ts_us":%d,"span":%d,"state":%q,"app":%q,"scheme":%q`,
			e.TSMicros, e.Span, e.State.String(), e.App, e.Scheme)
		if e.Worker >= 0 {
			fmt.Fprintf(bw, `,"worker":%d`, e.Worker)
		}
		if e.State == RunJoined {
			fmt.Fprintf(bw, `,"target":%d,"prefetch_hit":%t`, e.Target, e.Prefetch)
		}
		if e.Err != "" {
			fmt.Fprintf(bw, `,"err":%q`, e.Err)
		}
		if _, err := bw.WriteString("}\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteChromeTrace writes the sweep as a Chrome trace_event document (load
// it at https://ui.perfetto.dev): one thread track per worker slot carrying
// a complete-event slice per executed run, a dedicated track for dedup
// joins whose target never executed, and join instants on the executing
// slot's track. Timestamps are monotonic microseconds, the unit Perfetto
// expects. Nil-safe (writes an empty document).
func (l *RunLog) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	if l != nil {
		l.mu.Lock()
		workers := l.workers
		spans := append([]*RunSpan(nil), l.spans...)
		l.mu.Unlock()

		sep := ""
		emit := func(format string, args ...any) {
			fmt.Fprintf(bw, sep+format, args...)
			sep = ","
		}
		emit(`{"ph":"M","pid":0,"name":"process_name","args":{"name":"exp.Runner sweep"}}`)
		for wkr := 0; wkr < workers; wkr++ {
			emit(`{"ph":"M","pid":0,"tid":%d,"name":"thread_name","args":{"name":"worker %d"}}`, wkr, wkr)
		}
		emit(`{"ph":"M","pid":0,"tid":%d,"name":"thread_name","args":{"name":"dedup joins"}}`, workers)
		for _, sp := range spans {
			if sp.startedUS >= 0 && sp.finishedUS >= 0 {
				dur := sp.finishedUS - sp.startedUS
				if dur < 1 {
					dur = 1
				}
				cps := 0.0
				if sp.finishedUS > sp.startedUS {
					cps = float64(sp.simCycles) / (float64(sp.finishedUS-sp.startedUS) / usPerSec)
				}
				emit(`{"name":%q,"ph":"X","ts":%d,"dur":%d,"pid":0,"tid":%d,"args":{"span":%d,"state":%q,"key":%q,"origin":%q,"sim_cycles":%d,"cycles_per_sec":%.0f,"alloc_bytes":%d,"joins":%d,"err":%q}}`,
					sp.app+"/"+sp.scheme, sp.startedUS, dur, sp.worker,
					sp.id, sp.state.String(), sp.key, sp.origin,
					sp.simCycles, cps, sp.allocBytes, sp.joins, sp.err)
			}
		}
		for _, sp := range spans {
			if sp.state != RunJoined {
				continue
			}
			lane := workers
			if sp.target >= 0 && sp.target < len(spans) && spans[sp.target].worker >= 0 {
				lane = spans[sp.target].worker
			}
			emit(`{"name":%q,"ph":"i","s":"t","ts":%d,"pid":0,"tid":%d,"args":{"span":%d,"target":%d,"prefetch_hit":%t}}`,
				"join "+sp.app+"/"+sp.scheme, sp.finishedUS, lane, sp.id, sp.target, sp.prefetch)
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// Reconcile cross-checks the log's three views against each other and
// returns the first inconsistency found:
//
//   - every span is terminal, and done + error + dedup-joined == total spans
//   - the event log carries exactly one event per state each span entered
//   - the registry counters (when wired) match the event log per state, and
//     the busy/queue gauges have drained to zero
//   - per worker slot, executed spans never overlap in time, and slot ids
//     lie in [0, workers)
//
// It is the machine check behind the CI span-reconciliation gate. Nil-safe
// (a nil log is vacuously consistent).
func (l *RunLog) Reconcile() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()

	var terminal [numRunStates]int
	var fromSpans [numRunStates]int
	byWorker := map[int][]*RunSpan{}
	for _, sp := range l.spans {
		if !sp.state.Terminal() {
			return fmt.Errorf("obs: span %d (%s/%s) not terminal: %s",
				sp.id, sp.app, sp.scheme, sp.state)
		}
		terminal[sp.state]++
		// reconstruct the states this span passed through
		fromSpans[RunSubmitted]++
		if sp.goldenUS >= 0 {
			fromSpans[RunGoldenWait]++
		}
		if sp.queuedUS >= 0 {
			fromSpans[RunQueued]++
		}
		if sp.startedUS >= 0 {
			fromSpans[RunRunning]++
		}
		fromSpans[sp.state]++
		if sp.startedUS >= 0 {
			if l.workers > 0 && (sp.worker < 0 || sp.worker >= l.workers) {
				return fmt.Errorf("obs: span %d ran on worker %d, want [0,%d)",
					sp.id, sp.worker, l.workers)
			}
			byWorker[sp.worker] = append(byWorker[sp.worker], sp)
		}
	}
	if got, want := terminal[RunDone]+terminal[RunError]+terminal[RunJoined], len(l.spans); got != want {
		return fmt.Errorf("obs: terminal spans %d != total spans %d", got, want)
	}
	var fromEvents [numRunStates]int
	for _, e := range l.events {
		fromEvents[e.State]++
	}
	for s := RunState(0); s < numRunStates; s++ {
		if fromEvents[s] != fromSpans[s] {
			return fmt.Errorf("obs: %d %q events but %d spans entered the state",
				fromEvents[s], s, fromSpans[s])
		}
		if m := l.mState[s]; m != nil && m.Value() != float64(fromEvents[s]) {
			return fmt.Errorf("obs: lazysim_sweep_runs_total{state=%q} = %g, want %d",
				s.String(), m.Value(), fromEvents[s])
		}
	}
	if l.mBusy != nil && l.mBusy.Value() != 0 {
		return fmt.Errorf("obs: lazysim_sweep_workers_busy = %g after sweep end", l.mBusy.Value())
	}
	if l.mQueue != nil && l.mQueue.Value() != 0 {
		return fmt.Errorf("obs: lazysim_sweep_queue_depth = %g after sweep end", l.mQueue.Value())
	}
	for wkr, spans := range byWorker {
		sort.Slice(spans, func(i, j int) bool { return spans[i].startedUS < spans[j].startedUS })
		for i := 1; i < len(spans); i++ {
			if spans[i].startedUS < spans[i-1].finishedUS {
				return fmt.Errorf("obs: worker %d spans %d and %d overlap in time",
					wkr, spans[i-1].id, spans[i].id)
			}
		}
	}
	return nil
}
