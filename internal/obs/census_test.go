package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// retire charges a request with the given per-cause vector and latency.
func retire(c *Census, bank int, charges map[StallCause]uint64) {
	var vec [NumStallCauses]uint64
	var lat uint64
	for cause, n := range charges {
		vec[cause] = n
		lat += n
	}
	c.Retire(bank, lat, &vec)
}

func TestCensusRetireInvariant(t *testing.T) {
	c := NewCensus()
	c.EnsureBanks(2)
	retire(c, 0, map[StallCause]uint64{StallQueued: 5, StallTRCD: 12, StallCAS: 12, StallBurst: 2})
	retire(c, 1, map[StallCause]uint64{StallDMSHold: 128, StallVP: 2})
	if c.Requests != 2 {
		t.Fatalf("requests = %d", c.Requests)
	}
	if c.Attributed() != c.LatencyCycles {
		t.Fatalf("attributed %d != latency %d", c.Attributed(), c.LatencyCycles)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c.BankStall[0][StallTRCD] != 12 || c.BankStall[1][StallDMSHold] != 128 {
		t.Fatal("per-bank stall attribution wrong")
	}
	// A latency that does not match its charge vector must be caught.
	var bad [NumStallCauses]uint64
	bad[StallQueued] = 3
	c.Retire(0, 7, &bad)
	if err := c.CheckInvariants(); err == nil {
		t.Fatal("mismatched retire not caught by CheckInvariants")
	}
}

func TestCensusResidencyInvariant(t *testing.T) {
	c := NewCensus()
	c.EnsureBanks(2)
	for i := 0; i < 10; i++ {
		c.BankCycle(0, BankServing)
		c.BankCycle(1, BankIdle)
		c.TickBanks()
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// A skipped bank classification must be caught.
	c.BankCycle(0, BankOpenIdle)
	c.TickBanks()
	if err := c.CheckInvariants(); err == nil {
		t.Fatal("missing bank classification not caught")
	}
}

func TestCensusGapRuns(t *testing.T) {
	c := NewCensus()
	// advancing, 3 timing-waits, advancing, 2 idles, end (flush).
	c.TickPartition(true, false)
	for i := 0; i < 3; i++ {
		c.TickPartition(false, false)
	}
	c.TickPartition(true, false)
	c.TickPartition(false, true)
	c.TickPartition(false, true)
	c.FlushGap()
	if c.PartCycles != 7 || c.Advancing != 2 || c.TimingWait != 3 || c.Idle != 2 {
		t.Fatalf("census = %+v", c)
	}
	if got := c.GapHist.Count(); got != 2 {
		t.Fatalf("gap count = %d, want 2 (runs of 3 and 2)", got)
	}
	if got := c.GapHist.Sum(); got != 5 {
		t.Fatalf("gap sum = %d, want 5", got)
	}
	if got := c.GapHist.Max(); got != 3 {
		t.Fatalf("gap max = %d, want 3", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	want := 5.0 / 7.0
	if got := c.SkippableFrac(); got != want {
		t.Fatalf("skippable frac = %g, want %g", got, want)
	}
}

func TestCensusMerge(t *testing.T) {
	a, b := NewCensus(), NewCensus()
	a.EnsureBanks(1)
	b.EnsureBanks(2)
	retire(a, 0, map[StallCause]uint64{StallQueued: 4})
	retire(b, 1, map[StallCause]uint64{StallTRP: 6})
	for _, c := range []*Census{a, b} {
		c.BankCycle(0, BankServing)
		c.TickBanks()
		c.TickPartition(true, false)
		c.TickPartition(false, false)
		c.FlushGap()
	}
	b.BankCycle(1, BankIdle) // bank 1 exists only in b; complete its row
	a.Merge(b)
	if a.Requests != 2 || a.LatencyCycles != 10 {
		t.Fatalf("merged totals: %d req, %d cycles", a.Requests, a.LatencyCycles)
	}
	if len(a.BankStall) != 2 || a.BankStall[1][StallTRP] != 6 {
		t.Fatal("merge did not grow/fold bank matrices")
	}
	if a.PartCycles != 4 || a.Advancing != 2 || a.TimingWait != 2 {
		t.Fatalf("merged partition census: %+v", a)
	}
	if a.GapHist.Count() != 2 || a.GapHist.Sum() != 2 {
		t.Fatal("gap histograms not merged")
	}
	// Nil-safety both directions.
	var nilC *Census
	nilC.Merge(a)
	a.Merge(nil)
	nilC.FlushGap()
	if err := nilC.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCensusSummary(t *testing.T) {
	c := NewCensus()
	c.EnsureBanks(1)
	retire(c, 0, map[StallCause]uint64{StallQueued: 10, StallTRCD: 30, StallCAS: 50, StallBurst: 10})
	c.BankCycle(0, BankServing)
	c.TickBanks()
	c.TickPartition(true, false)
	s := c.Summary()
	if s.InvariantError != "" {
		t.Fatalf("unexpected invariant error: %s", s.InvariantError)
	}
	if s.AttributedCycles != 100 || s.LatencyCycles != 100 {
		t.Fatalf("summary totals: %+v", s)
	}
	var share float64
	for _, row := range s.Stalls {
		share += row.Share
		if row.Cause == "trcd" && row.Cycles != 30 {
			t.Fatalf("trcd cycles = %d", row.Cycles)
		}
	}
	if share < 0.999 || share > 1.001 {
		t.Fatalf("stall shares sum to %g", share)
	}
	if len(s.Residency) != 1 || s.Residency[0].State != "serving" || s.Residency[0].Share != 1 {
		t.Fatalf("residency rollup: %+v", s.Residency)
	}
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"skippable_frac", "attributed_cycles", "gap_p99"} {
		if !strings.Contains(string(blob), key) {
			t.Errorf("summary JSON missing %q", key)
		}
	}
	// A broken census must surface its violation in the artifact.
	c.Stall[StallQueued]++
	if bad := c.Summary(); bad.InvariantError == "" {
		t.Fatal("summary of broken census carries no invariant error")
	}
	// Nil summaries stay nil (census disabled).
	if (*Census)(nil).Summary() != nil {
		t.Fatal("nil census summary not nil")
	}
}

func TestCensusChannelSummary(t *testing.T) {
	c := NewCensus()
	c.EnsureBanks(2)
	retire(c, 1, map[StallCause]uint64{StallTRAS: 7})
	c.BankCycle(0, BankOpenIdle)
	c.BankCycle(1, BankPrecharging)
	c.TickBanks()
	ch := c.ChannelSummary(3)
	if ch.Channel != 3 || ch.Requests != 1 || ch.LatencyCycles != 7 {
		t.Fatalf("channel summary: %+v", ch)
	}
	if ch.StallCycles["tras"] != 7 {
		t.Fatalf("stall map: %+v", ch.StallCycles)
	}
	if len(ch.Banks) != 2 || ch.Banks[0].OpenIdle != 1 || ch.Banks[1].Precharging != 1 {
		t.Fatalf("bank rows: %+v", ch.Banks)
	}
}
