package obs

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// This file is the state-digest flight recorder: a deterministic hash over
// the simulator's live architectural state, folded hierarchically
// (bank → channel → partition → machine) and sampled on a fixed memory-cycle
// interval into a bounded record stream. Two executions that are bit-identical
// produce identical digest streams; the first record where two streams
// disagree brackets the first divergent interval, which cmd/lazydiverge then
// narrows to an exact cycle by re-running both simulations in lockstep.
//
// The hash is a word-at-a-time FNV-1a variant: each 64-bit value is folded as
// h = (h ^ v) * prime. It is not cryptographic — it only needs to be
// deterministic, order-sensitive, and cheap enough to run inside the <2%
// digest-sampling overhead budget.

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// DefaultDigestEvery is the sampling interval, in memory cycles, that the
// overhead budget (BenchmarkDigestOff/On) is validated at.
const DefaultDigestEvery = 4096

// DefaultDigestCapacity bounds the digest record ring when
// Options.DigestCapacity is 0. At DefaultDigestEvery it retains the full
// stream of any realistic run; if the ring still wraps, the oldest records
// are dropped and counted.
const DefaultDigestCapacity = 1 << 16

// FoldU64 folds one 64-bit value into a rolling digest h. Use FoldSeed as the
// initial value. The free-function form exists for incremental digests kept
// as plain uint64 fields (e.g. the partitions' traffic digests).
func FoldU64(h, v uint64) uint64 { return (h ^ v) * fnvPrime64 }

// FoldBytes folds b into a rolling digest h, 8 bytes at a time
// (little-endian), with the tail zero-padded and the length folded first so
// different-length inputs cannot alias.
func FoldBytes(h uint64, b []byte) uint64 {
	h = FoldU64(h, uint64(len(b)))
	for len(b) >= 8 {
		h = FoldU64(h, binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	if len(b) > 0 {
		var tail [8]byte
		copy(tail[:], b)
		h = FoldU64(h, binary.LittleEndian.Uint64(tail[:]))
	}
	return h
}

// FoldSeed returns the initial value for a rolling FoldU64/FoldBytes digest.
func FoldSeed() uint64 { return fnvOffset64 }

// Hasher accumulates a 64-bit state digest. The zero value is NOT ready;
// use NewHasher (or Reset) so every digest starts from the same seed.
// All methods are allocation-free.
type Hasher struct{ h uint64 }

// NewHasher returns a hasher seeded with the FNV offset basis.
func NewHasher() *Hasher { return &Hasher{h: fnvOffset64} }

// Reset re-seeds the hasher so it can be reused without allocating.
func (h *Hasher) Reset() { h.h = fnvOffset64 }

// U64 folds one unsigned 64-bit value.
func (h *Hasher) U64(v uint64) { h.h = FoldU64(h.h, v) }

// I64 folds one signed 64-bit value.
func (h *Hasher) I64(v int64) { h.h = FoldU64(h.h, uint64(v)) }

// Int folds one int.
func (h *Hasher) Int(v int) { h.h = FoldU64(h.h, uint64(int64(v))) }

// Bool folds one bool.
func (h *Hasher) Bool(v bool) {
	if v {
		h.h = FoldU64(h.h, 1)
	} else {
		h.h = FoldU64(h.h, 0)
	}
}

// F64 folds one float64 by bit pattern.
func (h *Hasher) F64(v float64) { h.h = FoldU64(h.h, math.Float64bits(v)) }

// Bytes folds a byte slice (length-prefixed; see FoldBytes).
func (h *Hasher) Bytes(b []byte) { h.h = FoldBytes(h.h, b) }

// Sum returns the digest accumulated so far.
func (h *Hasher) Sum() uint64 { return h.h }

// PartDigest is one memory partition's component digests at a sample point.
// Every field is an independent sub-digest so a divergence can be attributed
// to a component without re-hashing.
type PartDigest struct {
	// Part is the partition (channel) index.
	Part int `json:"part"`
	// DRAM covers the channel's bank timing/row state plus channel-level
	// constraints (tRRD/turnaround/refresh scoreboards).
	DRAM uint64 `json:"dram"`
	// MC covers the controller's pending queue (per-bank FIFO order, pending
	// entries only), live/ID counters, and the DMS/AMS unit state.
	MC uint64 `json:"mc"`
	// L2 covers the slice's tag/flag/LRU state and the L2 MSHR file. Line
	// data bytes are deliberately NOT hashed (see Traffic).
	L2 uint64 `json:"l2"`
	// Heaps covers the partition-local progress state: the write-back queue,
	// the done/hit heaps, pending replies, and the VP counters.
	Heaps uint64 `json:"heaps"`
	// Traffic is the partition's rolling data digest: every fill's returned
	// bytes (post-fault-corruption) and every write-back's bytes are folded
	// in as they happen. It is cumulative, so a single corrupted fill
	// perturbs every subsequent sample — data divergence stays visible even
	// after the corrupted line itself is evicted.
	Traffic uint64 `json:"traffic"`
	// Stats covers the partition's counter block (stats.Mem).
	Stats uint64 `json:"stats"`
}

// Sum folds the partition's component digests into one value.
func (pd *PartDigest) Sum() uint64 {
	h := NewHasher()
	h.Int(pd.Part)
	h.U64(pd.DRAM)
	h.U64(pd.MC)
	h.U64(pd.L2)
	h.U64(pd.Heaps)
	h.U64(pd.Traffic)
	h.U64(pd.Stats)
	return h.Sum()
}

// DigestRecord is one sample of the machine digest hierarchy.
type DigestRecord struct {
	// Cycle is the memory cycle the sample was taken at.
	Cycle uint64 `json:"cycle"`
	// Machine is the top-level fold of every component digest below.
	Machine uint64 `json:"machine"`
	// Chain is the rolling fold of every Machine digest up to and including
	// this record — a single value summarizing the whole stream so far.
	Chain uint64 `json:"chain"`
	// Cores folds every SM's digest plus the GPU-level retirement counters.
	Cores uint64 `json:"cores"`
	// Icnt folds both crossbars' in-flight packets.
	Icnt uint64 `json:"icnt"`
	// Parts holds the per-partition component digests, in partition order.
	Parts []PartDigest `json:"parts"`
}

// ComponentDigest labels one node of the digest hierarchy with its path
// (e.g. "partition[3].dram.bank[7]"), for divergence attribution.
type ComponentDigest struct {
	Path   string `json:"path"`
	Digest uint64 `json:"digest"`
}

// DigestLog is the bounded stream of digest records for one run. It is
// written only from the simulation goroutine at barrier-quiesced points; it
// is not safe for concurrent use.
type DigestLog struct {
	every   uint64
	recs    []DigestRecord
	cap     int
	start   int // ring: index of the oldest record when full
	full    bool
	samples uint64
	dropped uint64
	chain   uint64
	final   uint64
}

// NewDigestLog creates a digest log sampling every `every` memory cycles,
// retaining at most capacity records (0 picks DefaultDigestCapacity).
func NewDigestLog(every uint64, capacity int) *DigestLog {
	if every == 0 {
		return nil
	}
	if capacity <= 0 {
		capacity = DefaultDigestCapacity
	}
	return &DigestLog{every: every, cap: capacity, chain: fnvOffset64}
}

// Every returns the sampling interval in memory cycles (0 for a nil log).
func (l *DigestLog) Every() uint64 {
	if l == nil {
		return 0
	}
	return l.every
}

// Record appends one sample. The record's Chain field is filled in from the
// log's rolling chain; when the ring is full the oldest record is dropped.
func (l *DigestLog) Record(rec DigestRecord) {
	if l == nil {
		return
	}
	l.samples++
	l.chain = FoldU64(l.chain, rec.Machine)
	rec.Chain = l.chain
	if !l.full && len(l.recs) < l.cap {
		l.recs = append(l.recs, rec)
		if len(l.recs) == l.cap {
			l.full = true
		}
		return
	}
	l.full = true
	l.dropped++
	l.recs[l.start] = rec
	l.start = (l.start + 1) % l.cap
}

// Records returns the retained records, oldest first (a copy).
func (l *DigestLog) Records() []DigestRecord {
	if l == nil || len(l.recs) == 0 {
		return nil
	}
	out := make([]DigestRecord, 0, len(l.recs))
	out = append(out, l.recs[l.start:]...)
	out = append(out, l.recs[:l.start]...)
	return out
}

// Intervals returns how many samples were recorded (including dropped ones).
func (l *DigestLog) Intervals() uint64 {
	if l == nil {
		return 0
	}
	return l.samples
}

// Dropped returns how many records the bounded ring overwrote.
func (l *DigestLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// Chain returns the rolling chain digest over every recorded machine digest.
func (l *DigestLog) Chain() uint64 {
	if l == nil {
		return 0
	}
	return l.chain
}

// Finalize stores the end-of-run machine digest, computed at collect time
// before the end-of-run drains and flushes mutate the state.
func (l *DigestLog) Finalize(machine uint64) {
	if l == nil {
		return
	}
	l.final = machine
}

// Final returns the digest stored by Finalize.
func (l *DigestLog) Final() uint64 {
	if l == nil {
		return 0
	}
	return l.final
}

// Summary returns the serializable chain summary (nil for a nil log).
func (l *DigestLog) Summary() *DigestSummary {
	if l == nil {
		return nil
	}
	return &DigestSummary{
		Every:     l.every,
		Intervals: l.samples,
		Dropped:   l.dropped,
		Final:     hex64(l.final),
		Chain:     hex64(l.chain),
		FinalHi:   uint32(l.final >> 32),
		FinalLo:   uint32(l.final),
		ChainHi:   uint32(l.chain >> 32),
		ChainLo:   uint32(l.chain),
	}
}

// WriteJSONL writes the retained records as one JSON object per line,
// oldest first. cmd/lazydiverge consumes this stream directly.
func (l *DigestLog) WriteJSONL(w io.Writer) error {
	if l == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, rec := range l.Records() {
		if err := enc.Encode(&rec); err != nil {
			return err
		}
	}
	return nil
}

// ReadDigestJSONL parses a stream written by WriteJSONL.
func ReadDigestJSONL(r io.Reader) ([]DigestRecord, error) {
	dec := json.NewDecoder(r)
	var out []DigestRecord
	for {
		var rec DigestRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// hex64 renders a digest as "0x%016x". The 0x prefix keeps lazycmp's numeric
// parser from misreading an all-decimal-digit digest as a number.
func hex64(v uint64) string { return fmt.Sprintf("0x%016x", v) }

// DigestSummary is the telemetry.digest chain summary in the -json document:
// a single exact bit-identity key for a whole run. The 64-bit digests are
// carried both as hex strings (human-readable, skipped by lazycmp's numeric
// flattener) and as hi/lo 32-bit halves, which are exact in float64 so
// lazycmp can gate on them without precision loss.
type DigestSummary struct {
	Every     uint64 `json:"every"`
	Intervals uint64 `json:"intervals"`
	Dropped   uint64 `json:"dropped,omitempty"`
	Final     string `json:"final"`
	Chain     string `json:"chain"`
	FinalHi   uint32 `json:"final_hi"`
	FinalLo   uint32 `json:"final_lo"`
	ChainHi   uint32 `json:"chain_hi"`
	ChainLo   uint32 `json:"chain_lo"`
}
