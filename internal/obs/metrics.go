package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// This file is the live-metrics half of the observability layer: a small
// metric registry with Prometheus text exposition and an expvar-style JSON
// export, designed so the single-threaded simulation loop can publish
// values (atomic stores) while an HTTP scraper reads them concurrently
// without locks on the hot path.

// MetricKind distinguishes Prometheus counter and gauge families.
type MetricKind uint8

// Metric kinds.
const (
	KindGauge MetricKind = iota
	KindCounter
)

func (k MetricKind) String() string {
	if k == KindCounter {
		return "counter"
	}
	return "gauge"
}

// Metric is one time series: a float64 value with an atomic in-place
// representation. Writers (the simulation) call Set/Add; readers (the
// exposition handlers) call Value.
type Metric struct {
	labelValues []string
	bits        atomic.Uint64
}

// Set stores v.
func (m *Metric) Set(v float64) { m.bits.Store(math.Float64bits(v)) }

// Add increments the value by delta.
func (m *Metric) Add(delta float64) {
	for {
		old := m.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if m.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (m *Metric) Value() float64 { return math.Float64frombits(m.bits.Load()) }

// Family is one named metric family, optionally labeled. Children are
// created on first With call and cached; creation takes the family lock,
// subsequent lookups of a cached *Metric should be kept by the caller.
type Family struct {
	name      string
	help      string
	kind      MetricKind
	labelKeys []string

	mu       sync.Mutex
	children map[string]*Metric
	order    []*Metric
}

// With returns the child metric for the given label values (one per label
// key, in Register order), creating it on first use. Callers on hot paths
// should cache the returned *Metric.
func (f *Family) With(labelValues ...string) *Metric {
	if len(labelValues) != len(f.labelKeys) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d",
			f.name, len(f.labelKeys), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok {
		return m
	}
	m := &Metric{labelValues: labelValues}
	f.children[key] = m
	f.order = append(f.order, m)
	return m
}

// M returns the single child of an unlabeled family.
func (f *Family) M() *Metric { return f.With() }

// snapshot returns the children in creation order under the family lock.
func (f *Family) snapshot() []*Metric {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*Metric(nil), f.order...)
}

// Registry holds metric families and renders them for scraping. The zero
// value is not usable; create one with NewRegistry.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*Family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*Family)}
}

// Register creates (or returns the existing) family with the given name,
// help text, kind, and label keys. Re-registering a name with a different
// shape panics: metric names must be stable.
func (r *Registry) Register(name, help string, kind MetricKind, labelKeys ...string) *Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || len(f.labelKeys) != len(labelKeys) {
			panic("obs: metric " + name + " re-registered with a different shape")
		}
		return f
	}
	f := &Family{
		name: name, help: help, kind: kind,
		labelKeys: append([]string(nil), labelKeys...),
		children:  make(map[string]*Metric),
	}
	r.fams[name] = f
	return f
}

// Gauge registers (or fetches) an unlabeled gauge and returns its metric.
func (r *Registry) Gauge(name, help string) *Metric {
	return r.Register(name, help, KindGauge).M()
}

// Counter registers (or fetches) an unlabeled counter and returns its metric.
func (r *Registry) Counter(name, help string) *Metric {
	return r.Register(name, help, KindCounter).M()
}

// families returns the registered families sorted by name.
func (r *Registry) families() []*Family {
	r.mu.Lock()
	fams := make([]*Family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// escapeHelp escapes a HELP text per the Prometheus text format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// formatValue renders a sample value; Prometheus accepts Go's shortest
// float representation plus the NaN/+Inf/-Inf spellings.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, each with its HELP/TYPE
// header followed by one line per child.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.families() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		for _, m := range f.snapshot() {
			var sb strings.Builder
			sb.WriteString(f.name)
			if len(f.labelKeys) > 0 {
				sb.WriteByte('{')
				for i, k := range f.labelKeys {
					if i > 0 {
						sb.WriteByte(',')
					}
					fmt.Fprintf(&sb, `%s="%s"`, k, escapeLabel(m.labelValues[i]))
				}
				sb.WriteByte('}')
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", sb.String(), formatValue(m.Value())); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteExpvar renders the registry as one JSON object in the spirit of
// expvar's /debug/vars: unlabeled metrics map name -> value; labeled
// metrics map name -> { "k=v,k=v" -> value }. Non-finite values render as
// strings, since JSON has no encoding for them.
func (r *Registry) WriteExpvar(w io.Writer) error {
	doc := make(map[string]any)
	for _, f := range r.families() {
		if len(f.labelKeys) == 0 {
			for _, m := range f.snapshot() {
				doc[f.name] = jsonValue(m.Value())
			}
			continue
		}
		sub := make(map[string]any)
		for _, m := range f.snapshot() {
			parts := make([]string, len(f.labelKeys))
			for i, k := range f.labelKeys {
				parts[i] = k + "=" + m.labelValues[i]
			}
			sub[strings.Join(parts, ",")] = jsonValue(m.Value())
		}
		doc[f.name] = sub
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func jsonValue(v float64) any {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return formatValue(v)
	}
	return v
}

// Handler serves the Prometheus text exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// ExpvarHandler serves the JSON export.
func (r *Registry) ExpvarHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteExpvar(w)
	})
}
