package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunLogNilSafe: a nil log, and the nil spans it hands out, must accept
// every call and export empty views — the opt-out path costs nothing.
func TestRunLogNilSafe(t *testing.T) {
	var l *RunLog
	l.SetWorkers(4)
	sp := l.Begin("app", "scheme", "key", "call")
	if sp != nil {
		t.Fatalf("nil log returned a non-nil span")
	}
	sp.GoldenWait()
	sp.Queued()
	sp.Running(0)
	sp.Done(1, 2, 3)
	sp.Fail(nil)
	sp.Joined(nil, false)
	if sp.ID() != -1 {
		t.Errorf("nil span ID = %d, want -1", sp.ID())
	}
	l.FinishProgress()
	if evs := l.Events(); evs != nil {
		t.Errorf("nil log has events: %v", evs)
	}
	if s := l.Summary(); s != nil {
		t.Errorf("nil log has a summary: %+v", s)
	}
	if err := l.Reconcile(); err != nil {
		t.Errorf("nil log failed reconciliation: %v", err)
	}
	var buf bytes.Buffer
	if err := l.WriteEventsJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil log JSONL: err=%v len=%d", err, buf.Len())
	}
	buf.Reset()
	if err := l.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil log trace: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil-log trace is not valid JSON: %v", err)
	}
}

// TestRunLogLifecycle: the scripted sweep must reconcile, and the summary
// counts must match what was driven.
func TestRunLogLifecycle(t *testing.T) {
	l := NewRunLog(RunLogOptions{})
	l.SetWorkers(2)
	a := l.Begin("appA", "Baseline", "kA", "prefetch")
	a.GoldenWait()
	a.Queued()
	a.Running(0)
	b := l.Begin("appB", "Baseline", "kB", "prefetch")
	b.GoldenWait()
	b.Queued()
	b.Running(1)
	j := l.Begin("appA", "Baseline", "kA", "call")
	j.Joined(a, true)
	a.Done(1000, 4096, 12)
	b.Done(2000, 8192, 24)
	e := l.Begin("appC", "Baseline", "kC", "call")
	e.Fail(errFake{})

	s := l.Summary()
	if s.Runs != 4 || s.Executed != 2 || s.Deduped != 1 || s.Errors != 1 {
		t.Fatalf("summary counts: %+v", s)
	}
	if s.PrefetchHits != 1 {
		t.Errorf("prefetch hits = %d, want 1", s.PrefetchHits)
	}
	if s.SimCycles != 3000 {
		t.Errorf("sim cycles = %d, want 3000", s.SimCycles)
	}
	if s.Timing.AllocBytes != 4096+8192 || s.Timing.Mallocs != 36 {
		t.Errorf("alloc totals: %+v", s.Timing)
	}
	if s.Events != len(l.Events()) {
		t.Errorf("summary events %d != Events() %d", s.Events, len(l.Events()))
	}
	// submitted×4, golden-wait×2, queued×2, running×2, done×2, joined×1, error×1
	if want := 14; s.Events != want {
		t.Errorf("events = %d, want %d", s.Events, want)
	}
	// The join must point at the executing span and credit it.
	found := false
	for _, sp := range s.Spans {
		if sp.State == "dedup-joined" {
			found = true
			if sp.Target != a.ID() || !sp.Prefetch {
				t.Errorf("join span: %+v", sp)
			}
		}
		if sp.ID == a.ID() && sp.Joins != 1 {
			t.Errorf("executing span joins = %d, want 1", sp.Joins)
		}
	}
	if !found {
		t.Error("no dedup-joined span in the summary")
	}
	if err := l.Reconcile(); err != nil {
		t.Fatalf("reconcile: %v", err)
	}
}

type errFake struct{}

func (errFake) Error() string { return "synthetic failure" }

// TestRunLogExports: the JSONL line count equals the event count, every
// line parses, and the Chrome trace is valid JSON with one named track per
// worker whose slices never overlap per tid.
func TestRunLogExports(t *testing.T) {
	l := NewRunLog(RunLogOptions{})
	l.SetWorkers(2)
	a := l.Begin("appA", "Baseline", "kA", "prefetch")
	a.GoldenWait()
	a.Queued()
	a.Running(0)
	a.Done(500, 0, 0)
	b := l.Begin("appA", "Static-AMS", "kB", "prefetch")
	b.GoldenWait()
	b.Queued()
	b.Running(0) // same worker, strictly after a finished
	j := l.Begin("appA", "Static-AMS", "kB", "call")
	j.Joined(b, true)
	b.Done(700, 0, 0)

	var jl bytes.Buffer
	if err := l.WriteEventsJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	var lines int
	sc := bufio.NewScanner(&jl)
	for sc.Scan() {
		lines++
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("JSONL line %d invalid: %v", lines, err)
		}
		for _, k := range []string{"ts_us", "span", "state", "app", "scheme"} {
			if _, ok := ev[k]; !ok {
				t.Fatalf("JSONL line %d missing %q: %s", lines, k, sc.Text())
			}
		}
	}
	if got := len(l.Events()); lines != got {
		t.Fatalf("JSONL lines %d != events %d", lines, got)
	}

	var tr bytes.Buffer
	if err := l.WriteChromeTrace(&tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tr.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace invalid: %v\n%s", err, tr.String())
	}
	tracks := map[string]bool{}
	type slice struct{ start, end int64 }
	perTid := map[int][]slice{}
	var slices, instants int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				tracks[ev.Args["name"].(string)] = true
			}
		case "X":
			slices++
			perTid[ev.Tid] = append(perTid[ev.Tid], slice{ev.TS, ev.TS + ev.Dur})
		case "i":
			instants++
		}
	}
	for _, want := range []string{"worker 0", "worker 1", "dedup joins"} {
		if !tracks[want] {
			t.Errorf("trace missing track %q (have %v)", want, tracks)
		}
	}
	if slices != 2 || instants != 1 {
		t.Errorf("slices=%d instants=%d, want 2 and 1", slices, instants)
	}
	for tid, ss := range perTid {
		for i := 1; i < len(ss); i++ {
			if ss[i].start < ss[i-1].end {
				t.Errorf("tid %d slices overlap: %+v", tid, ss)
			}
		}
	}
}

// TestRunLogMetrics: the live registry families must agree with the event
// log per state, and the busy/queue gauges must drain back to zero.
func TestRunLogMetrics(t *testing.T) {
	reg := NewRegistry()
	l := NewRunLog(RunLogOptions{Metrics: reg})
	l.SetWorkers(1)
	a := l.Begin("appA", "Baseline", "kA", "call")
	a.GoldenWait()
	a.Queued()
	a.Running(0)
	a.Done(100, 0, 0)
	j := l.Begin("appA", "Baseline", "kA", "call")
	j.Joined(a, false)

	states := reg.Register("lazysim_sweep_runs_total", "", KindCounter, "state")
	counts := map[string]float64{}
	for _, ev := range l.Events() {
		counts[ev.State.String()]++
	}
	for state, want := range counts {
		if got := states.With(state).Value(); got != want {
			t.Errorf("runs_total{state=%q} = %g, want %g", state, got, want)
		}
	}
	if got := reg.Gauge("lazysim_sweep_workers_busy", "").Value(); got != 0 {
		t.Errorf("workers_busy = %g after sweep end", got)
	}
	if got := reg.Gauge("lazysim_sweep_queue_depth", "").Value(); got != 0 {
		t.Errorf("queue_depth = %g after sweep end", got)
	}
	appSec := reg.Register("lazysim_sweep_run_seconds", "", KindGauge, "app")
	if got := appSec.With("appA").Value(); got < 0 {
		t.Errorf("run_seconds{app=appA} = %g", got)
	}
	if err := l.Reconcile(); err != nil {
		t.Fatalf("reconcile: %v", err)
	}
}

// TestRunLogProgress: the progress line rewrites in place and FinishProgress
// terminates it.
func TestRunLogProgress(t *testing.T) {
	var buf bytes.Buffer
	l := NewRunLog(RunLogOptions{Progress: &buf})
	l.SetWorkers(1)
	a := l.Begin("appA", "Baseline", "kA", "call")
	a.GoldenWait()
	a.Queued()
	a.Running(0)
	a.Done(1, 0, 0)
	l.FinishProgress()
	out := buf.String()
	if !strings.Contains(out, "\r[sweep] 1/1 done") {
		t.Errorf("progress output: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("FinishProgress did not terminate the line: %q", out)
	}
}

// TestRunLogReconcileCatches: a span left non-terminal must fail
// reconciliation — the CI gate depends on this being a real check.
func TestRunLogReconcileCatches(t *testing.T) {
	l := NewRunLog(RunLogOptions{})
	l.SetWorkers(1)
	sp := l.Begin("appA", "Baseline", "kA", "call")
	sp.Queued()
	if err := l.Reconcile(); err == nil {
		t.Fatal("reconcile accepted a non-terminal span")
	}
	sp.Running(0)
	sp.Done(1, 0, 0)
	if err := l.Reconcile(); err != nil {
		t.Fatalf("reconcile after completion: %v", err)
	}
}

// TestHistogramBuckets: non-empty buckets come back in value order with
// their [lo, hi) bounds.
func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	if got := h.Buckets(); got != nil {
		t.Fatalf("empty histogram has buckets: %v", got)
	}
	h.Observe(3)
	h.Observe(3)
	h.Observe(1000)
	bs := h.Buckets()
	if len(bs) != 2 {
		t.Fatalf("buckets = %+v, want 2", bs)
	}
	if bs[0].Lo != 3 || bs[0].Hi != 4 || bs[0].Count != 2 {
		t.Errorf("exact bucket: %+v", bs[0])
	}
	if !(bs[1].Lo <= 1000 && 1000 < bs[1].Hi) || bs[1].Count != 1 {
		t.Errorf("log-linear bucket: %+v", bs[1])
	}
	var total uint64
	for _, b := range bs {
		total += b.Count
	}
	if total != h.Count() {
		t.Errorf("bucket counts sum to %d, want %d", total, h.Count())
	}
}
