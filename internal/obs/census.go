package obs

import "fmt"

// This file implements the cycle census and latency-provenance layer: exact
// per-request stall-cause attribution, per-bank state-residency accounting,
// and the partition-cycle census that sizes the planned event-driven
// skip-ahead loop (ROADMAP item 2).
//
// Exactness discipline (DESIGN.md §11): for every retired request the
// per-cause stall cycles sum *exactly* to its measured queue+service latency,
// and every observed bank-cycle is classified into exactly one residency
// state, so Σ residency == elapsed bank-cycles. Both identities are enforced
// by CheckInvariants and by the sim-level integration tests, the same way
// PR 2 pinned bank-sum==channel-total and PR 3 pinned audited-drops==Dropped.
//
// Concurrency: a Census lives in a per-partition Shard and has exactly one
// writer (that partition's tick path). Merged views are built between cycles
// or after the run, from the simulation goroutine.

// StallCause is one entry of the stall-attribution taxonomy. Every memory
// cycle a retired request spent between pending-queue entry and data-burst
// completion (or value-predicted reply) is charged to exactly one cause.
type StallCause uint8

// Stall causes. The queue-side causes (everything before the column command)
// are charged per cycle while the request is its bank's scheduling head;
// cycles spent behind other work — not at the head, or at the head but losing
// the one-command-per-cycle channel arbitration — are the StallQueued
// remainder. The service-side causes (CAS, Burst, VP) decompose the fixed
// column/reply latency.
const (
	// StallQueued: waiting behind other requests — not the bank's scheduling
	// head, or ready at the head but another bank's command won arbitration.
	StallQueued StallCause = iota
	// StallDMSHold: the head's row-miss is gated by the DMS delay (the
	// request has not yet aged Delay cycles in the pending queue).
	StallDMSHold
	// StallTRCD: head targets the open row but the bank's own column timing
	// (tRCD after ACT, or same-bank read/write recovery) blocks the access.
	StallTRCD
	// StallBusTurn: head targets the open row, the bank is ready, but the
	// channel column bus is busy (tCCD spacing, read/write turnaround,
	// same-bank-group tCCDL).
	StallBusTurn
	// StallTRP: head needs an ACT but the bank's precharge/cycle recovery
	// (tRP/tRC) has not elapsed.
	StallTRP
	// StallTRRD: head needs an ACT, the bank is ready, but the channel
	// ACT-to-ACT spacing (tRRD) blocks it.
	StallTRRD
	// StallTRAS: head needs a demand precharge but the open row's minimum
	// open time / write recovery / read-to-precharge (tRAS/tWR/tRTP) blocks
	// it.
	StallTRAS
	// StallRefresh: the channel is blocked by an all-bank refresh window.
	StallRefresh
	// StallCAS: column-access latency of the issued command (CL for reads,
	// WL for writes).
	StallCAS
	// StallBurst: data-burst occupancy of the bus (tCCD).
	StallBurst
	// StallVP: value-predicted reply latency of an AMS-dropped request.
	StallVP

	NumStallCauses
)

var stallNames = [NumStallCauses]string{
	StallQueued:  "queued",
	StallDMSHold: "dms_hold",
	StallTRCD:    "trcd",
	StallBusTurn: "bus_turn",
	StallTRP:     "trp",
	StallTRRD:    "trrd",
	StallTRAS:    "tras",
	StallRefresh: "refresh",
	StallCAS:     "cas",
	StallBurst:   "burst",
	StallVP:      "vp",
}

// String returns the cause's report name.
func (s StallCause) String() string { return stallNames[s] }

// BankState classifies what one DRAM bank was doing during one memory cycle.
// Exactly one state applies per bank per cycle.
type BankState uint8

// Bank residency states.
const (
	// BankServing: a command (ACT/PRE/RD/WR) issued to the bank this cycle.
	BankServing BankState = iota
	// BankDMSHeld: the bank's scheduling head is a row-miss held by the DMS
	// age gate (the paper's delayed scheduling in force; the row — open or
	// closed — sits idle under DMS).
	BankDMSHeld
	// BankTimingWait: the bank has a schedulable head but DRAM timing or
	// channel arbitration blocked it this cycle.
	BankTimingWait
	// BankOpenIdle: a row is open but the bank has no pending work.
	BankOpenIdle
	// BankPrecharging: the bank is closed with no pending work and its
	// activate timing (tRP/tRC recovery, or a refresh window) has not
	// elapsed.
	BankPrecharging
	// BankIdle: closed, no pending work, ready to activate.
	BankIdle

	NumBankStates
)

var bankStateNames = [NumBankStates]string{
	BankServing:     "serving",
	BankDMSHeld:     "dms_held",
	BankTimingWait:  "timing_wait",
	BankOpenIdle:    "open_idle",
	BankPrecharging: "precharging",
	BankIdle:        "idle",
}

// String returns the state's report name.
func (s BankState) String() string { return bankStateNames[s] }

// Census is one memory partition's cycle-census state: the stall-attribution
// decomposition, the bank residency matrix, and the partition-cycle census
// with its next-event-gap histogram. Single writer (the owning partition's
// tick path); merged between cycles by the collector.
type Census struct {
	// Stall attribution. LatencyCycles sums every retired request's measured
	// queue+service latency; the Stall vector decomposes exactly the same
	// cycles by cause (Attributed() == LatencyCycles is the Σ-invariant).
	Requests      uint64
	LatencyCycles uint64
	Stall         [NumStallCauses]uint64
	// BankStall decomposes Stall per bank ([bank][cause]).
	BankStall [][NumStallCauses]uint64

	// Residency classifies every observed bank-cycle: BankCycles counts the
	// census passes (elapsed memory cycles), and for every bank the row of
	// Residency sums to exactly BankCycles.
	BankCycles uint64
	Residency  [][NumBankStates]uint64

	// Partition-cycle census: every memory cycle is advancing (some
	// architectural event happened), timing-wait (work pending but nothing
	// could change — skippable by an event-driven loop), or fully idle.
	PartCycles uint64
	Advancing  uint64
	TimingWait uint64
	Idle       uint64
	gapRun     uint64

	// Ingress backpressure, counted in request-retry core cycles at the
	// partition boundary. These sit upstream of the pending queue and are
	// deliberately outside the mem-side Σ-invariant (DESIGN.md §11); the
	// network leg is already measured by StageIcntReq.
	MSHRFull   uint64
	MergeLimit uint64
	QueueFull  uint64

	// The histograms sit after every per-cycle counter: each one is a large
	// inline bucket array (a Histogram is ~19KB), and keeping the hot
	// counters packed at the front of the struct keeps the per-cycle update
	// path inside a couple of cache lines.

	// StallHist records the distribution over requests of cycles spent in
	// each cause.
	StallHist [NumStallCauses]Histogram
	// GapHist records the lengths of maximal runs of non-advancing cycles:
	// the jumps an event-driven skip-ahead loop could take.
	GapHist Histogram
}

// NewCensus returns an empty census; per-bank matrices grow on EnsureBanks.
func NewCensus() *Census { return &Census{} }

// EnsureBanks sizes the per-bank matrices for n banks (grow-only).
func (c *Census) EnsureBanks(n int) {
	if c == nil || n <= len(c.BankStall) {
		return
	}
	bs := make([][NumStallCauses]uint64, n)
	copy(bs, c.BankStall)
	c.BankStall = bs
	rs := make([][NumBankStates]uint64, n)
	copy(rs, c.Residency)
	c.Residency = rs
}

// Attributed returns the total cycles charged across all stall causes; the
// Σ-invariant is Attributed() == LatencyCycles.
func (c *Census) Attributed() uint64 {
	var n uint64
	for _, v := range c.Stall {
		n += v
	}
	return n
}

// Retire folds one retired request into the decomposition: lat is its
// measured queue+service latency and cycles the per-cause charge vector,
// which must sum to lat (the controller constructs it that way; violations
// surface via CheckInvariants).
func (c *Census) Retire(bank int, lat uint64, cycles *[NumStallCauses]uint64) {
	c.Requests++
	c.LatencyCycles += lat
	for cause, n := range cycles {
		if n == 0 {
			continue
		}
		c.Stall[cause] += n
		if bank < len(c.BankStall) {
			c.BankStall[bank][cause] += n
		}
		c.StallHist[cause].Observe(n)
	}
}

// BankCycle classifies bank b's current cycle; call once per bank per census
// pass, then TickBanks once to close the pass.
func (c *Census) BankCycle(b int, s BankState) {
	if b < len(c.Residency) {
		c.Residency[b][s]++
	}
}

// AddBankCycles charges n cycles of state s to bank b at once; the span-based
// census uses it to close a whole run of identically-classified cycles in one
// call.
func (c *Census) AddBankCycles(b int, s BankState, n uint64) {
	if b < len(c.Residency) {
		c.Residency[b][s] += n
	}
}

// TickBanks closes one bank census pass (one elapsed memory cycle).
func (c *Census) TickBanks() { c.BankCycles++ }

// AddCycles closes n bank census passes at once; the span-based census uses
// it to settle a run of quiescent cycles in bulk.
func (c *Census) AddCycles(n uint64) { c.BankCycles += n }

// TickPartition classifies one partition memory cycle. idle is only
// consulted when the cycle did not advance.
func (c *Census) TickPartition(advancing, idle bool) {
	c.PartCycles++
	if advancing {
		c.Advancing++
		if c.gapRun > 0 {
			c.GapHist.Observe(c.gapRun)
			c.gapRun = 0
		}
		return
	}
	if idle {
		c.Idle++
	} else {
		c.TimingWait++
	}
	c.gapRun++
}

// CloseGap folds one maximal non-advancing run of n cycles into the
// partition census in bulk: the batched partition path counts runs locally
// and folds them here only when a gap closes, instead of paying a
// TickPartition call per cycle.
func (c *Census) CloseGap(n uint64, idle bool) {
	if n == 0 {
		return
	}
	c.PartCycles += n
	if idle {
		c.Idle += n
	} else {
		c.TimingWait += n
	}
	c.GapHist.Observe(n)
}

// AddAdvancing folds n advancing partition cycles at once.
func (c *Census) AddAdvancing(n uint64) {
	c.PartCycles += n
	c.Advancing += n
}

// FlushGap closes the trailing non-advancing run; call once at end of run.
func (c *Census) FlushGap() {
	if c == nil {
		return
	}
	if c.gapRun > 0 {
		c.GapHist.Observe(c.gapRun)
		c.gapRun = 0
	}
}

// Merge folds o into c elementwise (bank i of o into bank i of c). Nil-safe
// on both sides.
func (c *Census) Merge(o *Census) {
	if c == nil || o == nil {
		return
	}
	c.EnsureBanks(len(o.BankStall))
	c.Requests += o.Requests
	c.LatencyCycles += o.LatencyCycles
	for i := range o.Stall {
		c.Stall[i] += o.Stall[i]
		c.StallHist[i].Merge(&o.StallHist[i])
	}
	for b := range o.BankStall {
		for i := range o.BankStall[b] {
			c.BankStall[b][i] += o.BankStall[b][i]
		}
	}
	c.BankCycles += o.BankCycles
	for b := range o.Residency {
		for i := range o.Residency[b] {
			c.Residency[b][i] += o.Residency[b][i]
		}
	}
	c.PartCycles += o.PartCycles
	c.Advancing += o.Advancing
	c.TimingWait += o.TimingWait
	c.Idle += o.Idle
	c.GapHist.Merge(&o.GapHist)
	c.gapRun += o.gapRun
	c.MSHRFull += o.MSHRFull
	c.MergeLimit += o.MergeLimit
	c.QueueFull += o.QueueFull
}

// CheckInvariants verifies the census exactness identities: the stall
// decomposition sums to the measured latency, every bank's residency row
// sums to the elapsed bank-cycles, and the partition cycle classes partition
// the elapsed cycles. A run must call FlushGap first for the gap histogram's
// sample count to cover every non-advancing cycle.
func (c *Census) CheckInvariants() error {
	if c == nil {
		return nil
	}
	if got := c.Attributed(); got != c.LatencyCycles {
		return fmt.Errorf("census: attributed stall cycles %d != measured latency cycles %d", got, c.LatencyCycles)
	}
	for b := range c.Residency {
		var sum uint64
		for _, v := range c.Residency[b] {
			sum += v
		}
		if sum != c.BankCycles {
			return fmt.Errorf("census: bank %d residency sum %d != elapsed bank-cycles %d", b, sum, c.BankCycles)
		}
	}
	if got := c.Advancing + c.TimingWait + c.Idle; got != c.PartCycles {
		return fmt.Errorf("census: partition classes sum %d != partition cycles %d", got, c.PartCycles)
	}
	if got := c.GapHist.Sum() + c.gapRun; got != c.TimingWait+c.Idle {
		return fmt.Errorf("census: gap histogram covers %d cycles, want %d non-advancing", got, c.TimingWait+c.Idle)
	}
	return nil
}

// SkippableFrac returns the fraction of partition cycles an event-driven
// loop could skip (timing-wait + idle over all cycles).
func (c *Census) SkippableFrac() float64 {
	if c == nil || c.PartCycles == 0 {
		return 0
	}
	return float64(c.TimingWait+c.Idle) / float64(c.PartCycles)
}

// StallSummary is the serializable decomposition-table row for one cause.
type StallSummary struct {
	Cause string `json:"cause"`
	// Cycles is the cause's total; Share its fraction of all attributed
	// cycles. Requests counts retired requests that spent at least one cycle
	// in the cause; Mean/P50/P99/Max describe that per-request distribution.
	Cycles   uint64  `json:"cycles"`
	Share    float64 `json:"share"`
	Requests uint64  `json:"requests"`
	Mean     float64 `json:"mean"`
	P50      uint64  `json:"p50"`
	P99      uint64  `json:"p99"`
	Max      uint64  `json:"max"`
}

// ResidencySummary is one bank-state row of the machine-level residency
// census.
type ResidencySummary struct {
	State  string  `json:"state"`
	Cycles uint64  `json:"cycles"`
	Share  float64 `json:"share"`
}

// BankResidency is one bank's residency row in per-channel detail.
type BankResidency struct {
	Bank        int    `json:"bank"`
	Serving     uint64 `json:"serving"`
	DMSHeld     uint64 `json:"dms_held"`
	TimingWait  uint64 `json:"timing_wait"`
	OpenIdle    uint64 `json:"open_idle"`
	Precharging uint64 `json:"precharging"`
	Idle        uint64 `json:"idle"`
}

// ChannelCensus is one channel's slice of the census in serializable form.
type ChannelCensus struct {
	Channel       int               `json:"channel"`
	Requests      uint64            `json:"requests"`
	LatencyCycles uint64            `json:"latency_cycles"`
	SkippableFrac float64           `json:"skippable_frac"`
	StallCycles   map[string]uint64 `json:"stall_cycles"`
	Banks         []BankResidency   `json:"banks"`
}

// IngressSummary reports partition-boundary backpressure (request-retry core
// cycles), outside the mem-side Σ-invariant.
type IngressSummary struct {
	MSHRFull   uint64 `json:"mshr_full"`
	MergeLimit uint64 `json:"merge_limit"`
	QueueFull  uint64 `json:"queue_full"`
}

// HostPhases reports the host-side phase profiler: sampled wall-clock spent
// in the coreTick / memTick / probe phases of GPU.Step, and per shard-worker
// busy vs barrier-wait time. Host timings are nondeterministic by nature and
// are excluded from lazycmp's flattening, like wall_ms.
type HostPhases struct {
	SampleEvery uint64 `json:"sample_every"`
	CoreTicks   uint64 `json:"core_ticks_sampled"`
	CoreNS      uint64 `json:"core_ns"`
	MemTicks    uint64 `json:"mem_ticks_sampled"`
	MemNS       uint64 `json:"mem_ns"`
	ProbeTicks  uint64 `json:"probe_ticks_sampled"`
	ProbeNS     uint64 `json:"probe_ns"`
	// Workers is present only for sharded runs: per-worker busy time on
	// sampled memTick dispatches and the barrier wait implied by the
	// dispatch wall clock.
	Workers []WorkerPhase `json:"workers,omitempty"`
}

// WorkerPhase is one shard worker's sampled phase times.
type WorkerPhase struct {
	Worker     int     `json:"worker"`
	Dispatches uint64  `json:"dispatches"`
	BusyNS     uint64  `json:"busy_ns"`
	BarrierNS  uint64  `json:"barrier_ns"`
	BusyFrac   float64 `json:"busy_frac"`
}

// CensusSummary is the machine-level serializable census digest attached to
// Telemetry (lazysim -json telemetry.census).
type CensusSummary struct {
	Requests      uint64 `json:"requests"`
	LatencyCycles uint64 `json:"latency_cycles"`
	// AttributedCycles restates the Σ-invariant in the artifact itself:
	// it must equal LatencyCycles.
	AttributedCycles uint64         `json:"attributed_cycles"`
	Stalls           []StallSummary `json:"stalls"`

	BankCycles uint64             `json:"bank_cycles"`
	Residency  []ResidencySummary `json:"residency"`

	PartCycles    uint64  `json:"partition_cycles"`
	Advancing     uint64  `json:"advancing"`
	TimingWait    uint64  `json:"timing_wait"`
	Idle          uint64  `json:"idle"`
	SkippableFrac float64 `json:"skippable_frac"`

	// Next-event-gap histogram: maximal non-advancing runs, the jumps an
	// event-driven loop could take (ROADMAP item 2 sizing).
	GapCount uint64       `json:"gap_count"`
	GapMean  float64      `json:"gap_mean"`
	GapP50   uint64       `json:"gap_p50"`
	GapP90   uint64       `json:"gap_p90"`
	GapP99   uint64       `json:"gap_p99"`
	GapMax   uint64       `json:"gap_max"`
	GapHist  []HistBucket `json:"gap_hist,omitempty"`

	Ingress  *IngressSummary `json:"ingress,omitempty"`
	Channels []ChannelCensus `json:"channels,omitempty"`
	Host     *HostPhases     `json:"host,omitempty"`

	// InvariantError carries the first CheckInvariants violation, so any
	// artifact that embeds a census also records whether its exactness
	// guarantees held; empty on every healthy run.
	InvariantError string `json:"invariant_error,omitempty"`
}

// Summary builds the machine-level serializable digest (nil receiver → nil).
func (c *Census) Summary() *CensusSummary {
	if c == nil {
		return nil
	}
	s := &CensusSummary{
		Requests:         c.Requests,
		LatencyCycles:    c.LatencyCycles,
		AttributedCycles: c.Attributed(),
		BankCycles:       c.BankCycles,
		PartCycles:       c.PartCycles,
		Advancing:        c.Advancing,
		TimingWait:       c.TimingWait,
		Idle:             c.Idle,
		SkippableFrac:    c.SkippableFrac(),
		GapCount:         c.GapHist.Count(),
		GapMean:          c.GapHist.Mean(),
		GapP50:           c.GapHist.Percentile(50),
		GapP90:           c.GapHist.Percentile(90),
		GapP99:           c.GapHist.Percentile(99),
		GapMax:           c.GapHist.Max(),
		GapHist:          c.GapHist.Buckets(),
	}
	if err := c.CheckInvariants(); err != nil {
		s.InvariantError = err.Error()
	}
	total := s.AttributedCycles
	for cause := StallCause(0); cause < NumStallCauses; cause++ {
		cyc := c.Stall[cause]
		if cyc == 0 {
			continue
		}
		h := &c.StallHist[cause]
		row := StallSummary{
			Cause:    cause.String(),
			Cycles:   cyc,
			Requests: h.Count(),
			Mean:     h.Mean(),
			P50:      h.Percentile(50),
			P99:      h.Percentile(99),
			Max:      h.Max(),
		}
		if total > 0 {
			row.Share = float64(cyc) / float64(total)
		}
		s.Stalls = append(s.Stalls, row)
	}
	var resTotal uint64
	var perState [NumBankStates]uint64
	for b := range c.Residency {
		for st, v := range c.Residency[b] {
			perState[st] += v
			resTotal += v
		}
	}
	for st := BankState(0); st < NumBankStates; st++ {
		if perState[st] == 0 {
			continue
		}
		row := ResidencySummary{State: st.String(), Cycles: perState[st]}
		if resTotal > 0 {
			row.Share = float64(perState[st]) / float64(resTotal)
		}
		s.Residency = append(s.Residency, row)
	}
	if c.MSHRFull+c.MergeLimit+c.QueueFull > 0 {
		s.Ingress = &IngressSummary{
			MSHRFull:   c.MSHRFull,
			MergeLimit: c.MergeLimit,
			QueueFull:  c.QueueFull,
		}
	}
	return s
}

// ChannelSummary builds one channel's detail block from a per-partition
// census (nil receiver → zero-valued block).
func (c *Census) ChannelSummary(channel int) ChannelCensus {
	out := ChannelCensus{Channel: channel}
	if c == nil {
		return out
	}
	out.Requests = c.Requests
	out.LatencyCycles = c.LatencyCycles
	out.SkippableFrac = c.SkippableFrac()
	out.StallCycles = make(map[string]uint64)
	for cause := StallCause(0); cause < NumStallCauses; cause++ {
		if c.Stall[cause] > 0 {
			out.StallCycles[cause.String()] = c.Stall[cause]
		}
	}
	for b := range c.Residency {
		r := &c.Residency[b]
		out.Banks = append(out.Banks, BankResidency{
			Bank:        b,
			Serving:     r[BankServing],
			DMSHeld:     r[BankDMSHeld],
			TimingWait:  r[BankTimingWait],
			OpenIdle:    r[BankOpenIdle],
			Precharging: r[BankPrecharging],
			Idle:        r[BankIdle],
		})
	}
	return out
}
