package obs_test

import (
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"lazydram/internal/obs"
)

func testRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.Counter("lazysim_instructions_total", "Warp instructions retired").Set(1234)
	r.Gauge("lazysim_ipc", "Cumulative instructions per core cycle").Set(2.015)
	acts := r.Register("lazysim_bank_activations_total", "Row activations per channel and bank",
		obs.KindCounter, "channel", "bank")
	acts.With("0", "0").Set(10)
	acts.With("0", "1").Set(20)
	acts.With("1", "0").Set(30)
	r.Register("lazysim_run_info", "Constant 1, labeled with the run's app and scheme",
		obs.KindGauge, "app", "scheme").With("SCP", `Dyn-DMS+Dyn-AMS`).Set(1)
	return r
}

// TestPrometheusGoldenFormat pins the exact exposition output: families
// sorted by name, HELP/TYPE pairs, stable metric names, children in
// creation order.
func TestPrometheusGoldenFormat(t *testing.T) {
	var sb strings.Builder
	if err := testRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP lazysim_bank_activations_total Row activations per channel and bank
# TYPE lazysim_bank_activations_total counter
lazysim_bank_activations_total{channel="0",bank="0"} 10
lazysim_bank_activations_total{channel="0",bank="1"} 20
lazysim_bank_activations_total{channel="1",bank="0"} 30
# HELP lazysim_instructions_total Warp instructions retired
# TYPE lazysim_instructions_total counter
lazysim_instructions_total 1234
# HELP lazysim_ipc Cumulative instructions per core cycle
# TYPE lazysim_ipc gauge
lazysim_ipc 2.015
# HELP lazysim_run_info Constant 1, labeled with the run's app and scheme
# TYPE lazysim_run_info gauge
lazysim_run_info{app="SCP",scheme="Dyn-DMS+Dyn-AMS"} 1
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

var (
	metricLineRE = regexp.MustCompile(
		`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\.)*"(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\.)*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)
	helpRE = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .+$`)
	typeRE = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge)$`)
)

// TestPrometheusLineSyntax validates every emitted line against the text
// exposition grammar, including awkward values and label escaping, and
// checks each family carries a HELP/TYPE pair before its samples.
func TestPrometheusLineSyntax(t *testing.T) {
	r := testRegistry()
	r.Gauge("awkward_nan", "not a number").Set(math.NaN())
	r.Gauge("awkward_inf", "infinite").Set(math.Inf(1))
	r.Register("awkward_labels", "label escaping", obs.KindGauge, "path").
		With("a\"b\\c\nd").Set(-0.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	var curFamily string
	helped := map[string]bool{}
	typed := map[string]bool{}
	for i, line := range lines {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			m := helpRE.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed HELP: %q", i+1, line)
			}
			curFamily = m[1]
			helped[curFamily] = true
		case strings.HasPrefix(line, "# TYPE "):
			m := typeRE.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: malformed TYPE: %q", i+1, line)
			}
			if m[1] != curFamily {
				t.Fatalf("line %d: TYPE for %q under HELP for %q", i+1, m[1], curFamily)
			}
			typed[m[1]] = true
		default:
			if !metricLineRE.MatchString(line) {
				t.Fatalf("line %d: invalid sample line: %q", i+1, line)
			}
			name := line
			if cut := strings.IndexAny(line, "{ "); cut >= 0 {
				name = line[:cut]
			}
			if name != curFamily {
				t.Fatalf("line %d: sample %q outside its family block %q", i+1, name, curFamily)
			}
			if !helped[name] || !typed[name] {
				t.Fatalf("line %d: sample %q before its HELP/TYPE pair", i+1, name)
			}
		}
	}
	for name := range helped {
		if !typed[name] {
			t.Errorf("family %q has HELP but no TYPE", name)
		}
	}
}

// TestExpvarExport: the JSON export mirrors the registry, with labeled
// families nested and non-finite values stringified.
func TestExpvarExport(t *testing.T) {
	r := testRegistry()
	r.Gauge("weird", "nan").Set(math.NaN())
	var sb strings.Builder
	if err := r.WriteExpvar(&sb); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("expvar export is not valid JSON: %v", err)
	}
	if got := doc["lazysim_ipc"]; got != 2.015 {
		t.Errorf("lazysim_ipc = %v, want 2.015", got)
	}
	sub, ok := doc["lazysim_bank_activations_total"].(map[string]any)
	if !ok {
		t.Fatalf("labeled family not nested: %T", doc["lazysim_bank_activations_total"])
	}
	if got := sub["channel=0,bank=1"]; got != 20.0 {
		t.Errorf("bank child = %v, want 20", got)
	}
	if got, ok := doc["weird"].(string); !ok || got != "NaN" {
		t.Errorf("NaN exported as %v, want the string \"NaN\"", doc["weird"])
	}
}

// TestRegistryHTTPHandlers scrapes both handlers over real HTTP.
func TestRegistryHTTPHandlers(t *testing.T) {
	r := testRegistry()
	promSrv := httptest.NewServer(r.Handler())
	defer promSrv.Close()
	resp, err := promSrv.Client().Get(promSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prometheus content type %q", ct)
	}
	if !strings.Contains(string(body), "lazysim_ipc 2.015") {
		t.Errorf("scrape missing lazysim_ipc:\n%s", body)
	}

	varSrv := httptest.NewServer(r.ExpvarHandler())
	defer varSrv.Close()
	resp, err = varSrv.Client().Get(varSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("vars endpoint not JSON: %v", err)
	}
	if _, ok := doc["lazysim_instructions_total"]; !ok {
		t.Error("vars endpoint missing lazysim_instructions_total")
	}
}

// TestMetricConcurrency: concurrent writers and scrapers must be safe (run
// under -race) and Add must not lose increments.
func TestMetricConcurrency(t *testing.T) {
	r := obs.NewRegistry()
	m := r.Counter("c", "concurrent counter")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Add(1)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = r.WritePrometheus(io.Discard)
		}
	}()
	wg.Wait()
	<-done
	if got := m.Value(); got != 8000 {
		t.Fatalf("lost updates: counter = %v, want 8000", got)
	}
}
