package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// oracle returns the nearest-rank percentile from a sorted copy of xs.
func oracle(xs []uint64, p float64) uint64 {
	c := append([]uint64(nil), xs...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	rank := int(p / 100 * float64(len(c)))
	if rank < 1 {
		rank = 1
	}
	if rank > len(c) {
		rank = len(c)
	}
	return c[rank-1]
}

func checkPercentiles(t *testing.T, name string, xs []uint64) {
	t.Helper()
	var h Histogram
	for _, x := range xs {
		h.Observe(x)
	}
	for _, p := range []float64{50, 90, 99, 99.9} {
		got := h.Percentile(p)
		want := oracle(xs, p)
		// The log-linear buckets bound relative error by 2^-(subBits-1); allow
		// a little extra for rank discretization at the bucket edge.
		tol := 0.02*float64(want) + 1
		if math.Abs(float64(got)-float64(want)) > tol {
			t.Errorf("%s: p%v = %d, oracle %d (tol %.1f)", name, p, got, want, tol)
		}
	}
}

func TestHistogramPercentileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	uniform := make([]uint64, 20000)
	for i := range uniform {
		uniform[i] = uint64(rng.Intn(1_000_000))
	}
	checkPercentiles(t, "uniform", uniform)

	// Heavy-tailed: mimics latency distributions with long DMS-aged tails.
	exp := make([]uint64, 20000)
	for i := range exp {
		exp[i] = uint64(rng.ExpFloat64() * 5000)
	}
	checkPercentiles(t, "exponential", exp)

	small := make([]uint64, 5000)
	for i := range small {
		small[i] = uint64(rng.Intn(100)) // exact-bucket region
	}
	checkPercentiles(t, "small", small)
}

func TestHistogramExactSmallValues(t *testing.T) {
	var h Histogram
	for v := uint64(0); v < nSub; v++ {
		h.Observe(v)
	}
	// In the exact region every bucket holds one value, so nearest-rank
	// percentiles are exact.
	if got := h.Percentile(50); got != 63 {
		t.Errorf("p50 of 0..127 = %d, want 63", got)
	}
	if got := h.Percentile(100); got != 127 {
		t.Errorf("p100 of 0..127 = %d, want 127", got)
	}
}

func TestHistogramClamping(t *testing.T) {
	var h Histogram
	huge := []uint64{maxTracked + 1, maxTracked * 2, math.MaxUint64}
	for _, v := range huge {
		h.Observe(v)
	}
	if h.Count() != uint64(len(huge)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(huge))
	}
	if h.Max() != math.MaxUint64 {
		t.Errorf("Max = %d, want MaxUint64", h.Max())
	}
	// All landed in the top bucket; percentiles stay within [top-bucket lo, Max].
	lo, _ := bucketBounds(numBuckets - 1)
	for _, p := range []float64{50, 99, 100} {
		got := h.Percentile(p)
		if got < lo || got > h.Max() {
			t.Errorf("p%v = %d outside clamp range [%d, %d]", p, got, lo, h.Max())
		}
	}
}

func TestBucketBoundsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100000; i++ {
		v := rng.Uint64() % maxTracked
		idx := bucketIdx(v)
		lo, hi := bucketBounds(idx)
		if v < lo || v >= hi {
			t.Fatalf("value %d mapped to bucket %d = [%d, %d)", v, idx, lo, hi)
		}
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("value %d mapped out of range: %d", v, idx)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, both Histogram
	for v := uint64(0); v < 1000; v++ {
		a.Observe(v)
		b.Observe(v * 17)
		both.Observe(v)
		both.Observe(v * 17)
	}
	a.Merge(&b)
	if a.Count() != both.Count() || a.Sum() != both.Sum() || a.Max() != both.Max() {
		t.Fatalf("merge mismatch: count %d/%d sum %d/%d", a.Count(), both.Count(), a.Sum(), both.Sum())
	}
	if a.Percentile(90) != both.Percentile(90) {
		t.Errorf("merged p90 %d != direct p90 %d", a.Percentile(90), both.Percentile(90))
	}
}

func TestSamplerIntervalAndPartialWindow(t *testing.T) {
	probeWindows := []uint64(nil)
	probe := func(w uint64) Sample {
		probeWindows = append(probeWindows, w)
		return Sample{MemCycle: w}
	}

	s := NewSampler(100)
	for c := uint64(1); c <= 1050; c++ {
		s.Tick(c, probe)
	}
	if got := len(s.Samples()); got != 10 {
		t.Fatalf("after 1050 cycles at every=100: %d samples, want 10", got)
	}
	s.Flush(1050, probe)
	if got := len(s.Samples()); got != 11 {
		t.Fatalf("after flush: %d samples, want 11 (10 full + 1 partial)", got)
	}
	for i, w := range probeWindows[:10] {
		if w != 100 {
			t.Errorf("window %d = %d, want 100", i, w)
		}
	}
	if probeWindows[10] != 50 {
		t.Errorf("partial window = %d, want 50", probeWindows[10])
	}
	// Flush at an exact boundary adds nothing.
	s2 := NewSampler(100)
	for c := uint64(1); c <= 1000; c++ {
		s2.Tick(c, probe)
	}
	s2.Flush(1000, probe)
	if got := len(s2.Samples()); got != 10 {
		t.Fatalf("exact boundary: %d samples, want 10", got)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	tr.Observe(StageTotal, 42) // must not panic
	if tr.Stages() != nil || tr.Hist(StageTotal) != nil {
		t.Error("nil tracer leaked state")
	}
	var s *Sampler
	s.Tick(100, nil)
	s.Flush(100, nil)
	if s.Samples() != nil || s.Every() != 0 {
		t.Error("nil sampler leaked state")
	}
	var ct *CmdTrace
	ct.Add(CmdACT, 0, 0, 1, 1)
	if ct.Total() != 0 || ct.Dropped() != 0 || ct.Commands() != nil {
		t.Error("nil trace leaked state")
	}
	var c *Collector
	if c.Telemetry() != nil {
		t.Error("nil collector produced telemetry")
	}
	if NewCollector(Options{}) != nil {
		t.Error("disabled options produced a collector")
	}
}

func TestCmdTraceRing(t *testing.T) {
	tr := NewCmdTrace(4)
	for i := 0; i < 6; i++ {
		tr.Add(CmdACT, 0, i, int64(i), uint64(i))
	}
	if tr.Total() != 6 || tr.Dropped() != 2 {
		t.Fatalf("total=%d dropped=%d, want 6/2", tr.Total(), tr.Dropped())
	}
	cmds := tr.Commands()
	if len(cmds) != 4 {
		t.Fatalf("retained %d, want 4", len(cmds))
	}
	for i, c := range cmds {
		if c.Cycle != uint64(i+2) {
			t.Errorf("cmd %d cycle = %d, want %d (oldest-first order)", i, c.Cycle, i+2)
		}
	}
}

func TestChromeTraceLoads(t *testing.T) {
	tr := NewCmdTrace(16)
	tr.Add(CmdACT, 0, 3, 17, 100)
	tr.Add(CmdRD, 0, 3, 17, 112)
	tr.Add(CmdPRE, 1, 3, 17, 140)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Name != "ACT" || doc.TraceEvents[0].Ph != "X" {
		t.Errorf("unexpected first event: %+v", doc.TraceEvents[0])
	}
	if doc.TraceEvents[2].Pid != 1 {
		t.Errorf("channel should map to pid: %+v", doc.TraceEvents[2])
	}
}

func TestJSONLTrace(t *testing.T) {
	tr := NewCmdTrace(8)
	tr.Add(CmdWR, 2, 5, 99, 7)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var line struct {
		Cycle   uint64 `json:"cycle"`
		Cmd     string `json:"cmd"`
		Channel int    `json:"channel"`
		Bank    int    `json:"bank"`
		Row     int64  `json:"row"`
	}
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &line); err != nil {
		t.Fatalf("jsonl line is not valid JSON: %v", err)
	}
	if line.Cmd != "WR" || line.Row != 99 || line.Channel != 2 || line.Bank != 5 {
		t.Errorf("unexpected line: %+v", line)
	}
}
