package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
)

func TestAuditLogNilSafe(t *testing.T) {
	var l *AuditLog
	l.Record(Decision{Reason: ReasonAMSDrop})
	l.RecordAdapt(AdaptPoint{Unit: "ams"})
	if l.Count(ReasonAMSDrop) != 0 || l.Total() != 0 {
		t.Fatal("nil log reported counts")
	}
	if l.Entries() != nil || l.Adapt() != nil || l.Summary() != nil {
		t.Fatal("nil log returned data")
	}
	if err := l.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestAuditLogRingWrapKeepsExactCounts(t *testing.T) {
	l := NewAuditLog(4)
	for i := 0; i < 10; i++ {
		l.Record(Decision{Cycle: uint64(i), Reason: ReasonDMSDelayHold})
	}
	if l.Total() != 10 || l.Count(ReasonDMSDelayHold) != 10 {
		t.Fatalf("counts must survive wrap: total=%d count=%d", l.Total(), l.Count(ReasonDMSDelayHold))
	}
	ents := l.Entries()
	if len(ents) != 4 {
		t.Fatalf("ring retained %d entries, want 4", len(ents))
	}
	for i, d := range ents {
		if want := uint64(6 + i); d.Cycle != want {
			t.Fatalf("entry %d cycle %d, want %d (chronological, newest retained)", i, d.Cycle, want)
		}
	}
	s := l.Summary()
	if s.RingDropped != 6 {
		t.Fatalf("RingDropped = %d, want 6", s.RingDropped)
	}
}

func TestAuditSummaryAggregates(t *testing.T) {
	l := NewAuditLog(16)
	for i := 0; i < 5; i++ {
		l.Record(Decision{Reason: ReasonDMSDelayHold})
	}
	l.Record(Decision{Reason: ReasonDMSDelayExpired})
	l.Record(Decision{Reason: ReasonAMSDrop})
	l.Record(Decision{Reason: ReasonAMSRowOpen})
	l.Record(Decision{Reason: ReasonAMSHighRBL})
	l.Record(Decision{Reason: ReasonAMSHighRBL})
	l.RecordAdapt(AdaptPoint{Cycle: 1024, Unit: "dms", Delay: 128})
	s := l.Summary()
	if s.Total != 10 || s.DMSDelayHolds != 5 || s.DMSDelayExpiries != 1 || s.AMSDrops != 1 {
		t.Fatalf("summary aggregates wrong: %+v", s)
	}
	if s.AMSSkips != 3 {
		t.Fatalf("AMSSkips = %d, want 3 (skip-kind reasons only)", s.AMSSkips)
	}
	if len(s.Reasons) != 5 {
		t.Fatalf("Reasons has %d rows, want 5 non-zero reasons", len(s.Reasons))
	}
	for _, rc := range s.Reasons {
		if rc.Count == 0 {
			t.Fatalf("zero-count reason %q emitted", rc.Reason)
		}
	}
	if len(s.Adapt) != 1 || s.Adapt[0].Delay != 128 {
		t.Fatalf("adapt trace not carried into summary: %+v", s.Adapt)
	}
}

func TestReasonMetaComplete(t *testing.T) {
	for r := Reason(0); r < NumReasons; r++ {
		if r.String() == "" || r.Unit() == "" || r.Kind() == "" {
			t.Fatalf("reason %d has incomplete metadata", r)
		}
		switch r.Unit() {
		case "dms", "ams":
		default:
			t.Fatalf("reason %d has unknown unit %q", r, r.Unit())
		}
	}
}

func TestAuditWriteJSONL(t *testing.T) {
	l := NewAuditLog(8)
	l.Record(Decision{
		Cycle: 42, Channel: 2, Bank: 3, Row: 7, ReqID: 9,
		Reason: ReasonAMSDrop, VisibleRBL: 1, Delay: 128, ThRBL: 4, Coverage: 0.05,
	})
	l.Record(Decision{Cycle: 43, Reason: ReasonDMSDelayHold})
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line not valid JSON: %v", err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	first := lines[0]
	if first["unit"] != "ams" || first["kind"] != "drop" || first["reason"] != "drop" {
		t.Fatalf("first line reason fields wrong: %v", first)
	}
	if first["cycle"].(float64) != 42 || first["coverage"].(float64) != 0.05 {
		t.Fatalf("first line inputs wrong: %v", first)
	}
	if lines[1]["unit"] != "dms" {
		t.Fatalf("second line unit %v, want dms", lines[1]["unit"])
	}
}

func TestTallyCountsWithoutRingDetail(t *testing.T) {
	l := NewAuditLog(8)
	for i := 0; i < 100; i++ {
		l.Tally(ReasonDMSDelayHold)
	}
	l.Record(Decision{Reason: ReasonAMSDrop})
	if l.Count(ReasonDMSDelayHold) != 100 || l.Total() != 101 {
		t.Fatalf("tally counts wrong: hold=%d total=%d", l.Count(ReasonDMSDelayHold), l.Total())
	}
	if got := len(l.Entries()); got != 1 {
		t.Fatalf("tally leaked %d ring entries, want 1 (the recorded drop)", got)
	}
	var nl *AuditLog
	nl.Tally(ReasonAMSDrop) // nil-safe
}

func TestAdaptTraceBounded(t *testing.T) {
	l := NewAuditLog(4)
	for i := 0; i < maxAdaptPoints+10; i++ {
		l.RecordAdapt(AdaptPoint{Cycle: uint64(i), Unit: "ams"})
	}
	if len(l.Adapt()) != maxAdaptPoints {
		t.Fatalf("adapt trace grew to %d, cap is %d", len(l.Adapt()), maxAdaptPoints)
	}
	if l.Summary().AdaptDropped != 10 {
		t.Fatalf("AdaptDropped = %d, want 10", l.Summary().AdaptDropped)
	}
}
