// Package obs is the simulator's observability layer: request-lifecycle
// latency histograms, an interval sampler that turns the dynamic schemes'
// settling behaviour into plottable time series, and a bounded DRAM command
// trace with Chrome trace_event and JSONL exporters.
//
// Everything is opt-in and nil-safe: a disabled collector hands out nil
// *Tracer / *Sampler / *CmdTrace pointers whose methods are no-ops behind a
// single nil check, so the simulation hot loop pays (almost) nothing when
// observability is off. The repository's BenchmarkTelemetryOff/On pair
// quantifies the overhead.
//
// The package depends only on the standard library and is imported by the
// model packages (core, mc, dram, sim); it must never import them back.
package obs

// Stage identifies one segment of a memory request's lifecycle. Stages on
// the SM side of the clock-domain crossing are measured in core cycles,
// stages inside the memory partition in memory cycles; StageSummary.Clock
// records which.
type Stage uint8

// Lifecycle stages.
const (
	// StageIcntReq: SM issue (transaction enters the SM outbox) to memory
	// partition acceptance — outbox wait + request crossbar + backpressure.
	// Core cycles.
	StageIcntReq Stage = iota
	// StageL2Hit: load transactions served by the partition's L2 slice
	// (fixed hit latency; the count is the interesting part). Core cycles.
	StageL2Hit
	// StageMCQueue: memory-controller enqueue to DRAM column issue — time
	// spent in the pending queue, including any DMS-imposed aging. Memory
	// cycles.
	StageMCQueue
	// StageDRAM: DRAM column issue to data-burst completion. Memory cycles.
	StageDRAM
	// StageVPDrop: memory-controller enqueue to AMS drop for value-predicted
	// requests. Memory cycles.
	StageVPDrop
	// StageIcntReply: partition reply send to SM delivery over the reply
	// crossbar. Core cycles.
	StageIcntReply
	// StageTotal: SM issue to reply delivery at the SM, end to end (L2 hits
	// and misses alike). Core cycles.
	StageTotal

	numStages
)

// stageMeta names each stage and its clock domain for reports.
var stageMeta = [numStages]struct{ name, clock string }{
	StageIcntReq:   {"icnt.req", "core"},
	StageL2Hit:     {"l2.hit", "core"},
	StageMCQueue:   {"mc.queue", "mem"},
	StageDRAM:      {"dram.service", "mem"},
	StageVPDrop:    {"mc.vpdrop", "mem"},
	StageIcntReply: {"icnt.reply", "core"},
	StageTotal:     {"total", "core"},
}

// String returns the stage's report name.
func (s Stage) String() string { return stageMeta[s].name }

// Clock returns "core" or "mem", the cycle domain the stage is measured in.
func (s Stage) Clock() string { return stageMeta[s].clock }

// Tracer aggregates per-stage latency histograms. The zero value is ready to
// use; a nil *Tracer discards every observation.
type Tracer struct {
	hists [numStages]Histogram
}

// Observe records one latency sample for the stage. It is nil-safe and
// allocation-free.
func (t *Tracer) Observe(s Stage, cycles uint64) {
	if t == nil {
		return
	}
	t.hists[s].Observe(cycles)
}

// Hist returns the histogram backing the stage (nil for a nil tracer).
func (t *Tracer) Hist(s Stage) *Histogram {
	if t == nil {
		return nil
	}
	return &t.hists[s]
}

// Merge folds other's histograms into t. Nil-safe on both sides.
func (t *Tracer) Merge(other *Tracer) {
	if t == nil || other == nil {
		return
	}
	for s := Stage(0); s < numStages; s++ {
		t.hists[s].Merge(&other.hists[s])
	}
}

// Stages summarizes every stage that recorded at least one sample.
func (t *Tracer) Stages() []StageSummary {
	if t == nil {
		return nil
	}
	var out []StageSummary
	for s := Stage(0); s < numStages; s++ {
		h := &t.hists[s]
		if h.Count() == 0 {
			continue
		}
		out = append(out, StageSummary{
			Stage: s.String(),
			Clock: s.Clock(),
			Count: h.Count(),
			Sum:   h.Sum(),
			Mean:  h.Mean(),
			P50:   h.Percentile(50),
			P90:   h.Percentile(90),
			P99:   h.Percentile(99),
			Max:   h.Max(),
		})
	}
	return out
}

// StageSummary is the serializable digest of one stage's latency histogram.
type StageSummary struct {
	Stage string  `json:"stage"`
	Clock string  `json:"clock"`
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
	Max   uint64  `json:"max"`
}

// Options selects which observability features a run collects. The zero
// value disables everything.
type Options struct {
	// Latency enables the request-lifecycle stage histograms.
	Latency bool
	// SampleEvery enables the time-series sampler with the given interval in
	// memory cycles (0 disables).
	SampleEvery uint64
	// TraceCapacity bounds the DRAM command ring buffer (0 disables the
	// trace). When the buffer wraps, the oldest commands are overwritten.
	TraceCapacity int
	// Metrics, when non-nil, receives live run metrics (cycle counts, IPC,
	// per-bank command counters, energy estimates) for concurrent scraping
	// via the registry's Prometheus/expvar handlers.
	Metrics *Registry
	// MetricsEvery is the publication interval for Metrics in memory cycles
	// (0 picks a default).
	MetricsEvery uint64
	// AuditCapacity bounds the scheduler decision-audit ring (0 disables the
	// decision log). Per-reason counters stay exact regardless of ring wrap.
	AuditCapacity int
	// Quality enables approximation-quality telemetry: every AMS-dropped
	// line's predicted bytes are scored against the functional ground truth.
	Quality bool
	// QualityWorst bounds the worst-offenders list (0 picks a default).
	QualityWorst int
	// FaultQuality enables injected-fault error telemetry: every
	// fault-corrupted line is scored against its pristine bytes in a second
	// QualityLog, kept separate from the AMS-drop log so the two error
	// sources stay distinguishable.
	FaultQuality bool
	// DigestEvery enables the state-digest flight recorder with the given
	// sampling interval in memory cycles (0 disables). Enabling it also turns
	// on the partitions' rolling traffic digests, so fill/write-back data
	// divergence stays visible between samples.
	DigestEvery uint64
	// DigestCapacity bounds the digest record ring (0 picks
	// DefaultDigestCapacity). When the ring wraps, the oldest records are
	// dropped and counted; the chain summary stays exact regardless.
	DigestCapacity int
	// Census enables the cycle census and latency-provenance layer: exact
	// per-request stall-cause attribution, bank state residency, and the
	// partition-cycle / next-event-gap census (see census.go).
	Census bool
}

// Enabled reports whether any feature is on.
func (o Options) Enabled() bool {
	return o.Latency || o.SampleEvery > 0 || o.TraceCapacity > 0 ||
		o.Metrics != nil || o.AuditCapacity > 0 || o.Quality || o.FaultQuality ||
		o.DigestEvery > 0 || o.Census
}

// Collector owns the per-run observability state. A nil *Collector (the
// disabled case) is valid everywhere.
//
// Partition-local state (DRAM command trace, scheduler audit, quality logs,
// the memory-side latency histograms) lives in per-partition Shards created
// by EnsureShards, so that memory partitions can tick concurrently without
// any cross-partition synchronization: each shard has exactly one writer.
// The serializable views (Telemetry, MergedAudit, MergedTrace, ...) fold the
// shards back together in channel order with stable cycle sorting, which is
// the same order the sequential tick loop produces — so sharded and
// unsharded execution emit byte-identical digests by construction.
type Collector struct {
	// Tracer records the SM/interconnect-side lifecycle stages, which are
	// only observed from the simulator's serial sections.
	Tracer  *Tracer
	Sampler *Sampler
	Metrics *Registry
	// Digest is the state-digest flight recorder (nil unless DigestEvery is
	// set). It is machine-level, not sharded: records are built and appended
	// only from the simulation goroutine at barrier-quiesced points.
	Digest *DigestLog

	opts   Options
	shards []*Shard
}

// Shard is the slice of observability state owned by exactly one memory
// partition. During a simulation only that partition's tick path writes to
// it (possibly from a worker goroutine); merged views are built after the
// run, or between cycles from the main goroutine once the per-cycle barrier
// has quiesced every worker.
type Shard struct {
	Tracer *Tracer
	Trace  *CmdTrace
	Audit  *AuditLog
	// Quality scores AMS-dropped lines; FaultQuality scores fault-corrupted
	// lines (corrupted vs pristine bytes), kept separate so the two error
	// sources stay distinguishable.
	Quality      *QualityLog
	FaultQuality *QualityLog
	// Census is the partition's cycle-census state (nil unless
	// Options.Census).
	Census *Census
}

// NewCollector builds a collector for the options, or nil when everything is
// disabled. Call EnsureShards before handing shards to partitions.
func NewCollector(o Options) *Collector {
	if !o.Enabled() {
		return nil
	}
	c := &Collector{opts: o}
	if o.Latency {
		c.Tracer = &Tracer{}
	}
	if o.SampleEvery > 0 {
		c.Sampler = NewSampler(o.SampleEvery)
	}
	if o.DigestEvery > 0 {
		c.Digest = NewDigestLog(o.DigestEvery, o.DigestCapacity)
	}
	c.Metrics = o.Metrics
	return c
}

// EnsureShards creates the n per-partition shards (idempotent for the same
// n). Bounded capacities (trace ring, audit ring) are divided evenly across
// shards so total retention matches the configured budget regardless of the
// partition count. Nil-safe.
func (c *Collector) EnsureShards(n int) {
	if c == nil || len(c.shards) == n {
		return
	}
	if n <= 0 {
		panic("obs: shard count must be positive")
	}
	div := func(total int) int {
		per := total / n
		if per < 1 {
			per = 1
		}
		return per
	}
	c.shards = make([]*Shard, n)
	for i := range c.shards {
		s := &Shard{}
		if c.opts.Latency {
			s.Tracer = &Tracer{}
		}
		if c.opts.TraceCapacity > 0 {
			s.Trace = NewCmdTrace(div(c.opts.TraceCapacity))
		}
		if c.opts.AuditCapacity > 0 {
			s.Audit = NewAuditLog(div(c.opts.AuditCapacity))
		}
		if c.opts.Quality {
			s.Quality = NewQualityLog(c.opts.QualityWorst)
		}
		if c.opts.FaultQuality {
			s.FaultQuality = NewQualityLog(c.opts.QualityWorst)
		}
		if c.opts.Census {
			s.Census = NewCensus()
		}
		c.shards[i] = s
	}
}

// Shard returns partition i's shard; EnsureShards must have been called
// with a count > i. Nil-safe (returns nil, and a nil *Shard hands out nil
// feature pointers via its nil-safe accessors below).
func (c *Collector) Shard(i int) *Shard {
	if c == nil || i >= len(c.shards) {
		return nil
	}
	return c.shards[i]
}

// Nil-safe shard accessors, so a disabled collector (nil shard) threads nil
// feature pointers exactly like the pre-shard collector did.

// ShardTracer returns the shard's tracer (nil-safe).
func (s *Shard) ShardTracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.Tracer
}

// ShardTrace returns the shard's DRAM command ring (nil-safe).
func (s *Shard) ShardTrace() *CmdTrace {
	if s == nil {
		return nil
	}
	return s.Trace
}

// ShardAudit returns the shard's decision log (nil-safe).
func (s *Shard) ShardAudit() *AuditLog {
	if s == nil {
		return nil
	}
	return s.Audit
}

// ShardQuality returns the shard's AMS quality log (nil-safe).
func (s *Shard) ShardQuality() *QualityLog {
	if s == nil {
		return nil
	}
	return s.Quality
}

// ShardFaultQuality returns the shard's fault quality log (nil-safe).
func (s *Shard) ShardFaultQuality() *QualityLog {
	if s == nil {
		return nil
	}
	return s.FaultQuality
}

// ShardCensus returns the shard's cycle census (nil-safe).
func (s *Shard) ShardCensus() *Census {
	if s == nil {
		return nil
	}
	return s.Census
}

// MergedTracer folds the SM-side tracer and every shard's memory-side
// tracer into one fresh Tracer (nil when lifecycle tracing is off).
func (c *Collector) MergedTracer() *Tracer {
	if c == nil || !c.opts.Latency {
		return nil
	}
	out := &Tracer{}
	out.Merge(c.Tracer)
	for _, s := range c.shards {
		out.Merge(s.Tracer)
	}
	return out
}

// MergedTrace folds the per-shard DRAM command rings into one chronological
// trace (nil when tracing is off). See MergeCmdTraces for the ordering
// contract.
func (c *Collector) MergedTrace() *CmdTrace {
	if c == nil || c.opts.TraceCapacity == 0 {
		return nil
	}
	traces := make([]*CmdTrace, len(c.shards))
	for i, s := range c.shards {
		traces[i] = s.Trace
	}
	return MergeCmdTraces(traces...)
}

// MergedAudit folds the per-shard decision logs into one chronological log
// (nil when the audit is off). See MergeAuditLogs for the ordering contract.
func (c *Collector) MergedAudit() *AuditLog {
	if c == nil || c.opts.AuditCapacity == 0 {
		return nil
	}
	logs := make([]*AuditLog, len(c.shards))
	for i, s := range c.shards {
		logs[i] = s.Audit
	}
	return MergeAuditLogs(logs...)
}

// MergedQuality folds the per-shard AMS quality logs (nil when off).
func (c *Collector) MergedQuality() *QualityLog {
	if c == nil || !c.opts.Quality {
		return nil
	}
	out := NewQualityLog(c.opts.QualityWorst)
	for _, s := range c.shards {
		out.Merge(s.Quality)
	}
	return out
}

// MergedFaultQuality folds the per-shard fault quality logs (nil when off).
func (c *Collector) MergedFaultQuality() *QualityLog {
	if c == nil || !c.opts.FaultQuality {
		return nil
	}
	out := NewQualityLog(c.opts.QualityWorst)
	for _, s := range c.shards {
		out.Merge(s.FaultQuality)
	}
	return out
}

// MergedCensus folds the per-shard censuses elementwise into one fresh
// Census (nil when the census is off).
func (c *Collector) MergedCensus() *Census {
	if c == nil || !c.opts.Census {
		return nil
	}
	out := NewCensus()
	for _, s := range c.shards {
		out.Merge(s.Census)
	}
	return out
}

// CensusEnabled reports whether the cycle census is collecting.
func (c *Collector) CensusEnabled() bool { return c != nil && c.opts.Census }

// AuditCount sums one reason's exact counter across shards. Callers must
// only read between cycles (barrier-quiesced state); see the package note on
// shards.
func (c *Collector) AuditCount(r Reason) uint64 {
	if c == nil {
		return 0
	}
	var n uint64
	for _, s := range c.shards {
		n += s.Audit.Count(r)
	}
	return n
}

// AuditEnabled reports whether the decision audit is collecting.
func (c *Collector) AuditEnabled() bool { return c != nil && c.opts.AuditCapacity > 0 }

// QualityEnabled reports whether AMS quality scoring is collecting.
func (c *Collector) QualityEnabled() bool { return c != nil && c.opts.Quality }

// QualityCounters sums the live quality statistics across shards: scored
// lines, scored words, the running mean relative error, and the maximum
// relative error. Barrier-quiesced reads only, like AuditCount.
func (c *Collector) QualityCounters() (lines, words uint64, meanRel, maxRel float64) {
	if c == nil {
		return 0, 0, 0, 0
	}
	var relSum float64
	for _, s := range c.shards {
		q := s.Quality
		if q == nil {
			continue
		}
		lines += q.Lines()
		words += q.Words()
		relSum += q.MeanRel() * float64(q.Words())
		if m := q.MaxRel(); m > maxRel {
			maxRel = m
		}
	}
	if words > 0 {
		meanRel = relSum / float64(words)
	}
	return lines, words, meanRel, maxRel
}

// Telemetry snapshots the collector into its serializable form (nil for a
// nil collector), merging the per-partition shards deterministically.
func (c *Collector) Telemetry() *Telemetry {
	if c == nil {
		return nil
	}
	t := &Telemetry{Stages: c.MergedTracer().Stages()}
	if c.Sampler != nil {
		t.SampleEvery = c.Sampler.Every()
		t.Series = c.Sampler.Samples()
	}
	if tr := c.MergedTrace(); tr != nil {
		t.TraceCmds = tr.Total()
		t.TraceDropped = tr.Dropped()
	}
	t.Audit = c.MergedAudit().Summary()
	t.Quality = c.MergedQuality().Summary()
	t.Digest = c.Digest.Summary()
	if c.opts.Census {
		sum := c.MergedCensus().Summary()
		for i, s := range c.shards {
			sum.Channels = append(sum.Channels, s.Census.ChannelSummary(i))
		}
		t.Census = sum
	}
	return t
}

// Telemetry is the machine-readable digest of one run's observability data,
// attached to sim.Result and emitted by lazysim -json.
type Telemetry struct {
	// Stages holds per-lifecycle-stage latency percentiles.
	Stages []StageSummary `json:"stages,omitempty"`
	// SampleEvery is the sampling interval in memory cycles; Series the
	// collected time series.
	SampleEvery uint64   `json:"sample_every,omitempty"`
	Series      []Sample `json:"series,omitempty"`
	// TraceCmds counts DRAM commands offered to the trace ring;
	// TraceDropped how many were overwritten after the ring wrapped.
	TraceCmds    uint64 `json:"trace_cmds,omitempty"`
	TraceDropped uint64 `json:"trace_dropped,omitempty"`
	// Audit digests the scheduler decision log; Quality the approximation
	// error telemetry. Both are nil when the feature was off.
	Audit   *AuditSummary   `json:"audit,omitempty"`
	Quality *QualitySummary `json:"quality,omitempty"`
	// Fault digests the fault-injection run: per-mode flip counts, weak-cell
	// census, the determinism digest, and the injected-error histogram. Nil
	// when the fault model was off.
	Fault *FaultSummary `json:"fault,omitempty"`
	// Digest is the state-digest chain summary (nil unless DigestEvery was
	// set): interval count plus the final and chained machine digests, the
	// run's exact bit-identity key.
	Digest *DigestSummary `json:"digest,omitempty"`
	// Census is the cycle census and latency-provenance digest (nil unless
	// the census was on): the stall-cause decomposition, bank residency,
	// skippable-cycle fraction, and next-event-gap histogram.
	Census *CensusSummary `json:"census,omitempty"`
}

// FaultSummary is the serializable digest of a fault-injection run. It
// mirrors the fault package's per-channel summaries (merged across channels
// by sim) without obs importing it; Quality scores each corrupted line's
// bytes against the pristine line.
type FaultSummary struct {
	Seed        int64   `json:"seed"`
	BusBER      float64 `json:"bus_ber"`
	WeakDensity float64 `json:"weak_density"`

	Reads          uint64 `json:"reads"`
	CorruptedReads uint64 `json:"corrupted_reads"`
	ActFlips       uint64 `json:"act_flips"`
	RetFlips       uint64 `json:"ret_flips"`
	BusFlips       uint64 `json:"bus_flips"`
	TotalFlips     uint64 `json:"total_flips"`
	WeakRows       uint64 `json:"weak_rows"`
	WeakCells      uint64 `json:"weak_cells"`
	// Digest is an order-sensitive hash of every injected (location, mode)
	// flip; two runs with the same fault seed must agree on it.
	Digest uint64 `json:"digest"`

	Quality *QualitySummary `json:"quality,omitempty"`
}
