// Package obs is the simulator's observability layer: request-lifecycle
// latency histograms, an interval sampler that turns the dynamic schemes'
// settling behaviour into plottable time series, and a bounded DRAM command
// trace with Chrome trace_event and JSONL exporters.
//
// Everything is opt-in and nil-safe: a disabled collector hands out nil
// *Tracer / *Sampler / *CmdTrace pointers whose methods are no-ops behind a
// single nil check, so the simulation hot loop pays (almost) nothing when
// observability is off. The repository's BenchmarkTelemetryOff/On pair
// quantifies the overhead.
//
// The package depends only on the standard library and is imported by the
// model packages (core, mc, dram, sim); it must never import them back.
package obs

// Stage identifies one segment of a memory request's lifecycle. Stages on
// the SM side of the clock-domain crossing are measured in core cycles,
// stages inside the memory partition in memory cycles; StageSummary.Clock
// records which.
type Stage uint8

// Lifecycle stages.
const (
	// StageIcntReq: SM issue (transaction enters the SM outbox) to memory
	// partition acceptance — outbox wait + request crossbar + backpressure.
	// Core cycles.
	StageIcntReq Stage = iota
	// StageL2Hit: load transactions served by the partition's L2 slice
	// (fixed hit latency; the count is the interesting part). Core cycles.
	StageL2Hit
	// StageMCQueue: memory-controller enqueue to DRAM column issue — time
	// spent in the pending queue, including any DMS-imposed aging. Memory
	// cycles.
	StageMCQueue
	// StageDRAM: DRAM column issue to data-burst completion. Memory cycles.
	StageDRAM
	// StageVPDrop: memory-controller enqueue to AMS drop for value-predicted
	// requests. Memory cycles.
	StageVPDrop
	// StageIcntReply: partition reply send to SM delivery over the reply
	// crossbar. Core cycles.
	StageIcntReply
	// StageTotal: SM issue to reply delivery at the SM, end to end (L2 hits
	// and misses alike). Core cycles.
	StageTotal

	numStages
)

// stageMeta names each stage and its clock domain for reports.
var stageMeta = [numStages]struct{ name, clock string }{
	StageIcntReq:   {"icnt.req", "core"},
	StageL2Hit:     {"l2.hit", "core"},
	StageMCQueue:   {"mc.queue", "mem"},
	StageDRAM:      {"dram.service", "mem"},
	StageVPDrop:    {"mc.vpdrop", "mem"},
	StageIcntReply: {"icnt.reply", "core"},
	StageTotal:     {"total", "core"},
}

// String returns the stage's report name.
func (s Stage) String() string { return stageMeta[s].name }

// Clock returns "core" or "mem", the cycle domain the stage is measured in.
func (s Stage) Clock() string { return stageMeta[s].clock }

// Tracer aggregates per-stage latency histograms. The zero value is ready to
// use; a nil *Tracer discards every observation.
type Tracer struct {
	hists [numStages]Histogram
}

// Observe records one latency sample for the stage. It is nil-safe and
// allocation-free.
func (t *Tracer) Observe(s Stage, cycles uint64) {
	if t == nil {
		return
	}
	t.hists[s].Observe(cycles)
}

// Hist returns the histogram backing the stage (nil for a nil tracer).
func (t *Tracer) Hist(s Stage) *Histogram {
	if t == nil {
		return nil
	}
	return &t.hists[s]
}

// Stages summarizes every stage that recorded at least one sample.
func (t *Tracer) Stages() []StageSummary {
	if t == nil {
		return nil
	}
	var out []StageSummary
	for s := Stage(0); s < numStages; s++ {
		h := &t.hists[s]
		if h.Count() == 0 {
			continue
		}
		out = append(out, StageSummary{
			Stage: s.String(),
			Clock: s.Clock(),
			Count: h.Count(),
			Mean:  h.Mean(),
			P50:   h.Percentile(50),
			P90:   h.Percentile(90),
			P99:   h.Percentile(99),
			Max:   h.Max(),
		})
	}
	return out
}

// StageSummary is the serializable digest of one stage's latency histogram.
type StageSummary struct {
	Stage string  `json:"stage"`
	Clock string  `json:"clock"`
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
	Max   uint64  `json:"max"`
}

// Options selects which observability features a run collects. The zero
// value disables everything.
type Options struct {
	// Latency enables the request-lifecycle stage histograms.
	Latency bool
	// SampleEvery enables the time-series sampler with the given interval in
	// memory cycles (0 disables).
	SampleEvery uint64
	// TraceCapacity bounds the DRAM command ring buffer (0 disables the
	// trace). When the buffer wraps, the oldest commands are overwritten.
	TraceCapacity int
	// Metrics, when non-nil, receives live run metrics (cycle counts, IPC,
	// per-bank command counters, energy estimates) for concurrent scraping
	// via the registry's Prometheus/expvar handlers.
	Metrics *Registry
	// MetricsEvery is the publication interval for Metrics in memory cycles
	// (0 picks a default).
	MetricsEvery uint64
	// AuditCapacity bounds the scheduler decision-audit ring (0 disables the
	// decision log). Per-reason counters stay exact regardless of ring wrap.
	AuditCapacity int
	// Quality enables approximation-quality telemetry: every AMS-dropped
	// line's predicted bytes are scored against the functional ground truth.
	Quality bool
	// QualityWorst bounds the worst-offenders list (0 picks a default).
	QualityWorst int
	// FaultQuality enables injected-fault error telemetry: every
	// fault-corrupted line is scored against its pristine bytes in a second
	// QualityLog, kept separate from the AMS-drop log so the two error
	// sources stay distinguishable.
	FaultQuality bool
}

// Enabled reports whether any feature is on.
func (o Options) Enabled() bool {
	return o.Latency || o.SampleEvery > 0 || o.TraceCapacity > 0 ||
		o.Metrics != nil || o.AuditCapacity > 0 || o.Quality || o.FaultQuality
}

// Collector owns the per-run observability state. A nil *Collector (the
// disabled case) is valid everywhere.
type Collector struct {
	Tracer  *Tracer
	Sampler *Sampler
	Trace   *CmdTrace
	Metrics *Registry
	Audit   *AuditLog
	Quality *QualityLog
	// FaultQuality scores fault-corrupted lines (corrupted vs pristine
	// bytes); separate from Quality, which scores AMS-dropped lines.
	FaultQuality *QualityLog
}

// NewCollector builds a collector for the options, or nil when everything is
// disabled.
func NewCollector(o Options) *Collector {
	if !o.Enabled() {
		return nil
	}
	c := &Collector{}
	if o.Latency {
		c.Tracer = &Tracer{}
	}
	if o.SampleEvery > 0 {
		c.Sampler = NewSampler(o.SampleEvery)
	}
	if o.TraceCapacity > 0 {
		c.Trace = NewCmdTrace(o.TraceCapacity)
	}
	if o.AuditCapacity > 0 {
		c.Audit = NewAuditLog(o.AuditCapacity)
	}
	if o.Quality {
		c.Quality = NewQualityLog(o.QualityWorst)
	}
	if o.FaultQuality {
		c.FaultQuality = NewQualityLog(o.QualityWorst)
	}
	c.Metrics = o.Metrics
	return c
}

// Telemetry snapshots the collector into its serializable form (nil for a
// nil collector).
func (c *Collector) Telemetry() *Telemetry {
	if c == nil {
		return nil
	}
	t := &Telemetry{Stages: c.Tracer.Stages()}
	if c.Sampler != nil {
		t.SampleEvery = c.Sampler.Every()
		t.Series = c.Sampler.Samples()
	}
	if c.Trace != nil {
		t.TraceCmds = c.Trace.Total()
		t.TraceDropped = c.Trace.Dropped()
	}
	t.Audit = c.Audit.Summary()
	t.Quality = c.Quality.Summary()
	return t
}

// Telemetry is the machine-readable digest of one run's observability data,
// attached to sim.Result and emitted by lazysim -json.
type Telemetry struct {
	// Stages holds per-lifecycle-stage latency percentiles.
	Stages []StageSummary `json:"stages,omitempty"`
	// SampleEvery is the sampling interval in memory cycles; Series the
	// collected time series.
	SampleEvery uint64   `json:"sample_every,omitempty"`
	Series      []Sample `json:"series,omitempty"`
	// TraceCmds counts DRAM commands offered to the trace ring;
	// TraceDropped how many were overwritten after the ring wrapped.
	TraceCmds    uint64 `json:"trace_cmds,omitempty"`
	TraceDropped uint64 `json:"trace_dropped,omitempty"`
	// Audit digests the scheduler decision log; Quality the approximation
	// error telemetry. Both are nil when the feature was off.
	Audit   *AuditSummary   `json:"audit,omitempty"`
	Quality *QualitySummary `json:"quality,omitempty"`
	// Fault digests the fault-injection run: per-mode flip counts, weak-cell
	// census, the determinism digest, and the injected-error histogram. Nil
	// when the fault model was off.
	Fault *FaultSummary `json:"fault,omitempty"`
}

// FaultSummary is the serializable digest of a fault-injection run. It
// mirrors the fault package's per-channel summaries (merged across channels
// by sim) without obs importing it; Quality scores each corrupted line's
// bytes against the pristine line.
type FaultSummary struct {
	Seed        int64   `json:"seed"`
	BusBER      float64 `json:"bus_ber"`
	WeakDensity float64 `json:"weak_density"`

	Reads          uint64 `json:"reads"`
	CorruptedReads uint64 `json:"corrupted_reads"`
	ActFlips       uint64 `json:"act_flips"`
	RetFlips       uint64 `json:"ret_flips"`
	BusFlips       uint64 `json:"bus_flips"`
	TotalFlips     uint64 `json:"total_flips"`
	WeakRows       uint64 `json:"weak_rows"`
	WeakCells      uint64 `json:"weak_cells"`
	// Digest is an order-sensitive hash of every injected (location, mode)
	// flip; two runs with the same fault seed must agree on it.
	Digest uint64 `json:"digest"`

	Quality *QualitySummary `json:"quality,omitempty"`
}
