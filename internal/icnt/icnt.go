// Package icnt models the SM-to-memory-partition interconnect: one crossbar
// per direction (Table I), reduced to its locality-relevant properties — a
// fixed traversal latency, one packet per destination port per cycle, and
// finite per-port queues with backpressure. The islip VC/switch allocation of
// the paper's simulator is an arbitration detail that does not change which
// rows are touched; bandwidth and latency do, and both are modelled here
// (see DESIGN.md, "Known deviations").
package icnt

// Packet is one message in flight.
type Packet struct {
	Src     int
	Dst     int
	Payload any
	readyAt uint64
}

// Config sizes a network.
type Config struct {
	// Ports is the number of destination ports.
	Ports int
	// LatencyCycles is the crossbar traversal latency.
	LatencyCycles uint64
	// QueueDepth is the per-destination-port buffer capacity.
	QueueDepth int
}

// DefaultConfig returns the configuration used for both directions of the
// simulated GPU: 8-cycle traversal, 32-packet port buffers.
func DefaultConfig(ports int) Config {
	return Config{Ports: ports, LatencyCycles: 8, QueueDepth: 32}
}

// Network is a one-direction crossbar. It is not safe for concurrent use.
type Network struct {
	cfg    Config
	queues [][]Packet
	// lastPop tracks the last cycle a packet was delivered per port, to
	// enforce one delivery per port per cycle.
	lastPop []uint64
	sent    uint64
}

// New creates a network.
func New(cfg Config) *Network {
	n := &Network{
		cfg:     cfg,
		queues:  make([][]Packet, cfg.Ports),
		lastPop: make([]uint64, cfg.Ports),
	}
	for i := range n.lastPop {
		n.lastPop[i] = ^uint64(0) // no pops yet
	}
	return n
}

// CanSend reports whether the destination port can buffer another packet.
func (n *Network) CanSend(dst int) bool {
	return len(n.queues[dst]) < n.cfg.QueueDepth
}

// Send injects a packet at cycle now. It returns false (and drops nothing)
// when the destination buffer is full; the caller must retry later.
func (n *Network) Send(src, dst int, payload any, now uint64) bool {
	if !n.CanSend(dst) {
		return false
	}
	n.queues[dst] = append(n.queues[dst], Packet{
		Src: src, Dst: dst, Payload: payload, readyAt: now + n.cfg.LatencyCycles,
	})
	n.sent++
	return true
}

// Recv delivers at most one packet to dst at cycle now, in FIFO order.
func (n *Network) Recv(dst int, now uint64) (Packet, bool) {
	q := n.queues[dst]
	if len(q) == 0 || q[0].readyAt > now || n.lastPop[dst] == now {
		return Packet{}, false
	}
	p := q[0]
	n.queues[dst] = q[1:]
	n.lastPop[dst] = now
	return p, true
}

// Peek returns the head packet for dst without removing it, if deliverable.
func (n *Network) Peek(dst int, now uint64) (Packet, bool) {
	q := n.queues[dst]
	if len(q) == 0 || q[0].readyAt > now || n.lastPop[dst] == now {
		return Packet{}, false
	}
	return q[0], true
}

// Pending returns the total number of packets in flight.
func (n *Network) Pending() int {
	t := 0
	for _, q := range n.queues {
		t += len(q)
	}
	return t
}

// Sent returns the total number of packets ever injected.
func (n *Network) Sent() uint64 { return n.sent }
