package icnt

import (
	"fmt"
	"strings"

	"lazydram/internal/obs"
)

// DigestInto folds the network's in-flight state into h: per-port queue
// contents in FIFO order (source, delivery time) plus the per-port delivery
// guard and the injection counter. Payload contents are folded by fn, which
// the caller supplies because payload types live upstream of this package; a
// nil fn digests packet metadata only.
func (n *Network) DigestInto(h *obs.Hasher, fn func(payload any, h *obs.Hasher)) {
	h.U64(n.sent)
	for dst, q := range n.queues {
		h.Int(len(q))
		h.U64(n.lastPop[dst])
		for i := range q {
			p := &q[i]
			h.Int(p.Src)
			h.U64(p.readyAt)
			if fn != nil {
				fn(p.Payload, h)
			}
		}
	}
}

// DumpState renders per-port occupancy for lazydiverge's state diffs.
func (n *Network) DumpState() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sent=%d pending=%d\n", n.sent, n.Pending())
	for dst, q := range n.queues {
		if len(q) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "port[%d]: depth=%d headSrc=%d headReadyAt=%d\n",
			dst, len(q), q[0].Src, q[0].readyAt)
	}
	return sb.String()
}
