package icnt_test

import (
	"testing"

	"lazydram/internal/icnt"
)

func cfg() icnt.Config {
	return icnt.Config{Ports: 4, LatencyCycles: 8, QueueDepth: 2}
}

func TestTraversalLatency(t *testing.T) {
	n := icnt.New(cfg())
	if !n.Send(0, 1, "x", 10) {
		t.Fatal("send failed")
	}
	if _, ok := n.Recv(1, 17); ok {
		t.Fatal("packet delivered before the traversal latency")
	}
	p, ok := n.Recv(1, 18)
	if !ok || p.Payload != "x" || p.Src != 0 {
		t.Fatalf("packet not delivered at latency: %+v ok=%v", p, ok)
	}
}

func TestFIFOPerPort(t *testing.T) {
	n := icnt.New(cfg())
	n.Send(0, 1, "a", 0)
	n.Send(2, 1, "b", 0)
	p1, _ := n.Recv(1, 100)
	p2, _ := n.Recv(1, 101)
	if p1.Payload != "a" || p2.Payload != "b" {
		t.Fatalf("out of order: %v, %v", p1.Payload, p2.Payload)
	}
}

func TestOneDeliveryPerPortPerCycle(t *testing.T) {
	n := icnt.New(cfg())
	n.Send(0, 1, "a", 0)
	n.Send(0, 1, "b", 1)
	if _, ok := n.Recv(1, 50); !ok {
		t.Fatal("first delivery failed")
	}
	if _, ok := n.Recv(1, 50); ok {
		t.Fatal("two deliveries to one port in one cycle")
	}
	if _, ok := n.Recv(1, 51); !ok {
		t.Fatal("second delivery failed on the next cycle")
	}
}

func TestBackpressure(t *testing.T) {
	n := icnt.New(cfg())
	if !n.Send(0, 3, 1, 0) || !n.Send(0, 3, 2, 0) {
		t.Fatal("sends within depth must succeed")
	}
	if n.CanSend(3) {
		t.Fatal("CanSend true at capacity")
	}
	if n.Send(0, 3, 3, 0) {
		t.Fatal("send beyond depth must fail")
	}
	// Other ports are unaffected.
	if !n.CanSend(2) {
		t.Fatal("unrelated port blocked")
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	n := icnt.New(cfg())
	n.Send(0, 1, "a", 0)
	if _, ok := n.Peek(1, 100); !ok {
		t.Fatal("peek failed")
	}
	if _, ok := n.Recv(1, 100); !ok {
		t.Fatal("recv after peek failed")
	}
	if n.Pending() != 0 {
		t.Fatal("packet still pending after recv")
	}
}

func TestPendingAndSentCounters(t *testing.T) {
	n := icnt.New(cfg())
	n.Send(0, 0, nil, 0)
	n.Send(0, 1, nil, 0)
	if n.Pending() != 2 || n.Sent() != 2 {
		t.Fatalf("pending=%d sent=%d, want 2/2", n.Pending(), n.Sent())
	}
}
