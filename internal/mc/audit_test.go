package mc_test

import (
	"testing"

	"lazydram/internal/mc"
	"lazydram/internal/obs"
)

func withAudit(h *harness) *obs.AuditLog {
	aud := obs.NewAuditLog(1024)
	h.ctrl.SetAudit(aud, 0)
	return aud
}

func TestAuditAMSDropReconcilesWithStats(t *testing.T) {
	scheme := mc.Scheme{AMS: mc.Static, StaticThRBL: 1, CoverageTarget: 1}
	h := newHarness(t, scheme)
	aud := withAudit(h)
	h.push(0, 1, 0, false, true)
	h.run(0, 50)
	if h.st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", h.st.Dropped)
	}
	if got := aud.Count(obs.ReasonAMSDrop); got != h.st.Dropped {
		t.Fatalf("audited drops = %d, stats.Dropped = %d; must reconcile", got, h.st.Dropped)
	}
	var found bool
	for _, d := range aud.Entries() {
		if d.Reason != obs.ReasonAMSDrop {
			continue
		}
		found = true
		if d.Channel != 0 || d.Bank != 0 || d.Row != 1 {
			t.Errorf("drop decision at ch%d b%d row%d, want ch0 b0 row1", d.Channel, d.Bank, d.Row)
		}
		if d.VisibleRBL != 1 || d.ThRBL != 1 {
			t.Errorf("drop decision rbl=%d thRBL=%d, want 1/1", d.VisibleRBL, d.ThRBL)
		}
		if d.Coverage >= 1 {
			t.Errorf("drop decision coverage %g must be pre-drop (below target 1)", d.Coverage)
		}
	}
	if !found {
		t.Fatal("no ReasonAMSDrop decision in the ring")
	}
}

func TestAuditAMSSkipHighRBL(t *testing.T) {
	scheme := mc.Scheme{AMS: mc.Static, StaticThRBL: 1, CoverageTarget: 1}
	h := newHarness(t, scheme)
	aud := withAudit(h)
	h.push(0, 1, 0, false, true)
	h.push(0, 1, 128, false, true)
	h.run(0, 400)
	if h.st.Dropped != 0 {
		t.Fatalf("dropped %d despite RBL above threshold", h.st.Dropped)
	}
	if aud.Count(obs.ReasonAMSHighRBL) == 0 {
		t.Fatal("no rbl-above-threshold skip audited")
	}
	if aud.Count(obs.ReasonAMSDrop) != 0 {
		t.Fatal("drop audited but stats.Dropped is 0")
	}
}

func TestAuditAMSSkipCoverageExhausted(t *testing.T) {
	scheme := mc.Scheme{AMS: mc.Static, StaticThRBL: 1, CoverageTarget: 0.5}
	h := newHarness(t, scheme)
	aud := withAudit(h)
	h.push(0, 1, 0, false, true)
	h.push(0, 2, 0, false, true)
	h.run(0, 400)
	if h.st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want exactly 1 under a 0.5 coverage budget", h.st.Dropped)
	}
	if aud.Count(obs.ReasonAMSDrop) != 1 {
		t.Fatalf("audited drops = %d, want 1", aud.Count(obs.ReasonAMSDrop))
	}
	if aud.Count(obs.ReasonAMSCoverageExhausted) == 0 {
		t.Fatal("no coverage-exhausted skip audited for the second candidate")
	}
}

func TestAuditAMSSkipPendingWrites(t *testing.T) {
	scheme := mc.Scheme{AMS: mc.Static, StaticThRBL: 4, CoverageTarget: 1}
	h := newHarness(t, scheme)
	aud := withAudit(h)
	// Oldest live request is the approximable read, but its row also holds a
	// pending write — AMS must refuse (the write still needs the row) and
	// say why.
	h.push(0, 1, 0, false, true)
	h.push(0, 1, 128, true, false)
	h.run(0, 400)
	if aud.Count(obs.ReasonAMSPendingWrites) == 0 {
		t.Fatal("no pending-writes skip audited")
	}
	if h.st.Dropped != 0 {
		t.Fatalf("dropped %d requests from a row with a pending write", h.st.Dropped)
	}
}

func TestAuditAMSSkipL2Cold(t *testing.T) {
	scheme := mc.Scheme{AMS: mc.Static, StaticThRBL: 4, CoverageTarget: 1}
	h := newHarness(t, scheme)
	aud := withAudit(h)
	h.vpWarm = false
	h.push(0, 1, 0, false, true)
	h.run(0, 20)
	if aud.Count(obs.ReasonAMSL2Cold) == 0 {
		t.Fatal("no l2-cold skip audited while the VP is not warmed up")
	}
	if h.st.Dropped != 0 {
		t.Fatal("request dropped while the VP cannot predict")
	}
}

func TestAuditAMSSkipRowOpen(t *testing.T) {
	scheme := mc.Scheme{AMS: mc.Static, StaticThRBL: 4, CoverageTarget: 1}
	h := newHarness(t, scheme)
	aud := withAudit(h)
	// Open row 1 with a non-approximable read, then enqueue an approximable
	// read to the now-open row: serving it is free, so AMS skips it.
	h.push(0, 1, 0, false, false)
	h.run(0, 200)
	h.push(0, 1, 128, false, true)
	h.run(200, 260)
	if aud.Count(obs.ReasonAMSRowOpen) == 0 {
		t.Fatal("no row-open skip audited")
	}
	if h.st.Dropped != 0 {
		t.Fatal("request to an open row was dropped")
	}
}

func TestAuditDMSDelayReconcilesWithStats(t *testing.T) {
	scheme := mc.Scheme{DMS: mc.Static, StaticDelay: 100}
	h := newHarness(t, scheme)
	aud := withAudit(h)
	h.push(0, 1, 0, false, false)
	h.run(0, 300)
	if len(h.done) != 1 {
		t.Fatalf("completed %d, want 1", len(h.done))
	}
	var holds uint64
	for _, b := range h.st.Banks {
		holds += b.DMSDelayCycles
	}
	if holds == 0 {
		t.Fatal("DMS delay produced no hold cycles")
	}
	if got := aud.Count(obs.ReasonDMSDelayHold); got != holds {
		t.Fatalf("audited holds = %d, stats DMSDelayCycles = %d; must reconcile", got, holds)
	}
	if got := aud.Count(obs.ReasonDMSDelayExpired); got != 1 {
		t.Fatalf("audited expiries = %d, want 1 (one delayed activate)", got)
	}
}

// TestAuditOffLeavesNoTrace double-checks the nil-safety contract: without
// SetAudit every hook is a no-op and the controller behaves identically.
func TestAuditOffMatchesAuditOn(t *testing.T) {
	scheme := mc.Scheme{DMS: mc.Static, StaticDelay: 50, AMS: mc.Static, StaticThRBL: 2, CoverageTarget: 0.5}
	plain := newHarness(t, scheme)
	audited := newHarness(t, scheme)
	withAudit(audited)
	for _, h := range []*harness{plain, audited} {
		h.push(0, 1, 0, false, true)
		h.push(0, 2, 0, false, false)
		h.push(1, 3, 0, false, true)
		h.run(0, 500)
	}
	if len(plain.done) != len(audited.done) {
		t.Fatalf("completions diverge: %d vs %d", len(plain.done), len(audited.done))
	}
	for i := range plain.done {
		if plain.done[i].at != audited.done[i].at || plain.done[i].approx != audited.done[i].approx {
			t.Fatalf("completion %d diverges: %+v vs %+v", i, plain.done[i], audited.done[i])
		}
	}
	if plain.st.Dropped != audited.st.Dropped || plain.st.Activations != audited.st.Activations {
		t.Fatal("stats diverge between audited and unaudited runs")
	}
}
