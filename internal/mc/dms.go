package mc

import (
	"lazydram/internal/obs"
	"lazydram/internal/stats"
)

// Profiling constants shared by Dyn-DMS and Dyn-AMS (Section IV-B/IV-C).
const (
	// PaperProfileWindow is the paper's sampling window (4096 memory
	// cycles, footnote 1). Our workloads are scaled ~100x smaller than the
	// paper's full-size inputs, so the default window (Config.ProfileWindow)
	// is scaled to DefaultProfileWindow to keep the number of profiling
	// windows per run comparable.
	PaperProfileWindow = 4096
	// DefaultProfileWindow is the scaled default window.
	DefaultProfileWindow = 1024
	// DelayStep is the Dyn-DMS delay increment per window.
	DelayStep = 128
	// MaxDelay and MinDelay bound the Dyn-DMS delay.
	MaxDelay = 2048
	MinDelay = 0
	// BWThreshold: a window's BWUTIL must stay above this fraction of the
	// sampled baseline (the paper's 95%).
	BWThreshold = 0.95
	// RestartWindows is how many windows elapse before Dyn-DMS restarts its
	// search to capture phase changes.
	RestartWindows = 32
	// MinThRBL and MaxThRBL bound the Dyn-AMS threshold search.
	MinThRBL = 1
	MaxThRBL = 8
)

type dmsPhase uint8

const (
	dmsSampling dmsPhase = iota
	dmsSearching
	dmsSettled
)

func (p dmsPhase) String() string {
	switch p {
	case dmsSampling:
		return "sampling"
	case dmsSearching:
		return "searching"
	default:
		return "settled"
	}
}

// dmsUnit implements Static-DMS and Dyn-DMS. For Static mode the delay is
// fixed; for Dyn mode the unit samples the baseline bandwidth utilization
// with delay 0 (AMS halted), then walks the delay in DelayStep increments
// while BWUTIL stays above BWThreshold of the baseline, settling on the last
// compliant value and restarting every RestartWindows windows from the
// recorded delay.
type dmsUnit struct {
	mode     Mode
	window   uint64
	delay    int
	recorded int

	phase          dmsPhase
	baselineBW     float64
	busyAtWinStart uint64
	winStart       uint64
	winCount       int
	searchingDown  bool
	// warmup marks the first window after a delay change, whose BWUTIL is
	// polluted by the transition transient and therefore not judged.
	warmup bool

	aud     *obs.AuditLog // nil unless the decision audit is enabled
	channel int
}

func newDMSUnit(s Scheme, window uint64) *dmsUnit {
	u := &dmsUnit{mode: s.DMS, window: window, delay: s.StaticDelay, recorded: s.StaticDelay}
	if s.DMS == Dyn {
		// Start by sampling the no-delay baseline.
		u.delay = 0
		u.phase = dmsSampling
	}
	return u
}

// tick advances the unit by one memory cycle and reports whether AMS must be
// halted this cycle (true only during Dyn-DMS baseline-sampling windows).
func (u *dmsUnit) tick(now uint64, st *stats.Mem) (amsHalted bool) {
	if u.mode != Dyn {
		return false
	}
	if now-u.winStart >= u.window {
		u.windowEnd(now, st)
		u.winStart = now
		u.busyAtWinStart = st.DataBusBusy
	}
	return u.phase == dmsSampling
}

func (u *dmsUnit) windowEnd(now uint64, st *stats.Mem) {
	bw := float64(st.DataBusBusy-u.busyAtWinStart) / float64(u.window)
	u.winCount++
	switch u.phase {
	case dmsSampling:
		u.baselineBW = bw
		u.phase = dmsSearching
		u.searchingDown = false
		u.delay = u.recorded
		if u.delay < DelayStep {
			u.delay = DelayStep
		}
		u.warmup = true
	case dmsSearching:
		if u.warmup {
			u.warmup = false
			break
		}
		ok := bw >= BWThreshold*u.baselineBW
		switch {
		case !u.searchingDown && ok:
			if u.delay >= MaxDelay {
				u.delay = MaxDelay
				u.settle()
			} else {
				u.delay += DelayStep
				u.warmup = true
			}
		case !u.searchingDown && !ok:
			u.searchingDown = true
			u.stepDown()
			u.warmup = true
		case u.searchingDown && ok:
			u.settle()
		default: // searchingDown && !ok
			u.stepDown()
			u.warmup = true
		}
	case dmsSettled:
		// Hold the settled delay.
	}
	if u.winCount >= RestartWindows {
		// Restart to capture application phase changes; the recorded delay
		// seeds the next search.
		u.recorded = u.delay
		u.winCount = 0
		u.phase = dmsSampling
		u.delay = 0
	}
	if u.aud != nil {
		// One adaptation point per window: the delay in force after the
		// window decision, the BWUTIL that drove it, and the search phase.
		u.aud.RecordAdapt(obs.AdaptPoint{
			Cycle:   now,
			Channel: u.channel,
			Unit:    "dms",
			Delay:   u.delay,
			BWUtil:  bw,
			Phase:   u.phase.String(),
		})
	}
}

func (u *dmsUnit) stepDown() {
	u.delay -= DelayStep
	if u.delay <= MinDelay {
		u.delay = MinDelay
		u.settle()
	}
}

func (u *dmsUnit) settle() {
	u.recorded = u.delay
	u.phase = dmsSettled
}
