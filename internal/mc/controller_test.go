package mc_test

import (
	"testing"

	"lazydram/internal/dram"
	"lazydram/internal/mc"
	"lazydram/internal/stats"
)

// harness drives one controller with scripted requests and records
// completions.
type harness struct {
	st     *stats.Mem
	ctrl   *mc.Controller
	am     dram.AddrMap
	done   []completion
	vpWarm bool
}

type completion struct {
	req    *mc.Request
	approx bool
	at     uint64
}

func newHarness(t *testing.T, scheme mc.Scheme, mutate ...func(*mc.Config)) *harness {
	t.Helper()
	h := &harness{st: &stats.Mem{}, am: dram.DefaultAddrMap(), vpWarm: true}
	ch := dram.NewChannel(dram.DefaultConfig(), h.st)
	cfg := mc.DefaultConfig()
	cfg.Scheme = scheme
	for _, m := range mutate {
		m(&cfg)
	}
	h.ctrl = mc.New(cfg, ch, h.st, func(r *mc.Request, approx bool, at uint64) {
		h.done = append(h.done, completion{req: r, approx: approx, at: at})
	}, func() bool { return h.vpWarm })
	return h
}

// push enqueues a read (or write) for (bank, row, col).
func (h *harness) push(bank int, row int64, col uint64, write, approximable bool) *mc.Request {
	c := dram.Coord{Channel: 0, Bank: bank, Row: row, Col: col}
	return h.ctrl.Push(h.am.Encode(c), write, approximable, c, nil)
}

func (h *harness) run(from, to uint64) {
	for now := from; now < to; now++ {
		h.ctrl.Tick(now)
	}
}

func TestFRFCFSPrioritizesRowHitsOverOlderRequests(t *testing.T) {
	h := newHarness(t, mc.Baseline)
	// Row 1 request is oldest; row 2 request arrives later; then more row-1
	// work arrives after row 2. FR-FCFS must finish row 1 (hits) before
	// switching to row 2, even though the row-2 request is older than the
	// late row-1 requests.
	h.push(0, 1, 0, false, false)
	h.push(0, 2, 0, false, false)
	h.push(0, 1, 128, false, false)
	h.push(0, 1, 256, false, false)
	h.run(0, 500)
	if len(h.done) != 4 {
		t.Fatalf("completed %d requests, want 4", len(h.done))
	}
	var order []int64
	for _, c := range h.done {
		order = append(order, c.req.Coord.Row)
	}
	want := []int64{1, 1, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order %v, want %v", order, want)
		}
	}
	if h.st.Activations != 2 {
		t.Fatalf("activations = %d, want 2", h.st.Activations)
	}
}

func TestFRFCFSServesOldestWhenNoHits(t *testing.T) {
	h := newHarness(t, mc.Baseline)
	h.push(0, 5, 0, false, false)
	h.push(0, 3, 0, false, false)
	h.run(0, 300)
	if len(h.done) != 2 {
		t.Fatalf("completed %d, want 2", len(h.done))
	}
	if h.done[0].req.Coord.Row != 5 {
		t.Fatalf("first served row %d, want oldest (5)", h.done[0].req.Coord.Row)
	}
}

func TestOpenRowPolicyKeepsRowOpen(t *testing.T) {
	h := newHarness(t, mc.Baseline)
	h.push(0, 1, 0, false, false)
	h.run(0, 200)
	// A late request to the same row must be a row hit: still 1 activation.
	h.push(0, 1, 128, false, false)
	h.run(200, 400)
	if h.st.Activations != 1 {
		t.Fatalf("activations = %d, want 1 (open-row policy)", h.st.Activations)
	}
}

func TestBanksServiceInParallel(t *testing.T) {
	h := newHarness(t, mc.Baseline)
	for b := 0; b < 4; b++ {
		h.push(b, 1, 0, false, false)
	}
	h.run(0, 120)
	if len(h.done) != 4 {
		t.Fatalf("completed %d, want 4 across banks", len(h.done))
	}
	// With tRRD=6, four ACTs must have issued within ~18+tRCD+CL cycles,
	// far faster than serial tRC spacing.
	last := h.done[3].at
	if last > 60 {
		t.Fatalf("4-bank service took until cycle %d; banks not parallel", last)
	}
}

func TestWritesAreScheduled(t *testing.T) {
	h := newHarness(t, mc.Baseline)
	h.push(0, 1, 0, true, false)
	h.push(0, 1, 128, false, false)
	h.run(0, 300)
	if h.st.Writes != 1 || h.st.Reads != 1 {
		t.Fatalf("reads=%d writes=%d, want 1/1", h.st.Reads, h.st.Writes)
	}
}

func TestQueueBackpressure(t *testing.T) {
	h := newHarness(t, mc.Baseline, func(c *mc.Config) { c.QueueSize = 4 })
	for i := 0; i < 4; i++ {
		h.push(0, int64(i), 0, false, false)
	}
	if !h.ctrl.Full() {
		t.Fatal("queue must be full after QueueSize pushes")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("push to full queue must panic")
		}
	}()
	h.push(0, 9, 0, false, false)
}

func TestDMSGatesRowMissByAge(t *testing.T) {
	scheme := mc.Scheme{DMS: mc.Static, StaticDelay: 100}
	h := newHarness(t, scheme)
	h.push(0, 1, 0, false, false)
	h.run(0, 99)
	if h.st.Activations != 0 {
		t.Fatal("row miss activated before the DMS delay elapsed")
	}
	h.run(99, 300)
	if h.st.Activations != 1 || len(h.done) != 1 {
		t.Fatalf("request not served after delay: acts=%d done=%d", h.st.Activations, len(h.done))
	}
}

func TestDMSDoesNotDelayRowHits(t *testing.T) {
	scheme := mc.Scheme{DMS: mc.Static, StaticDelay: 100}
	h := newHarness(t, scheme)
	h.push(0, 1, 0, false, false)
	h.run(0, 250) // row 1 now open
	served := len(h.done)
	// A fresh same-row request must be served promptly despite its age 0.
	h.push(0, 1, 128, false, false)
	h.run(250, 300)
	if len(h.done) != served+1 {
		t.Fatal("row hit was delayed by DMS")
	}
}

func TestDMSAccumulatesRowMates(t *testing.T) {
	// Two same-row requests arriving 50 cycles apart: without DMS the first
	// is issued alone (row may close in between under pressure); with
	// DMS(200) both are visible when the row opens. Here we only check that
	// delaying does not increase activations and both requests ride one
	// activation.
	scheme := mc.Scheme{DMS: mc.Static, StaticDelay: 200}
	h := newHarness(t, scheme)
	h.push(0, 1, 0, false, false)
	h.run(0, 50)
	h.push(0, 1, 128, false, false)
	h.run(50, 600)
	if h.st.Activations != 1 {
		t.Fatalf("activations = %d, want 1", h.st.Activations)
	}
	h.ctrl.Drain() // fold the still-open activation into the histogram
	if h.st.RBL[2] != 1 {
		t.Fatalf("RBL[2] = %d, want 1", h.st.RBL[2])
	}
}

func TestAMSDropsLowRBLApproximableRead(t *testing.T) {
	scheme := mc.Scheme{AMS: mc.Static, StaticThRBL: 1, CoverageTarget: 1}
	h := newHarness(t, scheme)
	r := h.push(0, 1, 0, false, true)
	h.run(0, 50)
	if r.State() != mc.ReqDropped {
		t.Fatalf("state = %v, want dropped", r.State())
	}
	if h.st.Activations != 0 {
		t.Fatal("dropped request must not activate a row")
	}
	if len(h.done) != 1 || !h.done[0].approx {
		t.Fatal("dropped request must complete as approximate")
	}
	if h.st.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", h.st.Dropped)
	}
}

func TestAMSRespectsThRBL(t *testing.T) {
	scheme := mc.Scheme{AMS: mc.Static, StaticThRBL: 1, CoverageTarget: 1}
	h := newHarness(t, scheme)
	// Two pending requests to the row: visible RBL 2 > Th 1 -> no drop.
	h.push(0, 1, 0, false, true)
	h.push(0, 1, 128, false, true)
	h.run(0, 400)
	if h.st.Dropped != 0 {
		t.Fatalf("dropped %d requests despite RBL above threshold", h.st.Dropped)
	}
	if h.st.Activations != 1 {
		t.Fatalf("activations = %d, want 1", h.st.Activations)
	}
}

func TestAMSDropsWholeRowWithinThreshold(t *testing.T) {
	scheme := mc.Scheme{AMS: mc.Static, StaticThRBL: 4, CoverageTarget: 1}
	h := newHarness(t, scheme)
	for i := 0; i < 3; i++ {
		h.push(0, 1, uint64(i*128), false, true)
	}
	h.run(0, 50)
	if h.st.Dropped != 3 {
		t.Fatalf("dropped = %d, want the whole row (3)", h.st.Dropped)
	}
	if h.st.Activations != 0 {
		t.Fatal("whole-row drop must save the activation")
	}
}

func TestAMSDropsOneRequestPerCycle(t *testing.T) {
	scheme := mc.Scheme{AMS: mc.Static, StaticThRBL: 4, CoverageTarget: 1}
	h := newHarness(t, scheme)
	for i := 0; i < 3; i++ {
		h.push(0, 1, uint64(i*128), false, true)
	}
	h.run(0, 3)
	ats := map[uint64]int{}
	for _, c := range h.done {
		ats[c.at]++
	}
	for at, n := range ats {
		if n > 1 {
			t.Fatalf("%d drops completed for cycle %d; want sequential drops", n, at)
		}
	}
}

func TestAMSRefusesRowWithPendingWrite(t *testing.T) {
	scheme := mc.Scheme{AMS: mc.Static, StaticThRBL: 8, CoverageTarget: 1}
	h := newHarness(t, scheme)
	h.push(0, 1, 0, false, true)
	h.push(0, 1, 128, true, false) // write to the same row
	h.run(0, 400)
	if h.st.Dropped != 0 {
		t.Fatal("AMS must not drop a row with pending writes")
	}
}

func TestAMSRefusesNonApproximable(t *testing.T) {
	scheme := mc.Scheme{AMS: mc.Static, StaticThRBL: 8, CoverageTarget: 1}
	h := newHarness(t, scheme)
	h.push(0, 1, 0, false, false)
	h.run(0, 300)
	if h.st.Dropped != 0 {
		t.Fatal("non-approximable request was dropped")
	}
	if len(h.done) != 1 {
		t.Fatal("request not served")
	}
}

func TestAMSRefusesRowWithNonApproximableMate(t *testing.T) {
	scheme := mc.Scheme{AMS: mc.Static, StaticThRBL: 8, CoverageTarget: 1}
	h := newHarness(t, scheme)
	h.push(0, 1, 0, false, true)
	h.push(0, 1, 128, false, false)
	h.run(0, 400)
	if h.st.Dropped != 0 {
		t.Fatal("row with a non-approximable request must not be dropped")
	}
}

func TestAMSHonorsCoverageCap(t *testing.T) {
	scheme := mc.Scheme{AMS: mc.Static, StaticThRBL: 8, CoverageTarget: 0.25}
	h := newHarness(t, scheme)
	// 8 single-request rows: at most 2 drops before 2/8 = 25% is reached.
	for i := 0; i < 8; i++ {
		h.push(0, int64(i+1), 0, false, true)
	}
	h.run(0, 2000)
	if h.st.Dropped > 2 {
		t.Fatalf("dropped %d of 8 (%.0f%%), cap 25%%", h.st.Dropped,
			100*float64(h.st.Dropped)/8)
	}
}

func TestAMSWaitsForVPWarmup(t *testing.T) {
	scheme := mc.Scheme{AMS: mc.Static, StaticThRBL: 8, CoverageTarget: 1}
	h := newHarness(t, scheme)
	h.vpWarm = false
	h.push(0, 1, 0, false, true)
	h.run(0, 300)
	if h.st.Dropped != 0 {
		t.Fatal("AMS dropped before the VP unit was warm")
	}
	if len(h.done) != 1 {
		t.Fatal("request must fall back to normal service")
	}
}

func TestAMSSkipsOpenRow(t *testing.T) {
	scheme := mc.Scheme{AMS: mc.Static, StaticThRBL: 8, CoverageTarget: 1}
	h := newHarness(t, scheme)
	h.push(0, 1, 0, false, false) // non-approximable opens row 1
	h.run(0, 200)
	// Row 1 is open; an approximable request to it is a cheap hit, not a
	// drop candidate.
	h.push(0, 1, 128, false, true)
	h.run(200, 400)
	if h.st.Dropped != 0 {
		t.Fatal("request to an open row must be served, not dropped")
	}
}

func TestAMSWithDMSWaitsForDelay(t *testing.T) {
	scheme := mc.Scheme{
		DMS: mc.Static, StaticDelay: 100,
		AMS: mc.Static, StaticThRBL: 8, CoverageTarget: 1,
	}
	h := newHarness(t, scheme)
	r := h.push(0, 1, 0, false, true)
	h.run(0, 99)
	if r.State() == mc.ReqDropped {
		t.Fatal("AMS dropped before the DMS delay elapsed")
	}
	h.run(99, 200)
	if r.State() != mc.ReqDropped {
		t.Fatal("AMS did not drop after the delay elapsed")
	}
}

func TestSchemeNames(t *testing.T) {
	tests := []struct {
		give mc.Scheme
		want string
	}{
		{mc.Baseline, "Baseline"},
		{mc.StaticDMS, "Static-DMS"},
		{mc.DynDMS, "Dyn-DMS"},
		{mc.StaticAMS, "Static-AMS"},
		{mc.DynAMS, "Dyn-AMS"},
		{mc.StaticBoth, "Static-DMS+Static-AMS"},
		{mc.DynBoth, "Dyn-DMS+Dyn-AMS"},
		{mc.Scheme{DMS: mc.Static, StaticDelay: 512}, "DMS(512)"},
		{mc.Scheme{AMS: mc.Static, StaticThRBL: 2, CoverageTarget: 0.1}, "AMS(2)"},
	}
	for _, tt := range tests {
		if got := tt.give.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}
