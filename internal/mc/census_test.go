package mc_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lazydram/internal/mc"
	"lazydram/internal/obs"
)

// TestCensusExactDecomposition is the controller-level Σ-invariant property:
// under randomized traffic and every scheme, the census's per-cause cycle
// attribution must equal — exactly, with zero residual — the measured
// queue+service latency of every retired request, reconstructed here
// independently from the completion callbacks.
func TestCensusExactDecomposition(t *testing.T) {
	schemes := []mc.Scheme{
		mc.Baseline, mc.StaticDMS, mc.DynDMS,
		mc.StaticAMS, mc.DynAMS, mc.StaticBoth, mc.DynBoth,
	}
	f := func(seed int64, schemeIdx uint8) bool {
		scheme := schemes[int(schemeIdx)%len(schemes)]
		h := newHarness(t, scheme)
		cen := obs.NewCensus()
		h.ctrl.SetCensus(cen)
		rng := rand.New(rand.NewSource(seed))
		now := uint64(0)
		// Bursty arrivals: clustered same-row pushes mixed with scattered
		// traffic, some writes, some approximable reads (AMS drop fodder).
		for i := 0; i < 30; i++ {
			if !h.ctrl.Full() {
				h.push(rng.Intn(8), int64(rng.Intn(8)), uint64(rng.Intn(16)*128),
					rng.Intn(6) == 0, rng.Intn(2) == 0)
			}
			for k := rng.Intn(40); k >= 0; k-- {
				h.ctrl.Tick(now)
				now++
			}
		}
		for h.ctrl.Pending() > 0 {
			h.ctrl.Tick(now)
			now++
		}
		h.ctrl.CensusFinish(now)
		if err := cen.CheckInvariants(); err != nil {
			t.Logf("seed %d scheme %s: %v", seed, scheme.Name(), err)
			return false
		}
		// Independent reconstruction: every completion's ready time minus its
		// arrival is exactly the queue+service latency the census attributed
		// (AMS drops complete at drop+VPLatencyCycles, which the census books
		// as the vp service leg).
		var want uint64
		for _, d := range h.done {
			want += d.at - d.req.Arrival
		}
		if cen.LatencyCycles != want || cen.Attributed() != want {
			t.Logf("seed %d scheme %s: census %d/%d cycles, completions say %d",
				seed, scheme.Name(), cen.LatencyCycles, cen.Attributed(), want)
			return false
		}
		return cen.Requests == uint64(len(h.done))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestCensusRefreshAttribution: with refresh enabled, cycles a head spends
// blocked behind an all-bank refresh must land in the refresh cause, and the
// Σ-invariant must survive refresh windows.
func TestCensusRefreshAttribution(t *testing.T) {
	h := newHarness(t, mc.Baseline, func(cfg *mc.Config) {})
	cen := obs.NewCensus()
	h.ctrl.SetCensus(cen)
	// Drive long enough that at least one tREFI boundary passes with work
	// pending (DefaultConfig enables refresh when REFI > 0; if this config
	// has none, the test degrades to the invariant check).
	rng := rand.New(rand.NewSource(42))
	now := uint64(0)
	for now < 30000 {
		if now%50 == 0 && !h.ctrl.Full() {
			h.push(rng.Intn(8), int64(rng.Intn(16)), uint64(rng.Intn(16)*128), false, false)
		}
		h.ctrl.Tick(now)
		now++
	}
	for h.ctrl.Pending() > 0 {
		h.ctrl.Tick(now)
		now++
	}
	h.ctrl.CensusFinish(now)
	if err := cen.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if h.st.Refreshes > 0 && cen.Stall[obs.StallRefresh] == 0 {
		t.Log("refreshes occurred but no head was ever blocked by one (timing-dependent; not a failure)")
	}
}
