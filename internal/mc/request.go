// Package mc implements the paper's lazy memory scheduler: a First-Row
// First-Come-First-Serve (FR-FCFS) memory controller with a re-order pending
// queue, extended by the two proposed units:
//
//   - DMS (delayed memory scheduling): row-miss requests may only trigger a
//     precharge/activate once the oldest request destined to the bank has
//     aged at least Delay cycles in the pending queue, giving the scheduler
//     more visibility of future same-row requests (Section IV-B).
//   - AMS (approximate memory scheduling): the oldest pending request is
//     dropped — answered by the value-prediction unit instead of DRAM — when
//     it is an approximable global read whose row has a visible RBL at most
//     Th_RBL, no pending same-row writes, and the prediction coverage budget
//     is not exhausted (Section IV-C).
//
// Both units come in Static and Dyn(-profiling) variants exactly as in the
// paper.
package mc

import (
	"lazydram/internal/dram"
	"lazydram/internal/fault"
	"lazydram/internal/obs"
)

// ReqState tracks the lifecycle of a request inside the pending queue.
type ReqState uint8

// Request lifecycle states.
const (
	ReqPending ReqState = iota
	ReqServed           // issued to a DRAM bank
	ReqDropped          // dropped by AMS, value-predicted
)

// Request is one 128-byte line request in the memory controller.
type Request struct {
	// ID is assigned by the controller on Push, unique per controller.
	ID uint64
	// Addr is the line-aligned global address.
	Addr uint64
	// Write distinguishes write-backs/fills-for-write from read fills.
	Write bool
	// Approximable marks global reads to programmer-annotated approximable
	// data (the paper's pragma pred_var) that are safe to value-predict.
	Approximable bool
	// Arrival is the memory cycle the request entered the pending queue.
	Arrival uint64
	// Coord is the decoded DRAM coordinate of Addr.
	Coord dram.Coord
	// Meta is an opaque upstream cookie (e.g. the MSHR entry) returned with
	// the completion callback.
	Meta any
	// Faults carries the bit flips the fault model injected into this read's
	// data burst (nil for clean bursts or when injection is off); the fill
	// path applies them to the bytes returned upstream.
	Faults *fault.LineFaults

	state ReqState

	// stall accumulates the cycle census's head-stall charges per cause
	// (written only when a census is attached). At retirement the controller
	// adds the queue-not-head remainder and the service decomposition, so the
	// vector sums exactly to the request's measured queue+service latency.
	// uint32 bounds a single cause at ~4.3e9 cycles, far beyond any run.
	stall [obs.NumStallCauses]uint32
}

// State returns the request's lifecycle state.
func (r *Request) State() ReqState { return r.state }

// rowQ collects the pending requests destined to one (bank, row) pair, in
// arrival order. Served/dropped entries are removed lazily.
type rowQ struct {
	reqs             []*Request
	pending          int
	pendingWrites    int
	pendingNonApprox int
	dropping         bool
}

func (q *rowQ) push(r *Request) {
	q.reqs = append(q.reqs, r)
	q.pending++
	if r.Write {
		q.pendingWrites++
	}
	if !r.Approximable {
		q.pendingNonApprox++
	}
}

// oldest returns the oldest still-pending request, trimming dead entries.
func (q *rowQ) oldest() *Request {
	for len(q.reqs) > 0 && q.reqs[0].state != ReqPending {
		q.reqs = q.reqs[1:]
	}
	if len(q.reqs) == 0 {
		return nil
	}
	return q.reqs[0]
}

func (q *rowQ) retire(r *Request) {
	q.pending--
	if r.Write {
		q.pendingWrites--
	}
	if !r.Approximable {
		q.pendingNonApprox--
	}
}

// bankQ is the per-bank view of the pending queue.
type bankQ struct {
	fifo    []*Request // arrival order, lazily trimmed
	rows    map[int64]*rowQ
	pending int

	// version counts the mutations that can change oldest()'s answer:
	// pushes, retirements, and AMS row-drop transitions. The cycle census
	// charges every bank's head once per cycle; the version-stamped cache
	// below lets it reuse the head found last cycle instead of rescanning
	// the fifo. (The census span cache invalidates eagerly via the
	// controller's dirty-bank mask instead of comparing stamps; every
	// version-bump site also marks the bank dirty.)
	version    uint32
	cenHead    *Request
	cenVersion uint32
}

func (b *bankQ) push(r *Request) {
	b.fifo = append(b.fifo, r)
	rq := b.rows[r.Coord.Row]
	if rq == nil {
		rq = &rowQ{}
		b.rows[r.Coord.Row] = rq
	}
	rq.push(r)
	b.pending++
	b.version++
}

// oldest returns the oldest pending request in the bank whose row is not
// currently being drained by an AMS row drop.
func (b *bankQ) oldest() *Request {
	for len(b.fifo) > 0 && b.fifo[0].state != ReqPending {
		b.fifo = b.fifo[1:]
	}
	for _, r := range b.fifo {
		if r.state != ReqPending {
			continue
		}
		if rq := b.rows[r.Coord.Row]; rq != nil && rq.dropping {
			continue
		}
		return r
	}
	return nil
}

// oldestAny returns the oldest pending request regardless of drop state.
func (b *bankQ) oldestAny() *Request {
	for len(b.fifo) > 0 && b.fifo[0].state != ReqPending {
		b.fifo = b.fifo[1:]
	}
	if len(b.fifo) == 0 {
		return nil
	}
	return b.fifo[0]
}

// head is oldest() behind the version-stamped cache; the zero value (both
// stamps 0, nil head) is correct for an empty queue.
func (b *bankQ) head() *Request {
	if b.cenVersion != b.version {
		b.cenHead = b.oldest()
		b.cenVersion = b.version
	}
	return b.cenHead
}

func (b *bankQ) retire(r *Request) {
	b.pending--
	b.version++
	rq := b.rows[r.Coord.Row]
	rq.retire(r)
	if rq.pending == 0 && !rq.dropping {
		delete(b.rows, r.Coord.Row)
	}
}
