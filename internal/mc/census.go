package mc

import (
	"math/bits"

	"lazydram/internal/dram"
	"lazydram/internal/obs"
)

// Cycle census (obs.Census) hooks: once per Tick, after this cycle's
// scheduling, the controller charges every bank's still-pending scheduling
// head one cycle of exactly one stall cause, and classifies every bank's
// residency state. Running after issue means the cycle a request is served
// or dropped is never head-charged (the request already retired), and a
// request is never charged on its push cycle (pushes happen before the Tick
// whose pass first sees them, with Arrival stamped one cycle earlier) — so
// the accumulated head charges are strictly less than the measured queue
// latency and the remainder, charged to StallQueued at retirement, is the
// time spent waiting behind other work. That construction is what makes the
// Σ-invariant (per-cause cycles == queue+service latency) exact rather than
// approximate; CheckInvariants and the sim-level census tests enforce it.
//
// The per-cycle classification is evaluated lazily as spans: every DRAM
// timing constraint is an absolute "ready at" cycle that only ever moves
// later, and only via commands the controller itself issues, so a bank's
// classification is constant from the cycle it is computed until the
// earliest of (a) its own expiry horizon — the blocking timestamp the
// classifier read, (b) a mutation of the bank's queue (push, retire, AMS
// drop toggle) or a command to the bank — those sites eagerly set the
// bank's bit in Controller.cenDirty, (c) for arbitration-dependent causes,
// a channel command that moves the state they lost to — the column/ACT
// issue sites fold cenColMask/cenActMask into the dirty set, and (d) a
// change of the refresh flag or the DMS delay (re-classify all). censusTick
// therefore touches only dirty or expired banks and charges whole spans at
// their close; censusTickRef keeps the cycle-by-cycle evaluation as the
// executable specification, and TestCensusSpanEquivalence pins the two to
// identical output. Open spans are closed by censusRetire (the span's head
// is about to fold its charges) and by CensusFinish at end of run; mid-run
// readers (live metrics) see totals that lag by at most the open span, like
// any between-sample gauge.

// cenOpen marks a span with no self-expiry: only a dirty mark or a flush
// can close it.
const cenOpen = ^uint64(0)

// Span sensitivity to channel-level command state: a ready head that lost
// arbitration stays correctly classified only while the channel state that
// could block it next cycle holds still. cenSensCol tracks the column bus
// (row-hit heads), cenSensAct the tRRD ACT spacing (activate-ready heads);
// the bank joins the matching controller mask so the issue sites can dirty
// exactly the affected spans. Bank-local causes are cenSensNone: their
// state moves only via the bank's own dirty marks or their expiry horizon.
const (
	cenSensNone uint8 = iota
	cenSensCol
	cenSensAct
)

// cenSpan is one bank's open census span: the classification in force since
// start. The span's expiry horizon lives in the controller's dense cenUntil
// array (scanned every time the minimum fires, so it must stay compact);
// cenUntil[b]==0 marks an invalid span (nothing open), and validity otherwise
// rests on the controller's eager dirty marks, not on stamps stored here.
// serv1 marks a span opened on a command cycle: its first cycle's residency
// is BankServing (the command itself) and the rest follow state, which the
// classifier read from the post-command timing — valid from the command
// cycle onward, so one span covers both without an extra re-classify.
type cenSpan struct {
	head  *Request
	start uint64
	cause obs.StallCause
	state obs.BankState
	serv1 bool
}

// censusTick runs the census for cycle now. The quiescent-cycle guard is
// small enough to inline into Tick: a cycle with no dirty bank, no reached
// horizon, and no refresh transition provably extends every open span, and
// costs three compares (skipped cycles are bulk-accounted into BankCycles
// by the next pass or by CensusFinish). Delay changes mark every bank dirty
// at the Tick site, so they need no compare here; the reference modes keep
// cenNextUntil at its zero value so every cycle takes the pass.
func (c *Controller) censusTick(now uint64, refreshing bool) {
	if c.cenDirty == 0 && now < c.cenNextUntil && refreshing == c.cenRefreshing {
		return
	}
	c.censusPass(now, refreshing)
}

// censusPass is the non-quiescent census pass: it settles the bulk cycle
// account, then re-classifies exactly the dirty and horizon-expired banks.
func (c *Controller) censusPass(now uint64, refreshing bool) {
	delay := uint64(c.Delay())
	if c.cenRef || c.cenWide {
		c.censusTickRef(now, delay, refreshing)
		return
	}
	if c.cenTicked == cenOpen {
		c.cenTicked = now
	}
	c.cen.AddCycles(now + 1 - c.cenTicked)
	c.cenTicked = now + 1
	if refreshing != c.cenRefreshing || delay != c.cenDelay {
		// Refresh opening/closing rewrites every bank's row and activate
		// state; a Dyn-DMS delay change moves every head's age gate.
		c.cenRefreshing = refreshing
		c.cenDelay = delay
		c.cenDirty = c.cenAllMask
	}
	dirty := c.cenDirty
	c.cenDirty = 0
	work := dirty
	next := c.cenNextUntil
	if now >= next {
		// At least one horizon fired (or the min is stale after a dirty
		// bank re-classified longer): collect every expired span and rebuild
		// the minimum over the survivors. cenUntil is a dense array so this
		// scan touches two cache lines, not one per span.
		next = cenOpen
		for b, u := range c.cenUntil {
			if now >= u {
				work |= 1 << uint(b)
			} else if u < next {
				next = u
			}
		}
	}
	for work != 0 {
		b := bits.TrailingZeros64(work)
		bit := uint64(1) << uint(b)
		work &^= bit
		s := &c.cenSpans[b]
		if dirty&bit == 0 && c.cenUntil[b] != 0 && s.state == obs.BankTimingWait {
			// Pure horizon expiry on a clean span. For the two
			// channel-horizon causes the deadline can move later while the
			// span is open (each command pushes the bus / tRRD spacing
			// further out) without changing the classification — extend in
			// place instead of reclassifying.
			var nu uint64
			switch s.cause {
			case obs.StallBusTurn:
				nu = c.ch.BusReadyAt(b, s.head.Write)
			case obs.StallTRRD:
				nu = c.ch.ActAnyReadyAt()
			}
			if nu > now {
				c.cenUntil[b] = nu
				if nu < next {
					next = nu
				}
				continue
			}
		}
		c.cenFlush(b, now)
		c.cenClassify(b, now, delay, refreshing)
		if u := c.cenUntil[b]; u < next {
			next = u
		}
	}
	c.cenNextUntil = next
}

// cenFlush closes bank b's open span at cycle now, charging the covered
// cycles [start, now) to the span's head cause and residency state in bulk.
func (c *Controller) cenFlush(b int, now uint64) {
	s := &c.cenSpans[b]
	if c.cenUntil[b] != 0 && now > s.start {
		n := now - s.start
		if s.head != nil {
			s.head.stall[s.cause] += uint32(n)
		}
		if s.serv1 {
			c.cen.AddBankCycles(b, obs.BankServing, 1)
			n--
		}
		if n > 0 {
			c.cen.AddBankCycles(b, s.state, n)
		}
	}
	c.cenUntil[b] = 0
	s.head = nil
	s.start = now
	bit := ^(uint64(1) << uint(b))
	c.cenColMask &= bit
	c.cenActMask &= bit
}

// cenClassify opens a new span for bank b at cycle now: it classifies the
// bank exactly like one censusTickRef pass would, records the horizon under
// which that classification stays valid, and joins the channel-sensitivity
// mask matching the cause (the preceding cenFlush cleared both masks).
func (c *Controller) cenClassify(b int, now, delay uint64, refreshing bool) {
	s := &c.cenSpans[b]
	bq := &c.banks[b]
	s.start = now
	until := cenOpen
	var r *Request
	if bq.pending > 0 {
		r = bq.head()
	}
	s.head = r
	if r != nil {
		var sens uint8
		s.cause, until, sens = c.classifyHead(r, b, now, delay, refreshing)
		switch sens {
		case cenSensCol:
			c.cenColMask |= 1 << uint(b)
		case cenSensAct:
			c.cenActMask |= 1 << uint(b)
		}
	}
	// On a command cycle the classification above already read the
	// post-command timing state, so it is valid from this very cycle; the
	// serv1 flag routes the first cycle's residency to BankServing at flush
	// instead of opening a throwaway one-cycle span.
	s.serv1 = b == c.cenBank
	switch {
	case r != nil:
		if s.cause == obs.StallDMSHold {
			s.state = obs.BankDMSHeld
		} else {
			s.state = obs.BankTimingWait
		}
	case c.ch.OpenRow(b) != dram.NoRow:
		s.state = obs.BankOpenIdle
	case !c.ch.ActBankReady(b, now):
		s.state = obs.BankPrecharging
		until = c.ch.ActReadyAt(b)
	default:
		s.state = obs.BankIdle
	}
	c.cenUntil[b] = until
}

// CensusFinish closes every bank's open census span; end is one past the
// last ticked cycle, so the final spans cover exactly the elapsed
// bank-cycles. Call once before reading census summaries or invariants (the
// sim partitions do this in their drain path); it is idempotent and a no-op
// when the census is off.
func (c *Controller) CensusFinish(end uint64) {
	if c.cen == nil {
		return
	}
	if c.cenTicked != cenOpen && end > c.cenTicked {
		c.cen.AddCycles(end - c.cenTicked)
		c.cenTicked = end
	}
	for b := range c.cenSpans {
		c.cenFlush(b, end)
	}
}

// censusTickRef is the cycle-by-cycle reference census: one classification
// and one charge per bank per cycle. It is the executable specification the
// span path is tested against (TestCensusSpanEquivalence) and runs only
// under the cenRef test hook.
func (c *Controller) censusTickRef(now, delay uint64, refreshing bool) {
	for b := range c.banks {
		bq := &c.banks[b]
		var r *Request
		if bq.pending > 0 {
			// The same head view issue() schedules from: rows being drained
			// by an AMS row drop are skipped; their requests get their whole
			// wait attributed as queued at drop time. head() reuses last
			// cycle's scan when the bank's queue hasn't mutated.
			r = bq.head()
		}
		var cause obs.StallCause
		if r != nil {
			cause, _, _ = c.classifyHead(r, b, now, delay, refreshing)
			r.stall[cause]++
		}
		switch {
		case b == c.cenBank:
			c.cen.BankCycle(b, obs.BankServing)
		case r != nil:
			if cause == obs.StallDMSHold {
				c.cen.BankCycle(b, obs.BankDMSHeld)
			} else {
				c.cen.BankCycle(b, obs.BankTimingWait)
			}
		case c.ch.OpenRow(b) != dram.NoRow:
			c.cen.BankCycle(b, obs.BankOpenIdle)
		case !c.ch.ActBankReady(b, now):
			c.cen.BankCycle(b, obs.BankPrecharging)
		default:
			c.cen.BankCycle(b, obs.BankIdle)
		}
	}
	c.cen.TickBanks()
}

// classifyHead attributes one blocked cycle of bank b's scheduling head r to
// a stall cause. It reads the channel's post-issue timing state, so a head
// that was ready but lost this cycle's one-command arbitration shows up as
// blocked by the command that won (e.g. the winning burst's tCCD) or, when
// nothing explains the block, as StallQueued.
//
// until is the first cycle the classification could change without a queue
// mutation or a command to this bank: the blocking timestamp for the timer
// causes (those move only via commands, which dirty the bank), cenOpen when
// only a dirty mark can end the span. sens marks the
// ready-but-lost-arbitration causes, which must re-classify after a command
// that moves the channel state they depend on (column bus or tRRD spacing).
func (c *Controller) classifyHead(r *Request, b int, now, delay uint64, refreshing bool) (cause obs.StallCause, until uint64, sens uint8) {
	if refreshing {
		// The refresh-flag flush bounds the span.
		return obs.StallRefresh, cenOpen, cenSensNone
	}
	or := c.ch.OpenRow(b)
	if or != dram.NoRow && or == r.Coord.Row {
		// Row hit waiting on column timing.
		if !c.ch.ColBankReady(b, r.Write, now) {
			return obs.StallTRCD, c.ch.ColReadyAt(b, r.Write), cenSensNone
		}
		ready := false
		if r.Write {
			ready = c.ch.CanWrite(b, now)
		} else {
			ready = c.ch.CanRead(b, now)
		}
		if !ready {
			// The bus horizon can move later while the span is open, but a
			// busier bus is still StallBusTurn; the expiry extends in place.
			return obs.StallBusTurn, c.ch.BusReadyAt(b, r.Write), cenSensNone
		}
		return obs.StallQueued, cenOpen, cenSensCol
	}
	// Row-miss path: the head needs a precharge and/or an activate, gated by
	// the DMS age criterion exactly like issue()'s miss pass.
	if now-r.Arrival < delay {
		return obs.StallDMSHold, r.Arrival + delay, cenSensNone
	}
	if or != dram.NoRow {
		// Conflict: under the open-row policy the row only closes once its
		// pending hits drained — until then the head is queued behind them.
		// Every drained hit retires on this bank, bumping version.
		if rq := c.banks[b].rows[or]; c.cfg.Policy != FCFS &&
			rq != nil && rq.pending > 0 && !rq.dropping {
			return obs.StallQueued, cenOpen, cenSensNone
		}
		if !c.ch.CanPrecharge(b, now) {
			return obs.StallTRAS, c.ch.PreReadyAt(b), cenSensNone
		}
		// Ready to precharge but another bank's command won arbitration;
		// both CanPrecharge inputs are bank-local, so no channel stamp.
		return obs.StallQueued, cenOpen, cenSensNone
	}
	if !c.ch.ActBankReady(b, now) {
		return obs.StallTRP, c.ch.ActReadyAt(b), cenSensNone
	}
	if !c.ch.CanActivate(b, now) {
		// nextActAny cannot move before it elapses: moving it requires an
		// ACT, which is only legal once the current horizon has passed.
		return obs.StallTRRD, c.ch.ActAnyReadyAt(), cenSensNone
	}
	return obs.StallQueued, cenOpen, cenSensAct
}

// censusRetire folds one retiring request into the exact decomposition:
// the accumulated head charges, the queue-not-head remainder, and the
// deterministic service split (CL/WL column access + tCCD burst for served
// requests, the value-predicted reply latency for AMS drops). The bank's
// open span is flushed first, because the retiring request may be its head
// and the span's charges belong inside this decomposition.
func (c *Controller) censusRetire(r *Request, now, ready uint64, dropped bool) {
	c.cenFlush(r.Coord.Bank, now)
	queue := now - r.Arrival
	var vec [obs.NumStallCauses]uint64
	var head uint64
	for i, n := range r.stall {
		vec[i] = uint64(n)
		head += uint64(n)
	}
	vec[obs.StallQueued] += queue - head
	service := ready - now
	if dropped {
		vec[obs.StallVP] += service
	} else {
		burst := c.ch.Config().Timing.CCD
		if burst > service {
			burst = service
		}
		vec[obs.StallCAS] += service - burst
		vec[obs.StallBurst] += burst
	}
	c.cen.Retire(r.Coord.Bank, queue+service, &vec)
}
