package mc_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lazydram/internal/dram"
	"lazydram/internal/mc"
	"lazydram/internal/stats"
)

func newStats() *stats.Mem                { return &stats.Mem{} }
func newDRAM(st *stats.Mem) *dram.Channel { return dram.NewChannel(dram.DefaultConfig(), st) }
func defaultAddrMap() dram.AddrMap        { return dram.DefaultAddrMap() }

// TestFRFCFSNeverIdlesWithServiceableWork: whenever the queue holds requests
// and enough cycles pass, progress must be made (no scheduling deadlock),
// under every scheme.
func TestSchedulerLiveness(t *testing.T) {
	schemes := []mc.Scheme{mc.Baseline, mc.StaticDMS, mc.StaticAMS, mc.DynBoth}
	f := func(seed int64, schemeIdx uint8) bool {
		scheme := schemes[int(schemeIdx)%len(schemes)]
		h := newHarnessQ(scheme)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 40; i++ {
			h.push(rng.Intn(16), int64(rng.Intn(32)), uint64(rng.Intn(16)*128),
				rng.Intn(5) == 0, true)
		}
		// DMS may hold requests up to its delay; allow generous time.
		for now := uint64(0); now < 30000; now++ {
			h.ctrl.Tick(now)
			if h.ctrl.Pending() == 0 {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRowHitsNeverSplit: requests pushed back-to-back for one row must all
// be served by a single activation when no other bank traffic interferes.
func TestRowHitsNeverSplit(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 1 + int(nRaw%16)
		h := newHarnessQ(mc.Baseline)
		for i := 0; i < n; i++ {
			h.push(3, 7, uint64(i%16)*128, false, false)
		}
		for now := uint64(0); now < 5000; now++ {
			h.ctrl.Tick(now)
		}
		h.ctrl.Drain()
		return h.st.Activations == 1 && int(h.st.Reads) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestDelayMonotonicity: a larger static delay never increases activations
// for a fixed workload that re-visits rows over time (the core DMS claim).
func TestDelayMonotonicityOnRevisitingTraffic(t *testing.T) {
	acts := func(delay int) uint64 {
		scheme := mc.Baseline
		if delay > 0 {
			scheme = mc.Scheme{DMS: mc.Static, StaticDelay: delay}
		}
		h := newHarnessQ(scheme)
		rng := rand.New(rand.NewSource(11))
		// Re-visiting traffic: rows recur with a gap larger than service
		// time, so the baseline thrashes while a delayed queue batches them.
		for now := uint64(0); now < 60000; now++ {
			if now%24 == 0 && !h.ctrl.Full() {
				h.push(rng.Intn(4), int64(rng.Intn(8)), uint64(rng.Intn(16)*128), false, false)
			}
			h.ctrl.Tick(now)
		}
		h.ctrl.Drain()
		return h.st.Activations
	}
	a0 := acts(0)
	a256 := acts(256)
	a1024 := acts(1024)
	if !(a1024 <= a256 && a256 <= a0) {
		t.Fatalf("activations not monotone in delay: %d (0) %d (256) %d (1024)", a0, a256, a1024)
	}
}

// newHarnessQ is the quick-friendly harness constructor (no *testing.T).
func newHarnessQ(scheme mc.Scheme) *harness {
	h := &harness{vpWarm: true}
	h.st = newStats()
	ch := newDRAM(h.st)
	cfg := mc.DefaultConfig()
	cfg.Scheme = scheme
	h.am = defaultAddrMap()
	h.ctrl = mc.New(cfg, ch, h.st, func(r *mc.Request, approx bool, at uint64) {
		h.done = append(h.done, completion{req: r, approx: approx, at: at})
	}, func() bool { return h.vpWarm })
	return h
}
