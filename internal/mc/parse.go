package mc

import (
	"fmt"
	"strings"
)

// ParseScheme maps a scheme name to its configuration; delay and thrbl fill
// the static variants' parameters. Shared by every CLI that takes -scheme.
func ParseScheme(name string, delay, thrbl int) (Scheme, error) {
	switch strings.ToLower(name) {
	case "baseline", "base":
		return Baseline, nil
	case "static-dms", "dms":
		s := StaticDMS
		s.StaticDelay = delay
		return s, nil
	case "dyn-dms":
		return DynDMS, nil
	case "static-ams", "ams":
		s := StaticAMS
		s.StaticThRBL = thrbl
		return s, nil
	case "dyn-ams":
		return DynAMS, nil
	case "static-both", "both":
		s := StaticBoth
		s.StaticDelay = delay
		s.StaticThRBL = thrbl
		return s, nil
	case "dyn-both":
		return DynBoth, nil
	default:
		return Scheme{}, fmt.Errorf("unknown scheme %q", name)
	}
}
