package mc

import (
	"fmt"
	"strings"

	"lazydram/internal/obs"
)

// DigestInto folds the controller's live scheduling state into h: the
// queue counters, every bank's pending requests in arrival order, and the
// DMS/AMS unit state. Served and dropped entries still sitting in the lazily
// trimmed FIFOs are skipped, so the digest depends only on what the
// scheduler can still act on.
func (c *Controller) DigestInto(h *obs.Hasher) {
	h.Int(c.live)
	h.U64(c.nextID)
	h.U64(c.now)
	for b := range c.banks {
		bq := &c.banks[b]
		h.Int(bq.pending)
		for _, r := range bq.fifo {
			if r.state != ReqPending {
				continue
			}
			h.U64(r.ID)
			h.U64(r.Addr)
			h.Bool(r.Write)
			h.Bool(r.Approximable)
			h.U64(r.Arrival)
		}
	}
	if c.dms != nil {
		c.dms.digestInto(h)
	} else {
		h.Int(-1)
	}
	if c.ams != nil {
		c.ams.digestInto(h)
	} else {
		h.Int(-1)
	}
}

func (u *dmsUnit) digestInto(h *obs.Hasher) {
	h.Int(int(u.mode))
	h.Int(u.delay)
	h.Int(u.recorded)
	h.Int(int(u.phase))
	h.F64(u.baselineBW)
	h.U64(u.busyAtWinStart)
	h.U64(u.winStart)
	h.Int(u.winCount)
	h.Bool(u.searchingDown)
	h.Bool(u.warmup)
}

func (u *amsUnit) digestInto(h *obs.Hasher) {
	h.Int(int(u.mode))
	h.Int(u.thRBL)
	h.U64(u.winStart)
	h.U64(u.droppedAtWinStart)
	h.U64(u.readsAtWinStart)
	h.Int(len(u.dropList))
	for _, r := range u.dropList {
		h.U64(r.ID)
	}
	h.Int(u.dropBank)
	h.I64(u.dropRow)
}

// DumpState renders the controller's live queue and unit state for
// lazydiverge's focused state diffs: counters, per-bank pending heads, and
// the DMS/AMS search state.
func (c *Controller) DumpState() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "live=%d nextID=%d now=%d delay=%d thRBL=%d\n",
		c.live, c.nextID, c.now, c.Delay(), c.ThRBL())
	for b := range c.banks {
		bq := &c.banks[b]
		if bq.pending == 0 {
			continue
		}
		fmt.Fprintf(&sb, "bank[%d]: pending=%d heads=", b, bq.pending)
		shown := 0
		for _, r := range bq.fifo {
			if r.state != ReqPending {
				continue
			}
			if shown > 0 {
				sb.WriteByte(' ')
			}
			kind := "R"
			if r.Write {
				kind = "W"
			} else if r.Approximable {
				kind = "RA"
			}
			fmt.Fprintf(&sb, "#%d@%#x/%s/arr=%d", r.ID, r.Addr, kind, r.Arrival)
			if shown++; shown >= 4 {
				break
			}
		}
		sb.WriteByte('\n')
	}
	if u := c.dms; u != nil {
		fmt.Fprintf(&sb, "dms: phase=%v delay=%d recorded=%d baselineBW=%.4f winStart=%d winCount=%d down=%v warmup=%v\n",
			u.phase, u.delay, u.recorded, u.baselineBW, u.winStart, u.winCount, u.searchingDown, u.warmup)
	}
	if u := c.ams; u != nil {
		fmt.Fprintf(&sb, "ams: thRBL=%d winStart=%d dropList=%d dropBank=%d dropRow=%d\n",
			u.thRBL, u.winStart, len(u.dropList), u.dropBank, u.dropRow)
	}
	return sb.String()
}
