package mc_test

import (
	"math/rand"
	"testing"

	"lazydram/internal/dram"
	"lazydram/internal/mc"
	"lazydram/internal/stats"
)

// feedRandom pushes a request to a random (bank, row) every `period` cycles.
func feedRandom(h *harness, rng *rand.Rand, now uint64, rows int) {
	if !h.ctrl.Full() {
		h.push(rng.Intn(16), int64(rng.Intn(rows)), uint64(rng.Intn(16)*128), false, true)
	}
	_ = now
}

func TestDynDMSRampsUnderBacklog(t *testing.T) {
	// Open-loop traffic: BWUTIL is backlog-bound and insensitive to delay,
	// so Dyn-DMS must ramp its delay well above the static 128.
	h := newHarness(t, mc.DynDMS)
	rng := rand.New(rand.NewSource(1))
	for now := uint64(0); now < 200000; now++ {
		if now%4 == 0 {
			feedRandom(h, rng, now, 64)
		}
		h.ctrl.Tick(now)
	}
	if got := h.st.MeanDelay(); got < 200 {
		t.Fatalf("mean delay = %.0f, want a ramp well above 128", got)
	}
}

func TestDynDMSStaysWithinBounds(t *testing.T) {
	h := newHarness(t, mc.DynDMS)
	rng := rand.New(rand.NewSource(2))
	for now := uint64(0); now < 300000; now++ {
		if now%3 == 0 {
			feedRandom(h, rng, now, 256)
		}
		h.ctrl.Tick(now)
		if d := h.ctrl.Delay(); d < mc.MinDelay || d > mc.MaxDelay {
			t.Fatalf("delay %d out of [%d, %d]", d, mc.MinDelay, mc.MaxDelay)
		}
	}
}

func TestDynDMSReducesActivationsVsBaseline(t *testing.T) {
	run := func(scheme mc.Scheme) uint64 {
		h := newHarness(t, scheme)
		rng := rand.New(rand.NewSource(3))
		for now := uint64(0); now < 200000; now++ {
			if now%4 == 0 {
				feedRandom(h, rng, now, 48)
			}
			h.ctrl.Tick(now)
		}
		h.ctrl.Drain()
		return h.st.Activations
	}
	base := run(mc.Baseline)
	dyn := run(mc.DynDMS)
	if dyn >= base {
		t.Fatalf("Dyn-DMS activations %d >= baseline %d", dyn, base)
	}
}

func TestDynAMSModulatesThRBLDown(t *testing.T) {
	// Plenty of single-request rows: coverage demand saturates, so Dyn-AMS
	// must walk Th_RBL down toward 1.
	h := newHarness(t, mc.DynAMS)
	rng := rand.New(rand.NewSource(4))
	for now := uint64(0); now < 200000; now++ {
		if now%4 == 0 {
			feedRandom(h, rng, now, 4096)
		}
		h.ctrl.Tick(now)
	}
	if got := h.st.MeanThRBL(); got > 4 {
		t.Fatalf("mean Th_RBL = %.1f, want it pulled toward 1 under saturating coverage", got)
	}
}

func TestDynAMSCoverageStaysBounded(t *testing.T) {
	h := newHarness(t, mc.DynAMS)
	rng := rand.New(rand.NewSource(5))
	for now := uint64(0); now < 200000; now++ {
		if now%4 == 0 {
			feedRandom(h, rng, now, 4096)
		}
		h.ctrl.Tick(now)
	}
	if cov := h.st.Coverage(); cov > 0.101 {
		t.Fatalf("coverage %.4f exceeds the 10%% cap", cov)
	}
	if h.st.Dropped == 0 {
		t.Fatal("Dyn-AMS dropped nothing under ideal conditions")
	}
}

// TestSchedulerConservation is a property test: under random mixed traffic
// every pushed request is either served exactly once or dropped exactly
// once, and column-access counts match.
func TestSchedulerConservation(t *testing.T) {
	schemes := []mc.Scheme{mc.Baseline, mc.StaticDMS, mc.StaticAMS, mc.StaticBoth, mc.DynBoth}
	for _, scheme := range schemes {
		t.Run(scheme.Name(), func(t *testing.T) {
			h := newHarness(t, scheme)
			rng := rand.New(rand.NewSource(6))
			pushed := 0
			writes := 0
			for now := uint64(0); now < 150000; now++ {
				if now%5 == 0 && !h.ctrl.Full() {
					w := rng.Intn(4) == 0
					h.push(rng.Intn(16), int64(rng.Intn(128)), uint64(rng.Intn(16)*128), w, !w)
					pushed++
					if w {
						writes++
					}
				}
				h.ctrl.Tick(now)
			}
			// Let the queue drain.
			for now := uint64(150000); h.ctrl.Pending() > 0 && now < 400000; now++ {
				h.ctrl.Tick(now)
			}
			if h.ctrl.Pending() != 0 {
				t.Fatalf("%d requests stuck in the queue", h.ctrl.Pending())
			}
			if len(h.done) != pushed {
				t.Fatalf("completions %d != pushes %d", len(h.done), pushed)
			}
			seen := map[uint64]bool{}
			drops := 0
			for _, c := range h.done {
				if seen[c.req.ID] {
					t.Fatalf("request %d completed twice", c.req.ID)
				}
				seen[c.req.ID] = true
				if c.approx {
					drops++
					if c.req.Write {
						t.Fatal("a write was dropped")
					}
				}
			}
			if int(h.st.Reads+h.st.Writes)+drops != pushed {
				t.Fatalf("columns %d + drops %d != pushed %d",
					h.st.Reads+h.st.Writes, drops, pushed)
			}
			if int(h.st.Writes) != writes {
				t.Fatalf("writes served %d, pushed %d", h.st.Writes, writes)
			}
			if int(h.st.Dropped) != drops {
				t.Fatalf("stats.Dropped %d != observed %d", h.st.Dropped, drops)
			}
		})
	}
}

// TestRBLHistogramConservation: served requests must equal the weighted RBL
// histogram sum after draining.
func TestRBLHistogramConservation(t *testing.T) {
	h := newHarness(t, mc.Baseline)
	rng := rand.New(rand.NewSource(7))
	for now := uint64(0); now < 100000; now++ {
		if now%6 == 0 && !h.ctrl.Full() {
			h.push(rng.Intn(16), int64(rng.Intn(64)), uint64(rng.Intn(16)*128), false, false)
		}
		h.ctrl.Tick(now)
	}
	for now := uint64(100000); h.ctrl.Pending() > 0 && now < 300000; now++ {
		h.ctrl.Tick(now)
	}
	h.ctrl.Drain()
	var weighted uint64
	for i := 1; i <= stats.MaxTrackedRBL; i++ {
		weighted += uint64(i) * h.st.RBL[i]
	}
	if weighted != h.st.Reads+h.st.Writes {
		t.Fatalf("RBL-weighted sum %d != served %d", weighted, h.st.Reads+h.st.Writes)
	}
	var acts uint64
	for i := 1; i <= stats.MaxTrackedRBL; i++ {
		acts += h.st.RBL[i]
	}
	if acts != h.st.Activations {
		t.Fatalf("histogram activations %d != counted %d", acts, h.st.Activations)
	}
}

func TestFig8Scenario(t *testing.T) {
	// The paper's Figure 8: AMS alone drops the oldest R1 (Avg-RBL 1.8 ->
	// 1.6); with DMS the scheduler sees all nine requests and drops R5
	// (Avg-RBL -> 2.0).
	run := func(delay int) (avgRBL float64, droppedRow int64) {
		st := &stats.Mem{}
		ch := dram.NewChannel(dram.DefaultConfig(), st)
		cfg := mc.DefaultConfig()
		cfg.Scheme = mc.Scheme{AMS: mc.Static, StaticThRBL: 1, CoverageTarget: 0.11}
		if delay > 0 {
			cfg.Scheme.DMS = mc.Static
			cfg.Scheme.StaticDelay = delay
		}
		droppedRow = -1
		ctrl := mc.New(cfg, ch, st, func(req *mc.Request, approx bool, at uint64) {
			if approx {
				droppedRow = req.Coord.Row
			}
		}, nil)
		am := dram.DefaultAddrMap()
		push := func(row int64) {
			c := dram.Coord{Channel: 0, Bank: 0, Row: row, Col: uint64(st.ReadReqs%16) * 128}
			ctrl.Push(am.Encode(c), false, true, c, nil)
		}
		for row := int64(1); row <= 5; row++ {
			push(row)
		}
		for now := uint64(0); now < 3000; now++ {
			if now == 20 {
				for row := int64(1); row <= 4; row++ {
					push(row)
				}
			}
			ctrl.Tick(now)
		}
		ctrl.Drain()
		return st.AvgRBL(), droppedRow
	}
	rbl, row := run(0)
	if row != 1 || rbl > 1.7 {
		t.Fatalf("AMS alone: dropped R%d with Avg-RBL %.2f, want R1 at 1.60", row, rbl)
	}
	rbl, row = run(64)
	if row != 5 || rbl < 1.99 {
		t.Fatalf("DMS+AMS: dropped R%d with Avg-RBL %.2f, want R5 at 2.00", row, rbl)
	}
}
