package mc

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"lazydram/internal/dram"
	"lazydram/internal/obs"
	"lazydram/internal/stats"
)

// TestCensusSpanEquivalence pins the span-based census to the per-cycle
// reference implementation (censusTickRef): two controllers driven with
// byte-identical stimulus — one evaluating the classification every cycle,
// one caching it behind validity horizons and stamps — must produce the
// same Census down to every histogram bucket, and the same completion
// latencies (the census must never perturb scheduling). The sweep crosses
// every scheme, every policy, and refresh on/off so each stall cause and
// residency state exercises its span-invalidation rules.
func TestCensusSpanEquivalence(t *testing.T) {
	schemes := []Scheme{
		Baseline, StaticDMS, DynDMS, StaticAMS, DynAMS, StaticBoth, DynBoth,
	}
	timings := []struct {
		name   string
		timing dram.Timing
	}{
		{"base", dram.HynixGDDR5()},
		{"refresh", dram.HynixGDDR5WithRefresh()},
	}
	policies := []Policy{FRFCFS, FCFS, FRFCFSClosedRow}
	for _, tm := range timings {
		for _, pol := range policies {
			for _, scheme := range schemes {
				for seed := int64(1); seed <= 3; seed++ {
					name := fmt.Sprintf("%s/%s/%s/seed%d", tm.name, pol, scheme.Name(), seed)
					want, wantLat := runCensusTrace(t, tm.timing, pol, scheme, seed, true)
					got, gotLat := runCensusTrace(t, tm.timing, pol, scheme, seed, false)
					if !reflect.DeepEqual(wantLat, gotLat) {
						t.Fatalf("%s: span census perturbed scheduling: %d vs %d completions",
							name, len(gotLat), len(wantLat))
					}
					if !reflect.DeepEqual(want, got) {
						t.Errorf("%s: span census diverges from per-cycle reference", name)
						t.Errorf("  ref:  stalls=%v residency=%v", want.Stall, want.Residency)
						t.Fatalf("  span: stalls=%v residency=%v", got.Stall, got.Residency)
					}
				}
			}
		}
	}
}

// runCensusTrace drives one controller with the deterministic traffic trace
// for seed and returns its census and completion latencies. ref selects the
// per-cycle reference census.
func runCensusTrace(t *testing.T, timing dram.Timing, pol Policy, scheme Scheme, seed int64, ref bool) (*obs.Census, []uint64) {
	t.Helper()
	dcfg := dram.DefaultConfig()
	dcfg.NumBanks = 8
	dcfg.Timing = timing
	var st stats.Mem
	ch := dram.NewChannel(dcfg, &st)
	var lat []uint64
	cfg := DefaultConfig()
	cfg.Policy = pol
	cfg.Scheme = scheme
	cfg.ProfileWindow = 512
	ctrl := New(cfg, ch, &st, func(r *Request, approx bool, readyAt uint64) {
		lat = append(lat, readyAt-r.Arrival)
	}, nil)
	ctrl.cenRef = ref
	cen := obs.NewCensus()
	ctrl.SetCensus(cen)
	rng := rand.New(rand.NewSource(seed))
	now := uint64(0)
	// Bursty arrivals: clustered same-row pushes mixed with scattered
	// traffic, writes, and approximable reads, with long quiet stretches so
	// open-idle/precharging/idle spans open and expire.
	for i := 0; i < 80; i++ {
		if !ctrl.Full() {
			coord := dram.Coord{
				Bank: rng.Intn(dcfg.NumBanks),
				Row:  int64(rng.Intn(6)),
				Col:  uint64(rng.Intn(16) * 128),
			}
			write := rng.Intn(6) == 0
			approxr := rng.Intn(2) == 0
			ctrl.Push(uint64(i)*128, write, approxr, coord, nil)
		}
		gap := rng.Intn(30)
		if rng.Intn(10) == 0 {
			gap += 400 // quiet stretch: drain fully, then sit idle
		}
		for k := gap; k >= 0; k-- {
			ctrl.Tick(now)
			now++
		}
	}
	for ctrl.Pending() > 0 {
		ctrl.Tick(now)
		now++
	}
	// A tail of empty ticks exercises the no-head residency spans (and, with
	// refresh enabled, whole refresh windows over an idle channel).
	for i := 0; i < 4000; i++ {
		ctrl.Tick(now)
		now++
	}
	ctrl.CensusFinish(now)
	if err := cen.CheckInvariants(); err != nil {
		t.Fatalf("seed %d ref=%v: %v", seed, ref, err)
	}
	return cen, lat
}
