package mc

import (
	"fmt"

	"lazydram/internal/dram"
	"lazydram/internal/fault"
	"lazydram/internal/obs"
	"lazydram/internal/stats"
)

// Mode selects a scheduling-unit variant.
type Mode uint8

// Unit modes.
const (
	Off Mode = iota
	Static
	Dyn
)

func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case Static:
		return "static"
	case Dyn:
		return "dyn"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Scheme configures the lazy scheduler: which DMS/AMS variants run and their
// parameters. The zero value is the plain FR-FCFS baseline.
type Scheme struct {
	DMS Mode
	// StaticDelay is the DMS(X) delay in memory cycles for Static DMS
	// (the paper uses 128).
	StaticDelay int
	AMS         Mode
	// StaticThRBL is the AMS(Th_RBL) threshold for Static AMS (paper: 8).
	StaticThRBL int
	// CoverageTarget is the user-defined prediction-coverage cap
	// (paper: 0.10).
	CoverageTarget float64
}

// Named schemes from the paper's evaluation (Figure 12).
var (
	Baseline   = Scheme{}
	StaticDMS  = Scheme{DMS: Static, StaticDelay: 128}
	DynDMS     = Scheme{DMS: Dyn, StaticDelay: 128}
	StaticAMS  = Scheme{AMS: Static, StaticThRBL: 8, CoverageTarget: 0.10}
	DynAMS     = Scheme{AMS: Dyn, StaticThRBL: 8, CoverageTarget: 0.10}
	StaticBoth = Scheme{DMS: Static, StaticDelay: 128, AMS: Static, StaticThRBL: 8, CoverageTarget: 0.10}
	DynBoth    = Scheme{DMS: Dyn, StaticDelay: 128, AMS: Dyn, StaticThRBL: 8, CoverageTarget: 0.10}
)

// Name returns the scheme's display name as used in the paper's figures.
func (s Scheme) Name() string {
	switch {
	case s.DMS == Off && s.AMS == Off:
		return "Baseline"
	case s.DMS == Static && s.AMS == Off:
		if s.StaticDelay != 128 {
			return fmt.Sprintf("DMS(%d)", s.StaticDelay)
		}
		return "Static-DMS"
	case s.DMS == Dyn && s.AMS == Off:
		return "Dyn-DMS"
	case s.DMS == Off && s.AMS == Static:
		if s.StaticThRBL != 8 {
			return fmt.Sprintf("AMS(%d)", s.StaticThRBL)
		}
		return "Static-AMS"
	case s.DMS == Off && s.AMS == Dyn:
		return "Dyn-AMS"
	case s.DMS == Static && s.AMS == Static:
		return "Static-DMS+Static-AMS"
	case s.DMS == Dyn && s.AMS == Dyn:
		return "Dyn-DMS+Dyn-AMS"
	default:
		return fmt.Sprintf("DMS=%v+AMS=%v", s.DMS, s.AMS)
	}
}

// Policy selects the first-order scheduling policy. The paper's baseline is
// FR-FCFS with an open-row policy; FCFS (no hit-first reordering) and
// closed-row variants are provided as comparison baselines for the paper's
// Section II-C discussion.
type Policy uint8

// Scheduling policies.
const (
	// FRFCFS: row hits first, then oldest; rows stay open (paper baseline).
	FRFCFS Policy = iota
	// FCFS: per-bank strict arrival order, open-row policy.
	FCFS
	// FRFCFSClosedRow: FR-FCFS, but a row is precharged as soon as it has no
	// pending requests.
	FRFCFSClosedRow
)

func (p Policy) String() string {
	switch p {
	case FRFCFS:
		return "FR-FCFS"
	case FCFS:
		return "FCFS"
	case FRFCFSClosedRow:
		return "FR-FCFS/closed-row"
	default:
		return "Policy(?)"
	}
}

// Config configures one memory controller.
type Config struct {
	// QueueSize is the pending-queue capacity (paper baseline: 128).
	QueueSize int
	// Policy is the first-order scheduling policy (default FRFCFS).
	Policy Policy
	// VPLatencyCycles is the memory-cycle latency of a value-predicted reply.
	VPLatencyCycles uint64
	// ProfileWindow is the Dyn-DMS/Dyn-AMS sampling window in memory cycles
	// (the paper uses PaperProfileWindow; the default is scaled to the
	// repository's scaled-down workloads).
	ProfileWindow uint64
	Scheme        Scheme
}

// DefaultConfig mirrors the paper's baseline controller.
func DefaultConfig() Config {
	return Config{QueueSize: 128, VPLatencyCycles: 2, ProfileWindow: DefaultProfileWindow}
}

// CompletionFunc receives finished requests. approx reports that the request
// was dropped by AMS and must be value-predicted; readyAt is the memory cycle
// the reply data is available at the controller.
type CompletionFunc func(req *Request, approx bool, readyAt uint64)

// VPReadyFunc reports whether the value-prediction unit is warmed up (the
// paper warms the L2 before enabling AMS).
type VPReadyFunc func() bool

// Controller is one memory channel's scheduler: pending queue + FR-FCFS +
// DMS/AMS units in front of a dram.Channel.
type Controller struct {
	cfg        Config
	ch         *dram.Channel
	st         *stats.Mem
	onComplete CompletionFunc
	vpReady    VPReadyFunc

	banks  []bankQ
	live   int // pending requests across banks
	nextID uint64
	dms    *dmsUnit
	ams    *amsUnit
	now    uint64
	tr     *obs.Tracer // nil unless request-lifecycle tracing is enabled

	aud   *obs.AuditLog // nil unless the decision audit is enabled
	audCh int           // channel tag stamped on audited decisions

	inj *fault.Injector // nil unless fault injection is enabled

	cen *obs.Census // nil unless the cycle census is enabled
	// cenBank is the bank a DRAM command issued to this cycle (-1 none); the
	// census pass uses it to classify that bank as serving.
	cenBank int
	// cenSpans holds each bank's open census span (allocated by SetCensus);
	// cenRefreshing/cenDelay are the refresh-window flag and DMS delay the
	// spans were classified under — a change in either re-classifies every
	// span, because refresh and the DMS age gate feed every classification.
	cenSpans []cenSpan
	// cenUntil holds each open span's expiry horizon (0 = no span open),
	// kept dense and separate from cenSpans so the censusPass expiry scan
	// reads two cache lines instead of one per span.
	cenUntil      []uint64
	cenRefreshing bool
	cenDelay      uint64
	// cenDirty is the set of banks whose open span must re-classify: every
	// queue mutation and command site marks the affected bank eagerly, and
	// column/ACT commands fold in cenColMask/cenActMask — the banks whose
	// span cause depends on the channel's bus state (a ready row-hit head
	// that lost arbitration) or tRRD spacing (a ready activate). Bank-local
	// causes carry their own expiry horizon instead; cenNextUntil is the
	// earliest horizon across all open spans. A cycle with no dirty bank, no
	// reached horizon, and unchanged refresh/delay flags provably extends
	// every span. Maintained unconditionally — an OR costs nothing.
	cenDirty   uint64
	cenColMask uint64
	cenActMask uint64
	// cenAllMask has one bit per bank; cenWide marks controllers with more
	// banks than mask bits, which fall back to the per-cycle reference
	// census.
	cenAllMask   uint64
	cenWide      bool
	cenNextUntil uint64
	// cenTicked is one past the last cycle settled into BankCycles (cenOpen
	// until the first pass); quiescent cycles are accounted in bulk when the
	// next pass — or CensusFinish — observes the gap.
	cenTicked uint64
	// cenRef switches censusTick to the per-cycle reference implementation;
	// only the span-equivalence test sets it.
	cenRef bool
	// activity counts controller progress events (pushes, issued commands,
	// drops); together with the refresh counter it lets the partition census
	// detect cycles where provably nothing changed. Maintained
	// unconditionally — a counter bump costs nothing and keeps the hot path
	// branch-free.
	activity uint64
}

// New creates a controller in front of ch. onComplete must be non-nil;
// vpReady may be nil when AMS is off (and is then treated as always-ready).
func New(cfg Config, ch *dram.Channel, st *stats.Mem, onComplete CompletionFunc, vpReady VPReadyFunc) *Controller {
	if cfg.QueueSize <= 0 {
		panic("mc: QueueSize must be positive")
	}
	c := &Controller{
		cfg:        cfg,
		ch:         ch,
		st:         st,
		onComplete: onComplete,
		vpReady:    vpReady,
		banks:      make([]bankQ, ch.NumBanks()),
		cenBank:    -1,
	}
	for i := range c.banks {
		c.banks[i].rows = make(map[int64]*rowQ)
	}
	if cfg.ProfileWindow == 0 {
		cfg.ProfileWindow = DefaultProfileWindow
		c.cfg.ProfileWindow = DefaultProfileWindow
	}
	if cfg.Scheme.DMS != Off {
		c.dms = newDMSUnit(cfg.Scheme, cfg.ProfileWindow)
	}
	if cfg.Scheme.AMS != Off {
		c.ams = newAMSUnit(cfg.Scheme, cfg.ProfileWindow, st)
	}
	return c
}

// SetTracer attaches a request-lifecycle tracer; the controller then records
// pending-queue wait and DRAM service latency per request. A nil tracer
// disables the hooks.
func (c *Controller) SetTracer(t *obs.Tracer) { c.tr = t }

// SetAudit attaches the scheduler decision log; channel tags the recorded
// decisions and adaptation points. A nil log disables the hooks.
func (c *Controller) SetAudit(a *obs.AuditLog, channel int) {
	c.aud = a
	c.audCh = channel
	if c.dms != nil {
		c.dms.aud = a
		c.dms.channel = channel
	}
	if c.ams != nil {
		c.ams.aud = a
		c.ams.channel = channel
	}
}

// SetFaults attaches the channel's fault injector; every subsequent RD is
// offered to it and the returned flips ride on the request for the fill path
// to apply. A nil injector disables the hook.
func (c *Controller) SetFaults(inj *fault.Injector) { c.inj = inj }

// SetCensus attaches the cycle census: the controller then charges every
// pending bank head's wait cycles to a stall cause, classifies every
// bank-cycle's residency state, and folds retired requests into the exact
// stall decomposition. A nil census disables the hooks.
func (c *Controller) SetCensus(cen *obs.Census) {
	c.cen = cen
	cen.EnsureBanks(len(c.banks))
	c.cenSpans = make([]cenSpan, len(c.banks))
	c.cenUntil = make([]uint64, len(c.banks))
	c.cenTicked = ^uint64(0)
	if n := len(c.banks); n > 64 {
		c.cenWide = true
	} else {
		c.cenAllMask = ^uint64(0) >> uint(64-n)
	}
}

// markCmd records that a DRAM command issued to bank b this cycle: b becomes
// the census's serving bank and is marked dirty so its open census span
// re-classifies against the new timing state. The issue sites that move
// channel-wide state (column bus, tRRD) additionally fold in the matching
// sensitivity mask.
func (c *Controller) markCmd(b int) {
	c.cenBank = b
	c.cenDirty |= 1 << uint(b)
	c.activity++
}

// Activity returns a counter that advances whenever the controller's
// architectural state changed: a request entered the queue, a DRAM command
// issued, an AMS drop happened, or a refresh window opened. Two equal
// readings bracket a cycle where the controller provably did nothing.
func (c *Controller) Activity() uint64 { return c.activity + c.st.Refreshes }

// coverage returns the running prediction coverage (dropped / reads).
func (c *Controller) coverage() float64 {
	if c.st.ReadReqs == 0 {
		return 0
	}
	return float64(c.st.Dropped) / float64(c.st.ReadReqs)
}

// visibleRBL returns the number of pending same-row requests visible for r.
func (c *Controller) visibleRBL(r *Request) int {
	if rq := c.banks[r.Coord.Bank].rows[r.Coord.Row]; rq != nil {
		return rq.pending
	}
	return 0
}

// audit records one scheduler decision for r together with the inputs in
// force when it was taken. Callers guard on c.aud != nil so the disabled
// path never builds the Decision.
func (c *Controller) audit(now uint64, r *Request, reason obs.Reason) {
	c.aud.Record(obs.Decision{
		Cycle:      now,
		Channel:    c.audCh,
		Bank:       r.Coord.Bank,
		Row:        r.Coord.Row,
		ReqID:      r.ID,
		Reason:     reason,
		VisibleRBL: c.visibleRBL(r),
		Delay:      c.Delay(),
		ThRBL:      c.ThRBL(),
		Coverage:   c.coverage(),
	})
}

// auditSampled audits a per-cycle repeat decision: the reason counter is
// bumped for every event, but full ring detail (with the map lookup and
// coverage math behind it) is recorded only on a deterministic 1-in-64
// subsample of the request's age. A bank held for a 2048-cycle delay, or an
// AMS candidate re-skipped every cycle, would otherwise flood the bounded
// ring with near-identical entries and put a ring write on the scheduler's
// per-cycle path.
func (c *Controller) auditSampled(now uint64, r *Request, reason obs.Reason) {
	if (now-r.Arrival)&63 == 0 {
		c.audit(now, r, reason)
		return
	}
	c.aud.Tally(reason)
}

// Full reports whether the pending queue cannot accept another request.
func (c *Controller) Full() bool { return c.live >= c.cfg.QueueSize }

// Pending returns the number of live requests in the pending queue.
func (c *Controller) Pending() int { return c.live }

// Push enqueues a request. It panics if the queue is full; callers gate on
// Full for backpressure.
func (c *Controller) Push(addr uint64, write, approximable bool, coord dram.Coord, meta any) *Request {
	if c.Full() {
		panic("mc: push to full pending queue")
	}
	c.nextID++
	r := &Request{
		ID:           c.nextID,
		Addr:         addr,
		Write:        write,
		Approximable: approximable && !write,
		Arrival:      c.now,
		Coord:        coord,
		Meta:         meta,
	}
	c.banks[coord.Bank].push(r)
	c.live++
	c.activity++
	if c.cen != nil {
		// A push appends a younger request, so it can change an open census
		// span's classification only by giving an empty (or fully-dropping)
		// bank a head, or by adding a pending hit to the bank's open row
		// (the conflict branch counts those). Younger arrivals behind a live
		// head leave both the head and every timing input untouched.
		if s := &c.cenSpans[coord.Bank]; c.cenUntil[coord.Bank] == 0 || s.head == nil ||
			coord.Row == c.ch.OpenRow(coord.Bank) {
			c.cenDirty |= 1 << uint(coord.Bank)
		}
	}
	if write {
		c.st.WriteReqs++
	} else {
		c.st.ReadReqs++
	}
	return r
}

// Delay returns the DMS delay currently in force, in memory cycles.
func (c *Controller) Delay() int {
	if c.dms == nil {
		return 0
	}
	return c.dms.delay
}

// ThRBL returns the AMS threshold currently in force (0 when AMS is off).
func (c *Controller) ThRBL() int {
	if c.ams == nil {
		return 0
	}
	return c.ams.thRBL
}

// Tick advances the controller by one memory cycle.
func (c *Controller) Tick(now uint64) {
	c.now = now
	c.st.Cycles = now + 1
	c.st.QueueOccSum += uint64(c.live)
	c.st.DelaySum += uint64(c.Delay())
	c.st.ThRBLSum += uint64(c.ThRBL())
	amsHalted := false
	if c.dms != nil {
		before := c.dms.delay
		amsHalted = c.dms.tick(now, c.st)
		if c.dms.delay != before {
			// A Dyn-DMS delay change moves every head's age gate: every open
			// census span re-classifies.
			c.cenDirty = c.cenAllMask
		}
	}
	if c.ams != nil {
		c.ams.tick(now)
		if !amsHalted {
			c.amsStep(now)
		}
	}
	// An all-bank refresh blocks the whole channel for the cycle; the census
	// pass still runs so refresh cycles are attributed, not lost.
	c.cenBank = -1
	refreshing := c.ch.Refreshing(now)
	if !refreshing {
		c.issue(now)
	}
	if c.cen != nil {
		c.censusTick(now, refreshing)
	}
}

// Drain flushes in-flight activation statistics; call at end of simulation.
func (c *Controller) Drain() { c.ch.Drain() }

// issue picks at most one DRAM command for this cycle, honouring the
// configured policy (FR-FCFS by default: row hits first, then oldest) and
// the DMS age gate on the row-miss path.
func (c *Controller) issue(now uint64) {
	if c.cfg.Policy == FRFCFSClosedRow && c.closeIdleRow(now) {
		return
	}
	if c.live == 0 {
		return
	}
	// First priority: the oldest issuable row-buffer hit. Under FCFS a
	// column access only counts when it is also the bank's oldest request
	// (no hit-first reordering).
	var hit *Request
	for b := range c.banks {
		bq := &c.banks[b]
		if bq.pending == 0 {
			continue
		}
		or := c.ch.OpenRow(b)
		if or == dram.NoRow {
			continue
		}
		rq := bq.rows[or]
		if rq == nil || rq.pending == 0 || rq.dropping {
			continue
		}
		r := rq.oldest()
		if r == nil {
			continue
		}
		if c.cfg.Policy == FCFS {
			if head := bq.oldest(); head == nil || head != r {
				continue
			}
		}
		ok := false
		if r.Write {
			ok = c.ch.CanWrite(b, now)
		} else {
			ok = c.ch.CanRead(b, now)
		}
		if ok && (hit == nil || r.Arrival < hit.Arrival) {
			hit = r
		}
	}
	if hit != nil {
		c.issueColumn(hit, now)
		return
	}

	// Row-miss path: per bank, the oldest pending request defines the next
	// row (FR-FCFS); DMS gates precharge/activate on its age.
	delay := uint64(c.Delay())
	type action struct {
		req *Request
		pre bool
	}
	var best action
	for b := range c.banks {
		bq := &c.banks[b]
		if bq.pending == 0 {
			continue
		}
		r := bq.oldest()
		if r == nil {
			continue
		}
		or := c.ch.OpenRow(b)
		if or == r.Coord.Row {
			// A hit exists but its timing is not ready; nothing to do.
			continue
		}
		if now-r.Arrival < delay {
			// DMS: let the request age in the queue; attribute the blocked
			// cycle to the bank so per-bank telemetry shows where DMS bites.
			// The audit counts one delay-hold decision per held bank per
			// cycle, so its total reconciles exactly with DMSDelayCycles.
			c.st.Bank(b).DMSDelayCycles++
			if c.aud != nil {
				c.auditSampled(now, r, obs.ReasonDMSDelayHold)
			}
			continue
		}
		var a action
		if or != dram.NoRow {
			// Open-row policy: only close the row once it has no pending
			// hits left. Under FCFS the bank head alone decides, so a miss
			// at the head precharges past younger would-be hits.
			if rq := bq.rows[or]; c.cfg.Policy != FCFS &&
				rq != nil && rq.pending > 0 && !rq.dropping {
				continue
			}
			if !c.ch.CanPrecharge(b, now) {
				continue
			}
			a = action{req: r, pre: true}
		} else {
			if !c.ch.CanActivate(b, now) {
				continue
			}
			a = action{req: r}
		}
		if best.req == nil || a.req.Arrival < best.req.Arrival {
			best = a
		}
	}
	switch {
	case best.req == nil:
	case best.pre:
		c.ch.Precharge(best.req.Coord.Bank, now)
		c.markCmd(best.req.Coord.Bank)
	default:
		c.ch.Activate(best.req.Coord.Bank, best.req.Coord.Row, now)
		c.markCmd(best.req.Coord.Bank)
		c.cenDirty |= c.cenActMask
		// Delay-budget expiry: the request aged past a non-zero in-force
		// delay and its row is now being opened (recorded once per
		// activation, not for the preceding precharge).
		if c.aud != nil && delay > 0 {
			c.audit(now, best.req, obs.ReasonDMSDelayExpired)
		}
	}
}

// closeIdleRow precharges one open row that has no pending requests (the
// closed-row policy); it reports whether a command was issued.
func (c *Controller) closeIdleRow(now uint64) bool {
	for b := range c.banks {
		or := c.ch.OpenRow(b)
		if or == dram.NoRow {
			continue
		}
		rq := c.banks[b].rows[or]
		if rq != nil && (rq.pending > 0 || rq.dropping) {
			continue
		}
		if c.ch.CanPrecharge(b, now) {
			c.ch.PrechargeIdle(b, now)
			c.markCmd(b)
			return true
		}
	}
	return false
}

func (c *Controller) issueColumn(r *Request, now uint64) {
	b := r.Coord.Bank
	var ready uint64
	if r.Write {
		ready = c.ch.Write(b, now)
	} else {
		// The injector classifies the burst from pre-RD bank state: the
		// activation's first access is exposed to reduced-tRCD sensing
		// errors, an over-aged open row to retention errors.
		if c.inj != nil {
			first := c.ch.ActServed(b) == 0
			r.Faults = c.inj.OnRead(b, r.Coord.Row, r.Coord.Col, first, c.ch.OpenAge(b, now))
		}
		ready = c.ch.Read(b, now)
	}
	c.tr.Observe(obs.StageMCQueue, now-r.Arrival)
	c.tr.Observe(obs.StageDRAM, ready-now)
	c.markCmd(b)
	c.cenDirty |= c.cenColMask
	if c.cen != nil {
		c.censusRetire(r, now, ready, false)
	}
	c.retire(r, ReqServed)
	c.onComplete(r, false, ready)
}

func (c *Controller) retire(r *Request, s ReqState) {
	r.state = s
	c.banks[r.Coord.Bank].retire(r)
	c.live--
	c.cenDirty |= 1 << uint(r.Coord.Bank)
}
