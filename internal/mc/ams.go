package mc

import (
	"lazydram/internal/obs"
	"lazydram/internal/stats"
)

// amsUnit implements Static-AMS and Dyn-AMS. The unit inspects the oldest
// pending request each memory cycle; when the request is an approximable
// global read whose visible row RBL is at most thRBL, the row has no pending
// writes or non-approximable requests, the row is not already open, and the
// running prediction coverage is below the target, the request's entire
// pending row is dropped (one request per cycle) and answered by the value
// predictor.
//
// Dyn-AMS modulates thRBL once per ProfileWindow: while the window's
// coverage meets the target it lowers thRBL toward MinThRBL so the limited
// coverage is spent on the lowest-RBL rows; when coverage falls short it
// raises thRBL back toward MaxThRBL (Section IV-C).
type amsUnit struct {
	mode           Mode
	window         uint64
	thRBL          int
	coverageTarget float64
	st             *stats.Mem

	winStart          uint64
	droppedAtWinStart uint64
	readsAtWinStart   uint64

	dropList []*Request
	dropBank int
	dropRow  int64

	aud     *obs.AuditLog // nil unless the decision audit is enabled
	channel int
}

func newAMSUnit(s Scheme, window uint64, st *stats.Mem) *amsUnit {
	th := s.StaticThRBL
	if th <= 0 {
		th = MaxThRBL
	}
	cov := s.CoverageTarget
	if cov <= 0 {
		cov = 0.10
	}
	return &amsUnit{mode: s.AMS, window: window, thRBL: th, coverageTarget: cov, st: st}
}

// tick runs the Dyn-AMS window profiling.
func (u *amsUnit) tick(now uint64) {
	if u.mode != Dyn {
		return
	}
	if now-u.winStart < u.window {
		return
	}
	u.windowEnd(now)
}

// windowEnd closes the profile window ending at now. The threshold is only
// adapted when the window saw reads, but the window start and baselines
// always advance so an idle (zero-read) window is retired once instead of
// being re-evaluated on every subsequent cycle.
func (u *amsUnit) windowEnd(now uint64) {
	reads := u.st.ReadReqs - u.readsAtWinStart
	dropped := u.st.Dropped - u.droppedAtWinStart
	var cov float64
	if reads > 0 {
		cov = float64(dropped) / float64(reads)
		// The running-coverage cap throttles drops to just below the target,
		// so windows where demand saturates land slightly under it; the
		// 0.95 factor keeps the cap interaction from masking saturation.
		if cov >= 0.95*u.coverageTarget {
			if u.thRBL > MinThRBL {
				u.thRBL--
			}
		} else if u.thRBL < MaxThRBL {
			u.thRBL++
		}
	}
	if u.aud != nil {
		u.aud.RecordAdapt(obs.AdaptPoint{
			Cycle:         now,
			Channel:       u.channel,
			Unit:          "ams",
			ThRBL:         u.thRBL,
			Coverage:      cov,
			WindowReads:   reads,
			WindowDropped: dropped,
		})
	}
	u.winStart = now
	u.readsAtWinStart = u.st.ReadReqs
	u.droppedAtWinStart = u.st.Dropped
}

// amsStep performs at most one drop per memory cycle (Section IV-C's
// "dropped sequentially in the following memory cycles").
func (c *Controller) amsStep(now uint64) {
	a := c.ams
	// Continue draining an in-progress row drop.
	if len(a.dropList) > 0 {
		r := a.dropList[0]
		a.dropList = a.dropList[1:]
		if r.state == ReqPending {
			c.dropReq(r, now)
		}
		if len(a.dropList) == 0 {
			a.finishRowDrop(c)
		}
		return
	}
	// Skip reasons below are audited only for genuine drop candidates
	// (approximable reads); refusing a write or a non-approximable read is
	// not an AMS decision.
	if c.vpReady != nil && !c.vpReady() {
		// L2 not warmed up; the VP unit cannot predict yet.
		if c.aud != nil {
			if req := c.oldestLive(); req != nil && !req.Write && req.Approximable {
				c.auditSampled(now, req, obs.ReasonAMSL2Cold)
			}
		}
		return
	}
	req := c.oldestLive()
	if req == nil || req.Write || !req.Approximable {
		return
	}
	if now-req.Arrival < uint64(c.Delay()) {
		// DMS delay criterion not yet satisfied.
		if c.aud != nil {
			c.auditSampled(now, req, obs.ReasonAMSDelayPending)
		}
		return
	}
	if c.st.ReadReqs == 0 ||
		float64(c.st.Dropped)/float64(c.st.ReadReqs) >= a.coverageTarget {
		// prediction-coverage budget exhausted
		if c.aud != nil {
			c.auditSampled(now, req, obs.ReasonAMSCoverageExhausted)
		}
		return
	}
	bq := &c.banks[req.Coord.Bank]
	rq := bq.rows[req.Coord.Row]
	if rq == nil {
		return
	}
	if rq.pendingWrites > 0 || rq.pendingNonApprox > 0 {
		if c.aud != nil {
			reason := obs.ReasonAMSPendingNonApprox
			if rq.pendingWrites > 0 {
				reason = obs.ReasonAMSPendingWrites
			}
			c.auditSampled(now, req, reason)
		}
		return
	}
	if c.ch.OpenRow(req.Coord.Bank) == req.Coord.Row {
		// row already open: serving these requests costs no activation
		if c.aud != nil {
			c.auditSampled(now, req, obs.ReasonAMSRowOpen)
		}
		return
	}
	if rq.pending > a.thRBL {
		// visible RBL too high; keep the coverage for lower-RBL rows
		if c.aud != nil {
			c.auditSampled(now, req, obs.ReasonAMSHighRBL)
		}
		return
	}
	// Drop the whole visible row, starting with the oldest request now.
	rq.dropping = true
	c.banks[req.Coord.Bank].version++
	c.cenDirty |= 1 << uint(req.Coord.Bank)
	a.dropBank = req.Coord.Bank
	a.dropRow = req.Coord.Row
	for _, r := range rq.reqs {
		if r.state == ReqPending && r != req {
			a.dropList = append(a.dropList, r)
		}
	}
	c.dropReq(req, now)
	if len(a.dropList) == 0 {
		a.finishRowDrop(c)
	}
}

func (a *amsUnit) finishRowDrop(c *Controller) {
	bq := &c.banks[a.dropBank]
	if rq := bq.rows[a.dropRow]; rq != nil {
		rq.dropping = false
		bq.version++
		c.cenDirty |= 1 << uint(a.dropBank)
		if rq.pending == 0 {
			delete(bq.rows, a.dropRow)
		}
	}
}

func (c *Controller) dropReq(r *Request, now uint64) {
	// Audited before the counters move so the Decision carries the coverage
	// that justified the drop; the drop count reconciles with st.Dropped.
	if c.aud != nil {
		c.audit(now, r, obs.ReasonAMSDrop)
	}
	c.tr.Observe(obs.StageVPDrop, now-r.Arrival)
	c.activity++
	if c.cen != nil {
		c.censusRetire(r, now, now+c.cfg.VPLatencyCycles, true)
	}
	c.retire(r, ReqDropped)
	c.st.Dropped++
	c.st.Bank(r.Coord.Bank).AMSDrops++
	c.onComplete(r, true, now+c.cfg.VPLatencyCycles)
}

// oldestLive returns the oldest pending request across all banks, skipping
// rows currently being drained by a row drop.
func (c *Controller) oldestLive() *Request {
	var best *Request
	for b := range c.banks {
		bq := &c.banks[b]
		if bq.pending == 0 {
			continue
		}
		r := bq.oldest()
		if r != nil && (best == nil || r.Arrival < best.Arrival) {
			best = r
		}
	}
	return best
}
