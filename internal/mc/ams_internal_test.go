package mc

import (
	"testing"

	"lazydram/internal/obs"
	"lazydram/internal/stats"
)

// TestDynAMSZeroReadWindow is the regression test for the Dyn-AMS window
// accounting: a profile window that saw zero reads must be retired exactly
// once — the window start and the read/drop baselines advance, the
// threshold is left alone, and subsequent mid-window ticks are no-ops —
// instead of being re-evaluated on every cycle after the boundary.
func TestDynAMSZeroReadWindow(t *testing.T) {
	st := &stats.Mem{Banks: make([]stats.Bank, 8)}
	u := newAMSUnit(Scheme{AMS: Dyn, StaticThRBL: 4, CoverageTarget: 0.1}, 1024, st)
	aud := obs.NewAuditLog(64)
	u.aud = aud

	// Mid-window tick: nothing happens.
	u.tick(512)
	if u.winStart != 0 || u.thRBL != 4 {
		t.Fatalf("mid-window tick mutated state: winStart=%d thRBL=%d", u.winStart, u.thRBL)
	}
	if len(aud.Adapt()) != 0 {
		t.Fatalf("mid-window tick recorded %d adapt points", len(aud.Adapt()))
	}

	// Window boundary with zero reads: baselines advance, thRBL untouched,
	// exactly one adapt point recorded.
	u.tick(1024)
	if u.winStart != 1024 {
		t.Errorf("zero-read window did not advance winStart: got %d, want 1024", u.winStart)
	}
	if u.thRBL != 4 {
		t.Errorf("zero-read window adapted thRBL: got %d, want 4", u.thRBL)
	}
	if got := len(aud.Adapt()); got != 1 {
		t.Fatalf("zero-read window recorded %d adapt points, want 1", got)
	}
	p := aud.Adapt()[0]
	if p.WindowReads != 0 || p.WindowDropped != 0 || p.Coverage != 0 {
		t.Errorf("zero-read adapt point: reads=%d dropped=%d cov=%g, want zeros",
			p.WindowReads, p.WindowDropped, p.Coverage)
	}

	// The cycle right after the boundary is mid-window again — the idle
	// window must not be re-evaluated.
	u.tick(1025)
	if got := len(aud.Adapt()); got != 1 {
		t.Fatalf("idle window re-evaluated: %d adapt points after post-boundary tick", got)
	}

	// A read-bearing window below target raises thRBL and its adapt point
	// reflects only that window's reads.
	st.ReadReqs = 500
	u.tick(2048)
	if u.thRBL != 5 {
		t.Errorf("under-target window: thRBL=%d, want 5", u.thRBL)
	}
	pts := aud.Adapt()
	if got := len(pts); got != 2 {
		t.Fatalf("read-bearing window recorded %d adapt points, want 2", got)
	}
	if pts[1].WindowReads != 500 || pts[1].ThRBL != 5 {
		t.Errorf("adapt point: reads=%d thRBL=%d, want 500/5", pts[1].WindowReads, pts[1].ThRBL)
	}

	// A window meeting the (0.95-discounted) coverage target lowers thRBL.
	st.ReadReqs = 1000
	st.Dropped = 50 // 50/500 = 0.10 >= 0.95*0.1 within the window
	u.tick(3072)
	if u.thRBL != 4 {
		t.Errorf("on-target window: thRBL=%d, want 4", u.thRBL)
	}
}
