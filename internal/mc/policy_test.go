package mc_test

import (
	"math/rand"
	"testing"

	"lazydram/internal/mc"
)

// runPolicy drives revisiting traffic through a controller with the given
// policy and returns (activations, served).
func runPolicy(policy mc.Policy, seed int64) (acts, served uint64) {
	h := newHarnessQ(mc.Baseline)
	// Rebuild with the policy (newHarnessQ uses the default config).
	h = newHarnessPolicy(policy)
	rng := rand.New(rand.NewSource(seed))
	for now := uint64(0); now < 60000; now++ {
		if now%10 == 0 && !h.ctrl.Full() {
			h.push(rng.Intn(8), int64(rng.Intn(8)), uint64(rng.Intn(16)*128), false, false)
		}
		h.ctrl.Tick(now)
	}
	h.ctrl.Drain()
	return h.st.Activations, h.st.Reads
}

func newHarnessPolicy(policy mc.Policy) *harness {
	h := &harness{vpWarm: true}
	h.st = newStats()
	ch := newDRAM(h.st)
	cfg := mc.DefaultConfig()
	cfg.Policy = policy
	h.am = defaultAddrMap()
	h.ctrl = mc.New(cfg, ch, h.st, func(r *mc.Request, approx bool, at uint64) {
		h.done = append(h.done, completion{req: r, approx: approx, at: at})
	}, nil)
	return h
}

func TestFRFCFSBeatsFCFSOnRowLocality(t *testing.T) {
	// The paper's Section II-C rationale: hit-first reordering plus open
	// rows yields fewer activations than strict arrival order.
	frActs, frServed := runPolicy(mc.FRFCFS, 5)
	fcActs, fcServed := runPolicy(mc.FCFS, 5)
	if frServed != fcServed {
		t.Fatalf("served mismatch: %d vs %d", frServed, fcServed)
	}
	if frActs >= fcActs {
		t.Fatalf("FR-FCFS activations %d >= FCFS %d", frActs, fcActs)
	}
}

func TestClosedRowActivatesMore(t *testing.T) {
	openActs, _ := runPolicy(mc.FRFCFS, 6)
	closedActs, _ := runPolicy(mc.FRFCFSClosedRow, 6)
	if closedActs <= openActs {
		t.Fatalf("closed-row activations %d <= open-row %d; closing idle rows must forfeit late hits",
			closedActs, openActs)
	}
}

func TestFCFSServesInArrivalOrderPerBank(t *testing.T) {
	h := newHarnessPolicy(mc.FCFS)
	// Same bank: row 1, row 2, row 1 again. FCFS must not reorder the third
	// request ahead of the second even though row 1 is open.
	h.push(0, 1, 0, false, false)
	h.push(0, 2, 0, false, false)
	h.push(0, 1, 128, false, false)
	h.run(0, 800)
	if len(h.done) != 3 {
		t.Fatalf("served %d, want 3", len(h.done))
	}
	rows := []int64{h.done[0].req.Coord.Row, h.done[1].req.Coord.Row, h.done[2].req.Coord.Row}
	if rows[0] != 1 || rows[1] != 2 || rows[2] != 1 {
		t.Fatalf("FCFS order %v, want [1 2 1]", rows)
	}
	if h.st.Activations != 3 {
		t.Fatalf("activations = %d, want 3 (no reordering)", h.st.Activations)
	}
}

func TestPolicyString(t *testing.T) {
	if mc.FRFCFS.String() != "FR-FCFS" || mc.FCFS.String() != "FCFS" ||
		mc.FRFCFSClosedRow.String() != "FR-FCFS/closed-row" {
		t.Fatal("policy names wrong")
	}
}
