package memimage_test

import (
	"math"
	"testing"
	"testing/quick"

	"lazydram/internal/memimage"
)

func TestAllocAlignment(t *testing.T) {
	im := memimage.New(1 << 20)
	a := im.Alloc(5)
	b := im.Alloc(1)
	if a%memimage.LineSize != 0 || b%memimage.LineSize != 0 {
		t.Fatalf("allocations not line aligned: %d, %d", a, b)
	}
	if b-a < memimage.LineSize {
		t.Fatal("allocations overlap")
	}
	if a == 0 {
		t.Fatal("address 0 must stay reserved")
	}
}

func TestAllocExhaustionPanics(t *testing.T) {
	im := memimage.New(512)
	defer func() {
		if recover() == nil {
			t.Fatal("over-allocation must panic")
		}
	}()
	im.Alloc(1 << 20)
}

func TestWord32RoundTrip(t *testing.T) {
	im := memimage.New(1 << 16)
	base := im.Alloc(1024)
	f := func(off uint16, v uint32) bool {
		addr := base + uint64(off%1000)
		im.Write32(addr, v)
		return im.Read32(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestF32RoundTrip(t *testing.T) {
	im := memimage.New(1 << 16)
	base := im.Alloc(64)
	values := []float32{0, 1.5, -3.25, float32(math.Inf(1)), 1e-38}
	for i, v := range values {
		im.WriteF32(base+uint64(4*i), v)
	}
	for i, v := range values {
		if got := im.ReadF32(base + uint64(4*i)); got != v {
			t.Fatalf("ReadF32[%d] = %v, want %v", i, got, v)
		}
	}
}

func TestF32SliceRoundTrip(t *testing.T) {
	im := memimage.New(1 << 16)
	base := im.Alloc(1024)
	want := []float32{1, 2, 3, 4.5, -6}
	im.WriteF32Slice(base, want)
	got := im.ReadF32Slice(base, len(want))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slice[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLineRoundTripAndAlignment(t *testing.T) {
	im := memimage.New(1 << 16)
	base := im.Alloc(512)
	src := make([]byte, memimage.LineSize)
	for i := range src {
		src[i] = byte(i)
	}
	im.WriteLine(base+64, src) // unaligned address targets its whole line
	dst := make([]byte, memimage.LineSize)
	im.ReadLine(base+127, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("line byte %d = %d, want %d", i, dst[i], src[i])
		}
	}
}

func TestSizeRoundsUpToLineMultiple(t *testing.T) {
	im := memimage.New(100)
	if im.Size()%memimage.LineSize != 0 {
		t.Fatalf("Size %d not a line multiple", im.Size())
	}
}
