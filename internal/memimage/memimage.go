// Package memimage provides the simulated global (DRAM) memory image and a
// bump allocator for workload buffers.
//
// The image is the functional ground truth of the simulation: DRAM reads are
// served from it and dirty L2 write-backs are applied to it. Approximated
// (value-predicted) data never reaches the image; it only lives in caches and
// in warp registers, mirroring the paper's value-prediction unit which
// operates on the reply path.
package memimage

import (
	"encoding/binary"
	"fmt"
	"math"
)

// LineSize is the cache-line (and DRAM access) granularity in bytes.
const LineSize = 128

// Image is a flat simulated physical address space.
//
// The zero value is not usable; create one with New.
type Image struct {
	data []byte
	brk  uint64
}

// New creates an image of the given capacity in bytes, rounded up to a
// multiple of LineSize.
func New(capacity uint64) *Image {
	capacity = (capacity + LineSize - 1) / LineSize * LineSize
	return &Image{
		data: make([]byte, capacity),
		// Leave line 0 unused so that address 0 can mean "no address".
		brk: LineSize,
	}
}

// Size returns the capacity of the image in bytes.
func (im *Image) Size() uint64 { return uint64(len(im.data)) }

// Alloc reserves size bytes aligned to LineSize and returns the base address.
// It panics if the image is exhausted; workloads size their images up front.
func (im *Image) Alloc(size uint64) uint64 {
	base := im.brk
	size = (size + LineSize - 1) / LineSize * LineSize
	if base+size > uint64(len(im.data)) {
		panic(fmt.Sprintf("memimage: out of memory: need %d at %d, capacity %d",
			size, base, len(im.data)))
	}
	im.brk += size
	return base
}

// ReadLine copies the 128-byte line containing addr into dst.
func (im *Image) ReadLine(addr uint64, dst []byte) {
	base := addr &^ uint64(LineSize-1)
	copy(dst[:LineSize], im.data[base:base+LineSize])
}

// WriteLine stores a full 128-byte line at the line containing addr.
func (im *Image) WriteLine(addr uint64, src []byte) {
	base := addr &^ uint64(LineSize-1)
	copy(im.data[base:base+LineSize], src[:LineSize])
}

// Read32 returns the little-endian 32-bit word at addr.
func (im *Image) Read32(addr uint64) uint32 {
	return binary.LittleEndian.Uint32(im.data[addr:])
}

// Write32 stores a little-endian 32-bit word at addr.
func (im *Image) Write32(addr uint64, v uint32) {
	binary.LittleEndian.PutUint32(im.data[addr:], v)
}

// ReadF32 returns the float32 stored at addr.
func (im *Image) ReadF32(addr uint64) float32 {
	return math.Float32frombits(im.Read32(addr))
}

// WriteF32 stores a float32 at addr.
func (im *Image) WriteF32(addr uint64, v float32) {
	im.Write32(addr, math.Float32bits(v))
}

// ReadF32Slice copies n float32 values starting at addr into a new slice.
func (im *Image) ReadF32Slice(addr uint64, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = im.ReadF32(addr + uint64(4*i))
	}
	return out
}

// WriteF32Slice stores the values consecutively starting at addr.
func (im *Image) WriteF32Slice(addr uint64, vals []float32) {
	for i, v := range vals {
		im.WriteF32(addr+uint64(4*i), v)
	}
}
