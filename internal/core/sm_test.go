package core_test

import (
	"encoding/binary"
	"iter"
	"testing"

	"lazydram/internal/cache"
	"lazydram/internal/core"
)

// fakeMem services SM transactions instantly-ish: requests accepted by send
// are answered after a fixed latency with bytes derived from the address.
type fakeMem struct {
	latency  uint64
	inFlight []pendingReq
	accepted int
	stores   map[uint64]uint32 // word addr -> value
}

type pendingReq struct {
	req *core.MemReq
	at  uint64
}

func newFakeMem(latency uint64) *fakeMem {
	return &fakeMem{latency: latency, stores: map[uint64]uint32{}}
}

// wordAt defines the fake memory contents: word value = low 32 bits of addr.
func wordAt(addr uint64) uint32 { return uint32(addr) }

func (f *fakeMem) send(now uint64) func(*core.MemReq) bool {
	return func(r *core.MemReq) bool {
		f.accepted++
		if r.Load {
			f.inFlight = append(f.inFlight, pendingReq{req: r, at: now + f.latency})
		} else {
			for _, s := range r.Stores {
				f.stores[s.Addr] = uint32(s.Val)
			}
		}
		return true
	}
}

// deliver hands due replies to the SM.
func (f *fakeMem) deliver(sm *core.SM, now uint64) {
	rest := f.inFlight[:0]
	for _, p := range f.inFlight {
		if p.at > now {
			rest = append(rest, p)
			continue
		}
		rep := &core.MemReply{Req: p.req}
		for off := uint64(0); off < cache.LineSize; off += 4 {
			binary.LittleEndian.PutUint32(rep.Data[off:], wordAt(p.req.LineAddr+off))
		}
		sm.HandleReply(rep, now)
	}
	f.inFlight = rest
}

// runSM drives the SM to completion and returns the cycles taken.
func runSM(t *testing.T, sm *core.SM, mem *fakeMem, limit uint64) uint64 {
	t.Helper()
	for now := uint64(0); now < limit; now++ {
		mem.deliver(sm, now)
		sm.Tick(now, mem.send(now))
		if sm.Done() {
			return now
		}
	}
	t.Fatal("SM did not finish")
	return 0
}

func smConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.MaxResidentWarps = 8
	return cfg
}

func TestLoadDeliversValues(t *testing.T) {
	var got [core.WarpSize]uint32
	prog := func(warpID int, ctx *core.Ctx) iter.Seq[core.Op] {
		return func(yield func(core.Op) bool) {
			if !yield(ctx.LoadSeq32(0, 4096, 0, core.WarpSize)) {
				return
			}
			for l := 0; l < core.WarpSize; l++ {
				got[l] = ctx.U32(0, l)
			}
		}
	}
	mem := newFakeMem(20)
	sm := core.NewSM(0, smConfig(), prog, []int{0})
	runSM(t, sm, mem, 10000)
	for l := 0; l < core.WarpSize; l++ {
		if want := wordAt(4096 + uint64(4*l)); got[l] != want {
			t.Fatalf("lane %d = %#x, want %#x", l, got[l], want)
		}
	}
}

func TestCoalescingSequentialIsOneTransaction(t *testing.T) {
	prog := func(warpID int, ctx *core.Ctx) iter.Seq[core.Op] {
		return func(yield func(core.Op) bool) {
			yield(ctx.LoadSeq32(0, 4096, 0, core.WarpSize))
		}
	}
	mem := newFakeMem(5)
	sm := core.NewSM(0, smConfig(), prog, []int{0})
	runSM(t, sm, mem, 10000)
	if mem.accepted != 1 {
		t.Fatalf("sequential 32-lane load produced %d transactions, want 1", mem.accepted)
	}
}

func TestCoalescingStridedIsManyTransactions(t *testing.T) {
	prog := func(warpID int, ctx *core.Ctx) iter.Seq[core.Op] {
		return func(yield func(core.Op) bool) {
			yield(ctx.LoadStride32(0, 4096, 0, 64, core.WarpSize)) // 256 B apart
		}
	}
	mem := newFakeMem(5)
	sm := core.NewSM(0, smConfig(), prog, []int{0})
	runSM(t, sm, mem, 20000)
	if mem.accepted != core.WarpSize {
		t.Fatalf("strided load produced %d transactions, want %d", mem.accepted, core.WarpSize)
	}
}

func TestL1AbsorbsRepeatedLoads(t *testing.T) {
	prog := func(warpID int, ctx *core.Ctx) iter.Seq[core.Op] {
		return func(yield func(core.Op) bool) {
			for i := 0; i < 5; i++ {
				if !yield(ctx.LoadSeq32(0, 4096, 0, core.WarpSize)) {
					return
				}
			}
		}
	}
	mem := newFakeMem(5)
	sm := core.NewSM(0, smConfig(), prog, []int{0})
	runSM(t, sm, mem, 20000)
	if mem.accepted != 1 {
		t.Fatalf("%d transactions for 5 repeated loads, want 1 (L1 hit path)", mem.accepted)
	}
	st := sm.L1Stats()
	if st.Misses != 1 || st.Accesses != 5 {
		t.Fatalf("L1 stats = %+v, want 5 accesses / 1 miss", st)
	}
}

func TestMSHRMergesSameLineAcrossWarps(t *testing.T) {
	prog := func(warpID int, ctx *core.Ctx) iter.Seq[core.Op] {
		return func(yield func(core.Op) bool) {
			yield(ctx.LoadSeq32(0, 4096, 0, core.WarpSize))
		}
	}
	mem := newFakeMem(500) // long latency so both warps miss before the fill
	sm := core.NewSM(0, smConfig(), prog, []int{0, 1})
	runSM(t, sm, mem, 20000)
	if mem.accepted != 1 {
		t.Fatalf("%d transactions, want 1 (inter-warp merge)", mem.accepted)
	}
}

func TestStoresReachMemory(t *testing.T) {
	prog := func(warpID int, ctx *core.Ctx) iter.Seq[core.Op] {
		return func(yield func(core.Op) bool) {
			vals := make([]float32, core.WarpSize)
			for i := range vals {
				vals[i] = float32(i)
			}
			yield(ctx.StoreSeqF32(4096, 0, vals, core.WarpSize))
		}
	}
	mem := newFakeMem(5)
	sm := core.NewSM(0, smConfig(), prog, []int{0})
	runSM(t, sm, mem, 10000)
	if len(mem.stores) != core.WarpSize {
		t.Fatalf("%d words stored, want %d", len(mem.stores), core.WarpSize)
	}
	if mem.stores[4096+4*7] != 0x40E00000 { // float32(7)
		t.Fatalf("stored word = %#x, want float bits of 7", mem.stores[4096+4*7])
	}
}

func TestAsyncLoadsOverlap(t *testing.T) {
	// Two dependent-free loads issued async must overlap their latencies:
	// the run finishes in roughly one latency, not two.
	mk := func(async bool) uint64 {
		prog := func(warpID int, ctx *core.Ctx) iter.Seq[core.Op] {
			return func(yield func(core.Op) bool) {
				a := ctx.LoadSeq32(0, 4096, 0, core.WarpSize)
				b := ctx.LoadSeq32(1, 1<<20, 0, core.WarpSize)
				if async {
					if !yield(ctx.Async(a)) || !yield(ctx.Async(b)) || !yield(ctx.Join()) {
						return
					}
				} else {
					if !yield(a) || !yield(b) {
						return
					}
				}
			}
		}
		mem := newFakeMem(400)
		sm := core.NewSM(0, smConfig(), prog, []int{0})
		return runSM(t, sm, mem, 30000)
	}
	sync := mk(false)
	async := mk(true)
	if async >= sync {
		t.Fatalf("async (%d cycles) not faster than sync (%d)", async, sync)
	}
	if async > 600 {
		t.Fatalf("async run took %d cycles; loads did not overlap a 400-cycle latency", async)
	}
}

func TestJoinBlocksUntilDelivery(t *testing.T) {
	var sawValue uint32
	prog := func(warpID int, ctx *core.Ctx) iter.Seq[core.Op] {
		return func(yield func(core.Op) bool) {
			if !yield(ctx.Async(ctx.LoadSeq32(0, 4096, 0, core.WarpSize))) {
				return
			}
			if !yield(ctx.Join()) {
				return
			}
			sawValue = ctx.U32(0, 0)
		}
	}
	mem := newFakeMem(300)
	sm := core.NewSM(0, smConfig(), prog, []int{0})
	runSM(t, sm, mem, 20000)
	if sawValue != wordAt(4096) {
		t.Fatalf("value after join = %#x, want %#x", sawValue, wordAt(4096))
	}
}

func TestLatencyHidingAcrossWarps(t *testing.T) {
	// One warp serializes on a 300-cycle memory; eight warps overlap their
	// misses and finish far sooner than 8x the single-warp time.
	mk := func(warps int) uint64 {
		prog := func(warpID int, ctx *core.Ctx) iter.Seq[core.Op] {
			return func(yield func(core.Op) bool) {
				for i := 0; i < 4; i++ {
					// Distinct lines per warp and iteration: all misses.
					addr := uint64(1<<16) + uint64(warpID)*4096 + uint64(i)*128
					if !yield(ctx.LoadSeq32(0, addr, 0, core.WarpSize)) {
						return
					}
				}
			}
		}
		ids := make([]int, warps)
		for i := range ids {
			ids[i] = i
		}
		mem := newFakeMem(300)
		sm := core.NewSM(0, smConfig(), prog, ids)
		return runSM(t, sm, mem, 100000)
	}
	one := mk(1)
	eight := mk(8)
	if eight > 2*one {
		t.Fatalf("8 warps took %d cycles vs %d for one; latency not hidden", eight, one)
	}
}

func TestWarpReplacementRunsFullGrid(t *testing.T) {
	ran := make([]bool, 30)
	prog := func(warpID int, ctx *core.Ctx) iter.Seq[core.Op] {
		return func(yield func(core.Op) bool) {
			ran[warpID] = true
			yield(ctx.Compute(3))
		}
	}
	ids := make([]int, 30)
	for i := range ids {
		ids[i] = i
	}
	cfg := smConfig() // 8 resident slots for 30 warps
	mem := newFakeMem(5)
	sm := core.NewSM(0, cfg, prog, ids)
	runSM(t, sm, mem, 10000)
	for i, ok := range ran {
		if !ok {
			t.Fatalf("warp %d never ran", i)
		}
	}
	if got := sm.Insts(); got != 30 {
		t.Fatalf("Insts = %d, want 30", got)
	}
}

func TestInstructionCounting(t *testing.T) {
	prog := func(warpID int, ctx *core.Ctx) iter.Seq[core.Op] {
		return func(yield func(core.Op) bool) {
			if !yield(ctx.Compute(2)) {
				return
			}
			if !yield(ctx.LoadSeq32(0, 4096, 0, 4)) {
				return
			}
			vals := []float32{1, 2, 3, 4}
			yield(ctx.StoreSeqF32(8192, 0, vals, 4))
		}
	}
	mem := newFakeMem(5)
	sm := core.NewSM(0, smConfig(), prog, []int{0})
	runSM(t, sm, mem, 10000)
	if got := sm.Insts(); got != 3 {
		t.Fatalf("Insts = %d, want 3", got)
	}
}

func TestShutdownReleasesWarps(t *testing.T) {
	prog := func(warpID int, ctx *core.Ctx) iter.Seq[core.Op] {
		return func(yield func(core.Op) bool) {
			for {
				if !yield(ctx.Compute(1)) {
					return
				}
			}
		}
	}
	sm := core.NewSM(0, smConfig(), prog, []int{0, 1})
	mem := newFakeMem(5)
	sm.Tick(0, mem.send(0))
	sm.Shutdown() // must not deadlock or leak coroutines
	if sm.Done() != true {
		// After shutdown all warps are finished; Done also needs empty
		// queues, which hold here.
		t.Fatal("SM not done after Shutdown")
	}
}

func TestPartialWarpMasksInactiveLanes(t *testing.T) {
	var got uint32 = 0xFFFFFFFF
	prog := func(warpID int, ctx *core.Ctx) iter.Seq[core.Op] {
		return func(yield func(core.Op) bool) {
			if !yield(ctx.LoadSeq32(0, 4096, 0, 3)) { // 3 active lanes
				return
			}
			got = ctx.U32(0, 2)
		}
	}
	mem := newFakeMem(5)
	sm := core.NewSM(0, smConfig(), prog, []int{0})
	runSM(t, sm, mem, 10000)
	if got != wordAt(4096+8) {
		t.Fatalf("lane 2 = %#x, want %#x", got, wordAt(4096+8))
	}
}
