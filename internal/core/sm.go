package core

import (
	"encoding/binary"
	"iter"

	"lazydram/internal/cache"
)

// Program generates the instruction stream of one warp. The sequence is
// pulled lazily: the simulator resumes it only after the previously yielded
// instruction completed, so the program may read registers written by the
// preceding load.
type Program func(warpID int, ctx *Ctx) iter.Seq[Op]

// MemReq is a coalesced 128-byte line transaction leaving an SM toward a
// memory partition.
type MemReq struct {
	SM       int
	LineAddr uint64
	Load     bool
	// Stores carries the word writes of a store transaction.
	Stores []cache.PendingStore
	// IssuedAt is the core cycle the transaction entered the SM's outbox;
	// the observability layer uses it to measure end-to-end and
	// interconnect latency.
	IssuedAt uint64
}

// MemReply answers a load MemReq with the line's bytes. Approx marks data
// synthesized by the value-prediction unit for an AMS-dropped request.
type MemReply struct {
	Req    *MemReq
	Data   [cache.LineSize]byte
	Approx bool
	// SentAt is the core cycle the reply entered the reply network; used by
	// the observability layer to measure reply-interconnect latency.
	SentAt uint64
}

// Config sizes one SM.
type Config struct {
	MaxResidentWarps int
	Schedulers       int
	L1               cache.Config
	L1MSHREntries    int
	L1MSHRTargets    int
	// L1HitLatency is the core-cycle latency of a load serviced by the L1
	// (also applied as the return latency after the last miss reply).
	L1HitLatency uint64
	// OutboxDepth bounds the SM-to-interconnect staging queue.
	OutboxDepth int
}

// DefaultConfig mirrors Table I's per-core resources.
func DefaultConfig() Config {
	return Config{
		MaxResidentWarps: 48,
		Schedulers:       2,
		L1:               cache.Config{SizeBytes: 16 * 1024, Ways: 4},
		L1MSHREntries:    64,
		L1MSHRTargets:    8,
		L1HitLatency:     24,
		OutboxDepth:      16,
	}
}

// warp is one resident warp slot.
type warp struct {
	id       int
	slot     int32
	ctx      *Ctx
	next     func() (Op, bool)
	stop     func()
	readyAt  uint64
	blocked  bool
	hasOp    bool
	cur      Op
	finished bool
	// asyncOps counts in-flight asynchronous loads; joinWaiting marks a warp
	// blocked at an OpJoin until that count drains.
	asyncOps    int
	joinWaiting bool
}

// memOp is a memory instruction being processed by the load/store unit.
type memOp struct {
	w           *warp
	kind        OpKind
	dst         uint8
	lanes       *LaneSet
	lines       [WarpSize]uint64 // unique line addresses, in lane order
	numLines    int
	nextLine    int
	outstanding int
	async       bool
	pooled      bool // guards double-release
}

// wheelSize is the wake-wheel horizon in cycles; no instruction may sleep a
// warp longer than this.
const wheelSize = 1024

// SM is one streaming multiprocessor.
type SM struct {
	id   int
	cfg  Config
	l1   *cache.Cache
	mshr *cache.MSHR

	prog     Program
	warpIDs  []int
	nextSeed int
	warps    []*warp

	// runnable is the FIFO of warp slots eligible to issue (loose round
	// robin); wheel wakes sleeping warps at their readyAt cycle.
	runnable []int32
	wheel    [wheelSize][]int32

	lsu      *memOp
	lsuQueue []int32 // warps parked with a decoded memory instruction
	opPool   []*memOp
	outbox   []*MemReq

	outstanding int // load transactions in flight past the L1

	insts uint64
}

// NewSM creates an SM that will run the given warp IDs through prog.
func NewSM(id int, cfg Config, prog Program, warpIDs []int) *SM {
	s := &SM{
		id:      id,
		cfg:     cfg,
		l1:      cache.New(cfg.L1),
		mshr:    cache.NewMSHR(cfg.L1MSHREntries, cfg.L1MSHRTargets),
		prog:    prog,
		warpIDs: warpIDs,
	}
	for len(s.warps) < cfg.MaxResidentWarps && s.nextSeed < len(warpIDs) {
		w := s.launch()
		w.slot = int32(len(s.warps))
		s.warps = append(s.warps, w)
		s.runnable = append(s.runnable, w.slot)
	}
	return s
}

// sleep schedules the warp to re-enter the runnable queue at its readyAt
// cycle via the wake wheel.
func (s *SM) sleep(w *warp, now uint64) {
	if w.readyAt <= now {
		s.runnable = append(s.runnable, w.slot)
		return
	}
	delta := w.readyAt - now
	if delta >= wheelSize {
		panic("core: instruction latency exceeds wake-wheel horizon")
	}
	slot := w.readyAt % wheelSize
	s.wheel[slot] = append(s.wheel[slot], w.slot)
}

// wake moves warps whose readyAt cycle arrived into the runnable queue.
func (s *SM) wake(now uint64) {
	slot := now % wheelSize
	if len(s.wheel[slot]) == 0 {
		return
	}
	s.runnable = append(s.runnable, s.wheel[slot]...)
	s.wheel[slot] = s.wheel[slot][:0]
}

func (s *SM) launch() *warp {
	id := s.warpIDs[s.nextSeed]
	s.nextSeed++
	ctx := &Ctx{}
	next, stop := iter.Pull(s.prog(id, ctx))
	return &warp{id: id, ctx: ctx, next: next, stop: stop}
}

// Insts returns the number of warp instructions issued.
func (s *SM) Insts() uint64 { return s.insts }

// L1Stats returns the L1 cache counters.
func (s *SM) L1Stats() cache.Stats { return s.l1.Stats() }

// Done reports whether the SM has retired all its warps and drained all
// in-flight memory traffic.
func (s *SM) Done() bool {
	if s.nextSeed < len(s.warpIDs) || s.lsu != nil || len(s.lsuQueue) > 0 ||
		len(s.outbox) > 0 || s.outstanding > 0 {
		return false
	}
	for _, w := range s.warps {
		if !w.finished {
			return false
		}
	}
	return true
}

// Shutdown releases the coroutines of unfinished warp programs. Call when a
// run is aborted before completion.
func (s *SM) Shutdown() {
	for _, w := range s.warps {
		if !w.finished {
			w.finished = true
			w.stop()
		}
	}
}

// Tick advances the SM by one core cycle. send pushes a transaction into the
// request network and reports acceptance.
func (s *SM) Tick(now uint64, send func(*MemReq) bool) {
	if len(s.outbox) > 0 && send(s.outbox[0]) {
		s.outbox = s.outbox[1:]
	}
	s.wake(now)
	s.lsuTick(now)
	s.issue(now)
}

func (s *SM) issue(now uint64) {
	issued := 0
	// Pop at most the warps that were runnable on entry: warps re-queued on
	// a structural hazard (LSU busy) retry next cycle, not this one.
	for n := len(s.runnable); n > 0 && issued < s.cfg.Schedulers; n-- {
		slot := s.runnable[0]
		s.runnable = s.runnable[1:]
		w := s.warps[slot]
		if w.finished {
			continue
		}
		if !w.hasOp {
			op, ok := w.next()
			if !ok {
				w.finished = true
				w.stop()
				if s.nextSeed < len(s.warpIDs) {
					nw := s.launch()
					nw.slot = slot
					s.warps[slot] = nw
					s.runnable = append(s.runnable, slot)
				}
				continue
			}
			w.cur = op
			w.hasOp = true
		}
		switch w.cur.Kind {
		case OpCompute:
			w.readyAt = now + uint64(w.cur.Cycles)
			w.hasOp = false
			s.insts++
			issued++
			s.sleep(w, now)
		case OpJoin:
			s.insts++
			issued++
			if w.asyncOps == 0 {
				w.readyAt = now + 1
				w.hasOp = false
				s.sleep(w, now)
			} else {
				w.joinWaiting = true
				w.blocked = true
				w.hasOp = false
			}
		case OpLoad, OpStore:
			if s.lsu != nil || len(s.lsuQueue) > 0 {
				// Park at the LSU: the warp leaves the runnable queue and is
				// installed directly when the LSU frees, keeping its order.
				s.lsuQueue = append(s.lsuQueue, slot)
				continue
			}
			s.installMemOp(w)
			issued++
		}
	}
}

// installMemOp coalesces the lane addresses of w's current memory
// instruction into unique line transactions and occupies the LSU with it.
func (s *SM) installMemOp(w *warp) {
	var op *memOp
	if n := len(s.opPool); n > 0 {
		op = s.opPool[n-1]
		s.opPool = s.opPool[:n-1]
		*op = memOp{}
	} else {
		op = &memOp{}
	}
	op.w = w
	op.kind = w.cur.Kind
	op.dst = w.cur.Dst
	op.async = w.cur.Async && w.cur.Kind == OpLoad
	op.lanes = w.cur.Lanes
	if op.async {
		w.asyncOps++
	}
	for l := 0; l < WarpSize; l++ {
		if op.lanes.Active&(1<<uint(l)) == 0 {
			continue
		}
		line := lineOf(op.lanes.Addrs[l])
		seen := false
		for i := 0; i < op.numLines; i++ {
			if op.lines[i] == line {
				seen = true
				break
			}
		}
		if !seen {
			op.lines[op.numLines] = line
			op.numLines++
		}
	}
	s.lsu = op
	w.blocked = true
	w.hasOp = false
	s.insts++
}

// releaseOp returns a fully completed memOp to the pool.
func (s *SM) releaseOp(op *memOp) {
	if op.pooled {
		return
	}
	op.pooled = true
	op.lanes = nil
	s.opPool = append(s.opPool, op)
}

// lsuTick processes at most one line transaction of the current memory op,
// installing the next parked memory instruction when the unit frees up.
func (s *SM) lsuTick(now uint64) {
	if s.lsu == nil && len(s.lsuQueue) > 0 {
		slot := s.lsuQueue[0]
		s.lsuQueue = s.lsuQueue[1:]
		s.installMemOp(s.warps[slot])
	}
	op := s.lsu
	if op == nil {
		return
	}
	if op.nextLine < op.numLines {
		line := op.lines[op.nextLine]
		if op.kind == OpLoad {
			if !s.lsuLoadLine(op, line, now) {
				return // structural stall; retry next cycle
			}
		} else if !s.lsuStoreLine(op, line, now) {
			return
		}
		op.nextLine++
	}
	if op.nextLine >= op.numLines {
		s.lsu = nil
		switch {
		case op.async:
			// Non-blocking load: the warp resumes as soon as the
			// transactions are issued; data synchronizes at the next join.
			op.w.blocked = false
			if at := now + 1; at > op.w.readyAt {
				op.w.readyAt = at
			}
			s.sleep(op.w, now)
			if op.outstanding == 0 {
				s.finishAsync(op, now)
			}
		case op.kind == OpStore || op.outstanding == 0:
			s.completeOp(op, now)
			s.releaseOp(op)
		}
	}
}

// finishAsync retires a completed asynchronous load, releasing a warp parked
// at a join once its last async load delivers.
func (s *SM) finishAsync(op *memOp, now uint64) {
	w := op.w
	w.asyncOps--
	if w.joinWaiting && w.asyncOps == 0 {
		w.joinWaiting = false
		w.blocked = false
		if at := now + s.cfg.L1HitLatency; at > w.readyAt {
			w.readyAt = at
		}
		s.sleep(w, now)
	}
	s.releaseOp(op)
}

func (s *SM) lsuLoadLine(op *memOp, line uint64, now uint64) bool {
	// Probe hazards before recording the access so a structurally stalled
	// transaction does not inflate the L1 statistics on every retry.
	if e := s.mshr.Lookup(line); e != nil {
		if !s.mshr.CanMerge(e) {
			return false
		}
		s.l1.Read(line, nil) // records the miss
		e.Targets = append(e.Targets, op)
		op.outstanding++
		s.outstanding++
		return true
	}
	var buf [cache.LineSize]byte
	if s.l1.Contains(line) {
		s.l1.Read(line, buf[:])
		deliverLoad(op, line, &buf)
		return true
	}
	if s.mshr.Full() || len(s.outbox) >= s.cfg.OutboxDepth {
		return false
	}
	s.l1.Read(line, nil) // records the miss
	e := s.mshr.Allocate(line)
	e.Targets = append(e.Targets, op)
	op.outstanding++
	s.outstanding++
	s.outbox = append(s.outbox, &MemReq{SM: s.id, LineAddr: line, Load: true, IssuedAt: now})
	return true
}

func (s *SM) lsuStoreLine(op *memOp, line uint64, now uint64) bool {
	if len(s.outbox) >= s.cfg.OutboxDepth {
		return false
	}
	var stores []cache.PendingStore
	for l := 0; l < WarpSize; l++ {
		if op.lanes.Active&(1<<uint(l)) == 0 {
			continue
		}
		a := op.lanes.Addrs[l]
		if lineOf(a) != line {
			continue
		}
		v := op.lanes.Vals[l]
		// Write-through: keep a resident L1 copy coherent with the L2.
		s.l1.MergeWord(a, uint64(v), 4, false)
		stores = append(stores, cache.PendingStore{Addr: a, Val: uint64(v), N: 4})
	}
	s.outbox = append(s.outbox, &MemReq{SM: s.id, LineAddr: line, Stores: stores, IssuedAt: now})
	return true
}

func (s *SM) completeOp(op *memOp, now uint64) {
	op.w.blocked = false
	if at := now + s.cfg.L1HitLatency; at > op.w.readyAt {
		op.w.readyAt = at
	}
	s.sleep(op.w, now)
}

// HandleReply processes a load reply from the memory partition: it fills the
// L1, delivers lane values to every merged waiter, and unblocks warps whose
// memory instruction is now complete.
func (s *SM) HandleReply(rep *MemReply, now uint64) {
	line := rep.Req.LineAddr
	e := s.mshr.Lookup(line)
	if e == nil {
		return // spurious reply; cannot happen in normal operation
	}
	s.mshr.Remove(line)
	s.l1.Fill(line, rep.Data[:], rep.Approx)
	for _, t := range e.Targets {
		op := t.(*memOp)
		deliverLoad(op, line, &rep.Data)
		op.outstanding--
		s.outstanding--
		if op.outstanding == 0 && op.nextLine >= op.numLines && s.lsu != op {
			if op.async {
				s.finishAsync(op, now)
			} else {
				s.completeOp(op, now)
				s.releaseOp(op)
			}
		}
	}
}

// deliverLoad writes the loaded words of line into the destination register
// of every active lane addressed within it.
func deliverLoad(op *memOp, line uint64, data *[cache.LineSize]byte) {
	for l := 0; l < WarpSize; l++ {
		if op.lanes.Active&(1<<uint(l)) == 0 {
			continue
		}
		a := op.lanes.Addrs[l]
		if lineOf(a) != line {
			continue
		}
		off := a % cache.LineSize
		op.w.ctx.Regs[op.dst][l] = binary.LittleEndian.Uint32(data[off : off+4])
	}
}
