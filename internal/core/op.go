// Package core models the GPU's streaming multiprocessors (SMs): resident
// warps executing per-warp instruction streams, a loose-round-robin dual
// issue scheduler, a load/store unit with memory coalescing, and a private
// write-through L1 data cache with merging MSHRs. Latency hiding emerges the
// way it does on real GPUs: each warp blocks on its own memory instruction
// while up to 48 resident warps keep the SM busy — the property the paper's
// delayed memory scheduling exploits.
package core

// WarpSize is the SIMT width (Table I: 32 threads per warp).
const WarpSize = 32

// MaxRegs is the number of vector register slots a warp program may address.
const MaxRegs = 8

// OpKind discriminates warp instructions.
type OpKind uint8

// Warp instruction kinds.
const (
	OpCompute OpKind = iota
	OpLoad
	OpStore
	// OpJoin blocks the warp until all of its in-flight asynchronous loads
	// have delivered (the "use" point of non-blocking GPU loads).
	OpJoin
)

// LaneSet carries the per-lane addresses and values of one memory
// instruction. Bit l of Active marks lane l as participating.
type LaneSet struct {
	Addrs  [WarpSize]uint64
	Vals   [WarpSize]uint32
	Active uint32
}

// Op is one warp instruction. Compute ops carry a latency in core cycles;
// memory ops reference the issuing warp's lane set (valid until the op
// completes, which is guaranteed because a warp blocks on its memory ops).
type Op struct {
	Kind   OpKind
	Cycles uint32
	Dst    uint8 // destination vector register for loads
	// Async marks a non-blocking load: the warp continues once the load's
	// transactions are issued and only waits at the next OpJoin. The
	// destination register (and its lane set) must not be reused before
	// that join.
	Async bool
	Lanes *LaneSet
}

// lineOf returns the 128-byte line address containing addr.
func lineOf(addr uint64) uint64 { return addr &^ 127 }
