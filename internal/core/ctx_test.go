package core_test

import (
	"math"
	"testing"

	"lazydram/internal/core"
)

func TestComputeClampsToOneCycle(t *testing.T) {
	var ctx core.Ctx
	if op := ctx.Compute(0); op.Cycles != 1 {
		t.Fatalf("Compute(0).Cycles = %d, want 1", op.Cycles)
	}
	if op := ctx.Compute(7); op.Cycles != 7 || op.Kind != core.OpCompute {
		t.Fatalf("Compute(7) = %+v", op)
	}
}

func TestLoadSeq32Addresses(t *testing.T) {
	var ctx core.Ctx
	op := ctx.LoadSeq32(2, 1000, 5, 4)
	if op.Kind != core.OpLoad || op.Dst != 2 {
		t.Fatalf("op = %+v", op)
	}
	if op.Lanes.Active != 0b1111 {
		t.Fatalf("active mask = %b, want 4 lanes", op.Lanes.Active)
	}
	for l := 0; l < 4; l++ {
		if want := uint64(1000 + 4*(5+l)); op.Lanes.Addrs[l] != want {
			t.Fatalf("lane %d addr = %d, want %d", l, op.Lanes.Addrs[l], want)
		}
	}
}

func TestLoadStride32Addresses(t *testing.T) {
	var ctx core.Ctx
	op := ctx.LoadStride32(0, 0, 10, 100, 3)
	for l := 0; l < 3; l++ {
		if want := uint64(4 * (10 + l*100)); op.Lanes.Addrs[l] != want {
			t.Fatalf("lane %d addr = %d, want %d", l, op.Lanes.Addrs[l], want)
		}
	}
}

func TestLoadGather32Addresses(t *testing.T) {
	var ctx core.Ctx
	idx := []int{9, 3, 7}
	op := ctx.LoadGather32(1, 64, idx, 3)
	for l, ix := range idx {
		if want := uint64(64 + 4*ix); op.Lanes.Addrs[l] != want {
			t.Fatalf("lane %d addr = %d, want %d", l, op.Lanes.Addrs[l], want)
		}
	}
}

func TestStoreBuildersEncodeValues(t *testing.T) {
	var ctx core.Ctx
	vals := []float32{1.5, -2}
	op := ctx.StoreSeqF32(512, 0, vals, 2)
	if op.Kind != core.OpStore {
		t.Fatal("not a store")
	}
	if op.Lanes.Vals[0] != math.Float32bits(1.5) || op.Lanes.Vals[1] != math.Float32bits(-2) {
		t.Fatal("store values not encoded")
	}
	sc := ctx.StoreScatterF32(512, []int{4, 2}, vals, 2)
	if sc.Lanes.Addrs[0] != 512+16 || sc.Lanes.Addrs[1] != 512+8 {
		t.Fatal("scatter addresses wrong")
	}
	st := ctx.StoreStrideF32(0, 0, 8, vals, 2)
	if st.Lanes.Addrs[1] != 32 {
		t.Fatal("strided store address wrong")
	}
}

func TestFullWarpMask(t *testing.T) {
	var ctx core.Ctx
	op := ctx.LoadSeq32(0, 0, 0, core.WarpSize)
	if op.Lanes.Active != ^uint32(0) {
		t.Fatalf("full warp mask = %#x", op.Lanes.Active)
	}
}

func TestLoadsUseDistinctLaneBuffersPerRegister(t *testing.T) {
	var ctx core.Ctx
	a := ctx.LoadSeq32(0, 0, 0, 1)
	b := ctx.LoadSeq32(1, 4096, 0, 1)
	if a.Lanes == b.Lanes {
		t.Fatal("loads to different registers must not share a lane buffer")
	}
	if a.Lanes.Addrs[0] != 0 || b.Lanes.Addrs[0] != 4096 {
		t.Fatal("second load corrupted the first load's addresses")
	}
}

func TestAsyncWrapperAndJoin(t *testing.T) {
	var ctx core.Ctx
	op := ctx.Async(ctx.LoadSeq32(0, 0, 0, 1))
	if !op.Async {
		t.Fatal("Async did not mark the op")
	}
	j := ctx.Join()
	if j.Kind != core.OpJoin {
		t.Fatalf("Join kind = %v", j.Kind)
	}
}

func TestRegF32(t *testing.T) {
	var ctx core.Ctx
	ctx.Regs[3][0] = math.Float32bits(2.5)
	ctx.Regs[3][1] = math.Float32bits(-1)
	var buf [core.WarpSize]float32
	out := ctx.RegF32(3, &buf, 2)
	if out[0] != 2.5 || out[1] != -1 {
		t.Fatalf("RegF32 = %v", out[:2])
	}
}
