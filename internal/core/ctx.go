package core

import "math"

// Ctx is a warp's architectural state visible to its program: vector
// registers written by loads and a reusable lane-set buffer for building
// memory instructions. A program may only inspect registers after the load
// that writes them has been yielded (the simulator resumes the program only
// once the memory instruction completed, so the values are always present).
type Ctx struct {
	Regs [MaxRegs][WarpSize]uint32
	// lanes[r] is the lane-set buffer of register slot r; loads targeting r
	// build their addresses here. Stores use the slot chosen by the caller
	// via the store builders (slot MaxRegs-1 by default).
	lanes [MaxRegs]LaneSet
}

// F32 returns register reg, lane lane as float32.
func (c *Ctx) F32(reg, lane int) float32 {
	return math.Float32frombits(c.Regs[reg][lane])
}

// U32 returns register reg, lane lane as uint32.
func (c *Ctx) U32(reg, lane int) uint32 { return c.Regs[reg][lane] }

// Compute returns a compute instruction occupying the warp for the given
// number of core cycles.
func (c *Ctx) Compute(cycles int) Op {
	if cycles < 1 {
		cycles = 1
	}
	return Op{Kind: OpCompute, Cycles: uint32(cycles)}
}

// fullMask activates lanes [0, n).
func fullMask(n int) uint32 {
	if n >= WarpSize {
		return ^uint32(0)
	}
	return (1 << uint(n)) - 1
}

// LoadSeq32 builds a fully coalesced load: lane l reads the 32-bit word at
// base + 4*(elem + l), for l in [0, n).
func (c *Ctx) LoadSeq32(dst int, base uint64, elem int, n int) Op {
	ls := &c.lanes[dst]
	ls.Active = fullMask(n)
	for l := 0; l < n && l < WarpSize; l++ {
		ls.Addrs[l] = base + 4*uint64(elem+l)
	}
	return Op{Kind: OpLoad, Dst: uint8(dst), Lanes: ls}
}

// LoadStride32 builds a strided load: lane l reads the 32-bit word at
// base + 4*(elem + l*strideElems), for l in [0, n). Large strides defeat
// coalescing and produce up to n distinct line transactions — the classic
// row-thrashing access shape.
func (c *Ctx) LoadStride32(dst int, base uint64, elem, strideElems, n int) Op {
	ls := &c.lanes[dst]
	ls.Active = fullMask(n)
	for l := 0; l < n && l < WarpSize; l++ {
		ls.Addrs[l] = base + 4*uint64(elem+l*strideElems)
	}
	return Op{Kind: OpLoad, Dst: uint8(dst), Lanes: ls}
}

// LoadGather32 builds an arbitrary gather: lane l reads base + 4*idx[l] for
// l in [0, n).
func (c *Ctx) LoadGather32(dst int, base uint64, idx []int, n int) Op {
	ls := &c.lanes[dst]
	ls.Active = fullMask(n)
	for l := 0; l < n && l < WarpSize; l++ {
		ls.Addrs[l] = base + 4*uint64(idx[l])
	}
	return Op{Kind: OpLoad, Dst: uint8(dst), Lanes: ls}
}

// StoreSeqF32 builds a fully coalesced store: lane l writes vals[l] to
// base + 4*(elem + l), for l in [0, n).
func (c *Ctx) StoreSeqF32(base uint64, elem int, vals []float32, n int) Op {
	ls := &c.lanes[MaxRegs-1]
	ls.Active = fullMask(n)
	for l := 0; l < n && l < WarpSize; l++ {
		ls.Addrs[l] = base + 4*uint64(elem+l)
		ls.Vals[l] = math.Float32bits(vals[l])
	}
	return Op{Kind: OpStore, Lanes: ls}
}

// StoreStrideF32 builds a strided store: lane l writes vals[l] to
// base + 4*(elem + l*strideElems), for l in [0, n).
func (c *Ctx) StoreStrideF32(base uint64, elem, strideElems int, vals []float32, n int) Op {
	ls := &c.lanes[MaxRegs-1]
	ls.Active = fullMask(n)
	for l := 0; l < n && l < WarpSize; l++ {
		ls.Addrs[l] = base + 4*uint64(elem+l*strideElems)
		ls.Vals[l] = math.Float32bits(vals[l])
	}
	return Op{Kind: OpStore, Lanes: ls}
}

// StoreScatterF32 builds an arbitrary scatter: lane l writes vals[l] to
// base + 4*idx[l], for l in [0, n).
func (c *Ctx) StoreScatterF32(base uint64, idx []int, vals []float32, n int) Op {
	ls := &c.lanes[MaxRegs-1]
	ls.Active = fullMask(n)
	for l := 0; l < n && l < WarpSize; l++ {
		ls.Addrs[l] = base + 4*uint64(idx[l])
		ls.Vals[l] = math.Float32bits(vals[l])
	}
	return Op{Kind: OpStore, Lanes: ls}
}

// Async marks a load as non-blocking: the warp proceeds after the load's
// transactions are issued and synchronizes at the next Join. The destination
// register must not be reloaded before that join.
func (c *Ctx) Async(op Op) Op {
	op.Async = true
	return op
}

// Join returns the instruction that waits for all in-flight async loads.
func (c *Ctx) Join() Op { return Op{Kind: OpJoin} }

// RegF32 copies register reg into dst as float32 values and returns dst[:n].
func (c *Ctx) RegF32(reg int, dst *[WarpSize]float32, n int) []float32 {
	for l := 0; l < n && l < WarpSize; l++ {
		dst[l] = math.Float32frombits(c.Regs[reg][l])
	}
	return dst[:n]
}
