package core

import (
	"fmt"
	"strings"

	"lazydram/internal/obs"
)

// DigestInto folds the SM's execution progress into h: retirement counters,
// the outbox, the runnable queue (order-sensitive — issue order matters),
// the LSU and its parked queue, every resident warp's progress state, and
// the L1 cache/MSHR. Register files are deliberately NOT hashed: they are
// large, and any data divergence reaches them only through a load reply whose
// bytes the partition traffic digests already cover. The wake wheel is not
// hashed either — its contents are derived from the warps' readyAt fields.
func (s *SM) DigestInto(h *obs.Hasher) {
	h.U64(s.insts)
	h.Int(s.outstanding)
	h.Int(s.nextSeed)
	h.Int(len(s.outbox))
	for _, r := range s.outbox {
		h.U64(r.LineAddr)
		h.Bool(r.Load)
		h.U64(r.IssuedAt)
		h.Int(len(r.Stores))
	}
	h.Int(len(s.runnable))
	for _, slot := range s.runnable {
		h.Int(int(slot))
	}
	h.Int(len(s.lsuQueue))
	for _, slot := range s.lsuQueue {
		h.Int(int(slot))
	}
	if op := s.lsu; op != nil {
		h.Int(int(op.w.slot))
		h.Int(int(op.kind))
		h.Int(op.numLines)
		h.Int(op.nextLine)
		h.Int(op.outstanding)
		h.Bool(op.async)
	} else {
		h.Int(-1)
	}
	for _, w := range s.warps {
		h.Int(w.id)
		h.U64(w.readyAt)
		h.Bool(w.blocked)
		h.Bool(w.hasOp)
		h.Bool(w.finished)
		h.Int(w.asyncOps)
		h.Bool(w.joinWaiting)
	}
	s.l1.DigestInto(h)
	s.mshr.DigestInto(h)
}

// DumpState renders the SM's progress for lazydiverge's state diffs: the
// counters, queue depths, unfinished warps, and the L1 summary.
func (s *SM) DumpState() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "insts=%d outstanding=%d nextSeed=%d outbox=%d runnable=%d lsuQueue=%d mshr=%d\n",
		s.insts, s.outstanding, s.nextSeed, len(s.outbox), len(s.runnable), len(s.lsuQueue), s.mshr.Len())
	if op := s.lsu; op != nil {
		fmt.Fprintf(&sb, "lsu: warp=%d kind=%d line=%d/%d outstanding=%d async=%v\n",
			op.w.id, op.kind, op.nextLine, op.numLines, op.outstanding, op.async)
	}
	for _, w := range s.warps {
		if w.finished {
			continue
		}
		fmt.Fprintf(&sb, "warp[%d]: readyAt=%d blocked=%v hasOp=%v async=%d join=%v\n",
			w.id, w.readyAt, w.blocked, w.hasOp, w.asyncOps, w.joinWaiting)
	}
	sb.WriteString("l1: ")
	sb.WriteString(s.l1.DumpState())
	return sb.String()
}
