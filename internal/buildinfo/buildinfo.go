// Package buildinfo reads the binary's embedded Go build information so every
// CLI can stamp provenance (VCS revision, dirty flag, Go version) into its
// artifacts and answer -version.
package buildinfo

import (
	"fmt"
	"runtime/debug"
)

// Build is the provenance block serialized as meta.build in -json documents.
type Build struct {
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision is the VCS commit the binary was built from (empty when the
	// build ran outside a checkout, e.g. plain `go test` in a tarball).
	Revision string `json:"revision,omitempty"`
	// Dirty reports uncommitted changes in the build's working tree.
	Dirty bool `json:"dirty,omitempty"`
	// Module is the main module path.
	Module string `json:"module,omitempty"`
}

// Get reads the running binary's build info. It never fails: missing fields
// are left zero.
func Get() Build {
	var b Build
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.GoVersion = info.GoVersion
	b.Module = info.Main.Path
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.modified":
			b.Dirty = s.Value == "true"
		}
	}
	return b
}

// String renders the one-line -version output.
func (b Build) String() string {
	rev := b.Revision
	if rev == "" {
		rev = "unknown"
	} else if len(rev) > 12 {
		rev = rev[:12]
	}
	if b.Dirty {
		rev += "-dirty"
	}
	mod := b.Module
	if mod == "" {
		mod = "lazydram"
	}
	return fmt.Sprintf("%s %s (%s)", mod, rev, b.GoVersion)
}
