package buildinfo

import (
	"strings"
	"testing"
)

func TestGetReportsGoVersion(t *testing.T) {
	b := Get()
	// The Go version is always present in a `go test` binary; VCS fields
	// depend on whether the build ran inside a checkout.
	if b.GoVersion == "" {
		t.Fatal("GoVersion empty")
	}
	if !strings.HasPrefix(b.GoVersion, "go") {
		t.Errorf("GoVersion = %q, want go-prefixed", b.GoVersion)
	}
}

func TestStringIsOneLine(t *testing.T) {
	for _, b := range []Build{
		{},
		{GoVersion: "go1.23.0", Revision: "0123456789abcdef0123", Dirty: true, Module: "lazydram"},
	} {
		s := b.String()
		if s == "" || strings.ContainsRune(s, '\n') {
			t.Errorf("String() = %q, want non-empty single line", s)
		}
	}
	long := Build{GoVersion: "go1.23.0", Revision: "0123456789abcdef0123", Module: "lazydram"}
	if got := long.String(); !strings.Contains(got, "0123456789ab") || strings.Contains(got, "0123456789abc") {
		t.Errorf("String() = %q, want revision truncated to 12 chars", got)
	}
}
