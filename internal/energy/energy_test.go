package energy_test

import (
	"math"
	"testing"

	"lazydram/internal/energy"
	"lazydram/internal/stats"
)

func TestRowEnergyProportionalToActivations(t *testing.T) {
	p := energy.GDDR5()
	a := &stats.Mem{Activations: 100}
	b := &stats.Mem{Activations: 300}
	if got := p.RowEnergyNJ(b) / p.RowEnergyNJ(a); got != 3 {
		t.Fatalf("row energy ratio = %v, want 3", got)
	}
}

func TestHBM2Profile(t *testing.T) {
	p := energy.HBM2()
	if p.Name != "HBM2" {
		t.Fatalf("name = %q, want HBM2", p.Name)
	}
	m := &stats.Mem{Activations: 10, Reads: 100, Writes: 50}
	if got, want := p.RowEnergyNJ(m), 10*p.ActNJ; got != want {
		t.Fatalf("HBM2 row energy = %v, want %v", got, want)
	}
	if got, want := p.AccessEnergyNJ(m), 100*p.RdNJ+50*p.WrNJ; got != want {
		t.Fatalf("HBM2 access energy = %v, want %v", got, want)
	}
	// Row energy per activation must sit well below GDDR5's: the paper's
	// HBM projections rest on that ordering.
	if g := energy.GDDR5(); p.ActNJ >= g.ActNJ {
		t.Fatalf("HBM2 ActNJ %v not below GDDR5 %v", p.ActNJ, g.ActNJ)
	}
	total := p.MemEnergyNJ(m, 1000, 1e9, 1)
	background := p.BackgroundWPerChannel * 1000 / 1e9 * 1e9
	if want := p.RowEnergyNJ(m) + p.AccessEnergyNJ(m) + background; math.Abs(total-want) > 1e-9 {
		t.Fatalf("HBM2 mem energy = %v, want %v", total, want)
	}
}

// TestAttributionSumsToTotals: the per-channel x per-bank attribution must
// be an exact decomposition of the aggregate energy model.
func TestAttributionSumsToTotals(t *testing.T) {
	p := energy.GDDR5()
	chans := make([]stats.Mem, 3)
	for c := range chans {
		m := &chans[c]
		for b := 0; b < 4; b++ {
			bk := m.Bank(b)
			bk.Activations = uint64(10*c + b + 1)
			bk.Reads = uint64(100 * (b + 1))
			bk.Writes = uint64(7 * (c + 1))
			m.Activations += bk.Activations
			m.Reads += bk.Reads
			m.Writes += bk.Writes
		}
	}
	const memCycles, hz = 50_000, 924e6
	attr := p.Attribution(chans, memCycles, hz)
	if len(attr) != len(chans) {
		t.Fatalf("attribution covers %d channels, want %d", len(attr), len(chans))
	}

	var merged stats.Mem
	var totalNJ float64
	for c := range attr {
		ce := attr[c]
		if ce.Channel != c {
			t.Fatalf("channel id %d at index %d", ce.Channel, c)
		}
		var rowNJ, accNJ float64
		for _, b := range ce.Banks {
			rowNJ += b.RowNJ
			accNJ += b.AccessNJ
		}
		if math.Abs(rowNJ-ce.RowNJ) > 1e-6 {
			t.Errorf("ch%d: bank row sum %v != channel row %v", c, rowNJ, ce.RowNJ)
		}
		if math.Abs(accNJ-ce.AccessNJ) > 1e-6 {
			t.Errorf("ch%d: bank access sum %v != channel access %v", c, accNJ, ce.AccessNJ)
		}
		if math.Abs(ce.RowNJ+ce.AccessNJ+ce.BackgroundNJ-ce.TotalNJ) > 1e-6 {
			t.Errorf("ch%d: total %v != row+access+background", c, ce.TotalNJ)
		}
		totalNJ += ce.TotalNJ
		cm := chans[c]
		merged.Merge(&cm)
	}
	want := p.MemEnergyNJ(&merged, memCycles, hz, len(chans))
	if math.Abs(totalNJ-want) > 1e-6 {
		t.Fatalf("attribution total %v != MemEnergyNJ %v", totalNJ, want)
	}
}

func TestTopBanks(t *testing.T) {
	p := energy.GDDR5()
	chans := make([]stats.Mem, 2)
	chans[0].Bank(0).Activations = 5
	chans[0].Bank(1).Activations = 50
	chans[1].Bank(0).Activations = 20
	chans[1].Bank(2).Activations = 0 // never activated: omitted
	for c := range chans {
		chans[c].Activations = chans[c].BankTotals().Activations
	}
	hot := energy.TopBanks(p.Attribution(chans, 1000, 1e9), 2)
	if len(hot) != 2 {
		t.Fatalf("top-2 returned %d entries", len(hot))
	}
	if hot[0].Channel != 0 || hot[0].Bank != 1 || hot[1].Channel != 1 || hot[1].Bank != 0 {
		t.Fatalf("unexpected ranking: %+v", hot)
	}
	if hot[0].RowNJ < hot[1].RowNJ {
		t.Fatal("top banks not sorted by row energy")
	}
	// Shares are fractions of the whole system's row energy.
	wantShare := float64(50) / float64(75)
	if math.Abs(hot[0].RowShare-wantShare) > 1e-9 {
		t.Fatalf("hottest share = %v, want %v", hot[0].RowShare, wantShare)
	}
}

func TestAccessEnergy(t *testing.T) {
	p := energy.Profile{RdNJ: 2, WrNJ: 3}
	m := &stats.Mem{Reads: 10, Writes: 4}
	if got := p.AccessEnergyNJ(m); got != 32 {
		t.Fatalf("access energy = %v, want 32", got)
	}
}

func TestMemEnergyIncludesBackground(t *testing.T) {
	p := energy.Profile{BackgroundWPerChannel: 1}
	m := &stats.Mem{}
	// 1 W x 6 channels x 1 s = 6 J = 6e9 nJ.
	got := p.MemEnergyNJ(m, 1_000_000, 1e6, 6)
	if math.Abs(got-6e9) > 1 {
		t.Fatalf("background energy = %v nJ, want 6e9", got)
	}
}

func TestSystemSavingUsesRowShare(t *testing.T) {
	hbm1 := energy.HBM1()
	// The paper's numbers: a 44% row-energy reduction is ~22% of HBM1
	// system energy (50% share) and ~11% of HBM2 (25% share).
	if got := hbm1.SystemSaving(0.44); math.Abs(got-0.22) > 1e-9 {
		t.Fatalf("HBM1 saving = %v, want 0.22", got)
	}
	hbm2 := energy.HBM2()
	if got := hbm2.SystemSaving(0.44); math.Abs(got-0.11) > 1e-9 {
		t.Fatalf("HBM2 saving = %v, want 0.11", got)
	}
}

func TestPeakBandwidthHeadroom(t *testing.T) {
	watts, gbs := energy.PeakBandwidthHeadroom(60, 900, 0.1)
	if math.Abs(watts-6) > 1e-9 {
		t.Fatalf("watts = %v, want 6", watts)
	}
	if gbs <= 0 || gbs > 150 {
		t.Fatalf("bandwidth headroom %v out of plausible range", gbs)
	}
	if _, g := energy.PeakBandwidthHeadroom(60, 900, 1); g != 0 {
		t.Fatal("degenerate saving must not divide by zero")
	}
}

func TestProfilesArePlausible(t *testing.T) {
	for _, p := range []energy.Profile{energy.GDDR5(), energy.HBM1(), energy.HBM2()} {
		if p.ActNJ <= 0 || p.RdNJ <= 0 || p.WrNJ <= 0 {
			t.Fatalf("%s: non-positive energies", p.Name)
		}
		if p.RowEnergyShare <= 0 || p.RowEnergyShare >= 1 {
			t.Fatalf("%s: row share %v out of (0,1)", p.Name, p.RowEnergyShare)
		}
	}
}
