package energy_test

import (
	"math"
	"testing"

	"lazydram/internal/energy"
	"lazydram/internal/stats"
)

func TestRowEnergyProportionalToActivations(t *testing.T) {
	p := energy.GDDR5()
	a := &stats.Mem{Activations: 100}
	b := &stats.Mem{Activations: 300}
	if got := energy.Profile.RowEnergyNJ(p, b) / p.RowEnergyNJ(a); got != 3 {
		t.Fatalf("row energy ratio = %v, want 3", got)
	}
}

func TestAccessEnergy(t *testing.T) {
	p := energy.Profile{RdNJ: 2, WrNJ: 3}
	m := &stats.Mem{Reads: 10, Writes: 4}
	if got := p.AccessEnergyNJ(m); got != 32 {
		t.Fatalf("access energy = %v, want 32", got)
	}
}

func TestMemEnergyIncludesBackground(t *testing.T) {
	p := energy.Profile{BackgroundWPerChannel: 1}
	m := &stats.Mem{}
	// 1 W x 6 channels x 1 s = 6 J = 6e9 nJ.
	got := p.MemEnergyNJ(m, 1_000_000, 1e6, 6)
	if math.Abs(got-6e9) > 1 {
		t.Fatalf("background energy = %v nJ, want 6e9", got)
	}
}

func TestSystemSavingUsesRowShare(t *testing.T) {
	hbm1 := energy.HBM1()
	// The paper's numbers: a 44% row-energy reduction is ~22% of HBM1
	// system energy (50% share) and ~11% of HBM2 (25% share).
	if got := hbm1.SystemSaving(0.44); math.Abs(got-0.22) > 1e-9 {
		t.Fatalf("HBM1 saving = %v, want 0.22", got)
	}
	hbm2 := energy.HBM2()
	if got := hbm2.SystemSaving(0.44); math.Abs(got-0.11) > 1e-9 {
		t.Fatalf("HBM2 saving = %v, want 0.11", got)
	}
}

func TestPeakBandwidthHeadroom(t *testing.T) {
	watts, gbs := energy.PeakBandwidthHeadroom(60, 900, 0.1)
	if math.Abs(watts-6) > 1e-9 {
		t.Fatalf("watts = %v, want 6", watts)
	}
	if gbs <= 0 || gbs > 150 {
		t.Fatalf("bandwidth headroom %v out of plausible range", gbs)
	}
	if _, g := energy.PeakBandwidthHeadroom(60, 900, 1); g != 0 {
		t.Fatal("degenerate saving must not divide by zero")
	}
}

func TestProfilesArePlausible(t *testing.T) {
	for _, p := range []energy.Profile{energy.GDDR5(), energy.HBM1(), energy.HBM2()} {
		if p.ActNJ <= 0 || p.RdNJ <= 0 || p.WrNJ <= 0 {
			t.Fatalf("%s: non-positive energies", p.Name)
		}
		if p.RowEnergyShare <= 0 || p.RowEnergyShare >= 1 {
			t.Fatalf("%s: row share %v out of (0,1)", p.Name, p.RowEnergyShare)
		}
	}
}
