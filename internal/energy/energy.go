// Package energy provides the DRAM energy model used to turn activation and
// access counts into the paper's "row energy" and memory-system energy
// numbers.
//
// The paper measures energy with GPUWattch; we substitute an analytic
// per-operation model with representative constants from the literature the
// paper cites (Chatterjee et al. HPCA'17, O'Connor et al. MICRO'17, Ghose et
// al. SIGMETRICS'18). All results the harness reports are normalized to a
// baseline run, exactly as the paper reports them, so the relative numbers —
// the reproduction target — do not depend on the absolute constants.
package energy

import (
	"sort"

	"lazydram/internal/stats"
)

// Profile holds per-operation energies in nanojoules plus background power.
type Profile struct {
	Name string
	// ActPJ is the energy of one activate+restore+precharge cycle for a full
	// row — the paper's "row energy" unit.
	ActNJ float64
	// RdNJ / WrNJ are per-column-access (32 B x burst = 128 B) energies,
	// including I/O.
	RdNJ float64
	WrNJ float64
	// BackgroundWPerChannel is static + refresh power per channel in watts.
	BackgroundWPerChannel float64
	// RowEnergyShare is the typical share of row energy in total memory
	// system energy at peak bandwidth for this technology, used for the
	// paper's HBM1 (~50%) and HBM2 (~25%) projections.
	RowEnergyShare float64
}

// GDDR5 is the default profile for the simulated Hynix GDDR5 part.
func GDDR5() Profile {
	return Profile{
		Name:  "GDDR5",
		ActNJ: 22.5, RdNJ: 5.2, WrNJ: 5.4,
		BackgroundWPerChannel: 0.65,
		RowEnergyShare:        0.37,
	}
}

// HBM1 models a first-generation HBM stack, where row energy is close to
// half of memory-system energy (Chatterjee et al., HPCA'17).
func HBM1() Profile {
	return Profile{
		Name:  "HBM1",
		ActNJ: 9.5, RdNJ: 1.9, WrNJ: 2.0,
		BackgroundWPerChannel: 0.30,
		RowEnergyShare:        0.50,
	}
}

// HBM2 models second-generation HBM, where row energy is roughly a quarter
// of memory-system energy (O'Connor et al., MICRO'17).
func HBM2() Profile {
	return Profile{
		Name:  "HBM2",
		ActNJ: 6.0, RdNJ: 2.4, WrNJ: 2.5,
		BackgroundWPerChannel: 0.28,
		RowEnergyShare:        0.25,
	}
}

// RowEnergyNJ returns the total row energy (activate + restore + precharge)
// for the given memory statistics.
func (p Profile) RowEnergyNJ(m *stats.Mem) float64 {
	return float64(m.Activations) * p.ActNJ
}

// AccessEnergyNJ returns the column-access energy.
func (p Profile) AccessEnergyNJ(m *stats.Mem) float64 {
	return float64(m.Reads)*p.RdNJ + float64(m.Writes)*p.WrNJ
}

// MemEnergyNJ returns total memory-system energy: row + access + background.
// memCycles is the number of memory-clock cycles the run lasted and
// memClockHz the memory clock frequency; channels is the channel count.
func (p Profile) MemEnergyNJ(m *stats.Mem, memCycles uint64, memClockHz float64, channels int) float64 {
	seconds := float64(memCycles) / memClockHz
	background := p.BackgroundWPerChannel * float64(channels) * seconds * 1e9
	return p.RowEnergyNJ(m) + p.AccessEnergyNJ(m) + background
}

// BankEnergy attributes one bank's share of the channel energy, alongside
// the counters the attribution derives from.
type BankEnergy struct {
	Bank     int     `json:"bank"`
	RowNJ    float64 `json:"row_nj"`
	AccessNJ float64 `json:"access_nj"`

	Activations    uint64 `json:"activations"`
	Reads          uint64 `json:"reads"`
	Writes         uint64 `json:"writes"`
	RowHits        uint64 `json:"row_hits"`
	RowMisses      uint64 `json:"row_misses"`
	RowConflicts   uint64 `json:"row_conflicts"`
	DMSDelayCycles uint64 `json:"dms_delay_cycles"`
	AMSDrops       uint64 `json:"ams_drops"`
}

// ChannelEnergy attributes one channel's energy, split per bank. Background
// energy is a channel-level quantity and has no per-bank split.
type ChannelEnergy struct {
	Channel      int          `json:"channel"`
	RowNJ        float64      `json:"row_nj"`
	AccessNJ     float64      `json:"access_nj"`
	BackgroundNJ float64      `json:"background_nj"`
	TotalNJ      float64      `json:"total_nj"`
	Banks        []BankEnergy `json:"banks,omitempty"`
}

// ChannelAttribution computes the energy attribution of one channel from its
// per-channel statistics. memCycles and memClockHz are the run length and
// memory clock, as in MemEnergyNJ; the channel's bank matrix (when tracked)
// yields the per-bank split.
func (p Profile) ChannelAttribution(channel int, m *stats.Mem, memCycles uint64, memClockHz float64) ChannelEnergy {
	ce := ChannelEnergy{
		Channel:      channel,
		RowNJ:        p.RowEnergyNJ(m),
		AccessNJ:     p.AccessEnergyNJ(m),
		BackgroundNJ: p.BackgroundWPerChannel * float64(memCycles) / memClockHz * 1e9,
	}
	ce.TotalNJ = ce.RowNJ + ce.AccessNJ + ce.BackgroundNJ
	for i := range m.Banks {
		b := &m.Banks[i]
		ce.Banks = append(ce.Banks, BankEnergy{
			Bank:           i,
			RowNJ:          float64(b.Activations) * p.ActNJ,
			AccessNJ:       float64(b.Reads)*p.RdNJ + float64(b.Writes)*p.WrNJ,
			Activations:    b.Activations,
			Reads:          b.Reads,
			Writes:         b.Writes,
			RowHits:        b.RowHits,
			RowMisses:      b.RowMisses,
			RowConflicts:   b.RowConflicts,
			DMSDelayCycles: b.DMSDelayCycles,
			AMSDrops:       b.AMSDrops,
		})
	}
	return ce
}

// Attribution computes the per-channel × per-bank energy attribution for a
// whole memory system from its per-channel statistics snapshots. The summed
// totals equal MemEnergyNJ of the merged statistics.
func (p Profile) Attribution(chans []stats.Mem, memCycles uint64, memClockHz float64) []ChannelEnergy {
	out := make([]ChannelEnergy, 0, len(chans))
	for i := range chans {
		out = append(out, p.ChannelAttribution(i, &chans[i], memCycles, memClockHz))
	}
	return out
}

// HotBank is one entry of the "hottest banks" summary: where the row energy
// concentrates.
type HotBank struct {
	Channel int     `json:"channel"`
	Bank    int     `json:"bank"`
	RowNJ   float64 `json:"row_nj"`
	// RowShare is this bank's fraction of the whole system's row energy.
	RowShare     float64 `json:"row_share"`
	Activations  uint64  `json:"activations"`
	RowConflicts uint64  `json:"row_conflicts"`
}

// TopBanks returns the n banks with the highest row energy across the
// attribution, sorted hottest first (ties broken by channel then bank for
// determinism). Banks that never activated are omitted.
func TopBanks(attr []ChannelEnergy, n int) []HotBank {
	var total float64
	var all []HotBank
	for _, ce := range attr {
		for _, b := range ce.Banks {
			total += b.RowNJ
			if b.Activations == 0 {
				continue
			}
			all = append(all, HotBank{
				Channel:      ce.Channel,
				Bank:         b.Bank,
				RowNJ:        b.RowNJ,
				Activations:  b.Activations,
				RowConflicts: b.RowConflicts,
			})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.RowNJ != b.RowNJ {
			return a.RowNJ > b.RowNJ
		}
		if a.Channel != b.Channel {
			return a.Channel < b.Channel
		}
		return a.Bank < b.Bank
	})
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	if total > 0 {
		for i := range all {
			all[i].RowShare = all[i].RowNJ / total
		}
	}
	return all
}

// SystemSaving projects the memory-system energy saving for this technology
// given a row-energy reduction ratio (e.g. 0.44 for a 44% reduction), using
// the technology's typical row-energy share:
//
//	saving = rowReduction * RowEnergyShare
//
// This is the calculation behind the paper's "22% on HBM1, 11% on HBM2"
// statement.
func (p Profile) SystemSaving(rowReduction float64) float64 {
	return rowReduction * p.RowEnergyShare
}

// PeakBandwidthHeadroom converts a memory power saving into extra peak
// bandwidth under a fixed power budget, assuming bandwidth scales linearly
// with dynamic power at peak utilization (the paper's 60 W / 300 W GPU budget
// discussion). budgetW is the memory power cap, peakGBs the baseline peak
// bandwidth, saving the fractional memory-energy saving.
func PeakBandwidthHeadroom(budgetW, peakGBs, saving float64) (wattsSaved, extraGBs float64) {
	wattsSaved = budgetW * saving
	// With saving s, each GB/s costs (1-s) of its former power, so the same
	// budget sustains peak/(1-s) bandwidth.
	if saving < 1 {
		extraGBs = peakGBs/(1-saving) - peakGBs
	}
	return wattsSaved, extraGBs
}
