package report

// HTML assembly. One self-contained page: inline <style> only, inline SVG
// only, no scripts, no fonts, no fetches. Light and dark render from the
// same markup via CSS custom properties (prefers-color-scheme plus an
// explicit data-theme override hook).

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

const pageCSS = `
:root {
  color-scheme: light dark;
  --bg: #fcfcfb; --surface: #ffffff;
  --text: #0b0b0b; --text-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --hairline: #e1e0d9;
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a;
  --q0:#cde2fb; --q1:#b7d3f6; --q2:#9ec5f4; --q3:#86b6ef; --q4:#6da7ec;
  --q5:#5598e7; --q6:#3987e5; --q7:#2a78d6; --q8:#1c5cab; --q9:#184f95;
  --q10:#104281; --q11:#0d366b;
}
@media (prefers-color-scheme: dark) {
  :root {
    --bg: #1a1a19; --surface: #232322;
    --text: #ffffff; --text-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835; --hairline: #2c2c2a;
    --s1: #3987e5; --s2: #d95926; --s3: #199e70;
  }
}
[data-theme="dark"] {
  --bg: #1a1a19; --surface: #232322;
  --text: #ffffff; --text-2: #c3c2b7; --muted: #898781;
  --grid: #2c2c2a; --axis: #383835; --hairline: #2c2c2a;
  --s1: #3987e5; --s2: #d95926; --s3: #199e70;
}
* { box-sizing: border-box; }
body {
  margin: 0 auto; padding: 24px 28px 64px; max-width: 1200px;
  background: var(--bg); color: var(--text);
  font: 14px/1.45 system-ui, sans-serif;
  font-variant-numeric: tabular-nums;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 0 0 2px; }
.sub { color: var(--text-2); margin: 0 0 20px; }
section {
  background: var(--surface); border: 1px solid var(--hairline);
  border-radius: 8px; padding: 16px 18px; margin: 0 0 16px;
}
.cap { color: var(--muted); font-size: 12px; margin: 0 0 10px; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; margin: 10px 0; }
.tile {
  border: 1px solid var(--hairline); border-radius: 6px;
  padding: 8px 14px; min-width: 110px;
}
.tile b { display: block; font-size: 18px; font-weight: 600; }
.tile span { color: var(--muted); font-size: 11px; }
.minis { display: flex; flex-wrap: wrap; gap: 14px; }
figure.mini { margin: 0; }
figcaption { color: var(--text-2); font-size: 12px; margin-bottom: 2px; }
.legend { display: flex; gap: 16px; color: var(--text-2); font-size: 12px; margin: 4px 0 8px; }
.legend i {
  display: inline-block; width: 10px; height: 10px; border-radius: 2px;
  margin-right: 5px;
}
.legend .s1 { background: var(--s1); } .legend .s2 { background: var(--s2); }
.legend .s3 { background: var(--s3); }
table { border-collapse: collapse; margin: 8px 0; }
th, td { padding: 4px 12px 4px 0; text-align: right; }
th:first-child, td:first-child { text-align: left; }
th { color: var(--muted); font-weight: 500; font-size: 12px; border-bottom: 1px solid var(--hairline); }
td { border-bottom: 1px solid var(--hairline); }
svg { display: block; max-width: 100%; }
svg text { font: 11px system-ui, sans-serif; fill: var(--muted); }
svg text.lbl { fill: var(--text-2); }
svg text.val { fill: var(--text-2); }
line.grid { stroke: var(--grid); stroke-width: 1; }
line.axis { stroke: var(--axis); stroke-width: 1; }
.line { fill: none; stroke-width: 2; }
.line.ls1 { stroke: var(--s1); } .line.ls2 { stroke: var(--s2); }
.line.ls3 { stroke: var(--s3); }
.bar.s1 { fill: var(--s1); } .bar.s2 { fill: var(--s2); } .bar.s3 { fill: var(--s3); }
.q0{fill:var(--q0)}.q1{fill:var(--q1)}.q2{fill:var(--q2)}.q3{fill:var(--q3)}
.q4{fill:var(--q4)}.q5{fill:var(--q5)}.q6{fill:var(--q6)}.q7{fill:var(--q7)}
.q8{fill:var(--q8)}.q9{fill:var(--q9)}.q10{fill:var(--q10)}.q11{fill:var(--q11)}
`

func BuildHTML(docs []*Doc) string {
	var b strings.Builder
	b.WriteString("<!doctype html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	b.WriteString("<meta name=\"viewport\" content=\"width=device-width, initial-scale=1\">\n")
	title := "lazysim report"
	if len(docs) == 2 {
		title = "lazysim comparison"
	}
	fmt.Fprintf(&b, "<title>%s</title>\n<style>%s</style>\n</head>\n<body>\n", esc(title), pageCSS)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", esc(title))
	var names []string
	for _, d := range docs {
		names = append(names, d.title())
	}
	fmt.Fprintf(&b, "<p class=\"sub\">%s</p>\n", esc(strings.Join(names, "  vs  ")))
	if len(docs) == 2 {
		writeComparison(&b, docs[0], docs[1])
	}
	for _, d := range docs {
		writeDoc(&b, d, len(docs) > 1)
	}
	b.WriteString("</body>\n</html>\n")
	return b.String()
}

// --- shared fragments -------------------------------------------------------

type tile struct{ Label, Value string }

func writeTiles(b *strings.Builder, ts []tile) {
	b.WriteString(`<div class="tiles">`)
	for _, t := range ts {
		fmt.Fprintf(b, `<div class="tile"><b>%s</b><span>%s</span></div>`, esc(t.Value), esc(t.Label))
	}
	b.WriteString("</div>\n")
}

func writeTable(b *strings.Builder, headers []string, rows [][]string) {
	b.WriteString("<table><tr>")
	for _, h := range headers {
		fmt.Fprintf(b, "<th>%s</th>", esc(h))
	}
	b.WriteString("</tr>\n")
	for _, r := range rows {
		b.WriteString("<tr>")
		for _, c := range r {
			fmt.Fprintf(b, "<td>%s</td>", esc(c))
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</table>\n")
}

func openSection(b *strings.Builder, title, caption string) {
	fmt.Fprintf(b, "<section>\n<h2>%s</h2>\n", esc(title))
	if caption != "" {
		fmt.Fprintf(b, "<p class=\"cap\">%s</p>\n", esc(caption))
	}
}

func mini(b *strings.Builder, caption, svg string) {
	if svg == "" {
		return
	}
	fmt.Fprintf(b, "<figure class=\"mini\"><figcaption>%s</figcaption>%s</figure>\n", esc(caption), svg)
}

// --- per-document sections --------------------------------------------------

func writeDoc(b *strings.Builder, d *Doc, named bool) {
	suffix := ""
	if named {
		suffix = " — " + d.title()
	}

	// A sweep document (lazysim -sweep -json / experiments -runlog) has no
	// single-run identity: render the sweep dashboard instead of the
	// single-run summary tiles.
	if d.App == "" && d.CoreCycles == 0 {
		if d.Sweep != nil {
			writeSweepSection(b, d.Sweep, suffix)
		}
		return
	}

	openSection(b, "Run summary"+suffix, "")
	writeTiles(b, []tile{
		{"IPC", fnum(d.IPC)},
		{"BW utilisation", fnum(d.BWUtil)},
		{"AMS coverage", fnum(d.Coverage)},
		{"app error", fnum(d.AppError)},
		{"row energy (nJ)", fnum(d.RowEnergyNJ)},
		{"mem energy (nJ)", fnum(d.MemEnergyNJ)},
		{"activations", fnum(float64(d.Activations))},
		{"dropped reads", fnum(float64(d.Dropped))},
	})
	writeTable(b, []string{"core cycles", "instructions", "reads", "writes", "avg RBL", "queue occ", "mean delay", "final delay", "mean thRBL", "final thRBL"},
		[][]string{{
			fnum(float64(d.CoreCycles)), fnum(float64(d.Instructions)),
			fnum(float64(d.Reads)), fnum(float64(d.Writes)),
			fnum(d.AvgRBL), fnum(d.QueueOcc),
			fnum(d.MeanDelay), fnum(float64(d.FinalDelay)),
			fnum(d.MeanThRBL), fnum(float64(d.FinalThRBL)),
		}})
	b.WriteString("</section>\n")

	t := d.Telemetry
	if t != nil && t.Audit != nil {
		writeAuditSection(b, t.Audit, suffix)
		writeAdaptSection(b, t.Audit, suffix)
	}
	if t != nil && len(t.Series) > 0 {
		writeSeriesSection(b, t, suffix)
	}
	if t != nil && len(t.Stages) > 0 {
		writeStagesSection(b, t.Stages, suffix)
	}
	writeHeatmapSection(b, d, suffix)
	if t != nil && t.Census != nil {
		writeCensusSection(b, t.Census, suffix)
	}
	if t != nil && t.Quality != nil {
		writeQualitySection(b, t.Quality, suffix)
	}
	if t != nil && t.Fault != nil {
		writeFaultSection(b, t.Fault, suffix)
	}
}

func writeSweepSection(b *strings.Builder, s *sweepSummary, suffix string) {
	openSection(b, "Sweep dashboard"+suffix,
		fmt.Sprintf("Run-lifecycle log of one exp.Runner sweep: %d Run calls over %d worker slots; singleflight dedupe resolved %d of them without simulating.",
			s.Runs, s.Workers, s.Deduped))
	writeTiles(b, []tile{
		{"runs", fnum(float64(s.Runs))},
		{"executed", fnum(float64(s.Executed))},
		{"dedup-joined", fnum(float64(s.Deduped))},
		{"errors", fnum(float64(s.Errors))},
		{"prefetch hits", fnum(float64(s.PrefetchHits))},
		{"worker occupancy", fmt.Sprintf("%.0f%%", 100*s.Timing.WorkerOccupancy)},
		{"wall (s)", fnum(s.Timing.WallSeconds)},
		{"sim cycles/s", fnum(s.Timing.CyclesPerSec)},
	})

	// Worker timeline: executed spans laid out on their slot's lane.
	var boxes []spanBox
	for _, sp := range s.Spans {
		if sp.StartedUS < 0 || sp.FinishedUS < 0 || sp.Worker < 0 {
			continue
		}
		cls := "s1"
		if sp.State == "error" {
			cls = "s2"
		}
		tip := fmt.Sprintf("%s/%s: %.3fs on worker %d (%s, %s cycles", sp.App, sp.Scheme,
			float64(sp.WallUS)/1e6, sp.Worker, sp.Origin, fnum(float64(sp.SimCycles)))
		if sp.Joins > 0 {
			tip += fmt.Sprintf(", %d joins", sp.Joins)
		}
		tip += ")"
		if sp.Err != "" {
			tip += " — " + sp.Err
		}
		boxes = append(boxes, spanBox{
			Lane: sp.Worker, Start: float64(sp.StartedUS) / 1e6, End: float64(sp.FinishedUS) / 1e6,
			Label: sp.App + "/" + sp.Scheme, Class: cls, Tip: tip,
		})
	}
	mini(b, "worker timeline (seconds; hover for the run)",
		timelineChart(s.Workers, boxes, func(i int) string { return fmt.Sprintf("worker %d", i) }))

	b.WriteString(`<div class="minis">`)
	// Run-duration CDF over executed spans.
	var walls []float64
	for _, sp := range s.Spans {
		if sp.WallUS > 0 {
			walls = append(walls, float64(sp.WallUS)/1e6)
		}
	}
	if len(walls) > 0 {
		sort.Float64s(walls)
		pts := make([]pt, 0, len(walls))
		for i, wv := range walls {
			pts = append(pts, pt{wv, float64(i+1) / float64(len(walls))})
		}
		mini(b, "run-duration CDF (seconds)", lineChart([]series{{"run wall", "ls1", pts}}, nil, nil))
	}
	// Dedupe effectiveness.
	mini(b, "dedupe effectiveness (runs by outcome)", barChart([]barRow{
		{Label: "executed", Value: float64(s.Executed), Class: "s1"},
		{Label: "dedup-joined", Value: float64(s.Deduped), Class: "s3", Note: "joined an in-flight or memoized run"},
		{Label: "· of which prefetch hits", Value: float64(s.PrefetchHits), Class: "s3", Note: "the joined flight came from a prefetch plan"},
		{Label: "errors", Value: float64(s.Errors), Class: "s2"},
	}))
	// Queue-wait histogram (µs buckets from obs.Histogram).
	if rows := histRows(s.Timing.QueueWaitHist, "s1"); len(rows) > 0 {
		mini(b, "queue-wait histogram (µs, log-linear buckets)", barChart(rows))
	}
	b.WriteString("</div>\n")

	if s.Errors > 0 {
		fmt.Fprintf(b, "<p class=\"cap\">Failed runs:</p>\n")
		var rows [][]string
		for _, sp := range s.Spans {
			if sp.State == "error" {
				rows = append(rows, []string{sp.App, sp.Scheme, sp.Origin, sp.Err})
			}
		}
		writeTable(b, []string{"app", "scheme", "origin", "error"}, rows)
	}
	b.WriteString("</section>\n")
}

func writeFaultSection(b *strings.Builder, f *faultSummary, suffix string) {
	openSection(b, "Fault injection"+suffix,
		fmt.Sprintf("Deterministic DRAM error model (seed %d, bus BER %s, weak-cell density %s): per-mode injected flips and the error they caused in the returned data.",
			f.Seed, fnum(f.BusBER), fnum(f.WeakDensity)))
	writeTiles(b, []tile{
		{"reads offered", fnum(float64(f.Reads))},
		{"corrupted reads", fnum(float64(f.CorruptedReads))},
		{"total flips", fnum(float64(f.TotalFlips))},
		{"weak rows", fnum(float64(f.WeakRows))},
		{"weak cells", fnum(float64(f.WeakCells))},
		{"digest", fmt.Sprintf("%016x", f.Digest)},
	})
	modes := []barRow{
		{Label: "activation (reduced-tRCD)", Value: float64(f.ActFlips), Class: "s2"},
		{Label: "retention (over-aged row)", Value: float64(f.RetFlips), Class: "s3"},
		{Label: "bus transient", Value: float64(f.BusFlips), Class: "s1"},
	}
	mini(b, "injected flips by mode", barChart(modes))
	if q := f.Quality; q != nil && q.Lines > 0 {
		writeTiles(b, []tile{
			{"corrupted lines scored", fnum(float64(q.Lines))},
			{"words", fnum(float64(q.Words))},
			{"mean rel error", fnum(q.MeanRelError)},
			{"rel p99", fnum(q.RelP99)},
			{"max rel error", fnum(q.MaxRelError)},
		})
		b.WriteString(`<div class="minis">`)
		mini(b, "injected relative error histogram (words)", barChart(histRows(q.RelHist, "s2")))
		mini(b, "injected absolute error histogram (words)", barChart(histRows(q.AbsHist, "s2")))
		b.WriteString("</div>\n")
	}
	b.WriteString("</section>\n")
}

func writeAuditSection(b *strings.Builder, a *auditSummary, suffix string) {
	openSection(b, "Scheduler decisions"+suffix,
		"Every DMS delay hold/expiry and AMS drop/skip the memory controllers recorded, grouped by reason.")
	writeTiles(b, []tile{
		{"decisions", fnum(float64(a.Total))},
		{"DMS delay holds", fnum(float64(a.DMSDelayHolds))},
		{"DMS delay expiries", fnum(float64(a.DMSDelayExpiries))},
		{"AMS drops", fnum(float64(a.AMSDrops))},
		{"AMS skips", fnum(float64(a.AMSSkips))},
	})
	if len(a.Reasons) > 0 {
		b.WriteString(`<div class="legend"><span><i class="s1"></i>DMS</span><span><i class="s2"></i>AMS</span></div>` + "\n")
		rows := make([]barRow, 0, len(a.Reasons))
		for _, r := range a.Reasons {
			cls := "s1"
			if r.Unit == "ams" {
				cls = "s2"
			}
			rows = append(rows, barRow{
				Label: r.Unit + " · " + r.Reason,
				Value: float64(r.Count),
				Class: cls,
				Note:  r.Kind,
			})
		}
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].Value > rows[j].Value })
		b.WriteString(barChart(rows))
	}
	b.WriteString("</section>\n")
}

func writeAdaptSection(b *strings.Builder, a *auditSummary, suffix string) {
	if len(a.Adapt) == 0 {
		return
	}
	// Adaptation is near-identical across channels; plot the lowest channel
	// present to keep each panel a single unambiguous series.
	ch := a.Adapt[0].Channel
	for _, p := range a.Adapt {
		if p.Channel < ch {
			ch = p.Channel
		}
	}
	var delay, bw, th, cov []pt
	for _, p := range a.Adapt {
		if p.Channel != ch {
			continue
		}
		x := float64(p.Cycle)
		switch p.Unit {
		case "dms":
			delay = append(delay, pt{x, p.Delay})
			bw = append(bw, pt{x, p.BWUtil})
		case "ams":
			th = append(th, pt{x, p.ThRBL})
			cov = append(cov, pt{x, p.Coverage})
		}
	}
	openSection(b, "Dyn adaptation"+suffix,
		fmt.Sprintf("Per-window controller state on channel %d (one point per profile window).", ch))
	b.WriteString(`<div class="minis">`)
	if len(delay) > 0 {
		mini(b, "DMS delay (mem cycles)", lineChart([]series{{"DMS delay", "ls1", delay}}, nil, nil))
		mini(b, "DMS window BW utilisation", lineChart([]series{{"BW util", "ls1", bw}}, nil, nil))
	}
	if len(th) > 0 {
		mini(b, "AMS thRBL", lineChart([]series{{"thRBL", "ls2", th}}, nil, nil))
		mini(b, "AMS running coverage", lineChart([]series{{"coverage", "ls2", cov}}, nil, nil))
	}
	b.WriteString("</div>\n</section>\n")
}

func writeSeriesSection(b *strings.Builder, t *telemetry, suffix string) {
	var ipc, bw, occ []pt
	for _, s := range t.Series {
		x := float64(s.MemCycle)
		ipc = append(ipc, pt{x, s.IPC})
		bw = append(bw, pt{x, s.BWUtil})
		occ = append(occ, pt{x, s.QueueOcc})
	}
	openSection(b, "Time series"+suffix,
		fmt.Sprintf("Sampled every %d mem cycles over the run (x axis: mem cycle).", t.SampleEvery))
	b.WriteString(`<div class="minis">`)
	mini(b, "IPC", lineChart([]series{{"IPC", "ls1", ipc}}, nil, nil))
	mini(b, "BW utilisation", lineChart([]series{{"BW util", "ls1", bw}}, nil, nil))
	mini(b, "queue occupancy", lineChart([]series{{"queue occ", "ls1", occ}}, nil, nil))
	b.WriteString("</div>\n</section>\n")
}

func writeStagesSection(b *strings.Builder, stages []stageSummary, suffix string) {
	openSection(b, "Request latency by stage"+suffix,
		"Empirical CDF per lifecycle stage from the traced quantiles (x axis: latency in the stage's clock, log scale).")
	xf := func(x float64) string { return fnum(math.Pow(10, x)) }
	b.WriteString(`<div class="minis">`)
	for _, st := range stages {
		if st.Count == 0 {
			continue
		}
		lg := func(v float64) float64 { return math.Log10(math.Max(v, 0.5)) }
		ps := []pt{{lg(st.P50), 0.50}, {lg(st.P90), 0.90}, {lg(st.P99), 0.99}, {lg(st.Max), 1.0}}
		cap := fmt.Sprintf("%s (%s cycles, n=%d, mean %s)", st.Stage, st.Clock, st.Count, fnum(st.Mean))
		mini(b, cap, lineChart([]series{{st.Stage, "ls1", ps}}, xf, nil))
	}
	b.WriteString("</div>\n</section>\n")
}

func writeHeatmapSection(b *strings.Builder, d *Doc, suffix string) {
	if len(d.EnergyByChannel) == 0 {
		return
	}
	matrix := func(get func(bankEnergy) float64) ([][]float64, bool) {
		out := make([][]float64, len(d.EnergyByChannel))
		any := false
		for i, ce := range d.EnergyByChannel {
			out[i] = make([]float64, len(ce.Banks))
			for j, be := range ce.Banks {
				out[i][j] = get(be)
				if out[i][j] > 0 {
					any = true
				}
			}
		}
		return out, any
	}
	rl := func(i int) string { return fmt.Sprintf("ch%d", d.EnergyByChannel[i].Channel) }
	cl := func(j int) string { return fmt.Sprintf("b%d", j) }
	openSection(b, "Bank heatmaps"+suffix,
		"Per-bank attribution across channels; darker is more.")
	b.WriteString(`<div class="minis">`)
	if m, ok := matrix(func(be bankEnergy) float64 { return be.RowNJ }); ok {
		mini(b, "row energy (nJ)", heatmap(m, rl, cl, "nJ"))
	}
	if m, ok := matrix(func(be bankEnergy) float64 { return float64(be.DMSDelayCycles) }); ok {
		mini(b, "DMS delay cycles", heatmap(m, rl, cl, "cycles"))
	}
	if m, ok := matrix(func(be bankEnergy) float64 { return float64(be.AMSDrops) }); ok {
		mini(b, "AMS dropped reads", heatmap(m, rl, cl, "drops"))
	}
	if m, ok := matrix(func(be bankEnergy) float64 { return float64(be.RowConflicts) }); ok {
		mini(b, "row conflicts", heatmap(m, rl, cl, "conflicts"))
	}
	b.WriteString("</div>\n</section>\n")
}

func bucketLabel(bk errBucket) string {
	if bk.Lo == 0 && bk.Hi == 0 {
		return "exact"
	}
	if bk.Lo == 0 {
		return "< " + fe(bk.Hi)
	}
	return fe(bk.Lo) + " – " + fe(bk.Hi)
}

func fe(v float64) string {
	if math.IsInf(v, 1) {
		return "∞"
	}
	return strings.Replace(fmt.Sprintf("%.0e", v), "e-0", "e-", 1)
}

func histRows(hs []errBucket, cls string) []barRow {
	rows := make([]barRow, 0, len(hs))
	for _, bk := range hs {
		if bk.Count == 0 {
			continue
		}
		rows = append(rows, barRow{Label: bucketLabel(bk), Value: float64(bk.Count), Class: cls})
	}
	return rows
}

func writeQualitySection(b *strings.Builder, q *qualitySummary, suffix string) {
	openSection(b, "Approximation quality"+suffix,
		"Predicted line values vs ground-truth memory image for every AMS-dropped read (float32 words).")
	writeTiles(b, []tile{
		{"dropped lines scored", fnum(float64(q.Lines))},
		{"words", fnum(float64(q.Words))},
		{"mean rel error", fnum(q.MeanRelError)},
		{"rel p50", fnum(q.RelP50)},
		{"rel p90", fnum(q.RelP90)},
		{"rel p99", fnum(q.RelP99)},
		{"max rel error", fnum(q.MaxRelError)},
	})
	b.WriteString(`<div class="minis">`)
	mini(b, "relative error histogram (words)", barChart(histRows(q.RelHist, "s1")))
	mini(b, "absolute error histogram (words)", barChart(histRows(q.AbsHist, "s1")))
	b.WriteString("</div>\n")
	if len(q.Worst) > 0 {
		fmt.Fprintf(b, "<p class=\"cap\">Worst-offending lines by mean relative error:</p>\n")
		var rows [][]string
		for _, w := range q.Worst {
			rows = append(rows, []string{
				fmt.Sprintf("0x%x", w.Addr), fnum(float64(w.Cycle)), fnum(float64(w.Words)),
				fnum(w.MeanAbs), fnum(w.MeanRel), fnum(w.MaxRel),
			})
		}
		writeTable(b, []string{"line addr", "cycle", "words", "mean abs", "mean rel", "max rel"}, rows)
	}
	b.WriteString("</section>\n")
}

// --- cycle census -----------------------------------------------------------

func writeCensusSection(b *strings.Builder, c *censusSummary, suffix string) {
	openSection(b, "Cycle census"+suffix,
		"Exact latency provenance: every retired request's queue+service cycles charged to one stall cause, every bank-cycle classified into one residency state, and the partition-cycle census that sizes event-driven skip-ahead (ROADMAP item 2).")
	if c.InvariantError != "" {
		fmt.Fprintf(b, "<p class=\"cap\">⚠ Σ-invariant violation: %s</p>\n", esc(c.InvariantError))
	}
	writeTiles(b, []tile{
		{"requests", fnum(float64(c.Requests))},
		{"latency cycles", fnum(float64(c.LatencyCycles))},
		{"attributed cycles", fnum(float64(c.AttributedCycles))},
		{"skippable fraction", fmt.Sprintf("%.1f%%", 100*c.SkippableFrac)},
		{"gap p50 / p99 (cycles)", fmt.Sprintf("%s / %s", fnum(float64(c.GapP50)), fnum(float64(c.GapP99)))},
		{"max gap", fnum(float64(c.GapMax))},
	})

	// Stall-cause stacked bars: machine-wide decomposition on top, one bar
	// per channel below, segments in taxonomy order so colors line up.
	if len(c.Stalls) > 0 {
		causeClass := make(map[string]string, len(c.Stalls))
		var legend strings.Builder
		legend.WriteString(`<div class="legend">`)
		for i, st := range c.Stalls {
			cls := fmt.Sprintf("q%d", (i*11/max(1, len(c.Stalls)-1))+1)
			causeClass[st.Cause] = cls
			fmt.Fprintf(&legend, `<span><i class="%s"></i>%s</span>`, cls, esc(st.Cause))
		}
		legend.WriteString("</div>\n")
		rows := []stackRow{machineStallRow(c, causeClass)}
		for _, ch := range c.Channels {
			row := stackRow{Label: fmt.Sprintf("ch%d", ch.Channel)}
			for _, st := range c.Stalls { // taxonomy order, not map order
				if v := ch.StallCycles[st.Cause]; v > 0 {
					row.Segs = append(row.Segs, stackSeg{Name: st.Cause, Value: float64(v), Class: causeClass[st.Cause]})
				}
			}
			rows = append(rows, row)
		}
		b.WriteString(legend.String())
		mini(b, "stall-cause decomposition (cycles; every bar sums to its requests' measured latency)", stackedBar(rows))
	}

	b.WriteString(`<div class="minis">`)
	// Bank-residency heatmap: one row per channel·bank, one column per state.
	states := []string{"serving", "dms_held", "timing_wait", "open_idle", "precharging", "idle"}
	var vals [][]float64
	var rowLabels []string
	for _, ch := range c.Channels {
		for _, bk := range ch.Banks {
			rowLabels = append(rowLabels, fmt.Sprintf("ch%d·b%d", ch.Channel, bk.Bank))
			vals = append(vals, []float64{
				float64(bk.Serving), float64(bk.DMSHeld), float64(bk.TimingWait),
				float64(bk.OpenIdle), float64(bk.Precharging), float64(bk.Idle),
			})
		}
	}
	if len(vals) > 0 {
		mini(b, "bank state residency (cycles; each row sums to the elapsed bank-cycles)",
			heatmap(vals, func(i int) string { return rowLabels[i] },
				func(j int) string { return states[j] }, "cycles"))
	}
	// Partition-cycle census and the skip-ahead gap histogram.
	mini(b, "partition-cycle census", barChart([]barRow{
		{Label: "advancing", Value: float64(c.Advancing), Class: "s1", Note: "an architectural event happened"},
		{Label: "timing-wait (skippable)", Value: float64(c.TimingWait), Class: "s2", Note: "work pending, nothing could change — an event-driven loop skips these"},
		{Label: "fully idle", Value: float64(c.Idle), Class: "s3"},
	}))
	if rows := histRows(c.GapHist, "s2"); len(rows) > 0 {
		mini(b, fmt.Sprintf("next-event gap histogram (cycles per skip; mean %s)", fnum(c.GapMean)), barChart(rows))
	}
	b.WriteString("</div>\n")

	if in := c.Ingress; in != nil && in.MSHRFull+in.MergeLimit+in.QueueFull > 0 {
		fmt.Fprintf(b, "<p class=\"cap\">Ingress backpressure (core-cycle retries at the partition boundary, outside the mem-side invariant):</p>\n")
		writeTable(b, []string{"mshr full", "merge limit", "queue full"}, [][]string{{
			fnum(float64(in.MSHRFull)), fnum(float64(in.MergeLimit)), fnum(float64(in.QueueFull)),
		}})
	}
	if c.Host != nil {
		writeHostPhases(b, c.Host)
	}
	b.WriteString("</section>\n")
}

// machineStallRow builds the machine-wide stacked decomposition row.
func machineStallRow(c *censusSummary, causeClass map[string]string) stackRow {
	row := stackRow{Label: "machine"}
	for _, st := range c.Stalls {
		if st.Cycles > 0 {
			row.Segs = append(row.Segs, stackSeg{Name: st.Cause, Value: float64(st.Cycles), Class: causeClass[st.Cause]})
		}
	}
	return row
}

// writeHostPhases renders the host-side phase profile: where the simulator
// process itself spends wall time, sampled every SampleEvery ticks.
func writeHostPhases(b *strings.Builder, hp *censusHost) {
	fmt.Fprintf(b, "<p class=\"cap\">Host phase profile (wall time, sampled every %d ticks — not simulated time, excluded from determinism gates):</p>\n", hp.SampleEvery)
	perTick := func(ns, ticks uint64) string {
		if ticks == 0 {
			return "–"
		}
		return fnum(float64(ns)/float64(ticks)) + " ns"
	}
	writeTiles(b, []tile{
		{"core tick (mean)", perTick(hp.CoreNS, hp.CoreTicks)},
		{"mem tick (mean)", perTick(hp.MemNS, hp.MemTicks)},
		{"probe/publish (mean)", perTick(hp.ProbeNS, hp.ProbeTicks)},
	})
	if len(hp.Workers) == 0 {
		return
	}
	// Shard phase strip: each worker's sampled dispatch time split into busy
	// (ticking its partitions) and barrier wait (dispatch wall minus busy).
	rows := make([]stackRow, 0, len(hp.Workers))
	var trows [][]string
	for _, w := range hp.Workers {
		rows = append(rows, stackRow{
			Label: fmt.Sprintf("worker %d", w.Worker),
			Segs: []stackSeg{
				{Name: "busy", Value: float64(w.BusyNS) / 1e6, Class: "s1"},
				{Name: "barrier wait", Value: float64(w.BarrierNS) / 1e6, Class: "s2"},
			},
		})
		trows = append(trows, []string{
			fmt.Sprintf("worker %d", w.Worker), fnum(float64(w.Dispatches)),
			fnum(float64(w.BusyNS) / 1e6), fnum(float64(w.BarrierNS) / 1e6),
			fmt.Sprintf("%.0f%%", 100*w.BusyFrac),
		})
	}
	b.WriteString(`<div class="legend"><span><i class="s1"></i>busy</span><span><i class="s2"></i>barrier wait</span></div>` + "\n")
	mini(b, "shard worker phases (ms across sampled dispatches)", stackedBar(rows))
	writeTable(b, []string{"worker", "dispatches", "busy (ms)", "barrier (ms)", "busy"}, trows)
}

// --- two-document comparison ------------------------------------------------

func writeComparison(b *strings.Builder, a, c *Doc) {
	openSection(b, "Comparison", fmt.Sprintf("A = %s, B = %s; Δ%% is relative to A.", a.title(), c.title()))
	type metric struct {
		name string
		get  func(*Doc) float64
	}
	metrics := []metric{
		{"IPC", func(d *Doc) float64 { return d.IPC }},
		{"BW utilisation", func(d *Doc) float64 { return d.BWUtil }},
		{"AMS coverage", func(d *Doc) float64 { return d.Coverage }},
		{"app error", func(d *Doc) float64 { return d.AppError }},
		{"row energy (nJ)", func(d *Doc) float64 { return d.RowEnergyNJ }},
		{"mem energy (nJ)", func(d *Doc) float64 { return d.MemEnergyNJ }},
		{"activations", func(d *Doc) float64 { return float64(d.Activations) }},
		{"dropped reads", func(d *Doc) float64 { return float64(d.Dropped) }},
		{"avg RBL", func(d *Doc) float64 { return d.AvgRBL }},
		{"queue occupancy", func(d *Doc) float64 { return d.QueueOcc }},
		{"mean delay", func(d *Doc) float64 { return d.MeanDelay }},
		{"mean thRBL", func(d *Doc) float64 { return d.MeanThRBL }},
	}
	var rows [][]string
	for _, m := range metrics {
		va, vb := m.get(a), m.get(c)
		delta := "–"
		if va != 0 && !math.IsNaN(va) && !math.IsNaN(vb) {
			delta = fmt.Sprintf("%+.2f%%", (vb-va)/math.Abs(va)*100)
		}
		rows = append(rows, []string{m.name, fnum(va), fnum(vb), delta})
	}
	writeTable(b, []string{"metric", "A", "B", "Δ%"}, rows)

	// Decision-reason counts side by side when both documents carry an audit.
	ra, rb := auditReasonMap(a), auditReasonMap(c)
	if len(ra) > 0 || len(rb) > 0 {
		keys := make(map[string]bool)
		for k := range ra {
			keys[k] = true
		}
		for k := range rb {
			keys[k] = true
		}
		sorted := make([]string, 0, len(keys))
		for k := range keys {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		var rrows [][]string
		for _, k := range sorted {
			rrows = append(rrows, []string{k, fnum(float64(ra[k])), fnum(float64(rb[k]))})
		}
		b.WriteString("<p class=\"cap\">Decision reasons:</p>\n")
		writeTable(b, []string{"unit · reason", "A", "B"}, rrows)
	}
	b.WriteString("</section>\n")
}

func auditReasonMap(d *Doc) map[string]uint64 {
	out := map[string]uint64{}
	if d.Telemetry == nil || d.Telemetry.Audit == nil {
		return out
	}
	for _, r := range d.Telemetry.Audit.Reasons {
		out[r.Unit+" · "+r.Reason] = r.Count
	}
	return out
}
