package report

import (
	"fmt"
	"strings"
	"testing"
)

// TestTimelineChart: lanes render in [0, lanes), out-of-range boxes are
// dropped, and an empty input renders nothing.
func TestTimelineChart(t *testing.T) {
	if got := timelineChart(2, nil, func(int) string { return "w" }); got != "" {
		t.Errorf("empty timeline rendered %q", got)
	}
	svg := timelineChart(2, []spanBox{
		{Lane: 0, Start: 0, End: 1, Label: "a", Class: "s1"},
		{Lane: 1, Start: 0.5, End: 2, Label: "b", Class: "s1"},
		{Lane: 7, Start: 0, End: 1, Label: "out-of-range", Class: "s1"},
	}, func(i int) string { return fmt.Sprintf("worker %d", i) })
	for _, want := range []string{"worker 0", "worker 1", "<rect"} {
		if !strings.Contains(svg, want) {
			t.Errorf("timeline missing %q", want)
		}
	}
	if strings.Contains(svg, "out-of-range") {
		t.Error("timeline rendered a box on a lane beyond the worker count")
	}
}

// TestStackedBar: segments render proportionally with tooltips; empty input
// renders nothing.
func TestStackedBar(t *testing.T) {
	if got := stackedBar(nil); got != "" {
		t.Errorf("empty stacked bar rendered %q", got)
	}
	svg := stackedBar([]stackRow{
		{Label: "machine", Segs: []stackSeg{
			{Name: "queued", Value: 60, Class: "q1"},
			{Name: "trcd", Value: 40, Class: "q5"},
			{Name: "zero", Value: 0, Class: "q9"},
		}},
	})
	for _, want := range []string{"machine", "queued", "trcd", "60.0%", "<rect"} {
		if !strings.Contains(svg, want) {
			t.Errorf("stacked bar missing %q", want)
		}
	}
	if strings.Contains(svg, "zero") {
		t.Error("zero-width segment rendered")
	}
}
