// Package report renders lazysim -json run documents (and sweep documents)
// into a single self-contained HTML page: run summary, scheduler
// decision-reason breakdown, adaptation timelines, latency CDFs, bank
// heatmaps, quality histograms, sweep dashboard, with an optional
// side-by-side comparison. The page embeds every byte it needs — no scripts,
// no external assets, zero network fetches — so it can be archived next to
// the JSON it was built from, or served on demand by the lazyd daemon.
//
// The structs below mirror the subset of the lazysim -json document the
// report consumes; unknown fields are ignored so newer documents keep
// rendering.
package report

import (
	"encoding/json"
	"fmt"
	"os"
)

// Doc is one parsed run document. Construct it with Load or Parse.
type Doc struct {
	Path string `json:"-"`

	App          string  `json:"app"`
	Scheme       string  `json:"scheme"`
	Seed         int64   `json:"seed"`
	CoreCycles   uint64  `json:"core_cycles"`
	Instructions uint64  `json:"instructions"`
	IPC          float64 `json:"ipc"`

	Activations uint64  `json:"activations"`
	Reads       uint64  `json:"reads"`
	Writes      uint64  `json:"writes"`
	AvgRBL      float64 `json:"avg_rbl"`
	BWUtil      float64 `json:"bwutil"`
	Coverage    float64 `json:"coverage"`
	Dropped     uint64  `json:"dropped"`
	QueueOcc    float64 `json:"queue_occ"`

	RowEnergyNJ float64 `json:"row_energy_nj"`
	MemEnergyNJ float64 `json:"mem_energy_nj"`
	AppError    float64 `json:"app_error"`

	FinalDelay int     `json:"final_delay"`
	FinalThRBL int     `json:"final_th_rbl"`
	MeanDelay  float64 `json:"mean_delay"`
	MeanThRBL  float64 `json:"mean_th_rbl"`

	EnergyByChannel []chEnergy `json:"energy_by_channel"`
	Telemetry       *telemetry `json:"telemetry"`

	// Sweep is the run-lifecycle summary block of a lazysim -sweep -json or
	// experiments -runlog document; its presence switches on the sweep
	// dashboard section.
	Sweep *sweepSummary `json:"sweep"`
}

type sweepSummary struct {
	Runs         int    `json:"runs"`
	Executed     int    `json:"executed"`
	Deduped      int    `json:"deduped"`
	Errors       int    `json:"errors"`
	PrefetchHits int    `json:"prefetch_hits"`
	Events       int    `json:"events"`
	Workers      int    `json:"workers"`
	SimCycles    uint64 `json:"sim_cycles"`

	Timing sweepTiming `json:"timing"`
	Spans  []sweepSpan `json:"spans"`
}

type sweepTiming struct {
	WallSeconds         float64     `json:"wall_seconds"`
	RunMeanSeconds      float64     `json:"run_mean_seconds"`
	RunP50Seconds       float64     `json:"run_p50_seconds"`
	RunP99Seconds       float64     `json:"run_p99_seconds"`
	RunMaxSeconds       float64     `json:"run_max_seconds"`
	QueueWaitP50Seconds float64     `json:"queue_wait_p50_seconds"`
	QueueWaitP99Seconds float64     `json:"queue_wait_p99_seconds"`
	QueueWaitMaxSeconds float64     `json:"queue_wait_max_seconds"`
	WorkerOccupancy     float64     `json:"worker_occupancy"`
	CyclesPerSec        float64     `json:"cycles_per_sec"`
	AllocBytes          uint64      `json:"alloc_bytes"`
	Mallocs             uint64      `json:"mallocs"`
	QueueWaitHist       []errBucket `json:"queue_wait_hist"`
}

type sweepSpan struct {
	ID       int    `json:"id"`
	App      string `json:"app"`
	Scheme   string `json:"scheme"`
	Origin   string `json:"origin"`
	State    string `json:"state"`
	Worker   int    `json:"worker"`
	Target   int    `json:"target"`
	Prefetch bool   `json:"prefetch_hit"`
	Err      string `json:"err"`

	SubmittedUS int64 `json:"submitted_us"`
	StartedUS   int64 `json:"started_us"`
	FinishedUS  int64 `json:"finished_us"`
	QueueWaitUS int64 `json:"queue_wait_us"`
	WallUS      int64 `json:"wall_us"`

	SimCycles    uint64  `json:"sim_cycles"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
	Joins        int     `json:"joins"`
}

type chEnergy struct {
	Channel int          `json:"channel"`
	RowNJ   float64      `json:"row_nj"`
	TotalNJ float64      `json:"total_nj"`
	Banks   []bankEnergy `json:"banks"`
}

type bankEnergy struct {
	Bank           int     `json:"bank"`
	RowNJ          float64 `json:"row_nj"`
	Activations    uint64  `json:"activations"`
	RowHits        uint64  `json:"row_hits"`
	RowConflicts   uint64  `json:"row_conflicts"`
	DMSDelayCycles uint64  `json:"dms_delay_cycles"`
	AMSDrops       uint64  `json:"ams_drops"`
}

type telemetry struct {
	Stages      []stageSummary  `json:"stages"`
	SampleEvery uint64          `json:"sample_every"`
	Series      []sample        `json:"series"`
	Audit       *auditSummary   `json:"audit"`
	Quality     *qualitySummary `json:"quality"`
	Fault       *faultSummary   `json:"fault"`
	Census      *censusSummary  `json:"census"`
}

// censusSummary mirrors obs.CensusSummary: the -census cycle census with its
// stall-cause decomposition, bank state residency, skip-ahead opportunity
// profile, and host-side phase timings.
type censusSummary struct {
	Requests         uint64        `json:"requests"`
	LatencyCycles    uint64        `json:"latency_cycles"`
	AttributedCycles uint64        `json:"attributed_cycles"`
	Stalls           []censusStall `json:"stalls"`

	BankCycles uint64        `json:"bank_cycles"`
	Residency  []censusState `json:"residency"`

	PartCycles    uint64  `json:"partition_cycles"`
	Advancing     uint64  `json:"advancing"`
	TimingWait    uint64  `json:"timing_wait"`
	Idle          uint64  `json:"idle"`
	SkippableFrac float64 `json:"skippable_frac"`

	GapCount uint64      `json:"gap_count"`
	GapMean  float64     `json:"gap_mean"`
	GapP50   uint64      `json:"gap_p50"`
	GapP90   uint64      `json:"gap_p90"`
	GapP99   uint64      `json:"gap_p99"`
	GapMax   uint64      `json:"gap_max"`
	GapHist  []errBucket `json:"gap_hist"`

	Ingress  *censusIngress  `json:"ingress"`
	Channels []censusChannel `json:"channels"`
	Host     *censusHost     `json:"host"`

	InvariantError string `json:"invariant_error"`
}

type censusStall struct {
	Cause    string  `json:"cause"`
	Cycles   uint64  `json:"cycles"`
	Share    float64 `json:"share"`
	Requests uint64  `json:"requests"`
	Mean     float64 `json:"mean"`
	P99      uint64  `json:"p99"`
	Max      uint64  `json:"max"`
}

type censusState struct {
	State  string  `json:"state"`
	Cycles uint64  `json:"cycles"`
	Share  float64 `json:"share"`
}

type censusIngress struct {
	MSHRFull   uint64 `json:"mshr_full"`
	MergeLimit uint64 `json:"merge_limit"`
	QueueFull  uint64 `json:"queue_full"`
}

type censusChannel struct {
	Channel       int               `json:"channel"`
	Requests      uint64            `json:"requests"`
	LatencyCycles uint64            `json:"latency_cycles"`
	SkippableFrac float64           `json:"skippable_frac"`
	StallCycles   map[string]uint64 `json:"stall_cycles"`
	Banks         []censusBank      `json:"banks"`
}

type censusBank struct {
	Bank        int    `json:"bank"`
	Serving     uint64 `json:"serving"`
	DMSHeld     uint64 `json:"dms_held"`
	TimingWait  uint64 `json:"timing_wait"`
	OpenIdle    uint64 `json:"open_idle"`
	Precharging uint64 `json:"precharging"`
	Idle        uint64 `json:"idle"`
}

type censusHost struct {
	SampleEvery uint64         `json:"sample_every"`
	CoreTicks   uint64         `json:"core_ticks_sampled"`
	CoreNS      uint64         `json:"core_ns"`
	MemTicks    uint64         `json:"mem_ticks_sampled"`
	MemNS       uint64         `json:"mem_ns"`
	ProbeTicks  uint64         `json:"probe_ticks_sampled"`
	ProbeNS     uint64         `json:"probe_ns"`
	Workers     []censusWorker `json:"workers"`
}

type censusWorker struct {
	Worker     int     `json:"worker"`
	Dispatches uint64  `json:"dispatches"`
	BusyNS     uint64  `json:"busy_ns"`
	BarrierNS  uint64  `json:"barrier_ns"`
	BusyFrac   float64 `json:"busy_frac"`
}

type faultSummary struct {
	Seed        int64   `json:"seed"`
	BusBER      float64 `json:"bus_ber"`
	WeakDensity float64 `json:"weak_density"`

	Reads          uint64 `json:"reads"`
	CorruptedReads uint64 `json:"corrupted_reads"`
	ActFlips       uint64 `json:"act_flips"`
	RetFlips       uint64 `json:"ret_flips"`
	BusFlips       uint64 `json:"bus_flips"`
	TotalFlips     uint64 `json:"total_flips"`
	WeakRows       uint64 `json:"weak_rows"`
	WeakCells      uint64 `json:"weak_cells"`
	Digest         uint64 `json:"digest"`

	Quality *qualitySummary `json:"quality"`
}

type stageSummary struct {
	Stage string  `json:"stage"`
	Clock string  `json:"clock"`
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

type sample struct {
	MemCycle uint64  `json:"mem_cycle"`
	IPC      float64 `json:"ipc"`
	BWUtil   float64 `json:"bwutil"`
	QueueOcc float64 `json:"queue_occ"`
	Delay    float64 `json:"delay"`
	ThRBL    float64 `json:"th_rbl"`
}

type auditSummary struct {
	Total            uint64        `json:"total"`
	DMSDelayHolds    uint64        `json:"dms_delay_holds"`
	DMSDelayExpiries uint64        `json:"dms_delay_expiries"`
	AMSDrops         uint64        `json:"ams_drops"`
	AMSSkips         uint64        `json:"ams_skips"`
	Reasons          []reasonCount `json:"reasons"`
	Adapt            []adaptPoint  `json:"adapt"`
}

type reasonCount struct {
	Unit   string `json:"unit"`
	Kind   string `json:"kind"`
	Reason string `json:"reason"`
	Count  uint64 `json:"count"`
}

type adaptPoint struct {
	Cycle    uint64  `json:"cycle"`
	Channel  int     `json:"channel"`
	Unit     string  `json:"unit"`
	Delay    float64 `json:"delay"`
	BWUtil   float64 `json:"bwutil"`
	ThRBL    float64 `json:"th_rbl"`
	Coverage float64 `json:"coverage"`
}

type qualitySummary struct {
	Lines        uint64          `json:"lines"`
	Words        uint64          `json:"words"`
	SkippedWords uint64          `json:"skipped_words"`
	MeanAbsError float64         `json:"mean_abs_error"`
	MeanRelError float64         `json:"mean_rel_error"`
	RelP50       float64         `json:"rel_p50"`
	RelP90       float64         `json:"rel_p90"`
	RelP99       float64         `json:"rel_p99"`
	MaxRelError  float64         `json:"max_rel_error"`
	AbsHist      []errBucket     `json:"abs_hist"`
	RelHist      []errBucket     `json:"rel_hist"`
	Worst        []worstOffender `json:"worst"`
}

type errBucket struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Count uint64  `json:"count"`
}

type worstOffender struct {
	Addr    uint64  `json:"addr"`
	Cycle   uint64  `json:"cycle"`
	Words   int     `json:"words"`
	MeanAbs float64 `json:"mean_abs"`
	MeanRel float64 `json:"mean_rel"`
	MaxRel  float64 `json:"max_rel"`
}

// Parse decodes one run document from raw JSON bytes; path labels the
// document in error messages and section headers.
func Parse(raw []byte, path string) (*Doc, error) {
	d := &Doc{Path: path}
	if err := json.Unmarshal(raw, d); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// Load reads and parses the run document at path.
func Load(path string) (*Doc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(raw, path)
}

// title names the run for section headers.
func (d *Doc) title() string {
	if d.App == "" && d.Scheme == "" {
		return d.Path
	}
	return fmt.Sprintf("%s · %s (seed %d)", d.App, d.Scheme, d.Seed)
}
