package report

// Hand-rolled inline SVG charts. Everything renders into static markup with
// CSS-class styling (classes resolve to custom properties declared in the
// page <style>, so the same SVG adapts to light and dark). Native <title>
// elements provide hover tooltips without a line of script.

import (
	"fmt"
	"html"
	"math"
	"strconv"
	"strings"
)

func esc(s string) string { return html.EscapeString(s) }

// fnum renders a value compactly: integers plainly, everything else with
// four significant digits.
func fnum(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "–"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e12 {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}

// axisMax rounds v up to a 1/2/5 × 10^k "nice" bound for a y axis.
func axisMax(v float64) float64 {
	if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 1
	}
	exp := math.Floor(math.Log10(v))
	base := math.Pow(10, exp)
	for _, m := range []float64{1, 2, 5, 10} {
		if m*base >= v {
			return m * base
		}
	}
	return 10 * base
}

// --- horizontal bar chart ---------------------------------------------------

type barRow struct {
	Label string
	Value float64
	Class string // series class: s1, s2, s3
	Note  string // extra tooltip text
}

func barChart(rows []barRow) string {
	if len(rows) == 0 {
		return ""
	}
	const (
		labelW = 190.0
		plotW  = 430.0
		valW   = 80.0
		rowH   = 26.0
		barH   = 14.0
	)
	maxV := 0.0
	for _, r := range rows {
		if r.Value > maxV {
			maxV = r.Value
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	w := labelW + plotW + valW
	h := rowH * float64(len(rows))
	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %g %g" width="%g" height="%g" role="img">`, w, h, w, h)
	// baseline
	fmt.Fprintf(&b, `<line class="axis" x1="%g" y1="0" x2="%g" y2="%g"/>`, labelW, labelW, h)
	for i, r := range rows {
		y := float64(i) * rowH
		bw := r.Value / maxV * plotW
		if r.Value > 0 && bw < 1 {
			bw = 1
		}
		fmt.Fprintf(&b, `<text class="lbl" x="%g" y="%g" text-anchor="end">%s</text>`,
			labelW-8, y+rowH/2+4, esc(r.Label))
		tip := fmt.Sprintf("%s: %s", r.Label, fnum(r.Value))
		if r.Note != "" {
			tip += " — " + r.Note
		}
		fmt.Fprintf(&b, `<rect class="bar %s" x="%g" y="%g" width="%g" height="%g" rx="2"><title>%s</title></rect>`,
			r.Class, labelW, y+(rowH-barH)/2, bw, barH, esc(tip))
		fmt.Fprintf(&b, `<text class="val" x="%g" y="%g">%s</text>`,
			labelW+bw+6, y+rowH/2+4, fnum(r.Value))
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// --- stacked horizontal bars ------------------------------------------------

// stackSeg is one segment of a stacked bar.
type stackSeg struct {
	Name  string
	Value float64
	Class string // fill class: s1..s3 or q0..q11
}

// stackRow is one stacked bar: its segments render left to right in order,
// scaled against the largest row total so rows stay comparable.
type stackRow struct {
	Label string
	Segs  []stackSeg
}

func stackedBar(rows []stackRow) string {
	if len(rows) == 0 {
		return ""
	}
	const (
		labelW = 90.0
		plotW  = 530.0
		valW   = 80.0
		rowH   = 26.0
		barH   = 16.0
	)
	maxT := 0.0
	for _, r := range rows {
		t := 0.0
		for _, s := range r.Segs {
			t += s.Value
		}
		if t > maxT {
			maxT = t
		}
	}
	if maxT == 0 {
		return ""
	}
	w := labelW + plotW + valW
	h := rowH * float64(len(rows))
	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %g %g" width="%g" height="%g" role="img">`, w, h, w, h)
	fmt.Fprintf(&b, `<line class="axis" x1="%g" y1="0" x2="%g" y2="%g"/>`, labelW, labelW, h)
	for i, r := range rows {
		y := float64(i) * rowH
		fmt.Fprintf(&b, `<text class="lbl" x="%g" y="%g" text-anchor="end">%s</text>`,
			labelW-8, y+rowH/2+4, esc(r.Label))
		total := 0.0
		for _, s := range r.Segs {
			total += s.Value
		}
		x := labelW
		for _, s := range r.Segs {
			if s.Value <= 0 {
				continue
			}
			sw := s.Value / maxT * plotW
			tip := fmt.Sprintf("%s · %s: %s (%.1f%%)", r.Label, s.Name, fnum(s.Value), 100*s.Value/total)
			fmt.Fprintf(&b, `<rect class="%s" x="%g" y="%g" width="%g" height="%g"><title>%s</title></rect>`,
				s.Class, x, y+(rowH-barH)/2, sw, barH, esc(tip))
			x += sw
		}
		fmt.Fprintf(&b, `<text class="val" x="%g" y="%g">%s</text>`,
			x+6, y+rowH/2+4, fnum(total))
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// --- line chart -------------------------------------------------------------

type pt struct{ X, Y float64 }

type series struct {
	Name  string
	Class string // ls1, ls2, ls3
	Pts   []pt
}

// lineChart plots one or more series over a shared linear x domain.
// xFmt/yFmt format tick labels (nil → fnum).
func lineChart(ss []series, xFmt, yFmt func(float64) string) string {
	const (
		w, h           = 560.0, 200.0
		ml, mr, mt, mb = 54.0, 16.0, 10.0, 28.0
	)
	if xFmt == nil {
		xFmt = fnum
	}
	if yFmt == nil {
		yFmt = fnum
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymax := 0.0
	n := 0
	for _, s := range ss {
		for _, p := range s.Pts {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
				continue
			}
			n++
			xmin = math.Min(xmin, p.X)
			xmax = math.Max(xmax, p.X)
			ymax = math.Max(ymax, p.Y)
		}
	}
	if n == 0 {
		return ""
	}
	if xmax <= xmin {
		xmax = xmin + 1
	}
	ymax = axisMax(ymax)
	sx := func(x float64) float64 { return ml + (x-xmin)/(xmax-xmin)*(w-ml-mr) }
	sy := func(y float64) float64 { return h - mb - y/ymax*(h-mt-mb) }
	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %g %g" width="%g" height="%g" role="img">`, w, h, w, h)
	for i := 0; i <= 4; i++ {
		y := ymax * float64(i) / 4
		cls := "grid"
		if i == 0 {
			cls = "axis"
		}
		fmt.Fprintf(&b, `<line class="%s" x1="%g" y1="%g" x2="%g" y2="%g"/>`, cls, ml, sy(y), w-mr, sy(y))
		fmt.Fprintf(&b, `<text class="tick" x="%g" y="%g" text-anchor="end">%s</text>`, ml-6, sy(y)+4, esc(yFmt(y)))
	}
	for i := 0; i <= 4; i++ {
		x := xmin + (xmax-xmin)*float64(i)/4
		anchor := "middle"
		if i == 0 {
			anchor = "start"
		} else if i == 4 {
			anchor = "end"
		}
		fmt.Fprintf(&b, `<text class="tick" x="%g" y="%g" text-anchor="%s">%s</text>`, sx(x), h-mb+16, anchor, esc(xFmt(x)))
	}
	for _, s := range ss {
		var ptsb strings.Builder
		for _, p := range s.Pts {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
				continue
			}
			fmt.Fprintf(&ptsb, "%.1f,%.1f ", sx(p.X), sy(p.Y))
		}
		fmt.Fprintf(&b, `<polyline class="line %s" points="%s"><title>%s</title></polyline>`,
			s.Class, strings.TrimSpace(ptsb.String()), esc(s.Name))
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// --- timeline ---------------------------------------------------------------

// spanBox is one slice on a timeline lane (times in seconds).
type spanBox struct {
	Lane       int
	Start, End float64
	Label      string
	Class      string // bar class: s1, s2, s3
	Tip        string // tooltip; Label+duration when empty
}

// timelineChart lays spans out on horizontal lanes (one per worker slot)
// over a shared seconds axis — a static Gantt strip of the sweep.
func timelineChart(lanes int, boxes []spanBox, laneLabel func(int) string) string {
	if lanes <= 0 || len(boxes) == 0 {
		return ""
	}
	const (
		labelW = 70.0
		plotW  = 690.0
		laneH  = 26.0
		boxH   = 16.0
		axisH  = 24.0
	)
	tmax := 0.0
	for _, bx := range boxes {
		if bx.End > tmax {
			tmax = bx.End
		}
	}
	if tmax <= 0 {
		tmax = 1
	}
	w := labelW + plotW
	h := laneH*float64(lanes) + axisH
	sx := func(t float64) float64 { return labelW + t/tmax*plotW }
	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %g %g" width="%g" height="%g" role="img">`, w, h, w, h)
	for i := 0; i < lanes; i++ {
		y := float64(i) * laneH
		fmt.Fprintf(&b, `<line class="grid" x1="%g" y1="%g" x2="%g" y2="%g"/>`,
			labelW, y+laneH, w, y+laneH)
		fmt.Fprintf(&b, `<text class="lbl" x="%g" y="%g" text-anchor="end">%s</text>`,
			labelW-8, y+laneH/2+4, esc(laneLabel(i)))
	}
	for i := 0; i <= 4; i++ {
		t := tmax * float64(i) / 4
		anchor := "middle"
		if i == 0 {
			anchor = "start"
		} else if i == 4 {
			anchor = "end"
		}
		fmt.Fprintf(&b, `<text class="tick" x="%g" y="%g" text-anchor="%s">%ss</text>`,
			sx(t), h-6, anchor, fnum(t))
	}
	fmt.Fprintf(&b, `<line class="axis" x1="%g" y1="0" x2="%g" y2="%g"/>`, labelW, labelW, h-axisH+4)
	for _, bx := range boxes {
		if bx.Lane < 0 || bx.Lane >= lanes || bx.End < bx.Start {
			continue
		}
		x := sx(bx.Start)
		bw := sx(bx.End) - x
		if bw < 1 {
			bw = 1
		}
		y := float64(bx.Lane)*laneH + (laneH-boxH)/2
		tip := bx.Tip
		if tip == "" {
			tip = fmt.Sprintf("%s: %s–%ss", bx.Label, fnum(bx.Start), fnum(bx.End))
		}
		fmt.Fprintf(&b, `<rect class="bar %s" x="%g" y="%g" width="%g" height="%g" rx="2"><title>%s</title></rect>`,
			bx.Class, x, y, bw, boxH, esc(tip))
		// Inline label only when the slice is wide enough to hold it.
		if bw > float64(len(bx.Label))*6+8 {
			fmt.Fprintf(&b, `<text class="val" x="%g" y="%g">%s</text>`,
				x+4, y+boxH-4, esc(bx.Label))
		}
	}
	b.WriteString(`</svg>`)
	return b.String()
}

// --- heatmap ----------------------------------------------------------------

const rampSteps = 12

// heatmap renders a channels × banks grid. vals is indexed [row][col];
// rowLabel/colLabel produce the axis captions; unit suffixes the tooltip.
func heatmap(vals [][]float64, rowLabel, colLabel func(int) string, unit string) string {
	if len(vals) == 0 || len(vals[0]) == 0 {
		return ""
	}
	const (
		cw, ch  = 36.0, 22.0
		gap     = 2.0
		labW    = 40.0
		topH    = 18.0
		legendH = 34.0
	)
	rows, cols := len(vals), len(vals[0])
	maxV := 0.0
	for _, r := range vals {
		for _, v := range r {
			if v > maxV {
				maxV = v
			}
		}
	}
	w := labW + float64(cols)*(cw+gap)
	h := topH + float64(rows)*(ch+gap) + legendH
	var b strings.Builder
	fmt.Fprintf(&b, `<svg viewBox="0 0 %g %g" width="%g" height="%g" role="img">`, w, h, w, h)
	for c := 0; c < cols; c++ {
		fmt.Fprintf(&b, `<text class="tick" x="%g" y="%g" text-anchor="middle">%s</text>`,
			labW+float64(c)*(cw+gap)+cw/2, topH-5, esc(colLabel(c)))
	}
	for r := 0; r < rows; r++ {
		y := topH + float64(r)*(ch+gap)
		fmt.Fprintf(&b, `<text class="tick" x="%g" y="%g" text-anchor="end">%s</text>`,
			labW-6, y+ch/2+4, esc(rowLabel(r)))
		for c := 0; c < cols && c < len(vals[r]); c++ {
			v := vals[r][c]
			step := 0
			if maxV > 0 {
				step = int(v / maxV * float64(rampSteps-1))
				if step >= rampSteps {
					step = rampSteps - 1
				}
			}
			fmt.Fprintf(&b, `<rect class="q%d" x="%g" y="%g" width="%g" height="%g"><title>%s %s: %s %s</title></rect>`,
				step, labW+float64(c)*(cw+gap), y, cw, ch,
				esc(rowLabel(r)), esc(colLabel(c)), fnum(v), esc(unit))
		}
	}
	// legend: the ramp with min/max annotations
	ly := topH + float64(rows)*(ch+gap) + 10
	lw := 14.0
	for i := 0; i < rampSteps; i++ {
		fmt.Fprintf(&b, `<rect class="q%d" x="%g" y="%g" width="%g" height="10"/>`,
			i, labW+float64(i)*(lw+1), ly, lw)
	}
	fmt.Fprintf(&b, `<text class="tick" x="%g" y="%g">0</text>`, labW, ly+22)
	fmt.Fprintf(&b, `<text class="tick" x="%g" y="%g" text-anchor="end">%s %s</text>`,
		labW+rampSteps*(lw+1), ly+22, fnum(maxV), esc(unit))
	b.WriteString(`</svg>`)
	return b.String()
}
