// Package fault models the bit errors an aggressively energy-efficient DRAM
// produces, closing the "error tolerance" half of the paper's claim: DMS/AMS
// shave timing and energy margins, and this package injects the resulting
// data corruption into the bytes DRAM actually returns, so errors flow
// through the memory controller and caches into core registers and workload
// outputs where their application-level impact can be measured.
//
// Three error modes are modeled, each tied to the scheduler state the lazy
// units manipulate:
//
//   - Activation errors: the first column access of an activation reads
//     sense amplifiers that, under a reduced-tRCD activation, have not fully
//     developed. Cells from the row's weak-cell population flip.
//   - Retention errors: a row held open past a configurable age (as DMS's
//     delayed scheduling encourages) leaks charge beyond the margin of its
//     weak cells; reads from the over-aged row flip them.
//   - Bus transients: every read burst flips each transferred bit with a
//     base bit-error rate, independent of row state (signal-integrity noise
//     from reduced I/O voltage).
//
// The weak-cell population is a deterministic per-channel/bank/row map:
// positions are drawn from a row-local RNG seeded by (seed, channel, bank,
// row), so the map is stable for a whole run and across runs with the same
// seed, regardless of access order. All probabilistic draws derive from the
// configured seed, making every injected fault — count and location —
// reproducible, which the repository's determinism gates rely on.
//
// The package depends only on internal/stats (injection counters land in
// stats.Mem's bank matrix) and is imported by mc, sim, and trafgen; it must
// never import them back.
package fault

import (
	"math"
	"math/rand"

	"lazydram/internal/stats"
)

// LineBytes is the DRAM access granularity in bytes (one cache line); it
// mirrors memimage.LineSize without importing it.
const LineBytes = 128

// lineBits is the number of data bits in one read burst.
const lineBits = LineBytes * 8

// Mode classifies an injected bit flip by its physical mechanism.
type Mode uint8

// Fault modes.
const (
	// ModeActivation: weak cell read on the first column access after ACT
	// (reduced-tRCD sensing failure).
	ModeActivation Mode = iota
	// ModeRetention: weak cell read from a row held open past the retention
	// threshold (charge leakage under delayed scheduling).
	ModeRetention
	// ModeBus: transfer-time transient at the base bit-error rate.
	ModeBus

	numModes
)

func (m Mode) String() string {
	switch m {
	case ModeActivation:
		return "activation"
	case ModeRetention:
		return "retention"
	case ModeBus:
		return "bus"
	default:
		return "Mode(?)"
	}
}

// Config parameterizes the fault model. The zero value is disabled; use
// DefaultConfig as the basis for enabled configurations so the per-mode flip
// probabilities and retention threshold get their documented defaults.
type Config struct {
	// Enabled turns injection on. When false the rest is ignored.
	Enabled bool
	// Seed drives every random draw. sim.Simulate substitutes the run's
	// input seed when it is 0, so fault runs are reproducible end to end
	// from a single -seed unless an explicit fault seed is given.
	Seed int64
	// BusBER is the per-bit flip probability applied to every read burst.
	BusBER float64
	// WeakCellDensity is the fraction of each row's bits that are weak
	// (susceptible to activation and retention failures).
	WeakCellDensity float64
	// ActFlipProb and RetFlipProb are the probabilities that a weak cell
	// covered by a qualifying read actually flips. 0 means the default 1.0
	// (weak cells fail deterministically), matching the stable weak-cell
	// semantics the determinism gates expect.
	ActFlipProb float64
	RetFlipProb float64
	// RetentionThreshold is the open-row age, in memory cycles, beyond which
	// reads suffer retention flips (0 picks DefaultRetentionThreshold).
	RetentionThreshold uint64
}

// DefaultRetentionThreshold is the open-row age at which retention errors
// arm when Config.RetentionThreshold is 0. It is far beyond a well-behaved
// activation's lifetime but within reach of DMS-held rows.
const DefaultRetentionThreshold = 4096

// DefaultConfig returns a disabled configuration with the documented
// defaults for everything else.
func DefaultConfig() Config {
	return Config{
		ActFlipProb:        1,
		RetFlipProb:        1,
		RetentionThreshold: DefaultRetentionThreshold,
	}
}

// BitFlip is one injected flip: a bit offset within the 128-byte line and
// the mode that produced it.
type BitFlip struct {
	Offset uint16
	Mode   Mode
}

// LineFaults carries the flips injected into one read burst. A nil
// *LineFaults means the burst was clean.
type LineFaults struct {
	Bits []BitFlip
}

// Apply XORs the flips into data (a full 128-byte line). Nil-safe.
func (f *LineFaults) Apply(data []byte) {
	if f == nil {
		return
	}
	for _, b := range f.Bits {
		data[b.Offset>>3] ^= 1 << (b.Offset & 7)
	}
}

// Count returns the number of injected flips (0 for nil).
func (f *LineFaults) Count() int {
	if f == nil {
		return 0
	}
	return len(f.Bits)
}

// weakKey identifies one row's weak-cell list within a channel.
type weakKey struct {
	bank int
	row  int64
}

// Injector injects faults for one DRAM channel. It is not safe for
// concurrent use; the simulator drives each channel from a single goroutine.
type Injector struct {
	cfg     Config
	channel int
	rowBits int
	st      *stats.Mem

	rng  *rand.Rand // bus transients and sub-unity weak-flip draws
	weak map[weakKey][]uint16

	reads     uint64
	corrupted uint64
	flips     [numModes]uint64
	weakRows  uint64
	weakCells uint64
	digest    uint64
}

// NewInjector creates the injector for one channel. rowBytes is the DRAM
// row size (weak-cell positions are drawn per row); st receives the
// channel's fault counters (aggregate and per bank) and may not be nil.
func NewInjector(cfg Config, channel int, rowBytes uint64, st *stats.Mem) *Injector {
	if cfg.ActFlipProb <= 0 {
		cfg.ActFlipProb = 1
	}
	if cfg.RetFlipProb <= 0 {
		cfg.RetFlipProb = 1
	}
	if cfg.RetentionThreshold == 0 {
		cfg.RetentionThreshold = DefaultRetentionThreshold
	}
	if rowBytes == 0 {
		rowBytes = 2048
	}
	return &Injector{
		cfg:     cfg,
		channel: channel,
		rowBits: int(rowBytes * 8),
		st:      st,
		rng:     rand.New(rand.NewSource(mix(cfg.Seed, int64(channel), 0x6a09e667, 0))),
		weak:    make(map[weakKey][]uint16),
	}
}

// Config returns the injector's (normalized) configuration.
func (inj *Injector) Config() Config { return inj.cfg }

// mix folds the inputs into a 64-bit seed (splitmix64 finalizer over a
// running combination), so row-local RNGs are decorrelated across
// (seed, channel, bank, row) without storing anything.
func mix(vs ...int64) int64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vs {
		h ^= uint64(v) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return int64(h)
}

// geomNext returns the distance to the next success of a Bernoulli(p)
// sequence (>= 1), sampled by inversion. p must be in (0, 1).
func geomNext(rng *rand.Rand, p float64) int {
	u := rng.Float64()
	// log(1-u) is finite because Float64 is in [0, 1).
	return int(math.Floor(math.Log(1-u)/math.Log(1-p))) + 1
}

// bernoulliPositions draws the positions of successes of a Bernoulli(p)
// process over n bits via geometric skipping, in ascending order.
func bernoulliPositions(rng *rand.Rand, p float64, n int) []uint16 {
	if p <= 0 || n <= 0 {
		return nil
	}
	if p >= 1 {
		out := make([]uint16, n)
		for i := range out {
			out[i] = uint16(i)
		}
		return out
	}
	var out []uint16
	for i := geomNext(rng, p) - 1; i < n; i += geomNext(rng, p) {
		out = append(out, uint16(i))
	}
	return out
}

// weakRow returns (materializing on first use) the sorted weak-cell bit
// offsets of the given row. The list is drawn from a row-local RNG, so it is
// independent of the order rows are first touched in.
func (inj *Injector) weakRow(bank int, row int64) []uint16 {
	key := weakKey{bank, row}
	if w, ok := inj.weak[key]; ok {
		return w
	}
	rng := rand.New(rand.NewSource(mix(inj.cfg.Seed, int64(inj.channel), int64(bank), row)))
	w := bernoulliPositions(rng, inj.cfg.WeakCellDensity, inj.rowBits)
	inj.weak[key] = w
	if len(w) > 0 {
		inj.weakRows++
		inj.weakCells += uint64(len(w))
	}
	return w
}

// OnRead decides the faults for one read burst: bank/row/col locate the
// accessed line (col is the byte offset of the line within the row),
// firstAccess marks the activation's first column access, and openAge is the
// row's cycles-since-ACT. It updates the stats counters and returns nil for
// a clean burst.
func (inj *Injector) OnRead(bank int, row int64, col uint64, firstAccess bool, openAge uint64) *LineFaults {
	inj.reads++
	var bits []BitFlip

	// Weak-cell modes: activation on first access, retention on over-aged
	// rows. The two are mutually exclusive for one read — a first access
	// happens tRCD after ACT, long before the retention threshold.
	mode, prob := ModeActivation, inj.cfg.ActFlipProb
	active := firstAccess
	if !active && openAge >= inj.cfg.RetentionThreshold {
		mode, prob, active = ModeRetention, inj.cfg.RetFlipProb, true
	}
	if active && inj.cfg.WeakCellDensity > 0 {
		lo := uint16(col * 8)
		hi := lo + lineBits
		for _, w := range inj.weakRow(bank, row) {
			if w < lo || w >= hi {
				continue
			}
			if prob < 1 && inj.rng.Float64() >= prob {
				continue
			}
			bits = append(bits, BitFlip{Offset: w - lo, Mode: mode})
		}
	}

	// Bus transients hit any transferred bit; a position already flipped by
	// a weak cell is skipped so every recorded flip corrupts the line (two
	// XORs would cancel and overstate the counters).
	if inj.cfg.BusBER > 0 {
	bus:
		for _, off := range bernoulliPositions(inj.rng, inj.cfg.BusBER, lineBits) {
			for _, b := range bits {
				if b.Offset == off {
					continue bus
				}
			}
			bits = append(bits, BitFlip{Offset: off, Mode: ModeBus})
		}
	}

	if len(bits) == 0 {
		return nil
	}
	inj.corrupted++
	inj.st.FaultReads++
	bs := inj.st.Bank(bank)
	for _, b := range bits {
		inj.flips[b.Mode]++
		bs.FaultFlips++
		switch b.Mode {
		case ModeActivation:
			inj.st.FaultActFlips++
		case ModeRetention:
			inj.st.FaultRetFlips++
		case ModeBus:
			inj.st.FaultBusFlips++
		}
		inj.noteDigest(bank, row, col, b)
	}
	return &LineFaults{Bits: bits}
}

// noteDigest folds one flip's full location into the running digest (FNV-1a
// over the flip stream), so two runs injecting the same faults in the same
// order — and only those — agree.
func (inj *Injector) noteDigest(bank int, row int64, col uint64, b BitFlip) {
	h := inj.digest
	if h == 0 {
		h = 0xcbf29ce484222325
	}
	for _, v := range [...]uint64{uint64(inj.channel), uint64(bank), uint64(row), col, uint64(b.Offset), uint64(b.Mode)} {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 0x100000001b3
		}
	}
	inj.digest = h
}

// Summary is the injector's aggregate view, one per channel; sim merges them
// into the run-level obs.FaultSummary telemetry block.
type Summary struct {
	Reads          uint64 // read bursts offered to the injector
	CorruptedReads uint64 // bursts with at least one flip
	ActFlips       uint64
	RetFlips       uint64
	BusFlips       uint64
	WeakRows       uint64 // rows whose materialized weak-cell list is non-empty
	WeakCells      uint64 // weak cells across those rows
	Digest         uint64 // order-sensitive digest of every (location, mode) flip
}

// TotalFlips returns the all-mode flip count.
func (s Summary) TotalFlips() uint64 { return s.ActFlips + s.RetFlips + s.BusFlips }

// Merge folds o into s (digests combine by FNV-1a over the pair).
func (s *Summary) Merge(o Summary) {
	s.Reads += o.Reads
	s.CorruptedReads += o.CorruptedReads
	s.ActFlips += o.ActFlips
	s.RetFlips += o.RetFlips
	s.BusFlips += o.BusFlips
	s.WeakRows += o.WeakRows
	s.WeakCells += o.WeakCells
	if o.Digest != 0 {
		h := s.Digest
		if h == 0 {
			h = 0xcbf29ce484222325
		}
		for i := 0; i < 8; i++ {
			h ^= (o.Digest >> (8 * i)) & 0xff
			h *= 0x100000001b3
		}
		s.Digest = h
	}
}

// Summary snapshots the injector's counters.
func (inj *Injector) Summary() Summary {
	return Summary{
		Reads:          inj.reads,
		CorruptedReads: inj.corrupted,
		ActFlips:       inj.flips[ModeActivation],
		RetFlips:       inj.flips[ModeRetention],
		BusFlips:       inj.flips[ModeBus],
		WeakRows:       inj.weakRows,
		WeakCells:      inj.weakCells,
		Digest:         inj.digest,
	}
}
