package fault

import (
	"reflect"
	"testing"

	"lazydram/internal/stats"
)

func enabledCfg(seed int64) Config {
	c := DefaultConfig()
	c.Enabled = true
	c.Seed = seed
	c.BusBER = 1e-4
	c.WeakCellDensity = 1e-3
	return c
}

// replayReads drives inj through a fixed access pattern and returns its
// summary plus every per-read fault list.
func replayReads(inj *Injector) (Summary, []*LineFaults) {
	var out []*LineFaults
	for bank := 0; bank < 4; bank++ {
		for row := int64(0); row < 8; row++ {
			for col := uint64(0); col < 2048; col += LineBytes {
				first := col == 0
				var age uint64
				if col >= 1024 {
					age = DefaultRetentionThreshold + col
				}
				out = append(out, inj.OnRead(bank, row, col, first, age))
			}
		}
	}
	return inj.Summary(), out
}

func TestDeterminismSameSeed(t *testing.T) {
	var st1, st2 stats.Mem
	s1, f1 := replayReads(NewInjector(enabledCfg(42), 0, 2048, &st1))
	s2, f2 := replayReads(NewInjector(enabledCfg(42), 0, 2048, &st2))
	if s1 != s2 {
		t.Fatalf("same seed, different summaries:\n%+v\n%+v", s1, s2)
	}
	if s1.Digest == 0 || s1.TotalFlips() == 0 {
		t.Fatalf("expected injected faults, got %+v", s1)
	}
	if !reflect.DeepEqual(f1, f2) {
		t.Fatal("same seed produced different per-read fault lists")
	}
}

func TestDifferentSeedDiffers(t *testing.T) {
	var st1, st2 stats.Mem
	s1, _ := replayReads(NewInjector(enabledCfg(1), 0, 2048, &st1))
	s2, _ := replayReads(NewInjector(enabledCfg(2), 0, 2048, &st2))
	if s1.Digest == s2.Digest {
		t.Fatalf("different seeds share digest %#x", s1.Digest)
	}
}

func TestZeroRatesInjectNothing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Enabled = true
	cfg.Seed = 7
	var st stats.Mem
	s, faults := replayReads(NewInjector(cfg, 0, 2048, &st))
	if s.TotalFlips() != 0 || s.CorruptedReads != 0 || s.Digest != 0 {
		t.Fatalf("zero BER and density injected faults: %+v", s)
	}
	for _, f := range faults {
		if f != nil {
			t.Fatal("zero-rate injector returned non-nil LineFaults")
		}
	}
	if st.TotalFaultFlips() != 0 || st.FaultReads != 0 {
		t.Fatalf("zero-rate injector moved stats counters: %+v", st)
	}
}

func TestWeakRowsStableAndOrderIndependent(t *testing.T) {
	cfg := enabledCfg(99)
	cfg.WeakCellDensity = 0.01
	var st1, st2 stats.Mem
	a := NewInjector(cfg, 0, 2048, &st1)
	b := NewInjector(cfg, 0, 2048, &st2)
	// Touch the same rows in opposite orders; the weak maps must agree.
	rows := []int64{5, 1, 9, 3}
	for _, r := range rows {
		a.weakRow(2, r)
	}
	for i := len(rows) - 1; i >= 0; i-- {
		b.weakRow(2, rows[i])
	}
	for _, r := range rows {
		wa, wb := a.weakRow(2, r), b.weakRow(2, r)
		if !reflect.DeepEqual(wa, wb) {
			t.Fatalf("row %d weak cells depend on query order: %v vs %v", r, wa, wb)
		}
		// Second query returns the identical cached list.
		if !reflect.DeepEqual(wa, a.weakRow(2, r)) {
			t.Fatalf("row %d weak cells unstable across queries", r)
		}
	}
	// Different (bank, row) coordinates get decorrelated populations.
	if reflect.DeepEqual(a.weakRow(0, 5), a.weakRow(1, 5)) && reflect.DeepEqual(a.weakRow(0, 5), a.weakRow(2, 5)) {
		t.Fatal("weak cells identical across banks; row-local seeding broken")
	}
}

func TestModeClassification(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Enabled = true
	cfg.Seed = 5
	cfg.WeakCellDensity = 1 // every bit weak: qualifying reads always flip
	var st stats.Mem
	inj := NewInjector(cfg, 0, 2048, &st)

	// First access after ACT: activation mode.
	f := inj.OnRead(0, 0, 0, true, 10)
	if f == nil || f.Bits[0].Mode != ModeActivation {
		t.Fatalf("first access not classified activation: %+v", f)
	}
	// Later access, young row: clean.
	if f := inj.OnRead(0, 0, LineBytes, false, 10); f != nil {
		t.Fatalf("young non-first access injected %d flips", f.Count())
	}
	// Later access, over-aged row: retention mode.
	f = inj.OnRead(0, 0, 2*LineBytes, false, cfg.RetentionThreshold)
	if f == nil || f.Bits[0].Mode != ModeRetention {
		t.Fatalf("over-aged access not classified retention: %+v", f)
	}
	if st.FaultActFlips == 0 || st.FaultRetFlips == 0 || st.FaultBusFlips != 0 {
		t.Fatalf("mode counters wrong: %+v", st)
	}
	// The RD counters the DRAM layer would have bumped alongside.
	st.Reads, st.ReadReqs = 3, 3
	st.Bank(0).Reads = 3
	st.Bank(0).RowHits = 3
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyXORRoundTrip(t *testing.T) {
	f := &LineFaults{Bits: []BitFlip{{Offset: 0}, {Offset: 9}, {Offset: 1023}}}
	var data, orig [LineBytes]byte
	for i := range data {
		data[i] = byte(i * 31)
	}
	orig = data
	f.Apply(data[:])
	if data == orig {
		t.Fatal("Apply changed nothing")
	}
	if data[0]&1 == orig[0]&1 || data[1]&2 == orig[1]&2 || data[127]&0x80 == orig[127]&0x80 {
		t.Fatal("Apply flipped the wrong bits")
	}
	f.Apply(data[:])
	if data != orig {
		t.Fatal("double Apply is not the identity")
	}
	var nilF *LineFaults
	nilF.Apply(data[:]) // must not panic
}

func TestBusFlipsScaleWithBER(t *testing.T) {
	count := func(ber float64) uint64 {
		cfg := DefaultConfig()
		cfg.Enabled = true
		cfg.Seed = 11
		cfg.BusBER = ber
		var st stats.Mem
		inj := NewInjector(cfg, 0, 2048, &st)
		for i := 0; i < 4096; i++ {
			inj.OnRead(0, int64(i%16), uint64(i%16)*LineBytes, false, 0)
		}
		return inj.Summary().BusFlips
	}
	lo, hi := count(1e-5), count(1e-3)
	if hi <= lo {
		t.Fatalf("bus flips do not scale with BER: %d at 1e-5 vs %d at 1e-3", lo, hi)
	}
	// Expectation at 1e-3 over 4096 lines of 1024 bits is ~4194 flips; allow
	// a generous band around it.
	if hi < 3000 || hi > 5600 {
		t.Fatalf("bus flip count %d far from expectation ~4194", hi)
	}
}

func TestStatsReconcile(t *testing.T) {
	var st stats.Mem
	inj := NewInjector(enabledCfg(3), 0, 2048, &st)
	s, _ := replayReads(inj)
	// Satisfy the Reads >= FaultReads invariant the DRAM layer normally
	// provides before validating.
	st.Reads = s.Reads
	st.ReadReqs = s.Reads
	if got := st.TotalFaultFlips(); got != s.TotalFlips() {
		t.Fatalf("stats total %d != summary total %d", got, s.TotalFlips())
	}
	if st.FaultReads != s.CorruptedReads {
		t.Fatalf("stats FaultReads %d != summary CorruptedReads %d", st.FaultReads, s.CorruptedReads)
	}
	var bankSum uint64
	for i := range st.Banks {
		bankSum += st.Banks[i].FaultFlips
	}
	if bankSum != st.TotalFaultFlips() {
		t.Fatalf("bank matrix sum %d != per-mode total %d", bankSum, st.TotalFaultFlips())
	}
}

func TestSummaryMergeAssociative(t *testing.T) {
	mk := func(seed int64, ch int) Summary {
		var st stats.Mem
		s, _ := replayReads(NewInjector(enabledCfg(seed), ch, 2048, &st))
		return s
	}
	a, b, c := mk(1, 0), mk(1, 1), mk(1, 2)
	left := a
	left.Merge(b)
	left.Merge(c)
	bc := b
	bc.Merge(c)
	right := a
	right.Merge(bc)
	// Digest folding is order-sensitive by design, so compare the counters.
	left.Digest, right.Digest = 0, 0
	if left != right {
		t.Fatalf("Merge not associative:\n%+v\n%+v", left, right)
	}
	if left.TotalFlips() != a.TotalFlips()+b.TotalFlips()+c.TotalFlips() {
		t.Fatal("merged totals do not sum")
	}
}
