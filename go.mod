module lazydram

go 1.23
