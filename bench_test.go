// Benchmarks: one testing.B benchmark per table/figure of the paper, each
// regenerating its experiment through the internal/exp harness. Benchmarks
// use a reduced application subset so `go test -bench=.` completes in
// minutes; `cmd/experiments` runs the full versions.
//
// Reported custom metrics:
//
//	act-reduction-%   mean activation reduction the scheme achieved
//	rowE-reduction-%  mean row-energy reduction (Fig. 12/15 benches)
//	ipc-ratio         mean IPC versus baseline
package main

import (
	"io"
	"runtime"
	"testing"
	"time"

	"lazydram/internal/exp"
	"lazydram/internal/mc"
	"lazydram/internal/obs"
	"lazydram/internal/sim"
	"lazydram/internal/workloads"
)

// benchApps is a small cross-section: one app per paper group.
var benchApps = []string{"SCP", "MVT", "laplacian", "FWT"}

func benchRunner() *exp.Runner {
	return exp.NewRunner(exp.Options{Seed: 1, Apps: benchApps, Quick: true})
}

// runExperiment executes one experiment end to end, discarding its text.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		r := benchRunner() // fresh: do not let memoization trivialize iterations
		if err := e.Run(r, io.Discard, b.TempDir()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Config(b *testing.B)     { runExperiment(b, "table1") }
func BenchmarkFig2QueueSweep(b *testing.B)   { runExperiment(b, "fig2") }
func BenchmarkFig5RBLBuckets(b *testing.B)   { runExperiment(b, "fig5") }
func BenchmarkFig6Cumulative(b *testing.B)   { runExperiment(b, "fig6") }
func BenchmarkFig7CaseStudies(b *testing.B)  { runExperiment(b, "fig7") }
func BenchmarkFig8Scripted(b *testing.B)     { runExperiment(b, "fig8") }
func BenchmarkFig11ThRBLSweep(b *testing.B)  { runExperiment(b, "fig11") }
func BenchmarkFig14ImageOutput(b *testing.B) { runExperiment(b, "fig14") }
func BenchmarkTable2Classify(b *testing.B)   { runExperiment(b, "table2") }
func BenchmarkEnergyProjection(b *testing.B) { runExperiment(b, "energy") }

// The wide sweeps (Figs. 4, 10, 12, 13, 15) are benchmarked on their core
// measurement rather than the full 20-app grid, and report the paper's
// headline number as a custom metric.

func BenchmarkFig4DelaySweep(b *testing.B) {
	var actRed, ipcRatio float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		actRed, ipcRatio = 0, 0
		for _, app := range benchApps {
			base, err := r.Baseline(app)
			if err != nil {
				b.Fatal(err)
			}
			res, err := r.DMS(app, 1024)
			if err != nil {
				b.Fatal(err)
			}
			actRed += 1 - float64(res.Run.Mem.Activations)/float64(base.Run.Mem.Activations)
			ipcRatio += res.Run.IPC() / base.Run.IPC()
		}
		actRed /= float64(len(benchApps))
		ipcRatio /= float64(len(benchApps))
	}
	b.ReportMetric(100*actRed, "act-reduction-%")
	b.ReportMetric(ipcRatio, "ipc-ratio")
}

func BenchmarkFig10Correlation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		for _, app := range benchApps {
			if _, err := r.Baseline(app); err != nil {
				b.Fatal(err)
			}
			for _, d := range []int{128, 512} {
				if _, err := r.DMS(app, d); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func BenchmarkFig12AllSchemes(b *testing.B) {
	schemes := []mc.Scheme{mc.StaticDMS, mc.DynDMS, mc.StaticAMS, mc.DynAMS, mc.StaticBoth, mc.DynBoth}
	apps := []string{"SCP", "MVT", "laplacian"} // groups 1-3 only
	var rowERed float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		rowERed = 0
		n := 0
		for _, app := range apps {
			base, err := r.Baseline(app)
			if err != nil {
				b.Fatal(err)
			}
			for _, s := range schemes {
				res, err := r.Run(app, s, exp.Variant{})
				if err != nil {
					b.Fatal(err)
				}
				if s.DMS == mc.Dyn && s.AMS == mc.Dyn {
					rowERed += 1 - res.Run.RowEnergy/base.Run.RowEnergy
					n++
				}
			}
		}
		rowERed /= float64(n)
	}
	b.ReportMetric(100*rowERed, "rowE-reduction-%")
}

func BenchmarkFig13QueueSweepDMS(b *testing.B) {
	s := mc.StaticDMS
	s.StaticDelay = 2048
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		for _, app := range []string{"SCP", "laplacian"} {
			for _, q := range []int{32, 128} {
				if _, err := r.Run(app, s, exp.Variant{QueueSize: q}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func BenchmarkFig15DelayOnly(b *testing.B) {
	var rowERed float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		base, err := r.Baseline("FWT") // a group-4 (low error tolerance) app
		if err != nil {
			b.Fatal(err)
		}
		res, err := r.Run("FWT", mc.DynDMS, exp.Variant{})
		if err != nil {
			b.Fatal(err)
		}
		rowERed = 1 - res.Run.RowEnergy/base.Run.RowEnergy
	}
	b.ReportMetric(100*rowERed, "rowE-reduction-%")
}

// ---- ablation benchmarks (design choices called out in DESIGN.md) -------

// BenchmarkAblationBlockDispatch compares thread-block dispatch (8 warps per
// block per SM) against warp striping: block dispatch preserves the spatial
// locality that gives the baseline its realistic row-buffer behaviour.
func BenchmarkAblationBlockDispatch(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		blocked, err := r.Baseline("laplacian")
		if err != nil {
			b.Fatal(err)
		}
		striped, err := r.Run("laplacian", mc.Baseline, exp.Variant{
			Tag:    "striped",
			Mutate: func(c *sim.Config) { c.WarpsPerBlock = 1 },
		})
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(striped.Run.Mem.Activations) / float64(blocked.Run.Mem.Activations)
	}
	b.ReportMetric(ratio, "striped/blocked-acts")
}

// BenchmarkAblationProfileWindow compares the paper's 4096-cycle Dyn-DMS
// profiling window against the scaled 1024-cycle default on these
// scaled-down inputs.
func BenchmarkAblationProfileWindow(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		base, err := r.Baseline("SCP")
		if err != nil {
			b.Fatal(err)
		}
		run := func(window uint64, tag string) float64 {
			res, err := r.Run("SCP", mc.DynDMS, exp.Variant{
				Tag:    tag,
				Mutate: func(c *sim.Config) { c.MC.ProfileWindow = window },
			})
			if err != nil {
				b.Fatal(err)
			}
			return res.Run.RowEnergy / base.Run.RowEnergy
		}
		scaled := run(mc.DefaultProfileWindow, "win1024")
		paper := run(mc.PaperProfileWindow, "win4096")
		ratio = scaled / paper
	}
	b.ReportMetric(ratio, "rowE-1024/4096")
}

// BenchmarkAblationVPRadius varies the value predictor's set-search radius:
// a wider search finds closer addresses and lowers application error.
func BenchmarkAblationVPRadius(b *testing.B) {
	var err0, err8 float64
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		run := func(radius int, tag string) float64 {
			res, err := r.Run("laplacian", mc.StaticAMS, exp.Variant{
				Tag:    tag,
				Mutate: func(c *sim.Config) { c.VP.SetRadius = radius },
			})
			if err != nil {
				b.Fatal(err)
			}
			return res.Run.AppError
		}
		err0 = run(0, "vp0")
		err8 = run(8, "vp8")
	}
	b.ReportMetric(100*err0, "app-error-%-radius0")
	b.ReportMetric(100*err8, "app-error-%-radius8")
}

// BenchmarkParallelSweep measures the concurrent Runner on the Fig. 12
// shape (3 apps x 7 schemes): each iteration executes the identical point set
// with one worker and with GOMAXPROCS workers, and reports the wall-clock
// speedup. On a single-core runner the speedup metric is ~1.0 by
// construction; the number is only meaningful on multi-core hardware.
func BenchmarkParallelSweep(b *testing.B) {
	apps := []string{"SCP", "MVT", "laplacian"} // groups 1-3 only
	schemes := []mc.Scheme{mc.Baseline, mc.StaticDMS, mc.DynDMS, mc.StaticAMS,
		mc.DynAMS, mc.StaticBoth, mc.DynBoth}
	sweep := func(workers int) time.Duration {
		start := time.Now()
		r := exp.NewRunner(exp.Options{Seed: 1, Apps: apps, Quick: true, Workers: workers})
		r.PrefetchSchemes(apps, schemes...)
		for _, app := range apps {
			for _, s := range schemes {
				if _, err := r.Run(app, s, exp.Variant{}); err != nil {
					b.Fatal(err)
				}
			}
		}
		return time.Since(start)
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		serial := sweep(1)
		parallel := sweep(runtime.GOMAXPROCS(0))
		speedup = serial.Seconds() / parallel.Seconds()
	}
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
}

// BenchmarkSimulatorThroughput measures raw simulation speed (core cycles
// per second of wall time) on a representative app — useful for tracking
// simulator performance regressions.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var cycles uint64
	for i := 0; i < b.N; i++ {
		r := exp.NewRunner(exp.Options{Seed: int64(i + 2), Apps: []string{"jmein"}})
		res, err := r.Baseline("jmein")
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Run.CoreCycles
	}
	b.ReportMetric(float64(cycles), "core-cycles/run")
}

// benchTelemetry measures one full SCP run under Dyn-Both with the given
// observability options. BenchmarkTelemetryOff against BenchmarkTelemetryOn
// quantifies the cost of the nil-check hooks (off must stay within 2% of the
// pre-observability simulator) and of full tracing respectively.
func benchTelemetry(b *testing.B, o obs.Options) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		k, err := workloads.New("SCP")
		if err != nil {
			b.Fatal(err)
		}
		cfg := sim.DefaultConfig()
		cfg.Obs = o
		if _, err := sim.Simulate(k, cfg, mc.DynBoth, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTelemetryOff(b *testing.B) { benchTelemetry(b, obs.Options{}) }

func BenchmarkTelemetryOn(b *testing.B) {
	benchTelemetry(b, obs.Options{
		Latency:       true,
		SampleEvery:   1024,
		TraceCapacity: 1 << 16,
		AuditCapacity: 1 << 14,
		Quality:       true,
	})
}

// BenchmarkTelemetryAuditQuality isolates the decision-audit and
// quality-scoring hooks added on top of the PR-1 telemetry; compare against
// BenchmarkTelemetryOff to verify they stay under the 2% overhead budget.
func BenchmarkTelemetryAuditQuality(b *testing.B) {
	benchTelemetry(b, obs.Options{AuditCapacity: 1 << 14, Quality: true})
}

// BenchmarkDigestOff / BenchmarkDigestOn bracket the state-digest flight
// recorder: On walks every architectural component each DefaultDigestEvery
// mem cycles and folds the rolling traffic digest into every fill and
// writeback, and must stay within the same 2% budget of Off.
func BenchmarkDigestOff(b *testing.B) { benchTelemetry(b, obs.Options{}) }

func BenchmarkDigestOn(b *testing.B) {
	benchTelemetry(b, obs.Options{DigestEvery: obs.DefaultDigestEvery})
}

// BenchmarkCensusOff / BenchmarkCensusOn bracket the cycle census: On runs
// the per-cycle stall-attribution and bank-residency classification in every
// controller tick plus the partition-cycle census, and must stay within the
// 2% overhead budget of Off (Off measures the disabled nil-check hooks).
func BenchmarkCensusOff(b *testing.B) { benchTelemetry(b, obs.Options{}) }

func BenchmarkCensusOn(b *testing.B) { benchTelemetry(b, obs.Options{Census: true}) }
