// Quickstart: run one GPGPU application on the simulated GPU under the
// baseline FR-FCFS scheduler and under the paper's combined lazy scheduler
// (Dyn-DMS + Dyn-AMS), and compare row energy, performance, and output
// quality.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lazydram/internal/approx"
	"lazydram/internal/mc"
	"lazydram/internal/sim"
	"lazydram/internal/workloads"
)

func main() {
	const app = "SCP" // scalar products: thrashes rows, tolerates error
	const seed = 1

	// The exact reference output: every kernel can be executed functionally,
	// without the timing model, as a golden oracle.
	kern, err := workloads.New(app)
	if err != nil {
		log.Fatal(err)
	}
	golden := sim.RunFunctional(kern, seed)

	cfg := sim.DefaultConfig() // Table I of the paper
	run := func(scheme mc.Scheme) *sim.Result {
		k, _ := workloads.New(app)
		res, err := sim.Simulate(k, cfg, scheme, seed)
		if err != nil {
			log.Fatal(err)
		}
		res.Run.AppError = approx.MeanRelativeError(golden, res.Output)
		return res
	}

	base := run(mc.Baseline)
	lazy := run(mc.DynBoth)

	fmt.Printf("application: %s (group %d)\n\n", app, workloads.Group(app))
	fmt.Printf("%-22s %-14s %-14s\n", "", "baseline", "Dyn-DMS+Dyn-AMS")
	row := func(label string, b, l float64, format string) {
		fmt.Printf("%-22s "+format+" "+format+"\n", label, b, l)
	}
	row("row activations", float64(base.Run.Mem.Activations), float64(lazy.Run.Mem.Activations), "%-14.0f")
	row("avg row-buffer loc.", base.Run.Mem.AvgRBL(), lazy.Run.Mem.AvgRBL(), "%-14.2f")
	row("row energy (uJ)", base.Run.RowEnergy/1e3, lazy.Run.RowEnergy/1e3, "%-14.1f")
	row("IPC", base.Run.IPC(), lazy.Run.IPC(), "%-14.2f")
	row("coverage", base.Run.Mem.Coverage(), lazy.Run.Mem.Coverage(), "%-14.3f")
	row("application error", base.Run.AppError, lazy.Run.AppError, "%-14.4f")

	saved := 1 - lazy.Run.RowEnergy/base.Run.RowEnergy
	fmt.Printf("\nlazy scheduling saved %.1f%% row energy at %.2f%% output error\n",
		100*saved, 100*lazy.Run.AppError)
}
