// Image approximation demo (the paper's Fig. 14): run the laplacian image
// sharpening filter exactly and under the combined lazy scheduler, write
// both result images as PGM files, and report the quality loss alongside
// the row-energy saving.
//
//	go run ./examples/image_approx [-out .]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"lazydram/internal/approx"
	"lazydram/internal/mc"
	"lazydram/internal/sim"
	"lazydram/internal/workloads"
)

func main() {
	out := flag.String("out", ".", "directory for the PGM images")
	flag.Parse()

	const app = "laplacian"
	kern, err := workloads.New(app)
	if err != nil {
		log.Fatal(err)
	}
	type dimmer interface{ Dims() (w, h int) }
	width, height := kern.(dimmer).Dims()

	golden := sim.RunFunctional(kern, 1)

	cfg := sim.DefaultConfig()
	base, err := sim.Simulate(mustKernel(app), cfg, mc.Baseline, 1)
	if err != nil {
		log.Fatal(err)
	}
	lazy, err := sim.Simulate(mustKernel(app), cfg, mc.DynBoth, 1)
	if err != nil {
		log.Fatal(err)
	}
	errLazy := approx.MeanRelativeError(golden, lazy.Output)

	writePGM := func(name string, pix []float32) {
		f, err := os.Create(filepath.Join(*out, name))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := workloads.WritePGM(f, pix, width, height); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", filepath.Join(*out, name))
	}
	writePGM("laplacian_accurate.pgm", golden)
	writePGM("laplacian_approx.pgm", lazy.Output)

	fmt.Printf("\naccurate run:  %d activations, IPC %.2f\n",
		base.Run.Mem.Activations, base.Run.IPC())
	fmt.Printf("lazy run:      %d activations, IPC %.2f, coverage %.1f%%\n",
		lazy.Run.Mem.Activations, lazy.Run.IPC(), 100*lazy.Run.Mem.Coverage())
	fmt.Printf("row energy:    -%.1f%%\n", 100*(1-lazy.Run.RowEnergy/base.Run.RowEnergy))
	fmt.Printf("image error:   %.1f%% (compare the two PGMs side by side)\n", 100*errLazy)
}

func mustKernel(name string) sim.Kernel {
	k, err := workloads.New(name)
	if err != nil {
		log.Fatal(err)
	}
	return k
}
