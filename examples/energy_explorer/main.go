// Energy explorer: sweep the lazy scheduler's two knobs — the DMS delay and
// the AMS RBL threshold — on one application and print the row-energy /
// performance / accuracy trade-off surface, plus memory-technology
// projections (GDDR5, HBM1, HBM2).
//
//	go run ./examples/energy_explorer [-app LPS]
package main

import (
	"flag"
	"fmt"
	"log"

	"lazydram/internal/approx"
	"lazydram/internal/energy"
	"lazydram/internal/mc"
	"lazydram/internal/sim"
	"lazydram/internal/workloads"
)

func main() {
	app := flag.String("app", "LPS", "application to explore")
	flag.Parse()

	cfg := sim.DefaultConfig()
	kern, err := workloads.New(*app)
	if err != nil {
		log.Fatal(err)
	}
	golden := sim.RunFunctional(kern, 1)

	run := func(scheme mc.Scheme) *sim.Result {
		k, _ := workloads.New(*app)
		res, err := sim.Simulate(k, cfg, scheme, 1)
		if err != nil {
			log.Fatal(err)
		}
		res.Run.AppError = approx.MeanRelativeError(golden, res.Output)
		return res
	}
	base := run(mc.Baseline)
	norm := func(r *sim.Result) (rowE, ipc float64) {
		return r.Run.RowEnergy / base.Run.RowEnergy, r.Run.IPC() / base.Run.IPC()
	}

	fmt.Printf("== %s: DMS delay sweep (exact results, performance trade-off)\n", *app)
	fmt.Printf("%-10s %-12s %-10s\n", "delay", "norm-rowE", "norm-IPC")
	for _, d := range []int{0, 64, 128, 256, 512, 1024, 2048} {
		res := base
		if d > 0 {
			res = run(mc.Scheme{DMS: mc.Static, StaticDelay: d})
		}
		re, ipc := norm(res)
		fmt.Printf("%-10d %-12.3f %-10.3f\n", d, re, ipc)
	}

	fmt.Printf("\n== %s: AMS Th_RBL sweep (10%% coverage cap, accuracy trade-off)\n", *app)
	fmt.Printf("%-10s %-12s %-10s %-10s %-10s\n", "Th_RBL", "norm-rowE", "norm-IPC", "coverage", "app-error")
	for th := 1; th <= 8; th *= 2 {
		res := run(mc.Scheme{AMS: mc.Static, StaticThRBL: th, CoverageTarget: 0.10})
		re, ipc := norm(res)
		fmt.Printf("%-10d %-12.3f %-10.3f %-10.3f %-10.4f\n",
			th, re, ipc, res.Run.Mem.Coverage(), res.Run.AppError)
	}

	best := run(mc.DynBoth)
	re, ipc := norm(best)
	fmt.Printf("\n== %s: Dyn-DMS+Dyn-AMS: rowE %.3f, IPC %.3f, error %.4f\n",
		*app, re, ipc, best.Run.AppError)

	fmt.Println("\n== memory-technology projection of that row-energy saving")
	saving := 1 - re
	fmt.Printf("%-8s %-18s %-14s %-14s\n", "tech", "mem-energy saving", "watts saved", "extra peak BW")
	for _, prof := range []energy.Profile{energy.GDDR5(), energy.HBM1(), energy.HBM2()} {
		s := prof.SystemSaving(saving)
		w, gbs := energy.PeakBandwidthHeadroom(60, 900, s)
		fmt.Printf("%-8s %-17.1f%% %-13.1fW %-13.0fGB/s\n", prof.Name, 100*s, w, gbs)
	}
}
