package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleReport = `{
	"meta": {"build": {"go_version": "go1.23.0", "revision": "abc123", "dirty": true}},
	"app": "SCP", "scheme": "Dyn-DMS+Dyn-AMS", "seed": 1,
	"ipc": 2.0153, "bwutil": 0.42, "activations": 31549,
	"row_energy_nj": 709852.5, "wall_ms": 987.6,
	"energy_by_channel": [
		{"channel": 0, "row_nj": 100, "access_nj": 50, "background_nj": 25, "total_nj": 175,
		 "banks": [{"bank": 0, "row_nj": 100, "access_nj": 50}]}
	],
	"hottest_banks": [{"channel": 0, "bank": 0, "row_nj": 100}],
	"telemetry": {
		"stages": [
			{"stage": "mc.queue", "count": 10, "mean": 5.5, "p50": 5, "p90": 9, "p99": 10, "max": 12}
		],
		"series": [{"mem_cycle": 1024}],
		"audit": {
			"total": 120, "dms_delay_holds": 70, "dms_delay_expiries": 10,
			"ams_drops": 25, "ams_skips": 15,
			"reasons": [
				{"unit": "dms", "kind": "delay", "reason": "delay-hold", "count": 70},
				{"unit": "ams", "kind": "drop", "reason": "drop", "count": 25},
				{"unit": "ams", "kind": "skip", "reason": "row-open", "count": 15}
			],
			"adapt": [{"cycle": 1024, "unit": "ams", "th_rbl": 7}]
		},
		"quality": {
			"lines": 25, "words": 800, "mean_abs_error": 0.5,
			"mean_rel_error": 0.01, "rel_p50": 0.001, "rel_p99": 0.2,
			"max_rel_error": 1.5,
			"worst": [{"addr": 4096, "mean_rel": 1.5}]
		},
		"digest": {
			"every": 4096, "intervals": 25,
			"final": "0x00000001000186a0", "chain": "0xdeadbeef00000001",
			"final_hi": 1, "final_lo": 100000,
			"chain_hi": 3735928559, "chain_lo": 1
		}
	}
}`

func TestFlatten(t *testing.T) {
	var doc map[string]any
	if err := json.Unmarshal([]byte(sampleReport), &doc); err != nil {
		t.Fatal(err)
	}
	m, skipped := flatten(doc)
	if len(skipped) != 0 {
		t.Fatalf("unexpected skipped metrics: %v", skipped)
	}

	for name, want := range map[string]float64{
		"ipc":                    2.0153,
		"activations":            31549,
		"row_energy_nj":          709852.5,
		"energy.ch0.row_nj":      100,
		"energy.ch0.total_nj":    175,
		"stage.mc.queue.p99":     10,
		"stage.mc.queue.mean":    5.5,
		"audit.total":            120,
		"audit.dms_delay_holds":  70,
		"audit.ams_drops":        25,
		"audit.dms.delay-hold":   70,
		"audit.ams.drop":         25,
		"audit.ams.row-open":     15,
		"quality.lines":          25,
		"quality.mean_rel_error": 0.01,
		"quality.rel_p99":        0.2,
		"digest.every":           4096,
		"digest.intervals":       25,
		"digest.final_hi":        1,
		"digest.final_lo":        100000,
		"digest.chain_hi":        3735928559,
		"digest.chain_lo":        1,
	} {
		if got, ok := m[name]; !ok || got != want {
			t.Errorf("flatten[%q] = %v (present=%v), want %v", name, got, ok, want)
		}
	}
	// Identity, noise, provenance, and derived views must stay out of the
	// gate; the hex digest strings fail the numeric parse and stay out too.
	for _, name := range []string{"seed", "wall_ms", "app", "scheme", "hottest_banks",
		"meta.build.go_version", "meta.build.revision", "meta.build.dirty",
		"digest.final", "digest.chain"} {
		if _, ok := m[name]; ok {
			t.Errorf("flatten leaked %q into the comparable set", name)
		}
	}
}

func TestParseThresholdsAndResolve(t *testing.T) {
	rules, err := parseThresholds("ipc=0.02, stage.*=0.10,stage.mc.queue.p99=0.5")
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]float64{
		"ipc":                0.02, // exact
		"stage.mc.queue.p50": 0.10, // prefix
		"stage.mc.queue.p99": 0.5,  // exact beats prefix
		"activations":        0,    // default
	} {
		if got := resolve(name, rules, 0); got != want {
			t.Errorf("resolve(%q) = %v, want %v", name, got, want)
		}
	}
	for _, bad := range []string{"ipc", "ipc=x", "ipc=-1"} {
		if _, err := parseThresholds(bad); err == nil {
			t.Errorf("parseThresholds(%q) accepted", bad)
		}
	}
}

func TestCompare(t *testing.T) {
	base := map[string]float64{"ipc": 2.0, "acts": 100, "gone": 5, "zero": 0}
	cand := map[string]float64{"ipc": 2.1, "acts": 100, "new": 7, "zero": 3}

	// Default: exact match required, every delta fails.
	doc := compare(base, cand, cmpConfig{})
	if doc.Compared != 3 || doc.Unmatched != 2 {
		t.Fatalf("compared=%d unmatched=%d, want 3/2", doc.Compared, doc.Unmatched)
	}
	byName := map[string]MetricDelta{}
	for _, d := range doc.Metrics {
		byName[d.Name] = d
	}
	if byName["ipc"].Status != "fail" || byName["acts"].Status != "ok" {
		t.Fatalf("statuses: ipc=%s acts=%s", byName["ipc"].Status, byName["acts"].Status)
	}
	if byName["gone"].Status != "baseline-only" || byName["new"].Status != "candidate-only" {
		t.Fatalf("unmatched statuses wrong: %+v %+v", byName["gone"], byName["new"])
	}
	// A change from exactly zero is an infinite relative delta.
	if !math.IsInf(byName["zero"].Rel, 1) || byName["zero"].Status != "fail" {
		t.Fatalf("zero-baseline delta: %+v", byName["zero"])
	}

	// A 5% allowance passes the 5% IPC bump but the zero-jump still fails.
	doc = compare(base, cand, cmpConfig{maxRel: 0.051})
	if doc.Failed != 1 {
		t.Fatalf("with maxRel=0.051 failed=%d, want only the zero metric", doc.Failed)
	}
	// ... unless min-abs absorbs it as jitter.
	doc = compare(base, cand, cmpConfig{maxRel: 0.051, minAbs: 3})
	if doc.Failed != 0 {
		t.Fatalf("min-abs did not absorb the small absolute delta: failed=%d", doc.Failed)
	}
	// Per-metric override beats the default.
	doc = compare(base, cand, cmpConfig{overrides: []thresholdRule{{pattern: "ipc", value: 0.1}, {pattern: "zero", value: math.Inf(1)}}})
	if doc.Failed != 0 {
		t.Fatalf("overrides not applied: failed=%d", doc.Failed)
	}
}

func writeDoc(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	self := writeDoc(t, dir, "a.json", sampleReport)
	bumped := strings.Replace(sampleReport, `"ipc": 2.0153`, `"ipc": 2.5`, 1)
	other := writeDoc(t, dir, "b.json", bumped)
	extra := writeDoc(t, dir, "c.json",
		strings.Replace(sampleReport, `"bwutil": 0.42,`, ``, 1))

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"self-diff", []string{self, self}, 0},
		{"regression", []string{self, other}, 1},
		{"regression-within-threshold", []string{"-thresholds", "ipc=0.5", self, other}, 0},
		{"report-only", []string{"-report-only", self, other}, 0},
		{"missing-metric-tolerated", []string{self, extra}, 0},
		{"missing-metric-fail-on-new", []string{"-fail-on-new", self, extra}, 1},
		{"bad-threshold", []string{"-thresholds", "x", self, self}, 2},
		{"missing-file", []string{self, filepath.Join(dir, "nope.json")}, 2},
		{"usage", []string{self}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errBuf bytes.Buffer
			if got := run(tc.args, &out, &errBuf); got != tc.want {
				t.Fatalf("exit %d, want %d\nstdout:\n%s\nstderr:\n%s",
					got, tc.want, out.String(), errBuf.String())
			}
		})
	}

	// Self-diff must report every metric compared with zero deltas, and the
	// -json delta document must agree.
	var out, errBuf bytes.Buffer
	deltaPath := filepath.Join(dir, "delta.json")
	if got := run([]string{"-json", deltaPath, self, self}, &out, &errBuf); got != 0 {
		t.Fatalf("self-diff exit %d: %s", got, errBuf.String())
	}
	if !strings.Contains(out.String(), "0 failed, 0 unmatched") {
		t.Fatalf("self-diff table:\n%s", out.String())
	}
	raw, err := os.ReadFile(deltaPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc DeltaDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("delta document invalid: %v", err)
	}
	if doc.Failed != 0 || doc.Unmatched != 0 || doc.Compared == 0 {
		t.Fatalf("delta doc: %+v", doc)
	}
	for _, m := range doc.Metrics {
		if m.Delta != 0 {
			t.Fatalf("self-diff has nonzero delta for %s: %v", m.Name, m.Delta)
		}
	}
}

// TestFlattenNonFinite: NaN/Inf values — raw or string-encoded as expvar and
// delta documents emit them — must be diverted to the skip list, never into
// the comparable set, while finite string-encoded numbers are parsed.
func TestFlattenNonFinite(t *testing.T) {
	doc := map[string]any{
		"app_error": "NaN",
		"bwutil":    "+Inf",
		"ipc":       math.Inf(-1),
		"reads":     "123",
		"scheme":    "Baseline",
	}
	m, skipped := flatten(doc)
	if got := len(skipped); got != 3 {
		t.Fatalf("skipped = %v, want 3 entries", skipped)
	}
	for _, name := range []string{"app_error", "bwutil", "ipc"} {
		if _, ok := m[name]; ok {
			t.Errorf("non-finite %q entered the comparable set", name)
		}
	}
	if got := m["reads"]; got != 123 {
		t.Errorf("string-encoded finite number: got %v, want 123", got)
	}
	if _, ok := m["scheme"]; ok {
		t.Error("non-numeric string leaked into the comparable set")
	}
}

// TestCompareSkipsNonFinite: a NaN handed straight to compare must surface
// as a skipped row, not a silent pass (NaN comparisons are always false, so
// the threshold check would otherwise report "ok").
func TestCompareSkipsNonFinite(t *testing.T) {
	base := map[string]float64{"x": math.NaN(), "y": 1, "z": math.Inf(1)}
	cand := map[string]float64{"x": 5, "y": 1, "z": math.Inf(1)}
	doc := compare(base, cand, cmpConfig{})
	if doc.Skipped != 2 || doc.Compared != 1 || doc.Failed != 0 {
		t.Fatalf("skipped=%d compared=%d failed=%d, want 2/1/0",
			doc.Skipped, doc.Compared, doc.Failed)
	}
	for _, d := range doc.Metrics {
		if (d.Name == "x" || d.Name == "z") && d.Status != "skipped" {
			t.Errorf("%s status = %s, want skipped", d.Name, d.Status)
		}
	}
}

// TestRunWarnsOnNonFinite: end-to-end, a NaN metric is excluded with a
// warning on stderr and does not flip the exit status either way.
func TestRunWarnsOnNonFinite(t *testing.T) {
	dir := t.TempDir()
	nan := strings.Replace(sampleReport, `"ipc": 2.0153`, `"ipc": "NaN"`, 1)
	a := writeDoc(t, dir, "nan-a.json", nan)
	b := writeDoc(t, dir, "nan-b.json", nan)
	var out, errBuf bytes.Buffer
	if got := run([]string{a, b}, &out, &errBuf); got != 0 {
		t.Fatalf("exit %d, want 0\nstderr:\n%s", got, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "skipping non-finite metric ipc") {
		t.Fatalf("missing warning, stderr:\n%s", errBuf.String())
	}
	if strings.Contains(out.String(), "\nipc ") {
		t.Fatalf("ipc still in the table:\n%s", out.String())
	}
}

// TestMetricDeltaInfMarshal: ±Inf relative deltas must encode as strings so
// the delta document stays valid JSON.
func TestMetricDeltaInfMarshal(t *testing.T) {
	raw, err := json.Marshal(MetricDelta{Name: "x", Rel: math.Inf(1), Status: "fail"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"rel":"+Inf"`) {
		t.Fatalf("Inf rel encoding: %s", raw)
	}
}

const sampleSweepDoc = `{
	"seed": 1,
	"runs": [
		{"app": "jmein", "scheme": "Baseline", "ipc": 2.8, "activations": 11494,
		 "row_energy_nj": 258615, "app_error": 0, "coverage": 0},
		{"app": "jmein", "scheme": "Static-AMS", "ipc": 3.11, "activations": 9941,
		 "row_energy_nj": 223672.5, "app_error": 0.092, "coverage": 0.1,
		 "wall_seconds": 0.29, "cycles_per_sec": 41379.3}
	],
	"sweep": {
		"runs": 4, "executed": 2, "deduped": 2, "errors": 0,
		"prefetch_hits": 1, "events": 14, "workers": 2, "sim_cycles": 24000,
		"timing": {
			"wall_seconds": 0.61, "run_mean_seconds": 0.3,
			"run_p50_seconds": 0.29, "run_p99_seconds": 0.31,
			"worker_occupancy": 0.95, "cycles_per_sec": 39344.2,
			"alloc_bytes": 1048576, "mallocs": 4242,
			"queue_wait_hist": [{"lo": 0, "hi": 1, "count": 2}]
		},
		"spans": [{"id": 0, "app": "jmein", "scheme": "Baseline", "state": "done"}]
	}
}`

// TestFlattenSweepDoc: a lazysim -sweep -json document flattens to per-run
// rows keyed by identity plus the sweep counts, with every wall-clock value
// under the single sweep.timing.* prefix and the non-metric parts (workers,
// spans, the histogram array) left out.
func TestFlattenSweepDoc(t *testing.T) {
	var doc map[string]any
	if err := json.Unmarshal([]byte(sampleSweepDoc), &doc); err != nil {
		t.Fatal(err)
	}
	m, skipped := flatten(doc)
	if len(skipped) != 0 {
		t.Fatalf("unexpected skipped metrics: %v", skipped)
	}
	for name, want := range map[string]float64{
		"run.jmein.Baseline.ipc":              2.8,
		"run.jmein.Baseline.activations":      11494,
		"run.jmein.Static-AMS.row_energy_nj":  223672.5,
		"run.jmein.Static-AMS.app_error":      0.092,
		"run.jmein.Static-AMS.coverage":       0.1,
		"run.jmein.Static-AMS.wall_seconds":   0.29,
		"run.jmein.Static-AMS.cycles_per_sec": 41379.3,
		"sweep.runs":                          4,
		"sweep.executed":                      2,
		"sweep.deduped":                       2,
		"sweep.errors":                        0,
		"sweep.prefetch_hits":                 1,
		"sweep.events":                        14,
		"sweep.sim_cycles":                    24000,
		"sweep.timing.wall_seconds":           0.61,
		"sweep.timing.worker_occupancy":       0.95,
		"sweep.timing.alloc_bytes":            1048576,
	} {
		if got, ok := m[name]; !ok || got != want {
			t.Errorf("flatten[%q] = %v (present=%v), want %v", name, got, ok, want)
		}
	}
	for _, name := range []string{"sweep.workers", "sweep.spans", "sweep.timing.queue_wait_hist", "seed"} {
		if _, ok := m[name]; ok {
			t.Errorf("flatten admitted %q", name)
		}
	}
	// Every wall-clock key must be coverable by one of the documented ignore
	// rules: the sweep.timing.* prefix or the run.*.wall_seconds /
	// run.*.cycles_per_sec globs.
	ignoreRules := []string{"sweep.timing.*", "run.*.wall_seconds", "run.*.cycles_per_sec"}
	for name := range m {
		if strings.Contains(name, "seconds") && !ignoreMatch(name, ignoreRules) {
			t.Errorf("wall-clock metric %q not covered by the ignore rules", name)
		}
	}
}

// TestIgnore: -ignore must fully exclude matching metrics — including
// one-sided ones that would otherwise fail under -fail-on-new, and
// zero-baseline changes whose relative delta is infinite and therefore
// beyond any finite threshold.
func TestIgnore(t *testing.T) {
	if !ignoreMatch("sweep.timing.wall_seconds", []string{"sweep.timing.*"}) {
		t.Fatal("prefix pattern did not match")
	}
	if ignoreMatch("sweep.runs", []string{"sweep.timing.*"}) {
		t.Fatal("prefix pattern overmatched")
	}
	if !ignoreMatch("sweep.prefetch_hits", []string{"sweep.prefetch_hits"}) {
		t.Fatal("exact pattern did not match")
	}

	dir := t.TempDir()
	a := writeDoc(t, dir, "sweep-a.json", sampleSweepDoc)
	// Candidate: different timing everywhere (incl. a key changing from 0 and
	// a key present on one side only), identical deterministic counts.
	b := writeDoc(t, dir, "sweep-b.json", strings.NewReplacer(
		`"wall_seconds": 0.61`, `"wall_seconds": 1.9`,
		`"worker_occupancy": 0.95`, `"worker_occupancy": 0.5, "queue_wait_p99_seconds": 0.4`,
		`"prefetch_hits": 1`, `"prefetch_hits": 2`,
	).Replace(sampleSweepDoc))

	var out, errBuf bytes.Buffer
	if got := run([]string{"-fail-on-new", a, b}, &out, &errBuf); got != 1 {
		t.Fatalf("without -ignore: exit %d, want 1\n%s", got, out.String())
	}
	out.Reset()
	args := []string{"-ignore", "sweep.timing.*,sweep.prefetch_hits", "-fail-on-new", a, b}
	if got := run(args, &out, &errBuf); got != 0 {
		t.Fatalf("with -ignore: exit %d, want 0\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "ignored (-ignore)") {
		t.Fatalf("table missing ignore note:\n%s", out.String())
	}
	if strings.Contains(out.String(), "sweep.timing.") {
		t.Fatalf("ignored metric still in the table:\n%s", out.String())
	}
}

// TestGlobMatch: the -ignore matcher must support exact names, trailing-*
// prefixes (the historical behavior), and mid-string globs.
func TestGlobMatch(t *testing.T) {
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"ipc", "ipc", true},
		{"ipc", "ipc2", false},
		{"stage.*", "stage.mc.queue.p99", true},
		{"stage.*", "audit.total", false},
		{"run.*.wall_seconds", "run.jmein.Baseline.wall_seconds", true},
		{"run.*.wall_seconds", "run.jmein.Baseline.ipc", false},
		{"run.*.wall_seconds", "sweep.timing.wall_seconds", false},
		{"*.wall_seconds", "sweep.timing.wall_seconds", true},
		{"census.ch*.stall.*", "census.ch0.stall.trcd", true},
		{"census.ch*.stall.*", "census.requests", false},
		{"*", "anything", true},
	}
	for _, c := range cases {
		if got := globMatch(c.pattern, c.name); got != c.want {
			t.Errorf("globMatch(%q, %q) = %v, want %v", c.pattern, c.name, got, c.want)
		}
	}
}

const sampleCensusDoc = `{
	"telemetry": {
		"census": {
			"requests": 100, "latency_cycles": 5000, "attributed_cycles": 5000,
			"bank_cycles": 2000, "partition_cycles": 2000,
			"advancing": 1200, "timing_wait": 700, "idle": 100,
			"skippable_frac": 0.4,
			"gap_count": 300, "gap_mean": 2.67, "gap_p50": 2, "gap_p90": 5,
			"gap_p99": 9, "gap_max": 40,
			"gap_hist": [{"lo": 1, "hi": 2, "count": 150}],
			"stalls": [
				{"cause": "queued", "cycles": 3000, "share": 0.6, "requests": 90},
				{"cause": "trcd", "cycles": 2000, "share": 0.4, "requests": 40}
			],
			"residency": [
				{"state": "serving", "cycles": 900, "share": 0.45},
				{"state": "idle", "cycles": 1100, "share": 0.55}
			],
			"ingress": {"mshr_full": 7, "merge_limit": 2, "queue_full": 0},
			"channels": [
				{"channel": 0, "requests": 100, "latency_cycles": 5000,
				 "skippable_frac": 0.4,
				 "stall_cycles": {"queued": 3000, "trcd": 2000},
				 "banks": [{"bank": 0, "serving": 900, "idle": 1100}]}
			],
			"host": {"sample_every": 64, "mem_ticks_sampled": 31, "mem_ns": 123456}
		}
	}
}`

// TestFlattenCensus: the census block flattens to gateable scalars — totals,
// the Σ-invariant pair, per-cause stalls, per-state residency, ingress, and
// per-channel rollups — while the wall-clock host profile and the raw gap
// histogram stay out.
func TestFlattenCensus(t *testing.T) {
	var doc map[string]any
	if err := json.Unmarshal([]byte(sampleCensusDoc), &doc); err != nil {
		t.Fatal(err)
	}
	m, skipped := flatten(doc)
	if len(skipped) != 0 {
		t.Fatalf("unexpected skipped metrics: %v", skipped)
	}
	for name, want := range map[string]float64{
		"census.requests":              100,
		"census.latency_cycles":        5000,
		"census.attributed_cycles":     5000,
		"census.bank_cycles":           2000,
		"census.partition_cycles":      2000,
		"census.advancing":             1200,
		"census.timing_wait":           700,
		"census.idle":                  100,
		"census.skippable_frac":        0.4,
		"census.gap_p99":               9,
		"census.stall.queued.cycles":   3000,
		"census.stall.queued.requests": 90,
		"census.stall.trcd.cycles":     2000,
		"census.state.serving.cycles":  900,
		"census.state.idle.cycles":     1100,
		"census.ingress.mshr_full":     7,
		"census.ch0.requests":          100,
		"census.ch0.skippable_frac":    0.4,
		"census.ch0.stall.queued":      3000,
		"census.ch0.stall.trcd":        2000,
	} {
		if got, ok := m[name]; !ok || got != want {
			t.Errorf("flatten[%q] = %v (present=%v), want %v", name, got, ok, want)
		}
	}
	for name := range m {
		if strings.Contains(name, "host") || strings.Contains(name, "gap_hist") {
			t.Errorf("flatten leaked wall-clock/derived census key %q", name)
		}
	}
}
