package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleReport = `{
	"app": "SCP", "scheme": "Dyn-DMS+Dyn-AMS", "seed": 1,
	"ipc": 2.0153, "bwutil": 0.42, "activations": 31549,
	"row_energy_nj": 709852.5, "wall_ms": 987.6,
	"energy_by_channel": [
		{"channel": 0, "row_nj": 100, "access_nj": 50, "background_nj": 25, "total_nj": 175,
		 "banks": [{"bank": 0, "row_nj": 100, "access_nj": 50}]}
	],
	"hottest_banks": [{"channel": 0, "bank": 0, "row_nj": 100}],
	"telemetry": {
		"stages": [
			{"stage": "mc.queue", "count": 10, "mean": 5.5, "p50": 5, "p90": 9, "p99": 10, "max": 12}
		],
		"series": [{"mem_cycle": 1024}],
		"audit": {
			"total": 120, "dms_delay_holds": 70, "dms_delay_expiries": 10,
			"ams_drops": 25, "ams_skips": 15,
			"reasons": [
				{"unit": "dms", "kind": "delay", "reason": "delay-hold", "count": 70},
				{"unit": "ams", "kind": "drop", "reason": "drop", "count": 25},
				{"unit": "ams", "kind": "skip", "reason": "row-open", "count": 15}
			],
			"adapt": [{"cycle": 1024, "unit": "ams", "th_rbl": 7}]
		},
		"quality": {
			"lines": 25, "words": 800, "mean_abs_error": 0.5,
			"mean_rel_error": 0.01, "rel_p50": 0.001, "rel_p99": 0.2,
			"max_rel_error": 1.5,
			"worst": [{"addr": 4096, "mean_rel": 1.5}]
		}
	}
}`

func TestFlatten(t *testing.T) {
	var doc map[string]any
	if err := json.Unmarshal([]byte(sampleReport), &doc); err != nil {
		t.Fatal(err)
	}
	m, skipped := flatten(doc)
	if len(skipped) != 0 {
		t.Fatalf("unexpected skipped metrics: %v", skipped)
	}

	for name, want := range map[string]float64{
		"ipc":                    2.0153,
		"activations":            31549,
		"row_energy_nj":          709852.5,
		"energy.ch0.row_nj":      100,
		"energy.ch0.total_nj":    175,
		"stage.mc.queue.p99":     10,
		"stage.mc.queue.mean":    5.5,
		"audit.total":            120,
		"audit.dms_delay_holds":  70,
		"audit.ams_drops":        25,
		"audit.dms.delay-hold":   70,
		"audit.ams.drop":         25,
		"audit.ams.row-open":     15,
		"quality.lines":          25,
		"quality.mean_rel_error": 0.01,
		"quality.rel_p99":        0.2,
	} {
		if got, ok := m[name]; !ok || got != want {
			t.Errorf("flatten[%q] = %v (present=%v), want %v", name, got, ok, want)
		}
	}
	// Identity, noise, and derived views must stay out of the gate.
	for _, name := range []string{"seed", "wall_ms", "app", "scheme", "hottest_banks"} {
		if _, ok := m[name]; ok {
			t.Errorf("flatten leaked %q into the comparable set", name)
		}
	}
}

func TestParseThresholdsAndResolve(t *testing.T) {
	rules, err := parseThresholds("ipc=0.02, stage.*=0.10,stage.mc.queue.p99=0.5")
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]float64{
		"ipc":                0.02, // exact
		"stage.mc.queue.p50": 0.10, // prefix
		"stage.mc.queue.p99": 0.5,  // exact beats prefix
		"activations":        0,    // default
	} {
		if got := resolve(name, rules, 0); got != want {
			t.Errorf("resolve(%q) = %v, want %v", name, got, want)
		}
	}
	for _, bad := range []string{"ipc", "ipc=x", "ipc=-1"} {
		if _, err := parseThresholds(bad); err == nil {
			t.Errorf("parseThresholds(%q) accepted", bad)
		}
	}
}

func TestCompare(t *testing.T) {
	base := map[string]float64{"ipc": 2.0, "acts": 100, "gone": 5, "zero": 0}
	cand := map[string]float64{"ipc": 2.1, "acts": 100, "new": 7, "zero": 3}

	// Default: exact match required, every delta fails.
	doc := compare(base, cand, cmpConfig{})
	if doc.Compared != 3 || doc.Unmatched != 2 {
		t.Fatalf("compared=%d unmatched=%d, want 3/2", doc.Compared, doc.Unmatched)
	}
	byName := map[string]MetricDelta{}
	for _, d := range doc.Metrics {
		byName[d.Name] = d
	}
	if byName["ipc"].Status != "fail" || byName["acts"].Status != "ok" {
		t.Fatalf("statuses: ipc=%s acts=%s", byName["ipc"].Status, byName["acts"].Status)
	}
	if byName["gone"].Status != "baseline-only" || byName["new"].Status != "candidate-only" {
		t.Fatalf("unmatched statuses wrong: %+v %+v", byName["gone"], byName["new"])
	}
	// A change from exactly zero is an infinite relative delta.
	if !math.IsInf(byName["zero"].Rel, 1) || byName["zero"].Status != "fail" {
		t.Fatalf("zero-baseline delta: %+v", byName["zero"])
	}

	// A 5% allowance passes the 5% IPC bump but the zero-jump still fails.
	doc = compare(base, cand, cmpConfig{maxRel: 0.051})
	if doc.Failed != 1 {
		t.Fatalf("with maxRel=0.051 failed=%d, want only the zero metric", doc.Failed)
	}
	// ... unless min-abs absorbs it as jitter.
	doc = compare(base, cand, cmpConfig{maxRel: 0.051, minAbs: 3})
	if doc.Failed != 0 {
		t.Fatalf("min-abs did not absorb the small absolute delta: failed=%d", doc.Failed)
	}
	// Per-metric override beats the default.
	doc = compare(base, cand, cmpConfig{overrides: []thresholdRule{{pattern: "ipc", value: 0.1}, {pattern: "zero", value: math.Inf(1)}}})
	if doc.Failed != 0 {
		t.Fatalf("overrides not applied: failed=%d", doc.Failed)
	}
}

func writeDoc(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunExitCodes(t *testing.T) {
	dir := t.TempDir()
	self := writeDoc(t, dir, "a.json", sampleReport)
	bumped := strings.Replace(sampleReport, `"ipc": 2.0153`, `"ipc": 2.5`, 1)
	other := writeDoc(t, dir, "b.json", bumped)
	extra := writeDoc(t, dir, "c.json",
		strings.Replace(sampleReport, `"bwutil": 0.42,`, ``, 1))

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"self-diff", []string{self, self}, 0},
		{"regression", []string{self, other}, 1},
		{"regression-within-threshold", []string{"-thresholds", "ipc=0.5", self, other}, 0},
		{"report-only", []string{"-report-only", self, other}, 0},
		{"missing-metric-tolerated", []string{self, extra}, 0},
		{"missing-metric-fail-on-new", []string{"-fail-on-new", self, extra}, 1},
		{"bad-threshold", []string{"-thresholds", "x", self, self}, 2},
		{"missing-file", []string{self, filepath.Join(dir, "nope.json")}, 2},
		{"usage", []string{self}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errBuf bytes.Buffer
			if got := run(tc.args, &out, &errBuf); got != tc.want {
				t.Fatalf("exit %d, want %d\nstdout:\n%s\nstderr:\n%s",
					got, tc.want, out.String(), errBuf.String())
			}
		})
	}

	// Self-diff must report every metric compared with zero deltas, and the
	// -json delta document must agree.
	var out, errBuf bytes.Buffer
	deltaPath := filepath.Join(dir, "delta.json")
	if got := run([]string{"-json", deltaPath, self, self}, &out, &errBuf); got != 0 {
		t.Fatalf("self-diff exit %d: %s", got, errBuf.String())
	}
	if !strings.Contains(out.String(), "0 failed, 0 unmatched") {
		t.Fatalf("self-diff table:\n%s", out.String())
	}
	raw, err := os.ReadFile(deltaPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc DeltaDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("delta document invalid: %v", err)
	}
	if doc.Failed != 0 || doc.Unmatched != 0 || doc.Compared == 0 {
		t.Fatalf("delta doc: %+v", doc)
	}
	for _, m := range doc.Metrics {
		if m.Delta != 0 {
			t.Fatalf("self-diff has nonzero delta for %s: %v", m.Name, m.Delta)
		}
	}
}

// TestFlattenNonFinite: NaN/Inf values — raw or string-encoded as expvar and
// delta documents emit them — must be diverted to the skip list, never into
// the comparable set, while finite string-encoded numbers are parsed.
func TestFlattenNonFinite(t *testing.T) {
	doc := map[string]any{
		"app_error": "NaN",
		"bwutil":    "+Inf",
		"ipc":       math.Inf(-1),
		"reads":     "123",
		"scheme":    "Baseline",
	}
	m, skipped := flatten(doc)
	if got := len(skipped); got != 3 {
		t.Fatalf("skipped = %v, want 3 entries", skipped)
	}
	for _, name := range []string{"app_error", "bwutil", "ipc"} {
		if _, ok := m[name]; ok {
			t.Errorf("non-finite %q entered the comparable set", name)
		}
	}
	if got := m["reads"]; got != 123 {
		t.Errorf("string-encoded finite number: got %v, want 123", got)
	}
	if _, ok := m["scheme"]; ok {
		t.Error("non-numeric string leaked into the comparable set")
	}
}

// TestCompareSkipsNonFinite: a NaN handed straight to compare must surface
// as a skipped row, not a silent pass (NaN comparisons are always false, so
// the threshold check would otherwise report "ok").
func TestCompareSkipsNonFinite(t *testing.T) {
	base := map[string]float64{"x": math.NaN(), "y": 1, "z": math.Inf(1)}
	cand := map[string]float64{"x": 5, "y": 1, "z": math.Inf(1)}
	doc := compare(base, cand, cmpConfig{})
	if doc.Skipped != 2 || doc.Compared != 1 || doc.Failed != 0 {
		t.Fatalf("skipped=%d compared=%d failed=%d, want 2/1/0",
			doc.Skipped, doc.Compared, doc.Failed)
	}
	for _, d := range doc.Metrics {
		if (d.Name == "x" || d.Name == "z") && d.Status != "skipped" {
			t.Errorf("%s status = %s, want skipped", d.Name, d.Status)
		}
	}
}

// TestRunWarnsOnNonFinite: end-to-end, a NaN metric is excluded with a
// warning on stderr and does not flip the exit status either way.
func TestRunWarnsOnNonFinite(t *testing.T) {
	dir := t.TempDir()
	nan := strings.Replace(sampleReport, `"ipc": 2.0153`, `"ipc": "NaN"`, 1)
	a := writeDoc(t, dir, "nan-a.json", nan)
	b := writeDoc(t, dir, "nan-b.json", nan)
	var out, errBuf bytes.Buffer
	if got := run([]string{a, b}, &out, &errBuf); got != 0 {
		t.Fatalf("exit %d, want 0\nstderr:\n%s", got, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "skipping non-finite metric ipc") {
		t.Fatalf("missing warning, stderr:\n%s", errBuf.String())
	}
	if strings.Contains(out.String(), "\nipc ") {
		t.Fatalf("ipc still in the table:\n%s", out.String())
	}
}

// TestMetricDeltaInfMarshal: ±Inf relative deltas must encode as strings so
// the delta document stays valid JSON.
func TestMetricDeltaInfMarshal(t *testing.T) {
	raw, err := json.Marshal(MetricDelta{Name: "x", Rel: math.Inf(1), Status: "fail"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"rel":"+Inf"`) {
		t.Fatalf("Inf rel encoding: %s", raw)
	}
}
