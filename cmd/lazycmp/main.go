// Command lazycmp diffs two lazysim -json telemetry documents and gates on
// regressions: it compares every numeric run metric (IPC, BWUTIL,
// activations, row/memory energy, AMS coverage and app error, per-stage
// latency percentiles, per-channel energy attribution), prints a human
// table plus an optional machine-readable delta JSON, and exits non-zero
// when any delta exceeds its threshold.
//
// Usage:
//
//	lazycmp [flags] baseline.json candidate.json
//
//	-max-rel F      allowed |relative delta| for every metric (default 0:
//	                metrics must match exactly)
//	-min-abs F      ignore deltas whose |absolute delta| is below F
//	-thresholds S   per-metric overrides, e.g. "ipc=0.02,stage.*=0.10";
//	                a trailing * matches by prefix, later entries win ties
//	                only by being more specific (exact > longest prefix)
//	-ignore S       comma-separated metric patterns excluded from the
//	                comparison entirely — for nondeterministic keys like
//	                sweep.timing.* or run.*.wall_seconds where no finite
//	                threshold works (a change from exactly 0 has infinite
//	                relative delta). Each * matches any substring, so both
//	                trailing prefixes and mid-string globs work.
//	-json FILE      write the delta document to FILE ("-" for stdout)
//	-report-only    always exit 0; print and emit deltas only
//	-fail-on-new    treat metrics present in only one document as failures
//
// Non-finite values (NaN, ±Inf — numbers or their string encodings, which
// delta documents and expvar produce) are excluded from the gate with a
// warning: they can neither silently pass an exact-match comparison nor
// emit an unparsable delta.
//
// Exit status: 0 all metrics within thresholds, 1 regression detected,
// 2 usage or input error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"lazydram/internal/buildinfo"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lazycmp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		maxRel     = fs.Float64("max-rel", 0, "allowed |relative delta| for every metric (0 = exact match)")
		minAbs     = fs.Float64("min-abs", 0, "ignore deltas with |absolute delta| below this")
		thresholds = fs.String("thresholds", "", `per-metric threshold overrides, e.g. "ipc=0.02,stage.*=0.10"`)
		ignore     = fs.String("ignore", "", `comma-separated metric patterns to exclude entirely, e.g. "sweep.timing.*"`)
		jsonOut    = fs.String("json", "", `write the machine-readable delta document here ("-" for stdout)`)
		reportOnly = fs.Bool("report-only", false, "never fail: print and emit deltas, exit 0")
		failOnNew  = fs.Bool("fail-on-new", false, "fail when a metric exists in only one document")
		version    = fs.Bool("version", false, "print build provenance and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, buildinfo.Get().String())
		return 0
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: lazycmp [flags] baseline.json candidate.json")
		return 2
	}
	th, err := parseThresholds(*thresholds)
	if err != nil {
		fmt.Fprintln(stderr, "lazycmp:", err)
		return 2
	}
	basePath, candPath := fs.Arg(0), fs.Arg(1)
	base, baseSkipped, err := loadMetrics(basePath)
	if err != nil {
		fmt.Fprintln(stderr, "lazycmp:", err)
		return 2
	}
	cand, candSkipped, err := loadMetrics(candPath)
	if err != nil {
		fmt.Fprintln(stderr, "lazycmp:", err)
		return 2
	}
	for _, n := range baseSkipped {
		fmt.Fprintf(stderr, "lazycmp: warning: %s: skipping non-finite metric %s\n", basePath, n)
	}
	for _, n := range candSkipped {
		fmt.Fprintf(stderr, "lazycmp: warning: %s: skipping non-finite metric %s\n", candPath, n)
	}

	ignored := dropIgnored(parseIgnore(*ignore), base, cand)

	doc := compare(base, cand, cmpConfig{maxRel: *maxRel, minAbs: *minAbs, overrides: th})
	doc.Baseline = basePath
	doc.Candidate = candPath
	doc.Ignored = ignored

	printTable(stdout, doc)

	if *jsonOut != "" {
		var w io.Writer = stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fmt.Fprintln(stderr, "lazycmp:", err)
				return 2
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(stderr, "lazycmp:", err)
			return 2
		}
	}

	if *reportOnly {
		return 0
	}
	if doc.Failed > 0 || (*failOnNew && doc.Unmatched > 0) {
		return 1
	}
	return 0
}

// loadMetrics reads one lazysim -json document and flattens it to
// name -> value, also returning the names of non-finite metrics it refused.
func loadMetrics(path string) (map[string]float64, []string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	out, skipped := flatten(doc)
	return out, skipped, nil
}

// numeric coerces a JSON value to a float: numbers directly, strings parsed
// (delta documents and the expvar exposition encode NaN/±Inf as strings).
func numeric(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case string:
		f, err := strconv.ParseFloat(x, 64)
		if err != nil {
			return 0, false
		}
		return f, true
	}
	return 0, false
}

// flatten extracts the comparable numeric metrics from a report document:
// top-level scalars (minus run identity and wall time), per-stage latency
// digests keyed by stage name, the per-channel energy attribution, and the
// audit/quality/fault digests. Time series, per-bank rows, and the hottest-bank
// summary are derived views and stay out of the gate. Non-finite values are
// diverted to the skipped list instead of entering the comparable set,
// where a NaN would neither equal itself (silent pass under exact-match)
// nor render as valid JSON in the delta document.
func flatten(doc map[string]any) (out map[string]float64, skipped []string) {
	out = make(map[string]float64)
	put := func(name string, v any) {
		x, ok := numeric(v)
		if !ok {
			return
		}
		if math.IsNaN(x) || math.IsInf(x, 0) {
			skipped = append(skipped, name)
			return
		}
		out[name] = x
	}
	for k, v := range doc {
		switch k {
		case "seed", "wall_ms", "hottest_banks":
			// seed is identity, wall time is noise, hottest banks are a
			// derived top-N whose membership may flap on ties.
		case "app", "scheme":
			// run identity, not metrics
		case "meta":
			// build provenance (meta.build revision/dirty/Go version), not a
			// result: skipped so baselines recorded on different commits or
			// toolchains don't churn the gate.
		case "runs":
			// lazysim -sweep -json: one row per run, keyed by its identity.
			arr, _ := v.([]any)
			for _, e := range arr {
				m, ok := e.(map[string]any)
				if !ok {
					continue
				}
				app, _ := m["app"].(string)
				scheme, _ := m["scheme"].(string)
				if app == "" || scheme == "" {
					continue
				}
				// wall_seconds and cycles_per_sec are wall-clock: flattened so
				// they appear in reports, ignored in CI gates via
				// -ignore "run.*.wall_seconds,run.*.cycles_per_sec".
				for _, f := range []string{"ipc", "activations", "row_energy_nj",
					"app_error", "coverage", "wall_seconds", "cycles_per_sec"} {
					if x, ok := m[f]; ok {
						put("run."+app+"."+scheme+"."+f, x)
					}
				}
			}
		case "sweep":
			// Run-lifecycle summary: the counts are deterministic (invariant
			// under worker count) and gate; everything wall-clock lives under
			// sweep.timing.* so one -ignore prefix rule excludes it. Workers
			// is a knob, not a result, and spans are per-run raw material.
			m, _ := v.(map[string]any)
			for _, f := range []string{"runs", "executed", "deduped", "errors",
				"prefetch_hits", "events", "sim_cycles"} {
				if x, ok := m[f]; ok {
					put("sweep."+f, x)
				}
			}
			if tm, ok := m["timing"].(map[string]any); ok {
				for tk, tv := range tm {
					put("sweep.timing."+tk, tv) // non-numeric (the histogram array) is skipped by put
				}
			}
		case "energy_by_channel":
			arr, _ := v.([]any)
			for _, e := range arr {
				m, ok := e.(map[string]any)
				if !ok {
					continue
				}
				ch, ok := m["channel"].(float64)
				if !ok {
					continue
				}
				for _, f := range []string{"row_nj", "access_nj", "background_nj", "total_nj"} {
					if x, ok := m[f]; ok {
						put(fmt.Sprintf("energy.ch%d.%s", int(ch), f), x)
					}
				}
			}
		case "telemetry":
			m, _ := v.(map[string]any)
			stages, _ := m["stages"].([]any)
			for _, s := range stages {
				sm, ok := s.(map[string]any)
				if !ok {
					continue
				}
				name, _ := sm["stage"].(string)
				if name == "" {
					continue
				}
				for _, f := range []string{"count", "mean", "p50", "p90", "p99", "max"} {
					if x, ok := sm[f]; ok {
						put("stage."+name+"."+f, x)
					}
				}
			}
			if am, ok := m["audit"].(map[string]any); ok {
				for _, f := range []string{"total", "dms_delay_holds", "dms_delay_expiries", "ams_drops", "ams_skips"} {
					if x, ok := am[f]; ok {
						put("audit."+f, x)
					}
				}
				reasons, _ := am["reasons"].([]any)
				for _, rv := range reasons {
					rm, ok := rv.(map[string]any)
					if !ok {
						continue
					}
					unit, _ := rm["unit"].(string)
					reason, _ := rm["reason"].(string)
					if unit == "" || reason == "" {
						continue
					}
					put("audit."+unit+"."+reason, rm["count"])
				}
			}
			if qm, ok := m["quality"].(map[string]any); ok {
				putQuality(put, "quality.", qm)
			}
			if dm, ok := m["digest"].(map[string]any); ok {
				// The state-digest chain summary: the hi/lo uint32 halves are
				// exact in float64, so an exact-match gate on them IS a
				// bit-identity gate on the full 64-bit digests. The hex-string
				// forms ("0x...") fail the numeric parse and stay out.
				for _, f := range []string{"every", "intervals", "dropped",
					"final_hi", "final_lo", "chain_hi", "chain_lo"} {
					if x, ok := dm[f]; ok {
						put("digest."+f, x)
					}
				}
			}
			if cm, ok := m["census"].(map[string]any); ok {
				putCensus(put, cm)
			}
			if fm, ok := m["fault"].(map[string]any); ok {
				for _, f := range []string{"seed", "bus_ber", "weak_density",
					"reads", "corrupted_reads", "act_flips", "ret_flips",
					"bus_flips", "total_flips", "weak_rows", "weak_cells", "digest"} {
					if x, ok := fm[f]; ok {
						put("fault."+f, x)
					}
				}
				if qm, ok := fm["quality"].(map[string]any); ok {
					putQuality(put, "fault.quality.", qm)
				}
			}
		default:
			put(k, v)
		}
	}
	return out, skipped
}

// putCensus flattens the cycle-census summary: the machine-level scalars
// (including the Σ-invariant pair latency_cycles/attributed_cycles, so an
// exact-match gate doubles as an exactness gate), the per-cause stall and
// per-state residency decompositions, ingress backpressure, and the
// per-channel rollup. The host phase profile is wall-clock and stays out,
// like wall_ms; the gap histogram buckets are a derived view of the gated
// gap_* percentiles.
func putCensus(put func(string, any), cm map[string]any) {
	for _, f := range []string{"requests", "latency_cycles", "attributed_cycles",
		"bank_cycles", "partition_cycles", "advancing", "timing_wait", "idle",
		"skippable_frac", "gap_count", "gap_mean", "gap_p50", "gap_p90",
		"gap_p99", "gap_max"} {
		if x, ok := cm[f]; ok {
			put("census."+f, x)
		}
	}
	stalls, _ := cm["stalls"].([]any)
	for _, sv := range stalls {
		sm, ok := sv.(map[string]any)
		if !ok {
			continue
		}
		cause, _ := sm["cause"].(string)
		if cause == "" {
			continue
		}
		put("census.stall."+cause+".cycles", sm["cycles"])
		put("census.stall."+cause+".requests", sm["requests"])
	}
	res, _ := cm["residency"].([]any)
	for _, rv := range res {
		rm, ok := rv.(map[string]any)
		if !ok {
			continue
		}
		state, _ := rm["state"].(string)
		if state == "" {
			continue
		}
		put("census.state."+state+".cycles", rm["cycles"])
	}
	if im, ok := cm["ingress"].(map[string]any); ok {
		for _, f := range []string{"mshr_full", "merge_limit", "queue_full"} {
			if x, ok := im[f]; ok {
				put("census.ingress."+f, x)
			}
		}
	}
	chans, _ := cm["channels"].([]any)
	for _, cv := range chans {
		chm, ok := cv.(map[string]any)
		if !ok {
			continue
		}
		ch, ok := chm["channel"].(float64)
		if !ok {
			continue
		}
		prefix := fmt.Sprintf("census.ch%d.", int(ch))
		for _, f := range []string{"requests", "latency_cycles", "skippable_frac"} {
			if x, ok := chm[f]; ok {
				put(prefix+f, x)
			}
		}
		if scm, ok := chm["stall_cycles"].(map[string]any); ok {
			for cause, x := range scm {
				put(prefix+"stall."+cause, x)
			}
		}
	}
}

// putQuality flattens one QualitySummary map (the AMS-drop log and the
// injected-fault log share the shape) under the given key prefix.
func putQuality(put func(string, any), prefix string, qm map[string]any) {
	for _, f := range []string{"lines", "words", "skipped_words",
		"mean_abs_error", "mean_rel_error",
		"rel_p50", "rel_p90", "rel_p99", "max_rel_error"} {
		if x, ok := qm[f]; ok {
			put(prefix+f, x)
		}
	}
}

// parseIgnore splits the -ignore pattern list: exact names or glob patterns
// where each * matches any substring (so run.*.wall_seconds covers every
// app×scheme row).
func parseIgnore(s string) []string {
	var pats []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			pats = append(pats, p)
		}
	}
	return pats
}

// ignoreMatch reports whether a metric name matches any ignore pattern.
func ignoreMatch(name string, pats []string) bool {
	for _, pat := range pats {
		if globMatch(pat, name) {
			return true
		}
	}
	return false
}

// globMatch reports whether name matches pattern, where each * matches any
// (possibly empty) substring; a pattern with no * must match exactly. This
// subsumes the old trailing-* prefix match and adds mid-string globs like
// run.*.wall_seconds.
func globMatch(pattern, name string) bool {
	parts := strings.Split(pattern, "*")
	if len(parts) == 1 {
		return pattern == name
	}
	if !strings.HasPrefix(name, parts[0]) {
		return false
	}
	rest := name[len(parts[0]):]
	for _, part := range parts[1 : len(parts)-1] {
		idx := strings.Index(rest, part)
		if idx < 0 {
			return false
		}
		rest = rest[idx+len(part):]
	}
	return strings.HasSuffix(rest, parts[len(parts)-1])
}

// dropIgnored removes matching metrics from both documents and returns how
// many distinct names were excluded. Unlike a loose threshold, exclusion
// also suppresses the unmatched (one-sided) status, which is what
// nondeterministic keys need under -fail-on-new.
func dropIgnored(pats []string, maps ...map[string]float64) int {
	if len(pats) == 0 {
		return 0
	}
	dropped := make(map[string]bool)
	for _, m := range maps {
		for name := range m {
			if ignoreMatch(name, pats) {
				delete(m, name)
				dropped[name] = true
			}
		}
	}
	return len(dropped)
}

// thresholdRule is one "-thresholds" entry; Pattern with a trailing *
// matches by prefix.
type thresholdRule struct {
	pattern string
	value   float64
}

func parseThresholds(s string) ([]thresholdRule, error) {
	if s == "" {
		return nil, nil
	}
	var rules []thresholdRule
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("threshold %q: want name=fraction", part)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 {
			return nil, fmt.Errorf("threshold %q: bad fraction %q", part, val)
		}
		rules = append(rules, thresholdRule{pattern: strings.TrimSpace(name), value: f})
	}
	return rules, nil
}

// resolve returns the threshold for a metric: exact rule, else the longest
// matching prefix rule, else the default.
func resolve(name string, rules []thresholdRule, def float64) float64 {
	best, bestLen := def, -1
	for _, r := range rules {
		if r.pattern == name {
			return r.value
		}
		if p, ok := strings.CutSuffix(r.pattern, "*"); ok &&
			strings.HasPrefix(name, p) && len(p) > bestLen {
			best, bestLen = r.value, len(p)
		}
	}
	return best
}

// MetricDelta is one row of the comparison document.
type MetricDelta struct {
	Name      string  `json:"name"`
	Baseline  float64 `json:"baseline"`
	Candidate float64 `json:"candidate"`
	Delta     float64 `json:"delta"`
	// Rel is the relative delta versus the baseline; +-Inf encodes a
	// change from exactly zero and marshals as a string.
	Rel       float64 `json:"-"`
	Threshold float64 `json:"threshold"`
	// Status is "ok", "fail", "skipped" (non-finite on either side),
	// "baseline-only", or "candidate-only".
	Status string `json:"status"`
}

// MarshalJSON renders Rel as a number, or as a string for +-Inf.
func (d MetricDelta) MarshalJSON() ([]byte, error) {
	type alias MetricDelta
	out := struct {
		alias
		Rel any `json:"rel"`
	}{alias: alias(d), Rel: d.Rel}
	if math.IsInf(d.Rel, 0) {
		out.Rel = fmt.Sprintf("%v", d.Rel)
	}
	return json.Marshal(out)
}

// DeltaDoc is the machine-readable output of one comparison.
type DeltaDoc struct {
	Baseline  string        `json:"baseline"`
	Candidate string        `json:"candidate"`
	Compared  int           `json:"compared"`
	Failed    int           `json:"failed"`
	Unmatched int           `json:"unmatched"`
	Skipped   int           `json:"skipped,omitempty"`
	Ignored   int           `json:"ignored,omitempty"`
	Metrics   []MetricDelta `json:"metrics"`
}

type cmpConfig struct {
	maxRel    float64
	minAbs    float64
	overrides []thresholdRule
}

// compare builds the delta rows for the union of both metric sets, sorted
// by name.
func compare(base, cand map[string]float64, cfg cmpConfig) DeltaDoc {
	names := make([]string, 0, len(base)+len(cand))
	for k := range base {
		names = append(names, k)
	}
	for k := range cand {
		if _, ok := base[k]; !ok {
			names = append(names, k)
		}
	}
	sort.Strings(names)

	var doc DeltaDoc
	for _, name := range names {
		a, inA := base[name]
		b, inB := cand[name]
		d := MetricDelta{Name: name, Baseline: a, Candidate: b,
			Threshold: resolve(name, cfg.overrides, cfg.maxRel)}
		switch {
		case !inA:
			d.Status = "candidate-only"
			doc.Unmatched++
		case !inB:
			d.Status = "baseline-only"
			doc.Unmatched++
		case math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0):
			// flatten never admits non-finite values, but callers composing
			// maps directly get the same protection: a NaN comparison is
			// false either way, which would read as a silent pass.
			d.Status = "skipped"
			doc.Skipped++
		default:
			doc.Compared++
			d.Delta = b - a
			switch {
			case d.Delta == 0:
				d.Rel = 0
			case a == 0:
				d.Rel = math.Inf(1)
				if d.Delta < 0 {
					d.Rel = math.Inf(-1)
				}
			default:
				d.Rel = d.Delta / math.Abs(a)
			}
			d.Status = "ok"
			if math.Abs(d.Delta) > cfg.minAbs && math.Abs(d.Rel) > d.Threshold {
				d.Status = "fail"
				doc.Failed++
			}
		}
		doc.Metrics = append(doc.Metrics, d)
	}
	return doc
}

// printTable renders the human-readable comparison.
func printTable(w io.Writer, doc DeltaDoc) {
	fmt.Fprintf(w, "%-36s %14s %14s %14s %9s  %s\n",
		"metric", "baseline", "candidate", "delta", "rel", "status")
	for _, d := range doc.Metrics {
		rel := "-"
		if d.Status == "ok" || d.Status == "fail" {
			switch {
			case math.IsInf(d.Rel, 0):
				rel = fmt.Sprintf("%v", d.Rel)
			default:
				rel = fmt.Sprintf("%+.3f%%", 100*d.Rel)
			}
		}
		fmt.Fprintf(w, "%-36s %14.6g %14.6g %+14.6g %9s  %s\n",
			d.Name, d.Baseline, d.Candidate, d.Delta, rel, d.Status)
	}
	fmt.Fprintf(w, "compared %d metrics: %d failed, %d unmatched",
		doc.Compared, doc.Failed, doc.Unmatched)
	if doc.Skipped > 0 {
		fmt.Fprintf(w, ", %d skipped (non-finite)", doc.Skipped)
	}
	if doc.Ignored > 0 {
		fmt.Fprintf(w, ", %d ignored (-ignore)", doc.Ignored)
	}
	fmt.Fprintln(w)
}
