// Command lazyreport renders one or two lazysim -json documents into a
// single self-contained HTML report: run summary, scheduler decision-reason
// breakdown, Dyn-DMS/Dyn-AMS adaptation timeline, per-stage latency CDFs,
// time-series small multiples, bank heatmaps, and approximation-quality
// error histograms. With two documents it prepends a side-by-side scheme
// comparison. The rendering lives in internal/report so the lazyd daemon can
// serve the same page on demand; this command is the thin file-to-file CLI.
//
// Usage:
//
//	lazyreport run.json -o report.html
//	lazyreport baseline.json candidate.json -o compare.html
//
// Flags may appear before or after the positional documents.
package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"lazydram/internal/buildinfo"
	"lazydram/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: lazyreport [-o report.html] run.json [baseline.json]")
}

func run(args []string, stderr io.Writer) int {
	out := "report.html"
	var inputs []string
	for i := 0; i < len(args); i++ {
		switch a := args[i]; {
		case a == "-o" || a == "--o" || a == "-output" || a == "--output":
			i++
			if i >= len(args) {
				usage(stderr)
				return 2
			}
			out = args[i]
		case strings.HasPrefix(a, "-o="):
			out = strings.TrimPrefix(a, "-o=")
		case a == "-h" || a == "-help" || a == "--help":
			usage(stderr)
			return 0
		case a == "-version" || a == "--version":
			fmt.Fprintln(stderr, buildinfo.Get().String())
			return 0
		case strings.HasPrefix(a, "-"):
			fmt.Fprintf(stderr, "lazyreport: unknown flag %s\n", a)
			usage(stderr)
			return 2
		default:
			inputs = append(inputs, a)
		}
	}
	if len(inputs) < 1 || len(inputs) > 2 {
		usage(stderr)
		return 2
	}
	var docs []*report.Doc
	for _, p := range inputs {
		d, err := report.Load(p)
		if err != nil {
			fmt.Fprintln(stderr, "lazyreport:", err)
			return 2
		}
		docs = append(docs, d)
	}
	html := report.BuildHTML(docs)
	if err := os.WriteFile(out, []byte(html), 0o644); err != nil {
		fmt.Fprintln(stderr, "lazyreport:", err)
		return 1
	}
	fmt.Fprintf(stderr, "lazyreport: wrote %s (%d bytes)\n", out, len(html))
	return 0
}
