package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleDoc resembles a lazysim -json document with audit and quality
// telemetry attached.
const sampleDoc = `{
  "app": "SCP", "scheme": "dyn-both", "seed": 1,
  "core_cycles": 120000, "instructions": 95000, "ipc": 0.7917,
  "activations": 5200, "reads": 61000, "writes": 9400,
  "avg_rbl": 3.4, "bwutil": 0.62, "coverage": 0.081, "dropped": 4940,
  "queue_occ": 11.2, "row_energy_nj": 3120.5, "mem_energy_nj": 9980.1,
  "app_error": 0.0123, "final_delay": 384, "final_th_rbl": 3,
  "mean_delay": 201.7, "mean_th_rbl": 2.9,
  "energy_by_channel": [
    {"channel": 0, "row_nj": 1600.2, "total_nj": 5100.0, "banks": [
      {"bank": 0, "row_nj": 900.1, "activations": 1400, "row_hits": 9000,
       "row_conflicts": 310, "dms_delay_cycles": 5200, "ams_drops": 1300},
      {"bank": 1, "row_nj": 700.1, "activations": 1200, "row_hits": 8000,
       "row_conflicts": 250, "dms_delay_cycles": 4100, "ams_drops": 1100}
    ]},
    {"channel": 1, "row_nj": 1520.3, "total_nj": 4880.1, "banks": [
      {"bank": 0, "row_nj": 800.2, "activations": 1300, "row_hits": 8500,
       "row_conflicts": 280, "dms_delay_cycles": 4600, "ams_drops": 1280},
      {"bank": 1, "row_nj": 720.1, "activations": 1300, "row_hits": 8200,
       "row_conflicts": 260, "dms_delay_cycles": 4500, "ams_drops": 1260}
    ]}
  ],
  "telemetry": {
    "stages": [
      {"stage": "queue", "clock": "mem", "count": 70000, "mean": 41.2,
       "p50": 18, "p90": 120, "p99": 600, "max": 2400},
      {"stage": "service", "clock": "mem", "count": 70000, "mean": 19.8,
       "p50": 14, "p90": 44, "p99": 170, "max": 900}
    ],
    "sample_every": 4096,
    "series": [
      {"mem_cycle": 4096, "ipc": 0.71, "bwutil": 0.55, "queue_occ": 9.1},
      {"mem_cycle": 8192, "ipc": 0.78, "bwutil": 0.61, "queue_occ": 10.4},
      {"mem_cycle": 12288, "ipc": 0.81, "bwutil": 0.66, "queue_occ": 12.0}
    ],
    "audit": {
      "total": 26000, "ring_capacity": 65536,
      "dms_delay_holds": 18400, "dms_delay_expiries": 96,
      "ams_drops": 4940, "ams_skips": 2564,
      "reasons": [
        {"unit": "dms", "kind": "delay", "reason": "delay-hold", "count": 18400},
        {"unit": "dms", "kind": "expire", "reason": "delay-expired", "count": 96},
        {"unit": "ams", "kind": "drop", "reason": "drop", "count": 4940},
        {"unit": "ams", "kind": "skip", "reason": "rbl-above-threshold", "count": 1800},
        {"unit": "ams", "kind": "skip", "reason": "coverage-exhausted", "count": 764}
      ],
      "adapt": [
        {"cycle": 1024, "channel": 0, "unit": "dms", "delay": 128, "bwutil": 0.41, "phase": "sampling"},
        {"cycle": 2048, "channel": 0, "unit": "dms", "delay": 256, "bwutil": 0.44, "phase": "searching"},
        {"cycle": 1024, "channel": 0, "unit": "ams", "th_rbl": 2, "coverage": 0.05,
         "window_reads": 900, "window_dropped": 45},
        {"cycle": 2048, "channel": 0, "unit": "ams", "th_rbl": 3, "coverage": 0.07,
         "window_reads": 870, "window_dropped": 70}
      ]
    },
    "quality": {
      "lines": 4940, "words": 158080,
      "mean_abs_error": 0.034, "mean_rel_error": 0.0061,
      "rel_p50": 0.001, "rel_p90": 0.02, "rel_p99": 0.31, "max_rel_error": 4.2,
      "rel_hist": [
        {"lo": 0, "hi": 0, "count": 61000},
        {"lo": 1e-4, "hi": 1e-3, "count": 52000},
        {"lo": 1e-3, "hi": 1e-2, "count": 30000},
        {"lo": 1e-2, "hi": 1e-1, "count": 14000}
      ],
      "abs_hist": [
        {"lo": 0, "hi": 0, "count": 61000},
        {"lo": 1e-3, "hi": 1e-2, "count": 60000},
        {"lo": 1e-2, "hi": 1e-1, "count": 37080}
      ],
      "worst": [
        {"addr": 4198400, "cycle": 90412, "words": 32, "mean_abs": 1.9,
         "mean_rel": 0.8, "max_rel": 4.2}
      ]
    }
  }
}`

func writeSample(t *testing.T, dir, name string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(sampleDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestReportSelfContained is the end-to-end check required by the issue:
// the emitted HTML must carry its charts inline and reference nothing over
// the network.
func TestReportSelfContained(t *testing.T) {
	dir := t.TempDir()
	in := writeSample(t, dir, "run.json")
	out := filepath.Join(dir, "report.html")
	var stderr bytes.Buffer
	if code := run([]string{in, "-o", out}, &stderr); code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	page := string(raw)

	if !strings.Contains(page, "<svg") {
		t.Error("report contains no inline SVG")
	}
	for _, want := range []string{
		"delay-hold", "rbl-above-threshold", "coverage-exhausted",
		"Scheduler decisions", "Approximation quality", "Bank heatmaps",
		"Dyn adaptation", "Request latency by stage",
		"SCP", "dyn-both",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Self-containment: no scripts, no external fetch vectors.
	for _, banned := range []string{
		"http://", "https://", "<script", "@import", "url(", "<link", "<iframe", "srcset",
	} {
		if strings.Contains(page, banned) {
			t.Errorf("report references external content: found %q", banned)
		}
	}
}

func TestReportComparisonMode(t *testing.T) {
	dir := t.TempDir()
	a := writeSample(t, dir, "a.json")
	b := writeSample(t, dir, "b.json")
	out := filepath.Join(dir, "cmp.html")
	var stderr bytes.Buffer
	if code := run([]string{"-o", out, a, b}, &stderr); code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	page := string(raw)
	if !strings.Contains(page, "Comparison") {
		t.Error("two-document report missing comparison section")
	}
	// Identical inputs: every Δ% should be +0.00%.
	if !strings.Contains(page, "+0.00%") {
		t.Error("comparison table missing zero deltas for identical inputs")
	}
	if strings.Contains(page, "NaN") {
		t.Error("comparison emitted NaN")
	}
}

func TestRunRejectsBadInvocation(t *testing.T) {
	var stderr bytes.Buffer
	if code := run(nil, &stderr); code != 2 {
		t.Errorf("no args: got exit %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"a.json", "b.json", "c.json"}, &stderr); code != 2 {
		t.Errorf("three docs: got exit %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{filepath.Join(t.TempDir(), "missing.json")}, &stderr); code != 2 {
		t.Errorf("missing file: got exit %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"-bogus"}, &stderr); code != 2 {
		t.Errorf("unknown flag: got exit %d, want 2", code)
	}
}

func TestReportHandlesSparseDoc(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "bare.json")
	if err := os.WriteFile(p, []byte(`{"app":"RED","scheme":"baseline","seed":7,"ipc":1.5}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "bare.html")
	var stderr bytes.Buffer
	if code := run([]string{p, "-o", out}, &stderr); code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	page := string(raw)
	if !strings.Contains(page, "Run summary") {
		t.Error("sparse report missing run summary")
	}
	for _, banned := range []string{"Scheduler decisions", "Approximation quality", "Bank heatmaps"} {
		if strings.Contains(page, banned) {
			t.Errorf("sparse report should omit %q section", banned)
		}
	}
}

const sampleSweepDoc = `{
	"seed": 1,
	"runs": [
		{"app": "jmein", "scheme": "Baseline", "ipc": 2.8, "activations": 11494,
		 "row_energy_nj": 258615, "app_error": 0, "coverage": 0}
	],
	"sweep": {
		"runs": 8, "executed": 4, "deduped": 4, "errors": 0,
		"prefetch_hits": 3, "events": 28, "workers": 2, "sim_cycles": 48321,
		"timing": {
			"wall_seconds": 1.19, "run_mean_seconds": 0.56,
			"run_p50_seconds": 0.49, "run_p99_seconds": 0.61, "run_max_seconds": 0.68,
			"queue_wait_p50_seconds": 0.0001, "queue_wait_p99_seconds": 0.59,
			"queue_wait_max_seconds": 0.61, "worker_occupancy": 0.94,
			"cycles_per_sec": 40485, "alloc_bytes": 550490152, "mallocs": 4786798,
			"queue_wait_hist": [
				{"lo": 2, "hi": 3, "count": 1}, {"lo": 589824, "hi": 598016, "count": 3}
			]
		},
		"spans": [
			{"id": 0, "app": "jmein", "scheme": "Baseline", "origin": "prefetch",
			 "state": "done", "worker": 0, "target": -1,
			 "submitted_us": 10, "started_us": 50, "finished_us": 500000,
			 "queue_wait_us": 40, "wall_us": 499950,
			 "sim_cycles": 12000, "cycles_per_sec": 24002.4, "joins": 1},
			{"id": 1, "app": "jmein", "scheme": "Static-AMS", "origin": "prefetch",
			 "state": "done", "worker": 1, "target": -1,
			 "submitted_us": 12, "started_us": 60, "finished_us": 680580,
			 "queue_wait_us": 48, "wall_us": 680520,
			 "sim_cycles": 12100, "cycles_per_sec": 17780.5},
			{"id": 2, "app": "jmein", "scheme": "Baseline", "origin": "call",
			 "state": "dedup-joined", "worker": -1, "target": 0, "prefetch_hit": true,
			 "submitted_us": 100, "started_us": -1, "finished_us": 120}
		]
	}
}`

// TestReportSweepDashboard: a sweep document renders the sweep dashboard —
// worker timeline, run-duration CDF, dedupe stats, queue-wait histogram —
// instead of the single-run summary, and stays self-contained.
func TestReportSweepDashboard(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "sweep.json")
	if err := os.WriteFile(p, []byte(sampleSweepDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "sweep.html")
	var stderr bytes.Buffer
	if code := run([]string{p, "-o", out}, &stderr); code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	page := string(raw)
	for _, want := range []string{
		"Sweep dashboard", "worker timeline", "run-duration CDF",
		"dedupe effectiveness", "queue-wait histogram",
		"worker 0", "worker 1", "jmein/Baseline", "prefetch hits",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("sweep report missing %q", want)
		}
	}
	if strings.Contains(page, "Run summary") {
		t.Error("sweep report should not render the single-run summary")
	}
	for _, banned := range []string{"http://", "https://", "<script", "<link"} {
		if strings.Contains(page, banned) {
			t.Errorf("sweep report references external content: found %q", banned)
		}
	}
}

const sampleCensusBlock = `{
	"requests": 65692, "latency_cycles": 23500706, "attributed_cycles": 23500706,
	"stalls": [
		{"cause": "queued", "cycles": 14000000, "share": 0.596, "requests": 60000, "mean": 233, "p99": 900, "max": 2200},
		{"cause": "dms_hold", "cycles": 6000000, "share": 0.255, "requests": 9000, "mean": 666, "p99": 1100, "max": 1400},
		{"cause": "trcd", "cycles": 1500000, "share": 0.064, "requests": 30000, "mean": 50, "p99": 90, "max": 120},
		{"cause": "cas", "cycles": 2000706, "share": 0.085, "requests": 65692, "mean": 30, "p99": 31, "max": 31}
	],
	"bank_cycles": 265602,
	"residency": [
		{"state": "serving", "cycles": 800000, "share": 0.38},
		{"state": "dms_held", "cycles": 400000, "share": 0.19},
		{"state": "timing_wait", "cycles": 500000, "share": 0.23},
		{"state": "open_idle", "cycles": 200000, "share": 0.09},
		{"state": "precharging", "cycles": 100000, "share": 0.05},
		{"state": "idle", "cycles": 124816, "share": 0.06}
	],
	"partition_cycles": 265602, "advancing": 171955, "timing_wait": 87535, "idle": 6112,
	"skippable_frac": 0.3526,
	"gap_count": 44688, "gap_mean": 2.1, "gap_p50": 1, "gap_p90": 3, "gap_p99": 9, "gap_max": 423,
	"gap_hist": [{"lo": 1, "hi": 2, "count": 22916}, {"lo": 2, "hi": 3, "count": 11773}],
	"ingress": {"mshr_full": 1200, "merge_limit": 40, "queue_full": 7},
	"channels": [
		{"channel": 0, "requests": 32846, "latency_cycles": 11750353, "skippable_frac": 0.35,
		 "stall_cycles": {"queued": 7000000, "dms_hold": 3000000, "trcd": 750000, "cas": 1000353},
		 "banks": [
			{"bank": 0, "serving": 50000, "dms_held": 25000, "timing_wait": 31000,
			 "open_idle": 12000, "precharging": 6000, "idle": 8801},
			{"bank": 1, "serving": 49000, "dms_held": 26000, "timing_wait": 32000,
			 "open_idle": 12500, "precharging": 6200, "idle": 7101}
		 ]}
	],
	"host": {
		"sample_every": 64, "core_ticks_sampled": 4096, "core_ns": 8200000,
		"mem_ticks_sampled": 4150, "mem_ns": 9300000,
		"probe_ticks_sampled": 4150, "probe_ns": 510000,
		"workers": [
			{"worker": 0, "dispatches": 4150, "busy_ns": 6100000, "barrier_ns": 3200000, "busy_frac": 0.65},
			{"worker": 1, "dispatches": 4150, "busy_ns": 5900000, "barrier_ns": 3400000, "busy_frac": 0.63}
		]
	}
}`

// TestReportCensusSection: a -census document renders the cycle-census
// panels — stall-cause stacked bars, the bank-residency heatmap, the
// skippable-fraction tile, and the shard phase strip — and stays
// self-contained.
func TestReportCensusSection(t *testing.T) {
	dir := t.TempDir()
	doc := strings.Replace(sampleDoc, `"telemetry": {`,
		`"telemetry": {"census": `+sampleCensusBlock+",", 1)
	p := filepath.Join(dir, "census.json")
	if err := os.WriteFile(p, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "census.html")
	var stderr bytes.Buffer
	if code := run([]string{p, "-o", out}, &stderr); code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	page := string(raw)
	for _, want := range []string{
		"Cycle census", "stall-cause decomposition", "bank state residency",
		"skippable fraction", "35.3%", "partition-cycle census",
		"next-event gap histogram", "dms_hold", "ch0·b1",
		"Ingress backpressure", "Host phase profile", "shard worker phases",
		"barrier wait",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("census report missing %q", want)
		}
	}
	if strings.Contains(page, "invariant violation") {
		t.Error("healthy census rendered an invariant warning")
	}
	for _, banned := range []string{"http://", "https://", "<script", "<link"} {
		if strings.Contains(page, banned) {
			t.Errorf("census report references external content: found %q", banned)
		}
	}

	// A violated invariant must surface loudly in the page.
	bad := strings.Replace(doc, `"attributed_cycles": 23500706,`,
		`"attributed_cycles": 23500705, "invariant_error": "attributed 23500705 != latency 23500706",`, 1)
	pb := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(pb, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	outB := filepath.Join(dir, "bad.html")
	if code := run([]string{pb, "-o", outB}, &stderr); code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}
	rawB, err := os.ReadFile(outB)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rawB), "Σ-invariant violation") {
		t.Error("broken census did not render the invariant warning")
	}
}
