package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleDoc resembles a lazysim -json document with audit and quality
// telemetry attached.
const sampleDoc = `{
  "app": "SCP", "scheme": "dyn-both", "seed": 1,
  "core_cycles": 120000, "instructions": 95000, "ipc": 0.7917,
  "activations": 5200, "reads": 61000, "writes": 9400,
  "avg_rbl": 3.4, "bwutil": 0.62, "coverage": 0.081, "dropped": 4940,
  "queue_occ": 11.2, "row_energy_nj": 3120.5, "mem_energy_nj": 9980.1,
  "app_error": 0.0123, "final_delay": 384, "final_th_rbl": 3,
  "mean_delay": 201.7, "mean_th_rbl": 2.9,
  "energy_by_channel": [
    {"channel": 0, "row_nj": 1600.2, "total_nj": 5100.0, "banks": [
      {"bank": 0, "row_nj": 900.1, "activations": 1400, "row_hits": 9000,
       "row_conflicts": 310, "dms_delay_cycles": 5200, "ams_drops": 1300},
      {"bank": 1, "row_nj": 700.1, "activations": 1200, "row_hits": 8000,
       "row_conflicts": 250, "dms_delay_cycles": 4100, "ams_drops": 1100}
    ]},
    {"channel": 1, "row_nj": 1520.3, "total_nj": 4880.1, "banks": [
      {"bank": 0, "row_nj": 800.2, "activations": 1300, "row_hits": 8500,
       "row_conflicts": 280, "dms_delay_cycles": 4600, "ams_drops": 1280},
      {"bank": 1, "row_nj": 720.1, "activations": 1300, "row_hits": 8200,
       "row_conflicts": 260, "dms_delay_cycles": 4500, "ams_drops": 1260}
    ]}
  ],
  "telemetry": {
    "stages": [
      {"stage": "queue", "clock": "mem", "count": 70000, "mean": 41.2,
       "p50": 18, "p90": 120, "p99": 600, "max": 2400},
      {"stage": "service", "clock": "mem", "count": 70000, "mean": 19.8,
       "p50": 14, "p90": 44, "p99": 170, "max": 900}
    ],
    "sample_every": 4096,
    "series": [
      {"mem_cycle": 4096, "ipc": 0.71, "bwutil": 0.55, "queue_occ": 9.1},
      {"mem_cycle": 8192, "ipc": 0.78, "bwutil": 0.61, "queue_occ": 10.4},
      {"mem_cycle": 12288, "ipc": 0.81, "bwutil": 0.66, "queue_occ": 12.0}
    ],
    "audit": {
      "total": 26000, "ring_capacity": 65536,
      "dms_delay_holds": 18400, "dms_delay_expiries": 96,
      "ams_drops": 4940, "ams_skips": 2564,
      "reasons": [
        {"unit": "dms", "kind": "delay", "reason": "delay-hold", "count": 18400},
        {"unit": "dms", "kind": "expire", "reason": "delay-expired", "count": 96},
        {"unit": "ams", "kind": "drop", "reason": "drop", "count": 4940},
        {"unit": "ams", "kind": "skip", "reason": "rbl-above-threshold", "count": 1800},
        {"unit": "ams", "kind": "skip", "reason": "coverage-exhausted", "count": 764}
      ],
      "adapt": [
        {"cycle": 1024, "channel": 0, "unit": "dms", "delay": 128, "bwutil": 0.41, "phase": "sampling"},
        {"cycle": 2048, "channel": 0, "unit": "dms", "delay": 256, "bwutil": 0.44, "phase": "searching"},
        {"cycle": 1024, "channel": 0, "unit": "ams", "th_rbl": 2, "coverage": 0.05,
         "window_reads": 900, "window_dropped": 45},
        {"cycle": 2048, "channel": 0, "unit": "ams", "th_rbl": 3, "coverage": 0.07,
         "window_reads": 870, "window_dropped": 70}
      ]
    },
    "quality": {
      "lines": 4940, "words": 158080,
      "mean_abs_error": 0.034, "mean_rel_error": 0.0061,
      "rel_p50": 0.001, "rel_p90": 0.02, "rel_p99": 0.31, "max_rel_error": 4.2,
      "rel_hist": [
        {"lo": 0, "hi": 0, "count": 61000},
        {"lo": 1e-4, "hi": 1e-3, "count": 52000},
        {"lo": 1e-3, "hi": 1e-2, "count": 30000},
        {"lo": 1e-2, "hi": 1e-1, "count": 14000}
      ],
      "abs_hist": [
        {"lo": 0, "hi": 0, "count": 61000},
        {"lo": 1e-3, "hi": 1e-2, "count": 60000},
        {"lo": 1e-2, "hi": 1e-1, "count": 37080}
      ],
      "worst": [
        {"addr": 4198400, "cycle": 90412, "words": 32, "mean_abs": 1.9,
         "mean_rel": 0.8, "max_rel": 4.2}
      ]
    }
  }
}`

func writeSample(t *testing.T, dir, name string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(sampleDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestReportSelfContained is the end-to-end check required by the issue:
// the emitted HTML must carry its charts inline and reference nothing over
// the network.
func TestReportSelfContained(t *testing.T) {
	dir := t.TempDir()
	in := writeSample(t, dir, "run.json")
	out := filepath.Join(dir, "report.html")
	var stderr bytes.Buffer
	if code := run([]string{in, "-o", out}, &stderr); code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	page := string(raw)

	if !strings.Contains(page, "<svg") {
		t.Error("report contains no inline SVG")
	}
	for _, want := range []string{
		"delay-hold", "rbl-above-threshold", "coverage-exhausted",
		"Scheduler decisions", "Approximation quality", "Bank heatmaps",
		"Dyn adaptation", "Request latency by stage",
		"SCP", "dyn-both",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Self-containment: no scripts, no external fetch vectors.
	for _, banned := range []string{
		"http://", "https://", "<script", "@import", "url(", "<link", "<iframe", "srcset",
	} {
		if strings.Contains(page, banned) {
			t.Errorf("report references external content: found %q", banned)
		}
	}
}

func TestReportComparisonMode(t *testing.T) {
	dir := t.TempDir()
	a := writeSample(t, dir, "a.json")
	b := writeSample(t, dir, "b.json")
	out := filepath.Join(dir, "cmp.html")
	var stderr bytes.Buffer
	if code := run([]string{"-o", out, a, b}, &stderr); code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	page := string(raw)
	if !strings.Contains(page, "Comparison") {
		t.Error("two-document report missing comparison section")
	}
	// Identical inputs: every Δ% should be +0.00%.
	if !strings.Contains(page, "+0.00%") {
		t.Error("comparison table missing zero deltas for identical inputs")
	}
	if strings.Contains(page, "NaN") {
		t.Error("comparison emitted NaN")
	}
}

func TestRunRejectsBadInvocation(t *testing.T) {
	var stderr bytes.Buffer
	if code := run(nil, &stderr); code != 2 {
		t.Errorf("no args: got exit %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"a.json", "b.json", "c.json"}, &stderr); code != 2 {
		t.Errorf("three docs: got exit %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{filepath.Join(t.TempDir(), "missing.json")}, &stderr); code != 2 {
		t.Errorf("missing file: got exit %d, want 2", code)
	}
	stderr.Reset()
	if code := run([]string{"-bogus"}, &stderr); code != 2 {
		t.Errorf("unknown flag: got exit %d, want 2", code)
	}
}

func TestReportHandlesSparseDoc(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "bare.json")
	if err := os.WriteFile(p, []byte(`{"app":"RED","scheme":"baseline","seed":7,"ipc":1.5}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "bare.html")
	var stderr bytes.Buffer
	if code := run([]string{p, "-o", out}, &stderr); code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	page := string(raw)
	if !strings.Contains(page, "Run summary") {
		t.Error("sparse report missing run summary")
	}
	for _, banned := range []string{"Scheduler decisions", "Approximation quality", "Bank heatmaps"} {
		if strings.Contains(page, banned) {
			t.Errorf("sparse report should omit %q section", banned)
		}
	}
}
