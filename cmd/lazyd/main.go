// Command lazyd is the simulation-as-a-service daemon: an HTTP/JSON API
// over the exp.Runner worker pool with a bounded job queue and a
// content-addressed result cache (see internal/service).
//
// Daemon mode:
//
//	lazyd -addr 127.0.0.1:7090 -workers 4 -cache-dir /var/cache/lazyd
//
// Endpoints: POST /v1/jobs, GET /v1/jobs/{id} (+ /result, /report,
// /events), GET /v1/cache/stats, GET /v1/stats, GET /metrics, GET /vars,
// GET /healthz. SIGINT/SIGTERM triggers a graceful drain: admission stops,
// queued and in-flight jobs run to completion, the cache flushes to the
// spill directory, and the process exits 0.
//
// Client mode (-submit) posts one job to a running daemon, waits for it,
// and prints the result document to stdout:
//
//	lazyd -submit -addr 127.0.0.1:7090 -app SCP -scheme dyn-both -seed 3
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lazydram/internal/buildinfo"
	"lazydram/internal/cliflags"
	"lazydram/internal/obs"
	"lazydram/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7090", "HTTP listen address (daemon) or daemon address (-submit)")
		workers = flag.Int("workers", 0, "concurrent simulations (0: GOMAXPROCS)")
		qdepth  = flag.Int("queue-depth", 64, "bounded job queue capacity; a full queue rejects with 503")
		cacheMB = flag.Int64("cache-mb", 256, "resident result-cache bound in MiB")
		dir     = flag.String("cache-dir", "", "disk spill directory for evicted results (empty: memory only)")
		submit  = flag.Bool("submit", false, "client mode: POST one job to the daemon at -addr and print the result")
		wait    = flag.Duration("wait", 10*time.Minute, "client mode: how long to wait for the result")
		version = flag.Bool("version", false, "print build provenance and exit")

		job   = cliflags.AddJob(flag.CommandLine)
		shard = cliflags.AddShard(flag.CommandLine)
		prof  = cliflags.AddProfiling(flag.CommandLine)
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get().String())
		return
	}
	if *submit {
		os.Exit(runSubmit(os.Stdout, os.Stderr, *addr, *wait, job))
	}

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lazyd:", err)
		os.Exit(1)
	}
	defer stopProf()

	svc := service.New(service.Config{
		Workers:         *workers,
		QueueDepth:      *qdepth,
		CacheBytes:      *cacheMB << 20,
		CacheDir:        *dir,
		ShardPartitions: shard.Enabled,
		ShardWorkers:    shard.Workers,
		Registry:        obs.NewRegistry(),
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lazyd:", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "lazyd: serving http://%s (workers %d, queue %d)\n",
		ln.Addr(), svc.Stats().Runner.Workers, *qdepth)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "lazyd:", err)
		os.Exit(1)
	}

	// Graceful drain: stop accepting (listener down), finish queued and
	// in-flight jobs, flush the cache, then exit 0.
	fmt.Fprintln(os.Stderr, "lazyd: draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "lazyd: http shutdown:", err)
	}
	if err := svc.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "lazyd:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "lazyd: drained")
}

// runSubmit is the thin HTTP client: one POST, one blocking result GET.
func runSubmit(stdout, stderr io.Writer, addr string, wait time.Duration, job *cliflags.Job) int {
	spec := service.JobSpec{
		App: job.App, Scheme: job.Scheme, Seed: job.Seed,
		Queue: job.Queue, Delay: job.Delay, ThRBL: job.ThRBL,
		Obs: service.ObsSpec{
			SampleEvery: job.SampleEvery,
			Audit:       job.Audit, Quality: job.Quality, Census: job.Census,
		},
	}
	body, err := json.Marshal(spec)
	if err != nil {
		fmt.Fprintln(stderr, "lazyd:", err)
		return 1
	}
	base := "http://" + addr
	cl := &http.Client{Timeout: wait + time.Minute}
	resp, err := cl.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintln(stderr, "lazyd:", err)
		return 1
	}
	defer resp.Body.Close()
	var sub service.SubmitResult
	if resp.StatusCode >= 300 {
		msg, _ := io.ReadAll(resp.Body)
		fmt.Fprintf(stderr, "lazyd: submit: %s: %s", resp.Status, msg)
		return 1
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		fmt.Fprintln(stderr, "lazyd:", err)
		return 1
	}
	fmt.Fprintf(stderr, "lazyd: job %s %s\n", sub.ID, describeSubmit(sub))

	res, err := cl.Get(fmt.Sprintf("%s/v1/jobs/%s/result?wait=%s", base, sub.ID, wait))
	if err != nil {
		fmt.Fprintln(stderr, "lazyd:", err)
		return 1
	}
	defer res.Body.Close()
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		fmt.Fprintln(stderr, "lazyd:", err)
		return 1
	}
	if res.StatusCode != http.StatusOK {
		fmt.Fprintf(stderr, "lazyd: result: %s: %s", res.Status, raw)
		return 1
	}
	stdout.Write(raw)
	return 0
}

func describeSubmit(sub service.SubmitResult) string {
	switch {
	case sub.Cached:
		return "served from cache"
	case sub.Joined:
		return "joined in-flight job"
	default:
		return sub.State
	}
}
