// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-out results] [-apps GEMM,SCP] [-seed 1] [-workers N] [-shard] [ids...]
//
// With no ids, every experiment runs in paper order. Each experiment writes
// <out>/<id>.txt plus any binary artifacts (e.g. Fig. 14's PGM images), and
// echoes its output to stdout.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"time"

	"lazydram/internal/exp"
)

func main() {
	var (
		out  = flag.String("out", "results", "output directory")
		apps = flag.String("apps", "", "comma-separated app subset (default: all)")
		seed = flag.Int64("seed", 1, "workload input seed")
		list = flag.Bool("list", false, "list experiment ids and exit")

		workers = flag.Int("workers", 0, "concurrent simulations (0: GOMAXPROCS); results are identical for any value")
		shard   = flag.Bool("shard", false, "also shard each simulation's partition ticking (bit-identical; see DESIGN.md)")

		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	)
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof:", err)
			}
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *list {
		for _, id := range exp.IDs() {
			e, _ := exp.Lookup(id)
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		ids = exp.IDs()
	}
	opts := exp.Options{Seed: *seed, Workers: *workers, ShardPartitions: *shard}
	if *apps != "" {
		opts.Apps = strings.Split(*apps, ",")
	}
	runner := exp.NewRunner(opts)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	for _, id := range ids {
		e, ok := exp.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		f, err := os.Create(filepath.Join(*out, id+".txt"))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w := io.MultiWriter(os.Stdout, f)
		fmt.Fprintf(w, "== %s — %s\n\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(runner, w, *out); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			f.Close()
			os.Exit(1)
		}
		fmt.Fprintf(w, "\n[%s completed in %v]\n", id, time.Since(start).Round(time.Millisecond))
		f.Close()
	}
}
