// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-out results] [-apps GEMM,SCP] [-seed 1] [-workers N] [-shard] [-shard-workers M] [ids...]
//
// With no ids, every experiment runs in paper order. Each experiment writes
// <out>/<id>.txt plus any binary artifacts (e.g. Fig. 14's PGM images), and
// echoes its output to stdout.
//
// Observability:
//
//	-runlog PREFIX   record every run's lifecycle (queueing, worker slot,
//	                 wall-clock, dedup joins) and write PREFIX.trace.json
//	                 (Chrome trace_event — open it in Perfetto),
//	                 PREFIX.events.jsonl, and PREFIX.sweep.json (the summary
//	                 block, same shape as lazysim -sweep -json)
//	-metrics-addr A  serve the live registry — including the sweep families —
//	                 on A: /metrics (Prometheus text) and /vars (expvar JSON)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"lazydram/internal/buildinfo"
	"lazydram/internal/cliflags"
	"lazydram/internal/exp"
	"lazydram/internal/obs"
)

func main() {
	var (
		out     = flag.String("out", "results", "output directory")
		apps    = flag.String("apps", "", "comma-separated app subset (default: all)")
		seed    = flag.Int64("seed", 1, "workload input seed")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		version = flag.Bool("version", false, "print build provenance and exit")

		workers = flag.Int("workers", 0, "concurrent simulations (0: GOMAXPROCS); results are identical for any value")

		runlog = flag.String("runlog", "", "write PREFIX.trace.json (Chrome trace), PREFIX.events.jsonl, and PREFIX.sweep.json from the run-lifecycle log")

		shard   = cliflags.AddShard(flag.CommandLine)
		metrics = cliflags.AddMetrics(flag.CommandLine)
		prof    = cliflags.AddProfiling(flag.CommandLine)
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get().String())
		return
	}

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	if *list {
		for _, id := range exp.IDs() {
			e, _ := exp.Lookup(id)
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		ids = exp.IDs()
	}
	opts := exp.Options{Seed: *seed, Workers: *workers,
		ShardPartitions: shard.Enabled, ShardWorkers: shard.Workers}
	if *apps != "" {
		opts.Apps = strings.Split(*apps, ",")
	}
	var reg *obs.Registry
	if metrics.Addr != "" {
		reg = obs.NewRegistry()
		srv, _, err := metrics.Serve(reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
	}
	var rl *obs.RunLog
	if *runlog != "" || reg != nil {
		rlOpts := obs.RunLogOptions{Metrics: reg}
		if fi, err := os.Stderr.Stat(); err == nil && fi.Mode()&os.ModeCharDevice != 0 {
			rlOpts.Progress = os.Stderr
		}
		rl = obs.NewRunLog(rlOpts)
		opts.RunLog = rl
	}
	runner := exp.NewRunner(opts)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	for _, id := range ids {
		e, ok := exp.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		f, err := os.Create(filepath.Join(*out, id+".txt"))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w := io.MultiWriter(os.Stdout, f)
		fmt.Fprintf(w, "== %s — %s\n\n", e.ID, e.Title)
		start := time.Now()
		if err := e.Run(runner, w, *out); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			f.Close()
			os.Exit(1)
		}
		fmt.Fprintf(w, "\n[%s completed in %v]\n", id, time.Since(start).Round(time.Millisecond))
		f.Close()
	}

	if rl != nil {
		runner.Wait()
		rl.FinishProgress()
		sum := rl.Summary()
		if *runlog != "" {
			if err := writeRunLog(rl, sum, *runlog); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		fmt.Fprintf(os.Stderr,
			"runlog: %d runs (%d executed, %d deduped, %d errors) in %.1fs, occupancy %.0f%%\n",
			sum.Runs, sum.Executed, sum.Deduped, sum.Errors,
			sum.Timing.WallSeconds, 100*sum.Timing.WorkerOccupancy)
		if err := rl.Reconcile(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// writeRunLog exports the run log: PREFIX.trace.json (Chrome trace_event),
// PREFIX.events.jsonl, and PREFIX.sweep.json carrying {"sweep": summary} so
// tooling reads the block at the same path as in lazysim -sweep -json.
func writeRunLog(rl *obs.RunLog, sum *obs.SweepSummary, prefix string) error {
	tf, err := os.Create(prefix + ".trace.json")
	if err != nil {
		return err
	}
	defer tf.Close()
	if err := rl.WriteChromeTrace(tf); err != nil {
		return err
	}
	ef, err := os.Create(prefix + ".events.jsonl")
	if err != nil {
		return err
	}
	defer ef.Close()
	if err := rl.WriteEventsJSONL(ef); err != nil {
		return err
	}
	sf, err := os.Create(prefix + ".sweep.json")
	if err != nil {
		return err
	}
	defer sf.Close()
	return json.NewEncoder(sf).Encode(map[string]any{
		"meta":  map[string]any{"build": buildinfo.Get()},
		"sweep": sum,
	})
}
