package main

import (
	"net"
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestMain lets tests re-exec this binary as the real CLI: with
// EXPERIMENTS_BE_MAIN set, the process runs main() on its own arguments
// instead of the test suite.
func TestMain(m *testing.M) {
	if os.Getenv("EXPERIMENTS_BE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func occupyPort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

// TestObservabilityBindFailuresExitNonzero asserts that an unbindable
// -metrics-addr or -pprof address aborts the batch with exit code 1 before
// any experiment runs. The trailing bogus experiment id would exit 2 if the
// process ever got past observability setup, so the test cannot accidentally
// launch the full suite.
func TestObservabilityBindFailuresExitNonzero(t *testing.T) {
	busy := occupyPort(t)
	dir := t.TempDir()
	for _, tc := range [][]string{
		{"-out", dir, "-metrics-addr", busy, "no-such-experiment"},
		{"-out", dir, "-pprof", busy, "no-such-experiment"},
	} {
		cmd := exec.Command(os.Args[0], tc...)
		cmd.Env = append(os.Environ(), "EXPERIMENTS_BE_MAIN=1")
		out, err := cmd.CombinedOutput()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 1 {
			t.Errorf("args %v: err = %v (output %q), want exit code 1", tc, err, out)
		}
	}
}

// TestVersionFlag asserts -version prints provenance and exits 0.
func TestVersionFlag(t *testing.T) {
	cmd := exec.Command(os.Args[0], "-version")
	cmd.Env = append(os.Environ(), "EXPERIMENTS_BE_MAIN=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("-version: %v (output %q)", err, out)
	}
	if !strings.Contains(string(out), "go") {
		t.Errorf("-version output %q, want Go version", out)
	}
}
