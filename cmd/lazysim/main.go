// Command lazysim runs one application under one scheduling scheme and
// prints the canonical stat block, including the application error versus a
// golden functional run.
//
// Usage:
//
//	lazysim -app GEMM -scheme dyn-both [-seed 1] [-queue 128] [-delay 128] [-thrbl 8]
//
// Schemes: baseline, static-dms, dyn-dms, static-ams, dyn-ams, static-both,
// dyn-both, dms(X) via -scheme static-dms -delay X, ams(T) via
// -scheme static-ams -thrbl T.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lazydram/internal/approx"
	"lazydram/internal/mc"
	"lazydram/internal/sim"
	"lazydram/internal/workloads"
)

func main() {
	var (
		app    = flag.String("app", "GEMM", "application name (see -list)")
		scheme = flag.String("scheme", "baseline", "scheduling scheme")
		seed   = flag.Int64("seed", 1, "input RNG seed")
		queue  = flag.Int("queue", 128, "pending queue size")
		delay  = flag.Int("delay", 128, "static DMS delay (cycles)")
		thrbl  = flag.Int("thrbl", 8, "static AMS Th_RBL")
		list   = flag.Bool("list", false, "list applications and exit")
	)
	flag.Parse()

	if *list {
		for _, n := range workloads.Names() {
			fmt.Printf("%-14s group %d\n", n, workloads.Group(n))
		}
		return
	}

	sch, err := ParseScheme(*scheme, *delay, *thrbl)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	kern, err := workloads.New(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := sim.DefaultConfig()
	cfg.MC.QueueSize = *queue

	start := time.Now()
	res, err := sim.Simulate(kern, cfg, sch, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	goldenKern, _ := workloads.New(*app)
	golden := sim.RunFunctional(goldenKern, *seed)
	res.Run.AppError = approx.MeanRelativeError(golden, res.Output)

	fmt.Print(res.Run.String())
	fmt.Printf("  vp: %d predictions (%d fallbacks)\n", res.VPPredictions, res.VPFallbacks)
	fmt.Printf("  wall: %v\n", time.Since(start).Round(time.Millisecond))
}

// ParseScheme maps a scheme name to its configuration.
func ParseScheme(name string, delay, thrbl int) (mc.Scheme, error) {
	switch strings.ToLower(name) {
	case "baseline", "base":
		return mc.Baseline, nil
	case "static-dms", "dms":
		s := mc.StaticDMS
		s.StaticDelay = delay
		return s, nil
	case "dyn-dms":
		return mc.DynDMS, nil
	case "static-ams", "ams":
		s := mc.StaticAMS
		s.StaticThRBL = thrbl
		return s, nil
	case "dyn-ams":
		return mc.DynAMS, nil
	case "static-both", "both":
		s := mc.StaticBoth
		s.StaticDelay = delay
		s.StaticThRBL = thrbl
		return s, nil
	case "dyn-both":
		return mc.DynBoth, nil
	default:
		return mc.Scheme{}, fmt.Errorf("unknown scheme %q", name)
	}
}
