// Command lazysim runs one application under one scheduling scheme and
// prints the canonical stat block, including the application error versus a
// golden functional run.
//
// Usage:
//
//	lazysim -app GEMM -scheme dyn-both [-seed 1] [-queue 128] [-delay 128] [-thrbl 8]
//
// Schemes: baseline, static-dms, dyn-dms, static-ams, dyn-ams, static-both,
// dyn-both, dms(X) via -scheme static-dms -delay X, ams(T) via
// -scheme static-ams -thrbl T.
//
// Parallel execution (see DESIGN.md, "Parallel execution"):
//
//	-shard           tick memory partitions on a worker pool with a per-cycle
//	                 barrier; bit-identical to the sequential path
//	-shard-workers N pool size for -shard (0: GOMAXPROCS, capped at the
//	                 partition count)
//	-sweep S1,S2,... multi-run mode: cross every scheme in the list with
//	                 every app in -app (comma-separated, or "all") and print
//	                 one summary row per run; runs execute concurrently
//	-workers N       concurrent simulations in -sweep mode (0: GOMAXPROCS)
//	-runlog PREFIX   in -sweep mode, write the run-lifecycle log to
//	                 PREFIX.trace.json (Chrome trace_event, one track per
//	                 worker slot — open it in Perfetto) and
//	                 PREFIX.events.jsonl (one lifecycle event per line)
//
// Observability:
//
//	-json            emit one machine-readable JSON document instead of text
//	-sample-every N  time-series snapshot interval in memory cycles (0 off)
//	-trace FILE      write the DRAM command trace (Chrome trace_event JSON;
//	                 a .jsonl suffix selects the JSONL exporter)
//	-trace-cap N     command-trace ring capacity
//	-metrics-addr A  serve live Prometheus metrics on A (e.g. localhost:9090):
//	                 /metrics is the text exposition, /vars the expvar JSON
//	-top-banks N     hottest-bank summary length in -json output
//	-audit           collect the scheduler decision audit (reason-code
//	                 counters, decision ring, Dyn adaptation trace)
//	-audit-cap N     decision-ring capacity (entries retained)
//	-audit-log FILE  write the retained decisions as JSONL (implies -audit)
//	-quality         score every AMS-dropped line against ground truth
//	                 (error histograms + worst offenders in the telemetry)
//	-census          collect the cycle census: exact stall-cause attribution
//	                 (every waiting cycle charged to one cause), bank
//	                 state-residency, and the skip-ahead opportunity profile
//	                 (telemetry.census in -json, census line in the text block)
//	-census-log FILE write the census summary + per-channel detail as JSONL
//	                 (implies -census)
//	-pprof ADDR      serve net/http/pprof on ADDR (e.g. localhost:6060)
//	-cpuprofile FILE write a CPU profile of the run
//
// Fault injection (the DRAM error model):
//
//	-fault               enable the deterministic DRAM error model
//	-fault-ber R         bus transient bit-error rate per read burst
//	-fault-weak-density D fraction of each row's bits that are weak cells
//	                     (activation/retention failure sites)
//	-fault-seed S        fault-model RNG seed (0: reuse -seed)
//	-fault-retention N   open-row age in memory cycles past which reads
//	                     suffer retention flips
//
// A fault run always scores the workload output against the pristine golden
// run (app_error) and emits a telemetry.fault block in -json with per-mode
// injection counts, the weak-cell census, a determinism digest, and the
// injected-error histogram.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"lazydram/internal/approx"
	"lazydram/internal/buildinfo"
	"lazydram/internal/cliflags"
	"lazydram/internal/energy"
	"lazydram/internal/exp"
	"lazydram/internal/mc"
	"lazydram/internal/obs"
	"lazydram/internal/rundoc"
	"lazydram/internal/sim"
	"lazydram/internal/workloads"
)

func main() {
	var (
		app     = flag.String("app", "GEMM", "application name (see -list)")
		scheme  = flag.String("scheme", "baseline", "scheduling scheme")
		seed    = flag.Int64("seed", 1, "input RNG seed")
		queue   = flag.Int("queue", 128, "pending queue size")
		delay   = flag.Int("delay", 128, "static DMS delay (cycles)")
		thrbl   = flag.Int("thrbl", 8, "static AMS Th_RBL")
		list    = flag.Bool("list", false, "list applications and exit")
		version = flag.Bool("version", false, "print build provenance and exit")

		sweep   = flag.String("sweep", "", "comma-separated scheme list: run every scheme for every -app concurrently and print one row per run")
		workers = flag.Int("workers", 0, "concurrent simulations in -sweep mode (0: GOMAXPROCS)")
		runlog  = flag.String("runlog", "", "in -sweep mode, write PREFIX.trace.json (Chrome trace) and PREFIX.events.jsonl (run-lifecycle events)")

		jsonOut  = flag.Bool("json", false, "emit one JSON document with stats and telemetry")
		sampleN  = flag.Uint64("sample-every", 1024, "time-series sampling interval in memory cycles (0 disables)")
		traceOut = flag.String("trace", "", "write the DRAM command trace to this file (.jsonl for JSONL, else Chrome trace_event JSON)")
		traceCap = flag.Int("trace-cap", 1<<18, "DRAM command trace ring capacity (commands retained)")
		golden   = flag.Bool("golden", false, "force the golden functional run even for exact schemes")

		topBanks = flag.Int("top-banks", 8, "number of hottest banks in the -json summary")

		audit    = flag.Bool("audit", false, "collect the scheduler decision audit (reason-code counters, decision ring, Dyn adaptation trace)")
		auditCap = flag.Int("audit-cap", 1<<16, "decision-audit ring capacity (entries retained)")
		auditLog = flag.String("audit-log", "", "write the retained decision-ring entries as JSONL to this file (implies -audit)")
		quality  = flag.Bool("quality", false, "score every AMS-dropped line against ground truth (error histograms + worst offenders)")

		census    = flag.Bool("census", false, "collect the cycle census (exact stall-cause attribution, bank state residency, skip-ahead opportunity profile)")
		censusLog = flag.String("census-log", "", "write the census summary and per-channel detail as JSONL to this file (implies -census)")

		faultOn        = flag.Bool("fault", false, "enable the deterministic DRAM error model")
		faultBER       = flag.Float64("fault-ber", 0, "bus transient bit-error rate per read burst")
		faultDensity   = flag.Float64("fault-weak-density", 0, "fraction of each row's bits that are weak cells")
		faultSeed      = flag.Int64("fault-seed", 0, "fault-model RNG seed (0: reuse -seed)")
		faultRetention = flag.Uint64("fault-retention", 0, "open-row age (memory cycles) past which reads suffer retention flips (0: default)")

		shard   = cliflags.AddShard(flag.CommandLine)
		digest  = cliflags.AddDigest(flag.CommandLine)
		metrics = cliflags.AddMetrics(flag.CommandLine)
		prof    = cliflags.AddProfiling(flag.CommandLine)
	)
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.Get().String())
		return
	}

	if *list {
		for _, n := range workloads.Names() {
			fmt.Printf("%-14s group %d\n", n, workloads.Group(n))
		}
		return
	}

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	if *sweep != "" {
		so := sweepOptions{
			Seed: *seed, Queue: *queue, Delay: *delay, ThRBL: *thrbl,
			Workers: *workers, Shard: shard.Enabled, ShardWorkers: shard.Workers,
			JSON: *jsonOut, RunLogPrefix: *runlog,
		}
		if metrics.Addr != "" {
			reg := obs.NewRegistry()
			srv, _, err := metrics.Serve(reg)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer srv.Close()
			so.Metrics = reg
		}
		if fi, err := os.Stderr.Stat(); err == nil && fi.Mode()&os.ModeCharDevice != 0 {
			so.Progress = os.Stderr
		}
		if err := runSweep(os.Stdout, *app, *sweep, so); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	sch, err := ParseScheme(*scheme, *delay, *thrbl)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	kern, err := workloads.New(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := sim.DefaultConfig()
	cfg.MC.QueueSize = *queue
	cfg.ShardPartitions = shard.Enabled
	cfg.ShardWorkers = shard.Workers
	cfg.Obs = obs.Options{
		Latency:     *jsonOut,
		SampleEvery: *sampleN,
	}
	if *censusLog != "" {
		*census = true
	}
	cfg.Obs.Census = *census
	if *traceOut != "" {
		cfg.Obs.TraceCapacity = *traceCap
	}
	if *audit || *auditLog != "" {
		cfg.Obs.AuditCapacity = *auditCap
	}
	cfg.Obs.Quality = *quality
	digest.Normalize()
	cfg.Obs.DigestEvery = digest.Every
	cfg.Obs.DigestCapacity = digest.Cap
	if *faultOn {
		cfg.Fault.Enabled = true
		cfg.Fault.BusBER = *faultBER
		cfg.Fault.WeakCellDensity = *faultDensity
		cfg.Fault.Seed = *faultSeed
		if *faultRetention > 0 {
			cfg.Fault.RetentionThreshold = *faultRetention
		}
	}
	if metrics.Addr != "" {
		reg := obs.NewRegistry()
		cfg.Obs.Metrics = reg
		srv, _, err := metrics.Serve(reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
	}

	start := time.Now()
	res, err := sim.Simulate(kern, cfg, sch, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wall := time.Since(start)

	// The golden functional run is only needed when the scheme can perturb
	// the output (AMS value prediction or injected faults); exact schemes are
	// bit-identical by construction, so skip the duplicate work unless
	// -golden forces the check. The kernel instance is reused: Setup is
	// deterministic per seed.
	if sch.AMS != mc.Off || *faultOn || *golden {
		goldenOut := sim.RunFunctional(kern, *seed)
		res.Run.AppError = approx.MeanRelativeError(goldenOut, res.Output)
	}

	if *traceOut != "" && res.Trace != nil {
		if err := writeTrace(res.Trace, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *auditLog != "" && res.Audit != nil {
		if err := writeAuditLog(res.Audit, *auditLog); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if digest.Log != "" && res.Digest != nil {
		if err := writeDigestLog(res.Digest, digest.Log); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *censusLog != "" && res.Telemetry != nil && res.Telemetry.Census != nil {
		if err := writeCensusLog(res.Telemetry.Census, *censusLog); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *jsonOut {
		if err := json.NewEncoder(os.Stdout).Encode(rundoc.Build(&res.Run, res, *seed, wall, *topBanks)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(res.Run.String())
	fmt.Printf("  vp: %d predictions (%d fallbacks)\n", res.VPPredictions, res.VPFallbacks)
	if s := res.Audit.Summary(); s != nil {
		fmt.Printf("  audit: %d decisions (dms holds %d, expiries %d; ams drops %d, skips %d)\n",
			s.Total, s.DMSDelayHolds, s.DMSDelayExpiries, s.AMSDrops, s.AMSSkips)
	}
	if res.Telemetry != nil && res.Telemetry.Quality != nil {
		q := res.Telemetry.Quality
		fmt.Printf("  quality: %d dropped lines, mean rel err %.4g (p99 %.4g, max %.4g)\n",
			q.Lines, q.MeanRelError, q.RelP99, q.MaxRelError)
	}
	if res.Telemetry != nil && res.Telemetry.Census != nil {
		printCensus(res.Telemetry.Census)
	}
	if res.Telemetry != nil && res.Telemetry.Fault != nil {
		f := res.Telemetry.Fault
		fmt.Printf("  fault: %d/%d corrupted reads, flips act=%d ret=%d bus=%d (digest %016x)\n",
			f.CorruptedReads, f.Reads, f.ActFlips, f.RetFlips, f.BusFlips, f.Digest)
		if q := f.Quality; q != nil && q.Lines > 0 {
			fmt.Printf("  fault-error: %d corrupted lines, mean rel err %.4g (p99 %.4g, max %.4g)\n",
				q.Lines, q.MeanRelError, q.RelP99, q.MaxRelError)
		}
	}
	if hot := energy.TopBanks(res.EnergyByChannel, 3); len(hot) > 0 {
		fmt.Printf("  hot banks:")
		for _, h := range hot {
			fmt.Printf(" ch%d.b%d=%.0fnJ(%.1f%%)", h.Channel, h.Bank, h.RowNJ, 100*h.RowShare)
		}
		fmt.Println()
	}
	fmt.Printf("  wall: %v\n", wall.Round(time.Millisecond))
}

// printCensus renders the census stat-block lines: the headline skippable
// fraction, the dominant stall causes, and ingress backpressure if any.
func printCensus(c *obs.CensusSummary) {
	fmt.Printf("  census: %d reqs, %d attributed cycles, skippable %.1f%% (gap p50/p99 %d/%d, max %d)\n",
		c.Requests, c.AttributedCycles, 100*c.SkippableFrac, c.GapP50, c.GapP99, c.GapMax)
	if len(c.Stalls) > 0 {
		fmt.Printf("  stalls:")
		shown := 0
		for _, s := range c.Stalls {
			if s.Share < 0.01 && shown >= 3 {
				continue
			}
			fmt.Printf(" %s=%.0f%%", s.Cause, 100*s.Share)
			shown++
		}
		fmt.Println()
	}
	if in := c.Ingress; in != nil {
		fmt.Printf("  ingress stalls: mshr-full %d, merge-limit %d, queue-full %d\n",
			in.MSHRFull, in.MergeLimit, in.QueueFull)
	}
	if c.InvariantError != "" {
		fmt.Printf("  census INVARIANT VIOLATION: %s\n", c.InvariantError)
	}
}

// writeCensusLog writes the census as JSONL: one machine-level summary line
// (type "summary", channel detail stripped), then one line per channel
// (type "channel") with per-bank residency rows.
func writeCensusLog(c *obs.CensusSummary, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	head := *c
	head.Channels = nil
	if err := enc.Encode(struct {
		Type string `json:"type"`
		*obs.CensusSummary
	}{"summary", &head}); err != nil {
		return err
	}
	for i := range c.Channels {
		if err := enc.Encode(struct {
			Type string `json:"type"`
			obs.ChannelCensus
		}{"channel", c.Channels[i]}); err != nil {
			return err
		}
	}
	return nil
}

func writeDigestLog(d *obs.DigestLog, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return d.WriteJSONL(f)
}

func writeAuditLog(a *obs.AuditLog, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return a.WriteJSONL(f)
}

func writeTrace(tr *obs.CmdTrace, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".jsonl") {
		return tr.WriteJSONL(f)
	}
	return tr.WriteChromeTrace(f)
}

// The machine-readable run document (the -json output) is built by
// internal/rundoc, shared with the lazyd daemon so both surfaces emit the
// exact same bytes for the same run.

// sweepOptions carries the -sweep mode knobs.
type sweepOptions struct {
	Seed         int64
	Queue        int
	Delay, ThRBL int
	Workers      int
	Shard        bool
	ShardWorkers int

	// JSON switches the output to one sweepDoc document (rows + sweep
	// summary block) instead of the text table.
	JSON bool
	// RunLogPrefix, when set, writes PREFIX.trace.json and
	// PREFIX.events.jsonl from the run log.
	RunLogPrefix string
	// Metrics, when set, receives the live sweep families.
	Metrics *obs.Registry
	// Progress, when set, receives the interactive progress line.
	Progress io.Writer
}

// sweepRow is one run's summary in the -sweep -json document — the same
// columns as the text table.
type sweepRow struct {
	App         string  `json:"app"`
	Scheme      string  `json:"scheme"`
	IPC         float64 `json:"ipc"`
	Activations uint64  `json:"activations"`
	RowEnergyNJ float64 `json:"row_energy_nj"`
	AppError    float64 `json:"app_error"`
	Coverage    float64 `json:"coverage"`
	// WallSeconds/CyclesPerSec report the run's execution time even without
	// -runlog (deduped rows share the executing run's time). Wall-clock is
	// nondeterministic: CI's sweep gates -ignore these fields.
	WallSeconds  float64 `json:"wall_seconds"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
}

// sweepDoc is the -sweep -json document: per-run rows in declaration order
// plus the run-lifecycle summary block.
type sweepDoc struct {
	Meta  rundoc.Meta       `json:"meta"`
	Seed  int64             `json:"seed"`
	Runs  []sweepRow        `json:"runs"`
	Sweep *obs.SweepSummary `json:"sweep,omitempty"`
}

// writeRunLogFiles exports the run log next to the given prefix:
// PREFIX.trace.json (Chrome trace_event) and PREFIX.events.jsonl.
func writeRunLogFiles(rl *obs.RunLog, prefix string) error {
	tf, err := os.Create(prefix + ".trace.json")
	if err != nil {
		return err
	}
	defer tf.Close()
	if err := rl.WriteChromeTrace(tf); err != nil {
		return err
	}
	ef, err := os.Create(prefix + ".events.jsonl")
	if err != nil {
		return err
	}
	defer ef.Close()
	return rl.WriteEventsJSONL(ef)
}

// runSweep is the -sweep multi-run mode: the cross product of the
// comma-separated app list (or "all") and scheme list executes on an
// exp.Runner worker pool, and one summary row per run prints in declaration
// order regardless of completion order. The concurrent path is singleflighted
// and memoized, so the output is identical to running the points one at a
// time.
func runSweep(w io.Writer, appList, schemeList string, o sweepOptions) error {
	var apps []string
	if appList == "all" {
		apps = workloads.Names()
	} else {
		for _, a := range strings.Split(appList, ",") {
			if a = strings.TrimSpace(a); a != "" {
				apps = append(apps, a)
			}
		}
	}
	var schemes []mc.Scheme
	for _, name := range strings.Split(schemeList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		s, err := ParseScheme(name, o.Delay, o.ThRBL)
		if err != nil {
			return err
		}
		schemes = append(schemes, s)
	}
	if len(apps) == 0 || len(schemes) == 0 {
		return fmt.Errorf("sweep: need at least one app and one scheme")
	}

	var rl *obs.RunLog
	if o.JSON || o.RunLogPrefix != "" || o.Metrics != nil || o.Progress != nil {
		rl = obs.NewRunLog(obs.RunLogOptions{Metrics: o.Metrics, Progress: o.Progress})
	}
	r := exp.NewRunner(exp.Options{
		Seed:            o.Seed,
		Apps:            apps,
		Workers:         o.Workers,
		ShardPartitions: o.Shard,
		ShardWorkers:    o.ShardWorkers,
		RunLog:          rl,
	})
	v := exp.Variant{QueueSize: o.Queue}
	var pts []exp.Point
	for _, app := range apps {
		for _, s := range schemes {
			pts = append(pts, exp.Point{App: app, Scheme: s, Variant: v})
		}
	}
	start := time.Now()
	r.Prefetch(pts...)

	var rows []sweepRow
	if !o.JSON {
		fmt.Fprintf(w, "%-14s %-22s %-9s %-12s %-14s %-10s %-10s\n",
			"app", "scheme", "ipc", "activations", "row-energy-nj", "app-error", "coverage")
	}
	for _, p := range pts {
		res, err := r.Run(p.App, p.Scheme, p.Variant)
		if err != nil {
			r.Wait()
			rl.FinishProgress()
			return err
		}
		if o.JSON {
			row := sweepRow{
				App: p.App, Scheme: p.Scheme.Name(), IPC: res.Run.IPC(),
				Activations: res.Run.Mem.Activations, RowEnergyNJ: res.Run.RowEnergy,
				AppError: res.Run.AppError, Coverage: res.Run.Mem.Coverage(),
			}
			if secs, ok := r.Timing(p.App, p.Scheme, p.Variant); ok && secs > 0 {
				row.WallSeconds = secs
				row.CyclesPerSec = float64(res.Run.Mem.Cycles) / secs
			}
			rows = append(rows, row)
			continue
		}
		fmt.Fprintf(w, "%-14s %-22s %-9.4f %-12d %-14.0f %-10.4f %-10.4f\n",
			p.App, p.Scheme.Name(), res.Run.IPC(), res.Run.Mem.Activations,
			res.Run.RowEnergy, res.Run.AppError, res.Run.Mem.Coverage())
	}
	r.Wait()
	rl.FinishProgress()
	if o.JSON {
		if err := json.NewEncoder(w).Encode(sweepDoc{Meta: rundoc.Meta{Build: buildinfo.Get()}, Seed: o.Seed, Runs: rows, Sweep: rl.Summary()}); err != nil {
			return err
		}
	} else {
		fmt.Fprintf(w, "%d runs in %v\n", len(pts), time.Since(start).Round(time.Millisecond))
	}
	if o.RunLogPrefix != "" {
		if err := writeRunLogFiles(rl, o.RunLogPrefix); err != nil {
			return err
		}
	}
	return rl.Reconcile()
}

// ParseScheme maps a scheme name to its configuration.
func ParseScheme(name string, delay, thrbl int) (mc.Scheme, error) {
	return mc.ParseScheme(name, delay, thrbl)
}
