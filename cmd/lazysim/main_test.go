package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lazydram/internal/cliflags"
	"lazydram/internal/mc"
	"lazydram/internal/obs"
	"lazydram/internal/rundoc"
	"lazydram/internal/sim"
	"lazydram/internal/workloads"
)

// TestMain lets tests re-exec this binary as the real CLI: with
// LAZYSIM_BE_MAIN set, the process runs main() on its own arguments instead
// of the test suite, so observability-misconfiguration exits can be asserted.
func TestMain(m *testing.M) {
	if os.Getenv("LAZYSIM_BE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// occupyPort binds an ephemeral port and keeps it open so a second listen on
// the same address must fail.
func occupyPort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

// TestObservabilityBindFailuresExitNonzero asserts that a -metrics-addr or
// -pprof address that cannot be bound aborts the process with exit code 1
// before any simulation starts.
func TestObservabilityBindFailuresExitNonzero(t *testing.T) {
	busy := occupyPort(t)
	for _, tc := range [][]string{
		{"-app", "SCP", "-metrics-addr", busy},
		{"-app", "SCP", "-pprof", busy},
	} {
		cmd := exec.Command(os.Args[0], tc...)
		cmd.Env = append(os.Environ(), "LAZYSIM_BE_MAIN=1")
		out, err := cmd.CombinedOutput()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 1 {
			t.Errorf("args %v: err = %v (output %q), want exit code 1", tc, err, out)
		}
	}
}

// TestMetricsServerEndToEnd drives the same path as -metrics-addr: bind an
// ephemeral port, run a real simulation publishing into the registry, and
// scrape /metrics and /vars over HTTP while and after it runs.
func TestMetricsServerEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	srv, addr, err := cliflags.ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	kern, err := workloads.New("SCP")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Obs = obs.Options{Metrics: reg, MetricsEvery: 256}
	res, err := sim.Simulate(kern, cfg, mc.DynBoth, 1)
	if err != nil {
		t.Fatal(err)
	}

	get := func(path string) []byte {
		t.Helper()
		cl := &http.Client{Timeout: 5 * time.Second}
		resp, err := cl.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	prom := string(get("/metrics"))
	for _, name := range []string{
		"lazysim_core_cycles_total",
		"lazysim_instructions_total",
		"lazysim_ipc",
		"lazysim_bwutil",
		"lazysim_row_energy_nj",
		`lazysim_run_info{app="SCP",scheme="Dyn-DMS+Dyn-AMS"} 1`,
		`lazysim_bank_activations_total{channel="0",bank="0"}`,
		`lazysim_channel_reads_total{channel="0"}`,
	} {
		if !strings.Contains(prom, name) {
			t.Errorf("/metrics missing %q", name)
		}
	}

	var vars map[string]any
	if err := json.Unmarshal(get("/vars"), &vars); err != nil {
		t.Fatalf("/vars not valid JSON: %v", err)
	}
	if got := vars["lazysim_mem_cycles_total"]; got != float64(res.Run.Mem.Cycles) {
		t.Errorf("/vars mem cycles %v, want %d", got, res.Run.Mem.Cycles)
	}
}

// TestBuildReportJSON checks the -json document carries the per-bank
// attribution, the hottest-bank summary honours -top-banks, and the whole
// report round-trips through encoding/json with the stable field names
// lazycmp flattens.
func TestBuildReportJSON(t *testing.T) {
	kern, err := workloads.New("SCP")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	res, err := sim.Simulate(kern, cfg, mc.DynBoth, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep := rundoc.Build(&res.Run, res, 1, 123*time.Millisecond, 2)

	if len(rep.EnergyByChannel) == 0 {
		t.Fatal("report missing energy_by_channel")
	}
	if len(rep.HottestBanks) != 2 {
		t.Fatalf("top-banks=2 produced %d entries", len(rep.HottestBanks))
	}

	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"app", "scheme", "ipc", "bwutil", "activations",
		"row_energy_nj", "mem_energy_nj", "energy_by_channel", "hottest_banks",
	} {
		if _, ok := doc[key]; !ok {
			t.Errorf("report JSON missing %q", key)
		}
	}
	ebc := doc["energy_by_channel"].([]any)
	ch0 := ebc[0].(map[string]any)
	for _, key := range []string{"channel", "row_nj", "access_nj", "background_nj", "total_nj", "banks"} {
		if _, ok := ch0[key]; !ok {
			t.Errorf("energy_by_channel entry missing %q", key)
		}
	}
}

// TestRunSweep drives the -sweep multi-run mode end to end: rows must appear
// in declaration order (app-major, scheme-minor) no matter which concurrent
// simulation finishes first, and scheme parse errors must surface.
func TestRunSweep(t *testing.T) {
	var buf bytes.Buffer
	o := sweepOptions{Seed: 1, Queue: 128, Delay: 128, ThRBL: 8, Workers: 2}
	if err := runSweep(&buf, "jmein,LPS", "baseline,static-ams", o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "4 runs in") {
		t.Fatalf("sweep did not report 4 runs:\n%s", out)
	}
	ji := strings.Index(out, "jmein")
	li := strings.Index(out, "LPS")
	if ji < 0 || li < 0 || ji > li {
		t.Fatalf("sweep rows out of declaration order:\n%s", out)
	}
	if err := runSweep(io.Discard, "jmein", "no-such-scheme", o); err == nil {
		t.Fatal("unknown sweep scheme accepted")
	}
	if err := runSweep(io.Discard, "", "baseline", o); err == nil {
		t.Fatal("empty app list accepted")
	}
}

func TestParseScheme(t *testing.T) {
	s, err := ParseScheme("static-dms", 64, 8)
	if err != nil || s.StaticDelay != 64 {
		t.Fatalf("static-dms: %+v, %v", s, err)
	}
	if _, err := ParseScheme("nope", 0, 0); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

// TestRunSweepJSON drives -sweep -json -runlog end to end: the document must
// carry the per-run rows in declaration order plus a sweep summary whose
// counts are the deterministic values for this point set, and the runlog
// files must exist and parse.
func TestRunSweepJSON(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "sweep")
	var buf bytes.Buffer
	o := sweepOptions{
		Seed: 1, Queue: 128, Delay: 128, ThRBL: 8, Workers: 2,
		JSON: true, RunLogPrefix: prefix,
	}
	if err := runSweep(&buf, "jmein,LPS", "baseline,static-ams", o); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Seed int64 `json:"seed"`
		Runs []struct {
			App    string  `json:"app"`
			Scheme string  `json:"scheme"`
			IPC    float64 `json:"ipc"`
		} `json:"runs"`
		Sweep *obs.SweepSummary `json:"sweep"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("sweep JSON invalid: %v\n%s", err, buf.String())
	}
	if len(doc.Runs) != 4 {
		t.Fatalf("rows = %d, want 4", len(doc.Runs))
	}
	if doc.Runs[0].App != "jmein" || doc.Runs[2].App != "LPS" {
		t.Fatalf("rows out of declaration order: %+v", doc.Runs)
	}
	s := doc.Sweep
	if s == nil {
		t.Fatal("document has no sweep block")
	}
	// Each of the 4 points is requested twice (prefetch + consuming Run):
	// exactly one executes, one joins — so every count below is invariant
	// under the worker count and scheduling.
	if s.Runs != 8 || s.Executed != 4 || s.Deduped != 4 || s.Errors != 0 {
		t.Fatalf("sweep counts: %+v", s)
	}
	if s.Events != 28 { // 5 events per executed span + 2 per joined span
		t.Fatalf("events = %d, want 28", s.Events)
	}
	if s.Executed+s.Deduped+s.Errors != s.Runs {
		t.Fatalf("terminal spans do not cover runs: %+v", s)
	}

	raw, err := os.ReadFile(prefix + ".trace.json")
	if err != nil {
		t.Fatal(err)
	}
	var trace map[string]any
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace file invalid: %v", err)
	}
	events, err := os.ReadFile(prefix + ".events.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(events), "\n")
	if lines != s.Events {
		t.Fatalf("events file has %d lines, summary says %d", lines, s.Events)
	}
}
